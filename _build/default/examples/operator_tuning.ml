(* Operator tuning: how to pick randomization parameters.

   For a deployment with size-5 transactions this example sweeps the
   amplification budget gamma and shows what each privacy level costs in
   utility: the designed noise rate, the expected fraction of items kept,
   the predicted estimator sigma, and the lowest support the server can
   still discover.  It then contrasts the optimizer objectives, including
   why maximizing kept items alone is a trap (noise is free under that
   objective, so rho degenerates to 0.5) and why single-k sigma targets
   can silently break other itemset sizes.

   Run with:  dune exec examples/operator_tuning.exe *)

open Ppdm

let pp_dist dist =
  String.concat " "
    (Array.to_list (Array.map (fun p -> Printf.sprintf "%.3f" p) dist))

let kept dist =
  let m = Array.length dist - 1 in
  let acc = ref 0. in
  Array.iteri (fun j p -> acc := !acc +. (p *. float_of_int j)) dist;
  !acc /. float_of_int m

let sigma_at (d : Optimizer.design) ~k =
  let resolved : Randomizer.resolved =
    { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
  in
  match
    Estimator.predicted_sigma resolved ~k
      ~partials:(Estimator.binomial_profile ~k ~p_bg:0.02 ~support:0.01)
      ~n:100_000
  with
  | sigma -> sigma
  | exception Ppdm_linalg.Lu.Singular -> Float.infinity

let () =
  let m = 5 in
  Printf.printf "transaction size m = %d, N = 100k, background rate 2%%\n\n" m;
  Printf.printf "%-8s %-8s %-8s %-10s %-12s %s\n" "gamma" "rho" "kept" "sigma(k=2)"
    "discover@k2" "keep distribution p_0..p_m";
  List.iter
    (fun gamma ->
      let d = Optimizer.design_for_estimation ~m ~gamma () in
      let resolved : Randomizer.resolved =
        { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
      in
      let discover =
        Estimator.lowest_discoverable_support resolved ~k:2 ~n:100_000 ~p_bg:0.02
      in
      Printf.printf "%-8.1f %-8.4f %-8.3f %-10.5f %-12.5f %s\n" gamma
        d.Optimizer.rho (kept d.Optimizer.dist) (sigma_at d ~k:2) discover
        (pp_dist d.Optimizer.dist))
    [ 2.; 5.; 9.; 19.; 49.; 99. ];

  print_newline ();
  print_endline "objective comparison at gamma = 19 (sigma per itemset size k):";
  let describe name (d : Optimizer.design) =
    Printf.printf
      "  %-12s rho %.4f  kept %.3f  sigma k1 %-9s k2 %-9s k3 %-9s\n" name
      d.Optimizer.rho (kept d.Optimizer.dist)
      (Printf.sprintf "%.5f" (sigma_at d ~k:1))
      (Printf.sprintf "%.5f" (sigma_at d ~k:2))
      (Printf.sprintf "%.5f" (sigma_at d ~k:3))
  in
  describe "max-kept" (Optimizer.design ~m ~gamma:19. Optimizer.Max_kept);
  describe "min-sigma@2"
    (Optimizer.design ~m ~gamma:19.
       (Optimizer.Min_sigma { k = 2; n = 100_000; p_bg = 0.02; support = 0.01 }));
  describe "min-upto-3"
    (Optimizer.design ~m ~gamma:19.
       (Optimizer.Min_sigma_upto
          { k_max = 3; n = 100_000; p_bg = 0.02; support = 0.01 }));
  print_endline
    "\nmax-kept drives rho to 0.5 (noise is unpenalized); min-sigma@2 can be\n\
     singular at other sizes; min-upto-3 (the default of\n\
     Optimizer.design_for_estimation) stays usable for every k the server\n\
     will query."
