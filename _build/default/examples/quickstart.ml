(* Quickstart: the five-minute tour of the library.

   1. Clients hold private size-5 transactions over 200 items.
   2. We design a select-a-size operator certified for gamma = 19 — by the
      amplification theorem, no property's posterior can be pushed past
      50% if its prior was at most 5%.
   3. Each transaction is randomized locally; the server only sees noise.
   4. The server still recovers the support of a target itemset, with a
      standard error it can compute itself.

   Run with:  dune exec examples/quickstart.exe *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let () =
  let universe = 200 and size = 5 and count = 20_000 in
  let rng = Rng.create ~seed:7 () in

  (* A database with a planted itemset of known support 8%. *)
  let secret = Itemset.of_list [ 11; 42 ] in
  let db = Simple.planted rng ~universe ~size ~count ~itemset:secret ~support:0.08 in
  Printf.printf "true support of %s: %.4f\n" (Itemset.to_string secret)
    (Db.support db secret);

  (* Design the randomization operator under an amplification budget. *)
  let gamma = 19. in
  let design = Optimizer.design_for_estimation ~m:size ~gamma () in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:design.Optimizer.dist
      ~rho:design.Optimizer.rho
  in
  Printf.printf "operator: %s, expected items kept %.1f%%\n"
    (Randomizer.name scheme)
    (100. *. Randomizer.expected_kept_fraction scheme ~size);
  Printf.printf "privacy certificate: gamma = %.2f => a 5%% prior can reach at most %.1f%%\n"
    design.Optimizer.gamma
    (100.
    *. Amplification.posterior_upper_bound ~gamma:design.Optimizer.gamma
         ~prior:0.05);

  (* Clients randomize; the server sees only the tagged outputs. *)
  let data = Randomizer.apply_db_tagged scheme rng db in

  (* Support recovery on the server. *)
  let e = Estimator.estimate ~scheme ~data ~itemset:secret in
  let lo, hi = Estimator.confidence_interval e ~level:0.95 in
  Printf.printf "recovered support: %.4f  (sigma %.4f, 95%% CI [%.4f, %.4f])\n"
    e.Estimator.support e.Estimator.sigma lo hi;
  Printf.printf "within %.2f sigma of the truth\n"
    (Float.abs (e.Estimator.support -. Db.support db secret) /. e.Estimator.sigma)
