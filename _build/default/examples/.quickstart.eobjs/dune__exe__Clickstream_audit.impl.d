examples/clickstream_audit.ml: Amplification Array Breach Db Float List Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf Randomizer Rng Simple
