examples/operator_tuning.ml: Array Estimator Float List Optimizer Ppdm Ppdm_linalg Printf Randomizer String
