examples/clickstream_audit.mli:
