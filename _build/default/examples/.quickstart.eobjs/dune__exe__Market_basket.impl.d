examples/market_basket.ml: Amplification Apriori Array Db Float Format List Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_mining Ppdm_prng Ppmining Printf Quest Randomizer Rng Rules
