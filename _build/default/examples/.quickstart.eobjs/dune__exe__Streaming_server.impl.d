examples/streaming_server.ml: Array Db Estimator Itemset Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf Randomizer Rng Simple Stream
