examples/market_basket.mli:
