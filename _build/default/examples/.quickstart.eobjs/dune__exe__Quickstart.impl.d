examples/quickstart.ml: Amplification Db Estimator Float Itemset Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf Randomizer Rng Simple
