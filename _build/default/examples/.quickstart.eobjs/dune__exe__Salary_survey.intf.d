examples/salary_survey.mli:
