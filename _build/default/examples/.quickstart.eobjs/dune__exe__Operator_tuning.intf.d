examples/operator_tuning.mli:
