examples/salary_survey.ml: Amplification Array Binning Dist Perturb Ppdm Ppdm_numeric Ppdm_prng Printf Rng
