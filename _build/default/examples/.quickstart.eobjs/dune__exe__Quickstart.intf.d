examples/quickstart.mli:
