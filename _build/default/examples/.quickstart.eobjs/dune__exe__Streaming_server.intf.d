examples/streaming_server.mli:
