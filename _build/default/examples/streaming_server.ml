(* Streaming collection: the deployment shape of the randomization
   protocol.

   Clients randomize locally and report one transaction at a time; the
   server never stores the stream — it folds each report into O(k) sized
   accumulators (one per tracked itemset) and can publish support
   estimates with error bars at any moment.  This example simulates 30k
   client reports arriving in batches and prints the live estimates, then
   shows that two servers' accumulators merge losslessly (scale-out).

   Run with:  dune exec examples/streaming_server.exe *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let () =
  let universe = 300 and size = 6 and count = 30_000 in
  let rng = Rng.create ~seed:123 () in

  (* ground truth: two itemsets planted at different supports *)
  let hot = Itemset.of_list [ 10; 20 ] in
  let db = Simple.planted rng ~universe ~size ~count ~itemset:hot ~support:0.12 in
  let cold = Itemset.of_list [ 30; 40 ] in
  Printf.printf "true supports: %s %.4f | %s %.4f\n" (Itemset.to_string hot)
    (Db.support db hot) (Itemset.to_string cold) (Db.support db cold);

  let design = Optimizer.design_for_estimation ~m:size ~gamma:19. () in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:design.Optimizer.dist
      ~rho:design.Optimizer.rho
  in
  let stream = Randomizer.apply_db_tagged scheme rng db in

  (* one accumulator per itemset of interest *)
  let acc_hot = Stream.create ~scheme ~itemset:hot in
  let acc_cold = Stream.create ~scheme ~itemset:cold in
  let checkpoint n =
    let report acc =
      let e = Stream.estimate acc in
      Printf.sprintf "%s %.4f±%.4f" (Itemset.to_string (Stream.itemset acc))
        e.Estimator.support e.Estimator.sigma
    in
    Printf.printf "after %6d reports: %s | %s\n" n (report acc_hot) (report acc_cold)
  in
  Array.iteri
    (fun i (size, y) ->
      Stream.observe acc_hot ~size y;
      Stream.observe acc_cold ~size y;
      let seen = i + 1 in
      if seen = 1000 || seen = 5000 || seen = count then checkpoint seen)
    stream;

  (* scale-out: two half-streams merged equal the full stream *)
  let half = count / 2 in
  let a = Stream.create ~scheme ~itemset:hot and b = Stream.create ~scheme ~itemset:hot in
  Stream.observe_all a (Array.sub stream 0 half);
  Stream.observe_all b (Array.sub stream half (count - half));
  Stream.merge_into a ~from:b;
  let merged = Stream.estimate a and whole = Stream.estimate acc_hot in
  Printf.printf "merge check: %.6f = %.6f -> %b\n" merged.Estimator.support
    whole.Estimator.support
    (merged.Estimator.support = whole.Estimator.support)
