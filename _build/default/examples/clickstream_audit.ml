(* Clickstream privacy audit: the "soccer" scenario of the original
   experiments, on a synthetic stand-in.

   A site collects randomized page-visit sets from users.  This example
   plays both roles: it randomizes a Zipf-popularity clickstream, then
   AUDITS the deployment — for the most popular pages it measures the
   adversary's actual posterior from the (original, randomized) pairs and
   checks it against the analytic posterior and the distribution-free
   amplification ceiling.

   Run with:  dune exec examples/clickstream_audit.exe *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let () =
  let universe = 300 and count = 12_000 in
  let rng = Rng.create ~seed:2024 () in
  let db = Simple.zipf_clickstream rng ~universe ~exponent:1.1 ~avg_size:7. ~count in
  Printf.printf "clickstream: %d sessions over %d pages, avg %.1f pages/session\n"
    (Db.length db) universe (Db.avg_size db);

  let gamma = 9. in
  let scheme = Optimizer.scheme_for_estimation ~universe ~gamma () in
  let randomized = Randomizer.apply_db scheme rng db in

  let n = float_of_int (Db.length db) in
  let item_counts = Db.item_counts db in
  Printf.printf "%-6s %-8s %-12s %-12s %-10s\n" "page" "prior" "measured" "analytic*" "ceiling";
  List.iter
    (fun page ->
      let prior = float_of_int item_counts.(page) /. n in
      let present, absent =
        Breach.empirical_item_posteriors ~original:db ~randomized ~item:page
      in
      let measured = Float.max present absent in
      (* analytic posterior for the average session size (approximate:
         sessions have mixed sizes, so this is indicative, not exact) *)
      let avg_m = int_of_float (Float.round (Db.avg_size db)) in
      let resolved = Randomizer.resolve scheme ~size:avg_m in
      let analytic = Breach.worst_item_posterior resolved ~prior in
      (* distribution-free ceiling: worst realized gamma over sizes *)
      let worst_gamma =
        List.fold_left
          (fun acc (m, _) ->
            if m = 0 then acc
            else
              Float.max acc
                (Amplification.gamma_resolved (Randomizer.resolve scheme ~size:m)))
          1. (Db.size_histogram db)
      in
      let ceiling = Amplification.posterior_upper_bound ~gamma:worst_gamma ~prior in
      Printf.printf "%-6d %-8.4f %-12.4f %-12.4f %-10.4f%s\n" page prior measured
        analytic ceiling
        (if measured > ceiling then "  <-- VIOLATION" else ""))
    [ 0; 1; 2; 5; 10; 50; 150 ];
  print_endline "(*analytic uses the average session size; the ceiling holds for every size)"
