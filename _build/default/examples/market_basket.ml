(* Market-basket scenario: the motivating workload of the original work.

   A retailer wants association rules over customer baskets without ever
   collecting raw baskets.  We generate an IBM Quest-style synthetic
   dataset, run the privacy-preserving miner over randomized baskets, and
   compare against the non-private Apriori ground truth — then derive
   association rules from the *estimated* supports.

   Scale matters: at gamma = 19 the lowest discoverable support for pairs
   is a few percent even with 40k baskets (the accuracy analysis of the
   paper), which is why this example mines at 5% support.

   Run with:  dune exec examples/market_basket.exe *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm_mining
open Ppdm

let () =
  let rng = Rng.create ~seed:99 () in
  let db =
    Quest.generate rng
      {
        Quest.default with
        universe = 150;
        n_transactions = 40_000;
        avg_transaction_size = 8.;
        n_patterns = 40;
      }
  in
  Printf.printf "baskets: %d over %d products, avg size %.1f\n" (Db.length db)
    (Db.universe db) (Db.avg_size db);

  (* One optimized operator per basket size, all under gamma = 19. *)
  let gamma = 19. in
  let scheme =
    Optimizer.scheme_for_estimation ~universe:(Db.universe db) ~gamma ()
  in
  let data = Randomizer.apply_db_tagged scheme rng db in

  let min_support = 0.05 in
  let truth = Apriori.mine db ~min_support ~max_size:3 in
  let mined = Ppmining.mine ~scheme ~data ~min_support ~max_size:3 () in
  let acc = Ppmining.accuracy_vs ~truth ~mined in
  Printf.printf
    "minsup %.2f: %d truly frequent | mined: %d true positives, %d false positives, %d false drops\n"
    min_support (List.length truth) acc.Ppmining.true_positives
    acc.Ppmining.false_positives acc.Ppmining.false_drops;

  (* Rules from estimated supports: scale estimates back to pseudo-counts
     so the rule generator can run unchanged on private results. *)
  let n = Array.length data in
  let estimated_frequent =
    List.map
      (fun d ->
        ( d.Ppmining.itemset,
          int_of_float (Float.round (d.Ppmining.est_support *. float_of_int n)) ))
      mined.Ppmining.discovered
  in
  let rules = Rules.generate ~frequent:estimated_frequent ~n_transactions:n ~min_confidence:0.5 in
  Printf.printf "top private rules (of %d):\n" (List.length rules);
  List.iteri
    (fun i r -> if i < 5 then Format.printf "  %a@." Rules.pp_rule r)
    rules;

  (* And the privacy story: what could an adversary infer about one item? *)
  let size = 8 in
  let resolved = Randomizer.resolve scheme ~size in
  let realized = Amplification.gamma_resolved resolved in
  Printf.printf
    "size-%d baskets: realized gamma %.2f; a 5%% prior item is bounded by %.1f%% posterior\n"
    size realized
    (100. *. Amplification.posterior_upper_bound ~gamma:realized ~prior:0.05)
