(* Numeric-attribute survey: the amplification framework beyond itemsets.

   An employer surveys salaries without collecting them: each employee
   bins their salary and sends it through a noise channel.  The channel's
   amplification gives the same distribution-free privacy certificate as
   for transactions, and the server reconstructs the salary distribution
   (histogram, mean, quartiles) from the noisy reports.

   Run with:  dune exec examples/salary_survey.exe *)

open Ppdm_prng
open Ppdm
open Ppdm_numeric

let () =
  let rng = Rng.create ~seed:77 () in
  (* ground truth: a bimodal salary population, 30k respondents *)
  let salaries =
    Array.init 30_000 (fun i ->
        if i mod 3 = 0 then Dist.normal rng ~mean:120_000. ~std:15_000.
        else Dist.normal rng ~mean:65_000. ~std:12_000.)
  in
  let binning = Binning.create ~lo:0. ~hi:200_000. ~count:20 in
  let truth = Binning.histogram binning salaries in

  let p = Perturb.laplace_for_gamma ~binning ~gamma:19. in
  let gamma = Perturb.gamma p in
  Printf.printf "channel gamma: %.2f (epsilon = %.2f per report)\n" gamma (log gamma);
  Printf.printf "certificate: a 5%% prior belief can reach at most %.1f%%\n"
    (100. *. Amplification.posterior_upper_bound ~gamma ~prior:0.05);

  (* clients randomize; the server tallies output bins *)
  let outputs = Perturb.randomize_all p rng salaries in
  let counts = Array.make (Binning.count binning) 0 in
  Array.iter (fun y -> counts.(y) <- counts.(y) + 1) outputs;

  let r = Perturb.reconstruct p ~counts in
  Printf.printf "\n%-14s %-8s %-8s %-8s\n" "bin" "true" "noisy" "recovered";
  Array.iteri
    (fun i t ->
      let lo, hi = Binning.bounds binning i in
      Printf.printf "%5.0fk-%5.0fk   %-8.3f %-8.3f %-8.3f\n" (lo /. 1000.)
        (hi /. 1000.) t
        (float_of_int counts.(i) /. float_of_int (Array.length salaries))
        r.Perturb.density.(i))
    truth;

  let stat name f =
    Printf.printf "%-18s true %9.0f   recovered %9.0f\n" name (f truth)
      (f r.Perturb.density)
  in
  print_newline ();
  stat "mean" (Perturb.mean_of_density p);
  stat "median" (fun d -> Perturb.quantile_of_density p d 0.5);
  stat "75th percentile" (fun d -> Perturb.quantile_of_density p d 0.75)
