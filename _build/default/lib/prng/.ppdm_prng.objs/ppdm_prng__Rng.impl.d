lib/prng/rng.ml: Int64
