lib/prng/dist.ml: Array Float Hashtbl Queue Rng
