lib/prng/rng.mli:
