let bernoulli rng p =
  if p < 0. || p > 1. then invalid_arg "Dist.bernoulli: p out of [0,1]";
  Rng.float rng < p

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p out of (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. Rng.float rng (* u in (0,1] *) in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let rec binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: negative n";
  if p < 0. || p > 1. then invalid_arg "Dist.binomial: p out of [0,1]";
  if p = 0. || n = 0 then 0
  else if p = 1. then n
  else if n <= 64 then (
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.float rng < p then incr count
    done;
    !count)
  else if p > 0.5 then n - binomial_tail rng ~n ~p:(1. -. p)
  else binomial_tail rng ~n ~p

(* Geometric skipping: jump between successes; expected O(np). *)
and binomial_tail rng ~n ~p =
  let count = ref 0 in
  let i = ref (geometric rng ~p) in
  while !i < n do
    incr count;
    i := !i + 1 + geometric rng ~p
  done;
  !count

let rec poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: negative mean";
  if mean = 0. then 0
  else if mean < 500. then (
    let threshold = exp (-.mean) in
    let k = ref 0 and prod = ref (Rng.float rng) in
    while !prod > threshold do
      incr k;
      prod := !prod *. Rng.float rng
    done;
    !k)
  else
    (* Split large means to keep the product method in range. *)
    poisson rng ~mean:(mean /. 2.) + poisson rng ~mean:(mean /. 2.)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log (1. -. Rng.float rng) /. rate

let normal rng ~mean ~std =
  let u1 = 1. -. Rng.float rng and u2 = Rng.float rng in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct rng ~k ~bound =
  if k < 0 || k > bound then invalid_arg "Dist.sample_distinct: bad k";
  (* Floyd's algorithm: k hash operations, uniform over k-subsets. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = bound - k to bound - 1 do
    let v = Rng.int rng (j + 1) in
    if Hashtbl.mem chosen v then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen v ()
  done;
  let out = Array.make k 0 in
  let idx = ref 0 in
  Hashtbl.iter
    (fun v () ->
      out.(!idx) <- v;
      incr idx)
    chosen;
  Array.sort compare out;
  out

let subset rng ~k arr =
  let indices = sample_distinct rng ~k ~bound:(Array.length arr) in
  Array.map (fun i -> arr.(i)) indices

type discrete = { prob : float array; alias : int array }

let discrete weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.discrete: empty weights";
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Dist.discrete: weights sum to zero";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Dist.discrete: negative weight")
    weights;
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 1. and alias = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i s -> if s < 1. then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then Queue.add l small else Queue.add l large
  done;
  (* Remaining entries keep prob = 1 (self-alias); numerically exact. *)
  { prob; alias }

let discrete_sample rng { prob; alias } =
  let n = Array.length prob in
  let i = Rng.int rng n in
  if Rng.float rng < prob.(i) then i else alias.(i)

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Dist.categorical: weights sum to zero";
  let u = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.

type zipf = { cdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let zipf_sample rng { cdf } =
  let u = Rng.float rng in
  (* First index whose CDF value exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo
