(** Samplers for the distributions used across the library.

    All samplers take an explicit {!Rng.t}; none uses global state. *)

val bernoulli : Rng.t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p].  Requires
    [0 <= p <= 1]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] draws from Binomial(n, p).  Uses direct summation
    for small [n] and geometric waiting-time skipping otherwise, which is
    O(np) expected — fast in the small-[p] regimes the randomization
    operators use. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success, support {0, 1, ...}.
    Requires [0 < p <= 1]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson sample.  Knuth's product method, accurate for the moderate
    means used by the data generators.  Requires [mean >= 0]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential sample with the given rate.  Requires [rate > 0]. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian sample (Box–Muller). *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : Rng.t -> k:int -> bound:int -> int array
(** [sample_distinct rng ~k ~bound] draws [k] distinct integers uniformly
    from [0, bound-1] (Floyd's algorithm), returned sorted increasingly.
    Requires [0 <= k <= bound]. *)

val subset : Rng.t -> k:int -> 'a array -> 'a array
(** [subset rng ~k arr] is a uniform [k]-subset of the elements of [arr],
    in their original relative order.  Requires [0 <= k <= length arr]. *)

type discrete
(** Pre-processed weighted discrete distribution (Walker alias method):
    O(1) per sample after O(n) setup. *)

val discrete : float array -> discrete
(** Build an alias table from non-negative weights (need not be
    normalized; their sum must be positive). *)

val discrete_sample : Rng.t -> discrete -> int
(** Sample an index with probability proportional to its weight. *)

val categorical : Rng.t -> float array -> int
(** One-shot weighted choice by linear scan; use {!discrete} for repeated
    sampling from the same weights. *)

type zipf
(** Pre-processed Zipf distribution over {0, ..., n-1}. *)

val zipf : n:int -> s:float -> zipf
(** Zipf with exponent [s] over [n] ranks (probability of rank [i]
    proportional to [(i+1)^-s]). *)

val zipf_sample : Rng.t -> zipf -> int
(** Sample a rank by inversion (binary search over the CDF). *)
