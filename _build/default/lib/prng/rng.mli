(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ (Blackman & Vigna), seeded through
    SplitMix64 so that any 64-bit seed yields a well-mixed state.  Every
    randomized component of the library takes an explicit [t], which makes
    all experiments reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 64-bit seed.  The default
    seed is a fixed constant, so two programs that never pass [~seed]
    observe identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from the current state
    of [t]; advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are decorrelated (the child is re-seeded through SplitMix64
    from fresh output of the parent). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive.
    Uses rejection sampling, so the result is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float
(** Uniform on [0, 1) with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)
