(** IBM Quest-style synthetic market-basket generator (Agrawal & Srikant,
    VLDB 1994), re-implemented from the published description.  This is the
    workload family the original privacy-preserving-mining experiments used
    (T5.I2, T10.I4, ... style datasets) and stands in for the closed-source
    Quest [gen] binary. *)

open Ppdm_prng
open Ppdm_data

type params = {
  universe : int;  (** number of distinct items, [N] *)
  n_transactions : int;  (** database size, [|D|] *)
  avg_transaction_size : float;  (** [|T|], Poisson mean *)
  n_patterns : int;  (** size of the pattern pool, [|L|] *)
  avg_pattern_size : float;  (** [|I|], Poisson mean *)
  correlation : float;
      (** fraction of each pattern drawn from its predecessor (0.5 in the
          original generator) *)
  corruption_mean : float;
      (** mean of the per-pattern corruption level (0.5 originally) *)
}

val default : params
(** T10.I4 over 1000 items, 10k transactions, 200 patterns — a scaled-down
    version of the classical T10.I4.D100K. *)

val generate : Rng.t -> params -> Db.t
(** Generate a database.  Deterministic given the generator state.
    @raise Invalid_argument on non-positive sizes or parameters outside
    their documented ranges. *)
