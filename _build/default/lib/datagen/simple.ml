open Ppdm_prng
open Ppdm_data

let fixed_size rng ~universe ~size ~count =
  if size < 0 || size > universe then invalid_arg "Simple.fixed_size: bad size";
  let make _ =
    Itemset.of_sorted_array_unchecked
      (Dist.sample_distinct rng ~k:size ~bound:universe)
  in
  Db.create ~universe (Array.init count make)

let zipf_clickstream rng ~universe ~exponent ~avg_size ~count =
  let z = Dist.zipf ~n:universe ~s:exponent in
  let make _ =
    let target = min universe (max 1 (Dist.poisson rng ~mean:avg_size)) in
    let seen = Hashtbl.create (2 * target) in
    (* Rejection on duplicates; with Zipf popularity collisions are common,
       so cap the attempts and accept a slightly smaller transaction. *)
    let attempts = ref 0 in
    while Hashtbl.length seen < target && !attempts < 50 * target do
      incr attempts;
      Hashtbl.replace seen (Dist.zipf_sample rng z) ()
    done;
    Itemset.of_list (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  in
  Db.create ~universe (Array.init count make)

let bernoulli rng ~item_probs ~count =
  let universe = Array.length item_probs in
  Array.iter
    (fun p ->
      if p < 0. || p > 1. then
        invalid_arg "Simple.bernoulli: probability out of [0,1]")
    item_probs;
  let make _ =
    let items = ref [] in
    for item = universe - 1 downto 0 do
      if Rng.float rng < item_probs.(item) then items := item :: !items
    done;
    Itemset.of_sorted_array_unchecked (Array.of_list !items)
  in
  Db.create ~universe (Array.init count make)

let planted rng ~universe ~size ~count ~itemset ~support =
  let k = Itemset.cardinal itemset in
  if k > size then invalid_arg "Simple.planted: itemset larger than size";
  if size > universe then invalid_arg "Simple.planted: size exceeds universe";
  if support < 0. || support > 1. then
    invalid_arg "Simple.planted: support out of [0,1]";
  let planted_count =
    int_of_float (Float.round (support *. float_of_int count))
  in
  let complement =
    Array.of_seq
      (Seq.filter
         (fun x -> not (Itemset.mem x itemset))
         (Seq.init universe Fun.id))
  in
  let make i =
    if i < planted_count then
      let extra = Dist.subset rng ~k:(size - k) complement in
      Itemset.union itemset (Itemset.of_array extra)
    else begin
      (* A transaction that must NOT contain all of [itemset]: draw
         uniformly among size-subsets and reject the (rare) full hits, so
         the planted count is exact. *)
      let rec draw () =
        let tx =
          Itemset.of_sorted_array_unchecked
            (Dist.sample_distinct rng ~k:size ~bound:universe)
        in
        if Itemset.subset itemset tx then draw () else tx
      in
      draw ()
    end
  in
  let transactions = Array.init count make in
  Dist.shuffle rng transactions;
  Db.create ~universe transactions
