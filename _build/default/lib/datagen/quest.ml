open Ppdm_prng
open Ppdm_data

type params = {
  universe : int;
  n_transactions : int;
  avg_transaction_size : float;
  n_patterns : int;
  avg_pattern_size : float;
  correlation : float;
  corruption_mean : float;
}

let default =
  {
    universe = 1000;
    n_transactions = 10_000;
    avg_transaction_size = 10.;
    n_patterns = 200;
    avg_pattern_size = 4.;
    correlation = 0.5;
    corruption_mean = 0.5;
  }

type pattern = { items : int array; corruption : float }

let validate p =
  if p.universe <= 0 then invalid_arg "Quest: universe must be positive";
  if p.n_transactions < 0 then invalid_arg "Quest: negative transaction count";
  if p.n_patterns <= 0 then invalid_arg "Quest: need at least one pattern";
  if p.avg_transaction_size <= 0. || p.avg_pattern_size <= 0. then
    invalid_arg "Quest: average sizes must be positive";
  if p.correlation < 0. || p.correlation > 1. then
    invalid_arg "Quest: correlation out of [0,1]";
  if p.corruption_mean < 0. || p.corruption_mean > 1. then
    invalid_arg "Quest: corruption mean out of [0,1]"

(* Pattern pool: sizes are Poisson(avg_pattern_size); a [correlation]
   fraction of each pattern's items comes from the previous pattern, the
   rest are picked uniformly.  Weights are exponential, corruption levels
   are clipped normals centred at [corruption_mean] — all per the original
   description. *)
let make_patterns rng p =
  let previous = ref [||] in
  let make_one _ =
    let size = min p.universe (max 1 (Dist.poisson rng ~mean:p.avg_pattern_size)) in
    let from_prev =
      if Array.length !previous = 0 then 0
      else
        min
          (Array.length !previous)
          (int_of_float (Float.round (p.correlation *. float_of_int size)))
    in
    let inherited = Dist.subset rng ~k:from_prev !previous in
    let seen = Hashtbl.create (2 * size) in
    Array.iter (fun x -> Hashtbl.replace seen x ()) inherited;
    while Hashtbl.length seen < size do
      Hashtbl.replace seen (Rng.int rng p.universe) ()
    done;
    let items =
      Array.of_seq (Seq.map fst (Hashtbl.to_seq seen))
    in
    Array.sort compare items;
    previous := items;
    let corruption =
      Float.max 0.
        (Float.min 1.
           (Dist.normal rng ~mean:p.corruption_mean ~std:(sqrt 0.1)))
    in
    { items; corruption }
  in
  let patterns = Array.init p.n_patterns make_one in
  let weights = Array.init p.n_patterns (fun _ -> Dist.exponential rng ~rate:1.) in
  (patterns, Dist.discrete weights)

(* One transaction: draw a target size, then keep picking weighted patterns,
   corrupting each (dropping items while a uniform stays below the pattern's
   corruption level).  A pattern that overflows the remaining budget is
   added anyway half the time (as in the original), otherwise dropped and
   the transaction is closed. *)
let make_transaction rng p patterns chooser =
  let target =
    min p.universe (max 1 (Dist.poisson rng ~mean:p.avg_transaction_size))
  in
  let acc = Hashtbl.create (2 * target) in
  let closed = ref false in
  while (not !closed) && Hashtbl.length acc < target do
    let pat = patterns.(Dist.discrete_sample rng chooser) in
    let kept = ref (Array.copy pat.items) in
    let dropping = ref true in
    while !dropping && Array.length !kept > 0 do
      if Rng.float rng < pat.corruption then begin
        let a = !kept in
        let i = Rng.int rng (Array.length a) in
        a.(i) <- a.(Array.length a - 1);
        kept := Array.sub a 0 (Array.length a - 1)
      end
      else dropping := false
    done;
    let kept = !kept in
    let remaining = target - Hashtbl.length acc in
    if Array.length kept <= remaining then
      Array.iter (fun x -> Hashtbl.replace acc x ()) kept
    else if Rng.bool rng then begin
      Array.iter (fun x -> Hashtbl.replace acc x ()) kept;
      closed := true
    end
    else closed := true
  done;
  Itemset.of_list (Hashtbl.fold (fun k () l -> k :: l) acc [])

let generate rng p =
  validate p;
  let patterns, chooser = make_patterns rng p in
  Db.create ~universe:p.universe
    (Array.init p.n_transactions (fun _ ->
         make_transaction rng p patterns chooser))
