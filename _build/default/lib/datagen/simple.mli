(** Simple synthetic transaction databases: controlled workloads for tests,
    estimator calibration, and the clickstream-shaped stand-in for the
    proprietary datasets of the original experiments. *)

open Ppdm_prng
open Ppdm_data

val fixed_size : Rng.t -> universe:int -> size:int -> count:int -> Db.t
(** Uniform random [size]-subsets of the universe: the constant-size model
    under which the paper's per-size analysis is exact. *)

val zipf_clickstream :
  Rng.t -> universe:int -> exponent:float -> avg_size:float -> count:int -> Db.t
(** Heavy-tailed item popularity (Zipf with the given exponent) and
    Poisson-distributed transaction sizes: the shape of the WorldCup'98
    [soccer] clickstream used by the original mining experiments. *)

val bernoulli : Rng.t -> item_probs:float array -> count:int -> Db.t
(** Independent-items model: item [i] appears in each transaction
    independently with probability [item_probs.(i)] (the universe is the
    array length).  This is the distribution under which the item-level
    breach analysis of {!Ppdm.Breach} is exact, so it calibrates those
    tests.  @raise Invalid_argument on probabilities outside [0,1]. *)

val planted :
  Rng.t ->
  universe:int ->
  size:int ->
  count:int ->
  itemset:Itemset.t ->
  support:float ->
  Db.t
(** Fixed-size transactions in which a [support] fraction (exactly, up to
    rounding) contains the planted [itemset]; remaining items are uniform
    from the complement.  Gives a database with a *known* true support, the
    ground truth for estimator-accuracy experiments.
    @raise Invalid_argument if the itemset does not fit in [size] or in the
    universe. *)
