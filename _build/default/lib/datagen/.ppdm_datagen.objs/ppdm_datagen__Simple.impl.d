lib/datagen/simple.ml: Array Db Dist Float Fun Hashtbl Itemset Ppdm_data Ppdm_prng Rng Seq
