lib/datagen/quest.mli: Db Ppdm_data Ppdm_prng Rng
