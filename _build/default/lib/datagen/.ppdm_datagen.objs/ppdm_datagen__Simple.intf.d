lib/datagen/simple.mli: Db Itemset Ppdm_data Ppdm_prng Rng
