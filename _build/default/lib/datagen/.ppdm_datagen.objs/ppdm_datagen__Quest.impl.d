lib/datagen/quest.ml: Array Db Dist Float Hashtbl Itemset Ppdm_data Ppdm_prng Rng Seq
