(** Dense row-major float matrices. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] has entry [f i j] at row [i], column [j]. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. *)

val to_arrays : t -> float array array

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product; inner dimensions must agree. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val col : t -> int -> Vec.t
val row : t -> int -> Vec.t

val outer : Vec.t -> Vec.t -> t
(** Outer product [u v^T]. *)

val diag : Vec.t -> t
(** Diagonal matrix from a vector. *)

val max_abs_diff : t -> t -> float
(** L-infinity distance between same-shape matrices. *)

val norm_inf : t -> float
(** Maximum absolute row sum (the operator infinity-norm). *)

val pp : Format.formatter -> t -> unit
