type t = { lu : float array array; perm : int array; sign : float }

exception Singular

let decompose m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Lu.decompose: matrix is not square";
  let lu = Mat.to_arrays m in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry of column k up. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!pivot_row).(k) then
        pivot_row := i
    done;
    if !pivot_row <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot_row);
      lu.(!pivot_row) <- tmp;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = lu.(k).(k) in
    if pivot = 0. then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. pivot in
      lu.(i).(k) <- factor;
      for j = k + 1 to n - 1 do
        lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let dim t = Array.length t.lu

let solve t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(t.perm.(i))) in
  (* Forward substitution with the unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (t.lu.(i).(j) *. x.(j))
    done
  done;
  (* Backward substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (t.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. t.lu.(i).(i)
  done;
  x

let solve_mat t b =
  let n = dim t in
  if Mat.rows b <> n then invalid_arg "Lu.solve_mat: dimension mismatch";
  let cols = Mat.cols b in
  let out = Mat.create ~rows:n ~cols in
  for j = 0 to cols - 1 do
    let x = solve t (Mat.col b j) in
    for i = 0 to n - 1 do
      Mat.set out i j x.(i)
    done
  done;
  out

let inverse t = solve_mat t (Mat.identity (dim t))

let det t =
  let n = dim t in
  let d = ref t.sign in
  for i = 0 to n - 1 do
    d := !d *. t.lu.(i).(i)
  done;
  !d

let cond_inf_estimate m =
  let inv = inverse (decompose m) in
  Mat.norm_inf m *. Mat.norm_inf inv
