(** Numerically stable combinatorics: log-space factorials, binomial
    coefficients, and the binomial / hypergeometric probability mass
    functions used by the randomization-operator transition matrices. *)

val log_factorial : int -> float
(** [log_factorial n] is [ln n!], exact summation with memoization.
    Requires [n >= 0]. *)

val log_choose : int -> int -> float
(** [log_choose n k] is [ln C(n,k)]; [neg_infinity] outside [0 <= k <= n]. *)

val choose : int -> int -> float
(** [choose n k] as a float; [0.] outside the valid range.  Exact for all
    values representable in 53 bits. *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k] is [P(X = k)] for [X ~ Binomial(n, p)].
    Computed in log space; correct for the degenerate [p = 0] and [p = 1]
    cases. *)

val hypergeom_pmf : total:int -> good:int -> draws:int -> int -> float
(** [hypergeom_pmf ~total ~good ~draws q] is the probability that a uniform
    [draws]-subset of a [total]-element set containing [good] marked
    elements includes exactly [q] marked ones. *)

val log_pow : float -> int -> float
(** [log_pow p k] is [k * ln p], with the convention [log_pow 0. 0 = 0.]
    (so that [exp] of it is [p^k] including [0^0 = 1]). *)
