type t = float array

let create n = Array.make n 0.
let init = Array.init
let dim = Array.length
let copy = Array.copy

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch" name)

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale c = Array.map (fun x -> c *. x)

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum = Array.fold_left ( +. ) 0.
let norm2 a = sqrt (dot a a)
let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a

let max_abs_diff a b =
  check_dims "max_abs_diff" a b;
  norm_inf (sub a b)

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x -> Format.fprintf fmt "%s%g" (if i = 0 then "" else "; ") x)
    v;
  Format.fprintf fmt "|]"
