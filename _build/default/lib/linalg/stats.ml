let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.variance: need at least two samples";
  let m = mean xs in
  let acc = ref 0. in
  Array.iter
    (fun x ->
      let d = x -. m in
      acc := !acc +. (d *. d))
    xs;
  !acc /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let covariance xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Stats.covariance: length mismatch";
  if n < 2 then invalid_arg "Stats.covariance: need at least two samples";
  let mx = mean xs and my = mean ys in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let chi_square_uniform counts =
  let buckets = Array.length counts in
  if buckets = 0 then invalid_arg "Stats.chi_square_uniform: no buckets";
  let total = Array.fold_left ( + ) 0 counts in
  let expected = float_of_int total /. float_of_int buckets in
  if expected <= 0. then invalid_arg "Stats.chi_square_uniform: empty sample";
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0. counts

let rmse xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Stats.rmse: length mismatch";
  if n = 0 then invalid_arg "Stats.rmse: empty sample";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = xs.(i) -. ys.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

(* Acklam's inverse-normal-CDF approximation: three rational pieces. *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Stats.normal_quantile: argument must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let tail q sign =
    let u = sqrt (-2. *. log q) in
    sign
    *. ((((((c.(0) *. u) +. c.(1)) *. u +. c.(2)) *. u +. c.(3)) *. u +. c.(4)) *. u +. c.(5))
    /. ((((d.(0) *. u +. d.(1)) *. u +. d.(2)) *. u +. d.(3)) *. u +. 1.)
  in
  if p < p_low then tail p 1.
  else if p > 1. -. p_low then tail (1. -. p) (-1.)
  else begin
    let q = p -. 0.5 in
    let r = q *. q in
    q
    *. ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
  end
