(* Memoized table of ln n!.  Grown geometrically; exact summation keeps the
   relative error at the float rounding level for all n we use. *)
let table = ref [| 0. |]

let ensure n =
  let cur = Array.length !table in
  if n >= cur then begin
    let len = max (n + 1) (2 * cur) in
    let t = Array.make len 0. in
    Array.blit !table 0 t 0 cur;
    for i = cur to len - 1 do
      t.(i) <- t.(i - 1) +. log (float_of_int i)
    done;
    table := t
  end

let log_factorial n =
  if n < 0 then invalid_arg "Binomial.log_factorial: negative argument";
  ensure n;
  !table.(n)

let log_choose n k =
  if k < 0 || k > n || n < 0 then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose n k =
  if k < 0 || k > n || n < 0 then 0.
  else if k = 0 || k = n then 1.
  else exp (log_choose n k)

let log_pow p k =
  if k = 0 then 0.
  else if p <= 0. then neg_infinity
  else float_of_int k *. log p

let binomial_pmf ~n ~p k =
  if k < 0 || k > n then 0.
  else if p <= 0. then if k = 0 then 1. else 0.
  else if p >= 1. then if k = n then 1. else 0.
  else exp (log_choose n k +. log_pow p k +. log_pow (1. -. p) (n - k))

let hypergeom_pmf ~total ~good ~draws q =
  if
    q < 0 || q > good || q > draws
    || draws - q > total - good
    || draws > total || good > total
  then 0.
  else
    exp
      (log_choose good q
      +. log_choose (total - good) (draws - q)
      -. log_choose total draws)
