lib/linalg/stats.mli:
