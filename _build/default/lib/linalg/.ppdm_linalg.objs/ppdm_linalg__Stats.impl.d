lib/linalg/stats.ml: Array Float
