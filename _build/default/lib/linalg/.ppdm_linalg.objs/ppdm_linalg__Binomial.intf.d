lib/linalg/binomial.mli:
