lib/linalg/binomial.ml: Array
