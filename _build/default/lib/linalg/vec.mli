(** Dense float vectors. *)

type t = float array
(** A vector is a plain float array; the module adds checked algebra. *)

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> float) -> t

val dim : t -> int

val copy : t -> t

val add : t -> t -> t
(** Element-wise sum; dimensions must agree. *)

val sub : t -> t -> t
(** Element-wise difference; dimensions must agree. *)

val scale : float -> t -> t

val dot : t -> t -> float
(** Inner product; dimensions must agree. *)

val sum : t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry (0 for the empty vector). *)

val max_abs_diff : t -> t -> float
(** L-infinity distance between two vectors of equal dimension. *)

val pp : Format.formatter -> t -> unit
