type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: non-positive size";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
    arr;
  init ~rows ~cols (fun i j -> arr.(i).(j))

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.cols) + j) <- v

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch" name)

let add a b =
  same_shape "add" a b;
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let sub a b =
  same_shape "sub" a b;
  { a with data = Array.mapi (fun i x -> x -. b.data.(i)) a.data }

let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let m = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for l = 0 to a.cols - 1 do
      let ail = a.data.((i * a.cols) + l) in
      if ail <> 0. then
        for j = 0 to b.cols - 1 do
          m.data.((i * b.cols) + j) <-
            m.data.((i * b.cols) + j) +. (ail *. b.data.((l * b.cols) + j))
        done
    done
  done;
  m

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let col m j = Array.init m.rows (fun i -> get m i j)
let row m i = Array.init m.cols (fun j -> get m i j)

let outer u v =
  init ~rows:(Array.length u) ~cols:(Array.length v) (fun i j ->
      u.(i) *. v.(j))

let diag v =
  let n = Array.length v in
  init ~rows:n ~cols:n (fun i j -> if i = j then v.(i) else 0.)

let max_abs_diff a b =
  same_shape "max_abs_diff" a b;
  let acc = ref 0. in
  Array.iteri
    (fun i x -> acc := Float.max !acc (Float.abs (x -. b.data.(i))))
    a.data;
  !acc

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.rows - 1 do
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%s%10.6g" (if j = 0 then "" else " ") (get m i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
