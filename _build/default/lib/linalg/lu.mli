(** LU decomposition with partial pivoting, and the linear solvers built on
    it.  This is the numerical engine behind the partial-support estimator
    ([s = P^-1 s'] and its covariance conjugation). *)

type t
(** A factorization [P A = L U] of a square matrix [A]. *)

exception Singular
(** Raised when a pivot is exactly zero: the matrix is singular to working
    precision. *)

val decompose : Mat.t -> t
(** Factorize a square matrix.  @raise Singular on singular input and
    [Invalid_argument] on non-square input. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] is the [x] with [A x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Column-wise solve: [solve_mat lu B] is [A^-1 B]. *)

val inverse : t -> Mat.t

val det : t -> float
(** Determinant of the factorized matrix. *)

val cond_inf_estimate : Mat.t -> float
(** [cond_inf_estimate a] is [||A||_inf * ||A^-1||_inf], the exact
    infinity-norm condition number (computed via the explicit inverse;
    intended for the small matrices this library manipulates).
    @raise Singular on singular input. *)
