(** Summary statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator).  Requires at least two
    samples. *)

val std : float array -> float
(** Square root of {!variance}. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance of paired samples of equal length >= 2. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1]: linear interpolation between order
    statistics.  Requires a non-empty array.  Does not modify [xs]. *)

val chi_square_uniform : int array -> float
(** Chi-square statistic of observed bucket counts against the uniform
    distribution over the buckets; used by the PRNG sanity tests. *)

val rmse : float array -> float array -> float
(** Root-mean-square error between paired arrays of equal length. *)

val normal_quantile : float -> float
(** Inverse CDF of the standard normal (Acklam's rational approximation,
    relative error below 1.2e-9).  Requires the argument in (0, 1). *)
