(** Association-rule generation from frequent itemsets: the consumer-facing
    output of the mining pipeline (and of its privacy-preserving variant). *)

open Ppdm_data

type rule = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  support : float;  (** support of antecedent ∪ consequent *)
  confidence : float;  (** support(ante ∪ cons) / support(ante) *)
  lift : float;  (** confidence / support(cons) *)
}

val generate :
  frequent:(Itemset.t * int) list ->
  n_transactions:int ->
  min_confidence:float ->
  rule list
(** All rules [A => C] with [A], [C] disjoint non-empty, [A ∪ C] in the
    frequent list, and confidence at least [min_confidence].  Requires the
    frequent list to be downward-closed (as produced by the miners), since
    antecedent supports are looked up there.  Rules are ordered by
    decreasing confidence, then decreasing support. *)

val pp_rule : Format.formatter -> rule -> unit
