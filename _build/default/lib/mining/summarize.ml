open Ppdm_data

(* Mark the immediate subsets of every itemset: a k-itemset is non-maximal
   if any (k+1)-superset is frequent, non-closed if additionally the
   superset has the same count.  Enumerating each itemset's (k-1)-subsets
   touches every cover edge exactly once. *)
let classify frequent =
  let non_maximal = Hashtbl.create 64 in
  let non_closed = Hashtbl.create 64 in
  List.iter
    (fun (s, count) ->
      let k = Itemset.cardinal s in
      if k >= 2 then
        List.iter
          (fun sub ->
            Hashtbl.replace non_maximal sub ();
            ignore count)
          (Itemset.subsets_of_size s (k - 1)))
    frequent;
  let counts = Hashtbl.create 64 in
  List.iter (fun (s, c) -> Hashtbl.replace counts s c) frequent;
  List.iter
    (fun (s, count) ->
      let k = Itemset.cardinal s in
      if k >= 2 then
        List.iter
          (fun sub ->
            match Hashtbl.find_opt counts sub with
            | Some sub_count when sub_count = count ->
                Hashtbl.replace non_closed sub ()
            | _ -> ())
          (Itemset.subsets_of_size s (k - 1)))
    frequent;
  (non_maximal, non_closed)

let closed frequent =
  let _, non_closed = classify frequent in
  List.sort
    (fun (a, _) (b, _) -> Itemset.compare a b)
    (List.filter (fun (s, _) -> not (Hashtbl.mem non_closed s)) frequent)

let maximal frequent =
  let non_maximal, _ = classify frequent in
  List.sort
    (fun (a, _) (b, _) -> Itemset.compare a b)
    (List.filter (fun (s, _) -> not (Hashtbl.mem non_maximal s)) frequent)

let support_from_closed ~closed itemset =
  List.fold_left
    (fun best (s, count) ->
      if Itemset.subset itemset s then
        match best with
        | Some b when b >= count -> best
        | _ -> Some count
      else best)
    None closed
