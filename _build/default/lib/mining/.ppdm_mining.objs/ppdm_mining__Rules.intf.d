lib/mining/rules.mli: Format Itemset Ppdm_data
