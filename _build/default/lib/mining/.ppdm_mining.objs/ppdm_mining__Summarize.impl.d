lib/mining/summarize.ml: Hashtbl Itemset List Ppdm_data
