lib/mining/apriori.ml: Array Count Db Float Hashtbl Itemset List Option Ppdm_data Seq
