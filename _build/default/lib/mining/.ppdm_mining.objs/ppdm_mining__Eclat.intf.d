lib/mining/eclat.mli: Db Itemset Ppdm_data
