lib/mining/count.mli: Db Itemset Ppdm_data
