lib/mining/count.ml: Array Db Hashtbl Itemset List Ppdm_data
