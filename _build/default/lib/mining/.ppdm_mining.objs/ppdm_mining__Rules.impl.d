lib/mining/rules.ml: Float Format Hashtbl Itemset List Ppdm_data
