lib/mining/fptree.ml: Array Db Float Hashtbl Itemset List Option Ppdm_data
