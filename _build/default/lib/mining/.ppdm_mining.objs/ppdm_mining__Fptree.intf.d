lib/mining/fptree.mli: Db Itemset Ppdm_data
