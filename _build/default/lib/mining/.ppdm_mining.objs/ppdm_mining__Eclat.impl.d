lib/mining/eclat.ml: Array Db Float Fun Itemset List Option Ppdm_data
