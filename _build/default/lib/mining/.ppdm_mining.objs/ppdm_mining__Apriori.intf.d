lib/mining/apriori.mli: Db Itemset Ppdm_data
