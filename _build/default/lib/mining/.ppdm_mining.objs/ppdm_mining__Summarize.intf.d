lib/mining/summarize.mli: Itemset Ppdm_data
