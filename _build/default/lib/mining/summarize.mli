(** Condensed representations of a frequent-itemset collection.

    The full frequent collection is hugely redundant; the standard
    condensed forms are *closed* itemsets (no proper superset with the
    same support — lossless: every frequent itemset's support is the max
    over its closed supersets) and *maximal* itemsets (no frequent proper
    superset — lossy but smallest).  Both operate on the output of any of
    the miners, which is downward-closed by construction. *)

open Ppdm_data

val closed : (Itemset.t * int) list -> (Itemset.t * int) list
(** Closed itemsets of a downward-closed frequent collection, in
    {!Itemset.compare} order. *)

val maximal : (Itemset.t * int) list -> (Itemset.t * int) list
(** Maximal itemsets, in {!Itemset.compare} order.  Always a subset of
    {!closed}. *)

val support_from_closed :
  closed:(Itemset.t * int) list -> Itemset.t -> int option
(** Reconstruct the support of any frequent itemset from the closed
    collection: the maximum count among closed supersets; [None] when the
    itemset was not frequent. *)
