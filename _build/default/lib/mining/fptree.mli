(** FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000): the
    pattern-growth baseline Apriori is benchmarked against.  Produces the
    same result set as {!Apriori.mine}; differs only in runtime shape
    (no candidate generation, two database passes). *)

open Ppdm_data

val mine :
  ?max_size:int -> Db.t -> min_support:float -> (Itemset.t * int) list
(** Same contract as {!Apriori.mine}: all itemsets with support at least
    [min_support], with absolute counts, in {!Itemset.compare} order.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)
