open Ppdm_data

type rule = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  support : float;
  confidence : float;
  lift : float;
}

let generate ~frequent ~n_transactions ~min_confidence =
  if min_confidence < 0. || min_confidence > 1. then
    invalid_arg "Rules.generate: min_confidence out of [0,1]";
  if n_transactions <= 0 then
    invalid_arg "Rules.generate: n_transactions must be positive";
  let total = float_of_int n_transactions in
  let counts = Hashtbl.create (2 * List.length frequent) in
  List.iter (fun (s, c) -> Hashtbl.replace counts s c) frequent;
  let count_of s = Hashtbl.find_opt counts s in
  let rules = ref [] in
  List.iter
    (fun (itemset, count) ->
      let k = Itemset.cardinal itemset in
      if k >= 2 then
        for ante_size = 1 to k - 1 do
          List.iter
            (fun ante ->
              match count_of ante with
              | None -> () (* not downward-closed: skip defensively *)
              | Some ante_count ->
                  let confidence =
                    float_of_int count /. float_of_int ante_count
                  in
                  if confidence >= min_confidence then begin
                    let consequent = Itemset.diff itemset ante in
                    let lift =
                      match count_of consequent with
                      | Some cons_count when cons_count > 0 ->
                          confidence /. (float_of_int cons_count /. total)
                      | _ -> Float.nan
                    in
                    rules :=
                      {
                        antecedent = ante;
                        consequent;
                        support = float_of_int count /. total;
                        confidence;
                        lift;
                      }
                      :: !rules
                  end)
            (Itemset.subsets_of_size itemset ante_size)
        done)
    frequent;
  List.sort
    (fun a b ->
      let c = Float.compare b.confidence a.confidence in
      if c <> 0 then c else Float.compare b.support a.support)
    !rules

let pp_rule fmt r =
  Format.fprintf fmt "%a => %a  (sup %.4f, conf %.3f, lift %.2f)" Itemset.pp
    r.antecedent Itemset.pp r.consequent r.support r.confidence r.lift
