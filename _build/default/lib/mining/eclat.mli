(** Eclat frequent-itemset mining (Zaki, TKDE 2000): depth-first search
    over the vertical (tid-set) representation.  A third miner alongside
    {!Apriori} and {!Fptree} — identical output, different runtime shape
    (intersection-bound rather than candidate- or tree-bound), used by the
    miner-comparison benchmark. *)

open Ppdm_data

val mine :
  ?max_size:int -> Db.t -> min_support:float -> (Itemset.t * int) list
(** Same contract as {!Apriori.mine}: every itemset with support at least
    [min_support], with absolute counts, in {!Itemset.compare} order.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)
