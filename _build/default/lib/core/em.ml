open Ppdm_data
open Ppdm_linalg

type t = {
  support : float;
  partials : float array;
  iterations : int;
  log_likelihood : float;
}

(* EM for one size class: counts c_(l') of observed levels, transition
   matrix column-indexed by the true level. *)
let em_class (resolved : Randomizer.resolved) ~k ~max_iterations ~tolerance
    counts =
  let m = Array.length resolved.keep_dist - 1 in
  let levels = min k m + 1 in
  let p = Transition.rect_matrix resolved ~k in
  let n = Array.fold_left ( + ) 0 counts in
  let observed = Array.map float_of_int counts in
  (* uniform start strictly inside the simplex *)
  let s = Array.make levels (1. /. float_of_int levels) in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let next = Array.make levels 0. in
    for l' = 0 to k do
      if observed.(l') > 0. then begin
        let mix = ref 0. in
        for l = 0 to levels - 1 do
          mix := !mix +. (s.(l) *. Mat.get p l' l)
        done;
        if !mix > 0. then
          for l = 0 to levels - 1 do
            next.(l) <-
              next.(l)
              +. (observed.(l') *. s.(l) *. Mat.get p l' l /. !mix)
          done
      end
    done;
    let total = Array.fold_left ( +. ) 0. next in
    let delta = ref 0. in
    for l = 0 to levels - 1 do
      let v = if total > 0. then next.(l) /. total else s.(l) in
      delta := Float.max !delta (Float.abs (v -. s.(l)));
      s.(l) <- v
    done;
    if !delta < tolerance then converged := true
  done;
  let log_likelihood = ref 0. in
  for l' = 0 to k do
    if observed.(l') > 0. then begin
      let mix = ref 0. in
      for l = 0 to levels - 1 do
        mix := !mix +. (s.(l) *. Mat.get p l' l)
      done;
      log_likelihood := !log_likelihood +. (observed.(l') *. log (Float.max !mix 1e-300))
    end
  done;
  (* pad structural zeros for levels above the transaction size *)
  let partials = Array.make (k + 1) 0. in
  Array.blit s 0 partials 0 levels;
  (partials, n, !iterations, !log_likelihood)

let estimate_from_counts ?(max_iterations = 10_000) ?(tolerance = 1e-10)
    ~scheme ~k ~counts () =
  let total =
    List.fold_left (fun acc (_, c) -> acc + Array.fold_left ( + ) 0 c) 0 counts
  in
  if total = 0 then invalid_arg "Em.estimate_from_counts: empty counts";
  let partials = Array.make (k + 1) 0. in
  let iterations = ref 0 and log_likelihood = ref 0. in
  List.iter
    (fun (size, class_counts) ->
      let resolved = Randomizer.resolve scheme ~size in
      let class_partials, n, iters, ll =
        em_class resolved ~k ~max_iterations ~tolerance class_counts
      in
      let w = float_of_int n /. float_of_int total in
      for l = 0 to k do
        partials.(l) <- partials.(l) +. (w *. class_partials.(l))
      done;
      iterations := max !iterations iters;
      log_likelihood := !log_likelihood +. ll)
    counts;
  {
    support = partials.(k);
    partials;
    iterations = !iterations;
    log_likelihood = !log_likelihood;
  }

let estimate ?max_iterations ?tolerance ~scheme ~data ~itemset () =
  if Array.length data = 0 then invalid_arg "Em.estimate: empty data";
  let k = Itemset.cardinal itemset in
  let counts = Estimator.observed_partial_counts data ~itemset in
  estimate_from_counts ?max_iterations ?tolerance ~scheme ~k ~counts ()
