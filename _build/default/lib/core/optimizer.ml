open Ppdm_linalg

type objective =
  | Max_kept
  | Min_sigma of { k : int; n : int; p_bg : float; support : float }
  | Min_sigma_upto of { k_max : int; n : int; p_bg : float; support : float }

let log_g ~m ~rho j =
  Binomial.log_choose m j +. (float_of_int j *. (log rho -. log (1. -. rho)))

(* Normalized keep distribution from a vertex u ∈ {1, γ}^(m+1), computed
   through log-sum-exp so extreme m / rho combinations stay finite. *)
let dist_of_vertex ~m ~rho ~gamma high =
  let logs =
    Array.init (m + 1) (fun j ->
        log_g ~m ~rho j +. if high.(j) then log gamma else 0.)
  in
  let top = Array.fold_left Float.max neg_infinity logs in
  let unnorm = Array.map (fun l -> exp (l -. top)) logs in
  let total = Array.fold_left ( +. ) 0. unnorm in
  Array.map (fun v -> v /. total) unnorm

(* Build the scoring closure once per (rho, objective): the Min_sigma
   profile is shared by every vertex evaluation. *)
let make_scorer ~m ~rho objective =
  match objective with
  | Max_kept ->
      fun dist ->
        let acc = ref 0. in
        Array.iteri (fun j p -> acc := !acc +. (p *. float_of_int j)) dist;
        !acc /. float_of_int m
  | Min_sigma { k; n; p_bg; support } ->
      let partials = Estimator.binomial_profile ~k ~p_bg ~support in
      fun dist -> (
        let resolved : Randomizer.resolved = { keep_dist = dist; rho } in
        (* Negated so that "higher is better" holds for every objective.
           An uninformative vertex (all u_j equal) has a singular
           transition matrix: infinite sigma, never optimal. *)
        match Estimator.predicted_sigma resolved ~k ~partials ~n with
        | sigma -> -.sigma
        | exception Lu.Singular -> neg_infinity)
  | Min_sigma_upto { k_max; n; p_bg; support } ->
      let ks = List.init (min k_max m) (fun i -> i + 1) in
      let profiles =
        List.map (fun k -> (k, Estimator.binomial_profile ~k ~p_bg ~support)) ks
      in
      fun dist -> (
        let resolved : Randomizer.resolved = { keep_dist = dist; rho } in
        match
          List.fold_left
            (fun acc (k, partials) ->
              acc +. Estimator.predicted_sigma resolved ~k ~partials ~n)
            0. profiles
        with
        | total -> -.total
        | exception Lu.Singular -> neg_infinity)

let score ~m ~rho objective dist = make_scorer ~m ~rho objective dist

let validate ~m ~rho ~gamma =
  if m < 1 then invalid_arg "Optimizer: m must be >= 1";
  if rho <= 0. || rho >= 1. then invalid_arg "Optimizer: rho must be in (0,1)";
  if gamma < 1. then invalid_arg "Optimizer: gamma must be >= 1";
  (match gamma with
  | g when Float.is_nan g -> invalid_arg "Optimizer: gamma is NaN"
  | _ -> ())

let keep_dist ~m ~rho ~gamma objective =
  validate ~m ~rho ~gamma;
  let scorer = make_scorer ~m ~rho objective in
  let best = ref None in
  let consider high =
    let dist = dist_of_vertex ~m ~rho ~gamma high in
    let value = scorer dist in
    match !best with
    | Some (_, v) when v >= value -> ()
    | _ -> best := Some ((Array.copy high, dist), value)
  in
  (* All threshold vertices: u_j = γ exactly for j >= j*. *)
  for threshold = 0 to m + 1 do
    consider (Array.init (m + 1) (fun j -> j >= threshold))
  done;
  (match objective with
  | Max_kept -> () (* threshold vertices are provably optimal *)
  | (Min_sigma _ | Min_sigma_upto _) when m <= 8 ->
      (* Small sizes: the vertex set is tiny, enumerate it exactly. *)
      for mask = 0 to (1 lsl (m + 1)) - 1 do
        consider (Array.init (m + 1) (fun j -> mask land (1 lsl j) <> 0))
      done
  | Min_sigma _ | Min_sigma_upto _ ->
      (* Coordinate-flip descent from the best threshold vertex. *)
      let improved = ref true and rounds = ref 0 in
      while !improved && !rounds < 10 do
        improved := false;
        incr rounds;
        let (high, _), value = Option.get !best in
        for j = 0 to m do
          let candidate = Array.copy high in
          candidate.(j) <- not candidate.(j);
          let dist = dist_of_vertex ~m ~rho ~gamma candidate in
          let v = scorer dist in
          if v > value +. 1e-15 then begin
            best := Some ((candidate, dist), v);
            improved := true
          end
        done
      done);
  let (_, dist), _ = Option.get !best in
  dist

type design = {
  rho : float;
  dist : float array;
  value : float;
  gamma : float;
}

let default_rho_grid =
  Array.init 20 (fun i ->
      let t = float_of_int i /. 19. in
      exp (log 1e-3 +. (t *. (log 0.5 -. log 1e-3))))

let evaluate_rho ~m ~gamma objective rho =
  let dist = keep_dist ~m ~rho ~gamma objective in
  (dist, score ~m ~rho objective dist)

let design ?(rho_grid = default_rho_grid) ~m ~gamma objective =
  if Array.length rho_grid = 0 then invalid_arg "Optimizer.design: empty grid";
  let best_rho = ref rho_grid.(0) and best_value = ref neg_infinity in
  let best_dist = ref [||] in
  Array.iter
    (fun rho ->
      let dist, value = evaluate_rho ~m ~gamma objective rho in
      if value > !best_value then begin
        best_value := value;
        best_rho := rho;
        best_dist := dist
      end)
    rho_grid;
  (* Golden-section refinement on log rho around the best grid point. *)
  let lo = Float.max 1e-4 (!best_rho /. 3.) and hi = Float.min 0.5 (!best_rho *. 3.) in
  let phi = (sqrt 5. -. 1.) /. 2. in
  let a = ref (log lo) and b = ref (log hi) in
  for _ = 1 to 14 do
    let x1 = !b -. (phi *. (!b -. !a)) and x2 = !a +. (phi *. (!b -. !a)) in
    let _, v1 = evaluate_rho ~m ~gamma objective (exp x1) in
    let _, v2 = evaluate_rho ~m ~gamma objective (exp x2) in
    if v1 > v2 then b := x2 else a := x1
  done;
  let rho_refined = exp (0.5 *. (!a +. !b)) in
  let dist_refined, value_refined = evaluate_rho ~m ~gamma objective rho_refined in
  let rho, dist, value =
    if value_refined > !best_value then (rho_refined, dist_refined, value_refined)
    else (!best_rho, !best_dist, !best_value)
  in
  let realized =
    Amplification.gamma_resolved { keep_dist = dist; rho }
  in
  { rho; dist; value; gamma = realized }

let design_for_estimation ?k ?(n = 100_000) ?(p_bg = 0.02) ?(support = 0.01)
    ~m ~gamma () =
  let k_max = min (Option.value k ~default:3) m in
  design ~m ~gamma (Min_sigma_upto { k_max; n; p_bg; support })

let scheme_for_estimation ?k ?(n = 100_000) ?(p_bg = 0.02) ?(support = 0.01)
    ?(representative_size = 8) ~universe ~gamma () =
  let shared_rho =
    (design_for_estimation ?k ~n ~p_bg ~support ~m:representative_size ~gamma ())
      .rho
  in
  Randomizer.per_size ~universe
    ~name:(Printf.sprintf "optimized-sas(gamma=%g,rho=%.4g)" gamma shared_rho)
    (fun m ->
      if m = 0 then { Randomizer.keep_dist = [| 1. |]; rho = shared_rho }
      else begin
        let objective =
          Min_sigma_upto
            { k_max = min (Option.value k ~default:3) m; n; p_bg; support }
        in
        {
          Randomizer.keep_dist = keep_dist ~m ~rho:shared_rho ~gamma objective;
          rho = shared_rho;
        }
      end)

let cut_and_paste_best ~universe ~m ~worst_posterior ~prior =
  if m < 1 then invalid_arg "Optimizer.cut_and_paste_best: m must be >= 1";
  let best = ref None in
  (* cutoffs beyond m still matter: they shift mass of min(U{0..K}, m)
     towards keeping the whole transaction *)
  for cutoff = 0 to 3 * m do
    Array.iter
      (fun rho ->
        let scheme = Randomizer.cut_and_paste ~universe ~cutoff ~rho in
        let resolved = Randomizer.resolve scheme ~size:m in
        let breach = Breach.worst_item_posterior resolved ~prior in
        if breach <= worst_posterior then begin
          let kept = Randomizer.expected_kept_fraction scheme ~size:m in
          match !best with
          | Some (_, _, k) when k >= kept -> ()
          | _ -> best := Some (cutoff, rho, kept)
        end)
      default_rho_grid
  done;
  Option.map (fun (cutoff, rho, _) -> (cutoff, rho)) !best
