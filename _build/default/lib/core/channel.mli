(** Generic randomization channels over finite domains.

    The paper's amplification framework is not specific to itemsets: any
    randomization operator over a finite value domain is a column-
    stochastic matrix [C] with [C(y|x) = P(output = y | input = x)], its
    amplification is [γ = max_y max_{x1,x2} C(y|x1)/C(y|x2)], and the
    breach-prevention theorem applies verbatim.  This module provides that
    general form — the itemset transition matrices of {!Transition} are
    one instance, the binned numeric-attribute channels of
    {!Ppdm_numeric} (built on this) another.

    Distribution recovery mirrors the itemset estimators: unbiased matrix
    inversion or maximum-likelihood EM over observed output counts. *)

open Ppdm_prng
open Ppdm_linalg

type t
(** A channel with [inputs] input symbols and [outputs] output symbols. *)

val create : Mat.t -> t
(** Adopt a matrix with entry [(y, x) = P(y | x)].
    @raise Invalid_argument unless every column is a probability vector
    (tolerance 1e-9). *)

val inputs : t -> int
val outputs : t -> int

val probability : t -> x:int -> y:int -> float

val matrix : t -> Mat.t
(** Defensive copy of the underlying matrix. *)

val gamma : t -> float
(** Worst-case amplification; [infinity] if some output separates two
    inputs with probability ratio unbounded (a zero against a non-zero). *)

val gamma_for_output : t -> y:int -> float
(** Amplification restricted to one output symbol. *)

val randomized_response : size:int -> epsilon:float -> t
(** The classical ε-LDP randomized-response channel over [size] symbols:
    keep the true symbol with probability [e^ε / (e^ε + size - 1)],
    otherwise emit a uniformly random other symbol.  Its {!gamma} is
    exactly [e^ε]. *)

val geometric_noise : size:int -> alpha:float -> t
(** Truncated-geometric additive noise on an ordered domain of [size]
    bins: [P(y|x) ∝ alpha^|y-x|] with [0 < alpha < 1] — the discrete
    (binned) analogue of additive Laplace noise on a numeric attribute.
    γ is finite and decreases as [alpha → 1]. *)

val compose : t -> t -> t
(** [compose second first] feeds outputs of [first] into [second];
    γ of the composite never exceeds the smaller of the two (processing
    cannot create information). *)

val apply : t -> Rng.t -> int -> int
(** Randomize one input symbol. *)

val posterior : t -> prior:Vec.t -> y:int -> Vec.t
(** Exact Bayes posterior over inputs given output [y] under a prior.
    @raise Invalid_argument if the output has zero probability under the
    prior or the prior is not a probability vector. *)

(** {1 Distribution recovery from randomized outputs} *)

val estimate_inversion : t -> counts:int array -> Vec.t
(** Unbiased recovery of the input distribution from output counts:
    [C⁻¹ ĉ/N].  Requires a square channel.
    @raise Ppdm_linalg.Lu.Singular on non-invertible channels. *)

val estimate_em :
  ?max_iterations:int -> ?tolerance:float -> t -> counts:int array -> Vec.t
(** Maximum-likelihood recovery by EM; always a probability vector. *)
