(** Privacy accounting across composed releases.

    Independent randomized releases about the same client compose: an
    adversary seeing both outputs multiplies likelihood ratios, so
    amplifications multiply (ε = ln γ adds).  The accountant tracks the
    releases charged against one budget and refuses to certify past it —
    the operational discipline the paper's repeated-randomization caveat
    calls for. *)

type t
(** A mutable ledger against a fixed γ budget. *)

val create : budget_gamma:float -> t
(** @raise Invalid_argument unless [budget_gamma >= 1]. *)

val budget_gamma : t -> float

val spent_gamma : t -> float
(** Product of the charged amplifications (1 when nothing is charged). *)

val spent_epsilon : t -> float
(** [ln (spent_gamma)]. *)

val remaining_gamma : t -> float
(** The largest γ a further release may use: [budget / spent]. *)

val charge : t -> gamma:float -> label:string -> (unit, string) result
(** Record a release.  [Error] (with a human-readable reason, nothing
    recorded) when the release would exceed the budget, when [gamma < 1],
    or when it is infinite. *)

val releases : t -> (string * float) list
(** Charged releases, oldest first. *)

val posterior_bound : t -> prior:float -> float
(** The ceiling on any posterior after *all* charged releases combined
    (the theorem applied at the composed γ). *)
