(** Transition matrices of randomization operators on partial supports.

    Fix a [k]-itemset [A] and a transaction size [m].  A transaction with
    [l = |t ∩ A|] yields a randomized output with [l' = |R(t) ∩ A|]
    distributed as

    [P(l' | l) = Σ_j p_j · Σ_q Hyp(q; m, l, j) · Bin(l' - q; k - l, ρ)]

    (keep [q] of the [l] in-transaction items of [A], add noise on the
    [k - l] out-of-transaction ones).  The matrix [P] with entry [(l', l)]
    is column-stochastic; support recovery is [s = P⁻¹ ŝ'].  Everything is
    computed in log space through {!Ppdm_linalg.Binomial}. *)

open Ppdm_linalg

val probability : Randomizer.resolved -> k:int -> l:int -> l':int -> float
(** One entry [P(l' | l)].  [l] must not exceed [min (k, m)]; [l'] ranges
    over [0..k]. *)

val matrix : Randomizer.resolved -> k:int -> Mat.t
(** Square [(k+1) × (k+1)] matrix, entry [(l', l) = P(l' | l)].  Requires
    [k <= m] (every partial-support level realizable).
    @raise Invalid_argument otherwise — use {!rect_matrix} for small
    transactions. *)

val rect_matrix : Randomizer.resolved -> k:int -> Mat.t
(** Rectangular [(k+1) × (min(k,m)+1)] matrix for transactions smaller
    than the itemset: columns only for realizable [l].  Equal to
    {!matrix} when [k <= m]. *)

val of_scheme : Randomizer.t -> size:int -> k:int -> Mat.t
(** {!matrix} of the operator a scheme uses at [size]. *)

val is_column_stochastic : ?tolerance:float -> Mat.t -> bool
(** Sanity check used by the test suite: all entries non-negative and
    every column summing to 1 within the tolerance (default 1e-9). *)
