open Ppdm_data

let keep_probability (r : Randomizer.resolved) =
  let m = Array.length r.keep_dist - 1 in
  if m = 0 then 1.
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun j p -> acc := !acc +. (p *. float_of_int j))
      r.keep_dist;
    !acc /. float_of_int m
  end

let check_prior prior =
  if prior < 0. || prior > 1. then invalid_arg "Breach: prior out of [0,1]"

(* Bayes over the two-channel observation "a in R(t)?": item present in t
   survives with the keep probability, item absent appears as noise with
   rate rho. *)
let item_posterior_present r ~prior =
  check_prior prior;
  let q_in = keep_probability r and q_out = r.rho in
  let num = prior *. q_in in
  let denom = num +. ((1. -. prior) *. q_out) in
  if denom <= 0. then 0. else num /. denom

let item_posterior_absent r ~prior =
  check_prior prior;
  let q_in = keep_probability r and q_out = r.rho in
  let num = prior *. (1. -. q_in) in
  let denom = num +. ((1. -. prior) *. (1. -. q_out)) in
  if denom <= 0. then 0. else num /. denom

let worst_item_posterior r ~prior =
  Float.max (item_posterior_present r ~prior) (item_posterior_absent r ~prior)

let itemset_posterior r ~partials =
  let k = Array.length partials - 1 in
  let total = Array.fold_left ( +. ) 0. partials in
  if Float.abs (total -. 1.) > 1e-6 then
    invalid_arg "Breach.itemset_posterior: partials must sum to 1";
  (* P(A ⊆ R(t)) = Σ_l s_l P(k | l); the l = k term is the "cause". *)
  let denom = ref 0. in
  for l = 0 to k do
    if partials.(l) > 0. then
      denom := !denom +. (partials.(l) *. Transition.probability r ~k ~l ~l':k)
  done;
  if !denom <= 0. then 0.
  else partials.(k) *. Transition.probability r ~k ~l:k ~l':k /. !denom

let empirical_item_posteriors ~original ~randomized ~item =
  if Db.length original <> Db.length randomized then
    invalid_arg "Breach.empirical_item_posteriors: database length mismatch";
  let in_both = ref 0 and in_rand = ref 0 in
  let in_orig_only = ref 0 and in_neither = ref 0 in
  Db.iteri
    (fun i tx ->
      let was = Itemset.mem item tx in
      let is = Itemset.mem item (Db.get randomized i) in
      match (was, is) with
      | true, true -> incr in_both
      | true, false -> incr in_orig_only
      | false, true -> incr in_rand
      | false, false -> incr in_neither)
    original;
  let present_total = !in_both + !in_rand in
  let absent_total = !in_orig_only + !in_neither in
  let present =
    if present_total = 0 then 0.
    else float_of_int !in_both /. float_of_int present_total
  in
  let absent =
    if absent_total = 0 then 0.
    else float_of_int !in_orig_only /. float_of_int absent_total
  in
  (present, absent)

let empirical_worst_item_posterior ~original ~randomized =
  let counts = Db.item_counts original in
  let worst = ref 0. in
  Array.iteri
    (fun item c ->
      if c > 0 then begin
        let present, absent =
          empirical_item_posteriors ~original ~randomized ~item
        in
        worst := Float.max !worst (Float.max present absent)
      end)
    counts;
  !worst
