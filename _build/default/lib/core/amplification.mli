(** Amplification analysis: the paper's distribution-free privacy measure.

    An operator is *at most γ-amplifying* when
    [p(t1 → y) / p(t2 → y) <= γ] for all same-size transactions [t1, t2]
    and all outputs [y].  The breach-prevention theorem then bounds every
    posterior, for every property and every prior distribution:

    - no upward ρ1-to-ρ2 breach when [γ < ρ2 (1 - ρ1) / (ρ1 (1 - ρ2))].

    For a select-a-size operator the transition probability factorizes
    through [a = |t ∩ y|], giving the closed form implemented here:
    [γ = exp (max_a f(a) - min_a f(a))] with
    [f(a) = ln p_a - ln C(m,a) + a ln ((1-ρ)/ρ)].  γ is infinite when some
    [p_a] is zero (an output can then *exclude* a transaction with
    certainty) and when [ρ] is 0 or 1. *)

val gamma_resolved : Randomizer.resolved -> float
(** Worst-case amplification of one per-size operator ([infinity] when
    unbounded).  Assumes the universe is large enough that every
    intersection pattern is realizable ([n >= 3m] suffices); schemes built
    by this library satisfy that in all shipped experiments. *)

val gamma : Randomizer.t -> size:int -> float
(** [gamma scheme ~size] is {!gamma_resolved} of the operator the scheme
    uses at that transaction size. *)

val gamma_breach_limit : rho1:float -> rho2:float -> float
(** Largest γ that provably prevents every upward ρ1-to-ρ2 breach:
    [ρ2 (1 - ρ1) / (ρ1 (1 - ρ2))].  Requires [0 < rho1 < rho2 < 1]. *)

val prevents_breach : gamma:float -> rho1:float -> rho2:float -> bool
(** Whether a γ-amplifying operator rules out upward ρ1-to-ρ2 breaches. *)

val prevents_downward_breach : gamma:float -> rho1:float -> rho2:float -> bool
(** Whether it also rules out *downward* ρ2-to-ρ1 breaches (a property
    with prior at least ρ2 being revealed to have posterior at most ρ1).
    By the symmetric odds inequality the threshold is the same
    [ρ2(1−ρ1)/(ρ1(1−ρ2))] constant, so this coincides with
    {!prevents_breach}; it is exposed separately because the paper states
    the two notions separately. *)

val posterior_upper_bound : gamma:float -> prior:float -> float
(** Distribution-free posterior ceiling: for any property with prior π,
    every posterior is at most [γπ / (1 + (γ-1)π)]. *)

val posterior_lower_bound : gamma:float -> prior:float -> float
(** Symmetric floor: every posterior is at least [π / (γ(1-π) + π)]
    (no downward breach below this value). *)

val log_transition : Randomizer.resolved -> intersection:int -> float
(** [log_transition r ~intersection:a] is the size-independent part of
    [ln p(t → y)] as a function of [a = |t ∩ y|], i.e. [f(a)] above plus
    output-only terms dropped; exposed for tests that brute-force
    transition probabilities on tiny universes. *)
