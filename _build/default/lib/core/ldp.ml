let epsilon_of_gamma gamma =
  if gamma < 1. then invalid_arg "Ldp.epsilon_of_gamma: gamma must be >= 1";
  log gamma

let gamma_of_epsilon epsilon =
  if epsilon < 0. then invalid_arg "Ldp.gamma_of_epsilon: negative epsilon";
  exp epsilon

let rr_keep_probability ~epsilon_per_item =
  if epsilon_per_item < 0. then
    invalid_arg "Ldp.rr_keep_probability: negative epsilon";
  let e = exp epsilon_per_item in
  e /. (1. +. e)

let randomized_response ~universe ~epsilon_per_item =
  let p = rr_keep_probability ~epsilon_per_item in
  Randomizer.uniform ~universe ~p_keep:p ~p_add:(1. -. p)

let item_epsilon_of_uniform ~p_keep ~p_add =
  let ratio a b =
    if a = b then 0.
    else if b <= 0. || a <= 0. then infinity
    else Float.abs (log (a /. b))
  in
  Float.max (ratio p_keep p_add) (ratio (1. -. p_keep) (1. -. p_add))

let gamma_uniform ~size ~p_keep ~p_add =
  (* A dummy universe: amplification only depends on the per-size
     operator, not on the universe size. *)
  let scheme = Randomizer.uniform ~universe:(max 1 (3 * size)) ~p_keep ~p_add in
  Amplification.gamma scheme ~size

let rr_epsilon_for_gamma ~size ~gamma =
  if gamma <= 1. then invalid_arg "Ldp.rr_epsilon_for_gamma: gamma must be > 1";
  let gamma_at epsilon =
    let p = rr_keep_probability ~epsilon_per_item:epsilon in
    gamma_uniform ~size ~p_keep:p ~p_add:(1. -. p)
  in
  (* gamma_at is continuous and strictly increasing in epsilon (more truth
     per bit means sharper likelihood ratios); bisection suffices. *)
  let lo = ref 1e-9 and hi = ref 1. in
  while gamma_at !hi < gamma && !hi < 60. do
    hi := !hi *. 2.
  done;
  for _ = 1 to 80 do
    let mid = 0.5 *. (!lo +. !hi) in
    if gamma_at mid < gamma then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
