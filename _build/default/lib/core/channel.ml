open Ppdm_prng
open Ppdm_linalg

type t = {
  matrix : Mat.t; (* entry (y, x) = P(y | x) *)
  samplers : Dist.discrete array Lazy.t; (* one alias table per input *)
}

let validate m =
  for x = 0 to Mat.cols m - 1 do
    let total = ref 0. in
    for y = 0 to Mat.rows m - 1 do
      let v = Mat.get m y x in
      if v < 0. then invalid_arg "Channel.create: negative probability";
      total := !total +. v
    done;
    if Float.abs (!total -. 1.) > 1e-9 then
      invalid_arg "Channel.create: column does not sum to 1"
  done

let of_matrix m =
  {
    matrix = m;
    samplers =
      lazy
        (Array.init (Mat.cols m) (fun x ->
             Dist.discrete (Mat.col m x)));
  }

let create m =
  validate m;
  of_matrix (Mat.copy m)

let inputs t = Mat.cols t.matrix
let outputs t = Mat.rows t.matrix

let probability t ~x ~y =
  if x < 0 || x >= inputs t || y < 0 || y >= outputs t then
    invalid_arg "Channel.probability: symbol out of range";
  Mat.get t.matrix y x

let matrix t = Mat.copy t.matrix

let gamma_for_output t ~y =
  if y < 0 || y >= outputs t then
    invalid_arg "Channel.gamma_for_output: symbol out of range";
  let hi = ref 0. and lo = ref infinity in
  for x = 0 to inputs t - 1 do
    let v = Mat.get t.matrix y x in
    if v > !hi then hi := v;
    if v < !lo then lo := v
  done;
  if !hi = 0. then 1. (* unreachable output: vacuous *)
  else if !lo = 0. then infinity
  else !hi /. !lo

let gamma t =
  let worst = ref 1. in
  for y = 0 to outputs t - 1 do
    let g = gamma_for_output t ~y in
    if g > !worst then worst := g
  done;
  !worst

let randomized_response ~size ~epsilon =
  if size < 2 then invalid_arg "Channel.randomized_response: need >= 2 symbols";
  if epsilon < 0. then invalid_arg "Channel.randomized_response: negative epsilon";
  let e = exp epsilon in
  let keep = e /. (e +. float_of_int (size - 1)) in
  let other = (1. -. keep) /. float_of_int (size - 1) in
  of_matrix
    (Mat.init ~rows:size ~cols:size (fun y x -> if y = x then keep else other))

let geometric_noise ~size ~alpha =
  if size < 1 then invalid_arg "Channel.geometric_noise: empty domain";
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Channel.geometric_noise: alpha must be in (0,1)";
  let m =
    Mat.init ~rows:size ~cols:size (fun y x ->
        Float.pow alpha (float_of_int (abs (y - x))))
  in
  (* normalize each column *)
  let normalized =
    Mat.init ~rows:size ~cols:size (fun y x ->
        let total = ref 0. in
        for y' = 0 to size - 1 do
          total := !total +. Mat.get m y' x
        done;
        Mat.get m y x /. !total)
  in
  of_matrix normalized

let compose second first =
  if inputs second <> outputs first then
    invalid_arg "Channel.compose: domain mismatch";
  of_matrix (Mat.mul second.matrix first.matrix)

let apply t rng x =
  if x < 0 || x >= inputs t then invalid_arg "Channel.apply: symbol out of range";
  Dist.discrete_sample rng (Lazy.force t.samplers).(x)

let posterior t ~prior ~y =
  if Array.length prior <> inputs t then
    invalid_arg "Channel.posterior: prior dimension mismatch";
  let total = Array.fold_left ( +. ) 0. prior in
  if Float.abs (total -. 1.) > 1e-9 || Array.exists (fun p -> p < 0.) prior then
    invalid_arg "Channel.posterior: prior is not a probability vector";
  let weighted = Array.mapi (fun x p -> p *. Mat.get t.matrix y x) prior in
  let mass = Array.fold_left ( +. ) 0. weighted in
  if mass <= 0. then
    invalid_arg "Channel.posterior: output has zero probability under the prior";
  Array.map (fun w -> w /. mass) weighted

let estimate_inversion t ~counts =
  if Array.length counts <> outputs t then
    invalid_arg "Channel.estimate_inversion: counts dimension mismatch";
  if inputs t <> outputs t then
    invalid_arg "Channel.estimate_inversion: channel is not square";
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then invalid_arg "Channel.estimate_inversion: empty counts";
  let observed = Array.map (fun c -> float_of_int c /. float_of_int n) counts in
  Lu.solve (Lu.decompose t.matrix) observed

let estimate_em ?(max_iterations = 10_000) ?(tolerance = 1e-10) t ~counts =
  if Array.length counts <> outputs t then
    invalid_arg "Channel.estimate_em: counts dimension mismatch";
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then invalid_arg "Channel.estimate_em: empty counts";
  let d = inputs t in
  let s = Array.make d (1. /. float_of_int d) in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let next = Array.make d 0. in
    Array.iteri
      (fun y c ->
        if c > 0 then begin
          let mix = ref 0. in
          for x = 0 to d - 1 do
            mix := !mix +. (s.(x) *. Mat.get t.matrix y x)
          done;
          if !mix > 0. then
            for x = 0 to d - 1 do
              next.(x) <-
                next.(x)
                +. (float_of_int c *. s.(x) *. Mat.get t.matrix y x /. !mix)
            done
        end)
      counts;
    let total = Array.fold_left ( +. ) 0. next in
    let delta = ref 0. in
    for x = 0 to d - 1 do
      let v = if total > 0. then next.(x) /. total else s.(x) in
      delta := Float.max !delta (Float.abs (v -. s.(x)));
      s.(x) <- v
    done;
    if !delta < tolerance then converged := true
  done;
  s
