open Ppdm_data
open Ppdm_mining

type discovery = { itemset : Itemset.t; est_support : float; sigma : float }
type result = { discovered : discovery list; explored : discovery list }

let estimate_candidate ~scheme ~data itemset =
  let e = Estimator.estimate ~scheme ~data ~itemset in
  { itemset; est_support = e.Estimator.support; sigma = e.Estimator.sigma }

(* Singletons get a fast path: one pass counts every item at once, giving
   the k = 1 observed partials for all universe items. *)
let level_one ~scheme ~data ~keep =
  let universe = Randomizer.universe scheme in
  (* counts.(size).(item) for transactions of each original size *)
  let by_size = Hashtbl.create 8 in
  Array.iter
    (fun (size, y) ->
      let slot =
        match Hashtbl.find_opt by_size size with
        | Some s -> s
        | None ->
            let s = (ref 0, Array.make universe 0) in
            Hashtbl.replace by_size size s;
            s
      in
      incr (fst slot);
      Itemset.iter (fun item -> (snd slot).(item) <- (snd slot).(item) + 1) y)
    data;
  let total = float_of_int (Array.length data) in
  let out = ref [] in
  for item = 0 to universe - 1 do
    (* Pool the per-size 2x2 inversions: for k = 1 the transition matrix
       is [[1-rho, 1-q]; [rho, q]] with q the keep probability. *)
    let support = ref 0. and variance = ref 0. in
    Hashtbl.iter
      (fun size (n_ref, counts) ->
        let n = !n_ref in
        let resolved = Randomizer.resolve scheme ~size in
        let q = Breach.keep_probability resolved and rho = resolved.rho in
        let denom = q -. rho in
        let w = float_of_int n /. total in
        if Float.abs denom < 1e-12 then ()
          (* degenerate operator: the class carries no signal; weight 0 *)
        else begin
          let observed = float_of_int counts.(item) /. float_of_int n in
          let s = (observed -. rho) /. denom in
          let var =
            observed *. (1. -. observed)
            /. (denom *. denom *. float_of_int n)
          in
          support := !support +. (w *. s);
          variance := !variance +. (w *. w *. var)
        end)
      by_size;
    let d =
      { itemset = Itemset.singleton item; est_support = !support;
        sigma = sqrt (Float.max 0. !variance) }
    in
    if keep d then out := d :: !out
  done;
  List.rev !out

(* Pair candidates also get a single-pass path: per original size, count
   each candidate item's occurrences and each candidate pair's
   co-occurrences; the k = 2 partial counts follow by inclusion-exclusion
   (c2 = both, c1 = cnt_a + cnt_b - 2 c2, c0 = rest).  This turns
   O(#pairs) data passes into one.  Counts live in flat per-size arrays
   (universe-sized for items, universe^2 for pairs) because the inner
   loop runs once per co-occurring pair per transaction. *)
let level_two_dense ~scheme ~data candidates =
  let universe = Randomizer.universe scheme in
  let candidate_items = Array.make universe false in
  List.iter
    (fun c ->
      candidate_items.(Itemset.nth c 0) <- true;
      candidate_items.(Itemset.nth c 1) <- true)
    candidates;
  let item_counts : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let pair_counts : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let size_totals : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let slot table size len =
    match Hashtbl.find_opt table size with
    | Some a -> a
    | None ->
        let a = Array.make len 0 in
        Hashtbl.replace table size a;
        a
  in
  let scratch = Array.make universe 0 in
  Array.iter
    (fun (size, y) ->
      (match Hashtbl.find_opt size_totals size with
      | Some r -> incr r
      | None -> Hashtbl.replace size_totals size (ref 1));
      let items = slot item_counts size universe in
      let pairs = slot pair_counts size (universe * universe) in
      let n_present = ref 0 in
      Itemset.iter
        (fun item ->
          if candidate_items.(item) then begin
            items.(item) <- items.(item) + 1;
            scratch.(!n_present) <- item;
            incr n_present
          end)
        y;
      for i = 0 to !n_present - 1 do
        let base = scratch.(i) * universe in
        for j = i + 1 to !n_present - 1 do
          let idx = base + scratch.(j) in
          pairs.(idx) <- pairs.(idx) + 1
        done
      done)
    data;
  List.map
    (fun c ->
      let a = Itemset.nth c 0 and b = Itemset.nth c 1 in
      let counts =
        Hashtbl.fold
          (fun size total acc ->
            let items = Hashtbl.find item_counts size in
            let pairs = Hashtbl.find pair_counts size in
            let c2 = pairs.((a * universe) + b) in
            let c1 = items.(a) + items.(b) - (2 * c2) in
            let c0 = !total - c1 - c2 in
            (size, [| c0; c1; c2 |]) :: acc)
          size_totals []
      in
      let e = Estimator.estimate_from_counts ~scheme ~k:2 ~counts in
      { itemset = c; est_support = e.Estimator.support; sigma = e.Estimator.sigma })
    candidates

(* Sparse variant for large universes (the flat pair array would need
   universe^2 cells per size class): per-size hash tables keyed by the
   candidate pair. *)
let level_two_sparse ~scheme ~data candidates =
  let universe = Randomizer.universe scheme in
  let candidate_items = Array.make universe false in
  let pair_slots = Hashtbl.create (2 * List.length candidates) in
  List.iter
    (fun c ->
      let a = Itemset.nth c 0 and b = Itemset.nth c 1 in
      candidate_items.(a) <- true;
      candidate_items.(b) <- true;
      Hashtbl.replace pair_slots (a, b) (Hashtbl.create 4))
    candidates;
  let item_counts = Hashtbl.create 64 in
  let size_totals = Hashtbl.create 8 in
  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  Array.iter
    (fun (size, y) ->
      bump size_totals size;
      let present =
        List.rev
          (Itemset.fold
             (fun item acc -> if candidate_items.(item) then item :: acc else acc)
             y [])
      in
      List.iter (fun item -> bump item_counts (size, item)) present;
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                match Hashtbl.find_opt pair_slots (a, b) with
                | Some per_size -> bump per_size size
                | None -> ())
              rest;
            pairs rest
      in
      pairs present)
    data;
  let count table key = Option.value ~default:0 (Hashtbl.find_opt table key) in
  List.map
    (fun c ->
      let a = Itemset.nth c 0 and b = Itemset.nth c 1 in
      let per_size = Hashtbl.find pair_slots (a, b) in
      let counts =
        Hashtbl.fold
          (fun size total acc ->
            let c2 = count per_size size in
            let c1 =
              count item_counts (size, a) + count item_counts (size, b) - (2 * c2)
            in
            (size, [| total - c1 - c2; c1; c2 |]) :: acc)
          size_totals []
      in
      let e = Estimator.estimate_from_counts ~scheme ~k:2 ~counts in
      { itemset = c; est_support = e.Estimator.support; sigma = e.Estimator.sigma })
    candidates

let level_two ~scheme ~data candidates =
  (* the dense path allocates universe^2 cells per occurring size class *)
  let universe = Randomizer.universe scheme in
  if universe <= 1024 then level_two_dense ~scheme ~data candidates
  else level_two_sparse ~scheme ~data candidates

let mine ?max_size ?(sigma_slack = 2.0) ?sigma_cap ~scheme ~data ~min_support
    () =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Ppmining.mine: min_support out of (0,1]";
  if Array.length data = 0 then invalid_arg "Ppmining.mine: empty data";
  let cap = Option.value max_size ~default:max_int in
  let sigma_cap = Option.value sigma_cap ~default:(min_support /. 2.) in
  (* Estimates travel through matrix inversions, so threshold comparisons
     carry a one-ulp tolerance: an exact-support itemset must not be
     dropped by rounding. *)
  let eps = 1e-12 in
  let passes d =
    d.sigma < sigma_cap
    && d.est_support +. (sigma_slack *. d.sigma) >= min_support -. eps
  in
  let explored = ref [] in
  let rec levels current size =
    if size > cap || current = [] then ()
    else begin
      let candidates =
        Apriori.candidates_from
          ~frequent:(List.map (fun d -> d.itemset) current)
          ~size
      in
      let next =
        let estimated =
          if size = 2 then level_two ~scheme ~data candidates
          else List.map (estimate_candidate ~scheme ~data) candidates
        in
        List.filter passes estimated
      in
      explored := !explored @ next;
      levels next (size + 1)
    end
  in
  let first = if cap < 1 then [] else level_one ~scheme ~data ~keep:passes in
  explored := first;
  if cap >= 2 then levels first 2;
  let ordered =
    List.sort (fun a b -> Itemset.compare a.itemset b.itemset) !explored
  in
  {
    discovered = List.filter (fun d -> d.est_support >= min_support -. eps) ordered;
    explored = ordered;
  }

type accuracy = {
  true_positives : int;
  false_positives : int;
  false_drops : int;
}

let accuracy_vs ~truth ~mined =
  let truth_set = Hashtbl.create (2 * List.length truth) in
  List.iter (fun (s, _) -> Hashtbl.replace truth_set s ()) truth;
  let mined_set = Hashtbl.create 64 in
  List.iter
    (fun d -> Hashtbl.replace mined_set d.itemset ())
    mined.discovered;
  let true_positives = ref 0 and false_positives = ref 0 in
  Hashtbl.iter
    (fun s () ->
      if Hashtbl.mem truth_set s then incr true_positives
      else incr false_positives)
    mined_set;
  let false_drops = ref 0 in
  Hashtbl.iter
    (fun s () -> if not (Hashtbl.mem mined_set s) then incr false_drops)
    truth_set;
  {
    true_positives = !true_positives;
    false_positives = !false_positives;
    false_drops = !false_drops;
  }
