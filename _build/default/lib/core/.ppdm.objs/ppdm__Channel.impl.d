lib/core/channel.ml: Array Dist Float Lazy Lu Mat Ppdm_linalg Ppdm_prng
