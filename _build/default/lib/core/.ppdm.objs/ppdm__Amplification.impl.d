lib/core/amplification.ml: Array Binomial Ppdm_linalg Randomizer
