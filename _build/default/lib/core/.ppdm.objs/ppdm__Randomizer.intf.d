lib/core/randomizer.mli: Db Itemset Ppdm_data Ppdm_prng Rng
