lib/core/randomizer.ml: Array Binomial Db Dist Float Hashtbl Itemset Ppdm_data Ppdm_linalg Ppdm_prng Printf
