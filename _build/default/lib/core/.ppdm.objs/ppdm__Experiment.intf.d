lib/core/experiment.mli: Db Ppdm_data
