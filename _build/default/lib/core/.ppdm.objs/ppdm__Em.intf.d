lib/core/em.mli: Itemset Ppdm_data Randomizer
