lib/core/scheme_io.mli: Ppdm_data Randomizer
