lib/core/ldp.mli: Randomizer
