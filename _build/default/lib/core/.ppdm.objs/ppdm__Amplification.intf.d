lib/core/amplification.mli: Randomizer
