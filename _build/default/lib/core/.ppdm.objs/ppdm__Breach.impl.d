lib/core/breach.ml: Array Db Float Itemset Ppdm_data Randomizer Transition
