lib/core/transition.ml: Array Binomial Float Mat Ppdm_linalg Randomizer
