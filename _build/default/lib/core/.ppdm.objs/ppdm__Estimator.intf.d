lib/core/estimator.mli: Itemset Mat Ppdm_data Ppdm_linalg Randomizer
