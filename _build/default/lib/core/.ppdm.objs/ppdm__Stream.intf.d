lib/core/stream.mli: Estimator Itemset Ppdm_data Randomizer
