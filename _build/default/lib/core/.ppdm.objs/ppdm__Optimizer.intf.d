lib/core/optimizer.mli: Randomizer
