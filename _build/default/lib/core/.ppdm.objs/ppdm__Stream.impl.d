lib/core/stream.ml: Array Estimator Hashtbl Itemset List Ppdm_data Randomizer
