lib/core/scheme_io.ml: Array Fun Hashtbl List Option Ppdm_data Printf Randomizer String
