lib/core/accountant.ml: Amplification List Printf
