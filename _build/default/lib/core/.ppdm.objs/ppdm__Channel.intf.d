lib/core/channel.mli: Mat Ppdm_linalg Ppdm_prng Rng Vec
