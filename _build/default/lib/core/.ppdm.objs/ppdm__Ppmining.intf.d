lib/core/ppmining.mli: Itemset Ppdm_data Randomizer
