lib/core/ppmining.ml: Apriori Array Breach Estimator Float Hashtbl Itemset List Option Ppdm_data Ppdm_mining Randomizer
