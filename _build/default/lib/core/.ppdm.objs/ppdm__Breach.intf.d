lib/core/breach.mli: Db Ppdm_data Randomizer
