lib/core/ldp.ml: Amplification Float Randomizer
