lib/core/optimizer.ml: Amplification Array Binomial Breach Estimator Float List Lu Option Ppdm_linalg Printf Randomizer
