lib/core/estimator.ml: Array Binomial Float Hashtbl Itemset List Lu Mat Ppdm_data Ppdm_linalg Randomizer Stats Transition
