lib/core/transition.mli: Mat Ppdm_linalg Randomizer
