lib/core/em.ml: Array Estimator Float Itemset List Mat Ppdm_data Ppdm_linalg Randomizer Transition
