lib/core/accountant.mli:
