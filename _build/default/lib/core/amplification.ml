open Ppdm_linalg

let log_odds_ratio rho = log (1. -. rho) -. log rho

let log_transition (r : Randomizer.resolved) ~intersection =
  let m = Array.length r.keep_dist - 1 in
  if intersection < 0 || intersection > m then
    invalid_arg "Amplification.log_transition: intersection out of range";
  let p = r.keep_dist.(intersection) in
  if p <= 0. then neg_infinity
  else
    log p
    -. Binomial.log_choose m intersection
    +. (float_of_int intersection *. log_odds_ratio r.rho)

let gamma_resolved (r : Randomizer.resolved) =
  let m = Array.length r.keep_dist - 1 in
  if m = 0 then 1.
  else if r.rho <= 0. || r.rho >= 1. then infinity
  else begin
    let worst_hi = ref neg_infinity and worst_lo = ref infinity in
    for a = 0 to m do
      let f = log_transition r ~intersection:a in
      if f > !worst_hi then worst_hi := f;
      if f < !worst_lo then worst_lo := f
    done;
    if !worst_lo = neg_infinity then infinity else exp (!worst_hi -. !worst_lo)
  end

let gamma scheme ~size = gamma_resolved (Randomizer.resolve scheme ~size)

let gamma_breach_limit ~rho1 ~rho2 =
  if not (0. < rho1 && rho1 < rho2 && rho2 < 1.) then
    invalid_arg "Amplification.gamma_breach_limit: need 0 < rho1 < rho2 < 1";
  rho2 *. (1. -. rho1) /. (rho1 *. (1. -. rho2))

let prevents_breach ~gamma ~rho1 ~rho2 =
  gamma < gamma_breach_limit ~rho1 ~rho2

(* Downward ρ2→ρ1: posterior odds >= prior odds / γ, so the posterior can
   fall below ρ1 from a prior above ρ2 only when γ >= the same constant. *)
let prevents_downward_breach ~gamma ~rho1 ~rho2 =
  gamma < gamma_breach_limit ~rho1 ~rho2

let posterior_upper_bound ~gamma ~prior =
  if prior < 0. || prior > 1. then
    invalid_arg "Amplification.posterior_upper_bound: prior out of [0,1]";
  if gamma = infinity then 1.
  else gamma *. prior /. (1. +. ((gamma -. 1.) *. prior))

let posterior_lower_bound ~gamma ~prior =
  if prior < 0. || prior > 1. then
    invalid_arg "Amplification.posterior_lower_bound: prior out of [0,1]";
  if gamma = infinity then 0.
  else prior /. ((gamma *. (1. -. prior)) +. prior)
