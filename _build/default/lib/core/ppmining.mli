(** Privacy-preserving association mining: Apriori re-instantiated over
    randomized data with estimated supports (the end-to-end algorithm of
    the KDD 2002 / PODS 2003 line of work).

    The miner never sees original transactions — only the tagged
    randomized data and the (public) randomization scheme.  Candidate
    exploration uses a slackened threshold [minsup - slack · σ] so that
    true frequent itemsets whose estimates fluctuate low are not cut off
    early (the paper's remedy for false drops); the reported discoveries
    are the candidates whose *estimate* clears [minsup]. *)

open Ppdm_data

type discovery = {
  itemset : Itemset.t;
  est_support : float;
  sigma : float;  (** estimated standard deviation of [est_support] *)
}

type result = {
  discovered : discovery list;  (** estimate ≥ minsup, by {!Itemset.compare} *)
  explored : discovery list;  (** every candidate that survived the
                                  slackened threshold (superset) *)
}

val mine :
  ?max_size:int ->
  ?sigma_slack:float ->
  ?sigma_cap:float ->
  scheme:Randomizer.t ->
  data:(int * Itemset.t) array ->
  min_support:float ->
  unit ->
  result
(** [sigma_slack] defaults to 2.0 (explore down to minsup - 2σ).

    [sigma_cap] (default [min_support / 2]) prunes candidates whose
    estimate carries no signal.  The default is exactly the paper's
    discoverability criterion (a support is discoverable when σ ≤ s/2):
    past it the slackened bound is vacuous and exploration blows up
    combinatorially, precisely the regime the analysis calls
    undiscoverable at this privacy level.
    @raise Invalid_argument if [min_support] is outside (0, 1] or the data
    is empty. *)

type accuracy = {
  true_positives : int;
  false_positives : int;  (** discovered but not truly frequent *)
  false_drops : int;  (** truly frequent but not discovered *)
}

val accuracy_vs :
  truth:(Itemset.t * int) list -> mined:result -> accuracy
(** Compare discoveries against the frequent itemsets mined from the
    original data (e.g. by {!Ppdm_mining.Apriori.mine}). *)
