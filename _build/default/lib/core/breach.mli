(** Distribution-dependent privacy-breach analysis.

    Where {!Amplification} bounds posteriors for *every* prior (the PODS
    2003 measure), this module computes the actual posteriors under an
    assumed data distribution — the privacy-breach notion of the companion
    KDD 2002 study, and the measurement side of the F5 experiment: the
    empirical posteriors must never exceed the amplification bound. *)

open Ppdm_data

val keep_probability : Randomizer.resolved -> float
(** [P(a ∈ R(t) | a ∈ t) = Σ_j p_j · j / m]: the chance a given
    transaction item survives randomization (1 if [m = 0], vacuously). *)

val item_posterior_present : Randomizer.resolved -> prior:float -> float
(** [P(a ∈ t | a ∈ R(t))] when item [a] has marginal prior [P(a ∈ t)] and
    transactions have the operator's size: Bayes with the keep probability
    against the noise rate ρ. *)

val item_posterior_absent : Randomizer.resolved -> prior:float -> float
(** [P(a ∈ t | a ∉ R(t))]: what the *absence* of an item reveals. *)

val worst_item_posterior : Randomizer.resolved -> prior:float -> float
(** Max of the two observable posteriors: the item-level ρ1-to-ρ2 breach
    level this operator admits at the given prior. *)

val itemset_posterior :
  Randomizer.resolved -> partials:float array -> float
(** [P(A ⊆ t | A ⊆ R(t))] for a [k]-itemset with true partial-support
    vector [partials] (length [k+1], summing to 1): the "cause" breach of
    seeing a whole itemset survive.  Requires [k <= m]. *)

val empirical_item_posteriors :
  original:Db.t -> randomized:Db.t -> item:int -> float * float
(** Measured [(posterior_present, posterior_absent)] for one item from an
    aligned (original, randomized) database pair.  A posterior whose
    conditioning event never occurs is reported as 0.
    @raise Invalid_argument if the databases differ in length. *)

val empirical_worst_item_posterior :
  original:Db.t -> randomized:Db.t -> float
(** Maximum of {!empirical_item_posteriors} over all items that occur in
    the original database. *)
