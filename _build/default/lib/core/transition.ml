open Ppdm_linalg

let probability (r : Randomizer.resolved) ~k ~l ~l' =
  let m = Array.length r.keep_dist - 1 in
  if l < 0 || l > min k m then
    invalid_arg "Transition.probability: l out of range";
  if l' < 0 || l' > k then invalid_arg "Transition.probability: l' out of range";
  let acc = ref 0. in
  for j = 0 to m do
    let pj = r.keep_dist.(j) in
    if pj > 0. then begin
      (* q = kept items of A; needs q <= l, q <= j, and the binomial term
         needs l' - q in [0, k - l]. *)
      let q_lo = max 0 (l' - (k - l)) and q_hi = min l (min j l') in
      for q = q_lo to q_hi do
        let keep = Binomial.hypergeom_pmf ~total:m ~good:l ~draws:j q in
        if keep > 0. then
          acc :=
            !acc
            +. (pj *. keep *. Binomial.binomial_pmf ~n:(k - l) ~p:r.rho (l' - q))
      done
    end
  done;
  !acc

let rect_matrix (r : Randomizer.resolved) ~k =
  if k < 0 then invalid_arg "Transition.rect_matrix: negative k";
  let m = Array.length r.keep_dist - 1 in
  let cols = min k m + 1 in
  Mat.init ~rows:(k + 1) ~cols (fun l' l -> probability r ~k ~l ~l')

let matrix (r : Randomizer.resolved) ~k =
  let m = Array.length r.keep_dist - 1 in
  if k > m then
    invalid_arg "Transition.matrix: itemset larger than transaction size";
  rect_matrix r ~k

let of_scheme scheme ~size ~k = matrix (Randomizer.resolve scheme ~size) ~k

let is_column_stochastic ?(tolerance = 1e-9) m =
  let ok = ref true in
  for j = 0 to Mat.cols m - 1 do
    let sum = ref 0. in
    for i = 0 to Mat.rows m - 1 do
      let v = Mat.get m i j in
      if v < -.tolerance then ok := false;
      sum := !sum +. v
    done;
    if Float.abs (!sum -. 1.) > tolerance then ok := false
  done;
  !ok
