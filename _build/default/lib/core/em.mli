(** Maximum-likelihood support recovery by expectation-maximization.

    The inversion estimator ([s = P⁻¹ ŝ']) is unbiased but unconstrained:
    with few observations or an ill-conditioned transition matrix it can
    return negative partial supports.  The EM alternative (the
    reconstruction approach of Agrawal & Aggarwal, PODS 2001, transplanted
    to partial supports) maximizes the multinomial likelihood over the
    probability simplex instead:

    - E-step: responsibility of true level [l] for an observation at
      level [l'] is [s_l P(l'|l) / Σ_u s_u P(l'|u)];
    - M-step: [s_l ← Σ_l' (c_l'/N) · responsibility].

    Each iteration is monotone in likelihood, and the iterates stay in the
    simplex by construction.  The result trades the inversion estimator's
    unbiasedness for guaranteed-feasible estimates — the A4 ablation
    quantifies the trade. *)

open Ppdm_data

type t = {
  support : float;  (** estimated support (always in [0, 1]) *)
  partials : float array;  (** simplex point: non-negative, sums to 1 *)
  iterations : int;  (** EM steps until convergence (max over classes) *)
  log_likelihood : float;  (** final observed-data log-likelihood *)
}

val estimate :
  ?max_iterations:int ->
  ?tolerance:float ->
  scheme:Randomizer.t ->
  data:(int * Itemset.t) array ->
  itemset:Itemset.t ->
  unit ->
  t
(** EM reconstruction on tagged randomized data; mixed transaction sizes
    are handled per class and pooled by class weight, as in
    {!Estimator.estimate}.  Convergence: max-abs change of the partials
    below [tolerance] (default 1e-10) or [max_iterations] (default 10_000).
    @raise Invalid_argument on empty data. *)

val estimate_from_counts :
  ?max_iterations:int ->
  ?tolerance:float ->
  scheme:Randomizer.t ->
  k:int ->
  counts:(int * int array) list ->
  unit ->
  t
(** Count-based variant (same sufficient statistic as
    {!Estimator.estimate_from_counts}). *)
