(** Designing select-a-size operators under an amplification budget.

    The feasible set for a target amplification γ is, after the
    substitution [u_j = p_j / g_j] with [g_j = C(m,j) (ρ/(1-ρ))^j], the
    box [max_j u_j / min_j u_j <= γ]; both objectives below are optimized
    over the vertices [u_j ∈ {1, γ}]:

    - {e expected items kept} [Σ p_j j/m] is a linear-fractional objective,
      whose optimum is provably a *threshold* vertex ([u_j = γ] exactly
      for [j >= j*]); the search over thresholds is exact.
    - {e predicted estimator σ} is evaluated per vertex; the search starts
      from the best threshold vertex and descends by single-coordinate
      flips (exact for small [m] by exhaustion in the test suite). *)

type objective =
  | Max_kept  (** maximize the expected fraction of items kept *)
  | Min_sigma of { k : int; n : int; p_bg : float; support : float }
      (** minimize the predicted σ of the support estimate for a
          [k]-itemset at the given hypothetical support, observed over [n]
          transactions (profile: {!Estimator.binomial_profile}) *)
  | Min_sigma_upto of { k_max : int; n : int; p_bg : float; support : float }
      (** minimize [Σ_{k=1..k_max} σ_k]: designs good for *every* itemset
          size up to [k_max].  Targeting a single [k] can yield operators
          that are singular at other sizes (e.g. item-level keep
          probability exactly ρ while pairs stay estimable), which breaks
          any pipeline that also needs the other sizes — the private miner
          above all. *)

val keep_dist : m:int -> rho:float -> gamma:float -> objective -> float array
(** Optimal keep distribution for fixed ρ.  The result always has full
    support, hence finite amplification at most [gamma] (equality up to
    rounding whenever [gamma] is actually binding).
    @raise Invalid_argument unless [m >= 1], [0 < rho < 1], and
    [gamma >= 1]. *)

type design = {
  rho : float;
  dist : float array;
  value : float;  (** achieved objective value *)
  gamma : float;  (** realized amplification (≤ requested) *)
}

val design :
  ?rho_grid:float array -> m:int -> gamma:float -> objective -> design
(** Optimize ρ jointly with the keep distribution by scanning a ρ grid
    (default: 40 log-spaced points in [1e-3, 0.5]) and refining with
    golden-section search around the best grid point. *)

val design_for_estimation :
  ?k:int ->
  ?n:int ->
  ?p_bg:float ->
  ?support:float ->
  m:int ->
  gamma:float ->
  unit ->
  design
(** The recommended joint design: {!design} with a {!Min_sigma_upto}
    objective for itemsets up to size [k] (default [min 3 m]) over [n]
    transactions.  Unlike {!Max_kept} — whose optimum degenerately pushes
    ρ to 0.5, since kept items are free when noise is unpenalized — this
    balances kept items against noise for every itemset size the server
    will query, which is what the paper's accuracy analysis optimizes
    for. *)

val scheme_for_estimation :
  ?k:int ->
  ?n:int ->
  ?p_bg:float ->
  ?support:float ->
  ?representative_size:int ->
  universe:int ->
  gamma:float ->
  unit ->
  Randomizer.t
(** A complete per-size operator family under one amplification budget:
    the noise rate ρ is designed once at [representative_size] (default 8)
    and shared by every size — as in the paper's deployments — while each
    size gets its own optimal keep distribution at that ρ (solved lazily
    on first use and cached).  This is the constructor applications should
    reach for. *)

val cut_and_paste_best :
  universe:int -> m:int -> worst_posterior:float -> prior:float ->
  (int * float) option
(** Baseline tuning used by experiment T3: the (K, ρ) cut-and-paste
    parameters maximizing expected items kept subject to the item-level
    posterior (at the given prior) staying at or below [worst_posterior].
    Scans K in [0, m] and a ρ grid; [None] if nothing qualifies. *)
