type t = {
  budget_gamma : float;
  mutable spent : float;
  mutable releases : (string * float) list; (* newest first *)
}

let create ~budget_gamma =
  if budget_gamma < 1. then
    invalid_arg "Accountant.create: budget_gamma must be >= 1";
  { budget_gamma; spent = 1.; releases = [] }

let budget_gamma t = t.budget_gamma
let spent_gamma t = t.spent
let spent_epsilon t = log t.spent
let remaining_gamma t = t.budget_gamma /. t.spent

let charge t ~gamma ~label =
  if gamma < 1. then Error "a release cannot have gamma below 1"
  else if gamma = infinity then
    Error "a release with infinite amplification is never certifiable"
  else if t.spent *. gamma > t.budget_gamma *. (1. +. 1e-12) then
    Error
      (Printf.sprintf
         "budget exceeded: spent %.3f, release %.3f, budget %.3f" t.spent gamma
         t.budget_gamma)
  else begin
    t.spent <- t.spent *. gamma;
    t.releases <- (label, gamma) :: t.releases;
    Ok ()
  end

let releases t = List.rev t.releases

let posterior_bound t ~prior =
  Amplification.posterior_upper_bound ~gamma:t.spent ~prior
