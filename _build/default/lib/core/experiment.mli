(** Drivers for the reconstructed evaluation (see DESIGN.md §3).

    Each function computes the rows of one table or the points of one
    figure; `bench/main.exe` formats and prints them, and EXPERIMENTS.md
    records the measured outcomes.  Everything is deterministic given the
    seed baked into each driver. *)

open Ppdm_data

(** {1 T1 — breach-prevention thresholds} *)

type t1_row = { rho1 : float; rho2 : float; gamma_limit : float }

val t1_breach_limits : unit -> t1_row list
(** Max admissible γ over a grid of (ρ1, ρ2) breach levels. *)

(** {1 T2 — cut-and-paste privacy} *)

type t2_row = {
  cutoff : int;
  rho : float;
  size : int;
  kept_fraction : float;
  worst_posterior : float;  (** item-level, at prior 5% *)
  gamma : float;  (** worst-case amplification — infinite when K < m *)
}

val t2_cut_and_paste : unit -> t2_row list

(** {1 T3 — optimized select-a-size vs cut-and-paste} *)

type t3_row = {
  size : int;
  gamma_budget : float;
  sas_rho : float;
  sas_kept : float;  (** expected fraction of items kept, optimized SaS *)
  sas_posterior : float;  (** item posterior at prior 5% *)
  cp_kept : float option;  (** best cut-and-paste at matched posterior *)
  sigma_k1 : float;  (** predicted σ of the SaS design, k = 1 (N = 100k) *)
  sigma_k2 : float;
  sigma_k3 : float;
}

val t3_operator_comparison : unit -> t3_row list

(** {1 F1 — predicted σ vs true support} *)

type f1_point = { k : int; support : float; sigma : float }

val f1_sigma_vs_support : unit -> f1_point list
(** γ = 19 design at m = 5, N = 100k, support swept over 0.1%..5%. *)

(** {1 F2 — lowest discoverable support vs privacy} *)

type f2_point = { size : int; k : int; gamma : float; discoverable : float }

val f2_discoverable_vs_gamma : unit -> f2_point list

(** {1 F3 — predicted vs empirical σ (Monte Carlo)} *)

type f3_row = {
  k : int;
  support : float;
  predicted_sigma : float;
  empirical_sigma : float;
  mean_estimate : float;
  trials : int;
}

val f3_sigma_validation : ?trials:int -> ?count:int -> unit -> f3_row list

(** {1 F4 — privacy-preserving mining accuracy} *)

type f4_row = {
  gamma_budget : float;
  min_support : float;
  true_frequent : int;
  true_positives : int;
  false_positives : int;
  false_drops : int;
}

val f4_mining_accuracy : ?count:int -> unit -> f4_row list
(** Quest-style data randomized with optimized select-a-size designs;
    accuracy of the privacy-preserving miner against the non-private
    Apriori ground truth.  The default [count] (100k) matches the data
    volumes of the original experiments — at γ = 19 the lowest
    discoverable 2-itemset support is a few percent, so small samples
    honestly discover nothing. *)

(** {1 F5 — posteriors never exceed the amplification bound} *)

type f5_point = {
  prior : float;
  analytic_posterior : float;  (** worst item posterior, exact Bayes *)
  empirical_posterior : float;  (** worst over items measured on data *)
  bound : float;  (** the γ theorem ceiling *)
}

val f5_bound_validation : ?count:int -> unit -> f5_point list

(** {1 A1 — ablation: select-a-size vs randomized response at matched γ} *)

type a1_row = {
  size : int;
  gamma : float;
  rr_epsilon : float;  (** per-item ε making RR exactly γ-amplifying *)
  sas_sigma_k2 : float;  (** predicted σ, optimized SaS design, k = 2 *)
  rr_sigma_k2 : float;  (** predicted σ, symmetric RR, k = 2 *)
  sas_kept : float;
  rr_kept : float;
}

val a1_rr_comparison : unit -> a1_row list
(** The modern-baseline ablation: at the same distribution-free guarantee
    (equal transaction-level γ), how much estimator precision does the
    paper's optimized operator buy over per-item randomized response? *)

(** {1 A2 — ablation: the σ-slack exploration knob of the private miner} *)

type a2_row = {
  sigma_slack : float;
  true_positives : int;
  false_positives : int;
  false_drops : int;
  explored : int;  (** candidates surviving the slackened threshold *)
}

val a2_slack_ablation : ?count:int -> unit -> a2_row list
(** Effect of exploring candidates down to [minsup − slack·σ] (the paper's
    remedy for false drops): drops should fall as slack grows, at the cost
    of more exploration. *)

(** {1 A4 — ablation: inversion vs EM support recovery} *)

type a4_row = {
  count : int;  (** transactions observed *)
  inv_rmse : float;  (** RMSE of the inversion estimate over trials *)
  em_rmse : float;  (** RMSE of the EM estimate over trials *)
  inv_infeasible : int;  (** trials with a partial support outside [0,1] *)
  trials : int;
}

val a4_inversion_vs_em : ?trials:int -> unit -> a4_row list
(** Accuracy and feasibility of the two recovery methods as the sample
    shrinks: inversion is unbiased but can leave the simplex at small N;
    EM is always feasible. *)

(** {1 E1 — extension: generic channels (numeric attributes)} *)

type e1_row = {
  alpha : float;  (** geometric-noise decay of the binned channel *)
  gamma : float;
  epsilon : float;  (** ln γ, the equivalent LDP budget *)
  posterior_bound : float;  (** ceiling at prior 5% *)
  reconstruction_rmse : float;  (** histogram RMSE at N = 30k (EM) *)
}

val e1_channel_tradeoff : ?count:int -> unit -> e1_row list
(** The amplification framework applied beyond itemsets: binned numeric
    values through truncated-geometric noise.  Sweeping the noise level
    traces the privacy/accuracy frontier of the generic channel. *)

(** {1 Shared fixtures} *)

val quest_db : ?count:int -> unit -> Db.t
(** The Quest-style database used by F4 (seeded, cached per count). *)
