open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm_mining
open Ppdm_linalg

(* ------------------------------------------------------------------ T1 *)

type t1_row = { rho1 : float; rho2 : float; gamma_limit : float }

let t1_breach_limits () =
  let rho1s = [ 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let rho2s = [ 0.3; 0.5; 0.7; 0.9 ] in
  List.concat_map
    (fun rho1 ->
      List.filter_map
        (fun rho2 ->
          if rho2 > rho1 then
            Some { rho1; rho2; gamma_limit = Amplification.gamma_breach_limit ~rho1 ~rho2 }
          else None)
        rho2s)
    rho1s

(* ------------------------------------------------------------------ T2 *)

type t2_row = {
  cutoff : int;
  rho : float;
  size : int;
  kept_fraction : float;
  worst_posterior : float;
  gamma : float;
}

let t2_universe = 1000

let t2_cut_and_paste () =
  let sizes = [ 3; 5; 10 ] in
  let cutoffs = [ 1; 2; 3; 5 ] in
  let rhos = [ 0.05; 0.1; 0.2 ] in
  List.concat_map
    (fun size ->
      List.concat_map
        (fun cutoff ->
          List.map
            (fun rho ->
              let scheme = Randomizer.cut_and_paste ~universe:t2_universe ~cutoff ~rho in
              let resolved = Randomizer.resolve scheme ~size in
              {
                cutoff;
                rho;
                size;
                kept_fraction = Randomizer.expected_kept_fraction scheme ~size;
                worst_posterior = Breach.worst_item_posterior resolved ~prior:0.05;
                gamma = Amplification.gamma_resolved resolved;
              })
            rhos)
        cutoffs)
    sizes


(* Kept-item fraction of a designed distribution (utility readout). *)
let kept_fraction dist =
  let m = Array.length dist - 1 in
  if m = 0 then 1.
  else begin
    let acc = ref 0. in
    Array.iteri (fun j p -> acc := !acc +. (p *. float_of_int j)) dist;
    !acc /. float_of_int m
  end

(* ------------------------------------------------------------------ T3 *)

type t3_row = {
  size : int;
  gamma_budget : float;
  sas_rho : float;
  sas_kept : float;
  sas_posterior : float;
  cp_kept : float option;
  sigma_k1 : float;
  sigma_k2 : float;
  sigma_k3 : float;
}

let sigma_for resolved ~k =
  (* N = 100k transactions, 2% background item rate, 1% target support *)
  Estimator.predicted_sigma resolved ~k
    ~partials:(Estimator.binomial_profile ~k ~p_bg:0.02 ~support:0.01)
    ~n:100_000

let t3_operator_comparison () =
  let sizes = [ 3; 5; 10 ] in
  let gammas = [ 7.6; 19.; 49. ] in
  List.concat_map
    (fun size ->
      List.map
        (fun gamma_budget ->
          let d = Optimizer.design_for_estimation ~m:size ~gamma:gamma_budget () in
          let resolved : Randomizer.resolved =
            { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
          in
          let sas_posterior = Breach.worst_item_posterior resolved ~prior:0.05 in
          let cp_kept =
            Option.map
              (fun (cutoff, rho) ->
                Randomizer.expected_kept_fraction
                  (Randomizer.cut_and_paste ~universe:t2_universe ~cutoff ~rho)
                  ~size)
              (Optimizer.cut_and_paste_best ~universe:t2_universe ~m:size
                 ~worst_posterior:sas_posterior ~prior:0.05)
          in
          {
            size;
            gamma_budget;
            sas_rho = d.Optimizer.rho;
            sas_kept = kept_fraction d.Optimizer.dist;
            sas_posterior;
            cp_kept;
            sigma_k1 = sigma_for resolved ~k:1;
            sigma_k2 = sigma_for resolved ~k:2;
            sigma_k3 = (if size >= 3 then sigma_for resolved ~k:3 else Float.nan);
          })
        gammas)
    sizes

(* ------------------------------------------------------------------ F1 *)

type f1_point = { k : int; support : float; sigma : float }

let f1_sigma_vs_support () =
  let d = Optimizer.design_for_estimation ~m:5 ~gamma:19. () in
  let resolved : Randomizer.resolved =
    { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
  in
  let supports = [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05 ] in
  List.concat_map
    (fun k ->
      List.map
        (fun support ->
          let sigma =
            Estimator.predicted_sigma resolved ~k
              ~partials:(Estimator.binomial_profile ~k ~p_bg:0.02 ~support)
              ~n:100_000
          in
          { k; support; sigma })
        supports)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ F2 *)

type f2_point = { size : int; k : int; gamma : float; discoverable : float }

let f2_discoverable_vs_gamma () =
  let gammas = [ 3.; 6.; 9.; 19.; 35.; 49.; 99. ] in
  List.concat_map
    (fun size ->
      List.concat_map
        (fun k ->
          List.map
            (fun gamma ->
              let d = Optimizer.design_for_estimation ~k ~m:size ~gamma () in
              let resolved : Randomizer.resolved =
                { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
              in
              let discoverable =
                Estimator.lowest_discoverable_support resolved ~k ~n:100_000
                  ~p_bg:0.02
              in
              { size; k; gamma; discoverable })
            gammas)
        (List.filter (fun k -> k <= size) [ 1; 2; 3 ]))
    [ 3; 5; 10 ]

(* ------------------------------------------------------------------ F3 *)

type f3_row = {
  k : int;
  support : float;
  predicted_sigma : float;
  empirical_sigma : float;
  mean_estimate : float;
  trials : int;
}

let f3_sigma_validation ?(trials = 24) ?(count = 20_000) () =
  let universe = 500 and size = 6 in
  let d = Optimizer.design_for_estimation ~m:size ~gamma:19. () in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:d.Optimizer.dist
      ~rho:d.Optimizer.rho
  in
  let resolved = Randomizer.resolve scheme ~size in
  let cases = [ (1, 0.05); (2, 0.02); (3, 0.01) ] in
  List.map
    (fun (k, support) ->
      let itemset = Itemset.of_list (List.init k (fun i -> i * 7)) in
      let estimates = Array.make trials 0. in
      let predicted = ref 0. in
      for t = 0 to trials - 1 do
        let rng = Rng.create ~seed:(3000 + (100 * k) + t) () in
        let db = Simple.planted rng ~universe ~size ~count ~itemset ~support in
        if t = 0 then begin
          let truth = Db.partial_support_counts db itemset in
          let partials =
            Array.map (fun c -> float_of_int c /. float_of_int count) truth
          in
          predicted := Estimator.predicted_sigma resolved ~k ~partials ~n:count
        end;
        let data = Randomizer.apply_db_tagged scheme rng db in
        let e = Estimator.estimate ~scheme ~data ~itemset in
        estimates.(t) <- e.Estimator.support
      done;
      {
        k;
        support;
        predicted_sigma = !predicted;
        empirical_sigma = Stats.std estimates;
        mean_estimate = Stats.mean estimates;
        trials;
      })
    cases

(* ------------------------------------------------------------------ F4 *)

type f4_row = {
  gamma_budget : float;
  min_support : float;
  true_frequent : int;
  true_positives : int;
  false_positives : int;
  false_drops : int;
}

let quest_cache : (int, Db.t) Hashtbl.t = Hashtbl.create 4

let quest_db ?(count = 100_000) () =
  match Hashtbl.find_opt quest_cache count with
  | Some db -> db
  | None ->
      let rng = Rng.create ~seed:424242 () in
      let db =
        Quest.generate rng
          {
            Quest.default with
            universe = 200;
            n_transactions = count;
            avg_transaction_size = 8.;
            n_patterns = 50;
          }
      in
      Hashtbl.replace quest_cache count db;
      db

(* One operator per occurring transaction size, all under the same gamma
   budget; see Optimizer.scheme_for_estimation. *)
let optimized_family ~universe ~gamma () =
  Optimizer.scheme_for_estimation ~universe ~gamma ()

let f4_mining_accuracy ?(count = 100_000) () =
  let db = quest_db ~count () in
  let universe = Db.universe db in
  let min_supports = [ 0.01; 0.02; 0.05 ] in
  let gammas = [ 9.; 19.; 49. ] in
  let truths =
    List.map
      (fun min_support -> (min_support, Apriori.mine db ~min_support ~max_size:3))
      min_supports
  in
  List.concat_map
    (fun gamma_budget ->
      let scheme = optimized_family ~universe ~gamma:gamma_budget () in
      let rng = Rng.create ~seed:(7000 + int_of_float gamma_budget) () in
      let data = Randomizer.apply_db_tagged scheme rng db in
      List.map
        (fun min_support ->
          let truth = List.assoc min_support truths in
          let mined = Ppmining.mine ~scheme ~data ~min_support ~max_size:3 () in
          let acc = Ppmining.accuracy_vs ~truth ~mined in
          {
            gamma_budget;
            min_support;
            true_frequent = List.length truth;
            true_positives = acc.Ppmining.true_positives;
            false_positives = acc.Ppmining.false_positives;
            false_drops = acc.Ppmining.false_drops;
          })
        min_supports)
    gammas

(* ------------------------------------------------------------------ A1 *)

type a1_row = {
  size : int;
  gamma : float;
  rr_epsilon : float;
  sas_sigma_k2 : float;
  rr_sigma_k2 : float;
  sas_kept : float;
  rr_kept : float;
}

let a1_rr_comparison () =
  let sigma_k2 resolved =
    Estimator.predicted_sigma resolved ~k:2
      ~partials:(Estimator.binomial_profile ~k:2 ~p_bg:0.02 ~support:0.01)
      ~n:100_000
  in
  List.concat_map
    (fun size ->
      List.map
        (fun gamma ->
          let d = Optimizer.design_for_estimation ~m:size ~gamma () in
          let sas : Randomizer.resolved =
            { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
          in
          let rr_epsilon = Ldp.rr_epsilon_for_gamma ~size ~gamma in
          let p = Ldp.rr_keep_probability ~epsilon_per_item:rr_epsilon in
          let rr_scheme =
            Randomizer.uniform ~universe:1000 ~p_keep:p ~p_add:(1. -. p)
          in
          let rr = Randomizer.resolve rr_scheme ~size in
          {
            size;
            gamma;
            rr_epsilon;
            sas_sigma_k2 = sigma_k2 sas;
            rr_sigma_k2 = sigma_k2 rr;
            sas_kept = kept_fraction d.Optimizer.dist;
            rr_kept = p;
          })
        [ 9.; 19.; 49. ])
    [ 5; 10 ]

(* ------------------------------------------------------------------ A2 *)

type a2_row = {
  sigma_slack : float;
  true_positives : int;
  false_positives : int;
  false_drops : int;
  explored : int;
}

let a2_slack_ablation ?(count = 100_000) () =
  let db = quest_db ~count () in
  let universe = Db.universe db in
  (* gamma = 49 keeps pair sigma inside the discoverable window at this
     sample size, so the knob actually engages *)
  let min_support = 0.05 and gamma = 49. in
  let scheme = optimized_family ~universe ~gamma () in
  let rng = Rng.create ~seed:515151 () in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let truth = Apriori.mine db ~min_support ~max_size:3 in
  List.map
    (fun sigma_slack ->
      let mined =
        Ppmining.mine ~scheme ~data ~min_support ~max_size:3 ~sigma_slack ()
      in
      let acc = Ppmining.accuracy_vs ~truth ~mined in
      {
        sigma_slack;
        true_positives = acc.Ppmining.true_positives;
        false_positives = acc.Ppmining.false_positives;
        false_drops = acc.Ppmining.false_drops;
        explored = List.length mined.Ppmining.explored;
      })
    (* slack 3 is omitted: 3 sigma exceeds the threshold window at this
       privacy level, so the slackened test goes vacuous and exploration
       blows up combinatorially — the same regime the sigma cap guards *)
    [ 0.; 0.5; 1.; 2. ]

(* ------------------------------------------------------------------ A4 *)

type a4_row = {
  count : int;
  inv_rmse : float;
  em_rmse : float;
  inv_infeasible : int;
  trials : int;
}

let a4_inversion_vs_em ?(trials = 16) () =
  let universe = 200 and size = 5 and support = 0.1 in
  let itemset = Itemset.of_list [ 3; 11 ] in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.05 in
  List.map
    (fun count ->
      let inv_err = Array.make trials 0. and em_err = Array.make trials 0. in
      let infeasible = ref 0 in
      for t = 0 to trials - 1 do
        let rng = Rng.create ~seed:(40_000 + (trials * count) + t) () in
        let db = Simple.planted rng ~universe ~size ~count ~itemset ~support in
        let truth = Db.support db itemset in
        let data = Randomizer.apply_db_tagged scheme rng db in
        let inv = Estimator.estimate ~scheme ~data ~itemset in
        let em = Em.estimate ~scheme ~data ~itemset () in
        inv_err.(t) <- inv.Estimator.support -. truth;
        em_err.(t) <- em.Em.support -. truth;
        if
          Array.exists
            (fun v -> v < -1e-9 || v > 1. +. 1e-9)
            inv.Estimator.partials
        then incr infeasible
      done;
      let rmse errs =
        sqrt
          (Array.fold_left (fun acc e -> acc +. (e *. e)) 0. errs
          /. float_of_int trials)
      in
      {
        count;
        inv_rmse = rmse inv_err;
        em_rmse = rmse em_err;
        inv_infeasible = !infeasible;
        trials;
      })
    [ 100; 500; 2_000; 10_000 ]

(* ------------------------------------------------------------------ F5 *)

type f5_point = {
  prior : float;
  analytic_posterior : float;
  empirical_posterior : float;
  bound : float;
}

let f5_bound_validation ?(count = 8_000) () =
  let size = 5 and gamma = 19. in
  let d = Optimizer.design_for_estimation ~m:size ~gamma () in
  let resolved : Randomizer.resolved =
    { keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho }
  in
  let realized = Amplification.gamma_resolved resolved in
  (* sweep the prior by varying the universe: fixed-size uniform data has
     item prior size/universe *)
  List.map
    (fun universe ->
      let prior = float_of_int size /. float_of_int universe in
      let scheme =
        Randomizer.select_a_size ~universe ~size ~keep_dist:d.Optimizer.dist
          ~rho:d.Optimizer.rho
      in
      let rng = Rng.create ~seed:(9000 + universe) () in
      let db = Simple.fixed_size rng ~universe ~size ~count in
      let randomized = Randomizer.apply_db scheme rng db in
      {
        prior;
        analytic_posterior = Breach.worst_item_posterior resolved ~prior;
        empirical_posterior =
          Breach.empirical_worst_item_posterior ~original:db ~randomized;
        bound = Amplification.posterior_upper_bound ~gamma:realized ~prior;
      })
    [ 500; 200; 100; 50; 25 ]

(* ------------------------------------------------------------------ E1 *)

type e1_row = {
  alpha : float;
  gamma : float;
  epsilon : float;
  posterior_bound : float;
  reconstruction_rmse : float;
}

let e1_channel_tradeoff ?(count = 30_000) () =
  let bins = 16 in
  (* a fixed bimodal population over the binned domain *)
  let rng0 = Rng.create ~seed:88_001 () in
  let values =
    Array.init count (fun i ->
        let v =
          if i mod 3 = 0 then Ppdm_prng.Dist.normal rng0 ~mean:11. ~std:1.5
          else Ppdm_prng.Dist.normal rng0 ~mean:5. ~std:1.2
        in
        max 0 (min (bins - 1) (int_of_float (Float.round v))))
  in
  let truth = Array.make bins 0. in
  Array.iter (fun x -> truth.(x) <- truth.(x) +. (1. /. float_of_int count)) values;
  List.map
    (fun target_gamma ->
      (* calibrate the decay so the realized gamma hits the target *)
      let alpha =
        let lo = ref 1e-6 and hi = ref (1. -. 1e-9) in
        for _ = 1 to 60 do
          let mid = 0.5 *. (!lo +. !hi) in
          if Channel.gamma (Channel.geometric_noise ~size:bins ~alpha:mid) > target_gamma
          then lo := mid
          else hi := mid
        done;
        0.5 *. (!lo +. !hi)
      in
      let channel = Channel.geometric_noise ~size:bins ~alpha in
      let gamma = Channel.gamma channel in
      let rng = Rng.create ~seed:(88_100 + int_of_float target_gamma) () in
      let counts = Array.make bins 0 in
      Array.iter
        (fun x ->
          let y = Channel.apply channel rng x in
          counts.(y) <- counts.(y) + 1)
        values;
      let recovered = Channel.estimate_em channel ~counts in
      {
        alpha;
        gamma;
        epsilon = log gamma;
        posterior_bound = Amplification.posterior_upper_bound ~gamma ~prior:0.05;
        reconstruction_rmse = Stats.rmse recovered truth;
      })
    [ 5.; 9.; 19.; 49.; 99. ]
