(** Bridge to local differential privacy (LDP).

    Amplification is an ε-LDP statement in disguise: an operator that is at
    most γ-amplifying over size-[m] transactions satisfies ε-local
    differential privacy with [ε = ln γ] for that input space, and
    conversely.  This module makes the translation explicit and provides
    the classical symmetric randomized-response (RR) frequency oracle as a
    baseline operator — RR is a {!Randomizer.uniform} instance, so the
    whole transition/estimation machinery applies to it unchanged.  The
    ablation benchmark A1 uses this to compare the paper's optimized
    select-a-size designs against RR at matched privacy. *)

val epsilon_of_gamma : float -> float
(** [ln γ].  Requires [γ >= 1]; infinite γ maps to [infinity]. *)

val gamma_of_epsilon : float -> float
(** [exp ε].  Requires [ε >= 0]. *)

val randomized_response : universe:int -> epsilon_per_item:float -> Randomizer.t
(** Symmetric per-item randomized response with budget ε per item: each
    bit of the characteristic vector is reported truthfully with
    probability [e^ε / (1 + e^ε)].  Satisfies ε-LDP {e per item}; the
    transaction-level amplification follows from {!gamma_uniform}. *)

val rr_keep_probability : epsilon_per_item:float -> float
(** [e^ε / (1 + e^ε)], the per-bit truth rate of symmetric RR. *)

val item_epsilon_of_uniform : p_keep:float -> p_add:float -> float
(** Per-item ε of a uniform operator: the largest log-likelihood ratio any
    single bit's report can carry,
    [max(|ln(p_keep/p_add)|, |ln((1-p_keep)/(1-p_add))|].
    Infinite when a bit can be revealed with certainty. *)

val gamma_uniform : size:int -> p_keep:float -> p_add:float -> float
(** Transaction-level amplification of a uniform operator at the given
    transaction size (shorthand for building the operator and calling
    {!Amplification.gamma_resolved}). *)

val rr_epsilon_for_gamma : size:int -> gamma:float -> float
(** The per-item ε making symmetric RR exactly γ-amplifying at the given
    transaction size (bisection on the closed form); the inverse of
    [gamma_uniform] along the symmetric-RR family.  Requires [gamma > 1]. *)
