(** In-memory transaction databases.

    A database is an immutable array of transactions (itemsets) over a
    fixed item universe [{0, ..., universe-1}].  The universe size matters:
    the randomization operators insert noise items drawn from the
    complement of a transaction, so their privacy and recovery behaviour
    depends on [universe]. *)

type t

val create : universe:int -> Itemset.t array -> t
(** Adopts the array (no copy).  @raise Invalid_argument if an item is
    outside the universe or [universe <= 0]. *)

val universe : t -> int
val length : t -> int

val get : t -> int -> Itemset.t

val transactions : t -> Itemset.t array
(** The underlying array; treat as read-only. *)

val iter : (Itemset.t -> unit) -> t -> unit
val iteri : (int -> Itemset.t -> unit) -> t -> unit
val fold : ('a -> Itemset.t -> 'a) -> 'a -> t -> 'a

val map : (Itemset.t -> Itemset.t) -> t -> t
(** Transaction-wise map; keeps the universe. *)

val filter : (Itemset.t -> bool) -> t -> t

val sub : t -> pos:int -> len:int -> t
(** Contiguous slice of transactions. *)

val append : t -> t -> t
(** Concatenation; universes must agree. *)

val support_count : t -> Itemset.t -> int
(** Number of transactions containing the given itemset. *)

val support : t -> Itemset.t -> float
(** [support_count] as a fraction of [length]. *)

val partial_support_counts : t -> Itemset.t -> int array
(** [partial_support_counts db a] has length [cardinal a + 1]; entry [l]
    counts transactions [t] with [|t ∩ a| = l].  This is the observable
    the randomized-support estimator works from. *)

val item_counts : t -> int array
(** Per-item occurrence counts, indexed by item id (length [universe]). *)

val size_histogram : t -> (int * int) list
(** [(size, how many transactions have that size)], increasing in size. *)

val avg_size : t -> float
(** Average transaction size; 0 for the empty database. *)

val density : t -> float
(** Fraction of the item-transaction matrix that is set:
    [Σ|t| / (length * universe)]; 0 for the empty database. *)

val split : t -> at:int -> t * t
(** [(first at transactions, the rest)].
    @raise Invalid_argument unless [0 <= at <= length]. *)

val item_frequency_quantiles : t -> float list -> float list
(** Quantiles of the per-item support fractions (see
    {!Ppdm_linalg.Stats.quantile} semantics); useful to characterize the
    popularity skew of a workload.  Requires a non-empty database. *)
