lib/transaction/db.ml: Array Float Hashtbl Itemset List Option
