lib/transaction/itemset.mli: Format
