lib/transaction/db.mli: Itemset
