lib/transaction/bitset.mli: Format Itemset
