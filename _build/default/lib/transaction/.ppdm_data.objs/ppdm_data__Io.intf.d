lib/transaction/io.mli: Db
