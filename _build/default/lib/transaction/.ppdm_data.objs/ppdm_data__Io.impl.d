lib/transaction/io.ml: Array Db Fun Itemset List Printf String
