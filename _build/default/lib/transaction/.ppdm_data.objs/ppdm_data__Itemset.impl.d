lib/transaction/itemset.ml: Array Format Hashtbl List
