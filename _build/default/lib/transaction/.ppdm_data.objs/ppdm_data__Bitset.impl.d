lib/transaction/bitset.ml: Array Bytes Char Itemset Lazy List Printf
