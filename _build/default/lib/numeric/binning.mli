(** Equi-width binning of a numeric attribute.

    The amplification framework works over finite domains, so a numeric
    attribute (age, salary, ...) is discretized into bins before
    randomization; the server reconstructs the *binned density*, which is
    what the downstream mining (histograms, decision-tree splits) uses. *)

type t
(** A binning of the interval [[lo, hi)] into [count] equal-width bins. *)

val create : lo:float -> hi:float -> count:int -> t
(** @raise Invalid_argument unless [lo < hi] and [count >= 1]. *)

val count : t -> int
val lo : t -> float
val hi : t -> float

val index : t -> float -> int
(** Bin of a value; values outside [[lo, hi)] are clamped to the first or
    last bin (the usual histogram convention for boundary noise). *)

val center : t -> int -> float
(** Midpoint of a bin.  @raise Invalid_argument if out of range. *)

val bounds : t -> int -> float * float
(** [(lower, upper)] edges of a bin. *)

val histogram : t -> float array -> float array
(** Normalized histogram (a probability vector over bins) of a sample.
    @raise Invalid_argument on an empty sample. *)

val counts : t -> float array -> int array
(** Raw bin counts of a sample. *)
