(** Numeric-attribute randomization: the additive-noise setting of the
    privacy-preserving-data-mining literature (Agrawal & Srikant 2000;
    Agrawal & Aggarwal 2001), re-expressed through the awarded paper's
    amplification lens.

    A client's numeric value is binned ({!Binning}) and pushed through a
    discrete noise channel ({!Ppdm.Channel}); the server reconstructs the
    population's bin density from the randomized outputs.  Because the
    channel's amplification γ is computable, the PODS 2003 breach bound
    certifies this pipeline exactly as it certifies the itemset one. *)

open Ppdm_prng
open Ppdm

type t
(** A randomizer for one numeric attribute. *)

val laplace_like : binning:Binning.t -> alpha:float -> t
(** Truncated-geometric noise ([P(j|i) ∝ alpha^|i-j|]): the binned
    analogue of additive Laplace noise.  Smaller [alpha] = less noise =
    larger γ. *)

val randomized_response : binning:Binning.t -> epsilon:float -> t
(** Uniform randomized response over bins at per-value budget ε. *)

val laplace_for_gamma : binning:Binning.t -> gamma:float -> t
(** {!laplace_like} with the noise decay chosen (by bisection on the
    realized channel amplification) so that {!gamma} equals the target
    within 0.1%.  Over a wide domain the worst case is telling the two
    extreme bins apart, so meaningful privacy needs decay close to 1 —
    this constructor does the calibration.
    @raise Invalid_argument unless [gamma > 1]. *)

val binning : t -> Binning.t
val channel : t -> Channel.t

val gamma : t -> float
(** Amplification of the underlying channel — plug into
    {!Ppdm.Amplification.posterior_upper_bound} for the privacy
    certificate. *)

val randomize : t -> Rng.t -> float -> int
(** Randomize one client value to an output bin. *)

val randomize_all : t -> Rng.t -> float array -> int array

type reconstruction = {
  density : float array;  (** recovered bin probabilities *)
  method_ : [ `Inversion | `Em ];
  n : int;
}

val reconstruct :
  ?method_:[ `Inversion | `Em ] -> t -> counts:int array -> reconstruction
(** Recover the population density from output-bin counts (default
    [`Em]: always a valid density; [`Inversion] is unbiased but can leave
    the simplex). *)

val mean_of_density : t -> float array -> float
(** Mean of a bin density under the bin-center approximation. *)

val quantile_of_density : t -> float array -> float -> float
(** Quantile of a bin density (linear within the quantile bin).
    @raise Invalid_argument unless the argument is in [0, 1]. *)
