type t = { lo : float; hi : float; count : int; width : float }

let create ~lo ~hi ~count =
  if not (lo < hi) then invalid_arg "Binning.create: need lo < hi";
  if count < 1 then invalid_arg "Binning.create: need at least one bin";
  { lo; hi; count; width = (hi -. lo) /. float_of_int count }

let count t = t.count
let lo t = t.lo
let hi t = t.hi

let index t v =
  let raw = int_of_float (Float.floor ((v -. t.lo) /. t.width)) in
  max 0 (min (t.count - 1) raw)

let check_bin t i =
  if i < 0 || i >= t.count then invalid_arg "Binning: bin out of range"

let center t i =
  check_bin t i;
  t.lo +. ((float_of_int i +. 0.5) *. t.width)

let bounds t i =
  check_bin t i;
  (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

let counts t sample =
  let c = Array.make t.count 0 in
  Array.iter
    (fun v ->
      let i = index t v in
      c.(i) <- c.(i) + 1)
    sample;
  c

let histogram t sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Binning.histogram: empty sample";
  Array.map (fun c -> float_of_int c /. float_of_int n) (counts t sample)
