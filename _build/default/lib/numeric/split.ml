type class_profile = { density : float array; prior : float }

type split = {
  bin : int;
  threshold : float;
  score : float;
  left_mass : float;
}

type criterion = Gini | Information_gain

let impurity criterion probs =
  let total = Array.fold_left ( +. ) 0. probs in
  if Float.abs (total -. 1.) > 1e-6 || Array.exists (fun p -> p < 0.) probs then
    invalid_arg "Split.impurity: not a probability vector";
  match criterion with
  | Gini -> 1. -. Array.fold_left (fun acc p -> acc +. (p *. p)) 0. probs
  | Information_gain ->
      -.Array.fold_left
          (fun acc p -> if p > 0. then acc +. (p *. log p) else acc)
          0. probs

let validate ~binning profiles =
  if profiles = [] then invalid_arg "Split: no classes";
  let bins = Binning.count binning in
  List.iter
    (fun c ->
      if Array.length c.density <> bins then
        invalid_arg "Split: density length does not match the binning")
    profiles;
  let prior_total = List.fold_left (fun acc c -> acc +. c.prior) 0. profiles in
  if Float.abs (prior_total -. 1.) > 1e-6 then
    invalid_arg "Split: class priors must sum to 1"

(* Class-probability vector of a region given per-class mass inside it. *)
let class_probs masses =
  let total = Array.fold_left ( +. ) 0. masses in
  if total <= 0. then None else Some (Array.map (fun m -> m /. total) masses)

let splits ?(criterion = Gini) ~binning profiles =
  validate ~binning profiles;
  let bins = Binning.count binning in
  let classes = Array.of_list profiles in
  let n_classes = Array.length classes in
  let parent_probs = Array.map (fun c -> c.prior) classes in
  let parent_impurity = impurity criterion parent_probs in
  (* weighted class mass to the left of each boundary, built incrementally *)
  let left = Array.make n_classes 0. in
  let out = ref [] in
  for boundary = 0 to bins - 2 do
    Array.iteri
      (fun c profile ->
        left.(c) <- left.(c) +. (profile.prior *. profile.density.(boundary)))
      classes;
    let right =
      Array.mapi (fun c profile -> Float.max 0. (profile.prior -. left.(c))) classes
    in
    let left_mass = Array.fold_left ( +. ) 0. left in
    let right_mass = Array.fold_left ( +. ) 0. right in
    match (class_probs (Array.copy left), class_probs right) with
    | Some lp, Some rp when left_mass > 0. && right_mass > 0. ->
        let child =
          (left_mass *. impurity criterion lp)
          +. (right_mass *. impurity criterion rp)
        in
        let score = Float.max 0. (parent_impurity -. child) in
        let threshold = snd (Binning.bounds binning boundary) in
        out := { bin = boundary; threshold; score; left_mass } :: !out
    | _ -> ()
  done;
  List.rev !out

let best_split ?(criterion = Gini) ~binning profiles =
  let candidates = splits ~criterion ~binning profiles in
  List.fold_left
    (fun best s ->
      match best with
      | Some b when b.score >= s.score -> best
      | _ -> if s.score > 1e-12 then Some s else best)
    None candidates
