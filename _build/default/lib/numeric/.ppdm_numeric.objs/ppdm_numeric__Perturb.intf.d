lib/numeric/perturb.mli: Binning Channel Ppdm Ppdm_prng Rng
