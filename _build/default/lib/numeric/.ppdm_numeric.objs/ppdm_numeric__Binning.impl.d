lib/numeric/binning.ml: Array Float
