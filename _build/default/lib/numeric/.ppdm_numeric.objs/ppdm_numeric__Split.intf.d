lib/numeric/split.mli: Binning
