lib/numeric/perturb.ml: Array Binning Channel Float Ppdm
