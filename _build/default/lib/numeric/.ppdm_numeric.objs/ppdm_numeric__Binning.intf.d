lib/numeric/binning.mli:
