lib/numeric/split.ml: Array Binning Float List
