open Ppdm

type t = { binning : Binning.t; channel : Channel.t }

let laplace_like ~binning ~alpha =
  { binning; channel = Channel.geometric_noise ~size:(Binning.count binning) ~alpha }

let randomized_response ~binning ~epsilon =
  {
    binning;
    channel = Channel.randomized_response ~size:(Binning.count binning) ~epsilon;
  }

let laplace_for_gamma ~binning ~gamma =
  if gamma <= 1. then invalid_arg "Perturb.laplace_for_gamma: gamma must be > 1";
  let size = Binning.count binning in
  let gamma_of alpha =
    Channel.gamma (Channel.geometric_noise ~size ~alpha)
  in
  (* gamma is continuous and strictly decreasing in alpha on (0,1) *)
  let lo = ref 1e-6 and hi = ref (1. -. 1e-9) in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if gamma_of mid > gamma then lo := mid else hi := mid
  done;
  laplace_like ~binning ~alpha:(0.5 *. (!lo +. !hi))

let binning t = t.binning
let channel t = t.channel
let gamma t = Channel.gamma t.channel
let randomize t rng v = Channel.apply t.channel rng (Binning.index t.binning v)
let randomize_all t rng values = Array.map (randomize t rng) values

type reconstruction = {
  density : float array;
  method_ : [ `Inversion | `Em ];
  n : int;
}

let reconstruct ?(method_ = `Em) t ~counts =
  let n = Array.fold_left ( + ) 0 counts in
  let density =
    match method_ with
    | `Em -> Channel.estimate_em t.channel ~counts
    | `Inversion -> Channel.estimate_inversion t.channel ~counts
  in
  { density; method_; n }

let check_density t density =
  if Array.length density <> Binning.count t.binning then
    invalid_arg "Perturb: density dimension mismatch"

let mean_of_density t density =
  check_density t density;
  let acc = ref 0. in
  Array.iteri
    (fun i p -> acc := !acc +. (p *. Binning.center t.binning i))
    density;
  !acc

let quantile_of_density t density q =
  check_density t density;
  if q < 0. || q > 1. then invalid_arg "Perturb.quantile_of_density: q out of [0,1]";
  let total = Array.fold_left ( +. ) 0. density in
  if total <= 0. then invalid_arg "Perturb.quantile_of_density: empty density";
  let target = q *. total in
  let rec walk i acc =
    if i >= Binning.count t.binning - 1 then i
    else if acc +. density.(i) >= target then i
    else walk (i + 1) (acc +. density.(i))
  in
  let rec mass_before i acc j =
    if j >= i then acc else mass_before i (acc +. density.(j)) (j + 1)
  in
  let bin = walk 0 0. in
  let before = mass_before bin 0. 0 in
  let inside = if density.(bin) > 0. then (target -. before) /. density.(bin) else 0.5 in
  let lo, hi = Binning.bounds t.binning bin in
  lo +. (Float.max 0. (Float.min 1. inside) *. (hi -. lo))
