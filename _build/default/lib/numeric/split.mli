(** Decision-tree split finding over reconstructed densities.

    The classical application of numeric-attribute randomization (Agrawal
    & Srikant, SIGMOD 2000) is training classifiers the server never sees
    raw data for: reconstruct each class's attribute density from the
    randomized reports, then choose split points on the *densities*.  This
    module implements that step — given per-class bin densities and class
    priors, evaluate every bin boundary as a split and return the best by
    Gini impurity or information gain. *)

type class_profile = {
  density : float array;  (** bin density of the attribute within the class *)
  prior : float;  (** class probability *)
}

type split = {
  bin : int;  (** split between bins [bin] and [bin + 1] *)
  threshold : float;  (** attribute value at the boundary *)
  score : float;  (** impurity decrease (non-negative) *)
  left_mass : float;  (** probability mass routed left *)
}

type criterion = Gini | Information_gain

val impurity : criterion -> float array -> float
(** Impurity of a class-probability vector: Gini [1 - Σ p²] or entropy
    [-Σ p ln p].  @raise Invalid_argument unless it is a probability
    vector (tolerance 1e-6). *)

val best_split :
  ?criterion:criterion -> binning:Binning.t -> class_profile list -> split option
(** The boundary with the largest impurity decrease, or [None] when no
    boundary separates anything (a single class, or all mass in one bin).
    @raise Invalid_argument on empty input, mismatched density lengths,
    or priors that do not sum to 1. *)

val splits :
  ?criterion:criterion -> binning:Binning.t -> class_profile list -> split list
(** Every candidate boundary with its score, by increasing bin. *)
