(* Failure-injection tests: the parsers must reject arbitrary garbage with
   their documented exceptions (Failure / Invalid_argument) — never leak
   Not_found, End_of_file, out-of-bounds, or succeed with nonsense. *)

open Ppdm_data
open Ppdm

let with_content content f =
  let path = Filename.temp_file "ppdm_fuzz" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

(* A reader survives fuzzing when every input either parses or fails with
   a documented exception. *)
let survives reader content =
  with_content content (fun path ->
      match reader path with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let gen_garbage =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200))

let gen_almost_db =
  (* structured-ish garbage: headers with wrong numbers, partial bodies *)
  QCheck.Gen.(
    let* u = int_range (-2) 20 in
    let* c = int_range (-2) 10 in
    let* body = list_size (int_range 0 12) (list_size (int_range 0 5) (int_range (-3) 25)) in
    let lines =
      List.map (fun tx -> String.concat " " (List.map string_of_int tx)) body
    in
    return
      (Printf.sprintf "universe %d transactions %d\n%s\n" u c
         (String.concat "\n" lines)))

let arb gen = QCheck.make ~print:String.escaped gen

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Io.read_file survives random bytes" ~count:300
      (arb gen_garbage) (survives Io.read_file);
    Test.make ~name:"Io.read_file survives structured garbage" ~count:300
      (arb gen_almost_db) (survives Io.read_file);
    Test.make ~name:"Io.read_fimi survives random bytes" ~count:300
      (arb gen_garbage) (survives (fun p -> Io.read_fimi p));
    Test.make ~name:"Scheme_io.read_file survives random bytes" ~count:300
      (arb gen_garbage) (survives Scheme_io.read_file);
    Test.make ~name:"Scheme_io.read_file survives corrupted scheme files"
      ~count:200
      (arb
         QCheck.Gen.(
           let* rho = float_range (-1.) 2. in
           let* m = int_range (-1) 6 in
           let* probs = list_size (int_range 0 8) (float_range (-0.5) 1.5) in
           return
             (Printf.sprintf
                "ppdm-scheme 1\nuniverse 10\nname fuzz\nsize %d rho %g keep %s\n"
                m rho
                (String.concat " " (List.map string_of_float probs)))))
      (fun content ->
        with_content content (fun path ->
            (* reading may succeed (the file may be syntactically valid);
               resolving must then validate the operator *)
            match Scheme_io.read_file path with
            | scheme -> (
                match Randomizer.resolve scheme ~size:3 with
                | _ -> true
                | exception Invalid_argument _ -> true
                | exception _ -> false)
            | exception Failure _ -> true
            | exception Invalid_argument _ -> true
            | exception _ -> false));
  ]

let test_roundtrip_after_fuzz () =
  (* sanity: a legitimate file still parses after all that *)
  let db =
    Db.create ~universe:6
      (Array.of_list (List.map Itemset.of_list [ [ 0; 5 ]; []; [ 1; 2; 3 ] ]))
  in
  let path = Filename.temp_file "ppdm_ok" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file path db;
      Alcotest.(check int) "reads back" 3 (Db.length (Io.read_file path)))

let suite =
  [ Alcotest.test_case "legitimate file still parses" `Quick test_roundtrip_after_fuzz ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
