(* Transition-matrix tests: stochasticity, hand-checked small cases, and
   Monte-Carlo agreement of P(l' | l) with simulation. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_linalg
open Ppdm

let sas ~universe ~size ~keep_dist ~rho =
  Randomizer.resolve
    (Randomizer.select_a_size ~universe ~size ~keep_dist ~rho)
    ~size

let test_column_stochastic () =
  let cases =
    [
      sas ~universe:100 ~size:5 ~keep_dist:[| 0.1; 0.1; 0.2; 0.2; 0.2; 0.2 |] ~rho:0.07;
      Randomizer.resolve (Randomizer.cut_and_paste ~universe:100 ~cutoff:3 ~rho:0.2) ~size:8;
      Randomizer.resolve (Randomizer.uniform ~universe:100 ~p_keep:0.6 ~p_add:0.01) ~size:6;
    ]
  in
  List.iter
    (fun r ->
      for k = 0 to 4 do
        let m = Transition.rect_matrix r ~k in
        Alcotest.(check bool)
          (Printf.sprintf "stochastic k=%d" k)
          true
          (Transition.is_column_stochastic m)
      done)
    cases

let test_k_zero () =
  let r = sas ~universe:50 ~size:3 ~keep_dist:[| 0.25; 0.25; 0.25; 0.25 |] ~rho:0.1 in
  let m = Transition.matrix r ~k:0 in
  Alcotest.(check int) "1x1" 1 (Mat.rows m);
  Alcotest.(check (float 1e-12)) "trivial" 1. (Mat.get m 0 0)

let test_identity_operator_matrix () =
  (* keep everything, add nothing: P is the identity *)
  let r = sas ~universe:50 ~size:4 ~keep_dist:[| 0.; 0.; 0.; 0.; 1. |] ~rho:0. in
  let p = Transition.matrix r ~k:3 in
  Alcotest.(check bool) "identity" true (Mat.max_abs_diff p (Mat.identity 4) < 1e-12)

let test_k1_hand_case () =
  (* k = 1: P = [[1-rho, 1-q],[rho, q]] with q the keep probability *)
  let keep_dist = [| 0.2; 0.3; 0.5 |] and rho = 0.15 in
  let r = sas ~universe:50 ~size:2 ~keep_dist ~rho in
  let q = Breach.keep_probability r in
  Alcotest.(check (float 1e-12)) "q by hand" ((0.3 *. 0.5) +. (0.5 *. 1.)) q;
  let p = Transition.matrix r ~k:1 in
  Alcotest.(check (float 1e-12)) "P(0|0)" (1. -. rho) (Mat.get p 0 0);
  Alcotest.(check (float 1e-12)) "P(1|0)" rho (Mat.get p 1 0);
  Alcotest.(check (float 1e-12)) "P(0|1)" (1. -. q) (Mat.get p 0 1);
  Alcotest.(check (float 1e-12)) "P(1|1)" q (Mat.get p 1 1)

let test_rect_matrix_shape () =
  let r = sas ~universe:50 ~size:2 ~keep_dist:[| 0.3; 0.3; 0.4 |] ~rho:0.1 in
  let m = Transition.rect_matrix r ~k:4 in
  Alcotest.(check int) "rows" 5 (Mat.rows m);
  Alcotest.(check int) "cols = min(k,m)+1" 3 (Mat.cols m);
  Alcotest.(check bool) "columns still stochastic" true
    (Transition.is_column_stochastic m);
  Alcotest.check_raises "square matrix refuses k > m"
    (Invalid_argument "Transition.matrix: itemset larger than transaction size")
    (fun () -> ignore (Transition.matrix r ~k:4))

let test_monte_carlo_agreement () =
  let universe = 40 and size = 6 and rho = 0.12 in
  let keep_dist = [| 0.05; 0.1; 0.15; 0.2; 0.2; 0.15; 0.15 |] in
  let scheme = Randomizer.select_a_size ~universe ~size ~keep_dist ~rho in
  let r = Randomizer.resolve scheme ~size in
  let k = 3 in
  let p = Transition.matrix r ~k in
  let itemset = Itemset.of_list [ 0; 1; 2 ] in
  let rng = Rng.create ~seed:17 () in
  (* for each true intersection level l, build matching transactions *)
  for l = 0 to k do
    let base = Array.init l Fun.id in
    let rest = Array.init (size - l) (fun i -> 10 + i) in
    let tx = Itemset.of_array (Array.append base rest) in
    Alcotest.(check int) "intersection is l" l (Itemset.inter_size itemset tx);
    let trials = 40_000 in
    let counts = Array.make (k + 1) 0 in
    for _ = 1 to trials do
      let y = Randomizer.apply scheme rng tx in
      let l' = Itemset.inter_size itemset y in
      counts.(l') <- counts.(l') + 1
    done;
    for l' = 0 to k do
      let expected = Mat.get p l' l in
      let got = float_of_int counts.(l') /. float_of_int trials in
      let slack = 4. *. sqrt ((expected +. 1e-4) /. float_of_int trials) +. 1e-3 in
      Alcotest.(check bool)
        (Printf.sprintf "P(%d|%d): %.4f near %.4f" l' l got expected)
        true
        (Float.abs (got -. expected) < slack)
    done
  done

let qcheck_tests =
  let open QCheck in
  let arb_operator =
    let gen =
      Gen.(
        let* m = int_range 1 8 in
        let* rho = float_range 0.01 0.6 in
        let* raw = array_size (return (m + 1)) (float_range 0.01 1.) in
        let total = Array.fold_left ( +. ) 0. raw in
        let keep_dist = Array.map (fun x -> x /. total) raw in
        return
          ( m,
            sas ~universe:60 ~size:m ~keep_dist ~rho ))
    in
    make ~print:(fun (m, _) -> Printf.sprintf "m=%d" m) gen
  in
  [
    Test.make ~name:"matrices are column-stochastic for random operators"
      ~count:200
      (pair arb_operator (int_range 0 8)) (fun ((m, r), k) ->
        QCheck.assume (k <= m);
        Transition.is_column_stochastic (Transition.matrix r ~k));
    Test.make ~name:"rect matrices are column-stochastic" ~count:200
      (pair arb_operator (int_range 0 12)) (fun ((_, r), k) ->
        Transition.is_column_stochastic (Transition.rect_matrix r ~k));
    Test.make ~name:"probability consistency with matrix entries" ~count:100
      arb_operator (fun (m, r) ->
        let k = min m 3 in
        let p = Transition.matrix r ~k in
        let ok = ref true in
        for l = 0 to k do
          for l' = 0 to k do
            if
              Float.abs (Mat.get p l' l -. Transition.probability r ~k ~l ~l')
              > 1e-12
            then ok := false
          done
        done;
        !ok);
  ]

let suite =
  [
    Alcotest.test_case "column stochastic" `Quick test_column_stochastic;
    Alcotest.test_case "k = 0" `Quick test_k_zero;
    Alcotest.test_case "identity operator" `Quick test_identity_operator_matrix;
    Alcotest.test_case "k = 1 hand case" `Quick test_k1_hand_case;
    Alcotest.test_case "rectangular shape" `Quick test_rect_matrix_shape;
    Alcotest.test_case "Monte-Carlo agreement" `Slow test_monte_carlo_agreement;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
