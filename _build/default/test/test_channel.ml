(* Generic-channel tests: validation, gamma closed cases, composition
   (data-processing inequality), Bayes posteriors, and both recovery
   methods against known input distributions. *)

open Ppdm_prng
open Ppdm_linalg
open Ppdm

let rr size epsilon = Channel.randomized_response ~size ~epsilon

let test_create_validation () =
  Alcotest.check_raises "negative entry"
    (Invalid_argument "Channel.create: negative probability") (fun () ->
      ignore (Channel.create (Mat.of_arrays [| [| 1.5 |]; [| -0.5 |] |])));
  Alcotest.check_raises "bad column"
    (Invalid_argument "Channel.create: column does not sum to 1") (fun () ->
      ignore (Channel.create (Mat.of_arrays [| [| 0.5 |]; [| 0.4 |] |])));
  let c = Channel.create (Mat.of_arrays [| [| 0.9; 0.2 |]; [| 0.1; 0.8 |] |]) in
  Alcotest.(check int) "inputs" 2 (Channel.inputs c);
  Alcotest.(check int) "outputs" 2 (Channel.outputs c);
  Alcotest.(check (float 1e-12)) "entry" 0.2 (Channel.probability c ~x:1 ~y:0)

let test_rr_gamma () =
  List.iter
    (fun (size, epsilon) ->
      let c = rr size epsilon in
      Alcotest.(check bool)
        (Printf.sprintf "size %d eps %.2f: gamma = e^eps" size epsilon)
        true
        (Float.abs (Channel.gamma c -. exp epsilon) < 1e-9 *. exp epsilon))
    [ (2, 1.); (5, 0.5); (10, 2.); (3, 0.) ]

let test_identity_gamma_infinite () =
  let c = Channel.create (Mat.identity 3) in
  Alcotest.(check (float 0.)) "identity discloses everything" infinity
    (Channel.gamma c)

let test_geometric_noise () =
  let c = Channel.geometric_noise ~size:6 ~alpha:0.5 in
  (* columns sum to 1 by construction *)
  Alcotest.(check bool) "valid channel" true
    (Transition.is_column_stochastic (Channel.matrix c));
  (* the diagonal dominates within each column *)
  for x = 0 to 5 do
    for y = 0 to 5 do
      if y <> x then
        Alcotest.(check bool) "diagonal maximal" true
          (Channel.probability c ~x ~y:x > Channel.probability c ~x ~y)
    done
  done;
  (* less noise (smaller alpha) means a larger gamma *)
  let sharp = Channel.geometric_noise ~size:6 ~alpha:0.2 in
  let blurry = Channel.geometric_noise ~size:6 ~alpha:0.8 in
  Alcotest.(check bool) "gamma decreases with alpha" true
    (Channel.gamma sharp > Channel.gamma blurry)

let test_composition () =
  let a = rr 4 1.5 and b = rr 4 1.0 in
  let ab = Channel.compose b a in
  Alcotest.(check bool) "processing cannot amplify" true
    (Channel.gamma ab <= Float.min (Channel.gamma a) (Channel.gamma b) +. 1e-9);
  Alcotest.check_raises "domain mismatch"
    (Invalid_argument "Channel.compose: domain mismatch") (fun () ->
      ignore (Channel.compose (rr 3 1.) (rr 4 1.)))

let test_posterior_bayes () =
  let c = Channel.create (Mat.of_arrays [| [| 0.9; 0.2 |]; [| 0.1; 0.8 |] |]) in
  let prior = [| 0.5; 0.5 |] in
  let post = Channel.posterior c ~prior ~y:0 in
  (* P(x=0 | y=0) = 0.9 / (0.9 + 0.2) *)
  Alcotest.(check (float 1e-12)) "bayes" (0.9 /. 1.1) post.(0);
  Alcotest.(check (float 1e-9)) "normalized" 1. (Vec.sum post);
  (* posterior respects the gamma bound *)
  let gamma = Channel.gamma c in
  Alcotest.(check bool) "bounded by amplification" true
    (post.(0) <= Amplification.posterior_upper_bound ~gamma ~prior:0.5 +. 1e-12)

let test_posterior_validation () =
  let c = rr 3 1. in
  Alcotest.check_raises "bad prior"
    (Invalid_argument "Channel.posterior: prior is not a probability vector")
    (fun () -> ignore (Channel.posterior c ~prior:[| 0.5; 0.2; 0.2 |] ~y:0))

let test_apply_distribution () =
  let c = rr 3 (log 4.) in
  (* keep probability = 4 / (4 + 2) = 2/3 *)
  let rng = Rng.create ~seed:5 () in
  let hits = ref 0 and trials = 30_000 in
  for _ = 1 to trials do
    if Channel.apply c rng 1 = 1 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "keep rate %.3f near 2/3" rate)
    true
    (Float.abs (rate -. (2. /. 3.)) < 0.01)

let observe channel rng truth_dist n =
  let sampler = Dist.discrete truth_dist in
  let counts = Array.make (Channel.outputs channel) 0 in
  for _ = 1 to n do
    let x = Dist.discrete_sample rng sampler in
    let y = Channel.apply channel rng x in
    counts.(y) <- counts.(y) + 1
  done;
  counts

let test_recovery_both_methods () =
  let truth = [| 0.5; 0.3; 0.15; 0.05 |] in
  let c = rr 4 1.2 in
  let rng = Rng.create ~seed:6 () in
  let counts = observe c rng truth 60_000 in
  let inv = Channel.estimate_inversion c ~counts in
  let em = Channel.estimate_em c ~counts in
  Array.iteri
    (fun x p ->
      Alcotest.(check bool)
        (Printf.sprintf "inversion x=%d: %.3f near %.3f" x inv.(x) p)
        true
        (Float.abs (inv.(x) -. p) < 0.02);
      Alcotest.(check bool)
        (Printf.sprintf "em x=%d: %.3f near %.3f" x em.(x) p)
        true
        (Float.abs (em.(x) -. p) < 0.02))
    truth;
  (* EM output is a distribution *)
  Alcotest.(check bool) "em simplex" true
    (Array.for_all (fun v -> v >= 0.) em && Float.abs (Vec.sum em -. 1.) < 1e-6)

let qcheck_tests =
  let open QCheck in
  let arb_channel =
    let gen =
      Gen.(
        let* size = int_range 2 6 in
        let* cols =
          array_size (return size)
            (array_size (return size) (float_range 0.05 1.))
        in
        let m =
          Mat.init ~rows:size ~cols:size (fun y x ->
              let total = Array.fold_left ( +. ) 0. cols.(x) in
              cols.(x).(y) /. total)
        in
        return (Channel.create m))
    in
    make ~print:(fun c -> Printf.sprintf "<channel %d>" (Channel.inputs c)) gen
  in
  [
    Test.make ~name:"gamma >= 1 and finite for positive channels" ~count:200
      arb_channel (fun c ->
        let g = Channel.gamma c in
        g >= 1. && Float.is_finite g);
    Test.make ~name:"posterior never exceeds the gamma bound" ~count:200
      (pair arb_channel (int_range 0 5)) (fun (c, y) ->
        QCheck.assume (y < Channel.outputs c);
        let d = Channel.inputs c in
        let prior = Array.make d (1. /. float_of_int d) in
        let post = Channel.posterior c ~prior ~y in
        Array.for_all
          (fun p ->
            p
            <= Amplification.posterior_upper_bound ~gamma:(Channel.gamma c)
                 ~prior:(1. /. float_of_int d)
               +. 1e-9)
          post);
    Test.make ~name:"composition never increases gamma" ~count:200
      (pair arb_channel arb_channel) (fun (a, b) ->
        QCheck.assume (Channel.inputs a = Channel.inputs b);
        Channel.gamma (Channel.compose b a)
        <= Float.min (Channel.gamma a) (Channel.gamma b) +. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "randomized-response gamma" `Quick test_rr_gamma;
    Alcotest.test_case "identity gamma infinite" `Quick test_identity_gamma_infinite;
    Alcotest.test_case "geometric noise" `Quick test_geometric_noise;
    Alcotest.test_case "composition" `Quick test_composition;
    Alcotest.test_case "posterior bayes" `Quick test_posterior_bayes;
    Alcotest.test_case "posterior validation" `Quick test_posterior_validation;
    Alcotest.test_case "apply distribution" `Slow test_apply_distribution;
    Alcotest.test_case "recovery both methods" `Slow test_recovery_both_methods;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
