(* Tests for the dense linear-algebra substrate: vector/matrix algebra, LU
   solve/inverse invariants (property-tested on diagonally dominant random
   matrices), and the log-space combinatorics. *)

open Ppdm_linalg

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let test_vec_algebra () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  checkf "dot" 32. (Vec.dot a b);
  checkf "sum" 6. (Vec.sum a);
  checkf "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  checkf "norm_inf" 3. (Vec.norm_inf [| -3.; 2. |]);
  checkf "max_abs_diff" 3. (Vec.max_abs_diff a b);
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch") (fun () ->
      ignore (Vec.dot a [| 1. |]))

let test_mat_basics () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 2 (Mat.cols m);
  checkf "get" 3. (Mat.get m 1 0);
  let t = Mat.transpose m in
  checkf "transpose" 2. (Mat.get t 1 0);
  let id = Mat.identity 2 in
  checkf "mul by identity" 0. (Mat.max_abs_diff m (Mat.mul m id));
  let v = Mat.mul_vec m [| 1.; 1. |] in
  Alcotest.(check (array (float 1e-12))) "mul_vec" [| 3.; 7. |] v;
  Alcotest.(check (array (float 1e-12))) "col" [| 2.; 4. |] (Mat.col m 1);
  Alcotest.(check (array (float 1e-12))) "row" [| 3.; 4. |] (Mat.row m 1)

let test_mat_product () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let b = Mat.of_arrays [| [| 7.; 8. |]; [| 9.; 10. |]; [| 11.; 12. |] |] in
  let c = Mat.mul a b in
  checkf "c00" 58. (Mat.get c 0 0);
  checkf "c01" 64. (Mat.get c 0 1);
  checkf "c10" 139. (Mat.get c 1 0);
  checkf "c11" 154. (Mat.get c 1 1)

let test_outer_diag () =
  let o = Mat.outer [| 1.; 2. |] [| 3.; 4. |] in
  checkf "outer" 8. (Mat.get o 1 1);
  let d = Mat.diag [| 5.; 6. |] in
  checkf "diag on" 6. (Mat.get d 1 1);
  checkf "diag off" 0. (Mat.get d 0 1)

let test_lu_solve_known () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve (Lu.decompose a) [| 5.; 10. |] in
  Alcotest.(check (array (float 1e-9))) "solution" [| 1.; 3. |] x

let test_lu_det () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  checkf "det" 5. (Lu.det (Lu.decompose a));
  (* permutation sign: swap rows -> negative determinant *)
  let b = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  checkf "det of swap" (-1.) (Lu.det (Lu.decompose b))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular raises" Lu.Singular (fun () ->
      ignore (Lu.decompose a))

let test_lu_inverse () =
  let a = Mat.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Lu.inverse (Lu.decompose a) in
  let prod = Mat.mul a inv in
  Alcotest.(check bool)
    "A * A^-1 = I" true
    (Mat.max_abs_diff prod (Mat.identity 2) < 1e-12)

let test_cond () =
  let id = Mat.identity 3 in
  checkf "identity condition" 1. (Lu.cond_inf_estimate id);
  let bad =
    Mat.of_arrays [| [| 1.; 0.999 |]; [| 0.999; 1. |] |]
  in
  Alcotest.(check bool) "near-singular has huge condition" true
    (Lu.cond_inf_estimate bad > 100.)

(* Random diagonally dominant matrices are well-conditioned enough for
   tight residual checks. *)
let dominant_matrix_gen =
  let open QCheck.Gen in
  sized_size (int_range 1 8) (fun n ->
      let* entries =
        array_size (return (n * n)) (float_range (-1.) 1.)
      in
      let m =
        Mat.init ~rows:n ~cols:n (fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. (2. *. float_of_int n) else v)
      in
      return m)

let arbitrary_dominant =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Mat.pp m) dominant_matrix_gen

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"LU solve residual is tiny" ~count:200 arbitrary_dominant
      (fun m ->
        let n = Mat.rows m in
        let b = Array.init n (fun i -> float_of_int ((i * 7 mod 5) - 2)) in
        let x = Lu.solve (Lu.decompose m) b in
        Vec.max_abs_diff (Mat.mul_vec m x) b < 1e-9);
    Test.make ~name:"LU inverse gives identity both sides" ~count:100
      arbitrary_dominant (fun m ->
        let inv = Lu.inverse (Lu.decompose m) in
        let n = Mat.rows m in
        Mat.max_abs_diff (Mat.mul m inv) (Mat.identity n) < 1e-9
        && Mat.max_abs_diff (Mat.mul inv m) (Mat.identity n) < 1e-9);
    Test.make ~name:"det of product = product of dets" ~count:100
      (pair arbitrary_dominant arbitrary_dominant) (fun (a, b) ->
        let n = min (Mat.rows a) (Mat.rows b) in
        let trim m = Mat.init ~rows:n ~cols:n (fun i j -> Mat.get m i j) in
        let a = trim a and b = trim b in
        let da = Lu.det (Lu.decompose a) and db = Lu.det (Lu.decompose b) in
        let dab = Lu.det (Lu.decompose (Mat.mul a b)) in
        Float.abs (dab -. (da *. db)) < 1e-6 *. Float.max 1. (Float.abs (da *. db)));
    Test.make ~name:"binomial pmf sums to one" ~count:100
      (pair (int_range 0 40) (float_range 0.01 0.99)) (fun (n, p) ->
        let total = ref 0. in
        for k = 0 to n do
          total := !total +. Binomial.binomial_pmf ~n ~p k
        done;
        feq ~eps:1e-9 !total 1.);
    Test.make ~name:"hypergeometric pmf sums to one" ~count:100
      (triple (int_range 1 30) (int_range 0 30) (int_range 0 30))
      (fun (total, good, draws) ->
        QCheck.assume (good <= total && draws <= total);
        let acc = ref 0. in
        for q = 0 to draws do
          acc := !acc +. Binomial.hypergeom_pmf ~total ~good ~draws q
        done;
        feq ~eps:1e-9 !acc 1.);
    Test.make ~name:"choose symmetry" ~count:200
      (pair (int_range 0 50) (int_range 0 50)) (fun (n, k) ->
        QCheck.assume (k <= n);
        feq ~eps:(1e-9 *. Binomial.choose n k)
          (Binomial.choose n k)
          (Binomial.choose n (n - k)));
    Test.make ~name:"Pascal rule" ~count:200
      (pair (int_range 1 40) (int_range 1 40)) (fun (n, k) ->
        QCheck.assume (k <= n - 1);
        let lhs = Binomial.choose n k in
        let rhs = Binomial.choose (n - 1) k +. Binomial.choose (n - 1) (k - 1) in
        feq ~eps:(1e-9 *. lhs) lhs rhs);
  ]

let test_binomial_exact () =
  checkf "C(5,2)" 10. (Binomial.choose 5 2);
  checkf "C(10,0)" 1. (Binomial.choose 10 0);
  checkf "C(10,10)" 1. (Binomial.choose 10 10);
  checkf "C(4,7) out of range" 0. (Binomial.choose 4 7);
  checkf "C(n,-1)" 0. (Binomial.choose 4 (-1));
  Alcotest.(check bool) "C(52,5)" true (feq ~eps:1. (Binomial.choose 52 5) 2_598_960.);
  checkf "log_factorial 0" 0. (Binomial.log_factorial 0);
  Alcotest.(check bool) "log_factorial 10" true
    (feq ~eps:1e-9 (Binomial.log_factorial 10) (log 3628800.))

let test_binomial_pmf_values () =
  Alcotest.(check bool) "pmf(2;4,0.5)" true
    (feq (Binomial.binomial_pmf ~n:4 ~p:0.5 2) 0.375);
  checkf "pmf p=0 at 0" 1. (Binomial.binomial_pmf ~n:4 ~p:0. 0);
  checkf "pmf p=1 at n" 1. (Binomial.binomial_pmf ~n:4 ~p:1. 4);
  checkf "pmf out of range" 0. (Binomial.binomial_pmf ~n:4 ~p:0.5 5)

let test_hypergeom_values () =
  (* Drawing 2 from 5 with 3 good: P(2 good) = C(3,2)C(2,0)/C(5,2) = 0.3 *)
  Alcotest.(check bool) "hyp(2;5,3,2)" true
    (feq (Binomial.hypergeom_pmf ~total:5 ~good:3 ~draws:2 2) 0.3);
  checkf "impossible draw" 0. (Binomial.hypergeom_pmf ~total:5 ~good:3 ~draws:2 3)

let test_stats () =
  checkf "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  checkf "variance" 1. (Stats.variance [| 1.; 2.; 3. |]);
  checkf "std" 1. (Stats.std [| 1.; 2.; 3. |]);
  checkf "covariance of identical" 1. (Stats.covariance [| 1.; 2.; 3. |] [| 1.; 2.; 3. |]);
  checkf "quantile median" 2. (Stats.quantile [| 3.; 1.; 2. |] 0.5);
  checkf "quantile max" 3. (Stats.quantile [| 3.; 1.; 2. |] 1.);
  checkf "rmse" 0. (Stats.rmse [| 1.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "rmse positive" true (Stats.rmse [| 1. |] [| 3. |] = 2.);
  checkf "chi2 uniform exact" 0. (Stats.chi_square_uniform [| 5; 5; 5; 5 |])

let test_normal_quantile () =
  let cases =
    [ (0.5, 0.); (0.975, 1.959964); (0.025, -1.959964); (0.999, 3.090232);
      (0.001, -3.090232); (0.8413447, 0.99999936) ]
  in
  List.iter
    (fun (p, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "q(%g) = %.6f" p expected)
        true
        (Float.abs (Stats.normal_quantile p -. expected) < 1e-4))
    cases;
  (* symmetry and monotonicity *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "symmetry" true
        (Float.abs (Stats.normal_quantile p +. Stats.normal_quantile (1. -. p)) < 1e-8))
    [ 0.01; 0.1; 0.3; 0.49 ];
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.normal_quantile: argument must be in (0,1)")
    (fun () -> ignore (Stats.normal_quantile 0.))

let suite =
  [
    Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
    Alcotest.test_case "vector algebra" `Quick test_vec_algebra;
    Alcotest.test_case "matrix basics" `Quick test_mat_basics;
    Alcotest.test_case "matrix product" `Quick test_mat_product;
    Alcotest.test_case "outer and diag" `Quick test_outer_diag;
    Alcotest.test_case "LU solve known system" `Quick test_lu_solve_known;
    Alcotest.test_case "LU determinant" `Quick test_lu_det;
    Alcotest.test_case "LU singular detection" `Quick test_lu_singular;
    Alcotest.test_case "LU inverse" `Quick test_lu_inverse;
    Alcotest.test_case "condition estimate" `Quick test_cond;
    Alcotest.test_case "binomial exact values" `Quick test_binomial_exact;
    Alcotest.test_case "binomial pmf values" `Quick test_binomial_pmf_values;
    Alcotest.test_case "hypergeometric values" `Quick test_hypergeom_values;
    Alcotest.test_case "summary statistics" `Quick test_stats;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
