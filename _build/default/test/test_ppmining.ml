(* End-to-end privacy-preserving mining tests: exactness under the identity
   operator, recovery of planted itemsets under real randomization, and the
   accuracy bookkeeping. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm_mining
open Ppdm

let identity_scheme universe = Randomizer.uniform ~universe ~p_keep:1. ~p_add:0.

let itemset_list result =
  List.map (fun d -> d.Ppmining.itemset) result.Ppmining.discovered

let test_identity_equals_apriori () =
  let rng = Rng.create ~seed:1 () in
  let params = { Quest.default with n_transactions = 800; universe = 60 } in
  let db = Quest.generate rng params in
  let scheme = identity_scheme 60 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let min_support = 0.04 in
  let truth = Apriori.mine db ~min_support in
  let mined = Ppmining.mine ~scheme ~data ~min_support () in
  Alcotest.(check (list string)) "same itemsets as Apriori"
    (List.map (fun (s, _) -> Itemset.to_string s) truth)
    (List.map Itemset.to_string (itemset_list mined));
  (* estimates equal the exact supports *)
  List.iter2
    (fun (s, c) d ->
      Alcotest.(check string) "aligned" (Itemset.to_string s)
        (Itemset.to_string d.Ppmining.itemset);
      Alcotest.(check (float 1e-9)) "support exact"
        (float_of_int c /. float_of_int (Db.length db))
        d.Ppmining.est_support)
    truth mined.Ppmining.discovered;
  let acc = Ppmining.accuracy_vs ~truth ~mined in
  Alcotest.(check int) "no false positives" 0 acc.Ppmining.false_positives;
  Alcotest.(check int) "no false drops" 0 acc.Ppmining.false_drops;
  Alcotest.(check int) "all found" (List.length truth) acc.Ppmining.true_positives

let test_planted_recovery_under_randomization () =
  let universe = 120 and size = 6 and count = 15_000 in
  let rng = Rng.create ~seed:2 () in
  let itemset = Itemset.of_list [ 4; 9 ] in
  let db = Simple.planted rng ~universe ~size ~count ~itemset ~support:0.25 in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:6 ~rho:0.03 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let mined = Ppmining.mine ~scheme ~data ~min_support:0.15 ~max_size:2 () in
  Alcotest.(check bool) "planted pair discovered" true
    (List.exists (fun s -> Itemset.equal s itemset) (itemset_list mined));
  (* its estimate should be near the truth *)
  let d =
    List.find (fun d -> Itemset.equal d.Ppmining.itemset itemset) mined.Ppmining.discovered
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 5 sigma of 0.25" d.Ppmining.est_support)
    true
    (Float.abs (d.Ppmining.est_support -. 0.25) < 5. *. d.Ppmining.sigma)

let test_max_size_respected () =
  let rng = Rng.create ~seed:3 () in
  let db = Quest.generate rng { Quest.default with n_transactions = 500; universe = 50 } in
  let scheme = identity_scheme 50 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let mined = Ppmining.mine ~scheme ~data ~min_support:0.02 ~max_size:1 () in
  List.iter
    (fun d -> Alcotest.(check int) "singletons only" 1 (Itemset.cardinal d.Ppmining.itemset))
    mined.Ppmining.discovered

let test_explored_superset () =
  let rng = Rng.create ~seed:4 () in
  let db = Quest.generate rng { Quest.default with n_transactions = 500; universe = 50 } in
  let scheme = Randomizer.cut_and_paste ~universe:50 ~cutoff:8 ~rho:0.05 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let mined = Ppmining.mine ~scheme ~data ~min_support:0.05 ~max_size:3 () in
  let explored = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace explored d.Ppmining.itemset ()) mined.Ppmining.explored;
  List.iter
    (fun d ->
      Alcotest.(check bool) "discovered is explored" true
        (Hashtbl.mem explored d.Ppmining.itemset))
    mined.Ppmining.discovered;
  Alcotest.(check bool) "explored at least as large" true
    (List.length mined.Ppmining.explored >= List.length mined.Ppmining.discovered)

let test_level_two_fast_path_consistency () =
  (* the one-pass pair estimator must agree exactly with the generic
     per-candidate estimator *)
  let rng = Rng.create ~seed:6 () in
  let universe = 40 in
  let db = Quest.generate rng { Quest.default with n_transactions = 600; universe } in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:6 ~rho:0.08 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let mined =
    Ppmining.mine ~scheme ~data ~min_support:0.03 ~max_size:2 ~sigma_cap:1. ()
  in
  let pairs =
    List.filter (fun d -> Itemset.cardinal d.Ppmining.itemset = 2) mined.Ppmining.explored
  in
  Alcotest.(check bool) "some pairs explored" true (pairs <> []);
  List.iter
    (fun d ->
      let direct = Estimator.estimate ~scheme ~data ~itemset:d.Ppmining.itemset in
      Alcotest.(check (float 1e-9))
        (Itemset.to_string d.Ppmining.itemset ^ " support")
        direct.Estimator.support d.Ppmining.est_support;
      Alcotest.(check (float 1e-9))
        (Itemset.to_string d.Ppmining.itemset ^ " sigma")
        direct.Estimator.sigma d.Ppmining.sigma)
    pairs

let test_sigma_cap_prunes () =
  (* with a tiny cap nothing noisy survives *)
  let rng = Rng.create ~seed:7 () in
  let universe = 40 in
  let db = Quest.generate rng { Quest.default with n_transactions = 300; universe } in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:3 ~rho:0.2 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let mined = Ppmining.mine ~scheme ~data ~min_support:0.05 ~max_size:2 ~sigma_cap:1e-9 () in
  Alcotest.(check int) "nothing explored under a zero cap" 0
    (List.length mined.Ppmining.explored)

let test_accuracy_bookkeeping () =
  let mk l = Itemset.of_list l in
  let truth = [ (mk [ 0 ], 10); (mk [ 1 ], 8); (mk [ 0; 1 ], 5) ] in
  let mined =
    {
      Ppmining.discovered =
        [
          { Ppmining.itemset = mk [ 0 ]; est_support = 0.5; sigma = 0.01 };
          { Ppmining.itemset = mk [ 2 ]; est_support = 0.4; sigma = 0.01 };
        ];
      explored = [];
    }
  in
  let acc = Ppmining.accuracy_vs ~truth ~mined in
  Alcotest.(check int) "tp" 1 acc.Ppmining.true_positives;
  Alcotest.(check int) "fp" 1 acc.Ppmining.false_positives;
  Alcotest.(check int) "drops" 2 acc.Ppmining.false_drops

let test_validation () =
  let scheme = identity_scheme 10 in
  Alcotest.check_raises "bad support"
    (Invalid_argument "Ppmining.mine: min_support out of (0,1]") (fun () ->
      ignore
        (Ppmining.mine ~scheme
           ~data:[| (1, Itemset.singleton 0) |]
           ~min_support:0. ()));
  Alcotest.check_raises "empty data"
    (Invalid_argument "Ppmining.mine: empty data") (fun () ->
      ignore (Ppmining.mine ~scheme ~data:[||] ~min_support:0.1 ()))

let suite =
  [
    Alcotest.test_case "identity equals apriori" `Quick test_identity_equals_apriori;
    Alcotest.test_case "planted recovery" `Slow test_planted_recovery_under_randomization;
    Alcotest.test_case "max size respected" `Quick test_max_size_respected;
    Alcotest.test_case "explored superset" `Quick test_explored_superset;
    Alcotest.test_case "level-2 fast path consistency" `Quick
      test_level_two_fast_path_consistency;
    Alcotest.test_case "sigma cap prunes" `Quick test_sigma_cap_prunes;
    Alcotest.test_case "accuracy bookkeeping" `Quick test_accuracy_bookkeeping;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
