(* Privacy-accountant tests: multiplicative composition, budget
   enforcement, and the composed posterior ceiling. *)

open Ppdm

let ok = function Ok () -> true | Error _ -> false

let test_composition () =
  let a = Accountant.create ~budget_gamma:100. in
  Alcotest.(check (float 1e-12)) "fresh ledger" 1. (Accountant.spent_gamma a);
  Alcotest.(check bool) "first release" true (ok (Accountant.charge a ~gamma:4. ~label:"q1"));
  Alcotest.(check bool) "second release" true (ok (Accountant.charge a ~gamma:5. ~label:"q2"));
  Alcotest.(check (float 1e-9)) "gammas multiply" 20. (Accountant.spent_gamma a);
  Alcotest.(check (float 1e-9)) "epsilons add" (log 4. +. log 5.)
    (Accountant.spent_epsilon a);
  Alcotest.(check (float 1e-9)) "remaining" 5. (Accountant.remaining_gamma a);
  Alcotest.(check (list (pair string (float 1e-12)))) "ledger order"
    [ ("q1", 4.); ("q2", 5.) ]
    (Accountant.releases a)

let test_budget_enforced () =
  let a = Accountant.create ~budget_gamma:10. in
  Alcotest.(check bool) "within budget" true (ok (Accountant.charge a ~gamma:9. ~label:"big"));
  Alcotest.(check bool) "would exceed" false (ok (Accountant.charge a ~gamma:2. ~label:"more"));
  (* a refused charge must not be recorded *)
  Alcotest.(check (float 1e-12)) "spent unchanged" 9. (Accountant.spent_gamma a);
  Alcotest.(check int) "one release" 1 (List.length (Accountant.releases a));
  (* but a small one still fits *)
  Alcotest.(check bool) "small one fits" true
    (ok (Accountant.charge a ~gamma:(10. /. 9.) ~label:"tiny"))

let test_invalid_releases () =
  let a = Accountant.create ~budget_gamma:10. in
  Alcotest.(check bool) "gamma < 1 refused" false (ok (Accountant.charge a ~gamma:0.5 ~label:"x"));
  Alcotest.(check bool) "infinite refused" false
    (ok (Accountant.charge a ~gamma:infinity ~label:"x"));
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Accountant.create: budget_gamma must be >= 1") (fun () ->
      ignore (Accountant.create ~budget_gamma:0.5))

let test_posterior_bound_composes () =
  let a = Accountant.create ~budget_gamma:100. in
  ignore (Accountant.charge a ~gamma:4. ~label:"q1");
  ignore (Accountant.charge a ~gamma:5. ~label:"q2");
  Alcotest.(check (float 1e-12)) "bound at composed gamma"
    (Amplification.posterior_upper_bound ~gamma:20. ~prior:0.05)
    (Accountant.posterior_bound a ~prior:0.05)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"spent never exceeds budget" ~count:200
      (list_of_size (Gen.int_range 0 20) (float_range 1. 5.))
      (fun gammas ->
        let a = Accountant.create ~budget_gamma:50. in
        List.iteri
          (fun i g -> ignore (Accountant.charge a ~gamma:g ~label:(string_of_int i)))
          gammas;
        Accountant.spent_gamma a <= 50. *. (1. +. 1e-9));
    Test.make ~name:"spent equals product of accepted releases" ~count:200
      (list_of_size (Gen.int_range 0 15) (float_range 1. 3.))
      (fun gammas ->
        let a = Accountant.create ~budget_gamma:1000. in
        List.iteri
          (fun i g -> ignore (Accountant.charge a ~gamma:g ~label:(string_of_int i)))
          gammas;
        let product =
          List.fold_left (fun acc (_, g) -> acc *. g) 1. (Accountant.releases a)
        in
        Float.abs (product -. Accountant.spent_gamma a)
        < 1e-9 *. Accountant.spent_gamma a);
  ]

let suite =
  [
    Alcotest.test_case "composition" `Quick test_composition;
    Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
    Alcotest.test_case "invalid releases" `Quick test_invalid_releases;
    Alcotest.test_case "posterior bound composes" `Quick test_posterior_bound_composes;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
