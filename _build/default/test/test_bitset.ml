(* Bitset tests: agreement with the sorted-array Itemset implementation on
   every operation (the two representations must be interchangeable). *)

open Ppdm_data

let of_l width l = Bitset.of_itemset ~width (Itemset.of_list l)

let test_roundtrip () =
  let s = Itemset.of_list [ 0; 7; 62; 63; 100 ] in
  let b = Bitset.of_itemset ~width:128 s in
  Alcotest.(check (list int)) "roundtrip" (Itemset.to_list s)
    (Itemset.to_list (Bitset.to_itemset b))

let test_word_boundaries () =
  (* items straddling the 62-bit word boundary *)
  let b = of_l 200 [ 60; 61; 62; 63; 123; 124; 199 ] in
  List.iter
    (fun i ->
      Alcotest.(check bool) (string_of_int i)
        (List.mem i [ 60; 61; 62; 63; 123; 124; 199 ])
        (Bitset.mem i b))
    [ 0; 59; 60; 61; 62; 63; 64; 122; 123; 124; 125; 198; 199 ];
  Alcotest.(check int) "cardinal" 7 (Bitset.cardinal b)

let test_add_remove () =
  let b = Bitset.create ~width:70 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  let b = Bitset.add 65 b in
  Alcotest.(check bool) "added" true (Bitset.mem 65 b);
  Alcotest.(check int) "one" 1 (Bitset.cardinal b);
  let b = Bitset.remove 65 b in
  Alcotest.(check bool) "removed" true (Bitset.is_empty b)

let test_validation () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Bitset.create: width must be positive") (fun () ->
      ignore (Bitset.create ~width:0));
  let b = Bitset.create ~width:10 in
  Alcotest.check_raises "out of width"
    (Invalid_argument "Bitset: item outside the width") (fun () ->
      ignore (Bitset.mem 10 b));
  Alcotest.check_raises "of_itemset out of width"
    (Invalid_argument "Bitset.of_itemset: item outside width") (fun () ->
      ignore (of_l 5 [ 7 ]));
  let other = Bitset.create ~width:11 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitset.union: width mismatch") (fun () ->
      ignore (Bitset.union b other))

let gen_items = QCheck.Gen.(list_size (int_range 0 40) (int_range 0 149))

let arb_items =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    gen_items

let qcheck_tests =
  let open QCheck in
  let width = 150 in
  let check2 name f_bit f_set =
    Test.make ~name ~count:300 (pair arb_items arb_items) (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        let ba = Bitset.of_itemset ~width sa and bb = Bitset.of_itemset ~width sb in
        Itemset.equal (Bitset.to_itemset (f_bit ba bb)) (f_set sa sb))
  in
  [
    check2 "union agrees with Itemset" Bitset.union Itemset.union;
    check2 "inter agrees with Itemset" Bitset.inter Itemset.inter;
    check2 "diff agrees with Itemset" Bitset.diff Itemset.diff;
    Test.make ~name:"cardinal agrees" ~count:300 arb_items (fun a ->
        let s = Itemset.of_list a in
        Bitset.cardinal (Bitset.of_itemset ~width s) = Itemset.cardinal s);
    Test.make ~name:"inter_cardinal agrees" ~count:300 (pair arb_items arb_items)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Bitset.inter_cardinal (Bitset.of_itemset ~width sa) (Bitset.of_itemset ~width sb)
        = Itemset.inter_size sa sb);
    Test.make ~name:"subset agrees" ~count:300 (pair arb_items arb_items)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Bitset.subset (Bitset.of_itemset ~width sa) (Bitset.of_itemset ~width sb)
        = Itemset.subset sa sb);
    Test.make ~name:"fold visits members in order" ~count:300 arb_items (fun a ->
        let s = Itemset.of_list a in
        let b = Bitset.of_itemset ~width s in
        List.rev (Bitset.fold (fun i acc -> i :: acc) b []) = Itemset.to_list s);
    Test.make ~name:"equal is structural" ~count:300 arb_items (fun a ->
        let s = Itemset.of_list a in
        Bitset.equal (Bitset.of_itemset ~width s) (Bitset.of_itemset ~width s));
  ]

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
    Alcotest.test_case "add and remove" `Quick test_add_remove;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
