(* Synthetic data generator tests: shape, determinism, and the exactness
   guarantees of the planted-support generator. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen

let test_fixed_size () =
  let rng = Rng.create ~seed:1 () in
  let db = Simple.fixed_size rng ~universe:50 ~size:7 ~count:200 in
  Alcotest.(check int) "count" 200 (Db.length db);
  Db.iter
    (fun tx -> Alcotest.(check int) "size" 7 (Itemset.cardinal tx))
    db;
  Alcotest.(check int) "universe" 50 (Db.universe db)

let test_fixed_size_validation () =
  let rng = Rng.create () in
  Alcotest.check_raises "size > universe"
    (Invalid_argument "Simple.fixed_size: bad size") (fun () ->
      ignore (Simple.fixed_size rng ~universe:5 ~size:6 ~count:1))

let test_fixed_size_marginals () =
  (* Every item should appear with frequency ~ size/universe. *)
  let rng = Rng.create ~seed:2 () in
  let db = Simple.fixed_size rng ~universe:20 ~size:5 ~count:4000 in
  let counts = Db.item_counts db in
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. 4000. in
      Alcotest.(check bool)
        (Printf.sprintf "item %d freq %.3f near 0.25" i freq)
        true
        (Float.abs (freq -. 0.25) < 0.03))
    counts

let test_zipf_clickstream () =
  let rng = Rng.create ~seed:3 () in
  let db =
    Simple.zipf_clickstream rng ~universe:200 ~exponent:1.1 ~avg_size:8. ~count:2000
  in
  Alcotest.(check int) "count" 2000 (Db.length db);
  Alcotest.(check bool) "avg size in range" true
    (Db.avg_size db > 5. && Db.avg_size db < 9.5);
  let counts = Db.item_counts db in
  Alcotest.(check bool) "head item dominates tail" true
    (counts.(0) > 5 * counts.(150))

let test_bernoulli_marginals () =
  let rng = Rng.create ~seed:14 () in
  let item_probs = [| 0.8; 0.05; 0.3; 0. |] in
  let db = Simple.bernoulli rng ~item_probs ~count:5000 in
  let counts = Db.item_counts db in
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. 5000. in
      Alcotest.(check bool)
        (Printf.sprintf "item %d freq %.3f near %.2f" i freq item_probs.(i))
        true
        (Float.abs (freq -. item_probs.(i)) < 0.02))
    counts;
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Simple.bernoulli: probability out of [0,1]") (fun () ->
      ignore (Simple.bernoulli rng ~item_probs:[| 1.2 |] ~count:1))

let test_planted_exact_support () =
  let rng = Rng.create ~seed:4 () in
  let itemset = Itemset.of_list [ 3; 7 ] in
  let db =
    Simple.planted rng ~universe:40 ~size:6 ~count:1000 ~itemset ~support:0.12
  in
  Alcotest.(check int) "exact planted count" 120 (Db.support_count db itemset);
  Db.iter (fun tx -> Alcotest.(check int) "size" 6 (Itemset.cardinal tx)) db

let test_planted_validation () =
  let rng = Rng.create () in
  Alcotest.check_raises "itemset too large"
    (Invalid_argument "Simple.planted: itemset larger than size") (fun () ->
      ignore
        (Simple.planted rng ~universe:10 ~size:1 ~count:1
           ~itemset:(Itemset.of_list [ 1; 2 ])
           ~support:0.5));
  Alcotest.check_raises "support out of range"
    (Invalid_argument "Simple.planted: support out of [0,1]") (fun () ->
      ignore
        (Simple.planted rng ~universe:10 ~size:2 ~count:1
           ~itemset:(Itemset.singleton 1) ~support:1.5))

let test_quest_shape () =
  let rng = Rng.create ~seed:5 () in
  let params = { Quest.default with n_transactions = 1000; universe = 300 } in
  let db = Quest.generate rng params in
  Alcotest.(check int) "count" 1000 (Db.length db);
  Alcotest.(check int) "universe" 300 (Db.universe db);
  let avg = Db.avg_size db in
  Alcotest.(check bool)
    (Printf.sprintf "avg size %.2f in (4, 14)" avg)
    true
    (avg > 4. && avg < 14.);
  Db.iter
    (fun tx ->
      Itemset.iter
        (fun x -> Alcotest.(check bool) "item in universe" true (x >= 0 && x < 300))
        tx)
    db

let test_quest_determinism () =
  let gen seed =
    Quest.generate (Rng.create ~seed ())
      { Quest.default with n_transactions = 100; universe = 100 }
  in
  let a = gen 9 and b = gen 9 and c = gen 10 in
  Alcotest.(check bool) "same seed same data" true
    (Array.for_all2 Itemset.equal (Db.transactions a) (Db.transactions b));
  Alcotest.(check bool) "different seed differs" true
    (not (Array.for_all2 Itemset.equal (Db.transactions a) (Db.transactions c)))

let test_quest_has_patterns () =
  (* Pattern-based generation must create correlated items: some pair
     should be far more frequent than independence predicts. *)
  let rng = Rng.create ~seed:6 () in
  let params =
    { Quest.default with n_transactions = 3000; universe = 200; n_patterns = 20 }
  in
  let db = Quest.generate rng params in
  let counts = Db.item_counts db in
  let n = float_of_int (Db.length db) in
  (* take the two most frequent items and check their joint support *)
  let top = Array.mapi (fun i c -> (c, i)) counts in
  Array.sort compare top;
  let _, a = top.(Array.length top - 1) and _, b = top.(Array.length top - 2) in
  let joint = Db.support db (Itemset.of_list [ a; b ]) in
  let independent = float_of_int counts.(a) /. n *. (float_of_int counts.(b) /. n) in
  Alcotest.(check bool)
    (Printf.sprintf "joint %.4f vs independent %.4f" joint independent)
    true
    (joint > independent)

let test_quest_validation () =
  let rng = Rng.create () in
  Alcotest.check_raises "bad correlation"
    (Invalid_argument "Quest: correlation out of [0,1]") (fun () ->
      ignore (Quest.generate rng { Quest.default with correlation = 2. }));
  Alcotest.check_raises "bad universe"
    (Invalid_argument "Quest: universe must be positive") (fun () ->
      ignore (Quest.generate rng { Quest.default with universe = 0 }))

let suite =
  [
    Alcotest.test_case "fixed_size shape" `Quick test_fixed_size;
    Alcotest.test_case "fixed_size validation" `Quick test_fixed_size_validation;
    Alcotest.test_case "fixed_size marginals" `Quick test_fixed_size_marginals;
    Alcotest.test_case "zipf clickstream" `Quick test_zipf_clickstream;
    Alcotest.test_case "bernoulli marginals" `Quick test_bernoulli_marginals;
    Alcotest.test_case "planted exact support" `Quick test_planted_exact_support;
    Alcotest.test_case "planted validation" `Quick test_planted_validation;
    Alcotest.test_case "quest shape" `Quick test_quest_shape;
    Alcotest.test_case "quest determinism" `Quick test_quest_determinism;
    Alcotest.test_case "quest correlation" `Quick test_quest_has_patterns;
    Alcotest.test_case "quest validation" `Quick test_quest_validation;
  ]
