test/test_randomizer.ml: Alcotest Array Binomial Db Float Hashtbl Itemset List Option Ppdm Ppdm_data Ppdm_datagen Ppdm_linalg Ppdm_prng Printf QCheck QCheck_alcotest Randomizer Rng Stats String Test
