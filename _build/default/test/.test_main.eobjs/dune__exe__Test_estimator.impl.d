test/test_estimator.ml: Alcotest Array Db Estimator Float Itemset List Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_linalg Ppdm_prng Printf Randomizer Rng Simple
