test/test_ppmining.ml: Alcotest Apriori Db Estimator Float Hashtbl Itemset List Ppdm Ppdm_data Ppdm_datagen Ppdm_mining Ppdm_prng Ppmining Printf Quest Randomizer Rng Simple
