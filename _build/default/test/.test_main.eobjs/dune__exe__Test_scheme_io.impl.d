test/test_scheme_io.ml: Alcotest Array Db Estimator Filename Fun Itemset List Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf Randomizer Rng Scheme_io String Sys
