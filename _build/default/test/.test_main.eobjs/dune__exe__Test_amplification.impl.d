test/test_amplification.ml: Alcotest Amplification Array Binomial Breach Estimator Float Gen List Ppdm Ppdm_linalg Printf QCheck QCheck_alcotest Randomizer Test
