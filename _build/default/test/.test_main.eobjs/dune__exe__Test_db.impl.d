test/test_db.ml: Alcotest Array Db Filename Float Fun Gen Io Itemset List Ppdm_data Printf QCheck QCheck_alcotest Sys Test
