test/test_channel.ml: Alcotest Amplification Array Channel Dist Float Gen List Mat Ppdm Ppdm_linalg Ppdm_prng Printf QCheck QCheck_alcotest Rng Test Transition Vec
