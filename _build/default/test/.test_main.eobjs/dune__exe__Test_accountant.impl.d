test/test_accountant.ml: Accountant Alcotest Amplification Float Gen List Ppdm QCheck QCheck_alcotest Test
