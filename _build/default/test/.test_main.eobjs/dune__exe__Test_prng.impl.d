test/test_prng.ml: Alcotest Array Dist Float Fun Hashtbl List Option Ppdm_linalg Ppdm_prng Printf QCheck QCheck_alcotest Rng Seq Stats Test
