test/test_itemset.ml: Alcotest Int Itemset List Ppdm_data QCheck QCheck_alcotest Set String Test
