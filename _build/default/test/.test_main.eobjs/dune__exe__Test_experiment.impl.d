test/test_experiment.ml: Alcotest Amplification Experiment Float Hashtbl List Option Ppdm Printf
