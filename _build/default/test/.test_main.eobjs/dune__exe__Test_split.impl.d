test/test_split.ml: Alcotest Array Binning Dist Gen List Perturb Ppdm_numeric Ppdm_prng Printf QCheck QCheck_alcotest Rng Split Test
