test/test_ldp.ml: Alcotest Amplification Breach Estimator Float Itemset Ldp List Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf QCheck QCheck_alcotest Randomizer Rng Test
