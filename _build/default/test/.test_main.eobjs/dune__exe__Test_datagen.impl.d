test/test_datagen.ml: Alcotest Array Db Float Itemset Ppdm_data Ppdm_datagen Ppdm_prng Printf Quest Rng Simple
