test/test_stream.ml: Alcotest Array Estimator Float Itemset List Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf QCheck QCheck_alcotest Randomizer Rng Simple Stream Test
