test/test_linalg.ml: Alcotest Array Binomial Float Format List Lu Mat Ppdm_linalg Printf QCheck QCheck_alcotest Stats Test Vec
