test/test_fuzz.ml: Alcotest Array Char Db Filename Fun Io Itemset List Ppdm Ppdm_data Printf QCheck QCheck_alcotest Randomizer Scheme_io String Sys Test
