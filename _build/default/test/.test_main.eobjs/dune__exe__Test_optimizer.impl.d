test/test_optimizer.ml: Alcotest Amplification Array Breach Estimator Float List Optimizer Ppdm Ppdm_linalg Printf QCheck QCheck_alcotest Randomizer Test
