test/test_mining.ml: Alcotest Apriori Array Count Db Eclat Float Fptree Fun Hashtbl Itemset List Ppdm_data Ppdm_mining Printf QCheck QCheck_alcotest Rules String Test
