test/test_summarize.ml: Alcotest Apriori Array Db Gen Hashtbl Itemset List Ppdm_data Ppdm_mining Printf QCheck QCheck_alcotest String Summarize Test
