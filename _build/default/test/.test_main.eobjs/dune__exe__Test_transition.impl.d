test/test_transition.ml: Alcotest Array Breach Float Fun Gen Itemset List Mat Ppdm Ppdm_data Ppdm_linalg Ppdm_prng Printf QCheck QCheck_alcotest Randomizer Rng Test Transition
