test/test_bitset.ml: Alcotest Bitset Itemset List Ppdm_data QCheck QCheck_alcotest String Test
