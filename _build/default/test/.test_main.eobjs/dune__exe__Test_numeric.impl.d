test/test_numeric.ml: Alcotest Amplification Array Binning Dist Float List Perturb Ppdm Ppdm_numeric Ppdm_prng Printf QCheck QCheck_alcotest Rng Test
