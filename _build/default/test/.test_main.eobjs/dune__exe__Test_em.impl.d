test/test_em.ml: Alcotest Array Db Em Estimator Float Itemset List Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf QCheck QCheck_alcotest Randomizer Rng Simple Test
