test/test_breach.ml: Alcotest Amplification Array Breach Db Float Itemset List Optimizer Ppdm Ppdm_data Ppdm_datagen Ppdm_prng Printf Randomizer Rng Simple
