(* Distribution-dependent breach analysis: hand-checked posteriors, and
   empirical posteriors on randomized data matching the analytic ones. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let test_keep_probability () =
  let r : Randomizer.resolved = { keep_dist = [| 0.2; 0.3; 0.5 |]; rho = 0.1 } in
  Alcotest.(check (float 1e-12)) "weighted mean / m"
    (((0.3 *. 1.) +. (0.5 *. 2.)) /. 2.)
    (Breach.keep_probability r);
  (* binomial keep dist recovers p_keep *)
  let u = Randomizer.resolve (Randomizer.uniform ~universe:50 ~p_keep:0.37 ~p_add:0.1) ~size:7 in
  Alcotest.(check (float 1e-9)) "uniform keep prob" 0.37 (Breach.keep_probability u);
  let empty : Randomizer.resolved = { keep_dist = [| 1. |]; rho = 0.1 } in
  Alcotest.(check (float 1e-12)) "empty transaction" 1. (Breach.keep_probability empty)

let test_item_posteriors_by_hand () =
  (* q_in = 0.5, rho = 0.1, prior = 0.2:
     present: 0.2*0.5 / (0.2*0.5 + 0.8*0.1) = 0.1/0.18
     absent:  0.2*0.5 / (0.2*0.5 + 0.8*0.9) = 0.1/0.82 *)
  let r : Randomizer.resolved = { keep_dist = [| 0.5; 0.; 1. /. 2. |]; rho = 0.1 } in
  Alcotest.(check (float 1e-12)) "q_in" 0.5 (Breach.keep_probability r);
  Alcotest.(check (float 1e-12)) "present" (0.1 /. 0.18)
    (Breach.item_posterior_present r ~prior:0.2);
  Alcotest.(check (float 1e-12)) "absent" (0.1 /. 0.82)
    (Breach.item_posterior_absent r ~prior:0.2);
  Alcotest.(check (float 1e-12)) "worst is max" (0.1 /. 0.18)
    (Breach.worst_item_posterior r ~prior:0.2)

let test_degenerate_priors () =
  let r : Randomizer.resolved = { keep_dist = [| 0.5; 0.5 |]; rho = 0.2 } in
  Alcotest.(check (float 1e-12)) "prior 0 stays 0" 0.
    (Breach.worst_item_posterior r ~prior:0.);
  Alcotest.(check (float 1e-12)) "prior 1 stays 1" 1.
    (Breach.item_posterior_present r ~prior:1.);
  Alcotest.check_raises "prior out of range" (Invalid_argument "Breach: prior out of [0,1]")
    (fun () -> ignore (Breach.item_posterior_present r ~prior:1.5))

let test_itemset_posterior_identity () =
  (* identity operator: seeing A in the output proves A was in the input *)
  let r : Randomizer.resolved = { keep_dist = [| 0.; 0.; 1. |]; rho = 0. } in
  let post = Breach.itemset_posterior r ~partials:[| 0.5; 0.3; 0.2 |] in
  Alcotest.(check (float 1e-12)) "certainty" 1. post

let test_itemset_posterior_uninformative () =
  (* gamma = 1 operator: posterior equals the prior *)
  let rho = 0.25 in
  let dist = Optimizer.keep_dist ~m:3 ~rho ~gamma:1. Optimizer.Max_kept in
  let r : Randomizer.resolved = { keep_dist = dist; rho } in
  let partials = [| 0.4; 0.3; 0.2; 0.1 |] in
  let post = Breach.itemset_posterior r ~partials in
  Alcotest.(check (float 1e-9)) "posterior = prior" 0.1 post

let test_empirical_matches_analytic () =
  let universe = 80 and size = 6 in
  let rng = Rng.create ~seed:5 () in
  let db = Simple.fixed_size rng ~universe ~size ~count:30_000 in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:6 ~rho:0.1 in
  let randomized = Randomizer.apply_db scheme rng db in
  let r = Randomizer.resolve scheme ~size in
  let prior = float_of_int size /. float_of_int universe in
  let expected_present = Breach.item_posterior_present r ~prior in
  let expected_absent = Breach.item_posterior_absent r ~prior in
  (* average the empirical posteriors over a few items to cut noise *)
  let items = [ 0; 7; 19; 33; 54 ] in
  let got_present, got_absent =
    List.fold_left
      (fun (ap, ab) item ->
        let p, a = Breach.empirical_item_posteriors ~original:db ~randomized ~item in
        (ap +. p, ab +. a))
      (0., 0.) items
  in
  let got_present = got_present /. 5. and got_absent = got_absent /. 5. in
  Alcotest.(check bool)
    (Printf.sprintf "present %.4f near %.4f" got_present expected_present)
    true
    (Float.abs (got_present -. expected_present) < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "absent %.4f near %.4f" got_absent expected_absent)
    true
    (Float.abs (got_absent -. expected_absent) < 0.01)

let test_empirical_worst_below_amplification_bound () =
  (* F5 in miniature: a gamma-certified operator never shows an empirical
     posterior above the theorem's ceiling *)
  let universe = 60 and size = 5 in
  let rng = Rng.create ~seed:6 () in
  let db = Simple.fixed_size rng ~universe ~size ~count:10_000 in
  let d = Optimizer.design ~m:size ~gamma:19. Optimizer.Max_kept in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:d.Optimizer.dist
      ~rho:d.Optimizer.rho
  in
  let randomized = Randomizer.apply_db scheme rng db in
  let prior = float_of_int size /. float_of_int universe in
  let bound = Amplification.posterior_upper_bound ~gamma:d.Optimizer.gamma ~prior in
  let worst = Breach.empirical_worst_item_posterior ~original:db ~randomized in
  (* allow a little sampling noise above the analytic ceiling *)
  Alcotest.(check bool)
    (Printf.sprintf "worst %.4f <= bound %.4f (+noise)" worst bound)
    true
    (worst <= bound +. 0.05)

let test_bernoulli_model_exactness () =
  (* Simple.bernoulli IS the independent-item model, so the analytic
     posterior should match the empirical one tightly for a fixed-size
     operator applied to same-size transactions.  Use a two-probability
     profile and condition on the transactions of the operator's size. *)
  let universe = 30 in
  let rng = Rng.create ~seed:9 () in
  let item_probs = Array.make universe 0.2 in
  let db_all = Simple.bernoulli rng ~item_probs ~count:60_000 in
  (* keep only size-6 transactions so one resolved operator applies *)
  let db = Db.filter (fun t -> Itemset.cardinal t = 6) db_all in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:6 ~rho:0.1 in
  let randomized = Randomizer.apply_db scheme rng db in
  let r = Randomizer.resolve scheme ~size:6 in
  (* conditional prior of an item given |t| = 6 (hypergeometric-free: by
     exchangeability it is 6/30 with all probs equal) *)
  let prior = 6. /. 30. in
  let expected = Breach.item_posterior_present r ~prior in
  let posteriors =
    List.map
      (fun item ->
        fst (Breach.empirical_item_posteriors ~original:db ~randomized ~item))
      [ 0; 7; 14; 21; 29 ]
  in
  let mean = List.fold_left ( +. ) 0. posteriors /. 5. in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f near analytic %.4f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.03)

let test_length_mismatch () =
  let a = Db.create ~universe:5 [| Itemset.singleton 0 |] in
  let b = Db.create ~universe:5 [| Itemset.singleton 0; Itemset.singleton 1 |] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Breach.empirical_item_posteriors: database length mismatch")
    (fun () -> ignore (Breach.empirical_item_posteriors ~original:a ~randomized:b ~item:0))

let suite =
  [
    Alcotest.test_case "keep probability" `Quick test_keep_probability;
    Alcotest.test_case "item posteriors by hand" `Quick test_item_posteriors_by_hand;
    Alcotest.test_case "degenerate priors" `Quick test_degenerate_priors;
    Alcotest.test_case "itemset posterior: identity" `Quick test_itemset_posterior_identity;
    Alcotest.test_case "itemset posterior: uninformative" `Quick
      test_itemset_posterior_uninformative;
    Alcotest.test_case "empirical matches analytic" `Slow test_empirical_matches_analytic;
    Alcotest.test_case "empirical worst below bound" `Slow
      test_empirical_worst_below_amplification_bound;
    Alcotest.test_case "bernoulli model exactness" `Slow test_bernoulli_model_exactness;
    Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
  ]
