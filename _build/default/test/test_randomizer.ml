(* Randomization-operator tests: exact degenerate behaviours, induced keep
   distributions, and Monte-Carlo agreement of per-transaction transition
   probabilities with the closed form
   p(t -> y) = p_a / C(m,a) * rho^(s-a) * (1-rho)^(n-m-s+a),  a = |t ∩ y|. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_linalg
open Ppdm

let fixed_db rng ~universe ~size ~count =
  Ppdm_datagen.Simple.fixed_size rng ~universe ~size ~count

let test_identity_operator () =
  let rng = Rng.create ~seed:1 () in
  let scheme = Randomizer.uniform ~universe:30 ~p_keep:1. ~p_add:0. in
  let db = fixed_db rng ~universe:30 ~size:5 ~count:50 in
  let out = Randomizer.apply_db scheme rng db in
  Db.iteri
    (fun i tx -> Alcotest.(check bool) "unchanged" true (Itemset.equal tx (Db.get out i)))
    db

let test_erasing_operator () =
  let rng = Rng.create ~seed:2 () in
  let scheme = Randomizer.uniform ~universe:30 ~p_keep:0. ~p_add:0. in
  let tx = Itemset.of_list [ 1; 5; 9 ] in
  Alcotest.(check bool) "empty output" true
    (Itemset.is_empty (Randomizer.apply scheme rng tx))

let test_complementing_operator () =
  let rng = Rng.create ~seed:3 () in
  let scheme = Randomizer.uniform ~universe:10 ~p_keep:0. ~p_add:1. in
  let tx = Itemset.of_list [ 2; 7 ] in
  let out = Randomizer.apply scheme rng tx in
  Alcotest.(check (list int)) "exact complement" [ 0; 1; 3; 4; 5; 6; 8; 9 ]
    (Itemset.to_list out)

let test_output_in_universe () =
  let rng = Rng.create ~seed:4 () in
  let scheme = Randomizer.cut_and_paste ~universe:25 ~cutoff:3 ~rho:0.2 in
  let db = fixed_db rng ~universe:25 ~size:6 ~count:100 in
  let out = Randomizer.apply_db scheme rng db in
  Db.iter
    (fun tx ->
      Itemset.iter
        (fun x -> Alcotest.(check bool) "in universe" true (x >= 0 && x < 25))
        tx)
    out

let test_uniform_induced_dist () =
  let scheme = Randomizer.uniform ~universe:100 ~p_keep:0.3 ~p_add:0.05 in
  let r = Randomizer.resolve scheme ~size:4 in
  Alcotest.(check int) "length" 5 (Array.length r.keep_dist);
  Array.iteri
    (fun j p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "binomial pmf at %d" j)
        (Binomial.binomial_pmf ~n:4 ~p:0.3 j)
        p)
    r.keep_dist;
  Alcotest.(check (float 1e-12)) "rho" 0.05 r.rho;
  Alcotest.(check (float 1e-12)) "expected kept = p_keep" 0.3
    (Randomizer.expected_kept_fraction scheme ~size:4)

let test_cut_and_paste_dist_clipped () =
  (* m = 3 < K = 5: j = min(U{0..5}, 3) puts mass (5-3+1)/6 = 3/6 on j=3 *)
  let scheme = Randomizer.cut_and_paste ~universe:100 ~cutoff:5 ~rho:0.1 in
  let r = Randomizer.resolve scheme ~size:3 in
  Alcotest.(check (array (float 1e-12))) "clipped tail"
    [| 1. /. 6.; 1. /. 6.; 1. /. 6.; 0.5 |]
    r.keep_dist

let test_cut_and_paste_dist_unclipped () =
  (* m = 6 > K = 2: uniform over {0,1,2}, zero above *)
  let scheme = Randomizer.cut_and_paste ~universe:100 ~cutoff:2 ~rho:0.1 in
  let r = Randomizer.resolve scheme ~size:6 in
  let third = 1. /. 3. in
  Alcotest.(check (array (float 1e-12))) "uniform head"
    [| third; third; third; 0.; 0.; 0.; 0. |]
    r.keep_dist

let test_select_a_size_validation () =
  let mk keep_dist =
    Randomizer.select_a_size ~universe:50 ~size:2 ~keep_dist ~rho:0.1
  in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Randomizer: keep_dist length must be size + 1")
    (fun () -> ignore (mk [| 1. |]));
  Alcotest.check_raises "negative entry"
    (Invalid_argument "Randomizer: negative keep probability") (fun () ->
      ignore (mk [| 0.5; 0.6; -0.1 |]));
  Alcotest.check_raises "not normalized"
    (Invalid_argument "Randomizer: keep_dist must sum to 1") (fun () ->
      ignore (mk [| 0.5; 0.6; 0.2 |]));
  let scheme = mk [| 0.2; 0.3; 0.5 |] in
  let rng = Rng.create () in
  Alcotest.(check bool) "applies to its size" true
    (Itemset.cardinal (Randomizer.apply scheme rng (Itemset.of_list [ 1; 2 ])) >= 0);
  Alcotest.(check bool) "rejects other sizes" true
    (match Randomizer.apply scheme rng (Itemset.of_list [ 1; 2; 3 ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_empty_transaction () =
  let rng = Rng.create ~seed:5 () in
  let scheme = Randomizer.cut_and_paste ~universe:20 ~cutoff:3 ~rho:0.25 in
  (* noise still applies to the empty transaction *)
  let sizes =
    Array.init 400 (fun _ ->
        Itemset.cardinal (Randomizer.apply scheme rng Itemset.empty))
  in
  let mean = Stats.mean (Array.map float_of_int sizes) in
  Alcotest.(check bool)
    (Printf.sprintf "noise mean %.2f near 5" mean)
    true
    (Float.abs (mean -. 5.) < 0.6)

let test_kept_fraction_statistics () =
  let rng = Rng.create ~seed:6 () in
  let scheme = Randomizer.cut_and_paste ~universe:200 ~cutoff:4 ~rho:0.02 in
  let m = 8 in
  let expected = Randomizer.expected_kept_fraction scheme ~size:m in
  let db = fixed_db rng ~universe:200 ~size:m ~count:3000 in
  let acc = ref 0 in
  Db.iter
    (fun tx ->
      let out = Randomizer.apply scheme rng tx in
      acc := !acc + Itemset.inter_size tx out)
    db;
  let observed = float_of_int !acc /. float_of_int (3000 * m) in
  Alcotest.(check bool)
    (Printf.sprintf "kept %.3f near %.3f" observed expected)
    true
    (Float.abs (observed -. expected) < 0.02)

let test_noise_rate_statistics () =
  let rng = Rng.create ~seed:7 () in
  let universe = 120 and m = 6 and rho = 0.08 in
  let scheme =
    Randomizer.select_a_size ~universe ~size:m
      ~keep_dist:[| 0.1; 0.1; 0.1; 0.1; 0.2; 0.2; 0.2 |]
      ~rho
  in
  let db = fixed_db rng ~universe ~size:m ~count:3000 in
  let acc = ref 0 in
  Db.iter
    (fun tx ->
      let out = Randomizer.apply scheme rng tx in
      acc := !acc + Itemset.cardinal (Itemset.diff out tx))
    db;
  let observed = float_of_int !acc /. float_of_int (3000 * (universe - m)) in
  Alcotest.(check bool)
    (Printf.sprintf "noise rate %.4f near %.4f" observed rho)
    true
    (Float.abs (observed -. rho) < 0.005)

(* Monte-Carlo check of the closed-form transition probability on a tiny
   universe: randomize one transaction many times and compare the
   frequency of each concrete output set with the formula. *)
let test_transition_probability_formula () =
  let universe = 6 and m = 2 and rho = 0.3 in
  let keep_dist = [| 0.25; 0.35; 0.4 |] in
  let scheme = Randomizer.select_a_size ~universe ~size:m ~keep_dist ~rho in
  let tx = Itemset.of_list [ 1; 4 ] in
  let trials = 200_000 in
  let rng = Rng.create ~seed:8 () in
  let counts = Hashtbl.create 64 in
  for _ = 1 to trials do
    let y = Itemset.to_list (Randomizer.apply scheme rng tx) in
    Hashtbl.replace counts y (1 + Option.value ~default:0 (Hashtbl.find_opt counts y))
  done;
  let closed_form y =
    let ys = Itemset.of_list y in
    let a = Itemset.inter_size tx ys and s = Itemset.cardinal ys in
    keep_dist.(a)
    /. Binomial.choose m a
    *. Float.pow rho (float_of_int (s - a))
    *. Float.pow (1. -. rho) (float_of_int (universe - m - s + a))
  in
  (* check a spread of outputs, including rare ones *)
  let outputs =
    [ []; [ 1 ]; [ 4 ]; [ 0 ]; [ 1; 4 ]; [ 1; 0 ]; [ 0; 2; 3; 5 ]; [ 1; 4; 0 ] ]
  in
  List.iter
    (fun y ->
      let y = List.sort compare y in
      let expected = closed_form y in
      let got =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts y))
        /. float_of_int trials
      in
      let slack = 4. *. sqrt (expected /. float_of_int trials) +. 1e-4 in
      Alcotest.(check bool)
        (Printf.sprintf "p(y=%s): %.5f near %.5f"
           (String.concat "," (List.map string_of_int y))
           got expected)
        true
        (Float.abs (got -. expected) < slack))
    outputs;
  (* and the whole distribution sums correctly over observed outputs *)
  let mass =
    Hashtbl.fold (fun y _ acc -> acc +. closed_form y) counts 0.
  in
  Alcotest.(check bool) "observed outputs carry most closed-form mass" true (mass > 0.99)

let test_determinism () =
  let db = fixed_db (Rng.create ~seed:10 ()) ~universe:50 ~size:6 ~count:200 in
  let run () =
    let scheme = Randomizer.cut_and_paste ~universe:50 ~cutoff:4 ~rho:0.1 in
    Randomizer.apply_db scheme (Rng.create ~seed:99 ()) db
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same outputs" true
    (Array.for_all2 Itemset.equal (Db.transactions a) (Db.transactions b))

let test_apply_db_tagged () =
  let rng = Rng.create ~seed:9 () in
  let scheme = Randomizer.cut_and_paste ~universe:30 ~cutoff:2 ~rho:0.1 in
  let db =
    Db.create ~universe:30
      (Array.of_list (List.map Itemset.of_list [ [ 1; 2; 3 ]; [ 4 ]; []; [ 5; 6 ] ]))
  in
  let tagged = Randomizer.apply_db_tagged scheme rng db in
  Alcotest.(check (list int)) "original sizes preserved" [ 3; 1; 0; 2 ]
    (Array.to_list (Array.map fst tagged))

let test_universe_mismatch () =
  let rng = Rng.create () in
  let scheme = Randomizer.uniform ~universe:10 ~p_keep:0.5 ~p_add:0.1 in
  let db = Db.create ~universe:20 [| Itemset.singleton 1 |] in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Randomizer.apply_db: universe mismatch") (fun () ->
      ignore (Randomizer.apply_db scheme rng db))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"output items always inside the universe" ~count:200
      (triple small_int (int_range 0 8) (float_range 0.01 0.5))
      (fun (seed, m, rho) ->
        let rng = Rng.create ~seed () in
        let universe = 30 in
        let scheme = Randomizer.cut_and_paste ~universe ~cutoff:3 ~rho in
        let tx =
          Itemset.of_sorted_array_unchecked
            (Ppdm_prng.Dist.sample_distinct rng ~k:m ~bound:universe)
        in
        let out = Randomizer.apply scheme rng tx in
        List.for_all (fun x -> x >= 0 && x < universe) (Itemset.to_list out));
    Test.make ~name:"kept items are a subset of the input" ~count:200
      (pair small_int (int_range 1 8)) (fun (seed, m) ->
        let rng = Rng.create ~seed () in
        let universe = 30 in
        (* rho = 0 means output ⊆ input *)
        let scheme =
          Randomizer.per_size ~universe ~name:"test" (fun size ->
              {
                Randomizer.keep_dist =
                  Array.init (size + 1) (fun j -> if j = size / 2 then 1. else 0.);
                rho = 0.;
              })
        in
        let tx =
          Itemset.of_sorted_array_unchecked
            (Ppdm_prng.Dist.sample_distinct rng ~k:m ~bound:universe)
        in
        let out = Randomizer.apply scheme rng tx in
        Itemset.subset out tx && Itemset.cardinal out = m / 2);
  ]

let suite =
  [
    Alcotest.test_case "identity operator" `Quick test_identity_operator;
    Alcotest.test_case "erasing operator" `Quick test_erasing_operator;
    Alcotest.test_case "complementing operator" `Quick test_complementing_operator;
    Alcotest.test_case "output stays in universe" `Quick test_output_in_universe;
    Alcotest.test_case "uniform induced keep dist" `Quick test_uniform_induced_dist;
    Alcotest.test_case "cut-and-paste clipped dist" `Quick test_cut_and_paste_dist_clipped;
    Alcotest.test_case "cut-and-paste unclipped dist" `Quick test_cut_and_paste_dist_unclipped;
    Alcotest.test_case "select-a-size validation" `Quick test_select_a_size_validation;
    Alcotest.test_case "empty transaction noise" `Quick test_empty_transaction;
    Alcotest.test_case "kept-fraction statistics" `Quick test_kept_fraction_statistics;
    Alcotest.test_case "noise-rate statistics" `Quick test_noise_rate_statistics;
    Alcotest.test_case "transition probability formula" `Slow test_transition_probability_formula;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "tagged application" `Quick test_apply_db_tagged;
    Alcotest.test_case "universe mismatch" `Quick test_universe_mismatch;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
