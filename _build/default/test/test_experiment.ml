(* Smoke tests for the experiment harness: each driver runs on scaled-down
   inputs and its output satisfies the qualitative shape claims recorded
   in EXPERIMENTS.md (monotonicities, no bound violations).  These keep
   the bench reproducible as the library evolves. *)

open Ppdm

let test_t1_shape () =
  let rows = Experiment.t1_breach_limits () in
  Alcotest.(check bool) "non-empty" true (rows <> []);
  List.iter
    (fun (r : Experiment.t1_row) ->
      Alcotest.(check (float 1e-9)) "closed form" r.gamma_limit
        (Amplification.gamma_breach_limit ~rho1:r.rho1 ~rho2:r.rho2);
      Alcotest.(check bool) "gamma > 1" true (r.gamma_limit > 1.))
    rows;
  (* the paper's anchor value *)
  let anchor =
    List.find (fun (r : Experiment.t1_row) -> r.rho1 = 0.05 && r.rho2 = 0.5) rows
  in
  Alcotest.(check (float 1e-9)) "5% -> 50% is 19" 19. anchor.Experiment.gamma_limit

let test_t2_shape () =
  let rows = Experiment.t2_cut_and_paste () in
  List.iter
    (fun (r : Experiment.t2_row) ->
      (* K below the transaction size leaves zero keep mass somewhere:
         no finite amplification *)
      if r.cutoff < r.size then
        Alcotest.(check (float 0.))
          (Printf.sprintf "K=%d < m=%d is uncertifiable" r.cutoff r.size)
          infinity r.gamma;
      Alcotest.(check bool) "posterior is a probability" true
        (r.worst_posterior >= 0. && r.worst_posterior <= 1.))
    rows

let test_f2_monotone () =
  let rows = Experiment.f2_discoverable_vs_gamma () in
  (* within each (size, k), discoverable support must not increase in gamma *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (p : Experiment.f2_point) ->
      let key = (p.size, p.k) in
      Hashtbl.replace groups key
        (p :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    rows;
  Hashtbl.iter
    (fun (size, k) points ->
      let sorted =
        List.sort
          (fun (a : Experiment.f2_point) b -> Float.compare a.gamma b.gamma)
          points
      in
      let rec check = function
        | (a : Experiment.f2_point) :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "m=%d k=%d: %.5f@%.0f >= %.5f@%.0f" size k
                 a.discoverable a.gamma b.discoverable b.gamma)
              true
              (a.discoverable >= b.discoverable -. 1e-9);
            check rest
        | _ -> ()
      in
      check sorted)
    groups

let test_f3_calibration_small () =
  let rows = Experiment.f3_sigma_validation ~trials:6 ~count:3000 () in
  List.iter
    (fun (r : Experiment.f3_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: mean %.4f within noise of %.4f" r.k
           r.mean_estimate r.support)
        true
        (Float.abs (r.mean_estimate -. r.support)
        < 5. *. r.predicted_sigma /. sqrt (float_of_int r.trials) *. 3.);
      Alcotest.(check bool) "predicted sigma positive" true (r.predicted_sigma > 0.))
    rows

let test_f5_no_violation () =
  List.iter
    (fun (p : Experiment.f5_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "prior %.3f: empirical %.4f <= ceiling %.4f" p.prior
           p.empirical_posterior p.bound)
        true
        (p.empirical_posterior <= p.bound +. 0.06);
      Alcotest.(check bool) "analytic below ceiling" true
        (p.analytic_posterior <= p.bound +. 1e-9))
    (Experiment.f5_bound_validation ~count:2000 ())

let test_a1_sas_wins () =
  let rows = Experiment.a1_rr_comparison () in
  List.iter
    (fun (r : Experiment.a1_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "m=%d gamma=%.0f: sas %.5f <= rr %.5f" r.size r.gamma
           r.sas_sigma_k2 r.rr_sigma_k2)
        true
        (* the optimized design can never be worse than RR at the same
           budget: RR's induced operator is inside the feasible set *)
        (r.sas_sigma_k2 <= r.rr_sigma_k2 *. 1.02))
    rows

let test_f4_small () =
  let rows = Experiment.f4_mining_accuracy ~count:1500 () in
  List.iter
    (fun (r : Experiment.f4_row) ->
      Alcotest.(check bool) "counts consistent" true
        (r.true_positives + r.false_drops = r.true_frequent
        && r.true_positives >= 0 && r.false_positives >= 0))
    rows

let test_a2_small () =
  let rows = Experiment.a2_slack_ablation ~count:1500 () in
  (* exploration grows with slack *)
  let rec check = function
    | (a : Experiment.a2_row) :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "explored %d@%.1f <= %d@%.1f" a.explored a.sigma_slack
             b.explored b.sigma_slack)
          true
          (a.explored <= b.explored);
        check rest
    | _ -> ()
  in
  check rows

let suite =
  [
    Alcotest.test_case "T1 shape" `Quick test_t1_shape;
    Alcotest.test_case "T2 shape" `Quick test_t2_shape;
    Alcotest.test_case "F2 monotone in gamma" `Slow test_f2_monotone;
    Alcotest.test_case "F3 calibration (small)" `Slow test_f3_calibration_small;
    Alcotest.test_case "F5 no violation (small)" `Slow test_f5_no_violation;
    Alcotest.test_case "A1 sas dominates rr" `Slow test_a1_sas_wins;
    Alcotest.test_case "F4 bookkeeping (small)" `Slow test_f4_small;
    Alcotest.test_case "A2 exploration monotone (small)" `Slow test_a2_small;
  ]
