(* Amplification tests: the closed-form γ against a direct maximization,
   the breach-prevention constants, and the central theorem checked
   empirically: no posterior under any tested prior ever exceeds the
   amplification bound. *)

open Ppdm_linalg
open Ppdm

(* Direct maximization of the pairwise ratio
   (p_a1 / C(m,a1)) ((1-rho)/rho)^a1  over  (p_a2 / C(m,a2)) ((1-rho)/rho)^a2
   without the log-space shortcut; validates the implementation. *)
let brute_gamma (r : Randomizer.resolved) =
  let m = Array.length r.keep_dist - 1 in
  if m = 0 then 1.
  else if r.rho <= 0. || r.rho >= 1. then infinity
  else begin
    let weight a =
      r.keep_dist.(a) /. Binomial.choose m a
      *. Float.pow ((1. -. r.rho) /. r.rho) (float_of_int a)
    in
    let best = ref 0. in
    for a1 = 0 to m do
      for a2 = 0 to m do
        let w2 = weight a2 in
        let ratio = if w2 = 0. then infinity else weight a1 /. w2 in
        if ratio > !best then best := ratio
      done
    done;
    !best
  end

let test_gamma_trivial () =
  let r : Randomizer.resolved = { keep_dist = [| 1. |]; rho = 0.5 } in
  Alcotest.(check (float 1e-12)) "empty size" 1. (Amplification.gamma_resolved r)

let test_gamma_infinite_cases () =
  (* rho = 0 -> outputs are subsets only: unbounded *)
  let r0 : Randomizer.resolved = { keep_dist = [| 0.5; 0.5 |]; rho = 0. } in
  Alcotest.(check (float 0.)) "rho 0" infinity (Amplification.gamma_resolved r0);
  (* zero keep probability somewhere -> unbounded *)
  let scheme = Randomizer.cut_and_paste ~universe:100 ~cutoff:2 ~rho:0.3 in
  Alcotest.(check (float 0.)) "cut-and-paste K < m" infinity
    (Amplification.gamma scheme ~size:6)

let test_gamma_known_value () =
  (* m = 1, keep_dist = (1/2, 1/2), rho: ratio between a=1 and a=0 weights is
     ((1-rho)/rho); the uniform m=1 operator with p_keep=1/2 likewise. *)
  let r : Randomizer.resolved = { keep_dist = [| 0.5; 0.5 |]; rho = 0.25 } in
  Alcotest.(check (float 1e-9)) "two-point operator" 3.
    (Amplification.gamma_resolved r);
  (* Warner-style per-item randomization, m = 1: the output carries
     evidence both from the kept item and from the absent one, so
     gamma = (p_keep/p_add) * ((1-p_add)/(1-p_keep)) = 4 * 4 = 16. *)
  let scheme = Randomizer.uniform ~universe:100 ~p_keep:0.8 ~p_add:0.2 in
  Alcotest.(check (float 1e-9)) "randomized response m=1" 16.
    (Amplification.gamma scheme ~size:1)

let test_gamma_matches_brute_force () =
  let cases =
    [
      { Randomizer.keep_dist = [| 0.1; 0.2; 0.3; 0.4 |]; rho = 0.2 };
      { Randomizer.keep_dist = [| 0.25; 0.25; 0.25; 0.25 |]; rho = 0.45 };
      { Randomizer.keep_dist = [| 0.01; 0.04; 0.15; 0.3; 0.5 |]; rho = 0.1 };
      { Randomizer.keep_dist = [| 0.7; 0.1; 0.1; 0.05; 0.05 |]; rho = 0.6 };
    ]
  in
  List.iter
    (fun r ->
      let expected = brute_gamma r in
      let got = Amplification.gamma_resolved r in
      Alcotest.(check bool)
        (Printf.sprintf "gamma %.4f near %.4f" got expected)
        true
        (Float.abs (got -. expected) /. expected < 1e-9))
    cases

let test_breach_limit_constants () =
  (* the paper's running example: 5% to 50% needs gamma < 19 *)
  Alcotest.(check (float 1e-9)) "5% -> 50%" 19.
    (Amplification.gamma_breach_limit ~rho1:0.05 ~rho2:0.5);
  Alcotest.(check (float 1e-9)) "10% -> 50%" 9.
    (Amplification.gamma_breach_limit ~rho1:0.1 ~rho2:0.5);
  Alcotest.(check bool) "prevents below" true
    (Amplification.prevents_breach ~gamma:18.9 ~rho1:0.05 ~rho2:0.5);
  Alcotest.(check bool) "fails at the limit" false
    (Amplification.prevents_breach ~gamma:19. ~rho1:0.05 ~rho2:0.5);
  Alcotest.check_raises "bad arguments"
    (Invalid_argument "Amplification.gamma_breach_limit: need 0 < rho1 < rho2 < 1")
    (fun () -> ignore (Amplification.gamma_breach_limit ~rho1:0.5 ~rho2:0.1))

let test_downward_breach () =
  (* the two breach directions share the threshold constant *)
  List.iter
    (fun (rho1, rho2, gamma) ->
      Alcotest.(check bool) "directions agree"
        (Amplification.prevents_breach ~gamma ~rho1 ~rho2)
        (Amplification.prevents_downward_breach ~gamma ~rho1 ~rho2))
    [ (0.05, 0.5, 18.); (0.05, 0.5, 19.5); (0.1, 0.9, 80.); (0.1, 0.9, 82.) ];
  (* semantics: with gamma below the limit, the lower bound at prior rho2
     stays above rho1 *)
  let gamma = 18. and rho1 = 0.05 and rho2 = 0.5 in
  Alcotest.(check bool) "floor above rho1" true
    (Amplification.posterior_lower_bound ~gamma ~prior:rho2 > rho1)

let test_posterior_bounds_shape () =
  (* bound at the breach-limit gamma applied at prior rho1 gives exactly rho2 *)
  let rho1 = 0.05 and rho2 = 0.5 in
  let gamma = Amplification.gamma_breach_limit ~rho1 ~rho2 in
  Alcotest.(check (float 1e-9)) "upper bound tight" rho2
    (Amplification.posterior_upper_bound ~gamma ~prior:rho1);
  Alcotest.(check (float 1e-12)) "prior 0" 0.
    (Amplification.posterior_upper_bound ~gamma ~prior:0.);
  Alcotest.(check (float 1e-12)) "prior 1" 1.
    (Amplification.posterior_upper_bound ~gamma ~prior:1.);
  Alcotest.(check (float 1e-12)) "infinite gamma" 1.
    (Amplification.posterior_upper_bound ~gamma:infinity ~prior:0.01);
  (* lower bound mirrors: at prior rho2 with the same gamma, floor is rho1 *)
  Alcotest.(check (float 1e-9)) "lower bound tight" rho1
    (Amplification.posterior_lower_bound ~gamma ~prior:rho2)

(* The breach-prevention theorem, checked analytically: for every operator
   and every prior, the exact item posteriors stay within the gamma
   bounds. *)
let test_theorem_item_posteriors () =
  let operators =
    [
      { Randomizer.keep_dist = [| 0.1; 0.2; 0.3; 0.4 |]; rho = 0.2 };
      { Randomizer.keep_dist = [| 0.05; 0.15; 0.3; 0.2; 0.2; 0.1 |]; rho = 0.07 };
      { Randomizer.keep_dist = [| 0.3; 0.3; 0.4 |]; rho = 0.35 };
    ]
  in
  List.iter
    (fun r ->
      let gamma = Amplification.gamma_resolved r in
      List.iter
        (fun prior ->
          let upper = Amplification.posterior_upper_bound ~gamma ~prior in
          let lower = Amplification.posterior_lower_bound ~gamma ~prior in
          let present = Breach.item_posterior_present r ~prior in
          let absent = Breach.item_posterior_absent r ~prior in
          List.iter
            (fun post ->
              Alcotest.(check bool)
                (Printf.sprintf "prior %.2f post %.4f within [%.4f, %.4f]" prior
                   post lower upper)
                true
                (post <= upper +. 1e-12 && post >= lower -. 1e-12))
            [ present; absent ])
        [ 0.001; 0.01; 0.05; 0.1; 0.3; 0.5; 0.9 ])
    operators

(* The theorem also holds for the itemset-level "cause" posterior. *)
let test_theorem_itemset_posterior () =
  let r : Randomizer.resolved =
    { keep_dist = [| 0.05; 0.15; 0.3; 0.2; 0.2; 0.1 |]; rho = 0.07 }
  in
  let gamma = Amplification.gamma_resolved r in
  List.iter
    (fun prior ->
      let partials = Estimator.binomial_profile ~k:3 ~p_bg:0.1 ~support:prior in
      let post = Breach.itemset_posterior r ~partials in
      let upper = Amplification.posterior_upper_bound ~gamma ~prior in
      Alcotest.(check bool)
        (Printf.sprintf "itemset prior %.3f post %.4f <= %.4f" prior post upper)
        true
        (post <= upper +. 1e-12))
    [ 0.001; 0.01; 0.05; 0.2 ]

let qcheck_tests =
  let open QCheck in
  let arb_operator =
    let gen =
      Gen.(
        let* m = int_range 1 10 in
        let* rho = float_range 0.02 0.6 in
        let* raw = array_size (return (m + 1)) (float_range 0.01 1.) in
        let total = Array.fold_left ( +. ) 0. raw in
        return
          { Randomizer.keep_dist = Array.map (fun x -> x /. total) raw; rho })
    in
    make ~print:(fun (r : Randomizer.resolved) ->
        Printf.sprintf "m=%d rho=%g" (Array.length r.keep_dist - 1) r.rho)
      gen
  in
  [
    Test.make ~name:"gamma closed form = direct maximization" ~count:300
      arb_operator (fun r ->
        let a = Amplification.gamma_resolved r and b = brute_gamma r in
        Float.abs (a -. b) /. b < 1e-9);
    Test.make ~name:"gamma >= 1 always" ~count:300 arb_operator (fun r ->
        Amplification.gamma_resolved r >= 1.);
    Test.make ~name:"posteriors bounded by gamma for random priors" ~count:300
      (pair arb_operator (float_range 0.001 0.999)) (fun (r, prior) ->
        let gamma = Amplification.gamma_resolved r in
        let upper = Amplification.posterior_upper_bound ~gamma ~prior in
        let lower = Amplification.posterior_lower_bound ~gamma ~prior in
        let p1 = Breach.item_posterior_present r ~prior in
        let p2 = Breach.item_posterior_absent r ~prior in
        p1 <= upper +. 1e-9 && p2 <= upper +. 1e-9 && p1 >= lower -. 1e-9
        && p2 >= lower -. 1e-9);
    Test.make ~name:"posterior bound is monotone in the prior" ~count:200
      (triple arb_operator (float_range 0.01 0.5) (float_range 0.01 0.5))
      (fun (r, a, b) ->
        let gamma = Amplification.gamma_resolved r in
        let lo = Float.min a b and hi = Float.max a b in
        Amplification.posterior_upper_bound ~gamma ~prior:lo
        <= Amplification.posterior_upper_bound ~gamma ~prior:hi +. 1e-12);
  ]

let suite =
  [
    Alcotest.test_case "gamma of trivial operator" `Quick test_gamma_trivial;
    Alcotest.test_case "gamma infinite cases" `Quick test_gamma_infinite_cases;
    Alcotest.test_case "gamma known values" `Quick test_gamma_known_value;
    Alcotest.test_case "gamma vs brute force" `Quick test_gamma_matches_brute_force;
    Alcotest.test_case "breach limit constants" `Quick test_breach_limit_constants;
    Alcotest.test_case "downward breaches" `Quick test_downward_breach;
    Alcotest.test_case "posterior bound shape" `Quick test_posterior_bounds_shape;
    Alcotest.test_case "theorem: item posteriors" `Quick test_theorem_item_posteriors;
    Alcotest.test_case "theorem: itemset posterior" `Quick test_theorem_itemset_posterior;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
