(* Operator-design tests: feasibility (realized gamma never exceeds the
   budget), exact optimality of the threshold solution for the linear
   objective (vs exhaustive vertex enumeration), and sane joint designs. *)

open Ppdm

let kept_fraction dist =
  let m = Array.length dist - 1 in
  let acc = ref 0. in
  Array.iteri (fun j p -> acc := !acc +. (p *. float_of_int j)) dist;
  !acc /. float_of_int m

let realized_gamma ~rho dist =
  Amplification.gamma_resolved { Randomizer.keep_dist = dist; rho }

let test_keep_dist_valid () =
  let dist = Optimizer.keep_dist ~m:6 ~rho:0.1 ~gamma:19. Optimizer.Max_kept in
  Alcotest.(check int) "length" 7 (Array.length dist);
  Alcotest.(check (float 1e-9)) "normalized" 1. (Array.fold_left ( +. ) 0. dist);
  Array.iter (fun p -> Alcotest.(check bool) "positive" true (p > 0.)) dist

let test_gamma_budget_respected () =
  List.iter
    (fun (m, rho, gamma) ->
      let dist = Optimizer.keep_dist ~m ~rho ~gamma Optimizer.Max_kept in
      let g = realized_gamma ~rho dist in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d rho=%g: realized %.4f <= %.4f" m rho g gamma)
        true
        (g <= gamma *. (1. +. 1e-9)))
    [ (3, 0.05, 19.); (5, 0.1, 19.); (8, 0.2, 9.); (10, 0.02, 49.); (4, 0.4, 2.) ]

(* Exhaustive check: among ALL vertices u in {1, gamma}^(m+1) (which contain
   the optimum of the linear-fractional objective), the threshold search
   finds the best one. *)
let exhaustive_best ~m ~rho ~gamma objective_score =
  let best = ref neg_infinity in
  for mask = 0 to (1 lsl (m + 1)) - 1 do
    let logs =
      Array.init (m + 1) (fun j ->
          Ppdm_linalg.Binomial.log_choose m j
          +. (float_of_int j *. (log rho -. log (1. -. rho)))
          +. if mask land (1 lsl j) <> 0 then log gamma else 0.)
    in
    let top = Array.fold_left Float.max neg_infinity logs in
    let unnorm = Array.map (fun l -> exp (l -. top)) logs in
    let total = Array.fold_left ( +. ) 0. unnorm in
    let dist = Array.map (fun v -> v /. total) unnorm in
    let v = objective_score dist in
    if v > !best then best := v
  done;
  !best

let test_max_kept_exhaustive () =
  List.iter
    (fun (m, rho, gamma) ->
      let dist = Optimizer.keep_dist ~m ~rho ~gamma Optimizer.Max_kept in
      let got = kept_fraction dist in
      let best = exhaustive_best ~m ~rho ~gamma kept_fraction in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d: threshold %.6f = exhaustive %.6f" m got best)
        true
        (got >= best -. 1e-12))
    [ (3, 0.1, 19.); (5, 0.05, 9.); (6, 0.3, 4.); (7, 0.02, 49.) ]

let test_min_sigma_exhaustive () =
  let objective = Optimizer.Min_sigma { k = 2; n = 10_000; p_bg = 0.05; support = 0.02 } in
  let sigma_of ~rho dist =
    Estimator.predicted_sigma { Randomizer.keep_dist = dist; rho } ~k:2
      ~partials:(Estimator.binomial_profile ~k:2 ~p_bg:0.05 ~support:0.02)
      ~n:10_000
  in
  List.iter
    (fun (m, rho, gamma) ->
      let dist = Optimizer.keep_dist ~m ~rho ~gamma objective in
      let got = sigma_of ~rho dist in
      let best =
        -.exhaustive_best ~m ~rho ~gamma (fun d ->
            match sigma_of ~rho d with
            | sigma -> -.sigma
            | exception Ppdm_linalg.Lu.Singular -> neg_infinity)
      in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d: local %.6f vs exhaustive %.6f" m got best)
        true
        (got <= best *. (1. +. 1e-9)))
    [ (3, 0.1, 19.); (5, 0.05, 9.) ]

let test_monotone_in_gamma () =
  (* a looser privacy budget can only improve utility *)
  let kept gamma =
    kept_fraction (Optimizer.keep_dist ~m:6 ~rho:0.08 ~gamma Optimizer.Max_kept)
  in
  let previous = ref 0. in
  List.iter
    (fun gamma ->
      let k = kept gamma in
      Alcotest.(check bool)
        (Printf.sprintf "gamma %.0f kept %.4f >= %.4f" gamma k !previous)
        true
        (k >= !previous -. 1e-12);
      previous := k)
    [ 1.; 2.; 5.; 10.; 20.; 50.; 100. ]

let test_gamma_one_is_uninformative () =
  (* gamma = 1 forces p_j proportional to g_j, i.e. the posterior equals the
     prior: the operator carries no information about its input *)
  let rho = 0.3 in
  let dist = Optimizer.keep_dist ~m:4 ~rho ~gamma:1. Optimizer.Max_kept in
  Alcotest.(check (float 1e-9)) "gamma realized 1" 1. (realized_gamma ~rho dist);
  (* such an operator's output distribution is that of a fresh Bernoulli
     process: keep probability must equal rho *)
  let q = Breach.keep_probability { Randomizer.keep_dist = dist; rho } in
  Alcotest.(check (float 1e-9)) "keep prob = rho" rho q

let test_design_joint () =
  let d = Optimizer.design ~m:5 ~gamma:19. Optimizer.Max_kept in
  Alcotest.(check bool) "rho in range" true (d.Optimizer.rho > 0. && d.Optimizer.rho < 0.5 +. 1e-9);
  Alcotest.(check bool) "gamma within budget" true (d.Optimizer.gamma <= 19. *. (1. +. 1e-9));
  Alcotest.(check (float 1e-9)) "value consistent" d.Optimizer.value
    (kept_fraction d.Optimizer.dist);
  (* kept fraction must beat any single grid point it dominates *)
  Alcotest.(check bool) "achieves something" true (d.Optimizer.value > 0.3)

let test_design_min_sigma () =
  let objective = Optimizer.Min_sigma { k = 2; n = 50_000; p_bg = 0.02; support = 0.01 } in
  let d = Optimizer.design ~m:5 ~gamma:19. objective in
  Alcotest.(check bool) "sigma is positive and small" true
    (-.d.Optimizer.value > 0. && -.d.Optimizer.value < 0.05);
  Alcotest.(check bool) "gamma within budget" true
    (d.Optimizer.gamma <= 19. *. (1. +. 1e-9))

let test_validation () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Optimizer: m must be >= 1")
    (fun () -> ignore (Optimizer.keep_dist ~m:0 ~rho:0.1 ~gamma:2. Optimizer.Max_kept));
  Alcotest.check_raises "rho = 0" (Invalid_argument "Optimizer: rho must be in (0,1)")
    (fun () -> ignore (Optimizer.keep_dist ~m:3 ~rho:0. ~gamma:2. Optimizer.Max_kept));
  Alcotest.check_raises "gamma < 1" (Invalid_argument "Optimizer: gamma must be >= 1")
    (fun () -> ignore (Optimizer.keep_dist ~m:3 ~rho:0.1 ~gamma:0.5 Optimizer.Max_kept))

let test_cut_and_paste_best () =
  match
    Optimizer.cut_and_paste_best ~universe:1000 ~m:5 ~worst_posterior:0.5 ~prior:0.05
  with
  | None -> Alcotest.fail "expected a feasible cut-and-paste design"
  | Some (cutoff, rho) ->
      Alcotest.(check bool) "cutoff in range" true (cutoff >= 0 && cutoff <= 15);
      let scheme = Randomizer.cut_and_paste ~universe:1000 ~cutoff ~rho in
      let r = Randomizer.resolve scheme ~size:5 in
      Alcotest.(check bool) "posterior constraint met" true
        (Breach.worst_item_posterior r ~prior:0.05 <= 0.5 +. 1e-9)

let test_cut_and_paste_best_infeasible () =
  (* demanding posterior below the prior is impossible *)
  Alcotest.(check bool) "infeasible returns None" true
    (Optimizer.cut_and_paste_best ~universe:1000 ~m:5 ~worst_posterior:0.01
       ~prior:0.05
    = None)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"optimized dist is a full-support distribution" ~count:100
      (triple (int_range 1 12) (float_range 0.01 0.45) (float_range 1.5 100.))
      (fun (m, rho, gamma) ->
        let dist = Optimizer.keep_dist ~m ~rho ~gamma Optimizer.Max_kept in
        Array.length dist = m + 1
        && Float.abs (Array.fold_left ( +. ) 0. dist -. 1.) < 1e-9
        && Array.for_all (fun p -> p > 0.) dist);
    Test.make ~name:"realized gamma never exceeds the budget" ~count:100
      (triple (int_range 1 12) (float_range 0.01 0.45) (float_range 1.5 100.))
      (fun (m, rho, gamma) ->
        let dist = Optimizer.keep_dist ~m ~rho ~gamma Optimizer.Max_kept in
        realized_gamma ~rho dist <= gamma *. (1. +. 1e-6));
  ]

let suite =
  [
    Alcotest.test_case "distribution validity" `Quick test_keep_dist_valid;
    Alcotest.test_case "gamma budget respected" `Quick test_gamma_budget_respected;
    Alcotest.test_case "max-kept vs exhaustive vertices" `Quick test_max_kept_exhaustive;
    Alcotest.test_case "min-sigma vs exhaustive vertices" `Quick test_min_sigma_exhaustive;
    Alcotest.test_case "monotone in gamma" `Quick test_monotone_in_gamma;
    Alcotest.test_case "gamma = 1 is uninformative" `Quick test_gamma_one_is_uninformative;
    Alcotest.test_case "joint design (max kept)" `Quick test_design_joint;
    Alcotest.test_case "joint design (min sigma)" `Quick test_design_min_sigma;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "cut-and-paste tuning" `Quick test_cut_and_paste_best;
    Alcotest.test_case "cut-and-paste infeasible" `Quick test_cut_and_paste_best_infeasible;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
