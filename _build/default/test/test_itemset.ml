(* Itemset set-algebra tests, including property tests against a
   reference implementation over int lists. *)

open Ppdm_data

let items = Alcotest.testable Itemset.pp Itemset.equal

let test_of_list_normalizes () =
  let s = Itemset.of_list [ 3; 1; 2; 3; 1 ] in
  Alcotest.(check (list int)) "sorted deduped" [ 1; 2; 3 ] (Itemset.to_list s);
  Alcotest.(check int) "cardinal" 3 (Itemset.cardinal s);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Itemset.of_array: negative item") (fun () ->
      ignore (Itemset.of_list [ 1; -2 ]))

let test_empty_singleton () =
  Alcotest.(check bool) "empty" true (Itemset.is_empty Itemset.empty);
  Alcotest.(check int) "singleton size" 1 (Itemset.cardinal (Itemset.singleton 5));
  Alcotest.(check bool) "mem singleton" true (Itemset.mem 5 (Itemset.singleton 5))

let test_mem () =
  let s = Itemset.of_list [ 2; 4; 6; 8; 10 ] in
  List.iter
    (fun x -> Alcotest.(check bool) (string_of_int x) (x mod 2 = 0 && x >= 2 && x <= 10) (Itemset.mem x s))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]

let test_add_remove () =
  let s = Itemset.of_list [ 1; 3 ] in
  Alcotest.check items "add" (Itemset.of_list [ 1; 2; 3 ]) (Itemset.add 2 s);
  Alcotest.check items "add existing" s (Itemset.add 3 s);
  Alcotest.check items "remove" (Itemset.singleton 1) (Itemset.remove 3 s);
  Alcotest.check items "remove absent" s (Itemset.remove 7 s)

let test_set_ops () =
  let a = Itemset.of_list [ 1; 2; 3; 4 ] and b = Itemset.of_list [ 3; 4; 5 ] in
  Alcotest.check items "inter" (Itemset.of_list [ 3; 4 ]) (Itemset.inter a b);
  Alcotest.check items "union" (Itemset.of_list [ 1; 2; 3; 4; 5 ]) (Itemset.union a b);
  Alcotest.check items "diff" (Itemset.of_list [ 1; 2 ]) (Itemset.diff a b);
  Alcotest.(check int) "inter_size" 2 (Itemset.inter_size a b);
  Alcotest.(check bool) "subset no" false (Itemset.subset a b);
  Alcotest.(check bool) "subset yes" true
    (Itemset.subset (Itemset.of_list [ 3; 4 ]) a);
  Alcotest.(check bool) "empty subset of all" true (Itemset.subset Itemset.empty b)

let test_nth () =
  let s = Itemset.of_list [ 10; 20; 30 ] in
  Alcotest.(check int) "nth 1" 20 (Itemset.nth s 1);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Itemset.nth: out of range") (fun () ->
      ignore (Itemset.nth s 3))

let test_compare_order () =
  let a = Itemset.of_list [ 9 ] and b = Itemset.of_list [ 1; 2 ] in
  Alcotest.(check bool) "smaller cardinality first" true (Itemset.compare a b < 0);
  let c = Itemset.of_list [ 1; 3 ] and d = Itemset.of_list [ 1; 4 ] in
  Alcotest.(check bool) "lexicographic tie-break" true (Itemset.compare c d < 0);
  Alcotest.(check int) "equal" 0 (Itemset.compare c c)

let test_subsets_of_size () =
  let s = Itemset.of_list [ 1; 2; 3; 4 ] in
  let subs = Itemset.subsets_of_size s 2 in
  Alcotest.(check int) "C(4,2) subsets" 6 (List.length subs);
  List.iter
    (fun sub ->
      Alcotest.(check int) "size 2" 2 (Itemset.cardinal sub);
      Alcotest.(check bool) "is subset" true (Itemset.subset sub s))
    subs;
  Alcotest.(check int) "size 0 is just empty" 1
    (List.length (Itemset.subsets_of_size s 0));
  Alcotest.(check int) "oversize is none" 0
    (List.length (Itemset.subsets_of_size s 5));
  (* all distinct *)
  let sorted = List.sort_uniq Itemset.compare subs in
  Alcotest.(check int) "distinct" 6 (List.length sorted)

let test_pp () =
  Alcotest.(check string) "printing" "{1,2,3}"
    (Itemset.to_string (Itemset.of_list [ 3; 1; 2 ]));
  Alcotest.(check string) "empty printing" "{}" (Itemset.to_string Itemset.empty)

(* Reference model: sorted unique int lists. *)
let model s = Itemset.to_list s
let gen_items = QCheck.Gen.(list_size (int_range 0 12) (int_range 0 15))
let arb_itemset =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    gen_items

let qcheck_tests =
  let open QCheck in
  let module IS = Set.Make (Int) in
  let to_set l = IS.of_list l in
  [
    Test.make ~name:"union agrees with Set" ~count:500 (pair arb_itemset arb_itemset)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        model (Itemset.union sa sb)
        = IS.elements (IS.union (to_set a) (to_set b)));
    Test.make ~name:"inter agrees with Set" ~count:500 (pair arb_itemset arb_itemset)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        model (Itemset.inter sa sb)
        = IS.elements (IS.inter (to_set a) (to_set b)));
    Test.make ~name:"diff agrees with Set" ~count:500 (pair arb_itemset arb_itemset)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        model (Itemset.diff sa sb)
        = IS.elements (IS.diff (to_set a) (to_set b)));
    Test.make ~name:"inter_size = |inter|" ~count:500 (pair arb_itemset arb_itemset)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Itemset.inter_size sa sb = Itemset.cardinal (Itemset.inter sa sb));
    Test.make ~name:"subset iff diff empty" ~count:500 (pair arb_itemset arb_itemset)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Itemset.subset sa sb = Itemset.is_empty (Itemset.diff sa sb));
    Test.make ~name:"mem matches list membership" ~count:500
      (pair arb_itemset (int_range 0 15)) (fun (a, x) ->
        Itemset.mem x (Itemset.of_list a) = List.mem x a);
    Test.make ~name:"union cardinality inclusion-exclusion" ~count:500
      (pair arb_itemset arb_itemset) (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Itemset.cardinal (Itemset.union sa sb)
        = Itemset.cardinal sa + Itemset.cardinal sb - Itemset.inter_size sa sb);
    Test.make ~name:"compare is a total order consistent with equal" ~count:500
      (pair arb_itemset arb_itemset) (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        (Itemset.compare sa sb = 0) = Itemset.equal sa sb);
  ]

let suite =
  [
    Alcotest.test_case "of_list normalizes" `Quick test_of_list_normalizes;
    Alcotest.test_case "empty and singleton" `Quick test_empty_singleton;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "add and remove" `Quick test_add_remove;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "nth" `Quick test_nth;
    Alcotest.test_case "compare order" `Quick test_compare_order;
    Alcotest.test_case "subsets_of_size" `Quick test_subsets_of_size;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
