(* LDP-bridge tests: translation identities, randomized-response
   properties, and the inverse design (epsilon for a target gamma). *)

open Ppdm

let test_translation () =
  Alcotest.(check (float 1e-12)) "eps of gamma 1" 0. (Ldp.epsilon_of_gamma 1.);
  Alcotest.(check (float 1e-9)) "round trip" 7.3
    (Ldp.gamma_of_epsilon (Ldp.epsilon_of_gamma 7.3));
  Alcotest.(check (float 0.)) "infinite gamma" infinity
    (Ldp.epsilon_of_gamma infinity);
  Alcotest.check_raises "gamma < 1"
    (Invalid_argument "Ldp.epsilon_of_gamma: gamma must be >= 1") (fun () ->
      ignore (Ldp.epsilon_of_gamma 0.5))

let test_rr_keep_probability () =
  Alcotest.(check (float 1e-12)) "eps 0 is a fair coin" 0.5
    (Ldp.rr_keep_probability ~epsilon_per_item:0.);
  let p = Ldp.rr_keep_probability ~epsilon_per_item:(log 3.) in
  Alcotest.(check (float 1e-12)) "eps ln3 -> 3/4" 0.75 p

let test_rr_is_uniform_operator () =
  let scheme = Ldp.randomized_response ~universe:100 ~epsilon_per_item:(log 3.) in
  let r = Randomizer.resolve scheme ~size:4 in
  Alcotest.(check (float 1e-12)) "rho = 1 - p" 0.25 r.Randomizer.rho;
  Alcotest.(check (float 1e-9)) "keep prob" 0.75 (Breach.keep_probability r)

let test_item_epsilon_of_uniform () =
  (* symmetric RR: both ratios equal e^eps *)
  let eps = Ldp.item_epsilon_of_uniform ~p_keep:0.75 ~p_add:0.25 in
  Alcotest.(check (float 1e-9)) "symmetric" (log 3.) eps;
  Alcotest.(check (float 0.)) "deterministic bit" infinity
    (Ldp.item_epsilon_of_uniform ~p_keep:1. ~p_add:0.25);
  Alcotest.(check (float 1e-12)) "identical channels leak nothing" 0.
    (Ldp.item_epsilon_of_uniform ~p_keep:0.3 ~p_add:0.3)

let test_gamma_uniform_vs_amplification () =
  let gamma = Ldp.gamma_uniform ~size:3 ~p_keep:0.7 ~p_add:0.1 in
  let scheme = Randomizer.uniform ~universe:100 ~p_keep:0.7 ~p_add:0.1 in
  Alcotest.(check (float 1e-9)) "agrees with Amplification" gamma
    (Amplification.gamma scheme ~size:3)

let test_rr_epsilon_for_gamma () =
  List.iter
    (fun (size, gamma) ->
      let eps = Ldp.rr_epsilon_for_gamma ~size ~gamma in
      let p = Ldp.rr_keep_probability ~epsilon_per_item:eps in
      let realized = Ldp.gamma_uniform ~size ~p_keep:p ~p_add:(1. -. p) in
      Alcotest.(check bool)
        (Printf.sprintf "size %d: realized %.4f near target %.4f" size realized gamma)
        true
        (Float.abs (realized -. gamma) /. gamma < 1e-6))
    [ (1, 4.); (3, 19.); (5, 19.); (8, 49.) ]

let test_rr_transaction_gamma_grows_with_size () =
  (* Transaction-level amplification composes over bits, so it must grow
     with the transaction size at fixed per-item epsilon. *)
  let p = Ldp.rr_keep_probability ~epsilon_per_item:1. in
  let g size = Ldp.gamma_uniform ~size ~p_keep:p ~p_add:(1. -. p) in
  Alcotest.(check bool) "monotone" true (g 1 < g 2 && g 2 < g 4 && g 4 < g 8)

let test_rr_estimation_end_to_end () =
  (* RR plugs into the standard estimator unchanged. *)
  let open Ppdm_prng in
  let open Ppdm_data in
  let universe = 100 and size = 5 and count = 20_000 in
  let rng = Rng.create ~seed:11 () in
  let itemset = Itemset.of_list [ 2; 8 ] in
  let db =
    Ppdm_datagen.Simple.planted rng ~universe ~size ~count ~itemset ~support:0.3
  in
  let eps = Ldp.rr_epsilon_for_gamma ~size ~gamma:19. in
  let scheme = Ldp.randomized_response ~universe ~epsilon_per_item:eps in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let e = Estimator.estimate ~scheme ~data ~itemset in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 5 sigma (%.4f) of 0.3"
       e.Estimator.support e.Estimator.sigma)
    true
    (Float.abs (e.Estimator.support -. 0.3) < 5. *. e.Estimator.sigma)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rr keep probability is in (1/2, 1)" ~count:200
      (float_range 0.001 10.) (fun eps ->
        let p = Ldp.rr_keep_probability ~epsilon_per_item:eps in
        p > 0.5 && p < 1.);
    Test.make ~name:"per-item epsilon of RR is its budget" ~count:200
      (float_range 0.01 8.) (fun eps ->
        let p = Ldp.rr_keep_probability ~epsilon_per_item:eps in
        let back = Ldp.item_epsilon_of_uniform ~p_keep:p ~p_add:(1. -. p) in
        Float.abs (back -. eps) < 1e-9);
    Test.make ~name:"gamma_uniform >= per-item gamma" ~count:100
      (pair (int_range 1 8) (float_range 0.1 4.)) (fun (size, eps) ->
        let p = Ldp.rr_keep_probability ~epsilon_per_item:eps in
        Ldp.gamma_uniform ~size ~p_keep:p ~p_add:(1. -. p)
        >= Ldp.gamma_of_epsilon eps -. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "gamma/epsilon translation" `Quick test_translation;
    Alcotest.test_case "rr keep probability" `Quick test_rr_keep_probability;
    Alcotest.test_case "rr is a uniform operator" `Quick test_rr_is_uniform_operator;
    Alcotest.test_case "item epsilon of uniform" `Quick test_item_epsilon_of_uniform;
    Alcotest.test_case "gamma_uniform agreement" `Quick test_gamma_uniform_vs_amplification;
    Alcotest.test_case "epsilon for target gamma" `Quick test_rr_epsilon_for_gamma;
    Alcotest.test_case "gamma grows with size" `Quick test_rr_transaction_gamma_grows_with_size;
    Alcotest.test_case "rr end-to-end estimation" `Slow test_rr_estimation_end_to_end;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
