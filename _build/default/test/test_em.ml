(* EM reconstruction tests: feasibility (simplex output), agreement with
   the inversion estimator where both are reliable, monotone likelihood,
   and behaviour where the inversion estimator goes infeasible. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let setup ~seed ~count =
  let universe = 100 and size = 5 in
  let rng = Rng.create ~seed () in
  let itemset = Itemset.of_list [ 2; 7 ] in
  let db = Simple.planted rng ~universe ~size ~count ~itemset ~support:0.15 in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.05 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  (scheme, itemset, db, data)

let check_simplex partials =
  Array.iter
    (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.))
    partials;
  Alcotest.(check bool) "sums to one" true
    (Float.abs (Array.fold_left ( +. ) 0. partials -. 1.) < 1e-6)

let test_simplex_output () =
  let scheme, itemset, _, data = setup ~seed:1 ~count:4000 in
  let e = Em.estimate ~scheme ~data ~itemset () in
  check_simplex e.Em.partials;
  Alcotest.(check bool) "support in [0,1]" true
    (e.Em.support >= 0. && e.Em.support <= 1.)

let test_agrees_with_inversion () =
  (* plenty of data and a well-conditioned operator: both estimators land
     on (nearly) the same answer *)
  let scheme, itemset, db, data = setup ~seed:2 ~count:30_000 in
  let inv = Estimator.estimate ~scheme ~data ~itemset in
  let em = Em.estimate ~scheme ~data ~itemset () in
  Alcotest.(check bool)
    (Printf.sprintf "em %.4f ~ inversion %.4f (sigma %.4f)" em.Em.support
       inv.Estimator.support inv.Estimator.sigma)
    true
    (Float.abs (em.Em.support -. inv.Estimator.support)
    < Float.max (2. *. inv.Estimator.sigma) 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "em %.4f near truth %.4f" em.Em.support
       (Db.support db itemset))
    true
    (Float.abs (em.Em.support -. Db.support db itemset) < 0.03)

let test_feasible_when_inversion_is_not () =
  (* tiny sample: inversion estimates often leave [0,1]; EM never does.
     Scan seeds until inversion goes negative to make the contrast real. *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 100 do
    incr seed;
    let scheme, itemset, _, data = setup ~seed:!seed ~count:60 in
    let inv = Estimator.estimate ~scheme ~data ~itemset in
    if Array.exists (fun v -> v < -1e-9) inv.Estimator.partials then begin
      found := true;
      let em = Em.estimate ~scheme ~data ~itemset () in
      check_simplex em.Em.partials
    end
  done;
  Alcotest.(check bool) "found an infeasible inversion case" true !found

let test_identity_exact () =
  let universe = 50 in
  let rng = Rng.create ~seed:3 () in
  let itemset = Itemset.of_list [ 1; 2 ] in
  let db = Simple.planted rng ~universe ~size:5 ~count:800 ~itemset ~support:0.25 in
  let scheme = Randomizer.uniform ~universe ~p_keep:1. ~p_add:0. in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let e = Em.estimate ~scheme ~data ~itemset () in
  Alcotest.(check bool)
    (Printf.sprintf "em support %.6f = 0.25" e.Em.support)
    true
    (Float.abs (e.Em.support -. 0.25) < 1e-6)

let test_convergence_metadata () =
  let scheme, itemset, _, data = setup ~seed:4 ~count:2000 in
  let e = Em.estimate ~scheme ~data ~itemset () in
  Alcotest.(check bool) "iterated at least once" true (e.Em.iterations >= 1);
  Alcotest.(check bool) "log-likelihood finite" true
    (Float.is_finite e.Em.log_likelihood);
  (* a tighter tolerance cannot decrease the likelihood *)
  let loose = Em.estimate ~tolerance:1e-2 ~scheme ~data ~itemset () in
  Alcotest.(check bool)
    (Printf.sprintf "ll %.3f >= %.3f" e.Em.log_likelihood loose.Em.log_likelihood)
    true
    (e.Em.log_likelihood >= loose.Em.log_likelihood -. 1e-6)

let test_counts_variant () =
  let scheme, itemset, _, data = setup ~seed:5 ~count:2000 in
  let counts = Estimator.observed_partial_counts data ~itemset in
  let a = Em.estimate ~scheme ~data ~itemset () in
  let b = Em.estimate_from_counts ~scheme ~k:2 ~counts () in
  Alcotest.(check (float 0.)) "identical" a.Em.support b.Em.support

let test_empty_rejected () =
  let scheme = Randomizer.uniform ~universe:10 ~p_keep:1. ~p_add:0. in
  Alcotest.check_raises "empty" (Invalid_argument "Em.estimate: empty data")
    (fun () ->
      ignore (Em.estimate ~scheme ~data:[||] ~itemset:(Itemset.singleton 0) ()))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"EM output is always a simplex point" ~count:40
      (pair small_int (int_range 50 2000)) (fun (seed, count) ->
        let scheme, itemset, _, data = setup ~seed ~count in
        let e = Em.estimate ~scheme ~data ~itemset () in
        Array.for_all (fun v -> v >= 0.) e.Em.partials
        && Float.abs (Array.fold_left ( +. ) 0. e.Em.partials -. 1.) < 1e-6);
  ]

let suite =
  [
    Alcotest.test_case "simplex output" `Quick test_simplex_output;
    Alcotest.test_case "agrees with inversion" `Slow test_agrees_with_inversion;
    Alcotest.test_case "feasible when inversion is not" `Quick
      test_feasible_when_inversion_is_not;
    Alcotest.test_case "identity exact" `Quick test_identity_exact;
    Alcotest.test_case "convergence metadata" `Quick test_convergence_metadata;
    Alcotest.test_case "counts variant" `Quick test_counts_variant;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
