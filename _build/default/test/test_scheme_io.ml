(* Scheme serialization tests: round-trips preserve the operators (hence
   randomization and estimation behaviour), unknown sizes are rejected,
   malformed input fails cleanly. *)

open Ppdm_prng
open Ppdm_data
open Ppdm

let with_temp f =
  let path = Filename.temp_file "ppdm_scheme" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let check_resolved msg expected actual =
  Alcotest.(check (float 1e-15)) (msg ^ " rho") expected.Randomizer.rho
    actual.Randomizer.rho;
  Alcotest.(check (array (float 1e-15)))
    (msg ^ " keep_dist")
    expected.Randomizer.keep_dist actual.Randomizer.keep_dist

let test_roundtrip_cut_and_paste () =
  let scheme = Randomizer.cut_and_paste ~universe:500 ~cutoff:4 ~rho:0.073 in
  with_temp (fun path ->
      Scheme_io.write_file path scheme ~sizes:[ 0; 1; 3; 7; 7; 12 ];
      let back = Scheme_io.read_file path in
      Alcotest.(check int) "universe" 500 (Randomizer.universe back);
      List.iter
        (fun size ->
          check_resolved
            (Printf.sprintf "size %d" size)
            (Randomizer.resolve scheme ~size)
            (Randomizer.resolve back ~size))
        [ 0; 1; 3; 7; 12 ])

let test_roundtrip_optimized () =
  let d = Optimizer.design_for_estimation ~m:6 ~gamma:19. () in
  let scheme =
    Randomizer.select_a_size ~universe:200 ~size:6 ~keep_dist:d.Optimizer.dist
      ~rho:d.Optimizer.rho
  in
  with_temp (fun path ->
      Scheme_io.write_file path scheme ~sizes:[ 6 ];
      let back = Scheme_io.read_file path in
      check_resolved "size 6" (Randomizer.resolve scheme ~size:6)
        (Randomizer.resolve back ~size:6);
      (* behaviour equality: same seeds, same randomized output *)
      let tx = Itemset.of_list [ 1; 2; 3; 4; 5; 6 ] in
      let a = Randomizer.apply scheme (Rng.create ~seed:5 ()) tx in
      let b = Randomizer.apply back (Rng.create ~seed:5 ()) tx in
      Alcotest.(check bool) "identical behaviour" true (Itemset.equal a b))

let test_unknown_size_rejected () =
  let scheme = Randomizer.cut_and_paste ~universe:100 ~cutoff:2 ~rho:0.1 in
  with_temp (fun path ->
      Scheme_io.write_file path scheme ~sizes:[ 3; 4 ];
      let back = Scheme_io.read_file path in
      Alcotest.(check bool) "known size works" true
        (Randomizer.resolve back ~size:3 |> fun r -> Array.length r.Randomizer.keep_dist = 4);
      Alcotest.(check bool) "unknown size rejected" true
        (match Randomizer.resolve back ~size:5 with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_malformed () =
  let cases =
    [
      "";
      "wrong magic\n";
      "ppdm-scheme 1\nuniverse -3\n";
      "ppdm-scheme 1\nuniverse 10\nname x\nsize 2 rho 0.1 keep 0.5 0.5\n";
      (* keep_dist length mismatch: size 2 needs 3 entries *)
    ]
  in
  List.iter
    (fun input ->
      with_temp (fun path ->
          let oc = open_out path in
          output_string oc input;
          close_out oc;
          match Scheme_io.read_file path with
          | exception Failure _ -> ()
          | _ -> Alcotest.fail ("accepted malformed input: " ^ String.escaped input)))
    cases

let test_sizes_of_db () =
  let db =
    Db.create ~universe:10
      (Array.of_list
         (List.map Itemset.of_list [ [ 1; 2 ]; []; [ 1 ]; [ 3; 4 ]; [ 1; 2; 3 ] ]))
  in
  Alcotest.(check (list int)) "distinct sizes" [ 0; 1; 2; 3 ] (Scheme_io.sizes_of_db db)

let test_estimation_through_roundtrip () =
  (* Serialize on the client, estimate on the server with the read-back
     scheme: results must be identical. *)
  let universe = 120 in
  let rng = Rng.create ~seed:31 () in
  let itemset = Itemset.of_list [ 2; 9 ] in
  let db =
    Ppdm_datagen.Simple.planted rng ~universe ~size:5 ~count:3000 ~itemset
      ~support:0.15
  in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.04 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  with_temp (fun path ->
      Scheme_io.write_file path scheme ~sizes:(Scheme_io.sizes_of_db db);
      let back = Scheme_io.read_file path in
      let a = Estimator.estimate ~scheme ~data ~itemset in
      let b = Estimator.estimate ~scheme:back ~data ~itemset in
      Alcotest.(check (float 0.)) "same estimate" a.Estimator.support b.Estimator.support;
      Alcotest.(check (float 0.)) "same sigma" a.Estimator.sigma b.Estimator.sigma)

let suite =
  [
    Alcotest.test_case "roundtrip cut-and-paste" `Quick test_roundtrip_cut_and_paste;
    Alcotest.test_case "roundtrip optimized" `Quick test_roundtrip_optimized;
    Alcotest.test_case "unknown size rejected" `Quick test_unknown_size_rejected;
    Alcotest.test_case "malformed inputs" `Quick test_malformed;
    Alcotest.test_case "sizes_of_db" `Quick test_sizes_of_db;
    Alcotest.test_case "estimation through roundtrip" `Quick test_estimation_through_roundtrip;
  ]
