(* Numeric-attribute pipeline tests: binning arithmetic, perturbation
   privacy accounting, and density reconstruction accuracy. *)

open Ppdm_prng
open Ppdm
open Ppdm_numeric

let bins = Binning.create ~lo:0. ~hi:100. ~count:10

let test_binning_basics () =
  Alcotest.(check int) "count" 10 (Binning.count bins);
  Alcotest.(check int) "index interior" 3 (Binning.index bins 35.);
  Alcotest.(check int) "index edge" 4 (Binning.index bins 40.);
  Alcotest.(check int) "clamped low" 0 (Binning.index bins (-5.));
  Alcotest.(check int) "clamped high" 9 (Binning.index bins 250.);
  Alcotest.(check (float 1e-9)) "center" 35. (Binning.center bins 3);
  let lo, hi = Binning.bounds bins 3 in
  Alcotest.(check (float 1e-9)) "bound lo" 30. lo;
  Alcotest.(check (float 1e-9)) "bound hi" 40. hi;
  Alcotest.check_raises "bad bin" (Invalid_argument "Binning: bin out of range")
    (fun () -> ignore (Binning.center bins 10));
  Alcotest.check_raises "bad range" (Invalid_argument "Binning.create: need lo < hi")
    (fun () -> ignore (Binning.create ~lo:1. ~hi:1. ~count:3))

let test_histogram () =
  let sample = [| 5.; 15.; 15.; 95.; 200. |] in
  let h = Binning.histogram bins sample in
  Alcotest.(check (float 1e-12)) "bin 0" 0.2 h.(0);
  Alcotest.(check (float 1e-12)) "bin 1" 0.4 h.(1);
  Alcotest.(check (float 1e-12)) "bin 9 (with clamp)" 0.4 h.(9);
  Alcotest.(check (float 1e-9)) "normalized" 1. (Array.fold_left ( +. ) 0. h)

let test_gamma_accounting () =
  let p = Perturb.randomized_response ~binning:bins ~epsilon:1.5 in
  Alcotest.(check bool) "rr gamma = e^eps" true
    (Float.abs (Perturb.gamma p -. exp 1.5) < 1e-9 *. exp 1.5);
  let sharp = Perturb.laplace_like ~binning:bins ~alpha:0.3 in
  let blurry = Perturb.laplace_like ~binning:bins ~alpha:0.7 in
  Alcotest.(check bool) "noisier operator has smaller gamma" true
    (Perturb.gamma blurry < Perturb.gamma sharp)

let test_laplace_for_gamma () =
  List.iter
    (fun target ->
      let p = Perturb.laplace_for_gamma ~binning:bins ~gamma:target in
      Alcotest.(check bool)
        (Printf.sprintf "target %.0f realized %.3f" target (Perturb.gamma p))
        true
        (Float.abs (Perturb.gamma p -. target) /. target < 1e-3))
    [ 3.; 9.; 19.; 99. ];
  Alcotest.check_raises "gamma <= 1"
    (Invalid_argument "Perturb.laplace_for_gamma: gamma must be > 1") (fun () ->
      ignore (Perturb.laplace_for_gamma ~binning:bins ~gamma:1.))

let gaussian_sample rng n =
  Array.init n (fun _ -> Dist.normal rng ~mean:55. ~std:15.)

let test_reconstruction_accuracy () =
  let rng = Rng.create ~seed:4 () in
  let values = gaussian_sample rng 40_000 in
  let truth = Binning.histogram bins values in
  let p = Perturb.laplace_like ~binning:bins ~alpha:0.5 in
  let outputs = Perturb.randomize_all p rng values in
  let counts = Array.make (Binning.count bins) 0 in
  Array.iter (fun y -> counts.(y) <- counts.(y) + 1) outputs;
  List.iter
    (fun method_ ->
      let r = Perturb.reconstruct ~method_ p ~counts in
      Array.iteri
        (fun i t ->
          Alcotest.(check bool)
            (Printf.sprintf "bin %d: %.3f near %.3f" i r.Perturb.density.(i) t)
            true
            (Float.abs (r.Perturb.density.(i) -. t) < 0.02))
        truth)
    [ `Em; `Inversion ];
  (* statistics recovered from the density *)
  let r = Perturb.reconstruct p ~counts in
  let mean = Perturb.mean_of_density p r.Perturb.density in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f near 55" mean)
    true
    (Float.abs (mean -. 55.) < 2.);
  let median = Perturb.quantile_of_density p r.Perturb.density 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median %.1f near 55" median)
    true
    (Float.abs (median -. 55.) < 4.)

let test_privacy_certificate_holds () =
  (* empirical per-bin posterior never exceeds the channel's gamma bound *)
  let rng = Rng.create ~seed:5 () in
  let p = Perturb.laplace_like ~binning:bins ~alpha:0.6 in
  let gamma = Perturb.gamma p in
  let n = 20_000 in
  let values = gaussian_sample rng n in
  let xs = Array.map (Binning.index bins) values in
  let ys = Array.map (fun v -> Perturb.randomize p rng v) values in
  (* measure P(x = 3 | y) for each y and compare against the ceiling *)
  let prior =
    float_of_int (Array.fold_left (fun a x -> if x = 3 then a + 1 else a) 0 xs)
    /. float_of_int n
  in
  let bound = Amplification.posterior_upper_bound ~gamma ~prior in
  for y = 0 to Binning.count bins - 1 do
    let joint = ref 0 and marginal = ref 0 in
    Array.iteri
      (fun i yi ->
        if yi = y then begin
          incr marginal;
          if xs.(i) = 3 then incr joint
        end)
      ys;
    if !marginal > 200 then begin
      let posterior = float_of_int !joint /. float_of_int !marginal in
      Alcotest.(check bool)
        (Printf.sprintf "y=%d posterior %.3f <= %.3f" y posterior bound)
        true
        (posterior <= bound +. 0.05)
    end
  done

let test_quantile_degenerate () =
  let p = Perturb.laplace_like ~binning:bins ~alpha:0.5 in
  let density = Array.make 10 0. in
  density.(4) <- 1.;
  Alcotest.(check bool) "point mass median inside bin 4" true
    (let q = Perturb.quantile_of_density p density 0.5 in
     q >= 40. && q <= 50.);
  Alcotest.check_raises "bad q"
    (Invalid_argument "Perturb.quantile_of_density: q out of [0,1]") (fun () ->
      ignore (Perturb.quantile_of_density p density 1.5))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"binning index is within range and monotone" ~count:300
      (pair (float_range (-50.) 150.) (float_range (-50.) 150.))
      (fun (a, b) ->
        let ia = Binning.index bins a and ib = Binning.index bins b in
        ia >= 0 && ia < 10 && ib >= 0 && ib < 10
        && (a > b || ia <= ib));
    Test.make ~name:"reconstruction yields a density (EM)" ~count:30
      small_int (fun seed ->
        let rng = Rng.create ~seed () in
        let p = Perturb.laplace_like ~binning:bins ~alpha:0.5 in
        let values = gaussian_sample rng 300 in
        let outputs = Perturb.randomize_all p rng values in
        let counts = Array.make 10 0 in
        Array.iter (fun y -> counts.(y) <- counts.(y) + 1) outputs;
        let r = Perturb.reconstruct p ~counts in
        Array.for_all (fun v -> v >= 0.) r.Perturb.density
        && Float.abs (Array.fold_left ( +. ) 0. r.Perturb.density -. 1.) < 1e-6);
  ]

let suite =
  [
    Alcotest.test_case "binning basics" `Quick test_binning_basics;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "gamma accounting" `Quick test_gamma_accounting;
    Alcotest.test_case "laplace_for_gamma calibration" `Quick test_laplace_for_gamma;
    Alcotest.test_case "reconstruction accuracy" `Slow test_reconstruction_accuracy;
    Alcotest.test_case "privacy certificate holds" `Slow test_privacy_certificate_holds;
    Alcotest.test_case "quantile degenerate" `Quick test_quantile_degenerate;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
