(* Split-finder tests: impurity values, hand-checkable splits, invariance
   under class permutation, and end-to-end split recovery through the
   randomization channel. *)

open Ppdm_prng
open Ppdm_numeric

let bins = Binning.create ~lo:0. ~hi:10. ~count:10

let point_density bin =
  let d = Array.make 10 0. in
  d.(bin) <- 1.;
  d

let uniform_density = Array.make 10 0.1

let test_impurity_values () =
  Alcotest.(check (float 1e-12)) "gini pure" 0. (Split.impurity Split.Gini [| 1.; 0. |]);
  Alcotest.(check (float 1e-12)) "gini fair" 0.5 (Split.impurity Split.Gini [| 0.5; 0.5 |]);
  Alcotest.(check (float 1e-12)) "entropy pure" 0.
    (Split.impurity Split.Information_gain [| 1.; 0. |]);
  Alcotest.(check (float 1e-9)) "entropy fair" (log 2.)
    (Split.impurity Split.Information_gain [| 0.5; 0.5 |]);
  Alcotest.check_raises "not a distribution"
    (Invalid_argument "Split.impurity: not a probability vector") (fun () ->
      ignore (Split.impurity Split.Gini [| 0.5; 0.6 |]))

let test_perfectly_separable () =
  (* class 0 entirely in bin 2, class 1 entirely in bin 7: every boundary
     in [2, 6] separates them perfectly; the split must be one of them and
     achieve the full parent impurity *)
  let profiles =
    [
      { Split.density = point_density 2; prior = 0.5 };
      { Split.density = point_density 7; prior = 0.5 };
    ]
  in
  match Split.best_split ~binning:bins profiles with
  | None -> Alcotest.fail "expected a split"
  | Some s ->
      Alcotest.(check bool) "separating boundary" true (s.Split.bin >= 2 && s.Split.bin <= 6);
      Alcotest.(check (float 1e-9)) "full gini decrease" 0.5 s.Split.score;
      Alcotest.(check (float 1e-9)) "half the mass goes left" 0.5 s.Split.left_mass

let test_identical_classes_no_split () =
  let profiles =
    [
      { Split.density = Array.copy uniform_density; prior = 0.3 };
      { Split.density = Array.copy uniform_density; prior = 0.7 };
    ]
  in
  Alcotest.(check bool) "no informative split" true
    (Split.best_split ~binning:bins profiles = None)

let test_single_class_no_split () =
  let profiles = [ { Split.density = Array.copy uniform_density; prior = 1. } ] in
  Alcotest.(check bool) "single class" true
    (Split.best_split ~binning:bins profiles = None)

let test_class_permutation_invariance () =
  let a = { Split.density = point_density 1; prior = 0.4 } in
  let b = { Split.density = point_density 8; prior = 0.6 } in
  let s1 = Split.best_split ~binning:bins [ a; b ] in
  let s2 = Split.best_split ~binning:bins [ b; a ] in
  match (s1, s2) with
  | Some s1, Some s2 ->
      Alcotest.(check int) "same boundary" s1.Split.bin s2.Split.bin;
      Alcotest.(check (float 1e-12)) "same score" s1.Split.score s2.Split.score
  | _ -> Alcotest.fail "expected splits"

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Split: no classes") (fun () ->
      ignore (Split.best_split ~binning:bins []));
  Alcotest.check_raises "bad priors"
    (Invalid_argument "Split: class priors must sum to 1") (fun () ->
      ignore
        (Split.best_split ~binning:bins
           [ { Split.density = Array.copy uniform_density; prior = 0.6 } ]));
  Alcotest.check_raises "bad density length"
    (Invalid_argument "Split: density length does not match the binning")
    (fun () ->
      ignore
        (Split.best_split ~binning:bins
           [ { Split.density = [| 1. |]; prior = 1. } ]))

let test_end_to_end_through_channel () =
  (* two gaussian classes; both randomized through a gamma = 19 channel;
     the split recovered from the reconstructed densities should land
     near the Bayes boundary between the class means *)
  let rng = Rng.create ~seed:21 () in
  let p = Perturb.laplace_for_gamma ~binning:bins ~gamma:19. in
  let observe mean n =
    let counts = Array.make 10 0 in
    for _ = 1 to n do
      let v = Dist.normal rng ~mean ~std:1.0 in
      let y = Perturb.randomize p rng v in
      counts.(y) <- counts.(y) + 1
    done;
    (Perturb.reconstruct p ~counts).Perturb.density
  in
  let class0 = observe 2.5 20_000 and class1 = observe 7.5 20_000 in
  let profiles =
    [
      { Split.density = class0; prior = 0.5 };
      { Split.density = class1; prior = 0.5 };
    ]
  in
  match Split.best_split ~binning:bins profiles with
  | None -> Alcotest.fail "expected a split"
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "threshold %.1f near 5" s.Split.threshold)
        true
        (s.Split.threshold >= 4. && s.Split.threshold <= 6.);
      Alcotest.(check bool) "strong separation" true (s.Split.score > 0.3)

let qcheck_tests =
  let open QCheck in
  let arb_profiles =
    let gen =
      Gen.(
        let* k = int_range 2 4 in
        let* raw_priors = array_size (return k) (float_range 0.1 1.) in
        let prior_total = Array.fold_left ( +. ) 0. raw_priors in
        let* densities =
          array_size (return k) (array_size (return 10) (float_range 0.01 1.))
        in
        return
          (List.init k (fun c ->
               let total = Array.fold_left ( +. ) 0. densities.(c) in
               {
                 Split.density = Array.map (fun v -> v /. total) densities.(c);
                 prior = raw_priors.(c) /. prior_total;
               })))
    in
    make ~print:(fun p -> Printf.sprintf "<%d classes>" (List.length p)) gen
  in
  [
    Test.make ~name:"scores are non-negative and bounded by parent impurity"
      ~count:200 arb_profiles (fun profiles ->
        let parent =
          Split.impurity Split.Gini
            (Array.of_list (List.map (fun c -> c.Split.prior) profiles))
        in
        List.for_all
          (fun s -> s.Split.score >= 0. && s.Split.score <= parent +. 1e-9)
          (Split.splits ~binning:bins profiles));
    Test.make ~name:"left mass is increasing along boundaries" ~count:200
      arb_profiles (fun profiles ->
        let ss = Split.splits ~binning:bins profiles in
        let rec increasing = function
          | a :: (b :: _ as rest) ->
              a.Split.left_mass <= b.Split.left_mass +. 1e-9 && increasing rest
          | _ -> true
        in
        increasing ss);
  ]

let suite =
  [
    Alcotest.test_case "impurity values" `Quick test_impurity_values;
    Alcotest.test_case "perfectly separable" `Quick test_perfectly_separable;
    Alcotest.test_case "identical classes" `Quick test_identical_classes_no_split;
    Alcotest.test_case "single class" `Quick test_single_class_no_split;
    Alcotest.test_case "permutation invariance" `Quick test_class_permutation_invariance;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "end-to-end through channel" `Slow test_end_to_end_through_channel;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
