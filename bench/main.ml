(* Benchmark & experiment harness.

   Running `dune exec bench/main.exe` regenerates every table and figure of
   the reconstructed evaluation (T1-T3, F1-F5; see DESIGN.md §3 and
   EXPERIMENTS.md) and then runs the Bechamel micro-benchmarks (B1-B3).
   Pass `--tables-only` to skip the micro-benchmarks. *)

open Ppdm
open Ppdm_prng
open Ppdm_data
open Ppdm_mining
open Ppdm_runtime

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------- machine-readable measurements *)

(* Every timed section also records Benchdata measurements; at exit they
   are written as BENCH_<section>.json next to the human tables (or as
   one aggregate file with --json FILE).  This is the bench history the
   regression gate (`ppdm bench-diff`) runs on. *)
let measurements : Ppdm_obs.Benchdata.measurement list ref = ref []

let emit ~section ~name ?(jobs = 1) ~ns_per_op ~throughput () =
  measurements :=
    { Ppdm_obs.Benchdata.section; name; jobs; ns_per_op; throughput }
    :: !measurements

let write_measurements ~json_dir ~json_out =
  let ms = List.rev !measurements in
  if ms <> [] then begin
    match json_out with
    | Some path ->
        Ppdm_obs.Benchdata.write_file path ms;
        Printf.eprintf "bench: wrote %d measurement(s) to %s\n"
          (List.length ms) path
    | None ->
        let sections =
          List.sort_uniq compare
            (List.map (fun m -> m.Ppdm_obs.Benchdata.section) ms)
        in
        List.iter
          (fun section ->
            let path =
              Filename.concat json_dir
                (Printf.sprintf "BENCH_%s.json" section)
            in
            Ppdm_obs.Benchdata.write_file path
              (List.filter
                 (fun m -> m.Ppdm_obs.Benchdata.section = section)
                 ms);
            Printf.eprintf "bench: wrote %s\n" path)
          sections
  end

let fopt = function None -> "   --  " | Some v -> Printf.sprintf "%7.3f" v

(* Proportional ASCII bar for figure-style series. *)
let bar ?(width = 32) value max_value =
  if max_value <= 0. then ""
  else begin
    let n =
      max 0 (min width (int_of_float (Float.round (value /. max_value *. float_of_int width))))
    in
    String.make n '#'
  end

let t1 () =
  header "T1  Breach-prevention thresholds: max gamma for (rho1 -> rho2)";
  Printf.printf "%-8s %-8s %-10s\n" "rho1" "rho2" "max gamma";
  List.iter
    (fun (r : Experiment.t1_row) ->
      Printf.printf "%-8.2f %-8.2f %-10.2f\n" r.rho1 r.rho2 r.gamma_limit)
    (Experiment.t1_breach_limits ())

let t2 () =
  header "T2  Cut-and-paste privacy profile (prior 5%, universe 1000)";
  Printf.printf "%-4s %-6s %-4s %-10s %-12s %-10s\n" "K" "rho" "m" "kept" "posterior" "gamma";
  List.iter
    (fun (r : Experiment.t2_row) ->
      Printf.printf "%-4d %-6.2f %-4d %-10.3f %-12.3f %s\n" r.cutoff r.rho r.size
        r.kept_fraction r.worst_posterior
        (if r.gamma = infinity then "inf" else Printf.sprintf "%.2f" r.gamma))
    (Experiment.t2_cut_and_paste ())

let t3 () =
  header "T3  Optimized select-a-size vs cut-and-paste (prior 5%, N=100k)";
  Printf.printf "%-4s %-7s %-8s %-9s %-10s %-9s %-9s %-9s %-9s\n" "m" "gamma"
    "sas_rho" "sas_kept" "posterior" "cp_kept" "sig(k1)" "sig(k2)" "sig(k3)";
  List.iter
    (fun (r : Experiment.t3_row) ->
      Printf.printf "%-4d %-7.1f %-8.4f %-9.3f %-10.3f %s %-9.5f %-9.5f %-9.5f\n"
        r.size r.gamma_budget r.sas_rho r.sas_kept r.sas_posterior
        (fopt r.cp_kept) r.sigma_k1 r.sigma_k2 r.sigma_k3)
    (Experiment.t3_operator_comparison ())

let f1 () =
  header "F1  Predicted sigma of the support estimator vs true support (m=5, gamma=19, N=100k)";
  Printf.printf "%-4s %-10s %-10s\n" "k" "support" "sigma";
  List.iter
    (fun (p : Experiment.f1_point) ->
      Printf.printf "%-4d %-10.4f %-10.6f\n" p.k p.support p.sigma)
    (Experiment.f1_sigma_vs_support ())

let f2 () =
  header "F2  Lowest discoverable support vs privacy level (N=100k)";
  let points = Experiment.f2_discoverable_vs_gamma () in
  let top =
    List.fold_left (fun m (p : Experiment.f2_point) -> Float.max m p.discoverable) 0. points
  in
  Printf.printf "%-4s %-4s %-8s %-14s\n" "m" "k" "gamma" "discoverable";
  List.iter
    (fun (p : Experiment.f2_point) ->
      Printf.printf "%-4d %-4d %-8.1f %-14.5f %s\n" p.size p.k p.gamma
        p.discoverable (bar p.discoverable top))
    points

let f3 () =
  header "F3  Predicted vs empirical sigma (Monte Carlo, planted supports)";
  Printf.printf "%-4s %-9s %-11s %-11s %-11s %-7s\n" "k" "support" "predicted"
    "empirical" "mean_est" "trials";
  List.iter
    (fun (r : Experiment.f3_row) ->
      Printf.printf "%-4d %-9.3f %-11.5f %-11.5f %-11.5f %-7d\n" r.k r.support
        r.predicted_sigma r.empirical_sigma r.mean_estimate r.trials)
    (Experiment.f3_sigma_validation ())

let f4 () =
  header "F4  Privacy-preserving Apriori accuracy (Quest 100k, max itemset size 3)";
  Printf.printf "%-7s %-9s %-9s %-6s %-6s %-6s\n" "gamma" "minsup" "frequent" "TP" "FP" "drops";
  List.iter
    (fun (r : Experiment.f4_row) ->
      Printf.printf "%-7.0f %-9.3f %-9d %-6d %-6d %-6d\n" r.gamma_budget
        r.min_support r.true_frequent r.true_positives r.false_positives
        r.false_drops)
    (Experiment.f4_mining_accuracy ())

let f5 () =
  header "F5  Posteriors never exceed the amplification ceiling (m=5, gamma=19)";
  Printf.printf "%-9s %-11s %-11s %-9s %s\n" "prior" "analytic" "empirical" "ceiling" "ok";
  List.iter
    (fun (p : Experiment.f5_point) ->
      Printf.printf "%-9.4f %-11.4f %-11.4f %-9.4f %s\n" p.prior
        p.analytic_posterior p.empirical_posterior p.bound
        (if p.empirical_posterior <= p.bound +. 0.05 then "yes" else "VIOLATION"))
    (Experiment.f5_bound_validation ())

let a1 () =
  header "A1  Ablation: optimized select-a-size vs randomized response at matched gamma";
  Printf.printf "%-4s %-7s %-8s %-10s %-10s %-9s %-9s\n" "m" "gamma" "rr_eps"
    "sas_sigma" "rr_sigma" "sas_kept" "rr_kept";
  List.iter
    (fun (r : Experiment.a1_row) ->
      Printf.printf "%-4d %-7.0f %-8.3f %-10.5f %-10.5f %-9.3f %-9.3f\n" r.size
        r.gamma r.rr_epsilon r.sas_sigma_k2 r.rr_sigma_k2 r.sas_kept r.rr_kept)
    (Experiment.a1_rr_comparison ())

let a2 () =
  header "A2  Ablation: sigma-slack exploration knob (Quest 100k, gamma=49, minsup 5%)";
  Printf.printf "%-7s %-6s %-6s %-7s %-9s\n" "slack" "TP" "FP" "drops" "explored";
  List.iter
    (fun (r : Experiment.a2_row) ->
      Printf.printf "%-7.1f %-6d %-6d %-7d %-9d\n" r.sigma_slack
        r.true_positives r.false_positives r.false_drops r.explored)
    (Experiment.a2_slack_ablation ())

let a4 () =
  header "A4  Ablation: inversion vs EM support recovery (planted 10%, m=5)";
  Printf.printf "%-8s %-10s %-10s %-12s %-7s\n" "N" "inv_rmse" "em_rmse"
    "inv_infeas" "trials";
  List.iter
    (fun (r : Experiment.a4_row) ->
      Printf.printf "%-8d %-10.5f %-10.5f %-12d %-7d\n" r.count r.inv_rmse
        r.em_rmse r.inv_infeasible r.trials)
    (Experiment.a4_inversion_vs_em ())

let e1 () =
  header "E1  Extension: generic channel privacy/accuracy frontier (numeric, 16 bins, N=30k)";
  Printf.printf "%-7s %-9s %-9s %-12s %-10s\n" "alpha" "gamma" "epsilon" "post@5%" "rmse";
  let rows = Experiment.e1_channel_tradeoff () in
  let top =
    List.fold_left (fun m (r : Experiment.e1_row) -> Float.max m r.reconstruction_rmse) 0. rows
  in
  List.iter
    (fun (r : Experiment.e1_row) ->
      Printf.printf "%-7.2f %-9.2f %-9.3f %-12.3f %-10.5f %s\n" r.alpha r.gamma
        r.epsilon r.posterior_bound r.reconstruction_rmse
        (bar r.reconstruction_rmse top))
    rows

(* ------------------------------------------------- Bechamel micro-benches *)

let run_benchmarks ~section tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with Some [ est ] -> est | _ -> Float.nan
      in
      if Float.is_finite ns && ns > 0. then
        emit ~section ~name ~ns_per_op:ns ~throughput:(1e9 /. ns) ();
      if ns > 1e6 then Printf.printf "  %-44s %10.3f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "  %-44s %10.3f us/run\n" name (ns /. 1e3)
      else Printf.printf "  %-44s %10.1f ns/run\n" name ns)
    (List.sort compare rows)

let b1 () =
  header "B1  Randomization throughput (universe 10k)";
  let universe = 10_000 in
  let mk_tx size =
    let rng = Rng.create ~seed:1 () in
    Itemset.of_sorted_array_unchecked (Dist.sample_distinct rng ~k:size ~bound:universe)
  in
  let bench_op name scheme size =
    let tx = mk_tx size in
    let rng = Rng.create ~seed:2 () in
    Bechamel.Test.make
      ~name:(Printf.sprintf "%s m=%d" name size)
      (Bechamel.Staged.stage (fun () -> ignore (Randomizer.apply scheme rng tx)))
  in
  let tests =
    List.concat_map
      (fun size ->
        let d = Optimizer.design ~m:size ~gamma:19. Optimizer.Max_kept in
        [
          bench_op "uniform" (Randomizer.uniform ~universe ~p_keep:0.5 ~p_add:0.001) size;
          bench_op "cut-and-paste" (Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.001) size;
          bench_op "optimized-sas"
            (Randomizer.select_a_size ~universe ~size ~keep_dist:d.Optimizer.dist
               ~rho:d.Optimizer.rho)
            size;
        ])
      [ 5; 10 ]
  in
  run_benchmarks ~section:"b1" (Bechamel.Test.make_grouped ~name:"randomize" tests)

let b2 () =
  header "B2  Miner runtime: Apriori vs FP-growth vs Eclat (Quest, 5k transactions)";
  let db = Experiment.quest_db ~count:5_000 () in
  let tests =
    List.concat_map
      (fun min_support ->
        [
          Bechamel.Test.make
            ~name:(Printf.sprintf "apriori minsup=%.3f" min_support)
            (Bechamel.Staged.stage (fun () -> ignore (Apriori.mine db ~min_support ~max_size:3)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "fp-growth minsup=%.3f" min_support)
            (Bechamel.Staged.stage (fun () -> ignore (Fptree.mine db ~min_support ~max_size:3)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "eclat minsup=%.3f" min_support)
            (Bechamel.Staged.stage (fun () -> ignore (Eclat.mine db ~min_support ~max_size:3)));
        ])
      [ 0.05; 0.02; 0.01 ]
  in
  run_benchmarks ~section:"b2" (Bechamel.Test.make_grouped ~name:"mine" tests)

let a3 () =
  header "A3  Ablation: trie vs dense-bitset candidate counting (universe 150)";
  let db = Experiment.quest_db ~count:5_000 () in
  (* restrict to a dense sub-universe so bitsets make sense *)
  let width = Db.universe db in
  let dense = Array.map (Bitset.of_itemset ~width) (Db.transactions db) in
  let candidates =
    List.filteri (fun i _ -> i < 50)
      (List.map fst (Apriori.mine db ~min_support:0.01 ~max_size:2))
  in
  let dense_candidates = List.map (Bitset.of_itemset ~width) candidates in
  let tests =
    [
      Bechamel.Test.make ~name:"trie counting (50 candidates)"
        (Bechamel.Staged.stage (fun () ->
             ignore (Count.support_counts db candidates)));
      Bechamel.Test.make ~name:"bitset counting (50 candidates)"
        (Bechamel.Staged.stage (fun () ->
             List.iter
               (fun c ->
                 let acc = ref 0 in
                 Array.iter (fun tx -> if Bitset.subset c tx then incr acc) dense;
                 ignore !acc)
               dense_candidates));
    ]
  in
  run_benchmarks ~section:"a3" (Bechamel.Test.make_grouped ~name:"counting" tests)

let b3 () =
  header "B3  Estimator cost vs itemset size (m=8, 20k transactions)";
  let universe = 500 and size = 8 and count = 20_000 in
  let rng = Rng.create ~seed:3 () in
  let db = Ppdm_datagen.Simple.fixed_size rng ~universe ~size ~count in
  let d = Optimizer.design ~m:size ~gamma:19. Optimizer.Max_kept in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:d.Optimizer.dist
      ~rho:d.Optimizer.rho
  in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let tests =
    List.map
      (fun k ->
        let itemset = Itemset.of_list (List.init k (fun i -> i * 2)) in
        Bechamel.Test.make
          ~name:(Printf.sprintf "estimate k=%d" k)
          (Bechamel.Staged.stage (fun () ->
               ignore (Estimator.estimate ~scheme ~data ~itemset))))
      [ 1; 2; 3; 4; 5; 6 ]
  in
  run_benchmarks ~section:"b3" (Bechamel.Test.make_grouped ~name:"estimate" tests)

let b4 () =
  header "B4  Parallel runtime scaling: randomize + candidate counting (Quest 100k)";
  Printf.printf "(%d core(s) visible to the OCaml runtime)\n"
    (Domain.recommended_domain_count ());
  let db = Experiment.quest_db ~count:100_000 () in
  let universe = Db.universe db in
  let scheme = Randomizer.uniform ~universe ~p_keep:0.5 ~p_add:0.01 in
  (* Candidates: the frequent pairs of the raw database; they get counted
     on the randomized output, which is the miner's per-level hot loop. *)
  let candidates = List.map fst (Apriori.mine db ~min_support:0.05 ~max_size:2) in
  let work jobs =
    Pool.with_pool ~jobs (fun pool ->
        let rng = Rng.create ~seed:99 () in
        let t0 = Unix.gettimeofday () in
        let tagged = Parallel.randomize_db_tagged pool scheme rng db in
        let noisy = Db.create ~universe (Array.map snd tagged) in
        let counts = Parallel.support_counts pool noisy candidates in
        (Unix.gettimeofday () -. t0, tagged, counts))
  in
  let same_tagged a b =
    Array.length a = Array.length b
    && begin
         let ok = ref true in
         Array.iteri
           (fun i (s, y) ->
             let s', y' = b.(i) in
             if s <> s' || not (Itemset.equal y y') then ok := false)
           a;
         !ok
       end
  in
  let same_counts a b =
    List.length a = List.length b
    && List.for_all2
         (fun (s, c) (s', c') -> Itemset.equal s s' && c = c')
         a b
  in
  (* Warm-up run so domain spawning and the quest cache are off the clock. *)
  ignore (work 1);
  let base_dt, base_tagged, base_counts = work 1 in
  let txs = 100_000. in
  let record jobs dt =
    emit ~section:"b4" ~name:"randomize+count" ~jobs
      ~ns_per_op:(dt *. 1e9 /. txs)
      ~throughput:(txs /. Float.max 1e-9 dt) ()
  in
  record 1 base_dt;
  Printf.printf "%-6s %-10s %-9s %s\n" "jobs" "seconds" "speedup"
    "output identical to jobs=1";
  Printf.printf "%-6d %-10.3f %-9s %s\n" 1 base_dt "1.00x" "-";
  List.iter
    (fun jobs ->
      let dt, tagged, counts = work jobs in
      record jobs dt;
      Printf.printf "%-6d %-10.3f %-9s %s\n" jobs dt
        (Printf.sprintf "%.2fx" (base_dt /. dt))
        (if same_tagged tagged base_tagged && same_counts counts base_counts
         then "yes"
         else "NO — DETERMINISM VIOLATION"))
    [ 2; 4; 8 ]

let b5 () =
  header "B5  Instrumentation report: metrics over a private-mining run (jobs=4)";
  let db = Experiment.quest_db ~count:20_000 () in
  let universe = Db.universe db in
  let scheme = Randomizer.uniform ~universe ~p_keep:0.5 ~p_add:0.01 in
  (* Start from a clean slate so only this section's work shows up, and
     leave metrics disabled again so the other sections stay uninstrumented. *)
  Ppdm_obs.Metrics.reset ();
  Ppdm_obs.Span.reset ();
  Ppdm_obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Ppdm_obs.Metrics.set_enabled false;
      (* Observability reports go to stderr, matching the CLI's --stats
         contract: stdout stays reserved for the benchmark tables. *)
      prerr_string (Ppdm_obs.Report.to_string Ppdm_obs.Report.Human);
      flush stderr)
    (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          let rng = Rng.create ~seed:7 () in
          let tagged = Parallel.randomize_db_tagged pool scheme rng db in
          let noisy = Db.create ~universe (Array.map snd tagged) in
          ignore (Parallel.apriori_mine pool noisy ~min_support:0.05 ~max_size:3);
          let itemset = Itemset.of_list [ 0; 1 ] in
          let stream = Parallel.observe_all pool ~scheme ~itemset tagged in
          ignore (Stream.estimate stream)))

let b6 () =
  header "B6  Verification harness: ppdm_check selftest cost (count=20)";
  let t0 = Unix.gettimeofday () in
  let report = Ppdm_check.Selftest.run ~count:20 () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-28s %d\n" "checks passed" report.Ppdm_check.Selftest.passed;
  Printf.printf "%-28s %d\n" "checks failed" report.Ppdm_check.Selftest.failed;
  Printf.printf "%-28s %.2f\n" "wall seconds" dt;
  let checks =
    report.Ppdm_check.Selftest.passed + report.Ppdm_check.Selftest.failed
  in
  let per_sec = float_of_int checks /. Float.max 1e-9 dt in
  Printf.printf "%-28s %.1f\n" "checks per second" per_sec;
  if checks > 0 then
    emit ~section:"b6" ~name:"selftest"
      ~ns_per_op:(dt *. 1e9 /. float_of_int checks)
      ~throughput:per_sec ()

let b7 () =
  header "B7  Counting engines: trie vs vertical vs eclat (QUEST dense & sparse)";
  (* Two ends of the density spectrum: a small universe where most items
     go to bitmaps, and a wide sparse one where most stay tid arrays. *)
  let quest ~universe ~avg =
    let rng = Rng.create ~seed:11 () in
    Ppdm_datagen.Quest.generate rng
      {
        Ppdm_datagen.Quest.default with
        universe;
        n_transactions = 5_000;
        avg_transaction_size = avg;
      }
  in
  let datasets =
    [ ("dense", quest ~universe:100 ~avg:20.); ("sparse", quest ~universe:2_000 ~avg:5.) ]
  in
  let min_support = 0.02 in
  let tests =
    List.concat_map
      (fun (label, db) ->
        let vt = Vertical.load db in
        let scratch = Vertical.make_scratch vt in
        let frequent1 =
          List.map fst (Apriori.mine db ~min_support ~max_size:1)
        in
        let candidates = Apriori.candidates_from ~frequent:frequent1 ~size:2 in
        Printf.printf
          "  [%s] universe=%d density=%.4f level-2 candidates=%d tid-sets: %d \
           dense / %d sparse\n"
          label (Db.universe db) (Db.density db) (List.length candidates)
          (Vertical.dense_items vt) (Vertical.sparse_items vt);
        [
          Bechamel.Test.make
            ~name:(Printf.sprintf "%s level-2 trie" label)
            (Bechamel.Staged.stage (fun () ->
                 ignore (Count.support_counts db candidates)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "%s level-2 vertical" label)
            (Bechamel.Staged.stage (fun () ->
                 ignore (Vertical.support_counts ~scratch vt candidates)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "%s apriori trie" label)
            (Bechamel.Staged.stage (fun () ->
                 ignore
                   (Apriori.mine ~counter:Apriori.Trie db ~min_support
                      ~max_size:3)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "%s apriori vertical" label)
            (Bechamel.Staged.stage (fun () ->
                 ignore
                   (Apriori.mine ~counter:Apriori.Vertical db ~min_support
                      ~max_size:3)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "%s eclat" label)
            (Bechamel.Staged.stage (fun () ->
                 ignore (Eclat.mine db ~min_support ~max_size:3)));
        ])
      datasets
  in
  run_benchmarks ~section:"b7" (Bechamel.Test.make_grouped ~name:"engines" tests)

let b8 () =
  header "B8  Ingest service: loopback throughput vs batch size and shard count";
  (* A fixed pre-randomized dataset streamed over real loopback sockets by
     two client domains; the clock covers connect, handshake, streaming,
     the per-session sync barrier, and the final flushed fold.  The batch
     knob trades folder wake-ups against latency; shards add folder
     parallelism (each shard owns one accumulator and one domain). *)
  let universe = 200 and size = 5 and count = 20_000 in
  let scheme = Randomizer.uniform ~universe ~p_keep:0.7 ~p_add:0.02 in
  let rng = Rng.create ~seed:31 () in
  let db = Ppdm_datagen.Simple.fixed_size rng ~universe ~size ~count in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let itemsets = [ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 2 ] ] in
  let clients = 2 in
  let run ~shards ~batch =
    let server =
      Ppdm_server.Serve.start
        {
          (Ppdm_server.Serve.default_config ~scheme ~itemsets) with
          jobs = clients;
          shards;
          batch;
        }
    in
    let port = Ppdm_server.Serve.port server in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init clients (fun i ->
          Domain.spawn (fun () ->
              let c = Ppdm_server.Client.connect ~port () in
              Fun.protect
                ~finally:(fun () -> Ppdm_server.Client.close c)
                (fun () ->
                  ignore
                    (Ppdm_server.Client.handshake c ~scheme ~sizes:[ size ] ());
                  let lo = i * count / clients
                  and hi = (i + 1) * count / clients in
                  for j = lo to hi - 1 do
                    let sz, y = data.(j) in
                    Ppdm_server.Client.report c ~size:sz y
                  done;
                  (* Round-trip: every report above reached the shard
                     queues before this client counts itself done. *)
                  ignore (Ppdm_server.Client.snapshot c ~flush:false))))
    in
    List.iter Domain.join domains;
    ignore (Ppdm_server.Serve.snapshot_estimates server ~flush:true);
    let dt = Unix.gettimeofday () -. t0 in
    let stats = Ppdm_server.Serve.stop server in
    (dt, stats.Ppdm_server.Serve.reports)
  in
  (* Warm-up run so domain spawning and allocation are off the clock. *)
  ignore (run ~shards:1 ~batch:64);
  Printf.printf "%-8s %-8s %-10s %-12s %s\n" "shards" "batch" "seconds"
    "reports/s" "folded";
  List.iter
    (fun shards ->
      List.iter
        (fun batch ->
          let dt, folded = run ~shards ~batch in
          let per_sec = float_of_int folded /. Float.max 1e-9 dt in
          emit ~section:"b8"
            ~name:(Printf.sprintf "ingest/shards=%d/batch=%d" shards batch)
            ~jobs:shards
            ~ns_per_op:(dt *. 1e9 /. float_of_int folded)
            ~throughput:per_sec ();
          Printf.printf "%-8d %-8d %-10.3f %-12.0f %d\n" shards batch dt
            per_sec folded)
        [ 1; 64; 1024 ])
    [ 1; 2; 4 ]

let b9 () =
  header "B9  Sampled counting: word-window sample vs exact vertical (QUEST dense, 20k)";
  (* The hot loop sampling accelerates is per-level candidate counting,
     so the kernel comparison holds the prepared candidate set fixed and
     times only the tid-window scan: one full-range count_into for the
     exact engine against the plan's runs for each fraction.  The mined
     end-to-end output at F = 1.0 must stay byte-identical to exact. *)
  let rng = Rng.create ~seed:13 () in
  let db =
    Ppdm_datagen.Quest.generate rng
      {
        Ppdm_datagen.Quest.default with
        universe = 100;
        n_transactions = 20_000;
        avg_transaction_size = 20.;
      }
  in
  let vt = Vertical.load db in
  let scratch = Vertical.make_scratch vt in
  let word_count = Vertical.word_count vt in
  let min_support = 0.02 in
  let frequent1 = List.map fst (Apriori.mine db ~min_support ~max_size:1) in
  let candidates = Apriori.candidates_from ~frequent:frequent1 ~size:2 in
  let prepared = Vertical.prepare candidates in
  Printf.printf "  transactions=%d words=%d level-2 candidates=%d\n"
    (Vertical.length vt) word_count (List.length candidates);
  (* Best of several reps of an inner loop: immune to scheduler blips at
     these sub-millisecond scales. *)
  let time f =
    let inner = 20 and reps = 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to inner do
        f ()
      done;
      best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int inner)
    done;
    !best
  in
  let exact_dt =
    time (fun () ->
        ignore
          (Vertical.count_into ~scratch vt ~word_lo:0 ~word_hi:word_count
             prepared))
  in
  emit ~section:"b9" ~name:"count/exact" ~ns_per_op:(exact_dt *. 1e9)
    ~throughput:(1. /. exact_dt) ();
  Printf.printf "%-10s %-8s %-12s %-9s %s\n" "fraction" "words" "seconds"
    "speedup" "runs";
  Printf.printf "%-10s %-8d %-12.6f %-9s %s\n" "exact" word_count exact_dt
    "1.00x" "-";
  List.iter
    (fun fraction ->
      let plan =
        Sampled.plan ~n:(Vertical.length vt) ~word_count ~fraction ~seed:17 ()
      in
      let dt = time (fun () -> ignore (Sampled.raw_counts ~scratch vt plan prepared)) in
      let words =
        Array.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 plan.Sampled.runs
      in
      emit ~section:"b9"
        ~name:(Printf.sprintf "count/sampled F=%g" fraction)
        ~ns_per_op:(dt *. 1e9) ~throughput:(1. /. dt) ();
      Printf.printf "%-10g %-8d %-12.6f %-9s %d\n" fraction words dt
        (Printf.sprintf "%.2fx" (exact_dt /. dt))
        (Array.length plan.Sampled.runs))
    [ 1.0; 0.5; 0.1; 0.02 ];
  (* End-to-end miner: level 1 stays exact and candidate generation is
     shared, so the whole-run speedup is smaller than the kernel's. *)
  let mine_exact =
    time (fun () ->
        ignore (Apriori.mine ~counter:Apriori.Vertical db ~min_support ~max_size:3))
  in
  let mine_sampled =
    time (fun () ->
        ignore
          (Apriori.mine
             ~counter:(Apriori.Sampled { fraction = 0.1; seed = 17 })
             db ~min_support ~max_size:3))
  in
  emit ~section:"b9" ~name:"mine/exact" ~ns_per_op:(mine_exact *. 1e9)
    ~throughput:(1. /. mine_exact) ();
  emit ~section:"b9" ~name:"mine/sampled F=0.1" ~ns_per_op:(mine_sampled *. 1e9)
    ~throughput:(1. /. mine_sampled) ();
  Printf.printf "full mine:   exact %.4fs   sampled F=0.1 %.4fs   (%.2fx)\n"
    mine_exact mine_sampled (mine_exact /. mine_sampled);
  let identical =
    Apriori.mine ~counter:Apriori.Vertical db ~min_support ~max_size:3
    = Apriori.mine
        ~counter:(Apriori.Sampled { fraction = 1.0; seed = 17 })
        db ~min_support ~max_size:3
  in
  Printf.printf "sampled F=1.0 output identical to exact: %s\n"
    (if identical then "yes" else "NO — EXACTNESS VIOLATION")

let b10 () =
  header
    "B10 Scaling efficiency: 2-D grid counting, chunked vs stealing (QUEST)";
  Printf.printf
    "(%d core(s) visible to the OCaml runtime; on a single-core box only\n\
    \ determinism is demonstrable here — speedup needs a multicore run)\n"
    (Domain.recommended_domain_count ());
  let quest ~universe ~avg =
    let rng = Rng.create ~seed:11 () in
    Ppdm_datagen.Quest.generate rng
      {
        Ppdm_datagen.Quest.default with
        universe;
        n_transactions = 5_000;
        avg_transaction_size = avg;
      }
  in
  (* Transactions sorted big-first: item occurrences pile into the low
     tid windows, so per-cell sparse-probe cost falls off steeply along
     the word axis — the skewed load shape stealing exists for. *)
  let skewed db =
    let txs = Array.copy (Db.transactions db) in
    Array.sort
      (fun a b -> compare (Itemset.cardinal b) (Itemset.cardinal a))
      txs;
    Db.create ~universe:(Db.universe db) txs
  in
  let datasets =
    [
      ("dense", quest ~universe:100 ~avg:20.);
      ("sparse", quest ~universe:2_000 ~avg:5.);
      ("skewed", skewed (quest ~universe:2_000 ~avg:5.));
    ]
  in
  (* Best of several reps of an inner loop, as in B9. *)
  let time f =
    let inner = 10 and reps = 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to inner do
        f ()
      done;
      best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int inner)
    done;
    !best
  in
  let min_support = 0.02 in
  List.iter
    (fun (label, db) ->
      let vt = Vertical.load db in
      let frequent1 = List.map fst (Apriori.mine db ~min_support ~max_size:1) in
      let candidates = Apriori.candidates_from ~frequent:frequent1 ~size:2 in
      let reference = Vertical.support_counts vt candidates in
      Printf.printf "  [%s] words=%d level-2 candidates=%d\n" label
        (Vertical.word_count vt) (List.length candidates);
      Printf.printf "  %-10s %-6s %-12s %-9s %s\n" "sched" "jobs" "seconds"
        "speedup" "identical to sequential";
      (* Small cells on purpose: ~7 word windows x ~4 candidate columns
         gives the schedulers an actual grid to contend over even at this
         bench-friendly database size. *)
      let chunk = 12 and cand_chunk = 64 in
      let base = ref None in
      List.iter
        (fun (sname, sched) ->
          List.iter
            (fun jobs ->
              Pool.with_pool ~jobs (fun pool ->
                  let count () =
                    Parallel.support_counts_vertical pool ~chunk ~cand_chunk
                      ~sched vt candidates
                  in
                  let got = count () in
                  let dt = time (fun () -> ignore (count ())) in
                  if !base = None then base := Some dt;
                  emit ~section:"b10"
                    ~name:(Printf.sprintf "count/%s/%s" label sname)
                    ~jobs ~ns_per_op:(dt *. 1e9) ~throughput:(1. /. dt) ();
                  Printf.printf "  %-10s %-6d %-12.6f %-9s %s\n" sname jobs dt
                    (Printf.sprintf "%.2fx" (Option.get !base /. dt))
                    (if got = reference then "yes"
                     else "NO — DETERMINISM VIOLATION")))
            [ 1; 2; 4; 8 ])
        [ ("chunked", Pool.Chunked); ("stealing", Pool.Stealing) ])
    datasets;
  (* Kernel specialization: same dense AND/popcount loop with and without
     bounds checks, sequential, so the delta is the checks alone. *)
  let db = quest ~universe:100 ~avg:20. in
  let vt = Vertical.load db in
  let scratch = Vertical.make_scratch vt in
  let frequent1 = List.map fst (Apriori.mine db ~min_support ~max_size:1) in
  let candidates = Apriori.candidates_from ~frequent:frequent1 ~size:2 in
  let prepared = Vertical.prepare candidates in
  let safe_dt =
    time (fun () -> ignore (Vertical.count_into ~scratch vt prepared))
  in
  let unsafe_dt =
    Fun.protect
      ~finally:(fun () -> Vertical.set_unsafe_kernels false)
      (fun () ->
        Vertical.set_unsafe_kernels true;
        time (fun () -> ignore (Vertical.count_into ~scratch vt prepared)))
  in
  emit ~section:"b10" ~name:"kernels/safe" ~ns_per_op:(safe_dt *. 1e9)
    ~throughput:(1. /. safe_dt) ();
  emit ~section:"b10" ~name:"kernels/unsafe" ~ns_per_op:(unsafe_dt *. 1e9)
    ~throughput:(1. /. unsafe_dt) ();
  Printf.printf
    "  kernels (dense, sequential): safe %.6fs   unsafe %.6fs   (%.2fx)\n"
    safe_dt unsafe_dt (safe_dt /. unsafe_dt)

let b11 () =
  header "B11 Telemetry cost: scrape rendering and admin-plane ingest overhead";
  let time f =
    let inner = 10 and reps = 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to inner do
        f ()
      done;
      best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int inner)
    done;
    !best
  in
  (* Scrape cost on a deliberately populated registry: the exposition is
     rendered on demand per GET, so this prices one scrape (and one
     consumer-side validate) — work that happens on the admin loop's
     domain, never on the data path. *)
  Ppdm_obs.Metrics.reset ();
  Ppdm_obs.Window.reset ();
  Ppdm_obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Ppdm_obs.Metrics.set_enabled false;
      Ppdm_obs.Metrics.reset ();
      Ppdm_obs.Window.reset ())
    (fun () ->
      for s = 0 to 7 do
        Ppdm_obs.Metrics.gauge
          (Printf.sprintf "server.queue.depth.s%d" s)
          (float_of_int (s * 11));
        Ppdm_obs.Metrics.add
          (Printf.sprintf "pool.busy_ns.w%d" s)
          ((s + 1) * 1_000_000)
      done;
      Ppdm_obs.Exposition.note_start ~now:0 ();
      for i = 1 to 10_000 do
        Ppdm_obs.Metrics.observe "server.fold.latency_ns" (i * 97);
        Ppdm_obs.Window.observe ~now:(i * 1_000_000) "server.fold.latency_ns"
          (i * 97);
        Ppdm_obs.Window.mark ~now:(i * 1_000_000) "server.ingest" 3
      done;
      Ppdm_obs.Metrics.add "server.reports" 30_000;
      let now = 10_000 * 1_000_000 in
      let body = Ppdm_obs.Exposition.render ~now () in
      let render_dt =
        time (fun () -> ignore (Ppdm_obs.Exposition.render ~now ()))
      in
      let validate_dt =
        time (fun () ->
            match Ppdm_obs.Exposition.validate body with
            | Ok _ -> ()
            | Error e -> failwith ("b11: rendered registry invalid: " ^ e))
      in
      emit ~section:"b11" ~name:"scrape/render" ~ns_per_op:(render_dt *. 1e9)
        ~throughput:(1. /. render_dt) ();
      emit ~section:"b11" ~name:"scrape/validate"
        ~ns_per_op:(validate_dt *. 1e9) ~throughput:(1. /. validate_dt) ();
      Printf.printf
        "scrape: render %.0fus   validate %.0fus   (%d bytes, 10k-sample \
         histograms)\n"
        (render_dt *. 1e6) (validate_dt *. 1e6)
        (String.length body));
  (* Ingest throughput with the admin plane off vs on (1ms sampler — 1000x
     the default rate — plus live metrics recording on the fold path).
     This is the B8 loopback pipeline at one fixed operating point; the
     acceptance bar is an overhead within run-to-run noise. *)
  let universe = 200 and size = 5 and count = 20_000 in
  let scheme = Randomizer.uniform ~universe ~p_keep:0.7 ~p_add:0.02 in
  let rng = Rng.create ~seed:31 () in
  let db = Ppdm_datagen.Simple.fixed_size rng ~universe ~size ~count in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let itemsets = [ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 2 ] ] in
  let clients = 2 in
  let run ~admin =
    let server =
      Ppdm_server.Serve.start
        {
          (Ppdm_server.Serve.default_config ~scheme ~itemsets) with
          jobs = clients;
          shards = 2;
          batch = 256;
          admin_port = (if admin then Some 0 else None);
          sampler_period_ns = 1_000_000;
        }
    in
    let port = Ppdm_server.Serve.port server in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init clients (fun i ->
          Domain.spawn (fun () ->
              let c = Ppdm_server.Client.connect ~port () in
              Fun.protect
                ~finally:(fun () -> Ppdm_server.Client.close c)
                (fun () ->
                  ignore
                    (Ppdm_server.Client.handshake c ~scheme ~sizes:[ size ] ());
                  let lo = i * count / clients
                  and hi = (i + 1) * count / clients in
                  for j = lo to hi - 1 do
                    let sz, y = data.(j) in
                    Ppdm_server.Client.report c ~size:sz y
                  done;
                  ignore (Ppdm_server.Client.snapshot c ~flush:false))))
    in
    List.iter Domain.join domains;
    ignore (Ppdm_server.Serve.snapshot_estimates server ~flush:true);
    let dt = Unix.gettimeofday () -. t0 in
    (* one live scrape round-trip while the server is still up *)
    let scrape_dt =
      match Ppdm_server.Serve.admin_port server with
      | None -> None
      | Some aport ->
          let t0 = Unix.gettimeofday () in
          (match Ppdm_server.Admin.fetch ~port:aport "/metrics" with
          | Ok (200, _) -> ()
          | Ok (status, _) -> failwith (Printf.sprintf "b11: scrape %d" status)
          | Error e -> failwith ("b11: scrape: " ^ e));
          Some (Unix.gettimeofday () -. t0)
    in
    let stats = Ppdm_server.Serve.stop server in
    (dt, stats.Ppdm_server.Serve.reports, scrape_dt)
  in
  ignore (run ~admin:false) (* warm-up *);
  (* Best of 3: loopback runs are noisy and the question here is the
     floor cost of the telemetry, not queueing jitter. *)
  let best_run ~admin =
    let best = ref (run ~admin) in
    for _ = 2 to 3 do
      let ((dt, _, _) as r) = run ~admin in
      let bdt, _, _ = !best in
      if dt < bdt then best := r
    done;
    !best
  in
  let report label (dt, folded, scrape) =
    let per_sec = float_of_int folded /. Float.max 1e-9 dt in
    emit ~section:"b11"
      ~name:(Printf.sprintf "ingest/admin=%s" label)
      ~jobs:clients
      ~ns_per_op:(dt *. 1e9 /. float_of_int folded)
      ~throughput:per_sec ();
    Printf.printf "ingest admin=%-4s %.3fs   %.0f reports/s   folded %d%s\n"
      label dt per_sec folded
      (match scrape with
      | None -> ""
      | Some s -> Printf.sprintf "   (live scrape %.1fms)" (s *. 1e3));
    dt
  in
  let off_dt = report "off" (best_run ~admin:false) in
  (* metrics recording on but no admin plane: the --stats baseline the
     admin increment should be judged against *)
  let stats_dt =
    Ppdm_obs.Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Ppdm_obs.Metrics.set_enabled false;
        Ppdm_obs.Metrics.reset ();
        Ppdm_obs.Window.reset ())
      (fun () -> report "stats" (best_run ~admin:false))
  in
  let on_dt = report "on" (best_run ~admin:true) in
  Printf.printf
    "overhead vs off: metrics recording %+.1f%%   full admin plane %+.1f%%   \
     (admin increment over recording %+.1f%%)\n"
    ((stats_dt /. off_dt -. 1.) *. 100.)
    ((on_dt /. off_dt -. 1.) *. 100.)
    ((on_dt /. stats_dt -. 1.) *. 100.);
  print_endline
    "(loopback run-to-run noise swamps single-digit percentages; judge \
     overhead across several runs)"

let b12 () =
  header
    "B12 Columnar storage: compressed containers vs in-RAM tid-sets (QUEST)";
  (* The compressed path must buy its memory saving without giving the
     counting throughput back: level-2 counting over roaring-style
     containers against the plain dense/sparse engine on the same data,
     plus the one-off convert cost and the bytes each form keeps
     resident.  The acceptance bar is a count ratio within 2x. *)
  let quest ~universe ~n ~avg =
    let rng = Rng.create ~seed:11 () in
    Ppdm_datagen.Quest.generate rng
      {
        Ppdm_datagen.Quest.default with
        universe;
        n_transactions = n;
        avg_transaction_size = avg;
      }
  in
  let datasets =
    [
      ("dense", quest ~universe:100 ~n:20_000 ~avg:20.);
      ("sparse", quest ~universe:2_000 ~n:20_000 ~avg:5.);
    ]
  in
  let time f =
    let inner = 10 and reps = 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to inner do
        f ()
      done;
      best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int inner)
    done;
    !best
  in
  let min_support = 0.02 in
  List.iter
    (fun (label, db) ->
      let src = Filename.temp_file "ppdm_b12" ".fimi" in
      let dst = Filename.temp_file "ppdm_b12" ".ppdmc" in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ src; dst ])
        (fun () ->
          Io.write_fimi src db;
          let t0 = Unix.gettimeofday () in
          let cstats = Colfile.convert ~src ~dst () in
          let convert_dt = Unix.gettimeofday () -. t0 in
          let tx_per_sec = float_of_int (Db.length db) /. Float.max 1e-9 convert_dt in
          emit ~section:"b12"
            ~name:(Printf.sprintf "convert/%s" label)
            ~ns_per_op:(convert_dt *. 1e9) ~throughput:tx_per_sec ();
          let vt = Vertical.load db in
          let cf = Colfile.open_file dst in
          let cvt =
            Fun.protect
              ~finally:(fun () -> Colfile.close cf)
              (fun () -> Vertical.of_colfile cf)
          in
          let plain_bytes = Vertical.resident_bytes vt in
          let col_bytes = Vertical.resident_bytes cvt in
          let cs = Vertical.container_stats cvt in
          Printf.printf
            "  [%s] %d tx, %d items: %d containers (%d dense / %d sparse / \
             %d run), file %d payload bytes, convert %.3fs (%.0f tx/s)\n"
            label (Db.length db) (Db.universe db)
            (cs.Column.dense + cs.Column.sparse + cs.Column.run)
            cs.Column.dense cs.Column.sparse cs.Column.run
            cstats.Colfile.cv_payload_bytes convert_dt tx_per_sec;
          Printf.printf
            "  [%s] resident bytes: in-RAM %d, columnar %d (%.2fx smaller)\n"
            label plain_bytes col_bytes
            (float_of_int plain_bytes /. float_of_int (max 1 col_bytes));
          let frequent1 =
            List.map fst (Apriori.mine db ~min_support ~max_size:1)
          in
          let candidates = Apriori.candidates_from ~frequent:frequent1 ~size:2 in
          let prepared = Vertical.prepare candidates in
          let scratch = Vertical.make_scratch vt in
          let cscratch = Vertical.make_scratch cvt in
          let plain_dt =
            time (fun () -> ignore (Vertical.count_into ~scratch vt prepared))
          in
          let col_dt =
            time (fun () ->
                ignore (Vertical.count_into ~scratch:cscratch cvt prepared))
          in
          emit ~section:"b12"
            ~name:(Printf.sprintf "count/%s/in-ram" label)
            ~ns_per_op:(plain_dt *. 1e9) ~throughput:(1. /. plain_dt) ();
          emit ~section:"b12"
            ~name:(Printf.sprintf "count/%s/columnar" label)
            ~ns_per_op:(col_dt *. 1e9) ~throughput:(1. /. col_dt) ();
          (* memory wins nothing if the counts drift: mining from the file
             must stay byte-identical to the in-RAM engine *)
          let identical =
            Apriori.mine_vertical cvt ~min_support ~max_size:3
            = Apriori.mine ~counter:Apriori.Vertical db ~min_support ~max_size:3
          in
          Printf.printf
            "  [%s] level-2 count: in-RAM %.6fs, columnar %.6fs (%.2fx \
             of in-RAM); mined output identical: %s\n"
            label plain_dt col_dt (col_dt /. plain_dt)
            (if identical then "yes" else "NO — CORRECTNESS VIOLATION")))
    datasets

(* Wall-clock per section keeps the harness honest about its own cost. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%.1fs]\n%!" (Unix.gettimeofday () -. t0)

let sections =
  [ ("t1", t1); ("t2", t2); ("t3", t3); ("f1", f1); ("f2", f2); ("f3", f3);
    ("f4", f4); ("f5", f5); ("a1", a1); ("a2", a2); ("a4", a4); ("e1", e1);
    ("b1", b1); ("b2", b2); ("a3", a3); ("b3", b3); ("b4", b4); ("b5", b5);
    ("b6", b6); ("b7", b7); ("b8", b8); ("b9", b9); ("b10", b10);
    ("b11", b11); ("b12", b12) ]

(* Value of `--flag V` anywhere in argv, or None. *)
let argv_opt flag =
  let found = ref None in
  Array.iteri
    (fun i arg ->
      if arg = flag && i + 1 < Array.length Sys.argv then
        found := Some Sys.argv.(i + 1))
    Sys.argv;
  !found

let () =
  let tables_only = Array.exists (( = ) "--tables-only") Sys.argv in
  (* --only t1,f4,... runs just the named sections (for appending to a
     partial log or quick iteration) *)
  let only = Option.map (String.split_on_char ',') (argv_opt "--only") in
  (* --json FILE writes one aggregate measurement file (CI smoke);
     --json-dir DIR picks where the per-section BENCH_<s>.json land. *)
  let json_out = argv_opt "--json" in
  let json_dir = Option.value (argv_opt "--json-dir") ~default:"." in
  (match only with
  | Some names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) sections with
          | Some f -> timed f
          | None -> Printf.eprintf "unknown section %s\n" name)
        names
  | None ->
      List.iter timed [ t1; t2; t3; f1; f2; f3; f4; f5; a1; a2; a4; e1 ];
      if not tables_only then List.iter timed [ b1; b2; a3; b3; b4; b5; b6 ]);
  write_measurements ~json_dir ~json_out;
  print_newline ()
