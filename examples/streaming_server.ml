(* Streaming collection: the deployment shape of the randomization
   protocol.

   Clients randomize locally and report one transaction at a time; the
   server never stores the stream — it folds each report into O(k) sized
   accumulators (one per tracked itemset) and can publish support
   estimates with error bars at any moment.  This example simulates 30k
   client reports arriving in batches and prints the live estimates, then
   scales the aggregation out: the stream is fanned across a pool of
   domains (one accumulator per shard, as if each were its own ingest
   server) and the merged statistic is bit-identical to the single-server
   fold.

   The run is instrumented with ppdm_obs: ingest is wrapped in a span,
   the metrics report lands on stderr, and tracing runs in
   snapshot-and-rotate mode — at every checkpoint the timeline collected
   since the previous one is written to a fresh trace file and the rings
   are cleared, the way a long-lived server keeps traces bounded while
   never losing the current window.  So the example doubles as a demo of
   the observability layer.

   Run with:  dune exec examples/streaming_server.exe *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm
open Ppdm_runtime

(* Snapshot-and-rotate: dump the timeline gathered since the last call
   into the next numbered trace file and clear the rings.  A server calls
   this on a timer; here the stream checkpoints stand in for the timer. *)
let rotate_trace =
  let generation = ref 0 in
  let dir =
    let d = Filename.concat (Filename.get_temp_dir_name ()) "ppdm_traces" in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  fun () ->
    incr generation;
    let path = Filename.concat dir (Printf.sprintf "ingest-%03d.json" !generation) in
    Ppdm_obs.Trace.write_file path;
    Ppdm_obs.Trace.reset ();
    Printf.eprintf "trace rotated: %s\n" path

let () =
  Ppdm_obs.Metrics.set_enabled true;
  Ppdm_obs.Trace.set_enabled true;
  let universe = 300 and size = 6 and count = 30_000 in
  let rng = Rng.create ~seed:123 () in

  (* ground truth: two itemsets planted at different supports *)
  let hot = Itemset.of_list [ 10; 20 ] in
  let db = Simple.planted rng ~universe ~size ~count ~itemset:hot ~support:0.12 in
  let cold = Itemset.of_list [ 30; 40 ] in
  Printf.printf "true supports: %s %.4f | %s %.4f\n" (Itemset.to_string hot)
    (Db.support db hot) (Itemset.to_string cold) (Db.support db cold);

  let design = Optimizer.design_for_estimation ~m:size ~gamma:19. () in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:design.Optimizer.dist
      ~rho:design.Optimizer.rho
  in
  let stream = Randomizer.apply_db_tagged scheme rng db in

  (* one accumulator per itemset of interest *)
  let acc_hot = Stream.create ~scheme ~itemset:hot in
  let acc_cold = Stream.create ~scheme ~itemset:cold in
  let checkpoint n =
    let report acc =
      let e = Stream.estimate acc in
      Printf.sprintf "%s %.4f±%.4f" (Itemset.to_string (Stream.itemset acc))
        e.Estimator.support e.Estimator.sigma
    in
    Printf.printf "after %6d reports: %s | %s\n" n (report acc_hot) (report acc_cold);
    rotate_trace ()
  in
  Ppdm_obs.Span.with_ ~name:"ingest" (fun () ->
      Array.iteri
        (fun i (size, y) ->
          Stream.observe acc_hot ~size y;
          Stream.observe acc_cold ~size y;
          let seen = i + 1 in
          if seen = 1000 || seen = 5000 || seen = count then checkpoint seen)
        stream);

  (* scale-out: shard the stream across a domain pool — each shard is an
     independent ingest server with its own accumulator; Stream.merge
     folds them back into exactly the single-server statistic *)
  let jobs = 4 in
  let fanned =
    Pool.with_pool ~jobs (fun pool ->
        Parallel.observe_all pool ~scheme ~itemset:hot stream)
  in
  let merged = Stream.estimate fanned and whole = Stream.estimate acc_hot in
  Printf.printf "%d-server merge check: %.6f = %.6f -> %b (%d reports)\n" jobs
    merged.Estimator.support whole.Estimator.support
    (merged.Estimator.support = whole.Estimator.support)
    (Stream.observed fanned);

  (* final rotation captures the fan-out's pool timeline, then the
     metrics report goes to stderr, keeping stdout clean *)
  rotate_trace ();
  prerr_string (Ppdm_obs.Report.to_string Ppdm_obs.Report.Human)
