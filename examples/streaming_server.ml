(* Streaming collection: the deployment shape of the randomization
   protocol, on a real socket.

   Clients randomize locally and report one transaction at a time; the
   server never stores the stream — it folds each report into O(k) sized
   accumulators (one per tracked itemset) and can publish support
   estimates with error bars at any moment.  This example starts the
   actual ingest service ([Ppdm_server.Serve]) on a loopback TCP port,
   streams 30k randomized reports over three concurrent client
   connections speaking the length-prefixed binary protocol, pulls a live
   snapshot over the wire, and then verifies the headline guarantee
   in-process: the sharded, concurrently-ingested statistic is
   bit-identical to a single sequential fold of the same reports.

   The run is instrumented with ppdm_obs: ingest counters, queue-depth
   gauges, and batch-size histograms land in the metrics report on
   stderr; the session/fold timeline goes to a trace file — so the
   example doubles as a demo of the observability layer.

   Run with:  dune exec examples/streaming_server.exe *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm
open Ppdm_server

let () =
  Ppdm_obs.Metrics.set_enabled true;
  Ppdm_obs.Trace.set_enabled true;
  let universe = 300 and size = 6 and count = 30_000 in
  let rng = Rng.create ~seed:123 () in

  (* ground truth: two itemsets planted at different supports *)
  let hot = Itemset.of_list [ 10; 20 ] in
  let db = Simple.planted rng ~universe ~size ~count ~itemset:hot ~support:0.12 in
  let cold = Itemset.of_list [ 30; 40 ] in
  Printf.printf "true supports: %s %.4f | %s %.4f\n" (Itemset.to_string hot)
    (Db.support db hot) (Itemset.to_string cold) (Db.support db cold);

  let design = Optimizer.design_for_estimation ~m:size ~gamma:19. () in
  let scheme =
    Randomizer.select_a_size ~universe ~size ~keep_dist:design.Optimizer.dist
      ~rho:design.Optimizer.rho
  in
  (* what the clients send: randomized transactions, tagged with their
     (public) original size *)
  let stream = Randomizer.apply_db_tagged scheme rng db in

  (* the server: 2 session workers, 2 ingest shards, batched folds *)
  let server =
    Serve.start
      {
        (Serve.default_config ~scheme ~itemsets:[ hot; cold ]) with
        jobs = 2;
        shards = 2;
        batch = 128;
      }
  in
  let port = Serve.port server in
  Printf.printf "ingest server listening on 127.0.0.1:%d\n" port;

  (* three concurrent clients, each streaming a contiguous slice of the
     reports over its own connection *)
  let clients = 3 in
  let slice i =
    let lo = i * count / clients and hi = (i + 1) * count / clients in
    Array.sub stream lo (hi - lo)
  in
  let drive part () =
    let c = Client.connect ~port () in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        ignore (Client.handshake c ~scheme ~sizes:[ size ] ());
        Array.iter (fun (sz, y) -> Client.report c ~size:sz y) part;
        (* snapshot round-trip = sync barrier: the reply proves every
           report above reached the shard queues *)
        ignore (Client.snapshot c ~flush:false))
  in
  Array.init clients (fun i -> Domain.spawn (drive (slice i)))
  |> Array.iter Domain.join;

  (* a live estimate over the wire, exactly as an external client sees it *)
  let ctl = Client.connect ~port () in
  ignore (Client.handshake ctl ~sizes:[] ());
  Printf.printf "wire snapshot: %s\n" (Client.snapshot ctl ~flush:true);

  (* the headline check, in-process: sharded concurrent ingest equals one
     sequential fold of the same reports, bit for bit *)
  let served =
    match Serve.snapshot_estimates server ~flush:true with
    | (_, Some e) :: _ -> e
    | _ -> failwith "no estimate for the hot itemset"
  in
  let seq = Stream.create ~scheme ~itemset:hot in
  Array.iter (fun (sz, y) -> Stream.observe seq ~size:sz y) stream;
  let whole = Stream.estimate seq in
  Printf.printf "shard merge check: %.6f = %.6f -> %b (%d reports)\n"
    served.Estimator.support whole.Estimator.support
    (served.Estimator.support = whole.Estimator.support)
    served.Estimator.n_transactions;

  (* a client-initiated shutdown stops the accept loop and drains *)
  Client.shutdown ctl;
  Client.close ctl;
  let stats = Serve.wait server in
  Printf.printf "server stopped: %d sessions, %d reports folded\n"
    stats.Serve.sessions stats.Serve.reports;

  (* timeline to a file, metrics report to stderr — stdout stays clean *)
  let trace_path =
    Filename.concat (Filename.get_temp_dir_name ()) "ppdm-ingest-trace.json"
  in
  Ppdm_obs.Trace.write_file trace_path;
  Printf.eprintf "trace written: %s\n" trace_path;
  prerr_string (Ppdm_obs.Report.to_string Ppdm_obs.Report.Human)
