(* Parser fuzzing, on the ppdm_check generators: every input either
   parses or fails with a documented exception (Failure /
   Invalid_argument) — never Not_found, End_of_file, out-of-bounds, or
   success on nonsense.  The generators and the runner live in
   ppdm_check, so any failure here prints a seed that replays it
   (PPDM_CHECK_SEED). *)

open Ppdm_data
open Ppdm
open Ppdm_check

let with_content content f =
  let path = Filename.temp_file "ppdm_fuzz" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

(* A reader survives fuzzing when every input either parses or fails with
   a documented exception. *)
let survives reader content =
  with_content content (fun path ->
      match reader path with
      | _ -> true
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let prop name gen p =
  Alcotest.test_case name `Quick (fun () ->
      Property.assert_ok
        (Property.check ~count:(Property.scaled ~base:300) ~name gen p))

let survival_tests =
  [
    prop "Io.read_file survives random bytes" Gen.garbage_string
      (survives Io.read_file);
    prop "Io.read_file survives structured garbage" Gen.almost_db_text
      (survives Io.read_file);
    prop "Io.read_fimi survives random bytes" Gen.garbage_string
      (survives (fun p -> Io.read_fimi p));
    prop "Scheme_io.read_file survives random bytes" Gen.garbage_string
      (survives Scheme_io.read_file);
    prop "Scheme_io read+resolve survives corrupted scheme files"
      Gen.corrupt_scheme_text (fun content ->
        with_content content (fun path ->
            (* reading may succeed (the file may be syntactically valid);
               resolving must then validate the operator *)
            match Scheme_io.read_file path with
            | scheme -> (
                match Randomizer.resolve scheme ~size:3 with
                | _ -> true
                | exception Invalid_argument _ -> true
                | exception _ -> false)
            | exception Failure _ -> true
            | exception Invalid_argument _ -> true
            | exception _ -> false));
  ]

(* Round-trips: whatever the generators produce must survive
   write-then-read bit-for-bit, in each on-disk format. *)

let db_gen = Gen.db ~max_universe:12 ~max_transactions:20 ()

let roundtrip_tests =
  let open Ppdm_prng in
  let check_result name gen p =
    Alcotest.test_case name `Quick (fun () ->
        Property.assert_ok
          (Property.check_result ~count:(Property.scaled ~base:100) ~name gen p))
  in
  [
    check_result "Io write/read round-trip" db_gen (fun db ->
        with_content "" (fun path ->
            Io.write_file path db;
            let back = Io.read_file path in
            if
              Db.universe back = Db.universe db
              && Array.for_all2 Itemset.equal (Db.transactions back)
                   (Db.transactions db)
            then Ok ()
            else Error "database changed across write/read"));
    check_result "FIMI write/read round-trip" db_gen (fun db ->
        with_content "" (fun path ->
            Io.write_fimi path db;
            let back = Io.read_fimi ~universe:(Db.universe db) path in
            if
              Array.for_all2 Itemset.equal (Db.transactions back)
                (Db.transactions db)
            then Ok ()
            else Error "transactions changed across FIMI write/read"));
    check_result "Scheme_io write/read round-trip"
      (Gen.pair db_gen (Gen.int_range 0 1_000_000))
      (fun (db, key) ->
        let scheme =
          Gen.generate
            (Gen.scheme ~universe:(Db.universe db))
            (Rng.create ~seed:key ())
            ~size:4
        in
        let sizes = Scheme_io.sizes_of_db db in
        if sizes = [] then Ok ()
        else
          with_content "" (fun path ->
              Scheme_io.write_file path scheme ~sizes;
              if Randomizer.same_parameters scheme (Scheme_io.read_file path) ~sizes
              then Ok ()
              else Error "scheme parameters changed across write/read"));
  ]

let test_roundtrip_after_fuzz () =
  (* sanity: a legitimate file still parses after all that *)
  let db =
    Db.create ~universe:6
      (Array.of_list (List.map Itemset.of_list [ [ 0; 5 ]; []; [ 1; 2; 3 ] ]))
  in
  let path = Filename.temp_file "ppdm_ok" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file path db;
      Alcotest.(check int) "reads back" 3 (Db.length (Io.read_file path)))

let suite =
  [ Alcotest.test_case "legitimate file still parses" `Quick test_roundtrip_after_fuzz ]
  @ survival_tests @ roundtrip_tests
