(* The ingest service, tested at every layer: the binary message codec
   (generator-driven round-trips; strictness on truncation, trailing
   bytes, and garbage), the length-prefixed framing over real
   descriptors, the bounded ingest queues, and the server end to end
   over loopback TCP — sharded concurrent ingestion must equal a
   sequential fold bit for bit, and injected wire faults must leave the
   server serving. *)

open Ppdm_prng
open Ppdm_data
open Ppdm
open Ppdm_server
open Ppdm_check

(* ------------------------------------------------------- wire codec *)

let all_error_codes =
  [
    Wire.Frame_too_large;
    Wire.Bad_frame;
    Wire.Protocol_violation;
    Wire.Scheme_mismatch;
    Wire.Item_out_of_universe;
    Wire.Size_not_covered;
  ]

(* Every message kind, fields drawn from their full encodable ranges
   (the codec's @raise contract covers anything larger). *)
let message_gen =
  let open Gen in
  let raw =
    pair (int_range 0 7)
      (pair
         (pair (list ~max_len:5 (int_range 0 65535)) garbage_string)
         (pair
            (list ~max_len:3 (itemset ~universe:300))
            (pair (int_range 0 65535) bool)))
  in
  map
    ~print:(fun m -> Wire.message_name m)
    (fun (tag, ((sizes, text), (isets, (num, flag)))) ->
      let items =
        match isets with i :: _ -> i | [] -> Itemset.of_list []
      in
      match tag with
      | 0 -> Wire.Hello { version = num; sizes; scheme = text }
      | 1 -> Wire.Welcome { universe = num; itemsets = isets }
      | 2 -> Wire.Report { size = num; items }
      | 3 -> Wire.Snapshot_request { flush = flag }
      | 4 -> Wire.Snapshot { json = text }
      | 5 -> Wire.Shutdown
      | 6 -> Wire.Bye
      | _ ->
          Wire.Error
            {
              code = List.nth all_error_codes (num mod 6);
              detail = text;
            })
    raw

let message_equal a b =
  match (a, b) with
  | Wire.Hello h, Wire.Hello h' ->
      h.version = h'.version && h.sizes = h'.sizes && h.scheme = h'.scheme
  | Wire.Welcome w, Wire.Welcome w' ->
      w.universe = w'.universe
      && List.length w.itemsets = List.length w'.itemsets
      && List.for_all2 Itemset.equal w.itemsets w'.itemsets
  | Wire.Report r, Wire.Report r' ->
      r.size = r'.size && Itemset.equal r.items r'.items
  | Wire.Snapshot_request s, Wire.Snapshot_request s' -> s.flush = s'.flush
  | Wire.Snapshot s, Wire.Snapshot s' -> s.json = s'.json
  | Wire.Shutdown, Wire.Shutdown | Wire.Bye, Wire.Bye -> true
  | Wire.Error e, Wire.Error e' -> e.code = e'.code && e.detail = e'.detail
  | _ -> false

let test_wire_roundtrip () =
  Property.assert_ok
    (Property.check ~seed:11 ~count:500 ~name:"wire encode/decode round-trip"
       message_gen (fun m ->
         match Wire.decode (Wire.encode m) with
         | Ok m' -> message_equal m m'
         | Error _ -> false))

let test_wire_decode_total () =
  Property.assert_ok
    (Property.check ~seed:12 ~count:500 ~name:"decode never raises on garbage"
       Gen.garbage_string (fun s ->
         match Wire.decode (Bytes.of_string s) with
         | Ok _ | Error _ -> true))

(* Messages without a trailing free-text field have exactly one valid
   encoding length: every strict prefix and every padded extension must
   be rejected, not misparsed. *)
let test_wire_truncation_strict () =
  Property.assert_ok
    (Property.check ~seed:13 ~count:300 ~name:"prefixes and padding rejected"
       message_gen (fun m ->
         match m with
         | Wire.Hello _ | Wire.Snapshot _ | Wire.Error _ ->
             true (* trailing text: a prefix can be a valid shorter text *)
         | _ ->
             let b = Wire.encode m in
             let n = Bytes.length b in
             let prefixes_fail = ref true in
             for len = 0 to n - 1 do
               match Wire.decode (Bytes.sub b 0 len) with
               | Ok _ -> prefixes_fail := false
               | Error _ -> ()
             done;
             let padded = Bytes.extend b 0 1 in
             Bytes.set padded n '\x00';
             !prefixes_fail
             && (match Wire.decode padded with Ok _ -> false | Error _ -> true)))

(* ---------------------------------------------------------- framing *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let write_raw w b = ignore (Unix.write w b 0 (Bytes.length b))

let header_declaring n =
  let h = Bytes.create 4 in
  Bytes.set_int32_be h 0 (Int32.of_int n);
  h

let read_err_testable =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Framing.read_error_to_string e))
    ( = )

let test_framing_roundtrip () =
  with_pipe (fun r w ->
      Framing.write w (Bytes.of_string "hello");
      Framing.write w (Bytes.of_string "x");
      Unix.close w;
      (match Framing.read r with
      | Ok p -> Alcotest.(check string) "frame 1" "hello" (Bytes.to_string p)
      | Error e -> Alcotest.fail (Framing.read_error_to_string e));
      (match Framing.read r with
      | Ok p -> Alcotest.(check string) "frame 2" "x" (Bytes.to_string p)
      | Error e -> Alcotest.fail (Framing.read_error_to_string e));
      match Framing.read r with
      | Error Framing.Closed -> ()
      | Ok _ -> Alcotest.fail "read past the last frame"
      | Error e ->
          Alcotest.fail ("clean EOF misreported: " ^ Framing.read_error_to_string e))

let test_framing_truncations () =
  with_pipe (fun r w ->
      (* 3 of 10 declared payload bytes arrive *)
      write_raw w (header_declaring 10);
      write_raw w (Bytes.of_string "abc");
      Unix.close w;
      Alcotest.(check (result reject read_err_testable))
        "payload truncated"
        (Error (Framing.Truncated { expected = 10; got = 3 }))
        (Framing.read r));
  with_pipe (fun r w ->
      write_raw w (Bytes.of_string "ab");
      Unix.close w;
      Alcotest.(check (result reject read_err_testable))
        "header truncated"
        (Error (Framing.Truncated { expected = 4; got = 2 }))
        (Framing.read r))

let test_framing_bad_lengths () =
  with_pipe (fun r w ->
      write_raw w (header_declaring 0);
      Alcotest.(check (result reject read_err_testable))
        "zero length"
        (Error (Framing.Bad_length 0))
        (Framing.read r));
  with_pipe (fun r w ->
      write_raw w (Bytes.make 4 '\xff');
      Alcotest.(check (result reject read_err_testable))
        "negative length (garbage prefix)"
        (Error (Framing.Bad_length (-1)))
        (Framing.read r));
  with_pipe (fun r w ->
      write_raw w (header_declaring 65);
      Alcotest.(check (result reject read_err_testable))
        "over the cap"
        (Error (Framing.Too_large { declared = 65; limit = 64 }))
        (Framing.read ~max_frame:64 r));
  Alcotest.check_raises "empty payload rejected"
    (Invalid_argument "Framing.write: empty payload") (fun () ->
      with_pipe (fun _ w -> Framing.write w Bytes.empty))

(* Regression: write used to accept any payload length, so an oversized
   frame died on the peer's read cap only after the bytes were already on
   the wire.  The writer now enforces the mirrored cap up front. *)
let test_framing_write_cap () =
  Alcotest.check_raises "over the write cap"
    (Invalid_argument "Framing.write: payload length 9 exceeds cap 8")
    (fun () -> with_pipe (fun _ w -> Framing.write ~max_frame:8 w (Bytes.make 9 'x')));
  (* a raised cap lets the same payload through, symmetric with read *)
  with_pipe (fun r w ->
      Framing.write ~max_frame:16 w (Bytes.make 9 'x');
      Unix.close w;
      match Framing.read ~max_frame:16 r with
      | Ok p -> Alcotest.(check int) "frame arrives" 9 (Bytes.length p)
      | Error e -> Alcotest.fail (Framing.read_error_to_string e))

(* ------------------------------------------------------------ ingest *)

let test_ingest_fifo () =
  let q = Ingest.create ~capacity:4 in
  List.iter (fun i -> Alcotest.(check bool) "push" true (Ingest.push q i)) [ 1; 2; 3 ];
  Alcotest.(check int) "depth" 3 (Ingest.depth q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ingest.pop q);
  Ingest.done_with q;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ingest.pop q);
  Ingest.done_with q;
  Ingest.close q;
  Alcotest.(check bool) "push after close" false (Ingest.push q 9);
  Alcotest.(check (option int)) "drain after close" (Some 3) (Ingest.pop q);
  Ingest.done_with q;
  Alcotest.(check (option int)) "closed and drained" None (Ingest.pop q)

let test_ingest_batches () =
  let q = Ingest.create ~capacity:8 in
  List.iter (fun i -> ignore (Ingest.push q i)) [ 1; 2; 3; 4; 5 ];
  Ingest.close q;
  Alcotest.(check (array int)) "greedy batch up to max" [| 1; 2; 3 |]
    (Ingest.pop_batch q ~max:3 ~linger_ns:0);
  Ingest.done_with q;
  Alcotest.(check (array int)) "remainder" [| 4; 5 |]
    (Ingest.pop_batch q ~max:3 ~linger_ns:0);
  Ingest.done_with q;
  Alcotest.(check (array int)) "closed and drained" [||]
    (Ingest.pop_batch q ~max:3 ~linger_ns:0)

(* Regression for the linger wakeup: pop_batch used to broadcast not_full
   on every linger tick even when it drained nothing, a thundering-herd
   wakeup for blocked producers.  The fix signals only when space was
   actually freed — this drives a blocked producer through the lingering
   batch path and checks nothing is lost, reordered, or deadlocked. *)
let test_ingest_linger_with_blocked_producer () =
  let q = Ingest.create ~capacity:2 in
  let n = 60 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          ignore (Ingest.push q i)
        done)
  in
  let out = ref [] in
  let rec drain () =
    let batch = Ingest.pop_batch q ~max:5 ~linger_ns:2_000_000 in
    if Array.length batch > 0 then begin
      Array.iter (fun v -> out := v :: !out) batch;
      Ingest.done_with q;
      drain ()
    end
  in
  let closer =
    Domain.spawn (fun () ->
        Domain.join producer;
        Ingest.close q)
  in
  drain ();
  Domain.join closer;
  Alcotest.(check (list int)) "lingering batches lose nothing"
    (List.init n (fun i -> i + 1))
    (List.rev !out)

(* A queue bound far below the element count: the producer must block on
   the full queue and resume, with nothing lost or reordered. *)
let test_ingest_backpressure () =
  let q = Ingest.create ~capacity:2 in
  let n = 200 in
  let consumer =
    Domain.spawn (fun () ->
        let out = ref [] in
        let rec go () =
          match Ingest.pop q with
          | None -> List.rev !out
          | Some v ->
              out := v :: !out;
              if v mod 16 = 0 then Unix.sleepf 0.001;
              Ingest.done_with q;
              go ()
        in
        go ())
  in
  for i = 1 to n do
    ignore (Ingest.push q i)
  done;
  Ingest.wait_idle q;
  Ingest.close q;
  Alcotest.(check (list int)) "everything arrives in order"
    (List.init n (fun i -> i + 1))
    (Domain.join consumer)

(* ------------------------------------------------- loopback end-to-end *)

let e2e_case () =
  let db =
    Db.create ~universe:10
      (Array.init 200 (fun i ->
           Itemset.of_list [ i mod 10; ((i * 3) + 1) mod 10 ]))
  in
  let scheme = Randomizer.uniform ~universe:10 ~p_keep:0.8 ~p_add:0.1 in
  let rng = Rng.create ~seed:5 () in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let itemsets =
    [ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 2 ]; Itemset.of_list [ 7 ] ]
  in
  (scheme, itemsets, data)

let test_e2e_bit_identical () =
  let scheme, itemsets, data = e2e_case () in
  List.iter
    (fun (jobs, shards) ->
      match
        Oracle.server_matches_sequential ~jobs ~shards ~clients:3 ~scheme
          ~itemsets ~data
      with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "jobs %d, shards %d: %s" jobs shards e))
    [ (1, 1); (2, 2); (4, 4) ]

let test_fault_scenarios () =
  List.iter
    (fun (name, scenario) ->
      match scenario () with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("oversized frame", Fault.server_oversized_frame_rejected);
      ("malformed length", Fault.server_malformed_length_rejected);
      ("truncated frame", Fault.server_truncated_frame_tolerated);
      ("mid-session disconnect", Fault.server_mid_session_disconnect);
      ("scheme mismatch", Fault.server_scheme_mismatch_rejected);
      ("invalid reports", Fault.server_invalid_reports_rejected);
    ]

(* The wire snapshot is real JSON with the documented shape, before and
   after ingestion. *)
let test_snapshot_json () =
  let scheme, itemsets, data = e2e_case () in
  let server =
    Serve.start
      { (Serve.default_config ~scheme ~itemsets) with jobs = 2; shards = 2 }
  in
  Fun.protect
    ~finally:(fun () -> ignore (Serve.stop server))
    (fun () ->
      let field name = function
        | Ppdm_obs.Json.Obj fields -> List.assoc_opt name fields
        | _ -> None
      in
      let parse json =
        match Ppdm_obs.Json.parse json with
        | Ok v -> v
        | Error e -> Alcotest.fail ("snapshot does not parse: " ^ e)
      in
      let c = Client.connect ~port:(Serve.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let sizes =
            List.sort_uniq compare (Array.to_list (Array.map fst data))
          in
          ignore (Client.handshake c ~scheme ~sizes ());
          let empty = parse (Client.snapshot c ~flush:false) in
          (match field "itemsets" empty with
          | Some (Ppdm_obs.Json.List (first :: _)) ->
              Alcotest.(check (option (of_pp Fmt.nop)))
                "no support before any report" None (field "support" first);
              Alcotest.(check bool) "observed 0" true
                (field "observed" first = Some (Ppdm_obs.Json.Int 0))
          | _ -> Alcotest.fail "snapshot lacks an itemsets list");
          Array.iter (fun (sz, y) -> Client.report c ~size:sz y) data;
          let full = parse (Client.snapshot c ~flush:true) in
          Alcotest.(check bool) "universe served" true
            (field "universe" full = Some (Ppdm_obs.Json.Int 10));
          Alcotest.(check bool) "every report counted" true
            (field "reports" full
            = Some (Ppdm_obs.Json.Int (Array.length data)));
          (match field "metrics" full with
          | Some (Ppdm_obs.Json.Obj _ as m) ->
              Alcotest.(check bool) "metrics.folded counts every report" true
                (field "folded" m
                = Some (Ppdm_obs.Json.Int (Array.length data)));
              Alcotest.(check bool) "metrics.queued drained after flush" true
                (field "queued" m = Some (Ppdm_obs.Json.Int 0));
              Alcotest.(check bool) "metrics.shards reflects config" true
                (field "shards" m = Some (Ppdm_obs.Json.Int 2))
          | _ -> Alcotest.fail "snapshot lacks a metrics object");
          match field "itemsets" full with
          | Some (Ppdm_obs.Json.List (first :: _)) ->
              Alcotest.(check bool) "observed all reports" true
                (field "observed" first
                = Some (Ppdm_obs.Json.Int (Array.length data)));
              Alcotest.(check bool) "support is a float" true
                (match field "support" first with
                | Some (Ppdm_obs.Json.Float _) -> true
                | _ -> false)
          | _ -> Alcotest.fail "snapshot lacks an itemsets list"))

let suite =
  [
    Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire decode total" `Quick test_wire_decode_total;
    Alcotest.test_case "wire truncation strict" `Quick test_wire_truncation_strict;
    Alcotest.test_case "framing round-trip" `Quick test_framing_roundtrip;
    Alcotest.test_case "framing truncations" `Quick test_framing_truncations;
    Alcotest.test_case "framing bad lengths" `Quick test_framing_bad_lengths;
    Alcotest.test_case "framing write cap" `Quick test_framing_write_cap;
    Alcotest.test_case "ingest fifo" `Quick test_ingest_fifo;
    Alcotest.test_case "ingest batches" `Quick test_ingest_batches;
    Alcotest.test_case "ingest linger with blocked producer" `Quick
      test_ingest_linger_with_blocked_producer;
    Alcotest.test_case "ingest backpressure" `Quick test_ingest_backpressure;
    Alcotest.test_case "e2e bit-identical at any jobs/shards" `Quick
      test_e2e_bit_identical;
    Alcotest.test_case "fault scenarios" `Quick test_fault_scenarios;
    Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
  ]
