(* Condensed-representation tests: closed/maximal definitions checked
   against brute force on mined collections. *)

open Ppdm_data
open Ppdm_mining

let mk universe rows = Db.create ~universe (Array.of_list (List.map Itemset.of_list rows))

let toy =
  mk 5 [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 0 ]; [ 3 ]; [ 3 ]; [ 0; 1; 2; 3 ] ]

let brute_closed frequent =
  List.filter
    (fun (s, c) ->
      not
        (List.exists
           (fun (s', c') ->
             Itemset.cardinal s' > Itemset.cardinal s
             && Itemset.subset s s' && c' = c)
           frequent))
    frequent

let brute_maximal frequent =
  List.filter
    (fun (s, _) ->
      not
        (List.exists
           (fun (s', _) ->
             Itemset.cardinal s' > Itemset.cardinal s && Itemset.subset s s')
           frequent))
    frequent

let pp l = String.concat ";" (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c) l)
let sorted l = List.sort (fun (a, _) (b, _) -> Itemset.compare a b) l

let test_toy_closed_maximal () =
  let frequent = Apriori.mine toy ~min_support:0.25 in
  Alcotest.(check string) "closed = brute force" (pp (sorted (brute_closed frequent)))
    (pp (Summarize.closed frequent));
  Alcotest.(check string) "maximal = brute force" (pp (sorted (brute_maximal frequent)))
    (pp (Summarize.maximal frequent))

let test_maximal_subset_of_closed () =
  let frequent = Apriori.mine toy ~min_support:0.125 in
  let closed = Summarize.closed frequent in
  let closed_set = Hashtbl.create 16 in
  List.iter (fun (s, _) -> Hashtbl.replace closed_set s ()) closed;
  List.iter
    (fun (s, _) ->
      Alcotest.(check bool)
        (Itemset.to_string s ^ " maximal => closed")
        true (Hashtbl.mem closed_set s))
    (Summarize.maximal frequent)

let test_support_reconstruction () =
  let frequent = Apriori.mine toy ~min_support:0.125 in
  let closed = Summarize.closed frequent in
  List.iter
    (fun (s, c) ->
      Alcotest.(check (option int))
        ("support of " ^ Itemset.to_string s)
        (Some c)
        (Summarize.support_from_closed ~closed s))
    frequent;
  Alcotest.(check (option int)) "infrequent is None" None
    (Summarize.support_from_closed ~closed (Itemset.of_list [ 4 ]))

let test_empty_frequent () =
  Alcotest.(check int) "closed of []" 0 (List.length (Summarize.closed []));
  Alcotest.(check int) "maximal of []" 0 (List.length (Summarize.maximal []));
  Alcotest.(check (option int)) "support from empty closed" None
    (Summarize.support_from_closed ~closed:[] (Itemset.of_list [ 0 ]))

let test_singleton_collection () =
  let frequent = [ (Itemset.of_list [ 2 ], 5) ] in
  Alcotest.(check string) "closed is itself" (pp frequent)
    (pp (Summarize.closed frequent));
  Alcotest.(check string) "maximal is itself" (pp frequent)
    (pp (Summarize.maximal frequent));
  Alcotest.(check (option int)) "its own support" (Some 5)
    (Summarize.support_from_closed ~closed:frequent (Itemset.of_list [ 2 ]))

let test_empty_db_pipeline () =
  (* an empty database flows through mine -> closed -> maximal cleanly *)
  let frequent = Apriori.mine (mk 4 []) ~min_support:0.5 in
  Alcotest.(check int) "nothing mined" 0 (List.length frequent);
  Alcotest.(check int) "nothing closed" 0 (List.length (Summarize.closed frequent));
  Alcotest.(check int) "nothing maximal" 0
    (List.length (Summarize.maximal frequent))

let qcheck_tests =
  let open QCheck in
  let gen_db =
    Gen.(
      let* n = int_range 5 30 in
      let* rows = list_size (return n) (list_size (int_range 0 5) (int_range 0 6)) in
      return (mk 7 rows))
  in
  let arb_db = make ~print:(fun db -> Printf.sprintf "<db %d>" (Db.length db)) gen_db in
  [
    Test.make ~name:"closed agrees with brute force" ~count:80
      (pair arb_db (float_range 0.15 0.6)) (fun (db, min_support) ->
        let frequent = Apriori.mine db ~min_support ~max_size:4 in
        pp (Summarize.closed frequent) = pp (sorted (brute_closed frequent)));
    Test.make ~name:"maximal agrees with brute force" ~count:80
      (pair arb_db (float_range 0.15 0.6)) (fun (db, min_support) ->
        let frequent = Apriori.mine db ~min_support ~max_size:4 in
        pp (Summarize.maximal frequent) = pp (sorted (brute_maximal frequent)));
    Test.make ~name:"closed losslessly reconstructs all supports" ~count:50
      (pair arb_db (float_range 0.2 0.6)) (fun (db, min_support) ->
        let frequent = Apriori.mine db ~min_support ~max_size:4 in
        let closed = Summarize.closed frequent in
        List.for_all
          (fun (s, c) -> Summarize.support_from_closed ~closed s = Some c)
          frequent);
  ]

let suite =
  [
    Alcotest.test_case "toy closed and maximal" `Quick test_toy_closed_maximal;
    Alcotest.test_case "maximal subset of closed" `Quick test_maximal_subset_of_closed;
    Alcotest.test_case "support reconstruction" `Quick test_support_reconstruction;
    Alcotest.test_case "empty frequent collection" `Quick test_empty_frequent;
    Alcotest.test_case "singleton collection" `Quick test_singleton_collection;
    Alcotest.test_case "empty database pipeline" `Quick test_empty_db_pipeline;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

