(* Boundary behaviour of the miners' thresholds and of rule generation:
   empty databases, the edges of the min_support domain, confidence
   ties, and the documented Invalid_argument contracts. *)

open Ppdm_data
open Ppdm_mining
open Ppdm_runtime

let mk universe rows =
  Db.create ~universe (Array.of_list (List.map Itemset.of_list rows))

(* The four miners of the differential suite, as closures over a pool so
   the parallel driver faces the same boundary inputs. *)
let with_miners f =
  Pool.with_pool ~jobs:2 (fun pool ->
      f
        [
          ("apriori", fun db ~min_support -> Apriori.mine db ~min_support);
          ("eclat", fun db ~min_support -> Eclat.mine db ~min_support);
          ("fp-growth", fun db ~min_support -> Fptree.mine db ~min_support);
          ( "parallel-apriori",
            fun db ~min_support -> Parallel.apriori_mine pool db ~min_support
          );
        ])

let test_empty_db () =
  with_miners (fun miners ->
      let db = mk 4 [] in
      List.iter
        (fun (name, mine) ->
          Alcotest.(check int)
            (name ^ " on an empty database")
            0
            (List.length (mine db ~min_support:0.5)))
        miners)

let test_min_support_zero_rejected () =
  with_miners (fun miners ->
      let db = mk 3 [ [ 0; 1 ]; [ 1; 2 ] ] in
      List.iter
        (fun (name, mine) ->
          List.iter
            (fun bad ->
              match mine db ~min_support:bad with
              | _ ->
                  Alcotest.failf "%s accepted min_support %g" name bad
              | exception Invalid_argument _ -> ())
            [ 0.; -0.25; 1.5 ])
        miners)

let test_min_support_one () =
  with_miners (fun miners ->
      (* item 1 is in every transaction; at min_support 1.0 it is the only
         survivor *)
      let db = mk 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 1 ] ] in
      List.iter
        (fun (name, mine) ->
          let out = mine db ~min_support:1.0 in
          Alcotest.(check int) (name ^ " at min_support 1.0") 1
            (List.length out);
          let set, count = List.hd out in
          Alcotest.(check string) (name ^ " survivor") "{1}"
            (Itemset.to_string set);
          Alcotest.(check int) (name ^ " survivor count") 3 count)
        miners;
      (* no universally shared item: min_support 1.0 is valid and empty *)
      let disjoint = mk 3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
      List.iter
        (fun (name, mine) ->
          Alcotest.(check int)
            (name ^ " with no shared item")
            0
            (List.length (mine disjoint ~min_support:1.0)))
        miners)

let test_rules_validation () =
  Alcotest.check_raises "n_transactions 0"
    (Invalid_argument "Rules.generate: n_transactions must be positive")
    (fun () ->
      ignore
        (Rules.generate ~frequent:[] ~n_transactions:0 ~min_confidence:0.5));
  Alcotest.check_raises "min_confidence out of range"
    (Invalid_argument "Rules.generate: min_confidence out of [0,1]")
    (fun () ->
      ignore
        (Rules.generate ~frequent:[] ~n_transactions:4 ~min_confidence:1.5))

let test_rules_empty_frequent () =
  Alcotest.(check int) "no frequent itemsets, no rules" 0
    (List.length
       (Rules.generate ~frequent:[] ~n_transactions:4 ~min_confidence:0.))

let test_rules_confidence_ties () =
  (* all four rules below have confidence 1.0; the tie must break by
     decreasing support *)
  let set = Itemset.of_list in
  let frequent =
    [
      (set [ 0 ], 2);
      (set [ 1 ], 2);
      (set [ 2 ], 1);
      (set [ 3 ], 1);
      (set [ 0; 1 ], 2);
      (set [ 2; 3 ], 1);
    ]
  in
  let rules =
    Rules.generate ~frequent ~n_transactions:4 ~min_confidence:0.9
  in
  Alcotest.(check int) "four rules" 4 (List.length rules);
  List.iter
    (fun r -> Alcotest.(check (float 1e-9)) "confidence" 1.0 r.Rules.confidence)
    rules;
  Alcotest.(check (list (float 1e-9)))
    "supports in decreasing order"
    [ 0.5; 0.5; 0.25; 0.25 ]
    (List.map (fun r -> r.Rules.support) rules)

let test_rules_confidence_bounds () =
  let set = Itemset.of_list in
  let frequent = [ (set [ 0 ], 4); (set [ 1 ], 2); (set [ 0; 1 ], 2) ] in
  (* min_confidence 0.0: every candidate rule comes back *)
  Alcotest.(check int) "min_confidence 0.0 keeps everything" 2
    (List.length
       (Rules.generate ~frequent ~n_transactions:4 ~min_confidence:0.));
  (* min_confidence 1.0: only 1 => 0 (confidence 2/2) survives *)
  let strict =
    Rules.generate ~frequent ~n_transactions:4 ~min_confidence:1.0
  in
  Alcotest.(check int) "min_confidence 1.0 filters" 1 (List.length strict);
  Alcotest.(check string) "surviving antecedent" "{1}"
    (Itemset.to_string (List.hd strict).Rules.antecedent)

let suite =
  [
    Alcotest.test_case "miners on an empty database" `Quick test_empty_db;
    Alcotest.test_case "min_support outside (0,1] rejected" `Quick
      test_min_support_zero_rejected;
    Alcotest.test_case "min_support 1.0 boundary" `Quick test_min_support_one;
    Alcotest.test_case "rules argument validation" `Quick test_rules_validation;
    Alcotest.test_case "rules from no frequent itemsets" `Quick
      test_rules_empty_frequent;
    Alcotest.test_case "confidence ties break by support" `Quick
      test_rules_confidence_ties;
    Alcotest.test_case "min_confidence boundaries" `Quick
      test_rules_confidence_bounds;
  ]
