(* Vertical counting engine tests: representation choice, intersection
   kernels against a reference, engine-vs-trie-vs-brute-force parity,
   tid-range sharding determinism, word-boundary widths, and the
   zero-allocation steady state. *)

open Ppdm_data
open Ppdm_mining
open Ppdm_runtime

let mk universe rows =
  Db.create ~universe (Array.of_list (List.map Itemset.of_list rows))

let pp_result l =
  String.concat "; "
    (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c) l)

let check_same_result msg expected actual =
  Alcotest.(check string) msg (pp_result expected) (pp_result actual)

(* A database of [n] transactions where item [i]'s tid-set is given
   explicitly — the transpose of the tid-set table, so [load] must get
   back exactly what we wrote down. *)
let db_of_tidsets ~universe ~n tidsets =
  let rows = Array.make n [] in
  List.iteri
    (fun item tids -> List.iter (fun tid -> rows.(tid) <- item :: rows.(tid)) tids)
    tidsets;
  Db.create ~universe (Array.map Itemset.of_list rows)

let test_representation_choice () =
  let n = 200 in
  (* item 0 in every transaction, item 1 in 10, item 2 in exactly 2:
     with the default cutoff 1/62 the break-even is n/62 ~ 3.2. *)
  let db =
    db_of_tidsets ~universe:3 ~n
      [ List.init n Fun.id; List.init 10 (fun i -> 7 * i); [ 5; 150 ] ]
  in
  let vt = Vertical.load db in
  Alcotest.(check bool) "hot item is dense" true
    (Vertical.tidset_is_dense (Vertical.item_tidset vt 0));
  Alcotest.(check bool) "mid item is dense" true
    (Vertical.tidset_is_dense (Vertical.item_tidset vt 1));
  Alcotest.(check bool) "rare item is sparse" false
    (Vertical.tidset_is_dense (Vertical.item_tidset vt 2));
  Alcotest.(check int) "dense count" 2 (Vertical.dense_items vt);
  Alcotest.(check int) "sparse count" 1 (Vertical.sparse_items vt);
  (* cutoff 0: everything dense; cutoff above 1: nothing is *)
  let all_dense = Vertical.load ~dense_cutoff:0. db in
  Alcotest.(check int) "cutoff 0 makes all dense" 3
    (Vertical.dense_items all_dense);
  let none_dense = Vertical.load ~dense_cutoff:1.1 db in
  Alcotest.(check int) "cutoff 1.1 makes none dense" 0
    (Vertical.dense_items none_dense);
  Alcotest.check_raises "negative cutoff rejected"
    (Invalid_argument "Vertical.load: dense_cutoff must be >= 0") (fun () ->
      ignore (Vertical.load ~dense_cutoff:(-0.1) db))

(* Every intersection kernel pair (dense/dense, dense/sparse,
   sparse/dense, sparse/sparse) against the sorted-array reference, on
   random tid-sets straddling several word boundaries. *)
let test_inter_kernels_vs_reference () =
  let n = 150 in
  let rng = Ppdm_prng.Rng.create ~seed:404 () in
  for round = 1 to 25 do
    let random_tids () =
      List.filter (fun _ -> Ppdm_prng.Rng.int rng 3 = 0) (List.init n Fun.id)
      |> Array.of_list
    in
    let ta = random_tids () and tb = random_tids () in
    let reference =
      Itemset.inter (Itemset.of_array ta) (Itemset.of_array tb)
      |> Itemset.to_array
    in
    List.iter
      (fun (da, db_) ->
        let a = Vertical.tidset_of_tids ~n ~dense:da ta in
        let b = Vertical.tidset_of_tids ~n ~dense:db_ tb in
        let joint, card = Vertical.inter_tidsets a b in
        let label = Printf.sprintf "round %d %b/%b" round da db_ in
        Alcotest.(check int)
          (label ^ " cardinality") (Array.length reference) card;
        Alcotest.(check int)
          (label ^ " consistent cardinal") card (Vertical.tidset_cardinal joint);
        Alcotest.(check (array int))
          (label ^ " tids") reference (Vertical.tidset_tids joint))
      [ (true, true); (true, false); (false, true); (false, false) ]
  done

let test_support_counts_vs_trie () =
  let rng = Ppdm_prng.Rng.create ~seed:2024 () in
  for round = 1 to 10 do
    let universe = 8 + Ppdm_prng.Rng.int rng 5 in
    let n = 1 + Ppdm_prng.Rng.int rng 200 in
    let rows =
      List.init n (fun _ ->
          List.filter
            (fun _ -> Ppdm_prng.Rng.int rng 3 = 0)
            (List.init universe Fun.id))
    in
    let db = mk universe rows in
    let vt = Vertical.load db in
    (* all small itemsets as candidates, including never-occurring ones *)
    let candidates =
      List.concat_map
        (fun k ->
          Itemset.subsets_of_size
            (Itemset.of_list (List.init universe Fun.id))
            k)
        [ 1; 2; 3 ]
    in
    check_same_result
      (Printf.sprintf "round %d: vertical = trie" round)
      (Count.support_counts db candidates)
      (Vertical.support_counts vt candidates)
  done

let test_mine_parity_and_brute_force () =
  let rng = Ppdm_prng.Rng.create ~seed:77 () in
  for round = 1 to 8 do
    let universe = 6 + Ppdm_prng.Rng.int rng 4 in
    let n = 1 + Ppdm_prng.Rng.int rng 120 in
    let rows =
      List.init n (fun _ ->
          List.filter
            (fun _ -> Ppdm_prng.Rng.int rng 4 = 0)
            (List.init universe Fun.id))
    in
    let db = mk universe rows in
    let min_support = 0.05 +. (0.1 *. float_of_int (round mod 3)) in
    let brute =
      Ppdm_check.Oracle.brute_force_frequent ~max_size:4 db ~min_support
    in
    check_same_result
      (Printf.sprintf "round %d: vertical mine = brute force" round)
      brute
      (Apriori.mine ~counter:Apriori.Vertical ~max_size:4 db ~min_support);
    check_same_result
      (Printf.sprintf "round %d: trie mine = brute force" round)
      brute
      (Apriori.mine ~counter:Apriori.Trie ~max_size:4 db ~min_support)
  done

let test_auto_resolution () =
  let small = mk 3 (List.init 61 (fun _ -> [ 0; 1 ])) in
  let big = mk 3 (List.init 62 (fun _ -> [ 0; 1 ])) in
  let is_vertical db =
    match Apriori.resolve_counter Apriori.Auto db with
    | `Vertical -> true
    | `Trie | `Sampled _ -> false
  in
  Alcotest.(check bool) "61 transactions resolve to trie" false
    (is_vertical small);
  Alcotest.(check bool) "62 transactions resolve to vertical" true
    (is_vertical big);
  Alcotest.(check bool) "explicit choices resolve to themselves" true
    (Apriori.resolve_counter Apriori.Trie big = `Trie
    && Apriori.resolve_counter Apriori.Vertical small = `Vertical)

(* Word-boundary widths: tid-sets exactly at, one past, and at double the
   word width, with the last tid set so tail-word handling shows. *)
let test_boundary_widths () =
  List.iter
    (fun n ->
      let db =
        db_of_tidsets ~universe:3 ~n
          [
            List.init n Fun.id;
            (* every transaction *)
            [ 0; n - 1 ];
            (* both ends *)
            List.filter (fun t -> t mod 2 = 0) (List.init n Fun.id);
          ]
      in
      let vt = Vertical.load db in
      Alcotest.(check int)
        (Printf.sprintf "n=%d word count" n)
        ((n + 61) / 62) (Vertical.word_count vt);
      let count s = Vertical.support_count vt (Itemset.of_list s) in
      Alcotest.(check int) (Printf.sprintf "n=%d full item" n) n (count [ 0 ]);
      Alcotest.(check int) (Printf.sprintf "n=%d ends" n) 2 (count [ 1 ]);
      Alcotest.(check int)
        (Printf.sprintf "n=%d ends pair" n)
        2
        (count [ 0; 1 ]);
      Alcotest.(check int)
        (Printf.sprintf "n=%d evens pair" n)
        ((n + 1) / 2)
        (count [ 0; 2 ]);
      Alcotest.(check int)
        (Printf.sprintf "n=%d triple" n)
        (if (n - 1) mod 2 = 0 then 2 else 1)
        (count [ 0; 1; 2 ]))
    [ 62; 63; 124 ]

let test_trie_parity_edge_cases () =
  let db = mk 4 [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 2 ] ] in
  let vt = Vertical.load db in
  (* out-of-universe items count 0 (trie parity), empty candidates raise *)
  let ghost = Itemset.of_list [ 1; 9 ] in
  Alcotest.(check int) "out-of-universe candidate counts 0" 0
    (Vertical.support_count vt ghost);
  check_same_result "mixed batch matches trie"
    (Count.support_counts db [ ghost; Itemset.of_list [ 0; 1 ] ])
    (Vertical.support_counts vt [ ghost; Itemset.of_list [ 0; 1 ] ]);
  Alcotest.check_raises "empty candidate rejected"
    (Invalid_argument "Vertical.prepare: empty candidate") (fun () ->
      ignore (Vertical.support_counts vt [ Itemset.empty ]));
  (* duplicate candidates collapse, as the trie's idempotent add *)
  let twice = [ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 0; 1 ] ] in
  Alcotest.(check int) "duplicates deduplicated" 1
    (List.length (Vertical.support_counts vt twice))

(* Tid-range sharding: per-window counts must sum to the full count for
   any window split, and the parallel driver must return bit-identical
   results at every job count. *)
let test_word_window_sums () =
  let rng = Ppdm_prng.Rng.create ~seed:5150 () in
  let universe = 10 and n = 400 in
  let rows =
    List.init n (fun _ ->
        List.filter
          (fun _ -> Ppdm_prng.Rng.int rng 3 = 0)
          (List.init universe Fun.id))
  in
  let db = mk universe rows in
  let vt = Vertical.load db in
  let candidates =
    List.concat_map
      (fun k ->
        Itemset.subsets_of_size (Itemset.of_list (List.init universe Fun.id)) k)
      [ 1; 2; 3; 4 ]
  in
  let prepared = Vertical.prepare candidates in
  let full = Vertical.count_into vt prepared in
  let nw = Vertical.word_count vt in
  List.iter
    (fun chunk ->
      let totals = Array.make (Vertical.prepared_length prepared) 0 in
      let pos = ref 0 in
      while !pos < nw do
        let hi = min nw (!pos + chunk) in
        let part = Vertical.count_into vt ~word_lo:!pos ~word_hi:hi prepared in
        Array.iteri (fun i c -> totals.(i) <- totals.(i) + c) part;
        pos := hi
      done;
      Alcotest.(check (array int))
        (Printf.sprintf "chunk=%d windows sum to full" chunk)
        full totals)
    [ 1; 2; 3; 7 ]

let test_parallel_sharding_determinism () =
  let rng = Ppdm_prng.Rng.create ~seed:31337 () in
  let universe = 12 and n = 500 in
  let rows =
    List.init n (fun _ ->
        List.filter
          (fun _ -> Ppdm_prng.Rng.int rng 3 = 0)
          (List.init universe Fun.id))
  in
  let db = mk universe rows in
  let vt = Vertical.load db in
  let candidates =
    List.concat_map
      (fun k ->
        Itemset.subsets_of_size (Itemset.of_list (List.init universe Fun.id)) k)
      [ 1; 2; 3 ]
  in
  let sequential = Vertical.support_counts vt candidates in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          (* chunk of 2 words forces real multi-window sharding even on a
             500-transaction database *)
          check_same_result
            (Printf.sprintf "sharded counts at jobs=%d" jobs)
            sequential
            (Parallel.support_counts_vertical pool ~chunk:2 vt candidates);
          check_same_result
            (Printf.sprintf "parallel vertical mine at jobs=%d" jobs)
            (Apriori.mine ~counter:Apriori.Vertical db ~min_support:0.05
               ~max_size:3)
            (Parallel.apriori_mine pool ~counter:Apriori.Vertical ~chunk:2 db
               ~min_support:0.05 ~max_size:3)))
    [ 1; 2; 4 ]

(* Unsafe-kernel differential (the --unsafe-kernels flag): on widths one
   short of a word, exactly a word, one past it, two words, and a
   4096-tid run — with all-one words, all-zero words, alternating bits,
   window endpoints, and a genuinely sparse item — the bounds-check-free
   kernels must agree with the safe ones and with the trie, for every
   representation mix. *)
let test_unsafe_kernel_differential () =
  List.iter
    (fun n ->
      let db =
        db_of_tidsets ~universe:5 ~n
          [
            List.init n Fun.id;
            [];
            List.filter (fun t -> t mod 2 = 0) (List.init n Fun.id);
            [ 0; n - 1 ];
            List.filter (fun t -> t mod 97 = 0) (List.init n Fun.id);
          ]
      in
      let candidates =
        List.concat_map
          (fun k ->
            Itemset.subsets_of_size (Itemset.of_list (List.init 5 Fun.id)) k)
          [ 1; 2; 3 ]
      in
      let reference = Count.support_counts db candidates in
      List.iter
        (fun cutoff ->
          let vt =
            match cutoff with
            | None -> Vertical.load db
            | Some c -> Vertical.load ~dense_cutoff:c db
          in
          Fun.protect
            ~finally:(fun () -> Vertical.set_unsafe_kernels false)
            (fun () ->
              List.iter
                (fun unsafe ->
                  Vertical.set_unsafe_kernels unsafe;
                  Alcotest.(check bool) "flag readable" unsafe
                    (Vertical.unsafe_kernels_enabled ());
                  check_same_result
                    (Printf.sprintf "n=%d cutoff=%s unsafe=%b" n
                       (match cutoff with
                       | None -> "default"
                       | Some c -> string_of_float c)
                       unsafe)
                    reference
                    (Vertical.support_counts vt candidates))
                [ false; true ]))
        [ None; Some 0.; Some 1.1 ])
    [ 61; 62; 63; 124; 4096 ]

(* Candidate columns: a [cand_lo, cand_hi) restriction returns exactly
   that slice of the full result, columns concatenate, and 2-D cells
   (word window x candidate column) sum back to the full counts. *)
let test_candidate_ranges () =
  let rng = Ppdm_prng.Rng.create ~seed:616 () in
  let universe = 9 and n = 300 in
  let rows =
    List.init n (fun _ ->
        List.filter
          (fun _ -> Ppdm_prng.Rng.int rng 3 = 0)
          (List.init universe Fun.id))
  in
  let db = mk universe rows in
  let vt = Vertical.load db in
  let candidates =
    List.concat_map
      (fun k ->
        Itemset.subsets_of_size (Itemset.of_list (List.init universe Fun.id)) k)
      [ 1; 2; 3 ]
  in
  let prepared = Vertical.prepare candidates in
  let len = Vertical.prepared_length prepared in
  let full = Vertical.count_into vt prepared in
  let parts = ref [] in
  let pos = ref 0 in
  while !pos < len do
    let hi = min len (!pos + 5) in
    parts := Vertical.count_into vt ~cand_lo:!pos ~cand_hi:hi prepared :: !parts;
    pos := hi
  done;
  Alcotest.(check (array int))
    "columns concatenate" full
    (Array.concat (List.rev !parts));
  let nw = Vertical.word_count vt in
  let totals = Array.make len 0 in
  let wpos = ref 0 in
  while !wpos < nw do
    let whi = min nw (!wpos + 3) in
    let cpos = ref 0 in
    while !cpos < len do
      let chi = min len (!cpos + 7) in
      let base = !cpos in
      let part =
        Vertical.count_into vt ~word_lo:!wpos ~word_hi:whi ~cand_lo:base
          ~cand_hi:chi prepared
      in
      Array.iteri (fun i c -> totals.(base + i) <- totals.(base + i) + c) part;
      cpos := chi
    done;
    wpos := whi
  done;
  Alcotest.(check (array int)) "2-D cells sum to full" full totals;
  Alcotest.(check (array int)) "empty column" [||]
    (Vertical.count_into vt ~cand_lo:3 ~cand_hi:3 prepared);
  Alcotest.check_raises "candidate range out of range"
    (Invalid_argument "Vertical.count_into: candidate range out of range")
    (fun () ->
      ignore (Vertical.count_into vt ~cand_lo:0 ~cand_hi:(len + 1) prepared))

let test_eclat_hybrid_parity () =
  let rng = Ppdm_prng.Rng.create ~seed:808 () in
  for round = 1 to 6 do
    let universe = 6 + Ppdm_prng.Rng.int rng 5 in
    let n = 1 + Ppdm_prng.Rng.int rng 150 in
    let rows =
      List.init n (fun _ ->
          List.filter
            (fun _ -> Ppdm_prng.Rng.int rng 3 = 0)
            (List.init universe Fun.id))
    in
    let db = mk universe rows in
    check_same_result
      (Printf.sprintf "round %d: eclat on hybrid tid-sets = apriori" round)
      (Apriori.mine ~max_size:4 db ~min_support:0.1)
      (Eclat.mine ~max_size:4 db ~min_support:0.1)
  done

(* The steady-state promise: once the scratch is warm, re-counting a
   batch allocates nothing (observed through the engine's own alloc
   counter, which ticks on every buffer growth). *)
let test_scratch_zero_alloc_steady_state () =
  let rng = Ppdm_prng.Rng.create ~seed:909 () in
  let universe = 10 and n = 300 in
  let rows =
    List.init n (fun _ ->
        List.filter
          (fun _ -> Ppdm_prng.Rng.int rng 2 = 0)
          (List.init universe Fun.id))
  in
  let db = mk universe rows in
  let vt = Vertical.load db in
  let scratch = Vertical.make_scratch vt in
  let candidates =
    List.concat_map
      (fun k ->
        Itemset.subsets_of_size (Itemset.of_list (List.init universe Fun.id)) k)
      [ 2; 3; 4 ]
  in
  (* warm pass: buffers grow here *)
  ignore (Vertical.support_counts ~scratch vt candidates);
  Ppdm_obs.Metrics.reset ();
  Ppdm_obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Ppdm_obs.Metrics.set_enabled false;
      Ppdm_obs.Metrics.reset ())
    (fun () ->
      ignore (Vertical.support_counts ~scratch vt candidates);
      let snapshot = Ppdm_obs.Metrics.snapshot () in
      let counter name =
        match List.assoc_opt name snapshot.Ppdm_obs.Metrics.counters with
        | Some v -> v
        | None -> 0
      in
      Alcotest.(check bool)
        "candidates were counted" true
        (counter "vertical.candidates" = List.length candidates);
      Alcotest.(check int)
        "warm scratch allocates nothing" 0
        (counter "vertical.scratch.allocs");
      Alcotest.(check bool)
        "bytes-touched counter ticks" true
        (counter "vertical.words.touched" > 0))

let suite =
  [
    Alcotest.test_case "adaptive representation choice" `Quick
      test_representation_choice;
    Alcotest.test_case "intersection kernels vs reference" `Quick
      test_inter_kernels_vs_reference;
    Alcotest.test_case "support counts match the trie" `Quick
      test_support_counts_vs_trie;
    Alcotest.test_case "mine parity with brute force" `Quick
      test_mine_parity_and_brute_force;
    Alcotest.test_case "auto counter resolution" `Quick test_auto_resolution;
    Alcotest.test_case "word-boundary widths 62/63/124" `Quick
      test_boundary_widths;
    Alcotest.test_case "trie parity edge cases" `Quick
      test_trie_parity_edge_cases;
    Alcotest.test_case "word windows sum to full counts" `Quick
      test_word_window_sums;
    Alcotest.test_case "tid-range sharding determinism at jobs 1/2/4" `Quick
      test_parallel_sharding_determinism;
    Alcotest.test_case "unsafe kernels differential on width classes" `Quick
      test_unsafe_kernel_differential;
    Alcotest.test_case "candidate ranges slice and concatenate" `Quick
      test_candidate_ranges;
    Alcotest.test_case "eclat hybrid tid-set parity" `Quick
      test_eclat_hybrid_parity;
    Alcotest.test_case "warm scratch allocates nothing" `Quick
      test_scratch_zero_alloc_steady_state;
  ]
