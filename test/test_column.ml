(* Compressed columnar storage tests: container representation choice and
   round-trips on the word-boundary width classes, window kernels held
   against a brute-force reference, the PPDMC codec (including every
   corruption class as its typed error), the streaming converter, and the
   compressed counting path end to end against the in-RAM engine. *)

open Ppdm_data
open Ppdm_mining

let bpw = Bitset.bits_per_word

(* The width classes every packed-bitmap bug hides in: one under / at /
   one over a word boundary, a two-word width, and block-boundary widths
   (Column.block_bits = 3968). *)
let widths = [ 1; 61; 62; 63; 124; 3967; 3968; 3969; 8000 ]

let words_of_tids ~n tids =
  let words = Array.make (Bitset.words_for n) 0 in
  List.iter
    (fun tid ->
      let w = tid / bpw in
      words.(w) <- words.(w) lor (1 lsl (tid mod bpw)))
    tids;
  words

(* A deterministic pseudo-random tid subset (no global RNG dependency). *)
let scatter ~n ~seed ~period =
  List.filter
    (fun tid -> (tid * 2654435761) lxor seed land 1023 < period)
    (List.init n Fun.id)

let check_tids msg expected col =
  Alcotest.(check (list int)) msg expected (Array.to_list (Column.to_tids col))

(* --- units ---------------------------------------------------------- *)

let test_last_word_mask () =
  Alcotest.(check int) "width 62 is full" ((1 lsl bpw) - 1)
    (Bitset.last_word_mask ~width:62);
  Alcotest.(check int) "width 124 is full" ((1 lsl bpw) - 1)
    (Bitset.last_word_mask ~width:124);
  Alcotest.(check int) "width 61" ((1 lsl 61) - 1)
    (Bitset.last_word_mask ~width:61);
  Alcotest.(check int) "width 63 wraps to one bit" 1
    (Bitset.last_word_mask ~width:63);
  Alcotest.(check int) "width 1" 1 (Bitset.last_word_mask ~width:1);
  Alcotest.check_raises "width 0 rejected"
    (Invalid_argument "Bitset.last_word_mask: width must be positive")
    (fun () -> ignore (Bitset.last_word_mask ~width:0))

let test_empty_column () =
  List.iter
    (fun n ->
      let col = Column.of_tids ~n [||] in
      Alcotest.(check int) "cardinal" 0 (Column.cardinal col);
      check_tids "no tids" [] col;
      Alcotest.(check int) "window empty" 0
        (Column.window_card col ~wlo:0 ~whi:(Column.word_count col));
      Array.iter
        (function
          | Column.Empty -> ()
          | _ -> Alcotest.fail "empty column holds a non-empty block")
        (Column.blocks col))
    widths

let test_full_universe_run () =
  List.iter
    (fun n ->
      let all = Array.init n Fun.id in
      let col = Column.of_tids ~n all in
      Alcotest.(check int) "cardinal" n (Column.cardinal col);
      (* one run (4 bytes) beats dense and offsets on every full block
         holding at least 3 tids (below that, two offsets are cheaper) *)
      Array.iteri
        (fun b block ->
          let covered = min n ((b + 1) * Column.block_bits) - (b * Column.block_bits) in
          match block with
          | Column.Runs _ -> ()
          | _ when covered <= 2 -> ()
          | _ ->
              Alcotest.fail
                (Printf.sprintf "full block %d of n=%d not run-encoded" b n))
        (Column.blocks col);
      check_tids "round-trip" (Array.to_list all) col)
    widths

let test_representation_choice () =
  let n = Column.block_bits in
  (* alternating bits: sparse costs 2*1984, runs 4*1984, dense 8*64 --
     dense must win *)
  let alt = List.filter (fun t -> t mod 2 = 0) (List.init n Fun.id) in
  let col = Column.of_tids ~n (Array.of_list alt) in
  Alcotest.(check bool) "alternating goes dense" true
    (Column.rep col 0 = Column.R_dense);
  (* a few scattered tids: sparse (2 bytes each) beats both *)
  let col = Column.of_tids ~n [| 3; 700; 3100 |] in
  Alcotest.(check bool) "scattered goes sparse" true
    (Column.rep col 0 = Column.R_sparse);
  (* two long runs: 8 bytes of runs beat sparse (2*card) and dense *)
  let runs = List.init 600 Fun.id @ List.init 600 (fun i -> 2000 + i) in
  let col = Column.of_tids ~n (Array.of_list runs) in
  Alcotest.(check bool) "long runs go run-length" true
    (Column.rep col 0 = Column.R_run);
  check_tids "runs round-trip" runs col

let test_block_boundaries () =
  (* tids hugging both sides of the first block seam *)
  let n = 2 * Column.block_bits in
  let tids =
    [ 0; Column.block_bits - 1; Column.block_bits; (2 * Column.block_bits) - 1 ]
  in
  let col = Column.of_tids ~n (Array.of_list tids) in
  check_tids "seam round-trip" tids col;
  List.iter
    (fun tid ->
      Alcotest.(check bool) (Printf.sprintf "mem %d" tid) true
        (Column.mem col tid))
    tids;
  Alcotest.(check bool) "absent" false (Column.mem col 1);
  (* window cut exactly at the seam *)
  let seam_w = Column.block_bits / bpw in
  Alcotest.(check int) "left of seam" 2
    (Column.window_card col ~wlo:0 ~whi:seam_w);
  Alcotest.(check int) "right of seam" 2
    (Column.window_card col ~wlo:seam_w ~whi:(Column.word_count col))

let test_of_words_equals_of_tids () =
  List.iter
    (fun n ->
      let tids = scatter ~n ~seed:11 ~period:300 in
      let a = Column.of_tids ~n (Array.of_list tids) in
      let b = Column.of_words ~n (words_of_tids ~n tids) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d of_words = of_tids" n)
        true (Column.equal a b))
    widths

let test_of_blocks_validation () =
  let n = 100 in
  let reject msg blocks =
    match Column.of_blocks ~n blocks with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (msg ^ " accepted")
  in
  reject "wrong block count" [| Column.Empty; Column.Empty |];
  reject "dense word count" [| Column.Dense (Array.make 1 0) |];
  reject "tail bits set" [| Column.Dense (Array.make 2 max_int) |];
  reject "offset out of range" [| Column.Sparse (1, [| 101 |]) |];
  reject "offsets not ascending" [| Column.Sparse (2, [| (7 lsl 16) lor 7 |]) |];
  reject "run out of range" [| Column.Runs [| (99 lsl 16) lor 105 |] |];
  reject "runs adjacent" [| Column.Runs [| (0 lsl 16) lor 5; (5 lsl 16) lor 9 |] |]

(* --- window kernels vs brute force ---------------------------------- *)

let reference_card mem_a mem_b ~n ~wlo ~whi =
  let count = ref 0 in
  for tid = 0 to n - 1 do
    if tid / bpw >= wlo && tid / bpw < whi && mem_a.(tid) && mem_b.(tid) then
      incr count
  done;
  !count

let mem_array ~n tids =
  let a = Array.make n false in
  List.iter (fun tid -> a.(tid) <- true) tids;
  a

(* Three columns per width — one likely dense/run-heavy, one sparse, one
   mixed — crossed pairwise under several windows, against the
   brute-force count.  Covers all six block-pair combinations. *)
let test_kernel_differential () =
  List.iter
    (fun n ->
      let shapes =
        [
          ("heavy", List.filter (fun t -> t mod 7 <> 3) (List.init n Fun.id));
          ("sparse", scatter ~n ~seed:5 ~period:40);
          ("mixed", List.filter (fun t -> t mod 3 = 0 || t < n / 4) (List.init n Fun.id));
        ]
      in
      let cols =
        List.map
          (fun (name, tids) ->
            (name, tids, Column.of_tids ~n (Array.of_list tids)))
          shapes
      in
      let n_words = Bitset.words_for n in
      let windows =
        [ (0, n_words); (0, (n_words / 2) + 1); (n_words / 3, n_words) ]
        |> List.filter (fun (lo, hi) -> lo < hi)
      in
      List.iter
        (fun (na, ta, ca) ->
          let mem_a = mem_array ~n ta in
          let words_a = words_of_tids ~n ta in
          let arr_a = Array.of_list ta in
          List.iter
            (fun (nb, tb, cb) ->
              let mem_b = mem_array ~n tb in
              List.iter
                (fun (wlo, whi) ->
                  let expect = reference_card mem_a mem_b ~n ~wlo ~whi in
                  let tag k =
                    Printf.sprintf "n=%d %s^%s [%d,%d) %s" n na nb wlo whi k
                  in
                  Alcotest.(check int) (tag "col^col")
                    expect
                    (Column.and_col_card ca cb ~wlo ~whi);
                  Alcotest.(check int) (tag "col^words")
                    expect
                    (Column.and_words_card cb words_a ~wlo ~whi);
                  let dst = Array.make n_words 0 in
                  Alcotest.(check int) (tag "col^col into")
                    expect
                    (Column.and_col_into ca cb dst ~wlo ~whi);
                  let pop = ref 0 in
                  for w = wlo to whi - 1 do
                    pop := !pop + Bitset.popcount dst.(w)
                  done;
                  Alcotest.(check int) (tag "into payload") expect !pop;
                  (* probe col-b with a's tids restricted to the window *)
                  let slo = ref 0 and shi = ref (Array.length arr_a) in
                  Array.iteri
                    (fun i t ->
                      if t < wlo * bpw then slo := i + 1;
                      if t < whi * bpw then shi := i + 1)
                    arr_a;
                  Alcotest.(check int) (tag "probe")
                    expect
                    (Column.probe_card cb arr_a ~slo:!slo ~shi:!shi))
                windows)
            cols)
        cols)
    [ 63; 124; 3967; 3969 ]

let test_window_partition () =
  let n = 8000 in
  let tids = scatter ~n ~seed:23 ~period:200 in
  let col = Column.of_tids ~n (Array.of_list tids) in
  let n_words = Column.word_count col in
  (* any partition of [0, n_words) must sum to the cardinality *)
  List.iter
    (fun step ->
      let total = ref 0 in
      let pos = ref 0 in
      while !pos < n_words do
        let hi = min n_words (!pos + step) in
        total := !total + Column.window_card col ~wlo:!pos ~whi:hi;
        pos := hi
      done;
      Alcotest.(check int)
        (Printf.sprintf "partition step %d" step)
        (Column.cardinal col) !total)
    [ 1; 7; 64; 100; n_words ];
  Alcotest.check_raises "window past the end"
    (Invalid_argument "Column.window_card: word window out of range")
    (fun () -> ignore (Column.window_card col ~wlo:0 ~whi:(n_words + 1)))

let test_write_into_expansion () =
  List.iter
    (fun n ->
      let tids = scatter ~n ~seed:3 ~period:500 in
      let col = Column.of_tids ~n (Array.of_list tids) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d to_words" n)
        true
        (Column.to_words col = words_of_tids ~n tids))
    widths

(* --- the PPDMC codec ------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "ppdm_colfile" ".ppdmc" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let make_columns ~n ~universe =
  Array.init universe (fun item ->
      let tids =
        match item mod 4 with
        | 0 -> List.init n Fun.id (* full: run containers *)
        | 1 -> scatter ~n ~seed:item ~period:50 (* sparse *)
        | 2 -> List.filter (fun t -> t mod 2 = item / 2 mod 2) (List.init n Fun.id)
        | _ -> [] (* empty *)
      in
      Column.of_tids ~n (Array.of_list tids))

let test_colfile_roundtrip () =
  List.iter
    (fun n ->
      with_temp @@ fun path ->
      let universe = 9 in
      let cols = make_columns ~n ~universe in
      Colfile.write path ~n cols;
      let cf = Colfile.open_file path in
      Fun.protect
        ~finally:(fun () -> Colfile.close cf)
        (fun () ->
          Alcotest.(check int) "universe" universe (Colfile.universe cf);
          Alcotest.(check int) "length" n (Colfile.length cf);
          Array.iteri
            (fun item col ->
              Alcotest.(check int)
                (Printf.sprintf "n=%d item %d directory card" n item)
                (Column.cardinal col)
                (Colfile.item_count cf item);
              Alcotest.(check bool)
                (Printf.sprintf "n=%d item %d round-trip" n item)
                true
                (Column.equal col (Colfile.column cf item)))
            cols))
    [ 1; 62; 63; 3968; 8000 ]

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let expect_error what f =
  match f () with
  | exception Colfile.Error e -> e
  | _ -> Alcotest.fail (what ^ ": corruption accepted")

let test_colfile_corruption () =
  with_temp @@ fun path ->
  let n = 500 in
  Colfile.write path ~n (make_columns ~n ~universe:5);
  let good = read_bytes path in
  let mutate what patch check =
    with_temp @@ fun mpath ->
    write_bytes mpath (patch good);
    let e =
      expect_error what (fun () ->
          let cf = Colfile.open_file mpath in
          Fun.protect
            ~finally:(fun () -> Colfile.close cf)
            (fun () ->
              for item = 0 to Colfile.universe cf - 1 do
                ignore (Colfile.column cf item)
              done))
    in
    if not (check e) then
      Alcotest.fail
        (Printf.sprintf "%s: wrong error (%s)" what (Colfile.error_message e))
  in
  let set_byte s pos b =
    let bs = Bytes.of_string s in
    Bytes.set bs pos (Char.chr b);
    Bytes.to_string bs
  in
  mutate "bad magic"
    (fun s -> set_byte s 0 (Char.code 'X'))
    (function Colfile.Bad_magic -> true | _ -> false);
  mutate "bad version"
    (fun s -> set_byte s 6 99)
    (function Colfile.Unsupported_version 99 -> true | _ -> false);
  mutate "truncated header"
    (fun s -> String.sub s 0 10)
    (function Colfile.Truncated _ -> true | _ -> false);
  mutate "truncated directory"
    (fun s -> String.sub s 0 40)
    (function Colfile.Truncated _ -> true | _ -> false);
  mutate "truncated payload"
    (fun s -> String.sub s 0 (String.length s - 3))
    (function Colfile.Truncated _ -> true | _ -> false);
  mutate "trailing bytes"
    (fun s -> s ^ "xx")
    (function Colfile.Corrupt _ -> true | _ -> false);
  (* first payload record of item 0 starts right after the directory:
     u32 idx, then the tag byte at +4 *)
  let payload_pos = 32 + (5 * 24) in
  mutate "unknown container tag"
    (fun s -> set_byte s (payload_pos + 4) 7)
    (function Colfile.Corrupt _ -> true | _ -> false);
  mutate "descending block index"
    (fun s -> set_byte s payload_pos 200)
    (function Colfile.Corrupt _ -> true | _ -> false)

(* --- streaming conversion ------------------------------------------- *)

let test_convert_fimi () =
  with_temp @@ fun src ->
  with_temp @@ fun dst ->
  (* tids 0..n-1 across a couple of blocks, FIMI format *)
  let n = 5000 in
  let universe = 7 in
  let db =
    Db.create ~universe
      (Array.init n (fun tid ->
           Itemset.of_list
             (List.filter
                (fun item ->
                  match item mod 3 with
                  | 0 -> true
                  | 1 -> tid mod (item + 2) = 0
                  | _ -> tid < 50)
                (List.init universe Fun.id))))
  in
  Io.write_fimi src db;
  let stats = Colfile.convert ~src ~dst () in
  Alcotest.(check int) "transactions" n stats.Colfile.cv_transactions;
  Alcotest.(check int) "universe" universe stats.Colfile.cv_universe;
  let cf = Colfile.open_file dst in
  Fun.protect
    ~finally:(fun () -> Colfile.close cf)
    (fun () ->
      let vt = Vertical.of_db db in
      for item = 0 to universe - 1 do
        let expect = Vertical.item_count vt item in
        Alcotest.(check int)
          (Printf.sprintf "item %d card" item)
          expect
          (Colfile.item_count cf item);
        Alcotest.(check (list int))
          (Printf.sprintf "item %d tids" item)
          (Array.to_list (Vertical.tidset_tids (Vertical.item_tidset vt item)))
          (Array.to_list (Column.to_tids (Colfile.column cf item)))
      done)

let test_convert_header_format_and_errors () =
  with_temp @@ fun src ->
  with_temp @@ fun dst ->
  let db =
    Db.create ~universe:4
      [| Itemset.of_list [ 0; 2 ]; Itemset.of_list [ 1 ]; Itemset.of_list [] |]
  in
  Io.write_file src db;
  let stats = Colfile.convert ~src ~dst () in
  Alcotest.(check int) "header universe" 4 stats.Colfile.cv_universe;
  Alcotest.(check int) "header transactions" 3 stats.Colfile.cv_transactions;
  (* a universe override that disagrees with the header is the documented
     Failure, not silence *)
  (match Colfile.convert ~universe:9 ~src ~dst () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "universe/header disagreement accepted");
  (* FIMI items past an explicit universe surface as the typed error *)
  with_temp @@ fun fimi ->
  Io.write_fimi fimi db;
  match Colfile.convert ~universe:2 ~src:fimi ~dst () with
  | exception Io.Item_out_of_universe { item = 2; universe = 2 } -> ()
  | _ -> Alcotest.fail "out-of-universe item accepted"

let test_fold_transactions () =
  with_temp @@ fun path ->
  (* empty file: zero transactions over the fallback universe *)
  write_bytes path "";
  let count, info =
    Io.fold_transactions path ~init:0 ~f:(fun acc _ -> acc + 1)
  in
  Alcotest.(check int) "empty count" 0 count;
  Alcotest.(check int) "empty universe" 1 info.Io.universe;
  (* FIMI mode infers the universe and folds every line *)
  write_bytes path "3 1\n\n7 2\n";
  let sizes, info =
    Io.fold_transactions path ~init:[] ~f:(fun acc tx ->
        Itemset.cardinal tx :: acc)
  in
  Alcotest.(check (list int)) "fimi sizes" [ 2; 0; 2 ] (List.rev sizes);
  Alcotest.(check int) "fimi inferred universe" 8 info.Io.universe;
  Alcotest.(check int) "fimi transactions" 3 info.Io.transactions

(* --- compressed counting end to end --------------------------------- *)

let test_compress_counting_parity () =
  let rng_tids item n = scatter ~n ~seed:(13 * item) ~period:(100 + (50 * item)) in
  let n = 4100 in
  let universe = 8 in
  let rows = Array.make n [] in
  for item = 0 to universe - 1 do
    List.iter (fun tid -> rows.(tid) <- item :: rows.(tid)) (rng_tids item n)
  done;
  let db = Db.create ~universe (Array.map Itemset.of_list rows) in
  let plain = Apriori.mine ~counter:Apriori.Vertical db ~min_support:0.01 in
  let compressed =
    Apriori.mine_vertical (Vertical.compress (Vertical.of_db db))
      ~min_support:0.01
  in
  Alcotest.(check bool) "compressed mining = plain mining" true
    (plain = compressed);
  (* windowed counts shard identically: sum over a partition = full *)
  let vt = Vertical.compress (Vertical.of_db db) in
  Alcotest.(check int) "alignment hint" Column.block_words
    (Vertical.word_alignment vt);
  let prepared =
    Vertical.prepare
      (List.map (fun (s, _) -> s) (List.filter (fun (s, _) -> Itemset.cardinal s >= 2) plain))
  in
  if Vertical.prepared_length prepared > 0 then begin
    let full = Vertical.count_into vt prepared in
    let n_words = Vertical.word_count vt in
    let totals = Array.make (Vertical.prepared_length prepared) 0 in
    let pos = ref 0 in
    while !pos < n_words do
      let hi = min n_words (!pos + 17) in
      let part = Vertical.count_into vt ~word_lo:!pos ~word_hi:hi prepared in
      Array.iteri (fun i c -> totals.(i) <- totals.(i) + c) part;
      pos := hi
    done;
    Alcotest.(check bool) "unaligned window partition sums" true (full = totals)
  end

let test_of_colfile_mining () =
  with_temp @@ fun src ->
  with_temp @@ fun dst ->
  let db =
    Db.create ~universe:6
      (Array.init 700 (fun tid ->
           Itemset.of_list
             (List.filter
                (fun item -> (tid + item) mod (2 + item) = 0)
                [ 0; 1; 2; 3; 4; 5 ])))
  in
  (* header format: some transactions are empty, which FIMI cannot carry
     unambiguously *)
  Io.write_file src db;
  ignore (Colfile.convert ~src ~dst ());
  let cf = Colfile.open_file dst in
  Fun.protect
    ~finally:(fun () -> Colfile.close cf)
    (fun () ->
      let vt = Vertical.of_colfile cf in
      Alcotest.(check int) "compressed items" 6 (Vertical.compressed_items vt);
      let from_file = Apriori.mine_vertical vt ~min_support:0.05 in
      let from_ram = Apriori.mine ~counter:Apriori.Vertical db ~min_support:0.05 in
      Alcotest.(check bool) "colfile mining = in-RAM mining" true
        (from_file = from_ram);
      (* the round-trip back to row-major is exact *)
      let back = Vertical.to_db vt in
      Alcotest.(check bool) "to_db inverts the transpose" true
        (Array.for_all2 Itemset.equal (Db.transactions db)
           (Db.transactions back)))

let suite =
  [
    Alcotest.test_case "last_word_mask" `Quick test_last_word_mask;
    Alcotest.test_case "empty column" `Quick test_empty_column;
    Alcotest.test_case "full-universe run" `Quick test_full_universe_run;
    Alcotest.test_case "representation choice" `Quick test_representation_choice;
    Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
    Alcotest.test_case "of_words = of_tids" `Quick test_of_words_equals_of_tids;
    Alcotest.test_case "of_blocks validation" `Quick test_of_blocks_validation;
    Alcotest.test_case "kernel differential" `Quick test_kernel_differential;
    Alcotest.test_case "window partition" `Quick test_window_partition;
    Alcotest.test_case "write_into expansion" `Quick test_write_into_expansion;
    Alcotest.test_case "colfile round-trip" `Quick test_colfile_roundtrip;
    Alcotest.test_case "colfile corruption" `Quick test_colfile_corruption;
    Alcotest.test_case "convert fimi" `Quick test_convert_fimi;
    Alcotest.test_case "convert header + errors" `Quick
      test_convert_header_format_and_errors;
    Alcotest.test_case "fold_transactions" `Quick test_fold_transactions;
    Alcotest.test_case "compressed counting parity" `Quick
      test_compress_counting_parity;
    Alcotest.test_case "of_colfile mining" `Quick test_of_colfile_mining;
  ]
