(* Validate JSON-lines input on stdin with the in-repo parser: every
   non-empty line must parse and carry a "type" field.  Used by the CI
   smoke step to check `ppdm mine --stats json` output without depending
   on jq or any opam JSON package.  Exit 0 on success, 1 otherwise. *)

let () =
  let ok = ref true in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         incr lines;
         match Ppdm_obs.Json.parse line with
         | Ok v -> (
             match Ppdm_obs.Json.member "type" v with
             | Some (Ppdm_obs.Json.String _) -> ()
             | _ ->
                 ok := false;
                 Printf.eprintf "json_check: line %d has no type field: %s\n"
                   !lines line)
         | Error e ->
             ok := false;
             Printf.eprintf "json_check: line %d unparsable (%s): %s\n" !lines e
               line
       end
     done
   with End_of_file -> ());
  if !lines = 0 then begin
    prerr_endline "json_check: no input lines";
    exit 1
  end;
  if !ok then Printf.printf "json_check: %d lines ok\n" !lines
  else exit 1
