(* Validate obs-layer output on stdin with the in-repo parser; no jq, no
   opam JSON package.  Exit 0 on success, 1 otherwise.

   Modes:
     (default)       JSON-lines, e.g. `ppdm mine --stats json`: every
                     non-empty line must parse and carry a "type" field.
     --trace         one Chrome trace-event document, e.g. `ppdm private
                     --trace out.json`: a JSON array whose every element
                     has the ph/ts/pid/tid/name fields the viewers
                     require (cat too, except on counter events).
     --openmetrics   one OpenMetrics text document, e.g. `ppdm stat
                     --raw`: must pass the structural checks of
                     [Ppdm_obs.Exposition.validate]. *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("json_check: " ^ s); exit 1) fmt

let check_lines () =
  let ok = ref true in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         incr lines;
         match Ppdm_obs.Json.parse line with
         | Ok v -> (
             match Ppdm_obs.Json.member "type" v with
             | Some (Ppdm_obs.Json.String _) -> ()
             | _ ->
                 ok := false;
                 Printf.eprintf "json_check: line %d has no type field: %s\n"
                   !lines line)
         | Error e ->
             ok := false;
             Printf.eprintf "json_check: line %d unparsable (%s): %s\n" !lines e
               line
       end
     done
   with End_of_file -> ());
  if !lines = 0 then fail "no input lines";
  if !ok then Printf.printf "json_check: %d lines ok\n" !lines else exit 1

let check_trace () =
  let events =
    match Ppdm_obs.Json.parse (read_all stdin) with
    | Error e -> fail "trace unparsable: %s" e
    | Ok (Ppdm_obs.Json.List events) -> events
    | Ok _ -> fail "trace is not a JSON array"
  in
  if events = [] then fail "trace has no events";
  List.iteri
    (fun i ev ->
      let str key =
        match Ppdm_obs.Json.member key ev with
        | Some (Ppdm_obs.Json.String s) -> s
        | _ -> fail "event %d: missing string field %S" i key
      in
      let num key =
        match Ppdm_obs.Json.member key ev with
        | Some (Ppdm_obs.Json.Int _ | Ppdm_obs.Json.Float _) -> ()
        | _ -> fail "event %d: missing numeric field %S" i key
      in
      ignore (str "name");
      let ph = str "ph" in
      if not (List.mem ph [ "B"; "E"; "i"; "C" ]) then
        fail "event %d: unknown phase %S" i ph;
      if ph <> "C" then ignore (str "cat");
      num "ts";
      num "pid";
      num "tid")
    events;
  Printf.printf "json_check: trace ok (%d events)\n" (List.length events)

let check_openmetrics () =
  match Ppdm_obs.Exposition.validate (read_all stdin) with
  | Ok samples ->
      Printf.printf "json_check: openmetrics ok (%d samples)\n"
        (List.length samples)
  | Error e -> fail "openmetrics invalid: %s" e

let () =
  match Sys.argv with
  | [| _ |] -> check_lines ()
  | [| _; "--trace" |] -> check_trace ()
  | [| _; "--openmetrics" |] -> check_openmetrics ()
  | _ -> fail "usage: json_check [--trace|--openmetrics] < input"
