(* Parallel runtime tests: the determinism contract (parallel output
   bit-identical to sequential at any job count) across randomization,
   stream aggregation, and both miners; plus pool robustness — a worker
   exception must neither kill the pool nor deadlock the batch. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm
open Ppdm_mining
open Ppdm_runtime

let job_counts = [ 1; 2; 4 ]

let setup_db ~seed =
  let rng = Rng.create ~seed () in
  Quest.generate rng
    {
      Quest.default with
      universe = 120;
      n_transactions = 3_000;
      avg_transaction_size = 6.;
      n_patterns = 30;
    }

let scheme_for db =
  Randomizer.cut_and_paste ~universe:(Db.universe db) ~cutoff:4 ~rho:0.03

let check_tagged_equal what a b =
  Alcotest.(check int) (what ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (size, y) ->
      let size', y' = b.(i) in
      if size <> size' || not (Itemset.equal y y') then
        Alcotest.failf "%s: transaction %d differs" what i)
    a

let check_itemsets_equal what a b =
  Alcotest.(check int) (what ^ ": count") (List.length a) (List.length b);
  List.iter2
    (fun (s, c) (s', c') ->
      if not (Itemset.equal s s') || c <> c' then
        Alcotest.failf "%s: itemset mismatch (%s/%d vs %s/%d)" what
          (Itemset.to_string s) c (Itemset.to_string s') c')
    a b

(* Randomization: all job counts produce the same bytes from one seed, and
   a small chunk size exercises multi-chunk scheduling. *)
let test_randomize_determinism () =
  let db = setup_db ~seed:11 in
  let scheme = scheme_for db in
  let results =
    List.map
      (fun jobs ->
        Pool.with_pool ~jobs (fun pool ->
            Parallel.randomize_db_tagged pool ~chunk:128 scheme
              (Rng.create ~seed:5 ()) db))
      job_counts
  in
  match results with
  | base :: rest ->
      List.iteri
        (fun i r ->
          check_tagged_equal
            (Printf.sprintf "jobs=1 vs jobs=%d" (List.nth job_counts (i + 1)))
            base r)
        rest
  | [] -> assert false

let test_randomize_db_roundtrip () =
  let db = setup_db ~seed:12 in
  let scheme = scheme_for db in
  let a =
    Pool.with_pool ~jobs:1 (fun pool ->
        Parallel.randomize_db ~chunk:100 pool scheme (Rng.create ~seed:3 ()) db)
  in
  let b =
    Pool.with_pool ~jobs:4 (fun pool ->
        Parallel.randomize_db ~chunk:100 pool scheme (Rng.create ~seed:3 ()) db)
  in
  Alcotest.(check int) "universe kept" (Db.universe db) (Db.universe a);
  Alcotest.(check int) "length kept" (Db.length db) (Db.length a);
  Db.iteri
    (fun i tx ->
      if not (Itemset.equal tx (Db.get b i)) then
        Alcotest.failf "transaction %d differs across job counts" i)
    a

(* Streaming: the fanned-out accumulator carries exactly the sequential
   statistic — estimates match to the last bit. *)
let test_stream_parallel_equals_sequential () =
  let db = setup_db ~seed:21 in
  let scheme = scheme_for db in
  let itemset = Itemset.of_list [ 3; 7 ] in
  let data = Randomizer.apply_db_tagged scheme (Rng.create ~seed:9 ()) db in
  let seq = Stream.create ~scheme ~itemset in
  Stream.observe_all seq data;
  let expected = Stream.estimate seq in
  List.iter
    (fun jobs ->
      let fanned =
        Pool.with_pool ~jobs (fun pool ->
            Parallel.observe_all pool ~chunk:256 ~scheme ~itemset data)
      in
      Alcotest.(check int)
        (Printf.sprintf "observed at jobs=%d" jobs)
        (Array.length data) (Stream.observed fanned);
      let e = Stream.estimate fanned in
      Alcotest.(check (float 0.))
        (Printf.sprintf "support at jobs=%d" jobs)
        expected.Estimator.support e.Estimator.support;
      Alcotest.(check (float 0.))
        (Printf.sprintf "sigma at jobs=%d" jobs)
        expected.Estimator.sigma e.Estimator.sigma)
    job_counts

(* Counting and mining: parallel support counts and both parallel miners
   reproduce their sequential counterparts exactly. *)
let test_support_counts () =
  let db = setup_db ~seed:31 in
  let candidates = List.map fst (Apriori.mine db ~min_support:0.03 ~max_size:2) in
  Alcotest.(check bool) "have candidates" true (candidates <> []);
  let expected = Count.support_counts db candidates in
  List.iter
    (fun jobs ->
      let got =
        Pool.with_pool ~jobs (fun pool ->
            Parallel.support_counts pool ~chunk:300 db candidates)
      in
      check_itemsets_equal (Printf.sprintf "counts at jobs=%d" jobs) expected got)
    job_counts

let test_apriori_parallel () =
  let db = setup_db ~seed:41 in
  let expected = Apriori.mine db ~min_support:0.02 ~max_size:3 in
  List.iter
    (fun jobs ->
      let got =
        Pool.with_pool ~jobs (fun pool ->
            Parallel.apriori_mine pool ~chunk:300 db ~min_support:0.02
              ~max_size:3)
      in
      check_itemsets_equal (Printf.sprintf "apriori at jobs=%d" jobs) expected got)
    job_counts

let test_eclat_parallel () =
  let db = setup_db ~seed:51 in
  let expected = Eclat.mine db ~min_support:0.02 ~max_size:3 in
  List.iter
    (fun jobs ->
      let got =
        Pool.with_pool ~jobs (fun pool ->
            Parallel.eclat_mine pool db ~min_support:0.02 ~max_size:3)
      in
      check_itemsets_equal (Printf.sprintf "eclat at jobs=%d" jobs) expected got)
    job_counts

(* map_reduce seeding: same seed -> same reduction at every job count,
   different seeds -> different reduction (children really are seeded). *)
let test_map_reduce_determinism () =
  let sum_of ~jobs ~seed =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_reduce pool
          ~rng:(Rng.create ~seed ())
          ~n:10_000 ~chunk:64
          ~map:(fun rng ~pos:_ ~len ->
            let acc = ref 0 in
            for _ = 1 to len do
              acc := !acc + Rng.int rng 1_000
            done;
            !acc)
          ~reduce:( + ) ())
  in
  let base = sum_of ~jobs:1 ~seed:17 in
  Alcotest.(check bool) "non-empty" true (base <> None);
  List.iter
    (fun jobs ->
      Alcotest.(check (option int))
        (Printf.sprintf "sum at jobs=%d" jobs)
        base
        (sum_of ~jobs ~seed:17))
    job_counts;
  Alcotest.(check bool)
    "different seed, different sum" true
    (sum_of ~jobs:2 ~seed:18 <> base)

let test_map_reduce_advances_rng () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let rng = Rng.create ~seed:23 () in
      let draw () =
        Pool.map_reduce pool ~rng ~n:100 ~chunk:10
          ~map:(fun child ~pos:_ ~len:_ -> Rng.int child 1_000_000)
          ~reduce:( + ) ()
      in
      Alcotest.(check bool)
        "consecutive calls see fresh randomness" true
        (draw () <> draw ()))

(* Pool robustness: a worker exception surfaces in the caller after the
   batch drains, and the same pool then runs the next batch normally. *)
let test_pool_survives_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let failing =
        Array.init 16 (fun i ->
            fun () -> if i = 7 then failwith "worker boom" else i)
      in
      Alcotest.check_raises "exception propagates" (Failure "worker boom")
        (fun () -> ignore (Pool.run pool failing));
      (* reuse after the failure: a full map_reduce on the same pool *)
      let total =
        Pool.map_reduce pool
          ~rng:(Rng.create ~seed:1 ())
          ~n:1_000 ~chunk:32
          ~map:(fun _ ~pos ~len ->
            let acc = ref 0 in
            for i = pos to pos + len - 1 do
              acc := !acc + i
            done;
            !acc)
          ~reduce:( + ) ()
      in
      Alcotest.(check (option int)) "pool still works" (Some 499_500) total;
      let again = Pool.run pool (Array.init 8 (fun i -> fun () -> i * i)) in
      Alcotest.(check (array int)) "run works too"
        (Array.init 8 (fun i -> i * i))
        again)

(* Stealing scheduler: bit-identical mining output at every job count,
   under a word chunk small enough to cut many grid cells. *)
let test_stealing_mine_identical () =
  let db = setup_db ~seed:61 in
  let expected =
    Apriori.mine ~counter:Apriori.Vertical db ~min_support:0.02 ~max_size:3
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun (sname, sched) ->
          let got =
            Pool.with_pool ~jobs (fun pool ->
                Parallel.apriori_mine pool ~chunk:7 ~sched
                  ~counter:Apriori.Vertical db ~min_support:0.02 ~max_size:3)
          in
          check_itemsets_equal
            (Printf.sprintf "%s at jobs=%d" sname jobs)
            expected got)
        [ ("chunked", Pool.Chunked); ("stealing", Pool.Stealing) ])
    [ 1; 2; 4; 8 ]

(* A candidate chunk of 1 forces one grid column per candidate: the
   column-offset reduction is exercised on every cell shape. *)
let test_grid_columns_identical () =
  let db = setup_db ~seed:62 in
  let vt = Vertical.load db in
  let candidates =
    List.map fst (Apriori.mine db ~min_support:0.03 ~max_size:2)
  in
  let expected = Vertical.support_counts vt candidates in
  List.iter
    (fun (chunk, cand_chunk) ->
      let got =
        Pool.with_pool ~jobs:4 (fun pool ->
            Parallel.support_counts_vertical pool ~chunk ~cand_chunk
              ~sched:Pool.Stealing vt candidates)
      in
      check_itemsets_equal
        (Printf.sprintf "grid %dx%d" chunk cand_chunk)
        expected got)
    [ (5, 1); (1, 7); (13, 13); (1_000_000, 1_000_000) ]

let test_stealing_pool_survives_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let failing =
        Array.init 16 (fun i ->
            fun () -> if i = 7 then failwith "stolen boom" else i)
      in
      Alcotest.check_raises "exception propagates" (Failure "stolen boom")
        (fun () -> ignore (Pool.run ~sched:Pool.Stealing pool failing));
      let again =
        Pool.run ~sched:Pool.Stealing pool
          (Array.init 8 (fun i -> fun () -> i * i))
      in
      Alcotest.(check (array int)) "stealing run works after failure"
        (Array.init 8 (fun i -> i * i))
        again)

(* Grid planning: exact partition, column-major cell order, and the
   documented defaults. *)
let test_grid_plan () =
  let g =
    Grid.plan ~word_chunk:10 ~cand_chunk:100 ~n_words:25 ~n_candidates:250 ()
  in
  Alcotest.(check int) "3 windows x 3 columns" 9 (Array.length g.Grid.cells);
  let cover = Array.make_matrix 25 250 0 in
  Array.iter
    (fun (c : Grid.cell) ->
      for w = c.Grid.word_lo to c.Grid.word_hi - 1 do
        for q = c.Grid.cand_lo to c.Grid.cand_hi - 1 do
          cover.(w).(q) <- cover.(w).(q) + 1
        done
      done)
    g.Grid.cells;
  Array.iteri
    (fun w row ->
      Array.iteri
        (fun q hits ->
          if hits <> 1 then
            Alcotest.failf "cell (%d,%d) covered %d times" w q hits)
        row)
    cover;
  let c0 = g.Grid.cells.(0) and c1 = g.Grid.cells.(1) in
  Alcotest.(check (list int))
    "column-major: second cell is the next window of column 0"
    [ 0; 0; 10; 0 ]
    [ c0.Grid.word_lo; c0.Grid.cand_lo; c1.Grid.word_lo; c1.Grid.cand_lo ];
  Alcotest.(check int) "small db keeps the 1-D default" 256
    (Grid.word_chunk_for ~n_words:100 ());
  Alcotest.(check int) "huge db capped by the L2 budget"
    (Grid.default_l2_bytes / 48)
    (Grid.word_chunk_for ~n_words:10_000_000 ());
  Alcotest.(check int) "small batch stays one column" 512
    (Grid.cand_chunk_for ~n_candidates:100);
  Alcotest.(check int) "huge batch capped at 4096" 4096
    (Grid.cand_chunk_for ~n_candidates:1_000_000);
  Alcotest.check_raises "n_words must be positive"
    (Invalid_argument "Grid.plan: n_words must be positive") (fun () ->
      ignore (Grid.plan ~n_words:0 ~n_candidates:1 ()));
  Alcotest.check_raises "word_chunk must be positive"
    (Invalid_argument "Grid.plan: word_chunk must be positive") (fun () ->
      ignore (Grid.plan ~word_chunk:0 ~n_words:1 ~n_candidates:1 ()));
  Alcotest.check_raises "l2_bytes must be positive"
    (Invalid_argument "Grid: l2_bytes must be positive") (fun () ->
      ignore (Grid.word_chunk_for ~l2_bytes:0 ~n_words:1 ()))

(* Queue-wait accounting under stealing: a stolen task's wait must land
   on the histogram of the worker that executed it.  Task 0 parks the
   caller (worker 0) until task 1 has run, so worker 1 must steal at
   least one of worker 0's remaining tasks before the batch can finish —
   and its per-worker histogram must therefore hold more than its own
   three tasks. *)
let test_stealing_wait_accounting () =
  Ppdm_obs.Metrics.set_enabled true;
  Ppdm_obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ppdm_obs.Metrics.set_enabled false;
      Ppdm_obs.Metrics.reset ())
    (fun () ->
      let unblock = Atomic.make false in
      let timed_out = ref false in
      let task i () =
        if i = 0 then begin
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            (not (Atomic.get unblock)) && Unix.gettimeofday () < deadline
          do
            Domain.cpu_relax ()
          done;
          if not (Atomic.get unblock) then timed_out := true
        end
        else if i = 1 then Atomic.set unblock true
      in
      Pool.with_pool ~jobs:2 (fun pool ->
          ignore (Pool.run ~sched:Pool.Stealing pool (Array.init 6 task)));
      Alcotest.(check bool) "a steal released the parked owner" false
        !timed_out;
      let snap = Ppdm_obs.Metrics.snapshot () in
      let counter name =
        match List.assoc_opt name snap.Ppdm_obs.Metrics.counters with
        | Some v -> v
        | None -> 0
      in
      let hist_count name =
        match List.assoc_opt name snap.Ppdm_obs.Metrics.histograms with
        | Some h -> h.Ppdm_obs.Metrics.count
        | None -> 0
      in
      Alcotest.(check bool) "steals recorded" true (counter "pool.steals" >= 1);
      Alcotest.(check int) "every wait observed once" 6
        (hist_count "pool.queue_wait_ns");
      Alcotest.(check int) "per-worker waits partition the total" 6
        (hist_count "pool.queue_wait_ns.w0"
        + hist_count "pool.queue_wait_ns.w1");
      Alcotest.(check bool)
        "the thief's histogram holds its slice plus the stolen work" true
        (hist_count "pool.queue_wait_ns.w1" >= 4);
      Alcotest.(check int) "per-worker cell counts partition the batch" 6
        (counter "pool.cells.w0" + counter "pool.cells.w1"))

let test_pool_edge_cases () =
  (* jobs <= 1 spawns nothing and still works; empty inputs are fine *)
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "jobs clamped to 1" 1 (Pool.jobs pool);
      Alcotest.(check (array int)) "empty run" [||] (Pool.run pool [||]);
      Alcotest.(check (option int)) "n=0 map_reduce" None
        (Pool.map_reduce pool
           ~rng:(Rng.create ~seed:1 ())
           ~n:0
           ~map:(fun _ ~pos:_ ~len:_ -> 0)
           ~reduce:( + ) ());
      Alcotest.(check (array int)) "empty map_array" [||]
        (Pool.map_array pool
           ~rng:(Rng.create ~seed:1 ())
           ~f:(fun _ x -> x)
           [||]));
  (* shutdown is idempotent and the pool degrades to sequential after *)
  let pool = Pool.create ~jobs:3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (array int)) "post-shutdown run is sequential"
    [| 0; 1; 2 |]
    (Pool.run pool (Array.init 3 Fun.id |> Array.map (fun i -> fun () -> i)))

let suite =
  [
    Alcotest.test_case "randomize determinism across jobs" `Quick
      test_randomize_determinism;
    Alcotest.test_case "randomize_db across jobs" `Quick
      test_randomize_db_roundtrip;
    Alcotest.test_case "stream parallel = sequential" `Quick
      test_stream_parallel_equals_sequential;
    Alcotest.test_case "support counts parallel = sequential" `Quick
      test_support_counts;
    Alcotest.test_case "apriori parallel = sequential" `Quick
      test_apriori_parallel;
    Alcotest.test_case "eclat parallel = sequential" `Quick test_eclat_parallel;
    Alcotest.test_case "map_reduce determinism" `Quick
      test_map_reduce_determinism;
    Alcotest.test_case "map_reduce advances rng" `Quick
      test_map_reduce_advances_rng;
    Alcotest.test_case "pool survives worker exception" `Quick
      test_pool_survives_exception;
    Alcotest.test_case "stealing mine = sequential at jobs 1/2/4/8" `Quick
      test_stealing_mine_identical;
    Alcotest.test_case "grid columns reduce identically" `Quick
      test_grid_columns_identical;
    Alcotest.test_case "stealing pool survives worker exception" `Quick
      test_stealing_pool_survives_exception;
    Alcotest.test_case "grid plan partitions exactly" `Quick test_grid_plan;
    Alcotest.test_case "stolen waits land on the executing worker" `Quick
      test_stealing_wait_accounting;
    Alcotest.test_case "pool edge cases" `Quick test_pool_edge_cases;
  ]
