(* Trace-layer tests: ring overflow semantics, begin/end pairing across
   exceptions, exporter well-formedness (Chrome JSON and folded stacks,
   including the wall-clock clamp), the disabled path staying empty, the
   determinism guarantee with tracing on at several job counts, and the
   Benchdata round-trip plus regression gate behind `ppdm bench-diff`. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm_runtime
open Ppdm_obs

(* Every test restores the trace layer to its initial state: disabled,
   default capacity, empty rings.  Metrics are scoped too because the
   overflow test counts drops through the metrics registry. *)
let scoped f =
  Metrics.reset ();
  Span.reset ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Trace.set_capacity 65536;
      Metrics.reset ();
      Span.reset ();
      Trace.reset ())
    f

let test_disabled_leaves_no_state () =
  scoped (fun () ->
      Trace.begin_ ~name:"a" ~cat:"test";
      Trace.instant ~name:"b" ~cat:"test";
      Trace.end_ ~name:"a" ~cat:"test";
      Trace.with_ ~name:"c" ~cat:"test" (fun () -> ());
      Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events ()));
      Alcotest.(check int) "no drops" 0 (Trace.dropped ());
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "metrics untouched" 0
        (List.length snap.Metrics.counters))

let test_ring_overflow_drops_oldest () =
  scoped (fun () ->
      Trace.set_capacity 4;
      Trace.reset ();
      Trace.set_enabled true;
      Metrics.set_enabled true;
      for i = 0 to 9 do
        Trace.instant ~name:(Printf.sprintf "ev%d" i) ~cat:"test"
      done;
      Trace.set_enabled false;
      let evs = Trace.events () in
      Alcotest.(check int) "ring holds capacity" 4 (List.length evs);
      Alcotest.(check (list string))
        "newest window survives, oldest dropped first"
        [ "ev6"; "ev7"; "ev8"; "ev9" ]
        (List.map (fun (e : Trace.event) -> e.Trace.name) evs);
      Alcotest.(check int) "dropped counter matches" 6 (Trace.dropped ());
      let snap = Metrics.snapshot () in
      Alcotest.(check (list (pair string int)))
        "drops surface as a metrics counter"
        [ ("trace.dropped", 6) ]
        snap.Metrics.counters;
      (* export of an overflowed ring is still a well-formed trace *)
      match Trace.to_chrome_json ~dropped:(Trace.dropped ()) evs with
      | Json.List objs ->
          Alcotest.(check int) "events + drop counter event" 5
            (List.length objs)
      | _ -> Alcotest.fail "chrome export is not a JSON array")

exception Boom

let test_pairing_survives_exceptions () =
  scoped (fun () ->
      Trace.set_enabled true;
      (try Trace.with_ ~name:"outer" ~cat:"test" (fun () -> raise Boom)
       with Boom -> ());
      Trace.set_enabled false;
      let phases =
        List.map (fun (e : Trace.event) -> e.Trace.phase) (Trace.events ())
      in
      Alcotest.(check bool) "begin/end pair emitted" true
        (phases = [ Trace.Begin; Trace.End ]))

let test_chrome_json_fields () =
  scoped (fun () ->
      Trace.set_enabled true;
      Trace.with_ ~name:"slice" ~cat:"span" (fun () ->
          Trace.instant ~name:"mark" ~cat:"test");
      Trace.set_enabled false;
      match Trace.to_chrome_json ~dropped:1 (Trace.events ()) with
      | Json.List objs ->
          Alcotest.(check int) "three events plus counter" 4 (List.length objs);
          List.iter
            (fun ev ->
              let str key =
                match Json.member key ev with
                | Some (Json.String s) -> Some s
                | _ -> None
              in
              let num key =
                match Json.member key ev with
                | Some (Json.Int _ | Json.Float _) -> true
                | _ -> false
              in
              Alcotest.(check bool) "has name" true (str "name" <> None);
              let ph =
                match str "ph" with Some p -> p | None -> Alcotest.fail "ph"
              in
              Alcotest.(check bool) "known phase" true
                (List.mem ph [ "B"; "E"; "i"; "C" ]);
              if ph <> "C" then
                Alcotest.(check bool) "has cat" true (str "cat" <> None);
              Alcotest.(check bool) "numeric ts/pid/tid" true
                (num "ts" && num "pid" && num "tid"))
            objs
      | _ -> Alcotest.fail "chrome export is not a JSON array")

(* Synthetic events let us feed the exporter a backwards clock: the
   folded output must clamp the negative duration to 0, never emit a
   negative self time. *)
let test_folded_clamps_backwards_clock () =
  let ev phase name ts_ns seq =
    { Trace.phase; name; cat = "test"; ts_ns; domain = 0; seq }
  in
  let folded =
    Trace.to_folded
      [
        ev Trace.Begin "stepped" 1_000 0;
        ev Trace.End "stepped" 400 1;
        (* NTP step: ends before it began *)
        ev Trace.Begin "fine" 2_000 2;
        ev Trace.End "fine" 2_500 3;
      ]
  in
  Alcotest.(check bool) "clamped frame present" true
    (List.mem "stepped 0" (String.split_on_char '\n' folded));
  Alcotest.(check bool) "normal frame keeps duration" true
    (List.mem "fine 500" (String.split_on_char '\n' folded));
  Alcotest.(check bool) "no negative self time" true
    (not (String.exists (( = ) '-') folded))

(* The design's core guarantee: tracing on changes no computed result at
   any job count. *)
let test_trace_does_not_change_results () =
  let universe = 80 in
  let rng = Rng.create ~seed:21 () in
  let db = Simple.fixed_size rng ~universe ~size:5 ~count:600 in
  let mine jobs =
    Pool.with_pool ~jobs (fun pool ->
        Parallel.apriori_mine pool db ~min_support:0.04 ~max_size:3)
  in
  let plain = mine 1 in
  scoped (fun () ->
      Trace.set_enabled true;
      List.iter
        (fun jobs ->
          let traced = mine jobs in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d identical with tracing on" jobs)
            true
            (List.length plain = List.length traced
            && List.for_all2
                 (fun (s, c) (s', c') -> Itemset.equal s s' && c = c')
                 plain traced))
        [ 1; 2; 4 ];
      Alcotest.(check bool) "trace captured the mining run" true
        (Trace.events () <> []))

let m section name jobs ns =
  {
    Benchdata.section;
    name;
    jobs;
    ns_per_op = ns;
    throughput = (if ns > 0. then 1e9 /. ns else 0.);
  }

let test_benchdata_roundtrip () =
  let ms = [ m "b1" "randomize m=5" 1 812.5; m "b4" "count" 4 123456.0 ] in
  let path = Filename.temp_file "ppdm_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Benchdata.write_file path ms;
      match Benchdata.read_file path with
      | Error e -> Alcotest.fail ("read_file: " ^ e)
      | Ok back ->
          Alcotest.(check int) "same count" (List.length ms) (List.length back);
          List.iter2
            (fun a b ->
              Alcotest.(check string) "key survives" (Benchdata.key a)
                (Benchdata.key b);
              Alcotest.(check (float 1e-9)) "ns survives" a.Benchdata.ns_per_op
                b.Benchdata.ns_per_op)
            ms back)

let test_benchdiff_gate () =
  let baseline = [ m "b1" "fast" 1 100.; m "b6" "selftest" 1 1_000_000. ] in
  (* identical inputs: nothing regresses *)
  let d = Benchdata.diff ~tolerance:0.5 ~baseline ~current:baseline in
  Alcotest.(check int) "identical -> no regressions" 0
    (List.length d.Benchdata.regressions);
  Alcotest.(check int) "both compared" 2 d.Benchdata.compared;
  (* a 10x slowdown on one entry must trip the gate *)
  let current = [ m "b1" "fast" 1 1_000.; m "b6" "selftest" 1 1_000_000. ] in
  let d = Benchdata.diff ~tolerance:0.5 ~baseline ~current in
  (match d.Benchdata.regressions with
  | [ r ] ->
      Alcotest.(check string) "the slowed entry" "b1/fast/j1"
        (Benchdata.key r.Benchdata.baseline);
      Alcotest.(check (float 1e-6)) "ratio is 10x" 10. r.Benchdata.ratio
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected 1 regression, got %d" (List.length rs)));
  (* within tolerance passes; renames report as missing/added, not failures *)
  let d =
    Benchdata.diff ~tolerance:0.5 ~baseline
      ~current:[ m "b1" "fast" 1 140.; m "b6" "renamed" 1 1_000_000. ]
  in
  Alcotest.(check int) "40% slower within 50% tolerance" 0
    (List.length d.Benchdata.regressions);
  Alcotest.(check int) "one missing" 1 (List.length d.Benchdata.missing);
  Alcotest.(check int) "one added" 1 (List.length d.Benchdata.added)

let suite =
  [
    Alcotest.test_case "disabled leaves no state" `Quick
      test_disabled_leaves_no_state;
    Alcotest.test_case "ring overflow drops oldest" `Quick
      test_ring_overflow_drops_oldest;
    Alcotest.test_case "pairing survives exceptions" `Quick
      test_pairing_survives_exceptions;
    Alcotest.test_case "chrome json fields" `Quick test_chrome_json_fields;
    Alcotest.test_case "folded clamps backwards clock" `Quick
      test_folded_clamps_backwards_clock;
    Alcotest.test_case "tracing does not change results" `Quick
      test_trace_does_not_change_results;
    Alcotest.test_case "benchdata round-trip" `Quick test_benchdata_roundtrip;
    Alcotest.test_case "bench-diff gate" `Quick test_benchdiff_gate;
  ]
