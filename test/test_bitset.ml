(* Bitset tests: agreement with the sorted-array Itemset implementation on
   every operation (the two representations must be interchangeable). *)

open Ppdm_data

let of_l width l = Bitset.of_itemset ~width (Itemset.of_list l)

let test_roundtrip () =
  let s = Itemset.of_list [ 0; 7; 62; 63; 100 ] in
  let b = Bitset.of_itemset ~width:128 s in
  Alcotest.(check (list int)) "roundtrip" (Itemset.to_list s)
    (Itemset.to_list (Bitset.to_itemset b))

let test_word_boundaries () =
  (* items straddling the 62-bit word boundary *)
  let b = of_l 200 [ 60; 61; 62; 63; 123; 124; 199 ] in
  List.iter
    (fun i ->
      Alcotest.(check bool) (string_of_int i)
        (List.mem i [ 60; 61; 62; 63; 123; 124; 199 ])
        (Bitset.mem i b))
    [ 0; 59; 60; 61; 62; 63; 64; 122; 123; 124; 125; 198; 199 ];
  Alcotest.(check int) "cardinal" 7 (Bitset.cardinal b)

let test_add_remove () =
  let b = Bitset.create ~width:70 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  let b = Bitset.add 65 b in
  Alcotest.(check bool) "added" true (Bitset.mem 65 b);
  Alcotest.(check int) "one" 1 (Bitset.cardinal b);
  let b = Bitset.remove 65 b in
  Alcotest.(check bool) "removed" true (Bitset.is_empty b)

let test_validation () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Bitset.create: width must be positive") (fun () ->
      ignore (Bitset.create ~width:0));
  let b = Bitset.create ~width:10 in
  Alcotest.check_raises "out of width"
    (Invalid_argument "Bitset: item outside the width") (fun () ->
      ignore (Bitset.mem 10 b));
  Alcotest.check_raises "of_itemset out of width"
    (Invalid_argument "Bitset.of_itemset: item outside width") (fun () ->
      ignore (of_l 5 [ 7 ]));
  let other = Bitset.create ~width:11 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitset.union: width mismatch") (fun () ->
      ignore (Bitset.union b other))

let test_complement_boundaries () =
  (* widths at, below, and above the 62-bit word boundary: the tail-word
     mask must leave no phantom members *)
  List.iter
    (fun width ->
      let full = Bitset.complement (Bitset.create ~width) in
      Alcotest.(check int)
        (Printf.sprintf "full at width %d" width)
        width (Bitset.cardinal full);
      Alcotest.(check bool)
        (Printf.sprintf "empty again at width %d" width)
        true
        (Bitset.is_empty (Bitset.complement full)))
    [ 1; 61; 62; 63; 124; 150 ]

(* Set-algebra laws, as properties on the ppdm_check harness (failures
   replay from the printed seed). *)
let algebra_tests =
  let open Ppdm_check in
  let width = 150 in
  let bit s = Bitset.of_itemset ~width s in
  let set_g = Ppdm_check.Gen.itemset ~universe:width in
  let pair2 = Ppdm_check.Gen.pair set_g set_g in
  let triple = Ppdm_check.Gen.pair set_g pair2 in
  let t name g p =
    Alcotest.test_case name `Quick (fun () ->
        Property.assert_ok (Property.check ~max_size:60 ~name g p))
  in
  [
    t "complement is an involution" set_g (fun s ->
        Bitset.equal (Bitset.complement (Bitset.complement (bit s))) (bit s));
    t "complement cardinality" set_g (fun s ->
        Bitset.cardinal (Bitset.complement (bit s))
        = width - Itemset.cardinal s);
    t "complement flips every membership" set_g (fun s ->
        let c = Bitset.complement (bit s) in
        let ok = ref true in
        for i = 0 to width - 1 do
          if Bitset.mem i c = Itemset.mem i s then ok := false
        done;
        !ok);
    t "excluded middle" set_g (fun s ->
        let b = bit s in
        let c = Bitset.complement b in
        Bitset.is_empty (Bitset.inter b c)
        && Bitset.cardinal (Bitset.union b c) = width);
    t "De Morgan" pair2 (fun (a, b) ->
        let ba = bit a and bb = bit b in
        Bitset.equal
          (Bitset.complement (Bitset.union ba bb))
          (Bitset.inter (Bitset.complement ba) (Bitset.complement bb))
        && Bitset.equal
             (Bitset.complement (Bitset.inter ba bb))
             (Bitset.union (Bitset.complement ba) (Bitset.complement bb)));
    t "diff is inter with complement" pair2 (fun (a, b) ->
        Bitset.equal
          (Bitset.diff (bit a) (bit b))
          (Bitset.inter (bit a) (Bitset.complement (bit b))));
    t "union and inter are commutative" pair2 (fun (a, b) ->
        let ba = bit a and bb = bit b in
        Bitset.equal (Bitset.union ba bb) (Bitset.union bb ba)
        && Bitset.equal (Bitset.inter ba bb) (Bitset.inter bb ba));
    t "union and inter are associative" triple (fun (a, (b, c)) ->
        let ba = bit a and bb = bit b and bc = bit c in
        Bitset.equal
          (Bitset.union ba (Bitset.union bb bc))
          (Bitset.union (Bitset.union ba bb) bc)
        && Bitset.equal
             (Bitset.inter ba (Bitset.inter bb bc))
             (Bitset.inter (Bitset.inter ba bb) bc));
    t "inter distributes over union" triple (fun (a, (b, c)) ->
        let ba = bit a and bb = bit b and bc = bit c in
        Bitset.equal
          (Bitset.inter ba (Bitset.union bb bc))
          (Bitset.union (Bitset.inter ba bb) (Bitset.inter ba bc)));
    t "inclusion-exclusion" pair2 (fun (a, b) ->
        let ba = bit a and bb = bit b in
        Bitset.cardinal ba + Bitset.cardinal bb
        = Bitset.cardinal (Bitset.union ba bb)
          + Bitset.cardinal (Bitset.inter ba bb));
  ]

let gen_items = QCheck.Gen.(list_size (int_range 0 40) (int_range 0 149))

let arb_items =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    gen_items

let qcheck_tests =
  let open QCheck in
  let width = 150 in
  let check2 name f_bit f_set =
    Test.make ~name ~count:300 (pair arb_items arb_items) (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        let ba = Bitset.of_itemset ~width sa and bb = Bitset.of_itemset ~width sb in
        Itemset.equal (Bitset.to_itemset (f_bit ba bb)) (f_set sa sb))
  in
  [
    check2 "union agrees with Itemset" Bitset.union Itemset.union;
    check2 "inter agrees with Itemset" Bitset.inter Itemset.inter;
    check2 "diff agrees with Itemset" Bitset.diff Itemset.diff;
    Test.make ~name:"cardinal agrees" ~count:300 arb_items (fun a ->
        let s = Itemset.of_list a in
        Bitset.cardinal (Bitset.of_itemset ~width s) = Itemset.cardinal s);
    Test.make ~name:"inter_cardinal agrees" ~count:300 (pair arb_items arb_items)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Bitset.inter_cardinal (Bitset.of_itemset ~width sa) (Bitset.of_itemset ~width sb)
        = Itemset.inter_size sa sb);
    Test.make ~name:"subset agrees" ~count:300 (pair arb_items arb_items)
      (fun (a, b) ->
        let sa = Itemset.of_list a and sb = Itemset.of_list b in
        Bitset.subset (Bitset.of_itemset ~width sa) (Bitset.of_itemset ~width sb)
        = Itemset.subset sa sb);
    Test.make ~name:"fold visits members in order" ~count:300 arb_items (fun a ->
        let s = Itemset.of_list a in
        let b = Bitset.of_itemset ~width s in
        List.rev (Bitset.fold (fun i acc -> i :: acc) b []) = Itemset.to_list s);
    Test.make ~name:"equal is structural" ~count:300 arb_items (fun a ->
        let s = Itemset.of_list a in
        Bitset.equal (Bitset.of_itemset ~width s) (Bitset.of_itemset ~width s));
  ]

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
    Alcotest.test_case "add and remove" `Quick test_add_remove;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "complement word boundaries" `Quick
      test_complement_boundaries;
  ]
  @ algebra_tests
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
