(* Telemetry-layer tests: the EWMA meter's closed-form decay, window
   histogram rotation determinism at jobs 1/2/4 under an injected clock,
   OpenMetrics escaping and structural validation, and the admin plane's
   healthz/readyz contract — unit-level on the pure request handler and
   end to end against a live server. *)

open Ppdm_data
open Ppdm
open Ppdm_obs
open Ppdm_server

(* Every test leaves the global registries disabled and empty, like the
   obs suite does: later suites run with metrics off. *)
let scoped f =
  Metrics.reset ();
  Window.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Window.reset ())
    f

let meter_at name now =
  match List.assoc_opt name (Window.snapshot ~now ()).Window.meters with
  | Some m -> m
  | None -> Alcotest.fail (Printf.sprintf "meter %s missing" name)

(* ------------------------------------------------------------ EWMA meter *)

(* The meter is pure arithmetic once the clock is injected: one weighted
   update per completed tick, closed-form decay over empty ticks.  Every
   expectation below is the textbook formula, not a golden value. *)
let test_ewma_closed_form () =
  scoped (fun () ->
      Metrics.set_enabled true;
      Window.define_meter ~tick_ns:1000 ~tau_ns:2000 "m";
      let alpha = 1. -. exp (-0.5) in
      Window.mark ~now:0 "m" 10;
      Alcotest.(check int) "total is immediate" 10 (meter_at "m" 0).Window.total;
      Alcotest.(check (float 0.))
        "rate 0 before the first tick completes" 0.
        (meter_at "m" 0).Window.rate;
      let per_sec = 10. *. 1e9 /. 1000. in
      Alcotest.(check (float 1e-3))
        "one completed tick" (alpha *. per_sec)
        (meter_at "m" 1000).Window.rate;
      Alcotest.(check (float 1e-3))
        "snapshot is read-only (same answer twice)" (alpha *. per_sec)
        (meter_at "m" 1000).Window.rate;
      for k = 1 to 5 do
        Alcotest.(check (float 1e-3))
          (Printf.sprintf "closed-form decay over %d empty ticks" k)
          (alpha *. per_sec *. ((1. -. alpha) ** float_of_int k))
          (meter_at "m" (1000 * (k + 1))).Window.rate
      done;
      (* a second burst folds in with the standard EWMA update *)
      Window.mark ~now:1500 "m" 20;
      let r1 = alpha *. per_sec in
      let r2 = r1 +. (alpha *. ((20. *. 1e9 /. 1000.) -. r1)) in
      Alcotest.(check (float 1e-3))
        "ewma update on the next burst" r2
        (meter_at "m" 2000).Window.rate;
      Alcotest.(check int) "total sums bursts" 30 (meter_at "m" 2000).Window.total)

(* ------------------------------------------- window rotation determinism *)

(* A fixed observation stream (strictly increasing injected clock,
   spanning 8 epochs against a 4-slot ring) partitioned round-robin
   across 1, 2, and 4 domains.  Window histograms sum integer slots, so
   snapshots must be bit-identical; meter totals are exact and rates
   agree up to floating-point summation order. *)
let obs = Array.init 240 (fun i -> (i * 3, ((i * 13) + 5) mod 997))
let snap_now = 717 (* epoch 7; live window = epochs 4..7 *)

let run_partitioned jobs =
  Window.reset ();
  Metrics.set_enabled true;
  Window.define_histogram ~epochs:4 ~epoch_ns:100 "w";
  Window.define_meter ~tick_ns:50 ~tau_ns:100 "r";
  let doms =
    List.init jobs (fun d ->
        Domain.spawn (fun () ->
            Array.iteri
              (fun i (now, v) ->
                if i mod jobs = d then begin
                  Window.observe ~now "w" v;
                  Window.mark ~now "r" ((i mod 5) + 1)
                end)
              obs))
  in
  List.iter Domain.join doms;
  Window.snapshot ~now:snap_now ()

let hist_of name snap =
  match List.assoc_opt name snap.Window.histograms with
  | Some h -> h
  | None -> Alcotest.fail (Printf.sprintf "window histogram %s missing" name)

let check_hist msg (a : Metrics.histogram) (b : Metrics.histogram) =
  Alcotest.(check int) (msg ^ ": count") a.Metrics.count b.Metrics.count;
  Alcotest.(check int) (msg ^ ": sum") a.Metrics.sum b.Metrics.sum;
  Alcotest.(check int) (msg ^ ": min") a.Metrics.min b.Metrics.min;
  Alcotest.(check int) (msg ^ ": max") a.Metrics.max b.Metrics.max;
  Alcotest.(check (list (pair int int)))
    (msg ^ ": buckets") a.Metrics.buckets b.Metrics.buckets

let test_window_rotation_determinism () =
  scoped (fun () ->
      let reference = run_partitioned 1 in
      (* the single-domain snapshot matches a direct computation over
         the observations whose epoch is still inside the window *)
      let live =
        Array.to_list obs |> List.filter (fun (now, _) -> now / 100 > 3)
      in
      let h = hist_of "w" reference in
      Alcotest.(check int) "live-window count" (List.length live) h.Metrics.count;
      Alcotest.(check int)
        "live-window sum"
        (List.fold_left (fun a (_, v) -> a + v) 0 live)
        h.Metrics.sum;
      let ref_meter = List.assoc "r" reference.Window.meters in
      List.iter
        (fun jobs ->
          let s = run_partitioned jobs in
          check_hist
            (Printf.sprintf "jobs %d bit-identical" jobs)
            (hist_of "w" reference) (hist_of "w" s);
          let m = List.assoc "r" s.Window.meters in
          Alcotest.(check int)
            (Printf.sprintf "jobs %d meter total exact" jobs)
            ref_meter.Window.total m.Window.total;
          (* rates are float sums: equal up to summation order *)
          Alcotest.(check bool)
            (Printf.sprintf "jobs %d meter rate agrees" jobs)
            true
            (Float.abs (ref_meter.Window.rate -. m.Window.rate)
            <= (1e-9 *. Float.abs ref_meter.Window.rate) +. 1e-9))
        [ 2; 4 ];
      (* once [now] moves a full ring past the data, everything rotates
         out of the window *)
      match
        List.assoc_opt "w" (Window.snapshot ~now:1200 ()).Window.histograms
      with
      | Some h -> Alcotest.(check int) "window rotated out" 0 h.Metrics.count
      | None -> ())

(* --------------------------------------------------- OpenMetrics format *)

let test_exposition_escaping () =
  let raw = "a\\b\"c\nd" in
  let doc =
    "# TYPE ppdm_x gauge\nppdm_x{k=\"" ^ Exposition.escape_label raw
    ^ "\"} 1\n# EOF\n"
  in
  (match Exposition.validate doc with
  | Error e -> Alcotest.fail ("escaped label rejected: " ^ e)
  | Ok [ s ] ->
      Alcotest.(check string) "sample name" "ppdm_x" s.Exposition.name;
      Alcotest.(check (list (pair string string)))
        "label round-trips through escape + parse"
        [ ("k", raw) ]
        s.Exposition.labels;
      Alcotest.(check (float 0.)) "value" 1.0 s.Exposition.value
  | Ok l ->
      Alcotest.fail (Printf.sprintf "expected one sample, got %d" (List.length l)));
  Alcotest.(check string)
    "dotted names sanitize" "ppdm_server_fold_latency_ns"
    (Exposition.sanitize_name "server.fold.latency_ns")

let test_render_validates () =
  scoped (fun () ->
      Metrics.set_enabled true;
      Metrics.incr "c";
      Metrics.add "c" 4;
      Metrics.gauge "q.depth.s3" 7.;
      Metrics.observe "lat" 100;
      Metrics.observe "lat" 5000;
      Window.define_meter "ing";
      Window.mark ~now:0 "ing" 50;
      Window.define_histogram "wl";
      Window.observe ~now:0 "wl" 42;
      let body = Exposition.render ~now:2_000_000_000 () in
      let samples =
        match Exposition.validate body with
        | Ok s -> s
        | Error e -> Alcotest.fail ("rendered registry invalid: " ^ e)
      in
      let value ?labels name =
        match
          List.find_opt
            (fun s ->
              s.Exposition.name = name
              &&
              match labels with
              | None -> true
              | Some l -> s.Exposition.labels = l)
            samples
        with
        | Some s -> s.Exposition.value
        | None -> Alcotest.fail (Printf.sprintf "sample %s missing" name)
      in
      Alcotest.(check (float 0.)) "counter total" 5. (value "ppdm_c_total");
      Alcotest.(check (float 0.))
        "trailing .s3 becomes a shard label" 7.
        (value ~labels:[ ("shard", "3") ] "ppdm_q_depth");
      Alcotest.(check (float 0.))
        "histogram count" 2. (value "ppdm_lat_count");
      Alcotest.(check (float 0.))
        "+Inf bucket equals count" 2.
        (value ~labels:[ ("le", "+Inf") ] "ppdm_lat_bucket");
      Alcotest.(check (float 0.)) "histogram max" 5000. (value "ppdm_lat_max");
      Alcotest.(check (float 0.)) "meter total" 50. (value "ppdm_ing_total");
      Alcotest.(check (float 0.))
        "window histogram count" 1. (value "ppdm_wl_count");
      Alcotest.(check bool) "gc gauges present" true
        (List.exists (fun s -> s.Exposition.name = "ppdm_gc_heap_words") samples))

let test_validate_rejects () =
  let rejected msg doc =
    match Exposition.validate doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (msg ^ ": accepted")
  in
  rejected "missing # EOF" "# TYPE ppdm_x gauge\nppdm_x 1\n";
  rejected "duplicate TYPE"
    "# TYPE ppdm_x gauge\n# TYPE ppdm_x counter\nppdm_x 1\n# EOF\n";
  rejected "unknown type" "# TYPE ppdm_x summary\nppdm_x 1\n# EOF\n";
  rejected "undeclared family" "ppdm_y 1\n# EOF\n";
  rejected "counter sample without _total"
    "# TYPE ppdm_x counter\nppdm_x 1\n# EOF\n";
  rejected "negative counter"
    "# TYPE ppdm_x counter\nppdm_x_total -1\n# EOF\n";
  rejected "non-cumulative buckets"
    ("# TYPE ppdm_x histogram\n"
   ^ "ppdm_x_bucket{le=\"1\"} 5\nppdm_x_bucket{le=\"2\"} 3\n"
   ^ "ppdm_x_bucket{le=\"+Inf\"} 5\nppdm_x_count 5\nppdm_x_sum 10\n# EOF\n");
  rejected "missing +Inf bucket"
    ("# TYPE ppdm_x histogram\n"
   ^ "ppdm_x_bucket{le=\"1\"} 5\nppdm_x_count 5\nppdm_x_sum 10\n# EOF\n");
  rejected "count disagrees with +Inf"
    ("# TYPE ppdm_x histogram\n"
   ^ "ppdm_x_bucket{le=\"+Inf\"} 5\nppdm_x_count 6\nppdm_x_sum 10\n# EOF\n")

(* --------------------------------------------------------- admin plane *)

(* healthz and readyz answer different questions: the unit test drives
   the pure handler with a fake readiness probe and checks that the
   process can be alive (200 healthz) while not ready (503 readyz). *)
let test_healthz_readyz_ordering () =
  let ready_flag = ref false in
  let handlers =
    {
      Admin.metrics = (fun () -> "# EOF\n");
      healthy = (fun () -> true);
      ready =
        (fun () -> (!ready_flag, if !ready_flag then "ok" else "draining"));
    }
  in
  let status request =
    let s, _, _ = Admin.handle_request handlers request in
    s
  in
  let body request =
    let _, _, b = Admin.handle_request handlers request in
    b
  in
  Alcotest.(check int) "healthz up" 200 (status "GET /healthz HTTP/1.0\r\n\r\n");
  Alcotest.(check int)
    "readyz 503 while not ready" 503
    (status "GET /readyz HTTP/1.0\r\n\r\n");
  Alcotest.(check string)
    "readyz explains itself" "draining\n"
    (body "GET /readyz HTTP/1.0\r\n\r\n");
  ready_flag := true;
  Alcotest.(check int)
    "readyz follows the probe" 200
    (status "GET /readyz HTTP/1.0\r\n\r\n");
  Alcotest.(check int) "unknown path" 404 (status "GET /nope HTTP/1.0\r\n\r\n");
  Alcotest.(check int)
    "non-GET method" 405
    (status "POST /metrics HTTP/1.0\r\n\r\n");
  Alcotest.(check int) "malformed request line" 400 (status "garbage\r\n\r\n");
  let broken = { handlers with Admin.metrics = (fun () -> failwith "boom") } in
  let s, _, _ = Admin.handle_request broken "GET /metrics HTTP/1.0\r\n\r\n" in
  Alcotest.(check int) "render exception answers 500" 500 s

(* End to end: a live server with the admin plane answers healthz, then
   readyz, then serves a structurally valid OpenMetrics document. *)
let test_admin_live_scrape () =
  scoped (fun () ->
      let scheme = Randomizer.uniform ~universe:16 ~p_keep:0.7 ~p_add:0.05 in
      let server =
        Serve.start
          {
            (Serve.default_config ~scheme
               ~itemsets:[ Itemset.of_list [ 0; 1 ] ])
            with
            jobs = 2;
            shards = 2;
            admin_port = Some 0;
            sampler_period_ns = 1_000_000;
          }
      in
      Fun.protect
        ~finally:(fun () -> ignore (Serve.stop server))
        (fun () ->
          let port =
            match Serve.admin_port server with
            | Some p -> p
            | None -> Alcotest.fail "admin plane configured but no port bound"
          in
          let rec poll path n =
            match Admin.fetch ~port path with
            | Ok (200, body) -> body
            | _ when n > 0 ->
                Unix.sleepf 0.01;
                poll path (n - 1)
            | Ok (status, _) ->
                Alcotest.fail (Printf.sprintf "%s answered %d" path status)
            | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" path e)
          in
          (* liveness first, then readiness: a fresh server with empty
             queues must reach ready *)
          ignore (poll "/healthz" 200);
          ignore (poll "/readyz" 200);
          let body = poll "/metrics" 200 in
          match Exposition.validate body with
          | Error e -> Alcotest.fail ("live scrape invalid: " ^ e)
          | Ok samples ->
              Alcotest.(check bool) "scrape has samples" true (samples <> []);
              Alcotest.(check bool) "gc gauges present" true
                (List.exists
                   (fun s -> s.Exposition.name = "ppdm_gc_heap_words")
                   samples)))

let suite =
  [
    Alcotest.test_case "ewma closed form" `Quick test_ewma_closed_form;
    Alcotest.test_case "window rotation deterministic at jobs 1/2/4" `Quick
      test_window_rotation_determinism;
    Alcotest.test_case "openmetrics escaping" `Quick test_exposition_escaping;
    Alcotest.test_case "rendered registry validates" `Quick test_render_validates;
    Alcotest.test_case "validator rejects malformed documents" `Quick
      test_validate_rejects;
    Alcotest.test_case "healthz/readyz ordering" `Quick
      test_healthz_readyz_ordering;
    Alcotest.test_case "live admin scrape" `Quick test_admin_live_scrape;
  ]
