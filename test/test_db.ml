(* Transaction-database and serialization tests. *)

open Ppdm_data

let mk universe rows = Db.create ~universe (Array.of_list (List.map Itemset.of_list rows))

let sample = mk 10 [ [ 1; 2; 3 ]; [ 2; 3 ]; [ 3; 4; 5 ]; []; [ 1; 2; 3; 9 ] ]

let test_create_validation () =
  Alcotest.check_raises "item beyond universe"
    (Invalid_argument "Db.create: item outside the universe") (fun () ->
      ignore (mk 3 [ [ 0; 3 ] ]));
  Alcotest.check_raises "bad universe"
    (Invalid_argument "Db.create: universe must be positive") (fun () ->
      ignore (mk 0 []))

let test_basics () =
  Alcotest.(check int) "length" 5 (Db.length sample);
  Alcotest.(check int) "universe" 10 (Db.universe sample);
  Alcotest.(check (list int)) "get" [ 2; 3 ] (Itemset.to_list (Db.get sample 1));
  Alcotest.(check bool) "avg size" true (Float.abs (Db.avg_size sample -. 2.4) < 1e-12)

let test_support () =
  Alcotest.(check int) "count {2,3}" 3 (Db.support_count sample (Itemset.of_list [ 2; 3 ]));
  Alcotest.(check int) "count {3}" 4 (Db.support_count sample (Itemset.singleton 3));
  Alcotest.(check int) "count empty = all" 5 (Db.support_count sample Itemset.empty);
  Alcotest.(check bool) "support fraction" true
    (Float.abs (Db.support sample (Itemset.of_list [ 2; 3 ]) -. 0.6) < 1e-12)

let test_partial_supports () =
  let counts = Db.partial_support_counts sample (Itemset.of_list [ 2; 3 ]) in
  Alcotest.(check (array int)) "partials" [| 1; 1; 3 |] counts;
  Alcotest.(check int) "partials sum to length" (Db.length sample)
    (Array.fold_left ( + ) 0 counts)

let test_item_counts () =
  let counts = Db.item_counts sample in
  Alcotest.(check int) "item 3 count" 4 counts.(3);
  Alcotest.(check int) "item 0 count" 0 counts.(0);
  Alcotest.(check int) "item 9 count" 1 counts.(9)

let test_size_histogram () =
  Alcotest.(check (list (pair int int))) "histogram"
    [ (0, 1); (2, 1); (3, 2); (4, 1) ]
    (Db.size_histogram sample)

let test_map_filter_sub_append () =
  let bumped = Db.map (Itemset.add 0) sample in
  Alcotest.(check int) "map keeps length" 5 (Db.length bumped);
  Alcotest.(check int) "item 0 everywhere" 5 (Db.support_count bumped (Itemset.singleton 0));
  let nonempty = Db.filter (fun t -> not (Itemset.is_empty t)) sample in
  Alcotest.(check int) "filter" 4 (Db.length nonempty);
  let slice = Db.sub sample ~pos:1 ~len:2 in
  Alcotest.(check int) "sub" 2 (Db.length slice);
  let doubled = Db.append sample sample in
  Alcotest.(check int) "append" 10 (Db.length doubled);
  Alcotest.check_raises "append universe mismatch"
    (Invalid_argument "Db.append: universe mismatch") (fun () ->
      ignore (Db.append sample (mk 11 [])))

let test_density_split_quantiles () =
  Alcotest.(check bool) "density" true
    (Float.abs (Db.density sample -. (12. /. 50.)) < 1e-12);
  let a, b = Db.split sample ~at:2 in
  Alcotest.(check int) "left" 2 (Db.length a);
  Alcotest.(check int) "right" 3 (Db.length b);
  Alcotest.(check (list int)) "right starts at third" [ 3; 4; 5 ]
    (Itemset.to_list (Db.get b 0));
  Alcotest.check_raises "bad split" (Invalid_argument "Db.split: index out of bounds")
    (fun () -> ignore (Db.split sample ~at:6));
  let quantiles = Db.item_frequency_quantiles sample [ 0.; 1. ] in
  Alcotest.(check (list (float 1e-12))) "min and max item frequency"
    [ 0.; 0.8 ] quantiles

let test_io_roundtrip () =
  let path = Filename.temp_file "ppdm_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file path sample;
      let back = Io.read_file path in
      Alcotest.(check int) "universe" (Db.universe sample) (Db.universe back);
      Alcotest.(check int) "length" (Db.length sample) (Db.length back);
      Db.iteri
        (fun i tx ->
          Alcotest.(check (list int))
            (Printf.sprintf "transaction %d" i)
            (Itemset.to_list tx)
            (Itemset.to_list (Db.get back i)))
        sample)

let read_string s =
  let path = Filename.temp_file "ppdm_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Io.read_file path)

let test_io_malformed () =
  let expect_failure msg input =
    match read_string input with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail msg
  in
  expect_failure "missing header" "1 2 3\n";
  expect_failure "negative universe" "universe -1 transactions 0\n";
  expect_failure "item outside universe" "universe 2 transactions 1\n5\n";
  expect_failure "non-integer item" "universe 2 transactions 1\nfoo\n";
  expect_failure "truncated body" "universe 2 transactions 2\n0\n";
  (* an understated header count must not silently drop the tail *)
  expect_failure "trailing transaction" "universe 2 transactions 1\n0 1\n0\n";
  expect_failure "trailing garbage" "universe 2 transactions 1\n0 1\nhello\n";
  (* trailing blank lines (e.g. editor-added final newline) stay legal *)
  let db = read_string "universe 2 transactions 1\n0 1\n\n  \n" in
  Alcotest.(check int) "blank tail tolerated" 1 (Db.length db)

let test_fimi_roundtrip () =
  let path = Filename.temp_file "ppdm_fimi" ".dat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_fimi path sample;
      (* universe is inferred as max item + 1 = 10 here, matching sample *)
      let back = Io.read_fimi path in
      Alcotest.(check int) "inferred universe" 10 (Db.universe back);
      Alcotest.(check int) "length" (Db.length sample) (Db.length back);
      Db.iteri
        (fun i tx ->
          Alcotest.(check (list int))
            (Printf.sprintf "transaction %d" i)
            (Itemset.to_list tx)
            (Itemset.to_list (Db.get back i)))
        sample;
      (* explicit universe override *)
      let wide = Io.read_fimi ~universe:50 path in
      Alcotest.(check int) "override universe" 50 (Db.universe wide);
      match Io.read_fimi ~universe:3 path with
      | exception Io.Item_out_of_universe { item = 3; universe = 3 } -> ()
      | exception Io.Item_out_of_universe _ ->
          Alcotest.fail "wrong item/universe in the typed error"
      | _ -> Alcotest.fail "undersized universe accepted")

let test_fimi_malformed () =
  let path = Filename.temp_file "ppdm_fimi_bad" ".dat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "1 2 x\n";
      close_out oc;
      match Io.read_fimi path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "bad token accepted")

let qcheck_tests =
  let open QCheck in
  let gen_db =
    Gen.(
      let* n_tx = int_range 0 20 in
      let* rows =
        list_size (return n_tx) (list_size (int_range 0 6) (int_range 0 9))
      in
      return (mk 10 rows))
  in
  let arb_db = make ~print:(fun db -> Printf.sprintf "<db %d>" (Db.length db)) gen_db in
  [
    Test.make ~name:"io round-trip preserves databases" ~count:50 arb_db
      (fun db ->
        let path = Filename.temp_file "ppdm_rt" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Io.write_file path db;
            let back = Io.read_file path in
            Db.universe back = Db.universe db
            && Db.length back = Db.length db
            && Array.for_all2 Itemset.equal (Db.transactions db)
                 (Db.transactions back)));
    Test.make ~name:"partial supports sum to db length" ~count:100
      (pair arb_db (list_of_size (Gen.int_range 0 4) (int_range 0 9)))
      (fun (db, items) ->
        let a = Itemset.of_list items in
        Array.fold_left ( + ) 0 (Db.partial_support_counts db a) = Db.length db);
    Test.make ~name:"split then append is the identity" ~count:100
      (pair arb_db (int_range 0 100)) (fun (db, percent) ->
        let at = Db.length db * percent / 100 in
        let a, b = Db.split db ~at in
        let back = Db.append a b in
        Db.length back = Db.length db
        && Array.for_all2 Itemset.equal (Db.transactions back) (Db.transactions db));
    Test.make ~name:"top partial equals support count" ~count:100
      (pair arb_db (list_of_size (Gen.int_range 1 4) (int_range 0 9)))
      (fun (db, items) ->
        let a = Itemset.of_list items in
        let partials = Db.partial_support_counts db a in
        partials.(Itemset.cardinal a) = Db.support_count db a);
  ]

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "support counting" `Quick test_support;
    Alcotest.test_case "partial supports" `Quick test_partial_supports;
    Alcotest.test_case "item counts" `Quick test_item_counts;
    Alcotest.test_case "size histogram" `Quick test_size_histogram;
    Alcotest.test_case "map/filter/sub/append" `Quick test_map_filter_sub_append;
    Alcotest.test_case "density/split/quantiles" `Quick test_density_split_quantiles;
    Alcotest.test_case "io round-trip" `Quick test_io_roundtrip;
    Alcotest.test_case "io malformed inputs" `Quick test_io_malformed;
    Alcotest.test_case "fimi round-trip" `Quick test_fimi_roundtrip;
    Alcotest.test_case "fimi malformed" `Quick test_fimi_malformed;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
