(* Mining substrate tests: trie counting vs direct counting, Apriori vs a
   brute-force reference miner, FP-growth vs Apriori, and rule
   generation. *)

open Ppdm_data
open Ppdm_mining

let mk universe rows = Db.create ~universe (Array.of_list (List.map Itemset.of_list rows))

let toy =
  mk 6
    [
      [ 0; 1; 2 ];
      [ 0; 1 ];
      [ 0; 2 ];
      [ 1; 2 ];
      [ 0; 1; 2; 3 ];
      [ 3; 4 ];
      [ 0; 1; 3 ];
      [ 2 ];
    ]

(* Brute-force reference: enumerate every itemset over the universe up to
   [max_size] and keep the frequent ones. *)
let reference_mine db ~min_support ~max_size =
  let n = Db.length db in
  let threshold = max 1 (int_of_float (Float.ceil (min_support *. float_of_int n))) in
  let universe_set = Itemset.of_list (List.init (Db.universe db) Fun.id) in
  let out = ref [] in
  for k = 1 to max_size do
    List.iter
      (fun candidate ->
        let c = Db.support_count db candidate in
        if c >= threshold then out := (candidate, c) :: !out)
      (Itemset.subsets_of_size universe_set k)
  done;
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) !out

let pp_result l =
  String.concat "; "
    (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c) l)

let check_same_result msg expected actual =
  Alcotest.(check string) msg (pp_result expected) (pp_result actual)

let test_count_trie_vs_direct () =
  let candidates =
    List.map Itemset.of_list [ [ 0 ]; [ 0; 1 ]; [ 1; 2 ]; [ 0; 1; 2 ]; [ 4 ]; [ 3; 4 ] ]
  in
  let counted = Count.support_counts toy candidates in
  List.iter
    (fun (s, c) ->
      Alcotest.(check int) (Itemset.to_string s) (Db.support_count toy s) c)
    counted;
  Alcotest.(check int) "all candidates reported" (List.length candidates)
    (List.length counted)

let test_count_get () =
  let t = Count.create () in
  Count.add t (Itemset.of_list [ 0; 1 ]);
  Count.add t (Itemset.of_list [ 0; 1 ]);
  Alcotest.(check int) "idempotent add" 1 (Count.candidate_count t);
  Count.count_db t toy;
  Alcotest.(check (option int)) "count" (Some 4) (Count.get t (Itemset.of_list [ 0; 1 ]));
  Alcotest.(check (option int)) "unknown" None (Count.get t (Itemset.of_list [ 2; 3 ]))

let test_apriori_toy () =
  check_same_result "apriori = reference on toy"
    (reference_mine toy ~min_support:0.25 ~max_size:6)
    (Apriori.mine toy ~min_support:0.25)

let test_apriori_max_size () =
  let result = Apriori.mine toy ~min_support:0.25 ~max_size:1 in
  List.iter
    (fun (s, _) -> Alcotest.(check int) "only singletons" 1 (Itemset.cardinal s))
    result

let test_apriori_validation () =
  Alcotest.check_raises "min_support 0"
    (Invalid_argument "Apriori.mine: min_support out of (0,1]") (fun () ->
      ignore (Apriori.mine toy ~min_support:0.))

let test_candidates_from () =
  let frequent = List.map Itemset.of_list [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 1; 3 ] ] in
  let cands = Apriori.candidates_from ~frequent ~size:3 in
  (* {0,1,2} joins and survives the prune; {1,2,3} requires {2,3} which is
     absent, so the prune removes it. *)
  Alcotest.(check (list string)) "candidates" [ "{0,1,2}" ]
    (List.map Itemset.to_string cands)

let test_eclat_toy () =
  check_same_result "eclat = apriori on toy"
    (Apriori.mine toy ~min_support:0.25)
    (Eclat.mine toy ~min_support:0.25)

let test_fptree_toy () =
  check_same_result "fp-growth = apriori on toy"
    (Apriori.mine toy ~min_support:0.25)
    (Fptree.mine toy ~min_support:0.25)

let test_threshold_rule () =
  (* exactly integral product: 0.25 * 8 = 2, and count-2 itemsets qualify *)
  Alcotest.(check int) "exact boundary" 2 (Threshold.absolute ~n:8 ~min_support:0.25);
  (* float dust: 0.3 * 10 = 2.9999999999999996 in binary, still 3 *)
  Alcotest.(check int) "dust below an integer product" 3
    (Threshold.absolute ~n:10 ~min_support:0.3);
  Alcotest.(check int) "strictly fractional rounds up" 3
    (Threshold.absolute ~n:10 ~min_support:0.21);
  Alcotest.(check int) "floor of 1" 1 (Threshold.absolute ~n:10 ~min_support:0.001);
  Alcotest.(check int) "empty db" 1 (Threshold.absolute ~n:0 ~min_support:0.5);
  Alcotest.check_raises "min_support 0"
    (Invalid_argument "Threshold.absolute: min_support out of (0,1]") (fun () ->
      ignore (Threshold.absolute ~n:10 ~min_support:0.));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Threshold.absolute: negative n") (fun () ->
      ignore (Threshold.absolute ~n:(-1) ~min_support:0.5))

let test_threshold_boundary_agreement () =
  (* at a min_support whose product with n is exactly integral, the
     include/exclude decision for count == threshold is where an
     unguarded ceil in one miner would diverge from the others; assert
     all three miners agree with the reference at such boundaries *)
  List.iter
    (fun min_support ->
      let expected = reference_mine toy ~min_support ~max_size:6 in
      let name which =
        Printf.sprintf "%s at minsup %g (n=%d)" which min_support (Db.length toy)
      in
      check_same_result (name "apriori") expected (Apriori.mine toy ~min_support);
      check_same_result (name "eclat") expected (Eclat.mine toy ~min_support);
      check_same_result (name "fp-growth") expected (Fptree.mine toy ~min_support))
    (* toy has n = 8: products 1.0, 2.0, 3.0, 4.0 exactly; 0.3 and 0.7
       land on non-representable products just off an integer *)
    [ 0.125; 0.25; 0.375; 0.5; 0.3; 0.7; 1.0 ]

let test_downward_closure () =
  let result = Apriori.mine toy ~min_support:0.25 in
  let set = Hashtbl.create 16 in
  List.iter (fun (s, _) -> Hashtbl.replace set s ()) result;
  List.iter
    (fun (s, _) ->
      let k = Itemset.cardinal s in
      if k >= 2 then
        List.iter
          (fun sub ->
            Alcotest.(check bool)
              (Printf.sprintf "subset %s of %s frequent" (Itemset.to_string sub)
                 (Itemset.to_string s))
              true (Hashtbl.mem set sub))
          (Itemset.subsets_of_size s (k - 1)))
    result

let gen_db =
  QCheck.Gen.(
    let* n_tx = int_range 1 40 in
    let* rows = list_size (return n_tx) (list_size (int_range 0 5) (int_range 0 7)) in
    return (mk 8 rows))

let arb_db =
  QCheck.make ~print:(fun db -> Printf.sprintf "<db of %d>" (Db.length db)) gen_db

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"apriori agrees with brute force" ~count:60
      (pair arb_db (float_range 0.1 0.9)) (fun (db, min_support) ->
        pp_result (Apriori.mine db ~min_support ~max_size:4)
        = pp_result (reference_mine db ~min_support ~max_size:4));
    Test.make ~name:"fp-growth agrees with apriori" ~count:60
      (pair arb_db (float_range 0.1 0.9)) (fun (db, min_support) ->
        pp_result (Fptree.mine db ~min_support)
        = pp_result (Apriori.mine db ~min_support));
    Test.make ~name:"eclat agrees with apriori" ~count:60
      (pair arb_db (float_range 0.1 0.9)) (fun (db, min_support) ->
        pp_result (Eclat.mine db ~min_support)
        = pp_result (Apriori.mine db ~min_support));
    Test.make ~name:"eclat respects max_size" ~count:30
      (pair arb_db (float_range 0.1 0.5)) (fun (db, min_support) ->
        List.for_all
          (fun (s, _) -> Itemset.cardinal s <= 2)
          (Eclat.mine db ~min_support ~max_size:2));
    Test.make ~name:"fp-growth respects max_size" ~count:30
      (pair arb_db (float_range 0.1 0.5)) (fun (db, min_support) ->
        List.for_all
          (fun (s, _) -> Itemset.cardinal s <= 2)
          (Fptree.mine db ~min_support ~max_size:2));
  ]

let test_rules_toy () =
  let frequent = Apriori.mine toy ~min_support:0.25 in
  let rules =
    Rules.generate ~frequent ~n_transactions:(Db.length toy) ~min_confidence:0.6
  in
  Alcotest.(check bool) "some rules found" true (rules <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "confidence >= 0.6" true (r.Rules.confidence >= 0.6);
      Alcotest.(check bool) "confidence <= 1" true (r.Rules.confidence <= 1. +. 1e-12);
      Alcotest.(check bool) "disjoint" true
        (Itemset.inter_size r.Rules.antecedent r.Rules.consequent = 0);
      (* verify the numbers directly against the database *)
      let full = Itemset.union r.Rules.antecedent r.Rules.consequent in
      let expected_conf =
        float_of_int (Db.support_count toy full)
        /. float_of_int (Db.support_count toy r.Rules.antecedent)
      in
      Alcotest.(check (float 1e-9)) "confidence correct" expected_conf r.Rules.confidence;
      Alcotest.(check (float 1e-9)) "support correct" (Db.support toy full) r.Rules.support)
    rules

let test_rules_ordering () =
  let frequent = Apriori.mine toy ~min_support:0.25 in
  let rules = Rules.generate ~frequent ~n_transactions:(Db.length toy) ~min_confidence:0. in
  let rec descending = function
    | a :: (b :: _ as rest) ->
        a.Rules.confidence >= b.Rules.confidence && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by confidence" true (descending rules)

let test_rules_validation () =
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Rules.generate: min_confidence out of [0,1]") (fun () ->
      ignore (Rules.generate ~frequent:[] ~n_transactions:1 ~min_confidence:2.))

let suite =
  [
    Alcotest.test_case "count trie vs direct" `Quick test_count_trie_vs_direct;
    Alcotest.test_case "count get" `Quick test_count_get;
    Alcotest.test_case "apriori on toy db" `Quick test_apriori_toy;
    Alcotest.test_case "apriori max_size" `Quick test_apriori_max_size;
    Alcotest.test_case "apriori validation" `Quick test_apriori_validation;
    Alcotest.test_case "candidate generation" `Quick test_candidates_from;
    Alcotest.test_case "eclat on toy db" `Quick test_eclat_toy;
    Alcotest.test_case "fp-growth on toy db" `Quick test_fptree_toy;
    Alcotest.test_case "threshold rule" `Quick test_threshold_rule;
    Alcotest.test_case "threshold boundary agreement" `Quick
      test_threshold_boundary_agreement;
    Alcotest.test_case "downward closure" `Quick test_downward_closure;
    Alcotest.test_case "rules on toy db" `Quick test_rules_toy;
    Alcotest.test_case "rules ordering" `Quick test_rules_ordering;
    Alcotest.test_case "rules validation" `Quick test_rules_validation;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

