let () =
  Alcotest.run "ppdm"
    [
      ("prng", Test_prng.suite);
      ("linalg", Test_linalg.suite);
      ("itemset", Test_itemset.suite);
      ("db", Test_db.suite);
      ("datagen", Test_datagen.suite);
      ("mining", Test_mining.suite);
      ("randomizer", Test_randomizer.suite);
      ("transition", Test_transition.suite);
      ("amplification", Test_amplification.suite);
      ("breach", Test_breach.suite);
      ("estimator", Test_estimator.suite);
      ("optimizer", Test_optimizer.suite);
      ("ppmining", Test_ppmining.suite);
      ("ldp", Test_ldp.suite);
      ("stream", Test_stream.suite);
      ("bitset", Test_bitset.suite);
      ("vertical", Test_vertical.suite);
      ("sampled", Test_sampled.suite);
      ("scheme_io", Test_scheme_io.suite);
      ("em", Test_em.suite);
      ("channel", Test_channel.suite);
      ("numeric", Test_numeric.suite);
      ("split", Test_split.suite);
      ("experiment", Test_experiment.suite);
      ("fuzz", Test_fuzz.suite);
      ("rules", Test_rules.suite);
      ("summarize", Test_summarize.suite);
      ("check", Test_check.suite);
      ("accountant", Test_accountant.suite);
      ("runtime", Test_runtime.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("trace", Test_trace.suite);
      ("server", Test_server.suite);
    ]
