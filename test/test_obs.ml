(* Observability-layer tests: disabled-path no-op, histogram bucketing,
   order-independent sink merges, span trees, the JSON codec, report
   rendering, and — the property the whole design hangs on — that turning
   instrumentation on changes no mined or randomized result at any job
   count. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm
open Ppdm_runtime
open Ppdm_obs

(* Every test leaves the global registry the way it found it: disabled
   and empty.  The other suites run with metrics off and must not see
   residue from this one. *)
let scoped f =
  Metrics.reset ();
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Span.reset ())
    f

let test_disabled_noop () =
  scoped (fun () ->
      Metrics.set_enabled false;
      Metrics.incr "c";
      Metrics.add "c" 41;
      Metrics.gauge "g" 3.5;
      Metrics.observe "h" 7;
      ignore (Metrics.time "t" (fun () -> 1 + 1));
      Span.with_ ~name:"s" (fun () -> ());
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "no counters" 0 (List.length snap.Metrics.counters);
      Alcotest.(check int) "no gauges" 0 (List.length snap.Metrics.gauges);
      Alcotest.(check int) "no histograms" 0 (List.length snap.Metrics.histograms);
      Alcotest.(check int) "no spans" 0 (List.length (Span.tree ())))

let test_counters_and_gauges () =
  scoped (fun () ->
      Metrics.set_enabled true;
      Metrics.incr "b.count";
      Metrics.add "a.count" 5;
      Metrics.incr "b.count";
      Metrics.gauge "depth" 2.0;
      Metrics.gauge "depth" 7.5;
      Metrics.gauge "depth" 3.0;
      let snap = Metrics.snapshot () in
      Alcotest.(check (list (pair string int)))
        "counters sum, sorted by name"
        [ ("a.count", 5); ("b.count", 2) ]
        snap.Metrics.counters;
      (* within one domain a gauge is last-write-wins; Float.max applies
         when merging shards (see the sink test) *)
      Alcotest.(check (list (pair string (float 0.))))
        "gauge keeps the latest value"
        [ ("depth", 3.0) ]
        snap.Metrics.gauges;
      Metrics.reset ();
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "reset clears" 0 (List.length snap.Metrics.counters))

let test_histogram_buckets () =
  scoped (fun () ->
      Metrics.set_enabled true;
      (* bucket 0 holds the value 0; bucket i >= 1 covers 2^(i-1)..2^i-1 *)
      List.iter (Metrics.observe "h") [ 0; 1; 2; 3; 4; 7; 8; 1000; -5 ];
      let snap = Metrics.snapshot () in
      match snap.Metrics.histograms with
      | [ ("h", h) ] ->
          Alcotest.(check int) "count" 9 h.Metrics.count;
          Alcotest.(check int) "sum clamps negatives to 0" 1025 h.Metrics.sum;
          Alcotest.(check int) "exact min (after the 0 clamp)" 0 h.Metrics.min;
          Alcotest.(check int) "exact max" 1000 h.Metrics.max;
          Alcotest.(check (list (pair int int)))
            "buckets: (lower_bound, count), ascending"
            [ (0, 2); (1, 1); (2, 2); (4, 2); (8, 1); (512, 1) ]
            h.Metrics.buckets;
          Alcotest.(check int) "p0 lands in the zero bucket" 1
            (Metrics.quantile h 0.);
          Alcotest.(check int) "p50 upper bound" 4 (Metrics.quantile h 0.5);
          Alcotest.(check int) "p100 covers the top bucket" 1024
            (Metrics.quantile h 1.)
      | _ -> Alcotest.fail "expected exactly one histogram")

let test_sink_merge_order_independent () =
  let mk specs =
    let s = Metrics.Sink.create () in
    List.iter
      (fun (name, v) ->
        Metrics.Sink.add s name v;
        Metrics.Sink.observe s (name ^ ".h") v;
        Metrics.Sink.gauge s (name ^ ".g") (float_of_int v))
      specs;
    s
  in
  let a = mk [ ("x", 1); ("y", 10) ]
  and b = mk [ ("x", 2); ("z", 100) ]
  and c = mk [ ("y", 3) ] in
  let snap_of order = Metrics.Sink.merge order in
  let reference = snap_of [ a; b; c ] in
  List.iter
    (fun order ->
      let s = snap_of order in
      Alcotest.(check (list (pair string int)))
        "counters independent of merge order" reference.Metrics.counters
        s.Metrics.counters;
      Alcotest.(check (list (pair string (float 0.))))
        "gauges independent of merge order" reference.Metrics.gauges
        s.Metrics.gauges;
      Alcotest.(check int)
        "histogram count independent of merge order"
        (List.length reference.Metrics.histograms)
        (List.length s.Metrics.histograms))
    [ [ a; c; b ]; [ b; a; c ]; [ c; b; a ] ];
  Alcotest.(check (list (pair string int)))
    "summed counters"
    [ ("x", 3); ("y", 13); ("z", 100) ]
    reference.Metrics.counters;
  (* gauges resolve cross-shard conflicts by max: x.g is 1 in sink a and
     2 in sink b *)
  Alcotest.(check (option (float 0.)))
    "gauges merge by max" (Some 2.0)
    (List.assoc_opt "x.g" reference.Metrics.gauges)

let test_span_tree () =
  scoped (fun () ->
      Metrics.set_enabled true;
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ());
          Span.with_ ~name:"inner" (fun () -> ());
          Span.with_ ~name:"also" (fun () -> ()));
      Span.with_ ~name:"outer" (fun () -> ());
      match Span.tree () with
      | [ root ] ->
          Alcotest.(check string) "root name" "outer" root.Span.name;
          Alcotest.(check int) "root aggregates calls" 2 root.Span.calls;
          Alcotest.(check (list string))
            "children sorted by name, repeats aggregated"
            [ "also"; "inner" ]
            (List.map (fun c -> c.Span.name) root.Span.children);
          let inner = List.nth root.Span.children 1 in
          Alcotest.(check int) "inner calls" 2 inner.Span.calls;
          Alcotest.(check bool) "time flows up" true
            (root.Span.total_ns >= Span.total_ns root.Span.children)
      | l -> Alcotest.fail (Printf.sprintf "expected one root, got %d" (List.length l)))

let test_span_survives_exceptions () =
  scoped (fun () ->
      Metrics.set_enabled true;
      (try Span.with_ ~name:"boom" (fun () -> failwith "x")
       with Failure _ -> ());
      (* the span stack must be popped: a later span is a new root, not a
         child of the crashed one *)
      Span.with_ ~name:"after" (fun () -> ());
      Alcotest.(check (list string))
        "crashed span recorded and stack popped"
        [ "after"; "boom" ]
        (List.map (fun s -> s.Span.name) (Span.tree ())))

let test_json_roundtrip () =
  let check_roundtrip v =
    let s = Json.to_string v in
    match Json.parse s with
    | Ok v' -> Alcotest.(check string) s s (Json.to_string v')
    | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e)
  in
  List.iter check_roundtrip
    [
      Json.Null;
      Json.Bool true;
      Json.Int 42;
      Json.Int (-7);
      Json.Float 2.5;
      Json.String "plain";
      Json.String "esc \"quotes\" \\ and \n tab \t";
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj
        [
          ("name", Json.String "pool.tasks");
          ("value", Json.Int 12);
          ("nested", Json.List [ Json.Obj [ ("k", Json.Bool false) ] ]);
        ];
    ];
  (match Json.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing content accepted");
  (match Json.parse "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object accepted");
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated array accepted");
  (match Json.parse "{\"u\":\"\\u00e9\"}" with
  | Ok v -> (
      match Json.member "u" v with
      | Some (Json.String s) ->
          Alcotest.(check string) "unicode escape decodes to UTF-8" "\xc3\xa9" s
      | _ -> Alcotest.fail "missing member")
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "member on non-object" true
    (Json.member "k" (Json.Int 3) = None);
  Alcotest.(check string) "non-finite floats render as null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_report_json_lines_parse () =
  scoped (fun () ->
      Metrics.set_enabled true;
      Metrics.add "demo.counter" 3;
      Metrics.gauge "demo.gauge" 1.25;
      Metrics.observe "demo.hist" 100;
      Metrics.observe "demo.hist" 5;
      Span.with_ ~name:"a" (fun () -> Span.with_ ~name:"b" (fun () -> ()));
      let out = Report.to_string Report.Json in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
      in
      Alcotest.(check bool) "several lines" true (List.length lines >= 4);
      List.iter
        (fun line ->
          match Json.parse line with
          | Ok v ->
              (match Json.member "type" v with
              | Some (Json.String _) -> ()
              | _ -> Alcotest.fail (Printf.sprintf "no type field: %s" line))
          | Error e -> Alcotest.fail (Printf.sprintf "unparsable line %s: %s" line e))
        lines;
      let has_line ty name =
        List.exists
          (fun line ->
            match Json.parse line with
            | Ok v ->
                Json.member "type" v = Some (Json.String ty)
                && (Json.member "name" v = Some (Json.String name)
                   || Json.member "path" v = Some (Json.String name))
            | Error _ -> false)
          lines
      in
      Alcotest.(check bool) "counter line" true (has_line "counter" "demo.counter");
      Alcotest.(check bool) "gauge line" true (has_line "gauge" "demo.gauge");
      Alcotest.(check bool) "histogram line" true (has_line "histogram" "demo.hist");
      Alcotest.(check bool) "nested span path" true (has_line "span" "a/b");
      (* the human renderer shouldn't crash on the same state *)
      Alcotest.(check bool) "human report non-empty" true
        (String.length (Report.to_string Report.Human) > 0))

let test_format_of_string () =
  Alcotest.(check bool) "human" true (Report.format_of_string "human" = Some Report.Human);
  Alcotest.(check bool) "JSON case-insensitive" true
    (Report.format_of_string "JSON" = Some Report.Json);
  Alcotest.(check bool) "unknown" true (Report.format_of_string "xml" = None)

(* The acceptance property: metrics on vs off, jobs 1/2/4 — randomized
   and mined outputs are identical in every case.  Instrumentation reads
   clocks and counters only; it must never touch the RNG stream or the
   result path. *)
let test_stats_do_not_change_results () =
  let universe = 60 in
  let rng = Rng.create ~seed:31 () in
  let db = Simple.fixed_size rng ~universe ~size:5 ~count:800 in
  let scheme = Randomizer.uniform ~universe ~p_keep:0.6 ~p_add:0.02 in
  let run ~stats ~jobs =
    scoped (fun () ->
        Metrics.set_enabled stats;
        Pool.with_pool ~jobs (fun pool ->
            let rng = Rng.create ~seed:77 () in
            (* small chunks so multi-piece batches actually hit the pool's
               parallel path at jobs > 1 *)
            let tagged = Parallel.randomize_db_tagged pool ~chunk:128 scheme rng db in
            let mined =
              Parallel.apriori_mine pool ~chunk:128 db ~min_support:0.05 ~max_size:3
            in
            let itemset = Itemset.of_list [ 1; 2 ] in
            let stream = Parallel.observe_all pool ~scheme ~itemset tagged in
            (tagged, mined, (Stream.estimate stream).Estimator.support)))
  in
  let base_tagged, base_mined, base_support = run ~stats:false ~jobs:1 in
  List.iter
    (fun (stats, jobs) ->
      let tagged, mined, support = run ~stats ~jobs in
      let label fmt =
        Printf.sprintf "%s (stats %b, jobs %d)" fmt stats jobs
      in
      Alcotest.(check int)
        (label "tagged length") (Array.length base_tagged) (Array.length tagged);
      Array.iteri
        (fun i (s, y) ->
          let s', y' = tagged.(i) in
          if s <> s' || not (Itemset.equal y y') then
            Alcotest.fail (label (Printf.sprintf "tagged[%d] differs" i)))
        base_tagged;
      Alcotest.(check string)
        (label "mined result")
        (String.concat ";"
           (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c) base_mined))
        (String.concat ";"
           (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c) mined));
      Alcotest.(check (float 0.)) (label "stream estimate") base_support support)
    [ (true, 1); (true, 2); (true, 4); (false, 4) ]

(* With stats on, the hot paths must actually show up in the report. *)
let test_instrumentation_coverage () =
  let universe = 60 in
  let rng = Rng.create ~seed:13 () in
  let db = Simple.fixed_size rng ~universe ~size:5 ~count:500 in
  let scheme = Randomizer.uniform ~universe ~p_keep:0.6 ~p_add:0.02 in
  scoped (fun () ->
      Metrics.set_enabled true;
      Pool.with_pool ~jobs:2 (fun pool ->
          let rng = Rng.create ~seed:5 () in
          (* chunk small enough that batches span several tasks: the
             queue-wait histogram only exists on the parallel path *)
          let tagged = Parallel.randomize_db_tagged pool ~chunk:64 scheme rng db in
          ignore (Parallel.apriori_mine pool ~chunk:64 db ~min_support:0.05 ~max_size:2);
          let itemset = Itemset.of_list [ 1; 2 ] in
          let stream = Parallel.observe_all pool ~chunk:64 ~scheme ~itemset tagged in
          ignore (Stream.estimate stream));
      let snap = Metrics.snapshot () in
      let counter name = List.mem_assoc name snap.Metrics.counters in
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " recorded") true (counter name))
        [
          "randomizer.apply";
          "count.transactions";
          "apriori.level1.frequent";
          "stream.observed";
          "estimator.solves";
          "pool.tasks";
          "pool.batches";
        ];
      Alcotest.(check bool) "queue wait histogram" true
        (List.mem_assoc "pool.queue_wait_ns" snap.Metrics.histograms);
      let roots = List.map (fun s -> s.Span.name) (Span.tree ()) in
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " span") true (List.mem name roots))
        [ "parallel.randomize"; "parallel.apriori"; "parallel.observe";
          "stream.estimate" ])

(* Span.with_ serves both layers off one flag word: with metrics and
   tracing both on, a span must land in the span tree and put a matched
   begin/end pair on the timeline. *)
let test_span_feeds_trace () =
  scoped (fun () ->
      Trace.reset ();
      Fun.protect
        ~finally:(fun () ->
          Trace.set_enabled false;
          Trace.reset ())
        (fun () ->
          Metrics.set_enabled true;
          Trace.set_enabled true;
          Span.with_ ~name:"both" (fun () -> ());
          let roots = List.map (fun s -> s.Span.name) (Span.tree ()) in
          Alcotest.(check bool) "span tree has it" true (List.mem "both" roots);
          let pairs =
            List.map
              (fun (e : Trace.event) -> (e.Trace.phase, e.Trace.name))
              (Trace.events ())
          in
          Alcotest.(check bool) "timeline has the begin/end pair" true
            (pairs = [ (Trace.Begin, "both"); (Trace.End, "both") ])))

let suite =
  [
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "sink merge order-independent" `Quick
      test_sink_merge_order_independent;
    Alcotest.test_case "span tree" `Quick test_span_tree;
    Alcotest.test_case "span survives exceptions" `Quick
      test_span_survives_exceptions;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "report json lines parse" `Quick
      test_report_json_lines_parse;
    Alcotest.test_case "format of string" `Quick test_format_of_string;
    Alcotest.test_case "stats do not change results" `Quick
      test_stats_do_not_change_results;
    Alcotest.test_case "instrumentation coverage" `Quick
      test_instrumentation_coverage;
    Alcotest.test_case "span feeds trace" `Quick test_span_feeds_trace;
  ]
