(* Sampled counting tests: plan geometry, scaling arithmetic, exactness
   at F = 1.0 (byte-identical to the vertical engine, sequential and at
   any job count), sharding determinism at F < 1, and sigma coverage of
   the sampled-vs-exact error across plan seeds. *)

open Ppdm_data
open Ppdm_prng
open Ppdm_mining
open Ppdm_runtime

let pp_result l =
  String.concat "; "
    (List.map (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c) l)

let check_same_result msg expected actual =
  Alcotest.(check string) msg (pp_result expected) (pp_result actual)

(* iid random transactions: word-window cluster sampling then has the
   variance the FPC sigma predicts, and every item lands dense. *)
let random_db ~seed ~universe ~n ~p =
  let rng = Rng.create ~seed () in
  Db.create ~universe
    (Array.init n (fun _ ->
         Itemset.of_list
           (List.filter (fun _ -> Rng.float rng < p) (List.init universe Fun.id))))

let test_plan_geometry () =
  let n = 100 * 62 in
  let word_count = 100 in
  let plan = Sampled.plan ~n ~word_count ~fraction:0.25 ~seed:3 () in
  Alcotest.(check int) "population" n plan.Sampled.population;
  Alcotest.(check bool) "not exhaustive" false (Sampled.is_exhaustive plan);
  (* runs are ascending, disjoint, non-adjacent (else they would have
     been merged), and inside [0, word_count) *)
  let words = ref 0 in
  Array.iteri
    (fun i (lo, hi) ->
      Alcotest.(check bool) "run non-empty" true (lo < hi);
      Alcotest.(check bool) "run in range" true (lo >= 0 && hi <= word_count);
      if i > 0 then begin
        let _, prev_hi = plan.Sampled.runs.(i - 1) in
        Alcotest.(check bool) "runs separated" true (lo > prev_hi)
      end;
      words := !words + hi - lo)
    plan.Sampled.runs;
  (* window granularity 4, fraction 0.25 of 25 windows -> 6 windows *)
  Alcotest.(check int) "selected words" (6 * 4) !words;
  Alcotest.(check int) "sample tids" (!words * 62) plan.Sampled.sample;
  (* same arguments, same plan *)
  let again = Sampled.plan ~n ~word_count ~fraction:0.25 ~seed:3 () in
  Alcotest.(check bool) "deterministic" true (plan = again);
  let other = Sampled.plan ~n ~word_count ~fraction:0.25 ~seed:4 () in
  Alcotest.(check bool) "seed-sensitive" false
    (plan.Sampled.runs = other.Sampled.runs)

let test_plan_partial_last_word () =
  (* 100 words but only 6170 tids: the last word holds 62*100-6170=30
     fewer.  An exhaustive plan must account tids, not words. *)
  let n = (100 * 62) - 30 in
  let plan = Sampled.plan ~n ~word_count:100 ~fraction:1.0 ~seed:0 () in
  Alcotest.(check bool) "exhaustive" true (Sampled.is_exhaustive plan);
  Alcotest.(check int) "sample = population" n plan.Sampled.sample;
  Alcotest.(check int) "single run" 1 (Array.length plan.Sampled.runs);
  (* a tiny fraction still selects at least one window *)
  let tiny = Sampled.plan ~n ~word_count:100 ~fraction:0.001 ~seed:0 () in
  Alcotest.(check bool) "at least one window" true
    (Array.length tiny.Sampled.runs >= 1 && tiny.Sampled.sample > 0);
  Alcotest.(check_raises) "fraction 0 rejected"
    (Invalid_argument "Sampled.plan: fraction out of (0,1]") (fun () ->
      ignore (Sampled.plan ~n ~word_count:100 ~fraction:0. ~seed:0 ()))

let test_scale_count () =
  let plan = { Sampled.population = 1000; sample = 300; fraction = 0.3;
               seed = 0; runs = [| (0, 5) |] } in
  (* 1 * 1000 / 300 = 3.33 -> 3; 2 * 1000 / 300 = 6.67 -> 7;
     the half-way case 0.5 rounds up: 3 * 1000 / 2000 = 1.5 -> 2 *)
  Alcotest.(check int) "round down" 3 (Sampled.scale_count plan 1);
  Alcotest.(check int) "round up" 7 (Sampled.scale_count plan 2);
  let half = { plan with Sampled.population = 1000; sample = 2000 } in
  (* sample > population is not a real plan, but the arithmetic is
     still the documented round-half-up *)
  Alcotest.(check int) "half rounds up" 2 (Sampled.scale_count half 3);
  Alcotest.(check int) "zero stays zero" 0 (Sampled.scale_count plan 0);
  let full = { plan with Sampled.sample = 1000 } in
  Alcotest.(check int) "exhaustive is identity" 123
    (Sampled.scale_count full 123)

let candidates =
  [
    Itemset.of_list [ 0; 1 ];
    Itemset.of_list [ 1; 2 ];
    Itemset.of_list [ 0; 2; 3 ];
    Itemset.of_list [ 4 ];
  ]

let test_exhaustive_equals_vertical () =
  let db = random_db ~seed:11 ~universe:6 ~n:500 ~p:0.4 in
  let vt = Vertical.load db in
  let plan =
    Sampled.plan ~n:(Vertical.length vt) ~word_count:(Vertical.word_count vt)
      ~fraction:1.0 ~seed:9 ()
  in
  check_same_result "sampled F=1.0 equals vertical"
    (Vertical.support_counts vt candidates)
    (Sampled.support_counts vt plan candidates);
  (* and through the miner, at several job counts *)
  let exact = Apriori.mine ~counter:Apriori.Vertical db ~min_support:0.05 in
  let sampled =
    Apriori.mine
      ~counter:(Apriori.Sampled { fraction = 1.0; seed = 5 })
      db ~min_support:0.05
  in
  check_same_result "mine F=1.0 equals vertical mine" exact sampled;
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_same_result
            (Printf.sprintf "parallel mine F=1.0 at jobs %d" jobs)
            exact
            (Parallel.apriori_mine pool
               ~counter:(Apriori.Sampled { fraction = 1.0; seed = 5 })
               db ~min_support:0.05)))
    [ 1; 2; 4 ]

let test_sharding_determinism () =
  let db = random_db ~seed:21 ~universe:8 ~n:4000 ~p:0.3 in
  let counter = Apriori.Sampled { fraction = 0.1; seed = 17 } in
  let sequential = Apriori.mine ~counter db ~min_support:0.05 in
  Alcotest.(check bool) "sampled mine is non-trivial" true
    (List.length sequential > 0);
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_same_result
            (Printf.sprintf "parallel sampled equals sequential at jobs %d"
               jobs)
            sequential
            (Parallel.apriori_mine pool ~counter db ~min_support:0.05)))
    [ 1; 2; 4 ];
  (* small chunks cut windows inside runs; sums must not change *)
  Pool.with_pool ~jobs:4 (fun pool ->
      check_same_result "chunk 3 equals sequential" sequential
        (Parallel.apriori_mine pool ~chunk:3 ~counter db ~min_support:0.05))

let test_raw_counts_sum_over_runs () =
  let db = random_db ~seed:31 ~universe:6 ~n:2000 ~p:0.35 in
  let vt = Vertical.load db in
  let plan =
    Sampled.plan ~n:(Vertical.length vt) ~word_count:(Vertical.word_count vt)
      ~fraction:0.4 ~seed:2 ()
  in
  let prepared = Vertical.prepare candidates in
  let raw = Sampled.raw_counts vt plan prepared in
  (* reference: count each run independently and sum *)
  let expected = Array.make (Vertical.prepared_length prepared) 0 in
  Array.iter
    (fun (lo, hi) ->
      let part = Vertical.count_into vt ~word_lo:lo ~word_hi:hi prepared in
      Array.iteri (fun i c -> expected.(i) <- expected.(i) + c) part)
    plan.Sampled.runs;
  Alcotest.(check (array int)) "raw counts are run sums" expected raw;
  (* the scaled counts never exceed the population *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) "scaled count within population" true
        (Sampled.scale_count plan c <= plan.Sampled.population))
    raw

let test_plan_mismatch_rejected () =
  let db = random_db ~seed:41 ~universe:4 ~n:300 ~p:0.4 in
  let other = random_db ~seed:41 ~universe:4 ~n:301 ~p:0.4 in
  let vt = Vertical.load db in
  let plan =
    Sampled.plan ~n:301
      ~word_count:(Vertical.word_count (Vertical.load other))
      ~fraction:0.5 ~seed:0 ()
  in
  Alcotest.check_raises "plan for another database rejected"
    (Invalid_argument "Sampled.support_counts: plan built for another database")
    (fun () -> ignore (Sampled.support_counts vt plan candidates))

let test_sigma_coverage () =
  let db = random_db ~seed:51 ~universe:8 ~n:(150 * 62) ~p:0.3 in
  let itemset = Itemset.of_list [ 0; 1 ] in
  (match
     Ppdm_check.Stat.sampled_sigma_coverage ~seeds:30 ~db ~itemset
       ~fraction:0.2 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let p =
    Ppdm_check.Stat.sampled_counts_pvalue ~seeds:30 ~db ~itemset ~fraction:0.2
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled-vs-exact z-test passes (p=%.3g)" p)
    true (p >= 0.001)

let suite =
  [
    Alcotest.test_case "plan geometry" `Quick test_plan_geometry;
    Alcotest.test_case "plan partial last word" `Quick
      test_plan_partial_last_word;
    Alcotest.test_case "scale_count rounding" `Quick test_scale_count;
    Alcotest.test_case "F=1.0 equals vertical" `Quick
      test_exhaustive_equals_vertical;
    Alcotest.test_case "sharding determinism jobs 1/2/4" `Quick
      test_sharding_determinism;
    Alcotest.test_case "raw counts sum over runs" `Quick
      test_raw_counts_sum_over_runs;
    Alcotest.test_case "plan mismatch rejected" `Quick
      test_plan_mismatch_rejected;
    Alcotest.test_case "sigma coverage across seeds" `Quick
      test_sigma_coverage;
  ]
