(* Support-recovery tests: exact recovery under the identity operator,
   accuracy and unbiasedness on planted-support data, agreement of the
   predicted sigma with the empirical spread, mixed-size pooling, and the
   discoverability threshold. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let identity_scheme universe = Randomizer.uniform ~universe ~p_keep:1. ~p_add:0.

let test_identity_exact_recovery () =
  let rng = Rng.create ~seed:1 () in
  let universe = 40 in
  let itemset = Itemset.of_list [ 2; 5 ] in
  let db = Simple.planted rng ~universe ~size:6 ~count:500 ~itemset ~support:0.2 in
  let scheme = identity_scheme universe in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let e = Estimator.estimate ~scheme ~data ~itemset in
  Alcotest.(check (float 1e-9)) "support exact" 0.2 e.Estimator.support;
  Alcotest.(check (float 1e-9)) "sigma zero" 0. e.Estimator.sigma;
  (* partials must match the observable truth *)
  let truth = Db.partial_support_counts db itemset in
  Array.iteri
    (fun l c ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "partial %d" l)
        (float_of_int c /. 500.)
        e.Estimator.partials.(l))
    truth

let test_observed_partial_counts () =
  let data =
    [|
      (3, Itemset.of_list [ 0; 1 ]);
      (3, Itemset.of_list [ 0 ]);
      (2, Itemset.of_list [ 5 ]);
    |]
  in
  let groups = Estimator.observed_partial_counts data ~itemset:(Itemset.of_list [ 0; 1 ]) in
  Alcotest.(check (list (pair int (array int))))
    "grouped counts"
    [ (2, [| 1; 0; 0 |]); (3, [| 0; 1; 1 |]) ]
    groups

let planted_setup ~seed ~universe ~size ~count ~support ~k =
  let rng = Rng.create ~seed () in
  let itemset = Itemset.of_list (List.init k (fun i -> i * 3)) in
  let db = Simple.planted rng ~universe ~size ~count ~itemset ~support in
  (rng, itemset, db)

let test_randomized_recovery_within_5_sigma () =
  let universe = 200 and size = 8 and count = 20_000 and support = 0.15 in
  let rng, itemset, db =
    planted_setup ~seed:2 ~universe ~size ~count ~support ~k:2
  in
  let scheme =
    Randomizer.select_a_size ~universe ~size
      ~keep_dist:[| 0.02; 0.03; 0.05; 0.1; 0.15; 0.2; 0.2; 0.15; 0.1 |]
      ~rho:0.05
  in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let e = Estimator.estimate ~scheme ~data ~itemset in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.4f within 5 sigma (%.4f) of %.4f"
       e.Estimator.support e.Estimator.sigma support)
    true
    (Float.abs (e.Estimator.support -. support) < 5. *. e.Estimator.sigma);
  Alcotest.(check bool) "sigma itself is sane" true
    (e.Estimator.sigma > 0. && e.Estimator.sigma < 0.1)

let test_unbiasedness_and_sigma_calibration () =
  let universe = 100 and size = 5 and count = 4000 and support = 0.2 in
  let itemset = Itemset.of_list [ 0; 3 ] in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.04 in
  let trials = 40 in
  let estimates = Array.make trials 0. in
  let sigmas = Array.make trials 0. in
  for i = 0 to trials - 1 do
    let rng = Rng.create ~seed:(100 + i) () in
    let db = Simple.planted rng ~universe ~size ~count ~itemset ~support in
    let data = Randomizer.apply_db_tagged scheme rng db in
    let e = Estimator.estimate ~scheme ~data ~itemset in
    estimates.(i) <- e.Estimator.support;
    sigmas.(i) <- e.Estimator.sigma
  done;
  let mean = Ppdm_linalg.Stats.mean estimates in
  let spread = Ppdm_linalg.Stats.std estimates in
  let claimed = Ppdm_linalg.Stats.mean sigmas in
  Alcotest.(check bool)
    (Printf.sprintf "mean estimate %.4f near %.4f" mean support)
    true
    (Float.abs (mean -. support) < 4. *. claimed /. sqrt (float_of_int trials));
  Alcotest.(check bool)
    (Printf.sprintf "claimed sigma %.4f within 2x of empirical %.4f" claimed spread)
    true
    (claimed /. spread > 0.5 && claimed /. spread < 2.)

let test_predicted_sigma_matches_estimated () =
  (* The a-priori sigma (from true partials) should match the plug-in sigma
     computed from one randomized sample, within sampling noise. *)
  let universe = 100 and size = 6 and count = 10_000 and support = 0.1 in
  let rng, itemset, db =
    planted_setup ~seed:7 ~universe ~size ~count ~support ~k:2
  in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:6 ~rho:0.05 in
  let resolved = Randomizer.resolve scheme ~size in
  let truth = Db.partial_support_counts db itemset in
  let partials = Array.map (fun c -> float_of_int c /. float_of_int count) truth in
  let predicted = Estimator.predicted_sigma resolved ~k:2 ~partials ~n:count in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let e = Estimator.estimate ~scheme ~data ~itemset in
  Alcotest.(check bool)
    (Printf.sprintf "predicted %.5f near plug-in %.5f" predicted e.Estimator.sigma)
    true
    (Float.abs (predicted -. e.Estimator.sigma) /. predicted < 0.2)

let test_mixed_sizes () =
  (* two size classes, one of them smaller than k: the pooled estimate
     must still recover the overall support *)
  let universe = 60 in
  let rng = Rng.create ~seed:8 () in
  let itemset = Itemset.of_list [ 0; 1; 2 ] in
  let with_itemset =
    Simple.planted rng ~universe ~size:6 ~count:4000 ~itemset ~support:0.3
  in
  let small = Simple.fixed_size rng ~universe ~size:2 ~count:1000 in
  let db = Db.append with_itemset small in
  let true_support = Db.support db itemset in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:6 ~rho:0.03 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  let e = Estimator.estimate ~scheme ~data ~itemset in
  Alcotest.(check bool)
    (Printf.sprintf "pooled estimate %.4f within 5 sigma (%.4f) of %.4f"
       e.Estimator.support e.Estimator.sigma true_support)
    true
    (Float.abs (e.Estimator.support -. true_support) < 5. *. e.Estimator.sigma)

let test_binomial_profile () =
  let p = Estimator.binomial_profile ~k:3 ~p_bg:0.2 ~support:0.05 in
  Alcotest.(check (float 1e-12)) "top is support" 0.05 p.(3);
  Alcotest.(check (float 1e-9)) "sums to one" 1. (Array.fold_left ( +. ) 0. p);
  Array.iter (fun v -> Alcotest.(check bool) "nonnegative" true (v >= 0.)) p;
  Alcotest.check_raises "bad support"
    (Invalid_argument "Estimator.binomial_profile: support out of [0,1]")
    (fun () -> ignore (Estimator.binomial_profile ~k:2 ~p_bg:0.1 ~support:(-0.1)))

let test_predicted_sigma_shrinks_with_n () =
  let resolved =
    Randomizer.resolve (Randomizer.cut_and_paste ~universe:500 ~cutoff:5 ~rho:0.1) ~size:5
  in
  let partials = Estimator.binomial_profile ~k:2 ~p_bg:0.05 ~support:0.02 in
  let s1 = Estimator.predicted_sigma resolved ~k:2 ~partials ~n:1_000 in
  let s2 = Estimator.predicted_sigma resolved ~k:2 ~partials ~n:100_000 in
  Alcotest.(check bool) "sigma scales like 1/sqrt(n)" true
    (Float.abs ((s1 /. s2) -. 10.) < 0.5)

let test_lowest_discoverable_support () =
  let op gamma =
    let d = Optimizer.design_for_estimation ~m:5 ~gamma () in
    ({ keep_dist = d.Optimizer.dist; rho = d.Optimizer.rho } : Randomizer.resolved)
  in
  let strict = Estimator.lowest_discoverable_support (op 5.) ~k:2 ~n:100_000 ~p_bg:0.02 in
  let loose = Estimator.lowest_discoverable_support (op 50.) ~k:2 ~n:100_000 ~p_bg:0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "stricter privacy (%.4f) needs more support than looser (%.4f)"
       strict loose)
    true (strict > loose);
  Alcotest.(check bool) "both in (0,1]" true
    (strict > 0. && strict <= 1. && loose > 0.);
  (* the defining property: sigma at the threshold is about half of it *)
  let s = loose in
  if s < 1. then begin
    let sigma =
      Estimator.predicted_sigma (op 50.) ~k:2
        ~partials:(Estimator.binomial_profile ~k:2 ~p_bg:0.02 ~support:s)
        ~n:100_000
    in
    Alcotest.(check bool)
      (Printf.sprintf "sigma %.5f ~ s/2 %.5f" sigma (s /. 2.))
      true
      (Float.abs (sigma -. (s /. 2.)) /. (s /. 2.) < 0.05)
  end

let test_partials_sum_to_one () =
  (* P is column-stochastic, so the recovered partials sum to exactly the
     observed total mass: 1 *)
  let rng = Rng.create ~seed:15 () in
  let universe = 60 in
  let db = Simple.fixed_size rng ~universe ~size:5 ~count:2000 in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.1 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  List.iter
    (fun items ->
      let itemset = Itemset.of_list items in
      let e = Estimator.estimate ~scheme ~data ~itemset in
      Alcotest.(check (float 1e-9)) "partials sum to 1" 1.
        (Array.fold_left ( +. ) 0. e.Estimator.partials))
    [ [ 0 ]; [ 1; 2 ]; [ 3; 4; 5 ] ]

let test_confidence_interval () =
  let e : Estimator.t =
    {
      support = 0.2;
      partials = [| 0.8; 0.2 |];
      sigma = 0.05;
      covariance = Ppdm_linalg.Mat.identity 2;
      n_transactions = 100;
      n_population = 100;
    }
  in
  let lo, hi = Estimator.confidence_interval e ~level:0.95 in
  Alcotest.(check bool) "lo" true (Float.abs (lo -. (0.2 -. (1.959964 *. 0.05))) < 1e-4);
  Alcotest.(check bool) "hi" true (Float.abs (hi -. (0.2 +. (1.959964 *. 0.05))) < 1e-4);
  (* clamping *)
  let tight = { e with support = 0.01; sigma = 0.5 } in
  let lo, hi = Estimator.confidence_interval tight ~level:0.99 in
  Alcotest.(check (float 1e-12)) "clamped low" 0. lo;
  Alcotest.(check bool) "clamped high" true (hi <= 1.);
  Alcotest.check_raises "bad level"
    (Invalid_argument "Estimator.confidence_interval: level must be in (0,1)")
    (fun () -> ignore (Estimator.confidence_interval e ~level:1.))

let test_empty_data_rejected () =
  let scheme = identity_scheme 10 in
  Alcotest.check_raises "empty data"
    (Invalid_argument "Estimator.estimate: empty data") (fun () ->
      ignore (Estimator.estimate ~scheme ~data:[||] ~itemset:(Itemset.singleton 0)))

let test_all_zero_size_class () =
  (* Regression: a size class with no observations used to divide by
     zero inside estimate_class and poison the pooled estimate with
     NaN.  It must now be skipped as carrying no information. *)
  let scheme = Randomizer.uniform ~universe:20 ~p_keep:0.9 ~p_add:0.05 in
  let counts = [ (3, [| 0; 0; 0 |]); (5, [| 70; 20; 10 |]) ] in
  let e = Estimator.estimate_from_counts ~scheme ~k:2 ~counts in
  Alcotest.(check bool) "support is a number" false (Float.is_nan e.Estimator.support);
  Alcotest.(check bool) "sigma is a number" false (Float.is_nan e.Estimator.sigma);
  (* and the zero class contributes nothing: dropping it changes nothing *)
  let only = Estimator.estimate_from_counts ~scheme ~k:2 ~counts:[ (5, [| 70; 20; 10 |]) ] in
  Alcotest.(check (float 1e-12)) "same support" only.Estimator.support e.Estimator.support;
  Alcotest.(check (float 1e-12)) "same sigma" only.Estimator.sigma e.Estimator.sigma;
  Alcotest.(check int) "n counts observed rows only" 100 e.Estimator.n_transactions

let test_sampling_covariance () =
  let partials = [| 0.7; 0.2; 0.1 |] in
  (* no sampling -> exactly zero *)
  let m0 = Estimator.sampling_covariance ~partials ~n:50 ~population:50 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 0.)) "zero at full census" 0. (Ppdm_linalg.Mat.get m0 i j)
    done
  done;
  (* FPC multinomial form at n of N *)
  let n = 100 and population = 1000 in
  let m = Estimator.sampling_covariance ~partials ~n ~population in
  let fpc =
    float_of_int (population - n) /. float_of_int (population - 1)
  in
  let expect i j =
    let s = partials.(i) in
    fpc /. float_of_int n
    *. (if i = j then s *. (1. -. s) else -.s *. partials.(j))
  in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "entry (%d,%d)" i j)
        (expect i j) (Ppdm_linalg.Mat.get m i j)
    done
  done;
  Alcotest.(check (float 1e-12)) "sampling_sigma is the sqrt diagonal"
    (sqrt (expect 2 2))
    (Estimator.sampling_sigma ~support:partials.(2) ~n ~population);
  Alcotest.check_raises "population below sample"
    (Invalid_argument "Estimator.sampling_covariance: population smaller than sample")
    (fun () -> ignore (Estimator.sampling_covariance ~partials ~n:10 ~population:9))

let test_estimate_from_counts_sampled () =
  let scheme = Randomizer.uniform ~universe:20 ~p_keep:0.9 ~p_add:0.05 in
  let counts = [ (5, [| 70; 20; 10 |]) ] in
  let plain = Estimator.estimate_from_counts ~scheme ~k:2 ~counts in
  let sampled =
    Estimator.estimate_from_counts_sampled ~population:1000 ~scheme ~k:2 ~counts
  in
  Alcotest.(check (float 1e-12)) "same point estimate"
    plain.Estimator.support sampled.Estimator.support;
  Alcotest.(check bool)
    (Printf.sprintf "combined sigma %.5f exceeds randomization-only %.5f"
       sampled.Estimator.sigma plain.Estimator.sigma)
    true
    (sampled.Estimator.sigma > plain.Estimator.sigma);
  Alcotest.(check int) "n_transactions is the sample" 100 sampled.Estimator.n_transactions;
  Alcotest.(check int) "n_population is the database" 1000 sampled.Estimator.n_population;
  Alcotest.(check int) "plain population equals sample" 100 plain.Estimator.n_population;
  (* population = total degenerates to the plain estimate *)
  let full = Estimator.estimate_from_counts_sampled ~population:100 ~scheme ~k:2 ~counts in
  Alcotest.(check (float 1e-12)) "census sigma unchanged"
    plain.Estimator.sigma full.Estimator.sigma;
  Alcotest.check_raises "population below total"
    (Invalid_argument "Estimator.estimate_from_counts: population smaller than sample")
    (fun () ->
      ignore (Estimator.estimate_from_counts_sampled ~population:99 ~scheme ~k:2 ~counts))

let test_population_widens_predictions () =
  let resolved =
    Randomizer.resolve (Randomizer.uniform ~universe:50 ~p_keep:0.8 ~p_add:0.1) ~size:5
  in
  let partials = Estimator.binomial_profile ~k:2 ~p_bg:0.1 ~support:0.1 in
  let without = Estimator.predicted_sigma resolved ~k:2 ~partials ~n:2_000 in
  let with_pop =
    Estimator.predicted_sigma ~population:50_000 resolved ~k:2 ~partials ~n:2_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled sigma %.5f > census sigma %.5f" with_pop without)
    true (with_pop > without);
  Alcotest.(check (float 1e-12)) "population = n is a census" without
    (Estimator.predicted_sigma ~population:2_000 resolved ~k:2 ~partials ~n:2_000);
  let lds = Estimator.lowest_discoverable_support resolved ~k:2 ~n:2_000 ~p_bg:0.1 in
  let lds_pop =
    Estimator.lowest_discoverable_support ~population:50_000 resolved ~k:2 ~n:2_000
      ~p_bg:0.1
  in
  Alcotest.(check bool)
    (Printf.sprintf "discoverability threshold rises: %.4f -> %.4f" lds lds_pop)
    true (lds_pop >= lds)

let suite =
  [
    Alcotest.test_case "identity recovers exactly" `Quick test_identity_exact_recovery;
    Alcotest.test_case "observed partial counts" `Quick test_observed_partial_counts;
    Alcotest.test_case "recovery within 5 sigma" `Slow test_randomized_recovery_within_5_sigma;
    Alcotest.test_case "unbiasedness and sigma calibration" `Slow
      test_unbiasedness_and_sigma_calibration;
    Alcotest.test_case "predicted vs plug-in sigma" `Slow test_predicted_sigma_matches_estimated;
    Alcotest.test_case "mixed transaction sizes" `Quick test_mixed_sizes;
    Alcotest.test_case "binomial profile" `Quick test_binomial_profile;
    Alcotest.test_case "sigma scaling in n" `Quick test_predicted_sigma_shrinks_with_n;
    Alcotest.test_case "lowest discoverable support" `Quick test_lowest_discoverable_support;
    Alcotest.test_case "partials sum to one" `Quick test_partials_sum_to_one;
    Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
    Alcotest.test_case "empty data rejected" `Quick test_empty_data_rejected;
    Alcotest.test_case "all-zero size class skipped" `Quick test_all_zero_size_class;
    Alcotest.test_case "sampling covariance closed form" `Quick test_sampling_covariance;
    Alcotest.test_case "estimate from sampled counts" `Quick
      test_estimate_from_counts_sampled;
    Alcotest.test_case "population widens predictions" `Quick
      test_population_widens_predictions;
  ]
