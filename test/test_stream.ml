(* Streaming estimator tests: batch equivalence, merge associativity, and
   online convergence. *)

open Ppdm_prng
open Ppdm_data
open Ppdm_datagen
open Ppdm

let setup ~seed =
  let universe = 80 and size = 5 in
  let rng = Rng.create ~seed () in
  let itemset = Itemset.of_list [ 1; 4 ] in
  let db = Simple.planted rng ~universe ~size ~count:5000 ~itemset ~support:0.2 in
  let scheme = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.05 in
  let data = Randomizer.apply_db_tagged scheme rng db in
  (scheme, itemset, data)

let test_batch_equivalence () =
  let scheme, itemset, data = setup ~seed:1 in
  let acc = Stream.create ~scheme ~itemset in
  Stream.observe_all acc data;
  let streamed = Stream.estimate acc in
  let batch = Estimator.estimate ~scheme ~data ~itemset in
  Alcotest.(check (float 0.)) "identical support" batch.Estimator.support
    streamed.Estimator.support;
  Alcotest.(check (float 0.)) "identical sigma" batch.Estimator.sigma
    streamed.Estimator.sigma;
  Alcotest.(check int) "counts" (Array.length data) (Stream.observed acc)

let test_merge () =
  let scheme, itemset, data = setup ~seed:2 in
  let whole = Stream.create ~scheme ~itemset in
  Stream.observe_all whole data;
  let n = Array.length data in
  let left = Stream.create ~scheme ~itemset in
  let right = Stream.create ~scheme ~itemset in
  Stream.observe_all left (Array.sub data 0 (n / 2));
  Stream.observe_all right (Array.sub data (n / 2) (n - (n / 2)));
  Stream.merge_into left ~from:right;
  Alcotest.(check int) "merged count" n (Stream.observed left);
  Alcotest.(check (float 0.)) "merged support"
    (Stream.estimate whole).Estimator.support
    (Stream.estimate left).Estimator.support

let test_merge_nway () =
  (* Stream.merge over k shards equals one accumulator over the whole
     stream, for any shard count *)
  let scheme, itemset, data = setup ~seed:7 in
  let n = Array.length data in
  let whole = Stream.create ~scheme ~itemset in
  Stream.observe_all whole data;
  let expected = Stream.estimate whole in
  List.iter
    (fun k ->
      let shards =
        List.init k (fun i ->
            let lo = i * n / k and hi = (i + 1) * n / k in
            let acc = Stream.create ~scheme ~itemset in
            Stream.observe_all acc (Array.sub data lo (hi - lo));
            acc)
      in
      let merged = Stream.merge shards in
      Alcotest.(check int)
        (Printf.sprintf "count, %d shards" k)
        n (Stream.observed merged);
      let e = Stream.estimate merged in
      Alcotest.(check (float 0.))
        (Printf.sprintf "support, %d shards" k)
        expected.Estimator.support e.Estimator.support;
      Alcotest.(check (float 0.))
        (Printf.sprintf "sigma, %d shards" k)
        expected.Estimator.sigma e.Estimator.sigma;
      (* inputs left untouched: merging again gives the same answer *)
      let again = Stream.estimate (Stream.merge shards) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "re-merge, %d shards" k)
        expected.Estimator.support again.Estimator.support)
    [ 1; 3; 7 ];
  Alcotest.check_raises "empty merge rejected"
    (Invalid_argument "Stream.merge: empty list") (fun () ->
      ignore (Stream.merge []))

let test_merge_mismatch () =
  let scheme, itemset, _ = setup ~seed:3 in
  let a = Stream.create ~scheme ~itemset in
  let b = Stream.create ~scheme ~itemset:(Itemset.singleton 0) in
  Alcotest.check_raises "itemset mismatch"
    (Invalid_argument "Stream.merge_into: itemset mismatch") (fun () ->
      Stream.merge_into a ~from:b)

let test_merge_scheme_mismatch () =
  (* accumulators built under different operator parameters must not
     merge: estimate would invert the wrong transition matrices *)
  let scheme, itemset, data = setup ~seed:8 in
  let universe = 80 in
  let a = Stream.create ~scheme ~itemset in
  Stream.observe_all a (Array.sub data 0 20);
  let noisier = Randomizer.cut_and_paste ~universe ~cutoff:5 ~rho:0.2 in
  let b = Stream.create ~scheme:noisier ~itemset in
  Stream.observe_all b (Array.sub data 20 20);
  Alcotest.check_raises "different rho rejected"
    (Invalid_argument "Stream.merge_into: scheme mismatch") (fun () ->
      Stream.merge_into a ~from:b);
  Alcotest.check_raises "merge list rejects too"
    (Invalid_argument "Stream.merge_into: scheme mismatch") (fun () ->
      ignore (Stream.merge [ a; b ]));
  Alcotest.(check int) "failed merge left target untouched" 20 (Stream.observed a);
  (* parameters are compared, not names: a scheme round-tripped through
     Scheme_io (different name, same operator) still merges *)
  let sizes =
    List.sort_uniq compare (Array.to_list (Array.map fst data))
  in
  let path = Filename.temp_file "ppdm_stream_scheme" ".txt" in
  let roundtripped =
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Scheme_io.write_file path scheme ~sizes;
        Scheme_io.read_file path)
  in
  let c = Stream.create ~scheme:roundtripped ~itemset in
  Stream.observe_all c (Array.sub data 20 20);
  Stream.merge_into a ~from:c;
  Alcotest.(check int) "round-tripped scheme merges" 40 (Stream.observed a)

let test_empty_estimate () =
  let scheme, itemset, _ = setup ~seed:4 in
  let acc = Stream.create ~scheme ~itemset in
  Alcotest.check_raises "no observations"
    (Invalid_argument "Stream.estimate: no observations yet") (fun () ->
      ignore (Stream.estimate acc))

let test_online_convergence () =
  (* sigma shrinks as the stream grows; the estimate homes in on truth *)
  let scheme, itemset, data = setup ~seed:5 in
  let acc = Stream.create ~scheme ~itemset in
  Stream.observe_all acc (Array.sub data 0 500);
  let early = Stream.estimate acc in
  Stream.observe_all acc (Array.sub data 500 (Array.length data - 500));
  let late = Stream.estimate acc in
  Alcotest.(check bool)
    (Printf.sprintf "sigma shrinks: %.4f -> %.4f" early.Estimator.sigma
       late.Estimator.sigma)
    true
    (late.Estimator.sigma < early.Estimator.sigma);
  Alcotest.(check bool)
    (Printf.sprintf "final estimate %.3f near 0.2" late.Estimator.support)
    true
    (Float.abs (late.Estimator.support -. 0.2) < 5. *. late.Estimator.sigma)

let test_estimate_is_pure () =
  let scheme, itemset, data = setup ~seed:6 in
  let acc = Stream.create ~scheme ~itemset in
  Stream.observe_all acc data;
  let a = Stream.estimate acc and b = Stream.estimate acc in
  Alcotest.(check (float 0.)) "estimate does not mutate" a.Estimator.support
    b.Estimator.support;
  Alcotest.(check int) "observed unchanged" (Array.length data) (Stream.observed acc)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"stream = batch on random splits" ~count:30
      (pair small_int (int_range 1 99)) (fun (seed, percent) ->
        let scheme, itemset, data = setup ~seed in
        let n = Array.length data in
        let cut = max 1 (n * percent / 100) in
        let acc = Stream.create ~scheme ~itemset in
        Stream.observe_all acc (Array.sub data 0 cut);
        let other = Stream.create ~scheme ~itemset in
        Stream.observe_all other (Array.sub data cut (n - cut));
        Stream.merge_into acc ~from:other;
        let batch = Estimator.estimate ~scheme ~data ~itemset in
        (Stream.estimate acc).Estimator.support = batch.Estimator.support);
  ]

let suite =
  [
    Alcotest.test_case "batch equivalence" `Quick test_batch_equivalence;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "merge n-way" `Quick test_merge_nway;
    Alcotest.test_case "merge mismatch" `Quick test_merge_mismatch;
    Alcotest.test_case "merge scheme mismatch" `Quick test_merge_scheme_mismatch;
    Alcotest.test_case "empty estimate" `Quick test_empty_estimate;
    Alcotest.test_case "online convergence" `Quick test_online_convergence;
    Alcotest.test_case "estimate is pure" `Quick test_estimate_is_pure;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
