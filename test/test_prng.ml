(* Tests for the PRNG substrate: determinism, bounds, and distributional
   sanity (chi-square thresholds chosen at the ~0.999 level so seeded runs
   never flake). *)

open Ppdm_prng
open Ppdm_linalg

let check = Alcotest.check

let test_determinism () =
  let a = Rng.create ~seed:42 () and b = Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:2 () in
  Alcotest.(check bool)
    "different seeds diverge" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create ~seed:7 () in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  (* advancing [a] further must not affect [b] *)
  let _ = Rng.bits64 a in
  check Alcotest.int64 "copy starts at same state" va (Rng.bits64 b)

let test_split_decorrelated () =
  let a = Rng.create ~seed:7 () in
  let b = Rng.split a in
  let xs = Array.init 64 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 64 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_derive_reproducible () =
  (* same parent state, same index -> identical child stream *)
  let a = Rng.create ~seed:7 () in
  let c1 = Rng.derive a ~index:3 in
  let c2 = Rng.derive a ~index:3 in
  for _ = 1 to 50 do
    check Alcotest.int64 "same child stream" (Rng.bits64 c1) (Rng.bits64 c2)
  done;
  (* deriving does not advance the parent *)
  let untouched = Rng.create ~seed:7 () in
  check Alcotest.int64 "parent unchanged" (Rng.bits64 untouched) (Rng.bits64 a)

let test_derive_independent () =
  (* distinct indices -> decorrelated children; children differ from the
     parent's own stream *)
  let a = Rng.create ~seed:7 () in
  let stream rng = Array.init 64 (fun _ -> Rng.bits64 rng) in
  let c0 = stream (Rng.derive a ~index:0) in
  let c1 = stream (Rng.derive a ~index:1) in
  let c2 = stream (Rng.derive a ~index:2) in
  Alcotest.(check bool) "index 0 <> index 1" true (c0 <> c1);
  Alcotest.(check bool) "index 1 <> index 2" true (c1 <> c2);
  Alcotest.(check bool) "child <> parent stream" true (c0 <> stream a);
  (* a different parent state yields different children at the same index *)
  let b = Rng.create ~seed:8 () in
  Alcotest.(check bool) "parent state matters" true
    (stream (Rng.derive b ~index:0) <> c0);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.derive: index must be non-negative") (fun () ->
      ignore (Rng.derive a ~index:(-1)))

let test_derive_uniformity () =
  (* low bits across children at consecutive indices stay balanced — the
     SplitMix64 mixing really decorrelates the index *)
  let a = Rng.create ~seed:97 () in
  let buckets = Array.make 16 0 in
  for index = 0 to 15_999 do
    let child = Rng.derive a ~index in
    let v = Int64.to_int (Int64.logand (Rng.bits64 child) 15L) in
    buckets.(v) <- buckets.(v) + 1
  done;
  let chi2 = Stats.chi_square_uniform buckets in
  (* df = 15, 0.999 critical value = 37.70 *)
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f below 37.70" chi2)
    true (chi2 < 37.70)

let test_int_bounds () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_uniform () =
  let rng = Rng.create ~seed:11 () in
  let buckets = Array.make 16 0 in
  for _ = 1 to 16_000 do
    let v = Rng.int rng 16 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let chi2 = Stats.chi_square_uniform buckets in
  (* df = 15, 0.999 critical value = 37.70 *)
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f below 37.70" chi2)
    true (chi2 < 37.70)

let test_float_range () =
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_int_in_range () =
  let rng = Rng.create ~seed:9 () in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  check Alcotest.int "degenerate range" 3 (Rng.int_in_range rng ~lo:3 ~hi:3)

let mean_of n f =
  let rng = Rng.create ~seed:77 () in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f rng
  done;
  !acc /. float_of_int n

let test_bernoulli_rate () =
  let m = mean_of 20_000 (fun rng -> if Dist.bernoulli rng 0.3 then 1. else 0.) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 0.3" m)
    true
    (Float.abs (m -. 0.3) < 0.015)

let test_binomial_moments () =
  (* large-n path (geometric skipping) *)
  let m = mean_of 5_000 (fun rng -> float_of_int (Dist.binomial rng ~n:1000 ~p:0.02)) in
  Alcotest.(check bool)
    (Printf.sprintf "binomial mean %.2f near 20" m)
    true
    (Float.abs (m -. 20.) < 1.);
  (* small-n path (direct summation) *)
  let m2 = mean_of 20_000 (fun rng -> float_of_int (Dist.binomial rng ~n:10 ~p:0.5)) in
  Alcotest.(check bool)
    (Printf.sprintf "binomial mean %.2f near 5" m2)
    true
    (Float.abs (m2 -. 5.) < 0.1);
  (* complementary path p > 1/2 with large n *)
  let m3 = mean_of 2_000 (fun rng -> float_of_int (Dist.binomial rng ~n:200 ~p:0.9)) in
  Alcotest.(check bool)
    (Printf.sprintf "binomial mean %.1f near 180" m3)
    true
    (Float.abs (m3 -. 180.) < 2.)

let test_binomial_degenerate () =
  let rng = Rng.create () in
  check Alcotest.int "p=0" 0 (Dist.binomial rng ~n:100 ~p:0.);
  check Alcotest.int "p=1" 100 (Dist.binomial rng ~n:100 ~p:1.);
  check Alcotest.int "n=0" 0 (Dist.binomial rng ~n:0 ~p:0.5)

let test_geometric_mean () =
  let m = mean_of 20_000 (fun rng -> float_of_int (Dist.geometric rng ~p:0.25)) in
  (* mean = (1-p)/p = 3 *)
  Alcotest.(check bool)
    (Printf.sprintf "geometric mean %.2f near 3" m)
    true
    (Float.abs (m -. 3.) < 0.15)

let test_poisson_mean () =
  let m = mean_of 20_000 (fun rng -> float_of_int (Dist.poisson rng ~mean:6.5)) in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean %.2f near 6.5" m)
    true
    (Float.abs (m -. 6.5) < 0.15)

let test_exponential_mean () =
  let m = mean_of 20_000 (fun rng -> Dist.exponential rng ~rate:2.) in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean %.3f near 0.5" m)
    true
    (Float.abs (m -. 0.5) < 0.03)

let test_normal_moments () =
  let rng = Rng.create ~seed:13 () in
  let xs = Array.init 20_000 (fun _ -> Dist.normal rng ~mean:3. ~std:2.) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (Stats.mean xs -. 3.) < 0.1);
  Alcotest.(check bool) "std near 2" true (Float.abs (Stats.std xs -. 2.) < 0.1)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:21 () in
  let arr = Array.init 50 Fun.id in
  Dist.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_distinct () =
  let rng = Rng.create ~seed:23 () in
  for _ = 1 to 200 do
    let k = Rng.int rng 11 in
    let s = Dist.sample_distinct rng ~k ~bound:10 in
    check Alcotest.int "length k" k (Array.length s);
    for i = 0 to k - 1 do
      Alcotest.(check bool) "in bounds" true (s.(i) >= 0 && s.(i) < 10);
      if i > 0 then Alcotest.(check bool) "strictly increasing" true (s.(i) > s.(i - 1))
    done
  done;
  check Alcotest.(array int) "k = bound is everything"
    (Array.init 6 Fun.id)
    (Dist.sample_distinct rng ~k:6 ~bound:6)

let test_sample_distinct_uniform () =
  (* All C(4,2) = 6 pairs should be equally likely. *)
  let rng = Rng.create ~seed:29 () in
  let tbl = Hashtbl.create 6 in
  for _ = 1 to 6_000 do
    let s = Dist.sample_distinct rng ~k:2 ~bound:4 in
    let key = (s.(0), s.(1)) in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  check Alcotest.int "all six pairs appear" 6 (Hashtbl.length tbl);
  let counts = Array.of_seq (Seq.map snd (Hashtbl.to_seq tbl)) in
  let chi2 = Stats.chi_square_uniform counts in
  (* df = 5, 0.999 critical value = 20.52 *)
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f below 20.52" chi2)
    true (chi2 < 20.52)

let test_discrete_matches_weights () =
  let rng = Rng.create ~seed:31 () in
  let weights = [| 1.; 2.; 3.; 4. |] in
  let d = Dist.discrete weights in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Dist.discrete_sample rng d in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10. in
      let got = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d: %.3f near %.3f" i got expected)
        true
        (Float.abs (got -. expected) < 0.01))
    counts

let test_categorical_matches_discrete () =
  let rng = Rng.create ~seed:37 () in
  let weights = [| 0.5; 0.; 1.5 |] in
  for _ = 1 to 2_000 do
    let i = Dist.categorical rng weights in
    Alcotest.(check bool) "never picks zero-weight bucket" true (i <> 1)
  done

let test_zipf_popularity () =
  let rng = Rng.create ~seed:41 () in
  let z = Dist.zipf ~n:100 ~s:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Dist.zipf_sample rng z in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 beats rank 10" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 90" true (counts.(10) > counts.(90));
  (* ratio of rank-0 to rank-1 frequencies should be near 2 for s = 1 *)
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "rank0/rank1 ratio %.2f near 2" ratio)
    true
    (ratio > 1.7 && ratio < 2.3)

let test_validation_errors () =
  let rng = Rng.create () in
  Alcotest.check_raises "bernoulli p>1"
    (Invalid_argument "Dist.bernoulli: p out of [0,1]") (fun () ->
      ignore (Dist.bernoulli rng 1.5));
  Alcotest.check_raises "geometric p=0"
    (Invalid_argument "Dist.geometric: p out of (0,1]") (fun () ->
      ignore (Dist.geometric rng ~p:0.));
  Alcotest.check_raises "sample_distinct k>bound"
    (Invalid_argument "Dist.sample_distinct: bad k") (fun () ->
      ignore (Dist.sample_distinct rng ~k:5 ~bound:3));
  Alcotest.check_raises "discrete all-zero"
    (Invalid_argument "Dist.discrete: weights sum to zero") (fun () ->
      ignore (Dist.discrete [| 0.; 0. |]))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Rng.int always within bound" ~count:500
      (pair small_int (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let rng = Rng.create ~seed () in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"sample_distinct yields distinct sorted values" ~count:200
      (pair small_int (int_range 0 50))
      (fun (seed, k) ->
        let rng = Rng.create ~seed () in
        let s = Dist.sample_distinct rng ~k ~bound:60 in
        Array.length s = k
        && Array.for_all (fun x -> x >= 0 && x < 60) s
        &&
        let ok = ref true in
        for i = 1 to k - 1 do
          if s.(i) <= s.(i - 1) then ok := false
        done;
        !ok);
    Test.make ~name:"subset preserves element order" ~count:200
      (pair small_int (int_range 0 20))
      (fun (seed, k) ->
        let rng = Rng.create ~seed () in
        let arr = Array.init 20 (fun i -> i * 3) in
        let s = Dist.subset rng ~k arr in
        let ok = ref true in
        for i = 1 to Array.length s - 1 do
          if s.(i) <= s.(i - 1) then ok := false
        done;
        !ok);
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split decorrelation" `Quick test_split_decorrelated;
    Alcotest.test_case "derive reproducible" `Quick test_derive_reproducible;
    Alcotest.test_case "derive independent" `Quick test_derive_independent;
    Alcotest.test_case "derive uniformity" `Quick test_derive_uniformity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniform;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "binomial moments" `Quick test_binomial_moments;
    Alcotest.test_case "binomial degenerate" `Quick test_binomial_degenerate;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample_distinct basics" `Quick test_sample_distinct;
    Alcotest.test_case "sample_distinct uniformity" `Quick test_sample_distinct_uniform;
    Alcotest.test_case "discrete alias sampling" `Quick test_discrete_matches_weights;
    Alcotest.test_case "categorical zero weights" `Quick test_categorical_matches_discrete;
    Alcotest.test_case "zipf popularity" `Quick test_zipf_popularity;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

