(* The verification harness, verified: the acceptance differential suite
   (all four miners, jobs 1/2/4, hundreds of generated databases), the
   statistical assertions, the fault-injection scenarios, and meta-tests
   of the property runner itself (replay, shrinking, reporting). *)

open Ppdm_data
open Ppdm
open Ppdm_check
open Ppdm_runtime

(* ------------------------------------------------- property runner meta *)

let failing_check ~seed =
  Property.check ~seed ~count:50 ~name:"x < 50"
    (Gen.int_range 0 1000)
    (fun x -> x < 50)

let test_replay_deterministic () =
  let r1 = failing_check ~seed:123 and r2 = failing_check ~seed:123 in
  match (r1.Property.failure, r2.Property.failure) with
  | Some f1, Some f2 ->
      Alcotest.(check int) "same failing case" f1.Property.case f2.Property.case;
      Alcotest.(check string) "same counterexample" f1.Property.counterexample
        f2.Property.counterexample;
      Alcotest.(check int) "seed recorded" 123 f1.Property.seed
  | _ -> Alcotest.fail "a property false on 95% of inputs did not fail"

let test_shrink_to_boundary () =
  (* greedy shrinking must walk x all the way down to the smallest
     failing input *)
  match (failing_check ~seed:7).Property.failure with
  | Some f ->
      Alcotest.(check string) "minimal counterexample" "50"
        f.Property.counterexample
  | None -> Alcotest.fail "expected a failure"

let test_different_seeds_differ () =
  (* not a strict guarantee, but with 50 draws from [0,1000] two seeds
     colliding on the whole sequence would indicate a broken derive *)
  let cases seed =
    let collected = ref [] in
    ignore
      (Property.check ~seed ~count:10 ~name:"collect"
         (Gen.int_range 0 1_000_000)
         (fun x ->
           collected := x :: !collected;
           true));
    !collected
  in
  Alcotest.(check bool) "seed changes the sequence" false
    (cases 1 = cases 2)

let test_passing_report () =
  let r =
    Property.check ~seed:5 ~count:20 ~name:"tautology" Gen.bool (fun _ -> true)
  in
  Alcotest.(check bool) "no failure" true (r.Property.failure = None);
  Alcotest.(check int) "all cases ran" 20 r.Property.cases;
  Alcotest.check_raises "assert_ok raises on failure"
    (Property.Failed (Property.describe (failing_check ~seed:123)))
    (fun () -> Property.assert_ok (failing_check ~seed:123))

let test_exception_is_failure () =
  let r =
    Property.check ~seed:3 ~count:10 ~name:"raises"
      (Gen.int_range 0 9)
      (fun _ -> failwith "boom")
  in
  match r.Property.failure with
  | Some f ->
      Alcotest.(check bool) "message mentions the exception" true
        (String.length f.Property.message > 0)
  | None -> Alcotest.fail "an exception must be a failure"

(* ------------------------------------------------------ statistical meta *)

let test_stat_helpers () =
  let obs = [| 100; 100; 100; 100 |] in
  let exact = [| 100.; 100.; 100.; 100. |] in
  Alcotest.(check (float 1e-9)) "perfect fit" 1.0
    (Stat.chi_square_fit ~observed:obs ~expected:exact);
  let wrong = [| 250.; 150.; 250.; 350. |] in
  Alcotest.(check bool) "gross misfit rejected" true
    (Stat.chi_square_fit ~observed:obs ~expected:wrong < 0.001);
  (* tiny-expectation buckets pool away; with fewer than two cells left
     there is no test and the fit is vacuously accepted *)
  Alcotest.(check (float 1e-9)) "untestable fit is vacuous" 1.0
    (Stat.chi_square_fit ~observed:obs
       ~expected:[| 400.; 0.0001; 0.0001; 0.0001 |]);
  (* the erfc approximation is only good to ~1.3e-7 *)
  Alcotest.(check (float 1e-6)) "z = 0" 1.0 (Stat.z_pvalue 0.);
  Alcotest.(check bool) "z = 6 rejected" true (Stat.z_pvalue 6. < 1e-6);
  Alcotest.(check bool) "erfc decreasing" true
    (Stat.erfc 2. < Stat.erfc 1. && Stat.erfc 1. < Stat.erfc 0.);
  Alcotest.check_raises "dof validated"
    (Invalid_argument "Stat.chi_square_pvalue: dof must be positive")
    (fun () -> ignore (Stat.chi_square_pvalue ~dof:0 1.))

(* ---------------------------------------------- acceptance: differential *)

let test_differential_suite () =
  (* >= 200 generated databases; byte-identical canonical output across
     apriori, eclat, fp-growth, brute force, and the parallel drivers at
     jobs 1, 2, and 4 *)
  let count = max 200 (Property.default_count ()) in
  let pools = List.map (fun jobs -> Pool.create ~jobs) [ 1; 2; 4 ] in
  Fun.protect
    ~finally:(fun () -> List.iter Pool.shutdown pools)
    (fun () ->
      let miners =
        (( "brute-force",
           fun db ~min_support ->
             Oracle.brute_force_frequent ~max_size:4 db ~min_support )
        :: Oracle.sequential_miners ~max_size:4 ())
        @ List.concat_map (Oracle.parallel_miners ~max_size:4) pools
      in
      Property.assert_ok
        (Property.check_result ~count ~name:"all miners agree"
           (Gen.pair
              (Gen.db ~max_universe:10 ~max_transactions:40 ())
              Gen.min_support)
           (fun (db, min_support) -> Oracle.agree ~miners db ~min_support)))

let test_metamorphic_permutation () =
  Property.assert_ok
    (Property.check_result ~name:"permutation relabels"
       (Gen.pair
          (Gen.pair (Gen.db ~max_universe:8 ~max_transactions:30 ()) Gen.min_support)
          (Gen.int_range 0 1_000_000))
       (fun ((db, min_support), key) ->
         let rng = Ppdm_prng.Rng.create ~seed:key () in
         let perm =
           Gen.generate (Gen.permutation ~n:(Db.universe db)) rng
             ~size:(Db.universe db)
         in
         let pad = 1 + Ppdm_prng.Rng.int rng 3 in
         let rec go = function
           | [] -> Ok ()
           | m :: rest -> (
               match Oracle.permutation_relabels m db ~min_support ~perm with
               | Error _ as e -> e
               | Ok () -> (
                   match Oracle.padding_noop m db ~min_support ~pad with
                   | Error _ as e -> e
                   | Ok () -> go rest))
         in
         go (Oracle.sequential_miners ~max_size:4 ())))

let test_statistical_transition () =
  let rng = Ppdm_prng.Rng.create ~seed:2718 () in
  let scheme = Randomizer.uniform ~universe:12 ~p_keep:0.7 ~p_add:0.1 in
  List.iter
    (fun l ->
      let p = Stat.transition_pvalue ~scheme ~size:4 ~k:2 ~l rng in
      Alcotest.(check bool)
        (Printf.sprintf "transition column holds at l=%d (p=%g)" l p)
        true (p >= 0.001))
    [ 0; 1; 2 ]

let test_statistical_amplification () =
  let rng = Ppdm_prng.Rng.create ~seed:577 () in
  let scheme = Randomizer.uniform ~universe:9 ~p_keep:0.6 ~p_add:0.2 in
  match Stat.amplification_check ~scheme ~size:3 rng with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_statistical_estimator_bias () =
  let rng = Ppdm_prng.Rng.create ~seed:31415 () in
  let scheme = Randomizer.uniform ~universe:8 ~p_keep:0.8 ~p_add:0.1 in
  let db =
    Db.create ~universe:8
      (Array.init 40 (fun i ->
           if i mod 2 = 0 then Itemset.of_list [ 0; 1; 3 ]
           else Itemset.of_list [ 1; 2 ]))
  in
  let p =
    Stat.estimator_bias_pvalue ~scheme ~db ~itemset:(Itemset.of_list [ 0; 1 ])
      rng
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimator unbiased (p=%g)" p)
    true (p >= 0.001)

(* ------------------------------------------------- acceptance: faults *)

let fault_case name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with Ok () -> () | Error m -> Alcotest.fail m)

(* ------------------------------------------------- acceptance: selftest *)

let test_selftest_clean () =
  let r = Selftest.run ~count:10 () in
  List.iter
    (fun o ->
      if not o.Selftest.ok then
        Alcotest.failf "selftest check %S failed:\n%s" o.Selftest.name
          o.Selftest.detail)
    r.Selftest.outcomes;
  Alcotest.(check bool) "report clean" true (Selftest.ok r)

let suite =
  [
    Alcotest.test_case "failures replay deterministically" `Quick
      test_replay_deterministic;
    Alcotest.test_case "shrinking reaches the boundary" `Quick
      test_shrink_to_boundary;
    Alcotest.test_case "seeds change the input sequence" `Quick
      test_different_seeds_differ;
    Alcotest.test_case "reports and assert_ok" `Quick test_passing_report;
    Alcotest.test_case "exceptions count as failures" `Quick
      test_exception_is_failure;
    Alcotest.test_case "statistical helpers" `Quick test_stat_helpers;
    Alcotest.test_case "differential: miners agree at jobs 1/2/4" `Quick
      test_differential_suite;
    Alcotest.test_case "metamorphic: permutation and padding" `Quick
      test_metamorphic_permutation;
    Alcotest.test_case "statistical: transition matrix" `Quick
      test_statistical_transition;
    Alcotest.test_case "statistical: amplification bound" `Quick
      test_statistical_amplification;
    Alcotest.test_case "statistical: estimator bias" `Quick
      test_statistical_estimator_bias;
    fault_case "fault: pool error propagates" (fun () ->
        Fault.pool_error_propagates ~jobs:4 ~k:3 ~n:16 ());
    fault_case "fault: first task of a sequential pool" (fun () ->
        Fault.pool_error_propagates ~jobs:1 ~k:0 ~n:4 ());
    fault_case "fault: last task" (fun () ->
        Fault.pool_error_propagates ~jobs:2 ~k:7 ~n:8 ());
    fault_case "fault: stealing pool error propagates" (fun () ->
        Fault.pool_error_propagates ~sched:Ppdm_runtime.Pool.Stealing ~jobs:4
          ~k:5 ~n:24 ());
    fault_case "fault: failure inside a stolen cell" (fun () ->
        Fault.stealing_fault_in_stolen_cell ~jobs:4);
    fault_case "fault: map_reduce yields nothing partial" (fun () ->
        Fault.map_reduce_fault_no_partial ~jobs:2);
    fault_case "fault: truncated read rejected" Fault.io_truncated_read_rejected;
    fault_case "fault: truncated header rejected"
      Fault.io_truncated_header_rejected;
    fault_case "fault: FIMI truncation is silent"
      Fault.io_fimi_truncation_is_silent;
    Alcotest.test_case "selftest is clean" `Quick test_selftest_clean;
  ]
