(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ (Blackman & Vigna), seeded through
    SplitMix64 so that any 64-bit seed yields a well-mixed state.  Every
    randomized component of the library takes an explicit [t], which makes
    all experiments reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 64-bit seed.  The default
    seed is a fixed constant, so two programs that never pass [~seed]
    observe identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from the current state
    of [t]; advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are decorrelated (the child is re-seeded through SplitMix64
    from fresh output of the parent). *)

val derive : t -> index:int -> t
(** [derive t ~index] is a child generator determined entirely by the
    current state of [t] and [index]; [t] is {e not} advanced.  Children
    at distinct indices are decorrelated (SplitMix64 mixing), and the
    same (state, index) pair always yields the same child.  This is the
    deterministic fan-out primitive of the parallel runtime: chunk [i] of
    a sharded computation uses [derive rng ~index:i], so output is
    independent of domain scheduling and job count.
    @raise Invalid_argument if [index] is negative. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive.
    Uses rejection sampling, so the result is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float
(** Uniform on [0, 1) with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)
