type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let default_seed = 0x1E3779B97F4A7C15

(* SplitMix64: used only to expand a seed into the xoshiro state, and to
   derive split children.  Its guarantee of distinct, well-mixed outputs for
   distinct inputs is what makes [split] streams decorrelated. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let create ?(seed = default_seed) () = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let seed = splitmix64_next state in
  of_seed64 seed

let derive t ~index =
  if index < 0 then invalid_arg "Rng.derive: index must be non-negative";
  (* Hash the state snapshot together with the index through SplitMix64,
     leaving [t] untouched: the same (state, index) pair always yields the
     same child, and distinct indices yield decorrelated children.  This
     is the fan-out primitive of the parallel runtime — every chunk of a
     sharded computation derives its own stream by chunk index, so results
     do not depend on how chunks are scheduled across domains. *)
  let state = ref t.s0 in
  let mix x = state := Int64.logxor x (splitmix64_next state) in
  mix t.s1;
  mix t.s2;
  mix t.s3;
  mix (Int64.of_int index);
  of_seed64 (splitmix64_next state)

(* Non-negative 62-bit integer, convenient for OCaml's int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over 62-bit outputs: exact uniformity. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (((max62 mod bound) + 1) mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v <= limit then v mod bound else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits of a 64-bit draw, scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L
