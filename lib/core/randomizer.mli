(** Randomization operators over transactions.

    Every operator in this module is a *per-size select-a-size* operator
    (the normal form of the paper): on a transaction [t] of size [m] it

    + draws [j] from a size-[m] keep distribution [p_0 .. p_m],
    + keeps a uniformly random [j]-subset of [t], and
    + inserts every universe item outside [t] independently with
      probability [rho].

    Uniform (per-item) randomization and cut-and-paste randomization are
    both expressible as induced keep distributions, so the whole privacy
    and recovery analysis (amplification, transition matrices) applies to
    them through one code path. *)

open Ppdm_prng
open Ppdm_data

type t
(** A randomization scheme: a family of select-a-size operators indexed by
    transaction size, over a fixed universe. *)

type resolved = { keep_dist : float array; rho : float }
(** The concrete operator for one transaction size [m]:
    [Array.length keep_dist = m + 1], entries non-negative and summing
    to 1; [0 <= rho <= 1]. *)

val uniform : universe:int -> p_keep:float -> p_add:float -> t
(** Warner-style independent randomization: each item of [t] is kept with
    probability [p_keep]; each item outside [t] is added with probability
    [p_add].  Its induced keep distribution is Binomial(m, p_keep). *)

val select_a_size :
  universe:int -> size:int -> keep_dist:float array -> rho:float -> t
(** The operator of the paper for one fixed transaction size.  Applying it
    to a transaction of any other size (except the trivial empty one)
    raises [Invalid_argument].
    @raise Invalid_argument if [keep_dist] has the wrong length, has a
    negative entry, does not sum to 1 (tolerance 1e-9), or [rho] is
    outside [0,1]. *)

val cut_and_paste : universe:int -> cutoff:int -> rho:float -> t
(** Cut-and-paste randomization C&P(K, rho) of the companion KDD 2002
    paper: [j = min(uniform{0..K}, m)].  Induced keep distribution:
    [p_j = 1/(K+1)] for [j < min(K, m)], with the clipped tail mass on
    [j = m] when [m <= K]. *)

val per_size : universe:int -> name:string -> (int -> resolved) -> t
(** General per-size family; [f m] must return a valid resolved operator
    for every size that occurs in the data (validated on first use). *)

val universe : t -> int
val name : t -> string

val same_parameters : t -> t -> sizes:int list -> bool
(** Structural equality of operator parameters: same universe and, for
    every listed size, identical keep distribution and rho.  A size one
    scheme does not cover compares unequal (no exception).  Names are
    ignored — schemes built by different constructors with the same
    parameters are the same operator (cf. a scheme round-tripped through
    [Scheme_io]).  [Stream] uses this to refuse merging accumulators
    built under different randomization schemes. *)

val warm_cache : t -> sizes:int list -> unit
(** Resolve and cache the operator for every listed size (validating each).
    A scheme is a lazily-populated per-size cache, which is mutated on
    first use of each size; warming every size that occurs in the data
    beforehand makes subsequent {!apply} calls read-only, and therefore
    safe to run concurrently from multiple domains on the same scheme.
    The parallel runtime calls this before sharding a database. *)

val resolve : t -> size:int -> resolved
(** The concrete operator used for the given transaction size (a defensive
    copy).  @raise Invalid_argument if the scheme does not cover the
    size. *)

val expected_kept_fraction : t -> size:int -> float
(** [Σ_j p_j · j / m]: the utility proxy maximized by the optimizer
    (1.0 for the empty-transaction size). *)

val apply : t -> Rng.t -> Itemset.t -> Itemset.t
(** Randomize one transaction. *)

val apply_db : t -> Rng.t -> Db.t -> Db.t
(** Randomize a whole database. *)

val apply_db_tagged : t -> Rng.t -> Db.t -> (int * Itemset.t) array
(** Randomize a database keeping each output paired with the *original*
    transaction size.  The paper's server-side estimator needs the size
    (the operator parameters are public and size-indexed); disclosing
    [|t|] is part of the protocol. *)
