(** Serialization of randomization schemes.

    The protocol requires client and server to agree on the exact operator
    parameters (they are public).  A scheme is a function of transaction
    size, so it is serialized extensionally: the resolved operator for
    each size in an explicit list — typically the sizes occurring in the
    data — plus the universe.  Reading yields a scheme that serves exactly
    those sizes and rejects others.

    Format (text, line-oriented):
    {v
    ppdm-scheme 1
    universe <n>
    name <string>
    size <m> rho <float> keep <p_0> ... <p_m>
    ...
    v} *)

val write_channel : out_channel -> Randomizer.t -> sizes:int list -> unit
(** Serialize the operators the scheme uses at the given sizes
    (deduplicated; each size resolved once).
    @raise Invalid_argument if the scheme does not cover one of them. *)

val write_file : string -> Randomizer.t -> sizes:int list -> unit

val read_channel : in_channel -> Randomizer.t
(** @raise Failure on malformed input. *)

val read_file : string -> Randomizer.t

val to_string : Randomizer.t -> sizes:int list -> string
(** The serialized form as a string — the in-band representation the
    network handshake sends ({!Ppdm_server.Wire.Hello} carries one), byte
    identical to what {!write_channel} emits. *)

val of_string : string -> Randomizer.t
(** Parse a scheme from its serialized string form.  Same grammar and
    errors as {!read_channel}. *)

val sizes_of_db : Ppdm_data.Db.t -> int list
(** The distinct transaction sizes of a database, ascending — the size
    list to serialize a scheme against before randomizing that data. *)
