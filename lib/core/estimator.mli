(** Unbiased recovery of itemset supports from randomized data.

    For a [k]-itemset the server observes the randomized partial-support
    fractions [ŝ'] with [E ŝ' = P s]; the estimator returns [ŝ = P⁻¹ ŝ']
    together with its covariance [P⁻¹ Σ̂ P⁻ᵀ] (plug-in multinomial [Σ̂]).
    Databases with mixed transaction sizes are handled by partitioning by
    size — each size class has its own operator and transition matrix —
    and pooling the per-class estimates with their class weights.
    Transactions smaller than [k] (which can never contain the itemset but
    still produce observations) go through the rectangular least-squares
    variant. *)

open Ppdm_data
open Ppdm_linalg

type t = {
  support : float;  (** estimated support [ŝ_k] (may fall outside [0,1]) *)
  partials : float array;  (** full estimated partial-support vector *)
  sigma : float;  (** estimated standard deviation of [support] *)
  covariance : Mat.t;  (** covariance of [partials] *)
  n_transactions : int;  (** transactions actually counted (the sample) *)
  n_population : int;
      (** full database size the estimate refers to; equals
          [n_transactions] unless counting ran on a sample *)
}

val observed_partial_counts :
  (int * Itemset.t) array -> itemset:Itemset.t -> ((int * int array) list)
(** Group the tagged randomized data by original transaction size; for
    each size, the counts of [|y ∩ A| = l'] for [l' = 0..k]. *)

val estimate :
  scheme:Randomizer.t ->
  data:(int * Itemset.t) array ->
  itemset:Itemset.t ->
  t
(** Full pipeline on tagged randomized data (see
    {!Randomizer.apply_db_tagged}).
    @raise Invalid_argument on empty data. *)

val estimate_sampled :
  population:int ->
  scheme:Randomizer.t ->
  data:(int * Itemset.t) array ->
  itemset:Itemset.t ->
  t
(** {!estimate} for [data] that is a uniform without-replacement sample of
    a database of [population] transactions: the sampling variance is
    folded into [sigma] and [covariance], and [n_population] records the
    full size.
    @raise Invalid_argument on empty data or [population < length data]. *)

val estimate_from_counts :
  scheme:Randomizer.t -> k:int -> counts:(int * int array) list -> t
(** Estimation from pre-aggregated observations: for each original
    transaction size, the counts of [|y ∩ A| = l'] (length [k+1]).  This
    is the sufficient statistic — {!Stream} accumulates it online and
    {!estimate} is the one-shot wrapper.  All-zero size classes are
    skipped (they carry no observations).
    @raise Invalid_argument on empty counts or mis-sized vectors. *)

val estimate_from_counts_sampled :
  population:int ->
  scheme:Randomizer.t ->
  k:int ->
  counts:(int * int array) list ->
  t
(** {!estimate_from_counts} when the counts were taken over a uniform
    sample out of [population] transactions ({!estimate_sampled} from the
    sufficient statistic).
    @raise Invalid_argument additionally when [population] is smaller
    than the total count. *)

val sampling_covariance :
  partials:float array -> n:int -> population:int -> Mat.t
(** Covariance contributed by counting on a uniform without-replacement
    sample of [n] transactions out of [population]: the
    finite-population-corrected multinomial covariance
    [(population-n)/(population-1) · 1/n · (diag s − s sᵀ)] of the
    sample's true partial-support vector around the population's.  It
    composes additively with the randomization covariance (the two noise
    sources are independent).  [partials] are clamped to [0,1]; the
    result is zero when [population = n].
    @raise Invalid_argument if [n <= 0] or [population < n]. *)

val sampling_sigma : support:float -> n:int -> population:int -> float
(** [sqrt] of the support entry of {!sampling_covariance} for a 1-vector
    profile — the standalone sampling noise on one support estimate. *)

val predicted_sigma :
  ?population:int ->
  Randomizer.resolved ->
  k:int ->
  partials:float array ->
  n:int ->
  float
(** Theoretical standard deviation of the recovered support when the true
    partial-support vector is [partials] and [n] size-[m] transactions are
    observed — the paper's accuracy formula (used by F1/F2 and the
    optimizer).  Requires [k <= m].  With [?population] the sampling
    variance of an [n]-of-[population] uniform sample is added. *)

val confidence_interval : t -> level:float -> float * float
(** Normal-approximation confidence interval for the recovered support at
    the given two-sided level (e.g. 0.95), clamped to [0, 1].
    @raise Invalid_argument unless [0 < level < 1]. *)

val binomial_profile : k:int -> p_bg:float -> support:float -> float array
(** Canonical partial-support profile for analysis: items of the target
    itemset behave as background Bernoulli([p_bg]) except that the full
    itemset is forced to true support [support].  Used to evaluate
    {!predicted_sigma} at a hypothetical support level. *)

val lowest_discoverable_support :
  ?population:int -> Randomizer.resolved -> k:int -> n:int -> p_bg:float -> float
(** Smallest support [s] whose predicted σ is at most [s / 2] under the
    binomial profile: the paper's discoverability threshold.  Returns 1.0
    when even full support is not discoverable.  With [?population] the
    threshold accounts for sampled counting ([n] of [population] rows)
    and rises accordingly. *)
