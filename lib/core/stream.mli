(** Online support recovery over a stream of randomized transactions.

    The estimator's sufficient statistic is tiny — per original
    transaction size, the histogram of [|y ∩ A|] — so a server can track
    an itemset's support over an unbounded stream in O(k · #sizes) memory,
    and aggregators can {!merge} partial accumulators (the statistic is a
    sum).  Results are bit-identical to batch {!Estimator.estimate} over
    the same observations. *)

open Ppdm_data

type t
(** A mutable accumulator for one (scheme, itemset) pair. *)

val create : scheme:Randomizer.t -> itemset:Itemset.t -> t

val itemset : t -> Itemset.t

val observed : t -> int
(** Number of transactions absorbed so far. *)

val observe : t -> size:int -> Itemset.t -> unit
(** Absorb one randomized transaction tagged with its original size. *)

val observe_all : t -> (int * Itemset.t) array -> unit

val merge_into : t -> from:t -> unit
(** [merge_into acc ~from] adds [from]'s statistic to [acc] (for
    distributed aggregation).  [from] is unchanged.
    @raise Invalid_argument if the itemsets differ, or if the two
    accumulators' schemes disagree (universe or operator parameters at
    any observed size, per {!Randomizer.same_parameters}) — mixed-scheme
    counts would silently corrupt {!estimate}. *)

val merge : t list -> t
(** [merge ts] is a fresh accumulator holding the summed statistic of all
    of [ts], none of which is modified — the N-way fold of {!merge_into}
    used to combine per-shard accumulators (e.g. one per domain of the
    parallel runtime).  The statistic is a sum, so the result does not
    depend on the order of [ts].
    @raise Invalid_argument on the empty list or an itemset mismatch. *)

val estimate : t -> Estimator.t
(** Current estimate.  @raise Invalid_argument before any observation. *)
