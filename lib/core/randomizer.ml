open Ppdm_prng
open Ppdm_data
open Ppdm_linalg

type resolved = { keep_dist : float array; rho : float }

type t = {
  universe : int;
  name : string;
  produce : int -> resolved;
  (* Per-size cache of the validated operator and its alias sampler. *)
  cache : (int, resolved * Dist.discrete option) Hashtbl.t;
}

let validate_resolved ~size { keep_dist; rho } =
  if Array.length keep_dist <> size + 1 then
    invalid_arg "Randomizer: keep_dist length must be size + 1";
  Array.iter
    (fun p -> if p < 0. then invalid_arg "Randomizer: negative keep probability")
    keep_dist;
  let total = Array.fold_left ( +. ) 0. keep_dist in
  if Float.abs (total -. 1.) > 1e-9 then
    invalid_arg "Randomizer: keep_dist must sum to 1";
  if rho < 0. || rho > 1. then invalid_arg "Randomizer: rho out of [0,1]"

let make ~universe ~name produce =
  if universe <= 0 then invalid_arg "Randomizer: universe must be positive";
  { universe; name; produce; cache = Hashtbl.create 8 }

let resolved_cached t size =
  match Hashtbl.find_opt t.cache size with
  | Some entry ->
      Ppdm_obs.Metrics.incr "randomizer.cache.hit";
      entry
  | None ->
      Ppdm_obs.Metrics.incr "randomizer.cache.miss";
      let r = t.produce size in
      validate_resolved ~size r;
      (* The alias table is only needed when there is a real choice. *)
      let sampler = if size = 0 then None else Some (Dist.discrete r.keep_dist) in
      let entry = (r, sampler) in
      Hashtbl.replace t.cache size entry;
      entry

let universe t = t.universe
let name t = t.name

(* Structural equality of operator parameters at the given sizes.  Two
   schemes cannot be compared as values (an operator family is a
   closure), but at any concrete size the resolved parameters can; a
   scheme that does not cover a size compares unequal rather than
   raising.  Names are deliberately ignored: differently-built schemes
   with identical parameters are the same operator. *)
let same_parameters a b ~sizes =
  a.universe = b.universe
  && List.for_all
       (fun size ->
         match (resolved_cached a size, resolved_cached b size) with
         | (ra, _), (rb, _) ->
             ra.rho = rb.rho && ra.keep_dist = rb.keep_dist
         | exception Invalid_argument _ -> false)
       sizes

(* A span (hence a timeline slice): warming runs serially before the
   parallel apply batches, and whether it dominates startup is exactly
   the kind of question the trace exists to answer. *)
let warm_cache t ~sizes =
  Ppdm_obs.Span.with_ ~name:"randomizer.warm" (fun () ->
      List.iter (fun size -> ignore (resolved_cached t size)) sizes)

let resolve t ~size =
  let r, _ = resolved_cached t size in
  { keep_dist = Array.copy r.keep_dist; rho = r.rho }

let expected_kept_fraction t ~size =
  if size = 0 then 1.
  else begin
    let r, _ = resolved_cached t size in
    let acc = ref 0. in
    Array.iteri (fun j p -> acc := !acc +. (p *. float_of_int j)) r.keep_dist;
    !acc /. float_of_int size
  end

let uniform ~universe ~p_keep ~p_add =
  if p_keep < 0. || p_keep > 1. then
    invalid_arg "Randomizer.uniform: p_keep out of [0,1]";
  let name = Printf.sprintf "uniform(p_keep=%g,p_add=%g)" p_keep p_add in
  make ~universe ~name (fun m ->
      {
        keep_dist = Array.init (m + 1) (Binomial.binomial_pmf ~n:m ~p:p_keep);
        rho = p_add;
      })

let select_a_size ~universe ~size ~keep_dist ~rho =
  if size < 0 then invalid_arg "Randomizer.select_a_size: negative size";
  let fixed = { keep_dist = Array.copy keep_dist; rho } in
  validate_resolved ~size fixed;
  let name = Printf.sprintf "select-a-size(m=%d,rho=%g)" size rho in
  make ~universe ~name (fun m ->
      if m = size then fixed
      else if m = 0 then { keep_dist = [| 1. |]; rho }
      else
        invalid_arg
          (Printf.sprintf
             "Randomizer.select_a_size: operator is for size %d, got %d" size m))

let cut_and_paste ~universe ~cutoff ~rho =
  if cutoff < 0 then invalid_arg "Randomizer.cut_and_paste: negative cutoff";
  let name = Printf.sprintf "cut-and-paste(K=%d,rho=%g)" cutoff rho in
  make ~universe ~name (fun m ->
      let keep_dist = Array.make (m + 1) 0. in
      let base = 1. /. float_of_int (cutoff + 1) in
      (* j = min(uniform{0..K}, m): uniform mass below m, clipped tail on m. *)
      for j0 = 0 to cutoff do
        let j = min j0 m in
        keep_dist.(j) <- keep_dist.(j) +. base
      done;
      { keep_dist; rho })

let per_size ~universe ~name produce = make ~universe ~name produce

(* Map sorted complement ranks to items: the rank-r element of
   [universe \ tx] is [r + j] where [j] counts transaction items <= it.
   Both inputs are increasing, so a single forward pass suffices. *)
let unrank_complement tx ranks =
  let m = Array.length tx in
  let j = ref 0 in
  Array.map
    (fun r ->
      let item = ref (r + !j) in
      let stable = ref false in
      while not !stable do
        if !j < m && tx.(!j) <= !item then begin
          incr j;
          item := r + !j
        end
        else stable := true
      done;
      !item)
    ranks

let apply t rng tx =
  Ppdm_obs.Metrics.incr "randomizer.apply";
  let m = Itemset.cardinal tx in
  let r, sampler = resolved_cached t m in
  if m > t.universe then invalid_arg "Randomizer.apply: transaction too large";
  let j =
    match sampler with None -> 0 | Some s -> Dist.discrete_sample rng s
  in
  let items = Itemset.to_array tx in
  let kept = Dist.subset rng ~k:j items in
  let noise_count = Dist.binomial rng ~n:(t.universe - m) ~p:r.rho in
  let ranks = Dist.sample_distinct rng ~k:noise_count ~bound:(t.universe - m) in
  let noise = unrank_complement items ranks in
  Itemset.union
    (Itemset.of_sorted_array_unchecked kept)
    (Itemset.of_sorted_array_unchecked noise)

let apply_db t rng db =
  if Db.universe db <> t.universe then
    invalid_arg "Randomizer.apply_db: universe mismatch";
  Ppdm_obs.Span.with_ ~name:"randomizer.apply_db" (fun () ->
      Db.map (apply t rng) db)

let apply_db_tagged t rng db =
  if Db.universe db <> t.universe then
    invalid_arg "Randomizer.apply_db_tagged: universe mismatch";
  Ppdm_obs.Span.with_ ~name:"randomizer.apply_db" (fun () ->
      Array.map
        (fun tx -> (Itemset.cardinal tx, apply t rng tx))
        (Db.transactions db))
