open Ppdm_data
open Ppdm_linalg

type t = {
  support : float;
  partials : float array;
  sigma : float;
  covariance : Mat.t;
  n_transactions : int;
  n_population : int;
}

let observed_partial_counts data ~itemset =
  let k = Itemset.cardinal itemset in
  let by_size = Hashtbl.create 8 in
  Array.iter
    (fun (size, y) ->
      let counts =
        match Hashtbl.find_opt by_size size with
        | Some c -> c
        | None ->
            let c = Array.make (k + 1) 0 in
            Hashtbl.replace by_size size c;
            c
      in
      let l' = Itemset.inter_size itemset y in
      counts.(l') <- counts.(l') + 1)
    data;
  (* Sort on the size key alone: polymorphic compare would descend into
     the histogram arrays (sizes are unique, so the key determines the
     order) — same hazard Stream.estimate already avoids. *)
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun size c acc -> (size, c) :: acc) by_size [])

(* Conditional covariance of the observed fraction vector given the true
   database: the randomization is the only noise source (the paper
   conditions on the data), so
   Cov(s') = (1/N) Σ_l s_l (diag(p_l) - p_l p_lᵀ)
   with p_l the l-th column of the transition matrix.  Negative estimated
   partials are clamped; an exact operator (identity) yields zero. *)
let conditional_cov p partials n =
  let rows = Mat.rows p and cols = Mat.cols p in
  let cov = Mat.create ~rows ~cols:rows in
  for l = 0 to cols - 1 do
    let w = Float.max 0. partials.(l) /. float_of_int n in
    if w > 0. then begin
      let col = Mat.col p l in
      for i = 0 to rows - 1 do
        for j = 0 to rows - 1 do
          let v = if i = j then col.(i) *. (1. -. col.(i)) else -.(col.(i) *. col.(j)) in
          Mat.set cov i j (Mat.get cov i j +. (w *. v))
        done
      done
    end
  done;
  cov

(* One size class: solve for the class-conditional partial supports and
   their covariance.  Square case inverts P; the rectangular case (m < k)
   solves the normal equations and conjugates by the pseudo-inverse. *)
let estimate_class (resolved : Randomizer.resolved) ~k counts =
  Ppdm_obs.Metrics.incr "estimator.solves";
  Ppdm_obs.Metrics.time "estimator.solve_ns" @@ fun () ->
  let m = Array.length resolved.keep_dist - 1 in
  let n = Array.fold_left ( + ) 0 counts in
  (* n = 0 would divide the observed fractions by zero and propagate NaN
     through partials, covariance, and sigma. *)
  if n = 0 then invalid_arg "Estimator.estimate_class: empty size class";
  let observed =
    Array.map (fun c -> float_of_int c /. float_of_int n) counts
  in
  let cols = min k m + 1 in
  let p = Transition.rect_matrix resolved ~k in
  let pinv =
    if cols = k + 1 then Lu.inverse (Lu.decompose p)
    else begin
      let pt = Mat.transpose p in
      let gram = Mat.mul pt p in
      Lu.solve_mat (Lu.decompose gram) pt
    end
  in
  let short = Mat.mul_vec pinv observed in
  let cov_obs = conditional_cov p short n in
  let cov_short = Mat.mul pinv (Mat.mul cov_obs (Mat.transpose pinv)) in
  (* Pad with structural zeros: s_l = 0 exactly for l > m. *)
  let partials = Array.make (k + 1) 0. in
  Array.blit short 0 partials 0 cols;
  let covariance =
    Mat.init ~rows:(k + 1) ~cols:(k + 1) (fun i j ->
        if i < cols && j < cols then Mat.get cov_short i j else 0.)
  in
  (partials, covariance, n)

(* Covariance contributed by counting on a uniform sample of [n]
   transactions drawn without replacement from a population of
   [population]: the sample's true partial-support vector fluctuates
   around the population's with (finite-population-corrected) multinomial
   covariance, and that noise passes into the recovered partials
   unattenuated (it perturbs the target itself, not the observation
   channel).  Plug-in [partials] are clamped to [0, 1]; a full count
   ([population = n]) contributes exactly zero. *)
let sampling_covariance ~partials ~n ~population =
  if n <= 0 then invalid_arg "Estimator.sampling_covariance: n must be positive";
  if population < n then
    invalid_arg "Estimator.sampling_covariance: population smaller than sample";
  let dim = Array.length partials in
  let cov = Mat.create ~rows:dim ~cols:dim in
  if population > n then begin
    let s = Array.map (fun v -> Float.max 0. (Float.min 1. v)) partials in
    let fpc =
      float_of_int (population - n) /. float_of_int (population - 1)
    in
    let w = fpc /. float_of_int n in
    for i = 0 to dim - 1 do
      for j = 0 to dim - 1 do
        let v = if i = j then s.(i) *. (1. -. s.(i)) else -.(s.(i) *. s.(j)) in
        Mat.set cov i j (w *. v)
      done
    done
  end;
  cov

let sampling_sigma ~support ~n ~population =
  sqrt
    (Float.max 0.
       (Mat.get (sampling_covariance ~partials:[| support |] ~n ~population) 0 0))

let estimate_from_counts_gen ~population ~scheme ~k ~counts:groups =
  Ppdm_obs.Span.with_ ~name:"estimator.estimate" @@ fun () ->
  let total =
    List.fold_left
      (fun acc (_, c) -> acc + Array.fold_left ( + ) 0 c)
      0 groups
  in
  if total = 0 then invalid_arg "Estimator.estimate_from_counts: empty counts";
  List.iter
    (fun (_, c) ->
      if Array.length c <> k + 1 then
        invalid_arg "Estimator.estimate_from_counts: count vector length")
    groups;
  let population = Option.value population ~default:total in
  if population < total then
    invalid_arg "Estimator.estimate_from_counts: population smaller than sample";
  (* An all-zero size class carries no observations; estimate_class would
     divide by n = 0 and poison everything downstream with NaN. *)
  let groups = List.filter (fun (_, c) -> Array.exists (( <> ) 0) c) groups in
  let partials = Array.make (k + 1) 0. in
  let covariance = Mat.create ~rows:(k + 1) ~cols:(k + 1) in
  List.iter
    (fun (size, counts) ->
      let resolved = Randomizer.resolve scheme ~size in
      let class_partials, class_cov, n = estimate_class resolved ~k counts in
      let w = float_of_int n /. float_of_int total in
      for l = 0 to k do
        partials.(l) <- partials.(l) +. (w *. class_partials.(l));
        for l2 = 0 to k do
          Mat.set covariance l l2
            (Mat.get covariance l l2 +. (w *. w *. Mat.get class_cov l l2))
        done
      done)
    groups;
  (* Counting on a sample composes a second, independent noise source:
     randomization noise (above, conditional on the sampled rows) plus
     the sampling fluctuation of the rows themselves. *)
  if population > total then begin
    let extra = sampling_covariance ~partials ~n:total ~population in
    for l = 0 to k do
      for l2 = 0 to k do
        Mat.set covariance l l2 (Mat.get covariance l l2 +. Mat.get extra l l2)
      done
    done
  end;
  {
    support = partials.(k);
    partials;
    sigma = sqrt (Float.max 0. (Mat.get covariance k k));
    covariance;
    n_transactions = total;
    n_population = population;
  }

let estimate_from_counts ~scheme ~k ~counts =
  estimate_from_counts_gen ~population:None ~scheme ~k ~counts

let estimate_from_counts_sampled ~population ~scheme ~k ~counts =
  estimate_from_counts_gen ~population:(Some population) ~scheme ~k ~counts

let estimate_gen ~population ~scheme ~data ~itemset =
  if Array.length data = 0 then invalid_arg "Estimator.estimate: empty data";
  let k = Itemset.cardinal itemset in
  let counts = observed_partial_counts data ~itemset in
  estimate_from_counts_gen ~population ~scheme ~k ~counts

let estimate ~scheme ~data ~itemset =
  estimate_gen ~population:None ~scheme ~data ~itemset

let estimate_sampled ~population ~scheme ~data ~itemset =
  estimate_gen ~population:(Some population) ~scheme ~data ~itemset

let predicted_sigma ?population (resolved : Randomizer.resolved) ~k ~partials
    ~n =
  let m = Array.length resolved.keep_dist - 1 in
  if k > m then invalid_arg "Estimator.predicted_sigma: k exceeds size";
  if Array.length partials <> k + 1 then
    invalid_arg "Estimator.predicted_sigma: partials must have length k+1";
  if n <= 0 then invalid_arg "Estimator.predicted_sigma: n must be positive";
  let population = Option.value population ~default:n in
  if population < n then
    invalid_arg "Estimator.predicted_sigma: population smaller than sample";
  let p = Transition.matrix resolved ~k in
  let cov_obs = conditional_cov p partials n in
  let pinv = Lu.inverse (Lu.decompose p) in
  let cov = Mat.mul pinv (Mat.mul cov_obs (Mat.transpose pinv)) in
  let sampling =
    if population > n then
      Mat.get (sampling_covariance ~partials ~n ~population) k k
    else 0.
  in
  sqrt (Float.max 0. (Mat.get cov k k +. sampling))

let confidence_interval t ~level =
  if not (level > 0. && level < 1.) then
    invalid_arg "Estimator.confidence_interval: level must be in (0,1)";
  let z = Stats.normal_quantile (0.5 +. (level /. 2.)) in
  let clamp x = Float.max 0. (Float.min 1. x) in
  (clamp (t.support -. (z *. t.sigma)), clamp (t.support +. (z *. t.sigma)))

let binomial_profile ~k ~p_bg ~support =
  if support < 0. || support > 1. then
    invalid_arg "Estimator.binomial_profile: support out of [0,1]";
  if p_bg < 0. || p_bg > 1. then
    invalid_arg "Estimator.binomial_profile: p_bg out of [0,1]";
  let raw = Array.init (k + 1) (Binomial.binomial_pmf ~n:k ~p:p_bg) in
  let below = Array.fold_left ( +. ) 0. (Array.sub raw 0 k) in
  let profile = Array.make (k + 1) 0. in
  if below > 0. then
    for l = 0 to k - 1 do
      profile.(l) <- raw.(l) *. (1. -. support) /. below
    done
  else profile.(0) <- 1. -. support;
  profile.(k) <- support;
  profile

let lowest_discoverable_support ?population resolved ~k ~n ~p_bg =
  let sigma_at s =
    predicted_sigma ?population resolved ~k
      ~partials:(binomial_profile ~k ~p_bg ~support:s)
      ~n
  in
  (* σ(s) is continuous and nearly flat while s/2 grows linearly, so the
     sign of g(s) = σ(s) - s/2 changes at most once; bisection applies. *)
  let g s = sigma_at s -. (s /. 2.) in
  if g 1. > 0. then 1.
  else begin
    let lo = ref 1e-9 and hi = ref 1. in
    if g !lo <= 0. then !lo
    else begin
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if g mid > 0. then lo := mid else hi := mid
      done;
      !hi
    end
  end
