open Ppdm_data
open Ppdm_linalg

type t = {
  support : float;
  partials : float array;
  sigma : float;
  covariance : Mat.t;
  n_transactions : int;
}

let observed_partial_counts data ~itemset =
  let k = Itemset.cardinal itemset in
  let by_size = Hashtbl.create 8 in
  Array.iter
    (fun (size, y) ->
      let counts =
        match Hashtbl.find_opt by_size size with
        | Some c -> c
        | None ->
            let c = Array.make (k + 1) 0 in
            Hashtbl.replace by_size size c;
            c
      in
      let l' = Itemset.inter_size itemset y in
      counts.(l') <- counts.(l') + 1)
    data;
  List.sort compare (Hashtbl.fold (fun size c acc -> (size, c) :: acc) by_size [])

(* Conditional covariance of the observed fraction vector given the true
   database: the randomization is the only noise source (the paper
   conditions on the data), so
   Cov(s') = (1/N) Σ_l s_l (diag(p_l) - p_l p_lᵀ)
   with p_l the l-th column of the transition matrix.  Negative estimated
   partials are clamped; an exact operator (identity) yields zero. *)
let conditional_cov p partials n =
  let rows = Mat.rows p and cols = Mat.cols p in
  let cov = Mat.create ~rows ~cols:rows in
  for l = 0 to cols - 1 do
    let w = Float.max 0. partials.(l) /. float_of_int n in
    if w > 0. then begin
      let col = Mat.col p l in
      for i = 0 to rows - 1 do
        for j = 0 to rows - 1 do
          let v = if i = j then col.(i) *. (1. -. col.(i)) else -.(col.(i) *. col.(j)) in
          Mat.set cov i j (Mat.get cov i j +. (w *. v))
        done
      done
    end
  done;
  cov

(* One size class: solve for the class-conditional partial supports and
   their covariance.  Square case inverts P; the rectangular case (m < k)
   solves the normal equations and conjugates by the pseudo-inverse. *)
let estimate_class (resolved : Randomizer.resolved) ~k counts =
  Ppdm_obs.Metrics.incr "estimator.solves";
  Ppdm_obs.Metrics.time "estimator.solve_ns" @@ fun () ->
  let m = Array.length resolved.keep_dist - 1 in
  let n = Array.fold_left ( + ) 0 counts in
  let observed =
    Array.map (fun c -> float_of_int c /. float_of_int n) counts
  in
  let cols = min k m + 1 in
  let p = Transition.rect_matrix resolved ~k in
  let pinv =
    if cols = k + 1 then Lu.inverse (Lu.decompose p)
    else begin
      let pt = Mat.transpose p in
      let gram = Mat.mul pt p in
      Lu.solve_mat (Lu.decompose gram) pt
    end
  in
  let short = Mat.mul_vec pinv observed in
  let cov_obs = conditional_cov p short n in
  let cov_short = Mat.mul pinv (Mat.mul cov_obs (Mat.transpose pinv)) in
  (* Pad with structural zeros: s_l = 0 exactly for l > m. *)
  let partials = Array.make (k + 1) 0. in
  Array.blit short 0 partials 0 cols;
  let covariance =
    Mat.init ~rows:(k + 1) ~cols:(k + 1) (fun i j ->
        if i < cols && j < cols then Mat.get cov_short i j else 0.)
  in
  (partials, covariance, n)

let estimate_from_counts ~scheme ~k ~counts:groups =
  Ppdm_obs.Span.with_ ~name:"estimator.estimate" @@ fun () ->
  let total =
    List.fold_left
      (fun acc (_, c) -> acc + Array.fold_left ( + ) 0 c)
      0 groups
  in
  if total = 0 then invalid_arg "Estimator.estimate_from_counts: empty counts";
  List.iter
    (fun (_, c) ->
      if Array.length c <> k + 1 then
        invalid_arg "Estimator.estimate_from_counts: count vector length")
    groups;
  let partials = Array.make (k + 1) 0. in
  let covariance = Mat.create ~rows:(k + 1) ~cols:(k + 1) in
  List.iter
    (fun (size, counts) ->
      let resolved = Randomizer.resolve scheme ~size in
      let class_partials, class_cov, n = estimate_class resolved ~k counts in
      let w = float_of_int n /. float_of_int total in
      for l = 0 to k do
        partials.(l) <- partials.(l) +. (w *. class_partials.(l));
        for l2 = 0 to k do
          Mat.set covariance l l2
            (Mat.get covariance l l2 +. (w *. w *. Mat.get class_cov l l2))
        done
      done)
    groups;
  {
    support = partials.(k);
    partials;
    sigma = sqrt (Float.max 0. (Mat.get covariance k k));
    covariance;
    n_transactions = total;
  }

let estimate ~scheme ~data ~itemset =
  if Array.length data = 0 then invalid_arg "Estimator.estimate: empty data";
  let k = Itemset.cardinal itemset in
  let counts = observed_partial_counts data ~itemset in
  estimate_from_counts ~scheme ~k ~counts

let predicted_sigma (resolved : Randomizer.resolved) ~k ~partials ~n =
  let m = Array.length resolved.keep_dist - 1 in
  if k > m then invalid_arg "Estimator.predicted_sigma: k exceeds size";
  if Array.length partials <> k + 1 then
    invalid_arg "Estimator.predicted_sigma: partials must have length k+1";
  if n <= 0 then invalid_arg "Estimator.predicted_sigma: n must be positive";
  let p = Transition.matrix resolved ~k in
  let cov_obs = conditional_cov p partials n in
  let pinv = Lu.inverse (Lu.decompose p) in
  let cov = Mat.mul pinv (Mat.mul cov_obs (Mat.transpose pinv)) in
  sqrt (Float.max 0. (Mat.get cov k k))

let confidence_interval t ~level =
  if not (level > 0. && level < 1.) then
    invalid_arg "Estimator.confidence_interval: level must be in (0,1)";
  let z = Stats.normal_quantile (0.5 +. (level /. 2.)) in
  let clamp x = Float.max 0. (Float.min 1. x) in
  (clamp (t.support -. (z *. t.sigma)), clamp (t.support +. (z *. t.sigma)))

let binomial_profile ~k ~p_bg ~support =
  if support < 0. || support > 1. then
    invalid_arg "Estimator.binomial_profile: support out of [0,1]";
  if p_bg < 0. || p_bg > 1. then
    invalid_arg "Estimator.binomial_profile: p_bg out of [0,1]";
  let raw = Array.init (k + 1) (Binomial.binomial_pmf ~n:k ~p:p_bg) in
  let below = Array.fold_left ( +. ) 0. (Array.sub raw 0 k) in
  let profile = Array.make (k + 1) 0. in
  if below > 0. then
    for l = 0 to k - 1 do
      profile.(l) <- raw.(l) *. (1. -. support) /. below
    done
  else profile.(0) <- 1. -. support;
  profile.(k) <- support;
  profile

let lowest_discoverable_support resolved ~k ~n ~p_bg =
  let sigma_at s =
    predicted_sigma resolved ~k ~partials:(binomial_profile ~k ~p_bg ~support:s)
      ~n
  in
  (* σ(s) is continuous and nearly flat while s/2 grows linearly, so the
     sign of g(s) = σ(s) - s/2 changes at most once; bisection applies. *)
  let g s = sigma_at s -. (s /. 2.) in
  if g 1. > 0. then 1.
  else begin
    let lo = ref 1e-9 and hi = ref 1. in
    if g !lo <= 0. then !lo
    else begin
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if g mid > 0. then lo := mid else hi := mid
      done;
      !hi
    end
  end
