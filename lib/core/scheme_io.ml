let write_lines ~out scheme ~sizes =
  let sizes = List.sort_uniq compare sizes in
  out (Printf.sprintf "ppdm-scheme 1\n");
  out (Printf.sprintf "universe %d\n" (Randomizer.universe scheme));
  out (Printf.sprintf "name %s\n" (Randomizer.name scheme));
  List.iter
    (fun size ->
      let r = Randomizer.resolve scheme ~size in
      let buf = Buffer.create 64 in
      Buffer.add_string buf (Printf.sprintf "size %d rho %.17g keep" size r.Randomizer.rho);
      Array.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf " %.17g" p))
        r.Randomizer.keep_dist;
      Buffer.add_char buf '\n';
      out (Buffer.contents buf))
    sizes

let write_channel oc scheme ~sizes =
  write_lines ~out:(output_string oc) scheme ~sizes

let to_string scheme ~sizes =
  let buf = Buffer.create 256 in
  write_lines ~out:(Buffer.add_string buf) scheme ~sizes;
  Buffer.contents buf

let write_file path scheme ~sizes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc scheme ~sizes)

let fail fmt = Printf.ksprintf failwith fmt

(* The parser is written against a line source so the channel reader and
   the string reader (the wire handshake carries a scheme in-band) share
   one code path. *)
let read_lines line =
  (match line () with
  | Some "ppdm-scheme 1" -> ()
  | _ -> fail "Scheme_io.read: bad magic");
  let universe =
    match line () with
    | Some l -> (
        match String.split_on_char ' ' l with
        | [ "universe"; n ] -> (
            match int_of_string_opt n with
            | Some n when n > 0 -> n
            | _ -> fail "Scheme_io.read: bad universe")
        | _ -> fail "Scheme_io.read: expected universe line")
    | None -> fail "Scheme_io.read: truncated"
  in
  let name =
    match line () with
    | Some l when String.length l >= 5 && String.sub l 0 5 = "name " ->
        String.sub l 5 (String.length l - 5)
    | _ -> fail "Scheme_io.read: expected name line"
  in
  let table = Hashtbl.create 8 in
  let rec read_sizes () =
    match line () with
    | None -> ()
    | Some l -> (
        match String.split_on_char ' ' (String.trim l) with
        | "size" :: m :: "rho" :: rho :: "keep" :: probs -> (
            match
              ( int_of_string_opt m,
                float_of_string_opt rho,
                List.map float_of_string_opt probs )
            with
            | Some m, Some rho, probs when List.for_all Option.is_some probs ->
                let keep_dist =
                  Array.of_list (List.map Option.get probs)
                in
                if Array.length keep_dist <> m + 1 then
                  fail "Scheme_io.read: keep_dist length mismatch at size %d" m;
                Hashtbl.replace table m { Randomizer.keep_dist; rho };
                read_sizes ()
            | _ -> fail "Scheme_io.read: malformed size line")
        | [ "" ] -> read_sizes ()
        | _ -> fail "Scheme_io.read: malformed line %S" l)
  in
  read_sizes ();
  if Hashtbl.length table = 0 then fail "Scheme_io.read: no operators";
  Randomizer.per_size ~universe ~name (fun size ->
      match Hashtbl.find_opt table size with
      | Some r -> { r with Randomizer.keep_dist = Array.copy r.Randomizer.keep_dist }
      | None ->
          invalid_arg
            (Printf.sprintf
               "Scheme_io: deserialized scheme has no operator for size %d" size))

let read_channel ic =
  read_lines (fun () -> try Some (input_line ic) with End_of_file -> None)

let of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  read_lines (fun () ->
      match !lines with
      | [] -> None
      | l :: rest ->
          lines := rest;
          Some l)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel ic)

let sizes_of_db db =
  List.map fst (Ppdm_data.Db.size_histogram db)
