open Ppdm_data

type t = {
  scheme : Randomizer.t;
  itemset : Itemset.t;
  k : int;
  by_size : (int, int array) Hashtbl.t;
  mutable observed : int;
}

let create ~scheme ~itemset =
  {
    scheme;
    itemset;
    k = Itemset.cardinal itemset;
    by_size = Hashtbl.create 8;
    observed = 0;
  }

let itemset t = t.itemset
let observed t = t.observed

let slot t size =
  match Hashtbl.find_opt t.by_size size with
  | Some counts -> counts
  | None ->
      let counts = Array.make (t.k + 1) 0 in
      Hashtbl.replace t.by_size size counts;
      counts

let observe t ~size y =
  Ppdm_obs.Metrics.incr "stream.observed";
  let counts = slot t size in
  let l' = Itemset.inter_size t.itemset y in
  counts.(l') <- counts.(l') + 1;
  t.observed <- t.observed + 1

let observe_all t data = Array.iter (fun (size, y) -> observe t ~size y) data

let merge_into t ~from =
  if not (Itemset.equal t.itemset from.itemset) then
    invalid_arg "Stream.merge_into: itemset mismatch";
  (* Accumulators built under different schemes must not merge: estimate
     inverts t's transition matrices, so foreign counts would silently
     produce wrong estimates.  Compare the operator parameters at every
     size either side has observed (parameters, not names — a scheme
     round-tripped through Scheme_io still matches). *)
  let sizes =
    let tbl = Hashtbl.create 8 in
    Hashtbl.iter (fun size _ -> Hashtbl.replace tbl size ()) t.by_size;
    Hashtbl.iter (fun size _ -> Hashtbl.replace tbl size ()) from.by_size;
    Hashtbl.fold (fun size () acc -> size :: acc) tbl []
  in
  if not (Randomizer.same_parameters t.scheme from.scheme ~sizes) then
    invalid_arg "Stream.merge_into: scheme mismatch";
  Hashtbl.iter
    (fun size counts ->
      let mine = slot t size in
      Array.iteri (fun l c -> mine.(l) <- mine.(l) + c) counts)
    from.by_size;
  t.observed <- t.observed + from.observed

let merge = function
  | [] -> invalid_arg "Stream.merge: empty list"
  | first :: rest ->
      Ppdm_obs.Span.with_ ~name:"stream.merge" (fun () ->
          let acc = create ~scheme:first.scheme ~itemset:first.itemset in
          merge_into acc ~from:first;
          List.iter (fun t -> merge_into acc ~from:t) rest;
          acc)

let estimate t =
  if t.observed = 0 then invalid_arg "Stream.estimate: no observations yet";
  Ppdm_obs.Span.with_ ~name:"stream.estimate" (fun () ->
      (* Sort on the size key explicitly: the histogram arrays ride along
         and must not participate in the order (sizes are unique, so the
         key alone determines it). *)
      let counts =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold
             (fun size c acc -> (size, Array.copy c) :: acc)
             t.by_size [])
      in
      Estimator.estimate_from_counts ~scheme:t.scheme ~k:t.k ~counts)
