open Ppdm_data

(* Tid-sets are the adaptive dense/sparse hybrids of the vertical
   engine: dense atoms intersect by word-wide AND, a sparse operand
   against a dense one probes bit by bit, two sparse ones merge.  Counts
   come back with every intersection, so patterns never recount. *)

type atoms = {
  threshold : int;
  items : (int * Vertical.tidset * int) array;
      (* frequent (item, tid-set, count), in item order *)
}

let atoms db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Eclat.atoms: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"eclat.atoms" @@ fun () ->
  let threshold = Threshold.absolute ~n:(Db.length db) ~min_support in
  let vt = Vertical.of_db db in
  let items =
    List.filter_map Fun.id
      (List.init (Db.universe db) (fun item ->
           let count = Vertical.item_count vt item in
           if count >= threshold then
             Some (item, Vertical.item_tidset vt item, count)
           else None))
  in
  let items = Array.of_list items in
  if Ppdm_obs.Metrics.enabled () then begin
    Ppdm_obs.Metrics.gauge "eclat.atoms" (float_of_int (Array.length items));
    let dense =
      Array.fold_left
        (fun acc (_, ts, _) -> if Vertical.tidset_is_dense ts then acc + 1 else acc)
        0 items
    in
    Ppdm_obs.Metrics.add "eclat.atoms.dense" dense;
    Ppdm_obs.Metrics.add "eclat.atoms.sparse" (Array.length items - dense)
  end;
  { threshold; items }

let atom_count t = Array.length t.items

(* DFS over prefix classes: [atoms] holds (item, tid-set, count) triples
   usable to extend the current prefix, all items greater than the
   prefix's last item. *)
let rec dfs t cap results prefix depth atoms =
  List.iteri
    (fun idx (item, tids, count) ->
      let pattern = item :: prefix in
      Ppdm_obs.Metrics.incr "eclat.patterns";
      results := (Itemset.of_list pattern, count) :: !results;
      if depth < cap then begin
        let extensions =
          List.filteri (fun j _ -> j > idx) atoms
          |> List.filter_map (fun (other, other_tids, _) ->
                 let joint, joint_count =
                   Vertical.inter_tidsets tids other_tids
                 in
                 if joint_count >= t.threshold then
                   Some (other, joint, joint_count)
                 else None)
        in
        if extensions <> [] then dfs t cap results pattern (depth + 1) extensions
      end)
    atoms

let mine_atoms ?max_size t ~lo ~hi =
  if lo < 0 || hi > Array.length t.items || lo > hi then
    invalid_arg "Eclat.mine_atoms: bad atom range";
  let cap = Option.value max_size ~default:max_int in
  if cap < 1 then []
  else begin
    (* A span per atom range: the parallel driver calls this once per
       shard, so each prefix-class batch is a slice on its worker's
       timeline lane. *)
    Ppdm_obs.Span.with_ ~name:"eclat.extend" @@ fun () ->
    let results = ref [] in
    (* Each root atom owns its prefix class; extensions come from every
       atom after it, so classes rooted in disjoint ranges partition the
       output (the basis of the parallel driver). *)
    for i = lo to hi - 1 do
      let item, tids, count = t.items.(i) in
      Ppdm_obs.Metrics.incr "eclat.patterns";
      results := (Itemset.singleton item, count) :: !results;
      if cap > 1 then begin
        let extensions = ref [] in
        for j = Array.length t.items - 1 downto i + 1 do
          let other, other_tids, _ = t.items.(j) in
          let joint, joint_count = Vertical.inter_tidsets tids other_tids in
          if joint_count >= t.threshold then
            extensions := (other, joint, joint_count) :: !extensions
        done;
        (* The frontier of each prefix class: how evenly the DFS work is
           cut, which is what the parallel driver load-balances over. *)
        if Ppdm_obs.Metrics.enabled () then
          Ppdm_obs.Metrics.observe "eclat.prefix_class.extensions"
            (List.length !extensions);
        if !extensions <> [] then dfs t cap results [ item ] 2 !extensions
      end
    done;
    !results
  end

let mine ?max_size db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Eclat.mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"eclat.mine" (fun () ->
      let t = atoms db ~min_support in
      let results = mine_atoms ?max_size t ~lo:0 ~hi:(atom_count t) in
      List.sort (fun (a, _) (b, _) -> Itemset.compare a b) results)
