open Ppdm_data

(* Intersection of two sorted tid arrays. *)
let inter_tids a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (min la lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    if a.(!i) = b.(!j) then begin
      buf.(!k) <- a.(!i);
      incr k;
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  Array.sub buf 0 !k

type atoms = {
  threshold : int;
  items : (int * int array) array;
  (* frequent items with ascending tid-sets, in item order *)
}

let atoms db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Eclat.atoms: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"eclat.atoms" @@ fun () ->
  let threshold = Threshold.absolute ~n:(Db.length db) ~min_support in
  (* Build tid-sets for frequent items (tids are ascending by construction
     of the scan). *)
  let buckets = Array.make (Db.universe db) [] in
  Db.iteri
    (fun tid tx -> Itemset.iter (fun item -> buckets.(item) <- tid :: buckets.(item)) tx)
    db;
  let items =
    List.filter_map Fun.id
      (List.init (Db.universe db) (fun item ->
           let tids = buckets.(item) in
           if List.length tids >= threshold then
             Some (item, Array.of_list (List.rev tids))
           else None))
  in
  let items = Array.of_list items in
  Ppdm_obs.Metrics.gauge "eclat.atoms" (float_of_int (Array.length items));
  { threshold; items }

let atom_count t = Array.length t.items

(* DFS over prefix classes: [atoms] holds (item, tidset) pairs usable to
   extend the current prefix, all items greater than the prefix's last
   item. *)
let rec dfs t cap results prefix depth atoms =
  List.iteri
    (fun idx (item, tids) ->
      let count = Array.length tids in
      let pattern = item :: prefix in
      Ppdm_obs.Metrics.incr "eclat.patterns";
      results := (Itemset.of_list pattern, count) :: !results;
      if depth < cap then begin
        let extensions =
          List.filteri (fun j _ -> j > idx) atoms
          |> List.filter_map (fun (other, other_tids) ->
                 let joint = inter_tids tids other_tids in
                 if Array.length joint >= t.threshold then Some (other, joint)
                 else None)
        in
        if extensions <> [] then dfs t cap results pattern (depth + 1) extensions
      end)
    atoms

let mine_atoms ?max_size t ~lo ~hi =
  if lo < 0 || hi > Array.length t.items || lo > hi then
    invalid_arg "Eclat.mine_atoms: bad atom range";
  let cap = Option.value max_size ~default:max_int in
  if cap < 1 then []
  else begin
    (* A span per atom range: the parallel driver calls this once per
       shard, so each prefix-class batch is a slice on its worker's
       timeline lane. *)
    Ppdm_obs.Span.with_ ~name:"eclat.extend" @@ fun () ->
    let results = ref [] in
    (* Each root atom owns its prefix class; extensions come from every
       atom after it, so classes rooted in disjoint ranges partition the
       output (the basis of the parallel driver). *)
    for i = lo to hi - 1 do
      let item, tids = t.items.(i) in
      Ppdm_obs.Metrics.incr "eclat.patterns";
      results := (Itemset.singleton item, Array.length tids) :: !results;
      if cap > 1 then begin
        let extensions = ref [] in
        for j = Array.length t.items - 1 downto i + 1 do
          let other, other_tids = t.items.(j) in
          let joint = inter_tids tids other_tids in
          if Array.length joint >= t.threshold then
            extensions := (other, joint) :: !extensions
        done;
        (* The frontier of each prefix class: how evenly the DFS work is
           cut, which is what the parallel driver load-balances over. *)
        if Ppdm_obs.Metrics.enabled () then
          Ppdm_obs.Metrics.observe "eclat.prefix_class.extensions"
            (List.length !extensions);
        if !extensions <> [] then dfs t cap results [ item ] 2 !extensions
      end
    done;
    !results
  end

let mine ?max_size db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Eclat.mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"eclat.mine" (fun () ->
      let t = atoms db ~min_support in
      let results = mine_atoms ?max_size t ~lo:0 ~hi:(atom_count t) in
      List.sort (fun (a, _) (b, _) -> Itemset.compare a b) results)
