open Ppdm_data

type node = {
  mutable count : int;
  mutable terminal : bool;
  children : (int, node) Hashtbl.t;
}

type t = { root : node; mutable candidates : int }

let make_node () = { count = 0; terminal = false; children = Hashtbl.create 4 }
let create () = { root = make_node (); candidates = 0 }

let add t itemset =
  if Itemset.is_empty itemset then invalid_arg "Count.add: empty candidate";
  let node = ref t.root in
  Itemset.iter
    (fun item ->
      match Hashtbl.find_opt !node.children item with
      | Some child -> node := child
      | None ->
          let child = make_node () in
          Hashtbl.replace !node.children item child;
          node := child)
    itemset;
  if not !node.terminal then begin
    !node.terminal <- true;
    t.candidates <- t.candidates + 1
  end

let candidate_count t = t.candidates

let count_transaction t tx =
  Ppdm_obs.Metrics.incr "count.transactions";
  (* read-only walk, so the defensive copy of [to_array] is pure waste *)
  let items = Itemset.unsafe_to_array tx in
  let len = Array.length items in
  let rec walk node start =
    for pos = start to len - 1 do
      match Hashtbl.find_opt node.children items.(pos) with
      | Some child ->
          if child.terminal then child.count <- child.count + 1;
          walk child (pos + 1)
      | None -> ()
    done
  in
  walk t.root 0

let count_db t db = Db.iter (count_transaction t) db

let merge_into t ~from =
  let rec go a b =
    if b.terminal then begin
      if not a.terminal then begin
        a.terminal <- true;
        t.candidates <- t.candidates + 1
      end;
      a.count <- a.count + b.count
    end;
    Hashtbl.iter
      (fun item b_child ->
        let a_child =
          match Hashtbl.find_opt a.children item with
          | Some child -> child
          | None ->
              let child = make_node () in
              Hashtbl.replace a.children item child;
              child
        in
        go a_child b_child)
      b.children
  in
  go t.root from.root

let get t itemset =
  let rec descend node = function
    | [] -> if node.terminal then Some node.count else None
    | item :: rest -> (
        match Hashtbl.find_opt node.children item with
        | Some child -> descend child rest
        | None -> None)
  in
  descend t.root (Itemset.to_list itemset)

let to_list t =
  let out = ref [] in
  let rec collect node prefix =
    if node.terminal then
      out := (Itemset.of_list (List.rev prefix), node.count) :: !out;
    Hashtbl.iter (fun item child -> collect child (item :: prefix)) node.children
  in
  collect t.root [];
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) !out

let support_counts db candidates =
  Ppdm_obs.Metrics.time "count.support_counts_ns" (fun () ->
      let t = create () in
      List.iter (add t) candidates;
      count_db t db;
      to_list t)
