open Ppdm_data

let bits_per_word = Bitset.bits_per_word

(* A tid-set is the set of transaction indices containing an item, in one
   of three shapes: a packed bitmap (bit [tid mod 62] of word [tid / 62],
   tail bits zero), a strictly increasing tid array, or a compressed
   column of roaring-style per-block containers (the shape a columnar
   file loads into — counted directly, never decompressed).
   Cardinalities and counts never depend on which shape a set happens to
   be in. *)
type tidset = Dense of int array | Sparse of int array | Col of Column.t

type t = {
  n : int;
  n_words : int;
  universe : int;
  tidsets : tidset array;
  counts : int array;
}

let length t = t.n
let universe t = t.universe
let word_count t = t.n_words
let item_count t item = t.counts.(item)

let dense_items t =
  Array.fold_left
    (fun acc ts -> match ts with Dense _ -> acc + 1 | Sparse _ | Col _ -> acc)
    0 t.tidsets

let sparse_items t =
  Array.fold_left
    (fun acc ts -> match ts with Sparse _ -> acc + 1 | Dense _ | Col _ -> acc)
    0 t.tidsets

let compressed_items t =
  Array.fold_left
    (fun acc ts -> match ts with Col _ -> acc + 1 | Dense _ | Sparse _ -> acc)
    0 t.tidsets

(* --- kernels ------------------------------------------------------- *)

(* All kernels take an explicit word window [wlo, whi) (tid range
   [wlo*62, whi*62)); sparse operands come pre-restricted as an index
   range into their tid array.

   Each AND/popcount/probe kernel exists in two variants: the safe one
   (bounds-checked array reads) and an [Array.unsafe_get]/[unsafe_set]
   one, selected per call through the process-global [unsafe_kernels]
   flag (off by default).  The unsafe variants elide checks that are
   redundant by construction: [count_into] validates its word window
   against [n_words], every dense bitmap holds exactly [n_words] words,
   and a sparse tid is < n so [tid / 62 < n_words].  The differential
   suite (test_vertical, `ppdm selftest`) holds both variants against
   each other and against the Bitset reference on every width class. *)

let unsafe_kernels = Atomic.make false
let set_unsafe_kernels b = Atomic.set unsafe_kernels b
let unsafe_kernels_enabled () = Atomic.get unsafe_kernels

let and_words_card_safe a b ~wlo ~whi =
  let card = ref 0 in
  for w = wlo to whi - 1 do
    card := !card + Bitset.popcount (a.(w) land b.(w))
  done;
  !card

let and_words_card_unsafe a b ~wlo ~whi =
  let card = ref 0 in
  for w = wlo to whi - 1 do
    card :=
      !card + Bitset.popcount (Array.unsafe_get a w land Array.unsafe_get b w)
  done;
  !card

let and_words_card a b ~wlo ~whi =
  if Atomic.get unsafe_kernels then and_words_card_unsafe a b ~wlo ~whi
  else and_words_card_safe a b ~wlo ~whi

let and_words_into_safe a b dst ~wlo ~whi =
  let card = ref 0 in
  for w = wlo to whi - 1 do
    let v = a.(w) land b.(w) in
    dst.(w) <- v;
    card := !card + Bitset.popcount v
  done;
  !card

let and_words_into_unsafe a b dst ~wlo ~whi =
  let card = ref 0 in
  for w = wlo to whi - 1 do
    let v = Array.unsafe_get a w land Array.unsafe_get b w in
    Array.unsafe_set dst w v;
    card := !card + Bitset.popcount v
  done;
  !card

let and_words_into a b dst ~wlo ~whi =
  if Atomic.get unsafe_kernels then and_words_into_unsafe a b dst ~wlo ~whi
  else and_words_into_safe a b dst ~wlo ~whi

(* Popcount of a single bitmap's window (level-1 candidates). *)
let popcount_words_safe words ~wlo ~whi =
  let card = ref 0 in
  for w = wlo to whi - 1 do
    card := !card + Bitset.popcount words.(w)
  done;
  !card

let popcount_words_unsafe words ~wlo ~whi =
  let card = ref 0 in
  for w = wlo to whi - 1 do
    card := !card + Bitset.popcount (Array.unsafe_get words w)
  done;
  !card

let popcount_words words ~wlo ~whi =
  if Atomic.get unsafe_kernels then popcount_words_unsafe words ~wlo ~whi
  else popcount_words_safe words ~wlo ~whi

(* Probe the tids [tids.(slo..shi-1)] against a bitmap. *)
let probe_card_safe words tids ~slo ~shi =
  let card = ref 0 in
  for idx = slo to shi - 1 do
    let tid = tids.(idx) in
    if words.(tid / bits_per_word) lsr (tid mod bits_per_word) land 1 = 1 then
      incr card
  done;
  !card

let probe_card_unsafe words tids ~slo ~shi =
  let card = ref 0 in
  for idx = slo to shi - 1 do
    let tid = Array.unsafe_get tids idx in
    if
      Array.unsafe_get words (tid / bits_per_word)
      lsr (tid mod bits_per_word)
      land 1
      = 1
    then incr card
  done;
  !card

let probe_card words tids ~slo ~shi =
  if Atomic.get unsafe_kernels then probe_card_unsafe words tids ~slo ~shi
  else probe_card_safe words tids ~slo ~shi

let probe_into_safe words tids ~slo ~shi dst =
  let len = ref 0 in
  for idx = slo to shi - 1 do
    let tid = tids.(idx) in
    if words.(tid / bits_per_word) lsr (tid mod bits_per_word) land 1 = 1
    then begin
      dst.(!len) <- tid;
      incr len
    end
  done;
  !len

let probe_into_unsafe words tids ~slo ~shi dst =
  let len = ref 0 in
  for idx = slo to shi - 1 do
    let tid = Array.unsafe_get tids idx in
    if
      Array.unsafe_get words (tid / bits_per_word)
      lsr (tid mod bits_per_word)
      land 1
      = 1
    then begin
      Array.unsafe_set dst !len tid;
      incr len
    end
  done;
  !len

let probe_into words tids ~slo ~shi dst =
  if Atomic.get unsafe_kernels then probe_into_unsafe words tids ~slo ~shi dst
  else probe_into_safe words tids ~slo ~shi dst

let merge_card a ~alo ~ahi b ~blo ~bhi =
  let i = ref alo and j = ref blo and k = ref 0 in
  while !i < ahi && !j < bhi do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      incr k;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  !k

let merge_into a ~alo ~ahi b ~blo ~bhi dst =
  let i = ref alo and j = ref blo and k = ref 0 in
  while !i < ahi && !j < bhi do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      dst.(!k) <- x;
      incr k;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  !k

(* Decode the set bits of [words.(wlo..whi-1)] into ascending tids.
   [b land (-b)] isolates the lowest set bit; popcount of (bit - 1) is
   its index. *)
let write_tids_of_words words ~wlo ~whi dst =
  let k = ref 0 in
  for w = wlo to whi - 1 do
    let v = ref words.(w) in
    let base = w * bits_per_word in
    while !v <> 0 do
      let bit = !v land (- !v) in
      dst.(!k) <- base + Bitset.popcount (bit - 1);
      incr k;
      v := !v land (!v - 1)
    done
  done;
  !k

(* First index in [tids] holding a tid >= [bound] (all of [tids] if none
   is smaller, [Array.length tids] if all are). *)
let lower_bound tids bound =
  let lo = ref 0 and hi = ref (Array.length tids) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if tids.(mid) < bound then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- standalone tid-set algebra (the Eclat interface) -------------- *)

let tidset_is_dense = function Dense _ -> true | Sparse _ | Col _ -> false
let tidset_is_compressed = function Col _ -> true | Dense _ | Sparse _ -> false

let tidset_cardinal = function
  | Sparse tids -> Array.length tids
  | Dense words -> and_words_card words words ~wlo:0 ~whi:(Array.length words)
  | Col col -> Column.cardinal col

let tidset_tids = function
  | Sparse tids -> Array.copy tids
  | Dense words ->
      let card = and_words_card words words ~wlo:0 ~whi:(Array.length words) in
      let out = Array.make card 0 in
      ignore (write_tids_of_words words ~wlo:0 ~whi:(Array.length words) out);
      out
  | Col col -> Column.to_tids col

let tidset_of_tids ~n ~dense tids =
  if n < 0 then invalid_arg "Vertical.tidset_of_tids: negative n";
  Array.iteri
    (fun i tid ->
      if tid < 0 || tid >= n then
        invalid_arg "Vertical.tidset_of_tids: tid out of range";
      if i > 0 && tids.(i - 1) >= tid then
        invalid_arg "Vertical.tidset_of_tids: tids not strictly increasing")
    tids;
  if dense then begin
    let words = Array.make (Bitset.words_for n) 0 in
    Array.iter
      (fun tid ->
        let w = tid / bits_per_word in
        words.(w) <- words.(w) lor (1 lsl (tid mod bits_per_word)))
      tids;
    Dense words
  end
  else Sparse (Array.copy tids)

(* Result representation follows the memory break-even rule: sparse as
   soon as the tid array is no larger than the bitmap.  Exact-size
   allocations (count pass, then fill pass) because Eclat keeps results
   alive down a whole DFS branch. *)
(* Eclat's DFS leaves the compressed domain at its first intersection: a
   Col operand materializes into whichever plain shape is smaller (the
   same break-even rule as below), and the plain kernels take over for
   the rest of the branch. *)
let decompress_tidset col =
  if Column.cardinal col >= Column.word_count col then
    Dense (Column.to_words col)
  else Sparse (Column.to_tids col)

let rec inter_tidsets a b =
  match (a, b) with
  | Col c, other | other, Col c -> inter_tidsets (decompress_tidset c) other
  | Dense wa, Dense wb ->
      let nw = Array.length wa in
      if Array.length wb <> nw then
        invalid_arg "Vertical.inter_tidsets: dense word counts differ";
      let card = and_words_card wa wb ~wlo:0 ~whi:nw in
      if card < nw then begin
        let tids = Array.make card 0 in
        let k = ref 0 in
        for w = 0 to nw - 1 do
          let v = ref (wa.(w) land wb.(w)) in
          let base = w * bits_per_word in
          while !v <> 0 do
            let bit = !v land (- !v) in
            tids.(!k) <- base + Bitset.popcount (bit - 1);
            incr k;
            v := !v land (!v - 1)
          done
        done;
        (Sparse tids, card)
      end
      else begin
        let words = Array.make nw 0 in
        ignore (and_words_into wa wb words ~wlo:0 ~whi:nw);
        (Dense words, card)
      end
  | Dense words, Sparse tids | Sparse tids, Dense words ->
      let shi = Array.length tids in
      let card = probe_card words tids ~slo:0 ~shi in
      let out = Array.make card 0 in
      ignore (probe_into words tids ~slo:0 ~shi out);
      (Sparse out, card)
  | Sparse ta, Sparse tb ->
      let ahi = Array.length ta and bhi = Array.length tb in
      let card = merge_card ta ~alo:0 ~ahi tb ~blo:0 ~bhi in
      let out = Array.make card 0 in
      ignore (merge_into ta ~alo:0 ~ahi tb ~blo:0 ~bhi out);
      (Sparse out, card)

(* --- load ---------------------------------------------------------- *)

let item_tidset t item = t.tidsets.(item)

let of_db ?(dense_cutoff = 1.0 /. float_of_int bits_per_word) db =
  if not (dense_cutoff >= 0.) then
    invalid_arg "Vertical.load: dense_cutoff must be >= 0";
  Ppdm_obs.Span.with_ ~name:"vertical.load" (fun () ->
      let n = Db.length db in
      let universe = Db.universe db in
      let n_words = Bitset.words_for n in
      let counts = Db.item_counts db in
      let cutoff = dense_cutoff *. float_of_int n in
      let tidsets =
        Array.init universe (fun item ->
            if n > 0 && float_of_int counts.(item) >= cutoff then
              Dense (Array.make n_words 0)
            else Sparse (Array.make counts.(item) 0))
      in
      let cursor = Array.make (max universe 1) 0 in
      Db.iteri
        (fun tid tx ->
          let items = Itemset.unsafe_to_array tx in
          for idx = 0 to Array.length items - 1 do
            match tidsets.(items.(idx)) with
            | Dense words ->
                let w = tid / bits_per_word in
                words.(w) <- words.(w) lor (1 lsl (tid mod bits_per_word))
            | Sparse tids ->
                let item = items.(idx) in
                tids.(cursor.(item)) <- tid;
                cursor.(item) <- cursor.(item) + 1
            | Col _ -> assert false (* of_db builds only plain shapes *)
          done)
        db;
      let t = { n; n_words; universe; tidsets; counts } in
      if Ppdm_obs.Metrics.enabled () then begin
        let dense = dense_items t in
        Ppdm_obs.Metrics.add "vertical.load.dense_items" dense;
        Ppdm_obs.Metrics.add "vertical.load.sparse_items" (universe - dense);
        let words =
          Array.fold_left
            (fun acc ts ->
              match ts with
              | Dense words -> acc + Array.length words
              | Sparse tids -> acc + Array.length tids
              | Col _ -> acc)
            0 tidsets
        in
        Ppdm_obs.Metrics.add "vertical.load.bytes" (8 * words)
      end;
      t)

let load = of_db (* historic name *)

(* --- compressed columns -------------------------------------------- *)

let container_stats t =
  Array.fold_left
    (fun acc ts ->
      match ts with
      | Col col -> Column.add_stats acc col
      | Dense _ | Sparse _ -> acc)
    Column.zero_stats t.tidsets

let resident_bytes t =
  Array.fold_left
    (fun acc ts ->
      match ts with
      | Dense words -> acc + (8 * Array.length words)
      | Sparse tids -> acc + (8 * Array.length tids)
      | Col col -> acc + (Column.stats col).Column.bytes)
    0 t.tidsets

let word_alignment t = if compressed_items t > 0 then Column.block_words else 1

let emit_columnar_metrics stats =
  if Ppdm_obs.Metrics.enabled () then begin
    Ppdm_obs.Metrics.add "columnar.containers.dense" stats.Column.dense;
    Ppdm_obs.Metrics.add "columnar.containers.sparse" stats.Column.sparse;
    Ppdm_obs.Metrics.add "columnar.containers.run" stats.Column.run;
    Ppdm_obs.Metrics.add "columnar.blocks"
      (stats.Column.dense + stats.Column.sparse + stats.Column.run);
    Ppdm_obs.Metrics.add "columnar.bytes" stats.Column.bytes
  end

let compress t =
  let tidsets =
    Array.map
      (function
        | Dense words -> Col (Column.of_words ~n:t.n words)
        | Sparse tids -> Col (Column.of_tids ~n:t.n tids)
        | Col _ as ts -> ts)
      t.tidsets
  in
  let t = { t with tidsets } in
  emit_columnar_metrics (container_stats t);
  t

let of_colfile cf =
  Ppdm_obs.Span.with_ ~name:"columnar.load" (fun () ->
      let n = Colfile.length cf in
      let universe = Colfile.universe cf in
      let n_words = Bitset.words_for n in
      let tidsets =
        Array.init universe (fun item -> Col (Colfile.column cf item))
      in
      let counts = Array.init universe (Colfile.item_count cf) in
      let t = { n; n_words; universe; tidsets; counts } in
      emit_columnar_metrics (container_stats t);
      t)

let iter_tidset f = function
  | Sparse tids -> Array.iter f tids
  | Dense words ->
      for w = 0 to Array.length words - 1 do
        let v = ref words.(w) in
        let base = w * bits_per_word in
        while !v <> 0 do
          let bit = !v land (- !v) in
          f (base + Bitset.popcount (bit - 1));
          v := !v land (!v - 1)
        done
      done
  | Col col -> Column.iter_tids f col

let to_db t =
  let buckets = Array.make (max t.n 1) [] in
  (* items walked downward so each tid's cons list comes out ascending *)
  for item = t.universe - 1 downto 0 do
    iter_tidset
      (fun tid -> buckets.(tid) <- item :: buckets.(tid))
      t.tidsets.(item)
  done;
  Db.create ~universe:t.universe
    (Array.init t.n (fun tid -> Itemset.of_list buckets.(tid)))

(* --- batch counting with prefix reuse ------------------------------ *)

(* One intersection buffer per prefix depth.  [bufs.(d)] holds the
   intersection of the current candidate's items [0..d] (d >= 1), either
   as a full-width bitmap in [words] or as [len] tids in [tids]; both
   arrays are lazily allocated and kept across candidates, levels, and
   [count_into] calls, so the steady state allocates nothing. *)
type buf = {
  mutable dense : bool;
  mutable words : int array;
  mutable tids : int array;
  mutable len : int;
}

type scratch = {
  s_n_words : int;
  mutable bufs : buf array;
  mutable prev : int array; (* last counted candidate's items *)
  mutable prev_len : int;
  mutable valid_depth : int; (* max d with bufs.(d) = /\ prev.(0..d) *)
  col_buf : buf; (* dense expansion of one compressed prefix column *)
  mutable col_item : int; (* item [col_buf] expands, -1 = none *)
  mutable col_wlo : int; (* window the expansion was made for *)
  mutable col_whi : int;
  mutable allocs : int;
  mutable touched : int; (* words (dense) or tids (sparse) read *)
}

let fresh_buf () = { dense = false; words = [||]; tids = [||]; len = 0 }

let make_scratch t =
  {
    s_n_words = t.n_words;
    bufs = [||];
    prev = [||];
    prev_len = 0;
    valid_depth = 0;
    col_buf = fresh_buf ();
    col_item = -1;
    col_wlo = 0;
    col_whi = 0;
    allocs = 0;
    touched = 0;
  }

let ensure_depth scratch d =
  let have = Array.length scratch.bufs in
  if d >= have then begin
    let bufs = Array.init (max (d + 1) (2 * have)) (fun _ -> fresh_buf ()) in
    Array.blit scratch.bufs 0 bufs 0 have;
    scratch.bufs <- bufs
  end

let ensure_words scratch buf =
  if Array.length buf.words = 0 && scratch.s_n_words > 0 then begin
    buf.words <- Array.make scratch.s_n_words 0;
    scratch.allocs <- scratch.allocs + 1
  end

let ensure_tids scratch buf capacity =
  if Array.length buf.tids < capacity then begin
    buf.tids <- Array.make (max capacity (2 * Array.length buf.tids)) 0;
    scratch.allocs <- scratch.allocs + 1
  end

(* An intersection operand inside one windowed counting run: a bitmap
   (always read through the window), a tid index range that is already
   window-restricted, or a compressed column (windowed at the kernel —
   its containers are walked through the same [wlo, whi) word range). *)
type view =
  | V_dense of int array
  | V_sparse of int array * int * int
  | V_col of Column.t

let view_of_tidset ts ~wlo ~whi ~full =
  match ts with
  | Dense words -> V_dense words
  | Col col -> V_col col
  | Sparse tids ->
      if full then V_sparse (tids, 0, Array.length tids)
      else
        let slo = lower_bound tids (wlo * bits_per_word) in
        let shi = lower_bound tids (whi * bits_per_word) in
        V_sparse (tids, slo, shi)

let view_of_buf buf =
  if buf.dense then V_dense buf.words else V_sparse (buf.tids, 0, buf.len)

(* Count |acc /\ item| without storing the result (the last item of a
   candidate). *)
let count_view scratch a b ~wlo ~whi =
  match (a, b) with
  | V_dense wa, V_dense wb ->
      scratch.touched <- scratch.touched + (2 * (whi - wlo));
      and_words_card wa wb ~wlo ~whi
  | V_dense words, V_sparse (tids, slo, shi)
  | V_sparse (tids, slo, shi), V_dense words ->
      scratch.touched <- scratch.touched + (shi - slo);
      probe_card words tids ~slo ~shi
  | V_sparse (ta, alo, ahi), V_sparse (tb, blo, bhi) ->
      scratch.touched <- scratch.touched + (ahi - alo) + (bhi - blo);
      merge_card ta ~alo ~ahi tb ~blo ~bhi
  | V_col col, V_dense words | V_dense words, V_col col ->
      scratch.touched <- scratch.touched + (2 * (whi - wlo));
      Column.and_words_card col words ~wlo ~whi
  | V_col col, V_sparse (tids, slo, shi)
  | V_sparse (tids, slo, shi), V_col col ->
      scratch.touched <- scratch.touched + (shi - slo);
      Column.probe_card col tids ~slo ~shi
  | V_col ca, V_col cb ->
      scratch.touched <- scratch.touched + (2 * (whi - wlo));
      Column.and_col_card ca cb ~wlo ~whi

(* Store acc /\ item into [dst].  A dense result converts to sparse when
   its cardinality drops below the window width in words — every later
   intersection along this prefix then probes instead of scanning. *)
(* Shared dense-result finishing: sparsify when the cardinality drops
   below the window width in words. *)
let finish_dense_result scratch dst ~wlo ~whi card =
  if card < whi - wlo then begin
    ensure_tids scratch dst card;
    ignore (write_tids_of_words dst.words ~wlo ~whi dst.tids);
    dst.dense <- false;
    dst.len <- card
  end
  else dst.dense <- true

let build_view scratch a b dst ~wlo ~whi =
  match (a, b) with
  | V_dense wa, V_dense wb ->
      scratch.touched <- scratch.touched + (2 * (whi - wlo));
      ensure_words scratch dst;
      let card = and_words_into wa wb dst.words ~wlo ~whi in
      finish_dense_result scratch dst ~wlo ~whi card
  | V_dense words, V_sparse (tids, slo, shi)
  | V_sparse (tids, slo, shi), V_dense words ->
      scratch.touched <- scratch.touched + (shi - slo);
      ensure_tids scratch dst (shi - slo);
      dst.len <- probe_into words tids ~slo ~shi dst.tids;
      dst.dense <- false
  | V_sparse (ta, alo, ahi), V_sparse (tb, blo, bhi) ->
      scratch.touched <- scratch.touched + (ahi - alo) + (bhi - blo);
      ensure_tids scratch dst (min (ahi - alo) (bhi - blo));
      dst.len <- merge_into ta ~alo ~ahi tb ~blo ~bhi dst.tids;
      dst.dense <- false
  | V_col col, V_dense words | V_dense words, V_col col ->
      scratch.touched <- scratch.touched + (2 * (whi - wlo));
      ensure_words scratch dst;
      let card = Column.and_words_into col words dst.words ~wlo ~whi in
      finish_dense_result scratch dst ~wlo ~whi card
  | V_col col, V_sparse (tids, slo, shi)
  | V_sparse (tids, slo, shi), V_col col ->
      scratch.touched <- scratch.touched + (shi - slo);
      ensure_tids scratch dst (shi - slo);
      dst.len <- Column.probe_into col tids ~slo ~shi dst.tids;
      dst.dense <- false
  | V_col ca, V_col cb ->
      scratch.touched <- scratch.touched + (2 * (whi - wlo));
      ensure_words scratch dst;
      let card = Column.and_col_into ca cb dst.words ~wlo ~whi in
      finish_dense_result scratch dst ~wlo ~whi card

let common_prefix prev prev_len items k =
  let cap = min prev_len k in
  let i = ref 0 in
  while !i < cap && prev.(!i) = items.(!i) do
    incr i
  done;
  !i

let count_one t scratch ~wlo ~whi ~full items =
  let k = Array.length items in
  (* Items are ascending, so one bound check covers them all; an
     out-of-universe item appears in no transaction (trie parity: such
     candidates report 0). *)
  if items.(k - 1) >= t.universe then 0
  else begin
    (* bufs.(d) survives from the previous candidate only while the first
       d+1 items agree. *)
    let common = common_prefix scratch.prev scratch.prev_len items k in
    scratch.valid_depth <- max 0 (min scratch.valid_depth (common - 1));
    scratch.prev <- items;
    scratch.prev_len <- k;
    if k = 1 then begin
      if full then t.counts.(items.(0))
      else
        match t.tidsets.(items.(0)) with
        | Dense words ->
            scratch.touched <- scratch.touched + (whi - wlo);
            popcount_words words ~wlo ~whi
        | Sparse tids ->
            lower_bound tids (whi * bits_per_word)
            - lower_bound tids (wlo * bits_per_word)
        | Col col ->
            scratch.touched <- scratch.touched + (whi - wlo);
            Column.window_card col ~wlo ~whi
    end
    else begin
      let item_view i = view_of_tidset t.tidsets.(i) ~wlo ~whi ~full in
      (* A compressed first item is consulted once per candidate sharing
         it (the batch is sorted), and two heavy containers merge far
         slower than a bitmap AND.  When its expansion would stay dense
         anyway, expand it once into [col_buf] and let every candidate
         with this prefix scan plain words; light columns keep the
         container merge, which wins at low cardinality. *)
      let prefix_view i =
        match t.tidsets.(i) with
        | Col col ->
            if
              scratch.col_item = i && scratch.col_wlo = wlo
              && scratch.col_whi = whi
            then V_dense scratch.col_buf.words
            else begin
              let card =
                if full then Column.cardinal col
                else Column.window_card col ~wlo ~whi
              in
              if card >= whi - wlo then begin
                ensure_words scratch scratch.col_buf;
                Column.write_into col scratch.col_buf.words ~wlo ~whi;
                scratch.col_item <- i;
                scratch.col_wlo <- wlo;
                scratch.col_whi <- whi;
                scratch.touched <- scratch.touched + (whi - wlo);
                V_dense scratch.col_buf.words
              end
              else V_col col
            end
        | Dense _ | Sparse _ -> item_view i
      in
      if k >= 3 then begin
        ensure_depth scratch (k - 2);
        for d = max 1 (scratch.valid_depth + 1) to k - 2 do
          let acc =
            if d = 1 then prefix_view items.(0)
            else view_of_buf scratch.bufs.(d - 1)
          in
          build_view scratch acc (item_view items.(d)) scratch.bufs.(d) ~wlo
            ~whi
        done;
        scratch.valid_depth <- k - 2
      end;
      let acc =
        if k = 2 then prefix_view items.(0)
        else view_of_buf scratch.bufs.(k - 2)
      in
      count_view scratch acc (item_view items.(k - 1)) ~wlo ~whi
    end
  end

type prepared = Itemset.t array (* Itemset.compare-sorted, unique *)

let prepare candidates =
  let arr = Array.of_list candidates in
  Array.iter
    (fun c ->
      if Itemset.is_empty c then invalid_arg "Vertical.prepare: empty candidate")
    arr;
  Array.sort Itemset.compare arr;
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = ref 1 in
    for i = 1 to n - 1 do
      if not (Itemset.equal arr.(i) arr.(!out - 1)) then begin
        arr.(!out) <- arr.(i);
        incr out
      end
    done;
    if !out = n then arr else Array.sub arr 0 !out
  end

let prepared_length = Array.length

let count_into ?scratch t ?(word_lo = 0) ?word_hi ?(cand_lo = 0) ?cand_hi
    prepared =
  let word_hi = Option.value word_hi ~default:t.n_words in
  if word_lo < 0 || word_lo > word_hi || word_hi > t.n_words then
    invalid_arg "Vertical.count_into: word window out of range";
  let cand_hi = Option.value cand_hi ~default:(Array.length prepared) in
  if cand_lo < 0 || cand_lo > cand_hi || cand_hi > Array.length prepared then
    invalid_arg "Vertical.count_into: candidate range out of range";
  let scratch =
    match scratch with
    | Some s ->
        if s.s_n_words <> t.n_words then
          invalid_arg "Vertical.count_into: scratch built for another width";
        s
    | None -> make_scratch t
  in
  let allocs0 = scratch.allocs and touched0 = scratch.touched in
  (* Buffers hold leftovers from an unrelated call or window. *)
  scratch.prev <- [||];
  scratch.prev_len <- 0;
  scratch.valid_depth <- 0;
  scratch.col_item <- -1;
  let full = word_lo = 0 && word_hi = t.n_words in
  (* The range keeps the batch's sort order, so prefix reuse works inside
     a candidate column exactly as it does over the whole batch. *)
  let out =
    Array.init (cand_hi - cand_lo) (fun i ->
        count_one t scratch ~wlo:word_lo ~whi:word_hi ~full
          (Itemset.unsafe_to_array prepared.(cand_lo + i)))
  in
  if Ppdm_obs.Metrics.enabled () then begin
    Ppdm_obs.Metrics.add "vertical.candidates" (cand_hi - cand_lo);
    Ppdm_obs.Metrics.add "vertical.scratch.allocs" (scratch.allocs - allocs0);
    Ppdm_obs.Metrics.add "vertical.words.touched" (scratch.touched - touched0)
  end;
  out

(* Sum of windowed counts over several [lo, hi) word runs — the sampled
   counter's kernel.  Calling [count_into] once per run pays the whole
   per-candidate dispatch (item lookup, view construction, prefix
   bookkeeping) once per run; with thousands of candidates and runs of a
   handful of words that fixed cost dwarfs the scan itself.  Candidates
   of size <= 2 — level 2, where the candidate count peaks — never touch
   the prefix buffers, so for them the loop inverts to candidate-outer:
   tid-sets are fetched and dispatched once, and the inner loop is the
   raw window scan.  Larger candidates keep the run-outer [count_into]
   path, where the prefix cache works within each window. *)
let count_runs ?scratch t ~runs prepared =
  Array.iter
    (fun (lo, hi) ->
      if lo < 0 || lo > hi || hi > t.n_words then
        invalid_arg "Vertical.count_runs: run out of range")
    runs;
  match runs with
  | [||] -> Array.make (Array.length prepared) 0
  | [| (lo, hi) |] -> count_into ?scratch t ~word_lo:lo ~word_hi:hi prepared
  | _ ->
      let scratch =
        match scratch with
        | Some s ->
            if s.s_n_words <> t.n_words then
              invalid_arg "Vertical.count_runs: scratch built for another width";
            s
        | None -> make_scratch t
      in
      let small =
        Array.for_all (fun c -> Itemset.cardinal c <= 2) prepared
      in
      if not small then begin
        (* run-outer: count_into per run, summed (integer sums are
           independent of the run partition) *)
        let len = Array.length prepared in
        let totals = Array.make len 0 in
        Array.iter
          (fun (lo, hi) ->
            let part = count_into ~scratch t ~word_lo:lo ~word_hi:hi prepared in
            for i = 0 to len - 1 do
              totals.(i) <- totals.(i) + part.(i)
            done)
          runs;
        totals
      end
      else begin
        let touched0 = scratch.touched in
        let out =
          Array.map
            (fun c ->
              let items = Itemset.unsafe_to_array c in
              let k = Array.length items in
              if items.(k - 1) >= t.universe then 0
              else if k = 1 then begin
                match t.tidsets.(items.(0)) with
                | Dense words ->
                    let card = ref 0 in
                    Array.iter
                      (fun (wlo, whi) ->
                        scratch.touched <- scratch.touched + (whi - wlo);
                        card := !card + popcount_words words ~wlo ~whi)
                      runs;
                    !card
                | Sparse tids ->
                    let card = ref 0 in
                    Array.iter
                      (fun (wlo, whi) ->
                        card :=
                          !card
                          + lower_bound tids (whi * bits_per_word)
                          - lower_bound tids (wlo * bits_per_word))
                      runs;
                    !card
                | Col col ->
                    let card = ref 0 in
                    Array.iter
                      (fun (wlo, whi) ->
                        scratch.touched <- scratch.touched + (whi - wlo);
                        card := !card + Column.window_card col ~wlo ~whi)
                      runs;
                    !card
              end
              else begin
                let acc = ref 0 in
                (match (t.tidsets.(items.(0)), t.tidsets.(items.(1))) with
                | Dense wa, Dense wb ->
                    Array.iter
                      (fun (wlo, whi) ->
                        scratch.touched <- scratch.touched + (2 * (whi - wlo));
                        acc := !acc + and_words_card wa wb ~wlo ~whi)
                      runs
                | Dense words, Sparse tids | Sparse tids, Dense words ->
                    Array.iter
                      (fun (wlo, whi) ->
                        let slo = lower_bound tids (wlo * bits_per_word) in
                        let shi = lower_bound tids (whi * bits_per_word) in
                        scratch.touched <- scratch.touched + (shi - slo);
                        acc := !acc + probe_card words tids ~slo ~shi)
                      runs
                | Sparse ta, Sparse tb ->
                    Array.iter
                      (fun (wlo, whi) ->
                        let alo = lower_bound ta (wlo * bits_per_word)
                        and ahi = lower_bound ta (whi * bits_per_word)
                        and blo = lower_bound tb (wlo * bits_per_word)
                        and bhi = lower_bound tb (whi * bits_per_word) in
                        scratch.touched <-
                          scratch.touched + (ahi - alo) + (bhi - blo);
                        acc := !acc + merge_card ta ~alo ~ahi tb ~blo ~bhi)
                      runs
                | Col col, Dense words | Dense words, Col col ->
                    Array.iter
                      (fun (wlo, whi) ->
                        scratch.touched <- scratch.touched + (2 * (whi - wlo));
                        acc := !acc + Column.and_words_card col words ~wlo ~whi)
                      runs
                | Col col, Sparse tids | Sparse tids, Col col ->
                    Array.iter
                      (fun (wlo, whi) ->
                        let slo = lower_bound tids (wlo * bits_per_word) in
                        let shi = lower_bound tids (whi * bits_per_word) in
                        scratch.touched <- scratch.touched + (shi - slo);
                        acc := !acc + Column.probe_card col tids ~slo ~shi)
                      runs
                | Col ca, Col cb ->
                    Array.iter
                      (fun (wlo, whi) ->
                        scratch.touched <- scratch.touched + (2 * (whi - wlo));
                        acc := !acc + Column.and_col_card ca cb ~wlo ~whi)
                      runs);
                !acc
              end)
            prepared
        in
        if Ppdm_obs.Metrics.enabled () then begin
          Ppdm_obs.Metrics.add "vertical.candidates" (Array.length prepared);
          Ppdm_obs.Metrics.add "vertical.words.touched"
            (scratch.touched - touched0)
        end;
        out
      end

let assemble prepared counts =
  if Array.length prepared <> Array.length counts then
    invalid_arg "Vertical.assemble: length mismatch";
  let out = ref [] in
  for i = Array.length prepared - 1 downto 0 do
    out := (prepared.(i), counts.(i)) :: !out
  done;
  !out

let support_counts ?scratch t candidates =
  Ppdm_obs.Metrics.time "vertical.support_counts_ns" (fun () ->
      let prepared = prepare candidates in
      assemble prepared (count_into ?scratch t prepared))

let support_count ?scratch t itemset =
  if Itemset.is_empty itemset then
    invalid_arg "Vertical.support_count: empty itemset";
  (count_into ?scratch t [| itemset |]).(0)
