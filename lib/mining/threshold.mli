(** The one support-threshold rule shared by every miner.

    "Support at least [min_support]" must mean the same absolute count in
    Apriori, Eclat, FP-growth, and the parallel drivers, or the miners
    disagree at boundary supports (e.g. [min_support * n] exactly
    integral, where an unguarded [ceil] is one ulp away from flipping).
    Each miner used to inline its own copy of the formula; this module is
    the single definition. *)

val absolute : n:int -> min_support:float -> int
(** [absolute ~n ~min_support] is the absolute count threshold for a
    database of [n] transactions: [ceil(min_support * n)] computed with a
    [1e-9] tolerance against float round-off, and never below 1 (an
    itemset must occur to be frequent, even at tiny supports).
    @raise Invalid_argument if [min_support] is outside (0, 1] or [n] is
    negative. *)
