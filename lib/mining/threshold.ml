let absolute ~n ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Threshold.absolute: min_support out of (0,1]";
  if n < 0 then invalid_arg "Threshold.absolute: negative n";
  max 1 (int_of_float (Float.ceil ((min_support *. float_of_int n) -. 1e-9)))
