(* Deterministic word-window sampling over the vertical engine.

   The sample is a cluster sample of bitmap word windows: the tid range
   is cut into windows of [window_words] 62-bit words, a seeded partial
   Fisher-Yates shuffle picks round(F * windows) of them, and adjacent
   selections are merged into runs so counting touches each selected
   region with one [Vertical.count_into] window.  Everything downstream
   of the (fraction, seed, geometry) triple is deterministic, so the
   same plan is recomputed identically by every process and every
   domain — the parallel driver only re-shards the runs. *)

let default_window_words = 4

type plan = {
  population : int;
  sample : int;
  fraction : float;
  seed : int;
  runs : (int * int) array;
}

let bits = Ppdm_data.Bitset.bits_per_word

(* Tids covered by words [lo, hi): the last word of the database is
   partial unless 62 divides the transaction count. *)
let tids_in_window ~n ~lo ~hi = min (hi * bits) n - (lo * bits)

let merge_adjacent sorted ~window_words ~word_count =
  let runs = ref [] in
  let cur = ref None in
  Array.iter
    (fun w ->
      let lo = w * window_words in
      let hi = min word_count ((w + 1) * window_words) in
      match !cur with
      | Some (clo, chi) when chi = lo -> cur := Some (clo, hi)
      | Some r ->
          runs := r :: !runs;
          cur := Some (lo, hi)
      | None -> cur := Some (lo, hi))
    sorted;
  (match !cur with Some r -> runs := r :: !runs | None -> ());
  Array.of_list (List.rev !runs)

let plan ?(window_words = default_window_words) ~n ~word_count ~fraction ~seed
    () =
  if not (fraction > 0. && fraction <= 1.) then
    invalid_arg "Sampled.plan: fraction out of (0,1]";
  if window_words <= 0 then
    invalid_arg "Sampled.plan: window_words must be positive";
  if n < 0 || word_count < 0 then
    invalid_arg "Sampled.plan: negative geometry";
  if word_count * bits < n then
    invalid_arg "Sampled.plan: word_count too small for n";
  if word_count = 0 then
    { population = n; sample = n; fraction; seed; runs = [||] }
  else begin
    let windows = (word_count + window_words - 1) / window_words in
    let m =
      max 1
        (min windows (int_of_float (Float.round (fraction *. float_of_int windows))))
    in
    let runs =
      if m = windows then [| (0, word_count) |]
      else begin
        (* Partial Fisher-Yates: the first [m] slots are a uniform
           without-replacement draw of window indices. *)
        let idx = Array.init windows Fun.id in
        let rng = Ppdm_prng.Rng.create ~seed () in
        for i = 0 to m - 1 do
          let j = i + Ppdm_prng.Rng.int rng (windows - i) in
          let tmp = idx.(i) in
          idx.(i) <- idx.(j);
          idx.(j) <- tmp
        done;
        let chosen = Array.sub idx 0 m in
        Array.sort Int.compare chosen;
        merge_adjacent chosen ~window_words ~word_count
      end
    in
    let sample =
      Array.fold_left
        (fun acc (lo, hi) -> acc + tids_in_window ~n ~lo ~hi)
        0 runs
    in
    Ppdm_obs.Metrics.incr "sampled.plans";
    Ppdm_obs.Metrics.add "sampled.words.selected"
      (Array.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 runs);
    { population = n; sample; fraction; seed; runs }
  end

let is_exhaustive plan = plan.sample = plan.population

(* Scale a raw sample count to its full-database equivalent with
   round-half-up integer arithmetic: (2 c N + n) / (2 n).  Exactly [c]
   when the plan is exhaustive, so sampled:1.0 output is byte-identical
   to the exact engine.  Magnitudes stay far below 2^62: c <= n <= N. *)
let scale_count plan c =
  if plan.sample = plan.population || c = 0 then c
  else ((2 * c * plan.population) + plan.sample) / (2 * plan.sample)

let scale_counts plan counts =
  if is_exhaustive plan then counts else Array.map (scale_count plan) counts

let raw_counts ?scratch vt plan prepared =
  Vertical.count_runs ?scratch vt ~runs:plan.runs prepared

let support_counts ?scratch vt plan candidates =
  if Vertical.length vt <> plan.population then
    invalid_arg "Sampled.support_counts: plan built for another database";
  let prepared = Vertical.prepare candidates in
  if Vertical.prepared_length prepared = 0 then []
  else
    Vertical.assemble prepared
      (scale_counts plan (raw_counts ?scratch vt plan prepared))
