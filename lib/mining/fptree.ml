open Ppdm_data

type node = {
  item : int;
  mutable count : int;
  parent : node option;
  children : (int, node) Hashtbl.t;
}

type tree = {
  root : node;
  headers : (int, node list ref) Hashtbl.t;  (** per-item node lists *)
}

let make_node ?parent item =
  { item; count = 0; parent; children = Hashtbl.create 4 }

let make_tree () =
  { root = make_node (-1); headers = Hashtbl.create 64 }

let header_add tree item node =
  match Hashtbl.find_opt tree.headers item with
  | Some l -> l := node :: !l
  | None -> Hashtbl.replace tree.headers item (ref [ node ])

(* Insert a path of items (already ordered by descending global frequency)
   with the given count. *)
let insert tree path count =
  let node = ref tree.root in
  List.iter
    (fun item ->
      let child =
        match Hashtbl.find_opt !node.children item with
        | Some child -> child
        | None ->
            let child = make_node ~parent:!node item in
            Hashtbl.replace !node.children item child;
            header_add tree item child;
            child
      in
      child.count <- child.count + count;
      node := child)
    path

(* Items of a conditional pattern base with their counts. *)
let item_counts_of_paths paths =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (path, count) ->
      List.iter
        (fun item ->
          Hashtbl.replace counts item
            (count + Option.value ~default:0 (Hashtbl.find_opt counts item)))
        path)
    paths;
  counts

(* Build a conditional FP-tree from (path, count) pairs, keeping only items
   meeting the threshold and ordering each path by descending count. *)
let build_conditional paths threshold =
  let counts = item_counts_of_paths paths in
  let frequent item = Option.value ~default:0 (Hashtbl.find_opt counts item) >= threshold in
  let order a b =
    let ca = Hashtbl.find counts a and cb = Hashtbl.find counts b in
    if ca <> cb then compare cb ca else compare a b
  in
  let tree = make_tree () in
  List.iter
    (fun (path, count) ->
      let kept = List.filter frequent path in
      let sorted = List.sort order kept in
      if sorted <> [] then insert tree sorted count)
    paths;
  tree

(* Walk up parent pointers to collect the prefix path of a node. *)
let prefix_path node =
  let rec up acc n =
    match n.parent with
    | None -> acc
    | Some p -> if p.item < 0 then acc else up (p.item :: acc) p
  in
  up [] node

let pattern_base tree item =
  match Hashtbl.find_opt tree.headers item with
  | None -> []
  | Some nodes ->
      List.filter_map
        (fun n ->
          let path = prefix_path n in
          if path = [] then None else Some (path, n.count))
        !nodes

let item_total tree item =
  match Hashtbl.find_opt tree.headers item with
  | None -> 0
  | Some nodes -> List.fold_left (fun acc n -> acc + n.count) 0 !nodes

let mine ?max_size db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Fptree.mine: min_support out of (0,1]";
  let threshold = Threshold.absolute ~n:(Db.length db) ~min_support in
  let cap = Option.value max_size ~default:max_int in
  if cap < 1 then []
  else begin
    let global_counts = Db.item_counts db in
    let order a b =
      if global_counts.(a) <> global_counts.(b) then
        compare global_counts.(b) global_counts.(a)
      else compare a b
    in
    let tree = make_tree () in
    Db.iter
      (fun tx ->
        let kept =
          List.filter
            (fun item -> global_counts.(item) >= threshold)
            (Itemset.to_list tx)
        in
        let sorted = List.sort order kept in
        if sorted <> [] then insert tree sorted 1)
      db;
    let results = ref [] in
    (* Grow patterns: for each item of the (conditional) tree, emit the
       extended suffix and recurse on its conditional tree. *)
    let rec grow tree suffix depth =
      if depth <= cap then
        Hashtbl.iter
          (fun item _nodes ->
            let total = item_total tree item in
            if total >= threshold then begin
              let pattern = item :: suffix in
              results := (Itemset.of_list pattern, total) :: !results;
              if depth < cap then begin
                let base = pattern_base tree item in
                if base <> [] then
                  grow (build_conditional base threshold) pattern (depth + 1)
              end
            end)
          tree.headers
    in
    grow tree [] 1;
    List.sort (fun (a, _) (b, _) -> Itemset.compare a b) !results
  end
