(** Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994): the
    level-wise algorithm with candidate generation by self-join and
    downward-closure pruning.  This is both the non-private baseline and
    the skeleton the privacy-preserving miner re-instantiates with
    estimated supports. *)

open Ppdm_data

type counter =
  | Trie
  | Vertical
  | Auto
  | Sampled of { fraction : float; seed : int }
      (** count levels >= 2 on a deterministic uniform word-window sample
          covering [fraction] of the tid range (see {!Sampled}); counts
          are scaled to full-database equivalents, so thresholds apply
          unchanged, but they are {e estimates} — compose the sampling
          variance downstream.  [fraction = 1.0] is byte-identical to
          [Vertical]. *)
(** Which support-counting engine the level loop runs on.  [Trie] is the
    horizontal hash-trie of {!Count} (one walk per transaction per
    level); [Vertical] transposes the database once into {!Vertical}
    tid-sets and answers each candidate with one word-level intersection;
    [Auto] picks [Vertical] whenever the database fills at least one
    bitmap word (62 transactions) and falls back to [Trie] on tiny
    inputs, where the transpose cannot amortize.  The mined output is
    byte-identical across [Trie], [Vertical], and [Auto]. *)

val resolve_counter :
  counter -> Db.t -> [ `Trie | `Vertical | `Sampled of float * int ]
(** The engine [Auto] resolves to on this database (identity on the
    explicit choices; [Sampled] unpacks to its fraction and seed).
    Exposed so external drivers — the parallel runtime, the CLI — agree
    with {!mine} on the resolution rule.
    @raise Invalid_argument on a sampled fraction outside (0,1]. *)

val mine :
  ?max_size:int -> ?counter:counter -> Db.t -> min_support:float ->
  (Itemset.t * int) list
(** [mine db ~min_support] returns every itemset with support (fraction of
    transactions) at least [min_support], paired with its absolute count,
    in {!Itemset.compare} order.  [max_size] caps the itemset cardinality
    explored (default: unbounded); [counter] selects the counting engine
    (default [Trie], the historical behaviour).
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

val mine_vertical :
  ?max_size:int -> Vertical.t -> min_support:float -> (Itemset.t * int) list
(** [mine] for a database already in vertical form — the entry point for
    columnar input ({!Vertical.of_colfile}), where the row-major [Db.t]
    never exists: level 1 seeds from the per-item counts and every level
    counts on the (possibly compressed) tid-sets in place.  Output is
    byte-identical to [mine ~counter:Vertical] on the equivalent
    database.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

val run_levels :
  ?max_size:int ->
  threshold:int ->
  level1:(unit -> (Itemset.t * int) list) ->
  count_level:(Itemset.t list -> (Itemset.t * int) list) ->
  unit ->
  (Itemset.t * int) list
(** The engine-independent level-wise loop every driver shares: seed with
    [level1 ()], then generate ({!candidates_from}) / count
    ([count_level], which must return {!Itemset.compare}-sorted pairs as
    all engines do) / filter at [threshold], recording the per-level
    metrics and spans, until [max_size] or an empty level.  Exposed so
    external drivers (the parallel runtime) cannot drift from {!mine}'s
    loop. *)

val candidates_from :
  frequent:Itemset.t list -> size:int -> Itemset.t list
(** Candidate generation used by level [size]: self-join of the frequent
    [(size-1)]-itemsets followed by the downward-closure prune.  Exposed
    for the privacy-preserving miner and for tests. *)

val absolute_threshold : n:int -> min_support:float -> int
(** The absolute count threshold [mine] uses for a database of [n]
    transactions: [ceil(min_support * n)] (with a small tolerance against
    float round-off), never below 1.  Exposed so alternative drivers —
    the parallel runtime's level-wise loop in particular — apply exactly
    the same rule.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

val level1 : Db.t -> threshold:int -> (Itemset.t * int) list
(** The frequent single items with their counts, in item order: the seed
    level of the level-wise loop.  Exposed for external drivers. *)

val level1_of_counts : int array -> threshold:int -> (Itemset.t * int) list
(** {!level1} from a bare per-item count array — the seed for drivers
    that have no [Db.t], such as the columnar paths. *)

val record_level : size:int -> candidates:'a list -> frequent:'b list -> unit
(** Record the per-level candidate/survivor counters of the observability
    layer ([apriori.level<n>.candidates] / [.frequent]); a no-op when
    metrics are disabled.  Exposed so external level-wise drivers emit the
    same metrics as {!mine}. *)

val with_level_span : size:int -> (unit -> 'a) -> 'a
(** Run [f] under the per-level phase span [apriori.level<size>] (which
    also emits a timeline slice when tracing is on); [f ()] after one
    flag check when all instrumentation is off.  Exposed so external
    level-wise drivers produce the same per-phase timeline as {!mine}. *)
