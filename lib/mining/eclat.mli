(** Eclat frequent-itemset mining (Zaki, TKDE 2000): depth-first search
    over the vertical (tid-set) representation.  A third miner alongside
    {!Apriori} and {!Fptree} — identical output, different runtime shape
    (intersection-bound rather than candidate- or tree-bound), used by the
    miner-comparison benchmark.  Tid-sets are the adaptive dense/sparse
    hybrids of {!Vertical}: frequent items start as packed bitmaps
    (word-AND intersections), and the DFS degrades to sorted-tid probes
    and merges as intersections shrink. *)

open Ppdm_data

val mine :
  ?max_size:int -> Db.t -> min_support:float -> (Itemset.t * int) list
(** Same contract as {!Apriori.mine}: every itemset with support at least
    [min_support], with absolute counts, in {!Itemset.compare} order.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

(** {2 Partitioned mining}

    The DFS decomposes into independent prefix classes, one per frequent
    item: the class rooted at atom [i] extends only with atoms [> i].
    Building the atoms once and mining disjoint atom ranges therefore
    partitions the output exactly — the parallel runtime fans the ranges
    out across domains and sorts the concatenation. *)

type atoms
(** The frequent single items of a database with their tid-sets, plus the
    absolute count threshold.  Immutable once built; safe to share across
    domains. *)

val atoms : Db.t -> min_support:float -> atoms
(** One vertical scan of the database.
    @raise Invalid_argument if [min_support] is outside (0, 1]. *)

val atom_count : atoms -> int
(** How many frequent items there are (the number of prefix classes). *)

val mine_atoms :
  ?max_size:int -> atoms -> lo:int -> hi:int -> (Itemset.t * int) list
(** Frequent itemsets of the prefix classes rooted at atom indices
    [lo..hi-1], in no particular order.  [mine db ~min_support] is
    [mine_atoms (atoms db ~min_support) ~lo:0 ~hi:(atom_count _)] sorted.
    @raise Invalid_argument on a range outside [0, atom_count]. *)
