(** Candidate support counting over a prefix trie.

    Candidates are inserted as item paths (items in increasing order); a
    single pass over each transaction then increments every candidate it
    contains, touching only trie paths that match — the standard
    subset-counting structure of Apriori implementations. *)

open Ppdm_data

type t

val create : unit -> t

val add : t -> Itemset.t -> unit
(** Register a candidate (idempotent). *)

val candidate_count : t -> int

val count_transaction : t -> Itemset.t -> unit
(** Increment every registered candidate contained in the transaction. *)

val count_db : t -> Db.t -> unit

val merge_into : t -> from:t -> unit
(** [merge_into t ~from] adds every count of [from] into [t], registering
    any candidate [t] lacks.  [from] is unchanged (no nodes are shared).
    Counts are sums, so sharded counting — one trie per database shard,
    merged afterwards — yields exactly the counts of a single pass. *)

val get : t -> Itemset.t -> int option
(** Count accumulated for a candidate; [None] if it was never added. *)

val to_list : t -> (Itemset.t * int) list
(** All candidates with their counts, in {!Itemset.compare} order. *)

val support_counts : Db.t -> Itemset.t list -> (Itemset.t * int) list
(** One-shot convenience: build a trie, count the database, list results. *)
