(** Sampled support counting on the vertical engine.

    Counts candidates over a deterministic seeded uniform sample of the
    transactions instead of all of them, trading exactness for speed: the
    estimator already treats recovered supports as noisy ({!Ppdm} folds
    randomization covariance into every estimate), so a second, known
    noise source with finite-population-corrected variance composes
    cleanly — see [Estimator.sampling_covariance].

    The sampling design is {e word-window cluster sampling}: the tid
    range is partitioned into windows of {!default_window_words} bitmap
    words (62 tids each), and a seeded partial Fisher-Yates shuffle
    selects a uniform subset of windows covering fraction [F] of them.
    Adjacent selections are merged into runs, so counting stays on the
    word-window fast path of {!Vertical.count_into} and a plan at
    [F = 1.0] degenerates to one full-range window — byte-identical to
    the exact vertical count.

    Raw sample counts are scaled to full-database equivalents with
    round-half-up integer arithmetic, so the level-wise miners compare
    them against their usual absolute thresholds unchanged. *)

val default_window_words : int
(** Window granularity in 62-bit words (4 words = 248 tids): small enough
    that modest fractions still spread across the database, large enough
    to amortize the per-window candidate walk. *)

type plan = {
  population : int;  (** transactions in the full database *)
  sample : int;  (** tids actually covered by [runs] *)
  fraction : float;  (** requested sampling fraction [F] *)
  seed : int;
  runs : (int * int) array;
      (** merged, ascending, disjoint [\[lo, hi)] word ranges *)
}

val plan :
  ?window_words:int ->
  n:int ->
  word_count:int ->
  fraction:float ->
  seed:int ->
  unit ->
  plan
(** Build the sampling plan for a database of [n] transactions spanning
    [word_count] bitmap words ({!Vertical.word_count}).  At least one
    window is always selected; [fraction = 1.0] (or a database of at most
    one window) selects everything.  Deterministic in all arguments.
    @raise Invalid_argument if [fraction] is outside (0,1], the geometry
    is negative or inconsistent, or [window_words <= 0]. *)

val is_exhaustive : plan -> bool
(** Whether the plan covers every transaction (no sampling noise). *)

val scale_count : plan -> int -> int
(** Full-database equivalent of one raw sample count, round-half-up.
    The identity on exhaustive plans. *)

val scale_counts : plan -> int array -> int array
(** {!scale_count} over a batch (returns the input array unchanged for
    exhaustive plans). *)

val raw_counts :
  ?scratch:Vertical.scratch -> Vertical.t -> plan -> Vertical.prepared ->
  int array
(** Unscaled sample counts in prepared order: {!Vertical.count_runs}
    over the plan's runs — equal to summing {!Vertical.count_into} over
    any partition of them, which is what lets the parallel driver
    re-shard them. *)

val support_counts :
  ?scratch:Vertical.scratch ->
  Vertical.t ->
  plan ->
  Ppdm_data.Itemset.t list ->
  (Ppdm_data.Itemset.t * int) list
(** [prepare] + {!raw_counts} + scaling + [assemble]: the sampled
    counterpart of {!Vertical.support_counts}, in the same output shape.
    @raise Invalid_argument if the plan was built for a database of a
    different size, or on an empty candidate itemset. *)
