open Ppdm_data

(* Self-join: two (k-1)-itemsets sharing their first k-2 items produce a
   k-candidate; the prune then requires every (k-1)-subset to be frequent.
   The (k-1)-itemsets are sorted lexicographically and cut into runs
   sharing their (k-2)-prefix, so the join only pairs within a prefix
   class instead of scanning the whole level per itemset. *)
let compare_int_arrays a b =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i = n then Stdlib.compare la lb
    else
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let candidates_from ~frequent ~size =
  if size < 2 then invalid_arg "Apriori.candidates_from: size must be >= 2";
  let known = Hashtbl.create (2 * List.length frequent) in
  List.iter (fun s -> Hashtbl.replace known s ()) frequent;
  (* read-only from here on, so the non-copying view is safe *)
  let arrays = List.map Itemset.unsafe_to_array frequent in
  let sorted =
    Array.of_list (List.filter (fun a -> Array.length a = size - 1) arrays)
  in
  Array.sort compare_int_arrays sorted;
  let same_prefix a b =
    let ok = ref true in
    for i = 0 to size - 3 do
      if a.(i) <> b.(i) then ok := false
    done;
    !ok
  in
  let all_subsets_frequent candidate =
    let ok = ref true in
    let k = Array.length candidate in
    for drop = 0 to k - 1 do
      if !ok then begin
        let sub =
          Array.init (k - 1) (fun i -> if i < drop then candidate.(i) else candidate.(i + 1))
        in
        if not (Hashtbl.mem known (Itemset.of_sorted_array_unchecked sub)) then
          ok := false
      end
    done;
    !ok
  in
  let acc = ref [] in
  let n = Array.length sorted in
  let run_start = ref 0 in
  while !run_start < n do
    (* the run of itemsets sharing sorted.(!run_start)'s (k-2)-prefix:
       contiguous because the sort is lexicographic *)
    let run_end = ref (!run_start + 1) in
    while !run_end < n && same_prefix sorted.(!run_start) sorted.(!run_end) do
      incr run_end
    done;
    for i = !run_start to !run_end - 1 do
      for j = i + 1 to !run_end - 1 do
        let a = sorted.(i) and b = sorted.(j) in
        (* within a run the last items ascend, but duplicates in the input
           would make them equal: keep the strict test *)
        if a.(size - 2) < b.(size - 2) then begin
          let candidate = Array.append a [| b.(size - 2) |] in
          Ppdm_obs.Metrics.incr "apriori.candidates.joined";
          if all_subsets_frequent candidate then
            acc := Itemset.of_sorted_array_unchecked candidate :: !acc
          else Ppdm_obs.Metrics.incr "apriori.candidates.pruned"
        end
      done
    done;
    run_start := !run_end
  done;
  List.rev !acc

let absolute_threshold ~n ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Apriori.absolute_threshold: min_support out of (0,1]";
  Threshold.absolute ~n ~min_support

(* Level 1 straight from per-item counts — an array is all it takes, so
   the columnar path (which has counts but no Db) seeds the same way. *)
let level1_of_counts counts ~threshold =
  counts |> Array.to_seqi
  |> Seq.filter_map (fun (item, c) ->
         if c >= threshold then Some (Itemset.singleton item, c) else None)
  |> List.of_seq

let level1 db ~threshold = level1_of_counts (Db.item_counts db) ~threshold

(* Per-level observability shared with the parallel driver: candidate and
   survivor counts per Apriori level (names are computed, so the whole
   block sits behind the enabled flag). *)
let record_level ~size ~candidates ~frequent =
  if Ppdm_obs.Metrics.enabled () then begin
    Ppdm_obs.Metrics.add
      (Printf.sprintf "apriori.level%d.candidates" size)
      (List.length candidates);
    Ppdm_obs.Metrics.add
      (Printf.sprintf "apriori.level%d.frequent" size)
      (List.length frequent)
  end

(* Per-level phase span (and, through it, a timeline slice): which level
   a miner stalls on is invisible in the aggregate span totals.  The name
   is computed, so the disabled path stays one flag check. *)
let with_level_span ~size f =
  if Ppdm_obs.Metrics.any_enabled () then
    Ppdm_obs.Span.with_ ~name:(Printf.sprintf "apriori.level%d" size) f
  else f ()

(* The engine-independent level-wise loop, shared by every Apriori driver
   (sequential and parallel, row-major and columnar): seed with level 1,
   then generate-count-filter until the cap or an empty level.  All
   engines produce Itemset.compare-sorted (itemset, count) lists with
   identical counts, so the mined output is byte-identical across
   drivers. *)
let run_levels ?max_size ~threshold ~level1 ~count_level () =
  let cap = Option.value max_size ~default:max_int in
  let level1 = with_level_span ~size:1 level1 in
  record_level ~size:1 ~candidates:level1 ~frequent:level1;
  let rec levels acc current size =
    if size > cap || current = [] then acc
    else begin
      let next =
        with_level_span ~size (fun () ->
            let candidates =
              candidates_from ~frequent:(List.map fst current) ~size
            in
            if candidates = [] then []
            else begin
              let counted = count_level candidates in
              let next = List.filter (fun (_, c) -> c >= threshold) counted in
              record_level ~size ~candidates ~frequent:next;
              next
            end)
      in
      (* rev_append, not (@): the final sort fixes the order, and
         appending per level is quadratic in the output size. *)
      levels (List.rev_append next acc) next (size + 1)
    end
  in
  let result = if cap < 1 then [] else levels level1 level1 2 in
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) result

type counter =
  | Trie
  | Vertical
  | Auto
  | Sampled of { fraction : float; seed : int }

(* Auto: the transpose pays off once dense tid-sets span at least one
   full word; below 62 transactions the trie's per-transaction walk is
   already trivially cheap. *)
let resolve_counter counter db =
  match counter with
  | Trie -> `Trie
  | Vertical -> `Vertical
  | Auto ->
      if Db.length db >= Bitset.bits_per_word then `Vertical else `Trie
  | Sampled { fraction; seed } ->
      if not (fraction > 0. && fraction <= 1.) then
        invalid_arg "Apriori.resolve_counter: sampled fraction out of (0,1]";
      `Sampled (fraction, seed)

let mine ?max_size ?(counter = Trie) db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Apriori.mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"apriori.mine" (fun () ->
      let n = Db.length db in
      let threshold = absolute_threshold ~n ~min_support in
      let count_level =
        match resolve_counter counter db with
        | `Trie ->
            Ppdm_obs.Metrics.incr "apriori.counter.trie";
            fun candidates -> Count.support_counts db candidates
        | `Vertical ->
            Ppdm_obs.Metrics.incr "apriori.counter.vertical";
            (* Lazy: a run capped at level 1 never needs the transpose. *)
            let state =
              lazy
                (let vt = Vertical.of_db db in
                 (vt, Vertical.make_scratch vt))
            in
            fun candidates ->
              let vt, scratch = Lazy.force state in
              Vertical.support_counts ~scratch vt candidates
        | `Sampled (fraction, seed) ->
            Ppdm_obs.Metrics.incr "apriori.counter.sampled";
            (* Counts come back pre-scaled to full-database equivalents,
               so the threshold comparison below is unchanged; level 1
               stays exact (it reads Db.item_counts, not the sample). *)
            let state =
              lazy
                (let vt = Vertical.of_db db in
                 let plan =
                   Sampled.plan ~n:(Vertical.length vt)
                     ~word_count:(Vertical.word_count vt) ~fraction ~seed ()
                 in
                 (vt, Vertical.make_scratch vt, plan))
            in
            fun candidates ->
              let vt, scratch, plan = Lazy.force state in
              Sampled.support_counts ~scratch vt plan candidates
      in
      run_levels ?max_size ~threshold
        ~level1:(fun () -> level1 db ~threshold)
        ~count_level ())

(* Mine an already-vertical database — the entry point for columnar
   input, where no Db.t ever exists: level 1 seeds from the per-item
   counts and every level counts on the (possibly compressed) tid-sets
   in place. *)
let mine_vertical ?max_size vt ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Apriori.mine_vertical: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"apriori.mine" (fun () ->
      Ppdm_obs.Metrics.incr "apriori.counter.vertical";
      let threshold =
        absolute_threshold ~n:(Vertical.length vt) ~min_support
      in
      let counts =
        Array.init (Vertical.universe vt) (Vertical.item_count vt)
      in
      let scratch = Vertical.make_scratch vt in
      run_levels ?max_size ~threshold
        ~level1:(fun () -> level1_of_counts counts ~threshold)
        ~count_level:(fun candidates ->
          Vertical.support_counts ~scratch vt candidates)
        ())
