open Ppdm_data

(* Self-join: two (k-1)-itemsets sharing their first k-2 items produce a
   k-candidate; the prune then requires every (k-1)-subset to be frequent. *)
let candidates_from ~frequent ~size =
  if size < 2 then invalid_arg "Apriori.candidates_from: size must be >= 2";
  let known = Hashtbl.create (2 * List.length frequent) in
  List.iter (fun s -> Hashtbl.replace known s ()) frequent;
  let arrays = List.map Itemset.to_array frequent in
  let sorted =
    List.sort compare (List.filter (fun a -> Array.length a = size - 1) arrays)
  in
  let shares_prefix a b =
    let ok = ref true in
    for i = 0 to size - 3 do
      if a.(i) <> b.(i) then ok := false
    done;
    !ok
  in
  let all_subsets_frequent candidate =
    let ok = ref true in
    let k = Array.length candidate in
    for drop = 0 to k - 1 do
      if !ok then begin
        let sub =
          Array.init (k - 1) (fun i -> if i < drop then candidate.(i) else candidate.(i + 1))
        in
        if not (Hashtbl.mem known (Itemset.of_sorted_array_unchecked sub)) then
          ok := false
      end
    done;
    !ok
  in
  let rec join acc = function
    | [] -> acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if shares_prefix a b && a.(size - 2) < b.(size - 2) then begin
                let candidate = Array.append a [| b.(size - 2) |] in
                Ppdm_obs.Metrics.incr "apriori.candidates.joined";
                if all_subsets_frequent candidate then
                  Itemset.of_sorted_array_unchecked candidate :: acc
                else begin
                  Ppdm_obs.Metrics.incr "apriori.candidates.pruned";
                  acc
                end
              end
              else acc)
            acc rest
        in
        join acc rest
  in
  List.rev (join [] sorted)

let absolute_threshold ~n ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Apriori.absolute_threshold: min_support out of (0,1]";
  Threshold.absolute ~n ~min_support

(* Level 1 straight from the per-item counts. *)
let level1 db ~threshold =
  Db.item_counts db |> Array.to_seqi
  |> Seq.filter_map (fun (item, c) ->
         if c >= threshold then Some (Itemset.singleton item, c) else None)
  |> List.of_seq

(* Per-level observability shared with the parallel driver: candidate and
   survivor counts per Apriori level (names are computed, so the whole
   block sits behind the enabled flag). *)
let record_level ~size ~candidates ~frequent =
  if Ppdm_obs.Metrics.enabled () then begin
    Ppdm_obs.Metrics.add
      (Printf.sprintf "apriori.level%d.candidates" size)
      (List.length candidates);
    Ppdm_obs.Metrics.add
      (Printf.sprintf "apriori.level%d.frequent" size)
      (List.length frequent)
  end

(* Per-level phase span (and, through it, a timeline slice): which level
   a miner stalls on is invisible in the aggregate span totals.  The name
   is computed, so the disabled path stays one flag check. *)
let with_level_span ~size f =
  if Ppdm_obs.Metrics.any_enabled () then
    Ppdm_obs.Span.with_ ~name:(Printf.sprintf "apriori.level%d" size) f
  else f ()

let mine ?max_size db ~min_support =
  if min_support <= 0. || min_support > 1. then
    invalid_arg "Apriori.mine: min_support out of (0,1]";
  Ppdm_obs.Span.with_ ~name:"apriori.mine" (fun () ->
      let n = Db.length db in
      let threshold = absolute_threshold ~n ~min_support in
      let cap = Option.value max_size ~default:max_int in
      let level1 = with_level_span ~size:1 (fun () -> level1 db ~threshold) in
      record_level ~size:1 ~candidates:level1 ~frequent:level1;
      let rec levels acc current size =
        if size > cap || current = [] then acc
        else begin
          let next =
            with_level_span ~size (fun () ->
                let candidates =
                  candidates_from ~frequent:(List.map fst current) ~size
                in
                if candidates = [] then []
                else begin
                  let counted = Count.support_counts db candidates in
                  let next =
                    List.filter (fun (_, c) -> c >= threshold) counted
                  in
                  record_level ~size ~candidates ~frequent:next;
                  next
                end)
          in
          (* rev_append, not (@): the final sort fixes the order, and
             appending per level is quadratic in the output size. *)
          levels (List.rev_append next acc) next (size + 1)
        end
      in
      let result = if cap < 1 then [] else levels level1 level1 2 in
      List.sort (fun (a, _) (b, _) -> Itemset.compare a b) result)
