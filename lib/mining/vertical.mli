(** Vertical bitmap counting engine: word-level support counting for the
    level-wise miners.

    The horizontal layouts pay per-transaction costs — {!Count} walks a
    hash trie per transaction per level, {!Eclat} merged sorted tid arrays
    element by element.  This engine transposes the database {e once} into
    per-item {e tid-sets} (the set of transaction indices containing the
    item) in one of two adaptive representations chosen by item density:

    - {b dense}: one bit per transaction, packed into 62-bit words
      ({!Ppdm_data.Bitset.bits_per_word}) — intersections are word-wide
      [land]s and supports are SWAR popcounts;
    - {b sparse}: a strictly increasing tid array — rare items stay small,
      and sparse∧dense intersections are per-tid probes.

    A candidate's support is the cardinality of the intersection of its
    items' tid-sets.  Candidate batches are counted through reusable
    {!scratch} buffers with the shared (k-1)-prefix intersection reused
    across a sorted candidate run, so steady-state counting performs one
    intersection per candidate and {e no per-candidate allocation}.

    Counting can be restricted to a window of bitmap words
    ([word_lo..word_hi)], i.e. a tid range) and to a sub-range of the
    prepared candidate batch ([cand_lo..cand_hi)]): partial counts over
    disjoint windows sum to the full count, and candidate columns simply
    concatenate — which is how the parallel runtime shards the engine
    over a 2-D (tid-window x candidate-range) grid without changing any
    result.

    The AND/popcount/probe inner loops exist in a safe (bounds-checked)
    and an [Array.unsafe_get] variant; {!set_unsafe_kernels} flips the
    process-global selection (default: safe).  Counts are identical —
    the differential suite enforces it — only the bounds checks go. *)

open Ppdm_data

type t
(** The vertical form of one database: per-item tid-sets plus item
    counts.  Immutable once built; safe to share across domains. *)

val of_db : ?dense_cutoff:float -> Db.t -> t
(** Transpose an in-RAM database (one pass after {!Db.item_counts}).  An
    item goes dense when its support fraction is at least [dense_cutoff];
    the default [1/62] is the memory break-even point, where the bitmap
    is no larger than the tid array it replaces.
    @raise Invalid_argument if [dense_cutoff] is negative (or NaN). *)

val load : ?dense_cutoff:float -> Db.t -> t
(** Alias of {!of_db} (the historic name — [of_db] marks it as one
    constructor among several now that columns can also come from a
    {!Ppdm_data.Colfile}). *)

val of_colfile : Colfile.t -> t
(** Load from an open columnar file: every item arrives as a {e
    compressed} column counted in place — the row-major database is never
    materialized, so peak memory is the compressed payload plus the
    directory.  Emits the ["columnar.load"] span and [columnar.*]
    counters when observation is enabled.
    @raise Colfile.Error on corrupt container data. *)

val compress : t -> t
(** Re-encode every tid-set as a compressed column (shares nothing with
    the input's bitmaps/arrays).  Counts are unchanged — the differential
    suite holds [compress]ed counting bit-identical to the plain
    engine — which makes this the file-free way to drive the compressed
    kernels. *)

val to_db : t -> Db.t
(** Transpose back to the row-major form (exact inverse of {!of_db} up to
    representation), for pipelines that need a [Db.t] — e.g. randomizing
    a database that was loaded from a columnar file. *)

val resident_bytes : t -> int
(** Bytes held by the tid-set payloads under the current representations
    (8 per bitmap word or tid, serialized container size per compressed
    column) — the number the columnar format is trying to shrink. *)

val container_stats : t -> Column.stats
(** Aggregate container census over the compressed columns (zero if
    nothing is compressed). *)

val word_alignment : t -> int
(** Preferred word-window alignment for sharding: {!Column.block_words}
    when any column is compressed (cells then cut at container-block
    seams), 1 otherwise.  Alignment is a locality hint only — windows of
    any alignment count correctly. *)

val length : t -> int
(** Number of transactions (the tid range is [0..length-1]). *)

val universe : t -> int
val word_count : t -> int
(** Number of 62-bit words a dense tid-set spans: [ceil (length / 62)]. *)

val item_count : t -> int -> int
(** Support count of a single item (0 for an item outside the universe is
    {e not} provided here — the item must be in [0..universe-1]). *)

val dense_items : t -> int
val sparse_items : t -> int
val compressed_items : t -> int
(** How many items landed in each representation. *)

val set_unsafe_kernels : bool -> unit
(** Select the bounds-check-free counting kernels (process-global,
    default [false]).  Safe to flip only at a quiescent point — not while
    another domain is counting.  Every index the unsafe kernels touch is
    in bounds by construction ({!count_into} validates its window, dense
    bitmaps span exactly {!word_count} words, sparse tids are below
    {!length}), and the kernel differential tests hold both variants to
    identical outputs on every width class. *)

val unsafe_kernels_enabled : unit -> bool

(** {2 Tid-sets}

    The adaptive tid-set itself, exposed so {!Eclat} can run its
    depth-first search on the same hybrid representation:
    dense∧dense is a word-wide AND, sparse∧dense a probe, sparse∧sparse
    the classic sorted merge. *)

type tidset

val item_tidset : t -> int -> tidset
val tidset_cardinal : tidset -> int

val tidset_is_dense : tidset -> bool
(** [false] for sparse {e and} compressed tid-sets. *)

val tidset_is_compressed : tidset -> bool

val tidset_tids : tidset -> int array
(** The ascending tids, materialized (fresh array). *)

val tidset_of_tids : n:int -> dense:bool -> int array -> tidset
(** Build a tid-set over [n] transactions from strictly increasing tids in
    [0..n-1], forcing the given representation — the test harness uses
    this to cross-check every intersection kernel pair.
    @raise Invalid_argument on out-of-range or non-increasing tids. *)

val inter_tidsets : tidset -> tidset -> tidset * int
(** Intersection and its cardinality.  The result representation is
    adaptive: it goes sparse when that is the smaller encoding, so deep
    Eclat chains degrade from word ANDs to cheap probes as tid-sets
    shrink.  A compressed operand is materialized into the cheaper plain
    shape first (Eclat leaves the compressed domain at its first
    intersection; the windowed batch kernels never do).  Cardinalities
    (and therefore all mined counts) never depend on representation
    choices.
    @raise Invalid_argument on dense operands of different word counts. *)

(** {2 Batch counting} *)

type scratch
(** Reusable intersection buffers (one per prefix depth, grown on
    demand).  Not shared between domains: one scratch per worker. *)

val make_scratch : t -> scratch

type prepared
(** A candidate batch, sorted by {!Itemset.compare} and deduplicated —
    the order that makes shared prefixes adjacent, and the order of every
    result list. *)

val prepare : Itemset.t list -> prepared
(** @raise Invalid_argument on an empty candidate (as {!Count.add}). *)

val prepared_length : prepared -> int

val count_into :
  ?scratch:scratch -> t -> ?word_lo:int -> ?word_hi:int -> ?cand_lo:int ->
  ?cand_hi:int -> prepared -> int array
(** Support counts for candidates [cand_lo..cand_hi) (defaults: the whole
    batch) in [prepared] order, restricted to transactions whose tid
    falls in words [word_lo..word_hi) (defaults: the full database).  The
    result has [cand_hi - cand_lo] entries.  Counts over disjoint windows
    sum to the full-window counts and candidate columns concatenate — the
    two sharding identities the parallel 2-D grid relies on.  A candidate
    containing an item outside the universe counts 0, as with the trie.
    @raise Invalid_argument on a window outside [0, word_count] or a
    candidate range outside [0, prepared_length]. *)

val count_runs :
  ?scratch:scratch -> t -> runs:(int * int) array -> prepared -> int array
(** Sum of {!count_into} over several [\[lo, hi)] word runs, in one pass:
    equal to per-run [count_into] results added together, but candidates
    of size at most 2 are counted candidate-outer so the per-candidate
    dispatch cost is paid once rather than once per run — the sampled
    counter's kernel, where runs are a few words wide and the candidate
    batch is large.
    @raise Invalid_argument on a run outside [0, word_count]. *)

val assemble : prepared -> int array -> (Itemset.t * int) list
(** Pair a {!count_into} result (or a sum of them) back with its
    itemsets, in {!Itemset.compare} order — the exact shape
    {!Count.support_counts} returns.
    @raise Invalid_argument on a length mismatch. *)

val support_counts :
  ?scratch:scratch -> t -> Itemset.t list -> (Itemset.t * int) list
(** [prepare] + [count_into] + [assemble]: drop-in replacement for
    {!Count.support_counts} — byte-identical output on the same
    database. *)

val support_count : ?scratch:scratch -> t -> Itemset.t -> int
(** Support of a single itemset.
    @raise Invalid_argument if it is empty. *)
