open Ppdm_prng
open Ppdm_data
open Ppdm_linalg
open Ppdm

(* ------------------------------------------------- special functions *)

let erfc x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -.z *. z -. 1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp poly in
  if x >= 0. then ans else 2. -. ans

let gammln x =
  let cof =
    [|
      76.18009172947146; -86.50532032941677; 24.01409824083091;
      -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5;
    |]
  in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  let y = ref x in
  for j = 0 to 5 do
    y := !y +. 1.;
    ser := !ser +. (cof.(j) /. !y)
  done;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

(* Regularized incomplete gamma P(a, x) by series (valid for x < a + 1). *)
let gamma_series a x =
  let gln = gammln a in
  let ap = ref a in
  let del = ref (1. /. a) in
  let sum = ref !del in
  (try
     for _ = 1 to 300 do
       ap := !ap +. 1.;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if Float.abs !del < Float.abs !sum *. 1e-12 then raise Exit
     done
   with Exit -> ());
  !sum *. exp (-.x +. (a *. log x) -. gln)

(* Regularized incomplete gamma Q(a, x) by continued fraction (x >= a+1). *)
let gamma_cont_frac a x =
  let gln = gammln a in
  let fpmin = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 300 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < fpmin then d := fpmin;
       c := !b +. (an /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < 1e-12 then raise Exit
     done
   with Exit -> ());
  exp (-.x +. (a *. log x) -. gln) *. !h

let reg_gamma_q a x =
  if x < 0. || a <= 0. then invalid_arg "Stat.reg_gamma_q";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gamma_series a x
  else gamma_cont_frac a x

let chi_square_pvalue ~dof x =
  if dof <= 0 then invalid_arg "Stat.chi_square_pvalue: dof must be positive";
  if x <= 0. then 1. else reg_gamma_q (float_of_int dof /. 2.) (x /. 2.)

let z_pvalue z = erfc (Float.abs z /. sqrt 2.)

let chi_square_fit ~observed ~expected =
  let n = Array.length observed in
  if Array.length expected <> n then
    invalid_arg "Stat.chi_square_fit: length mismatch";
  (* Pool buckets left-to-right until each pooled cell has expected mass
     at least 5; the remainder folds into the last cell. *)
  let cells = ref [] in
  let obs_acc = ref 0. and exp_acc = ref 0. in
  for i = 0 to n - 1 do
    obs_acc := !obs_acc +. float_of_int observed.(i);
    exp_acc := !exp_acc +. expected.(i);
    if !exp_acc >= 5. then begin
      cells := (!obs_acc, !exp_acc) :: !cells;
      obs_acc := 0.;
      exp_acc := 0.
    end
  done;
  if !exp_acc > 0. || !obs_acc > 0. then begin
    match !cells with
    | (o, e) :: tl -> cells := (o +. !obs_acc, e +. !exp_acc) :: tl
    | [] -> cells := [ (!obs_acc, !exp_acc) ]
  end;
  let cells = List.rev !cells in
  match cells with
  | [] | [ _ ] -> 1.
  | _ ->
      if List.exists (fun (o, e) -> e <= 0. && o > 0.) cells then 0.
      else begin
        let stat =
          List.fold_left
            (fun acc (o, e) ->
              if e <= 0. then acc else acc +. (((o -. e) ** 2.) /. e))
            0. cells
        in
        chi_square_pvalue ~dof:(List.length cells - 1) stat
      end

(* ------------------------------------------------- transition validation *)

let transition_pvalue ?samples ~scheme ~size ~k ~l rng =
  let samples =
    match samples with Some s -> max 100 s | None -> Property.scaled ~base:20000
  in
  if k > size then invalid_arg "Stat.transition_pvalue: k must not exceed size";
  if l < 0 || l > min k size then
    invalid_arg "Stat.transition_pvalue: l outside [0, min k size]";
  let u = Randomizer.universe scheme in
  if u < size + (k - l) then
    invalid_arg "Stat.transition_pvalue: universe too small to embed t and A";
  let t = Itemset.of_list (List.init size Fun.id) in
  let a =
    Itemset.of_list
      (List.init l Fun.id @ List.init (k - l) (fun i -> size + i))
  in
  let p = Transition.of_scheme scheme ~size ~k in
  let expected =
    Array.init (k + 1) (fun l' -> float_of_int samples *. Mat.get p l' l)
  in
  let observed = Array.make (k + 1) 0 in
  for _ = 1 to samples do
    let y = Randomizer.apply scheme rng t in
    let l' = Itemset.inter_size y a in
    observed.(l') <- observed.(l') + 1
  done;
  chi_square_fit ~observed ~expected

(* ------------------------------------------------- amplification bound *)

let log_binom m a =
  gammln (float_of_int (m + 1))
  -. gammln (float_of_int (a + 1))
  -. gammln (float_of_int (m - a + 1))

(* Exact p(t -> y) of a select-a-size operator: keep exactly y cap t (a
   uniformly chosen |y cap t|-subset given the drawn keep size), insert
   exactly y \ t from the universe outside t. *)
let transition_prob (r : Randomizer.resolved) ~universe ~size t y =
  let a = Itemset.inter_size y t in
  let b = Itemset.cardinal y - a in
  let outside = universe - size in
  let pa = r.keep_dist.(a) in
  let rho = r.rho in
  if pa = 0. then 0.
  else if rho = 0. && b > 0 then 0.
  else if rho = 1. && b < outside then 0.
  else begin
    let log_rho_part =
      (if b = 0 then 0. else float_of_int b *. log rho)
      +.
      if outside - b = 0 then 0.
      else float_of_int (outside - b) *. log (1. -. rho)
    in
    exp (log pa -. log_binom size a +. log_rho_part)
  end

let random_subset rng ~universe ~card =
  let idx = Array.init universe Fun.id in
  for i = 0 to card - 1 do
    let j = Rng.int_in_range rng ~lo:i ~hi:(universe - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Itemset.of_array (Array.sub idx 0 card)

let amplification_check ?trials ~scheme ~size rng =
  let trials =
    match trials with Some t -> max 1 t | None -> Property.scaled ~base:300
  in
  let gamma = Amplification.gamma scheme ~size in
  if gamma = infinity then Ok ()
  else begin
    let universe = Randomizer.universe scheme in
    let r = Randomizer.resolve scheme ~size in
    let tolerance = 1. +. 1e-6 in
    let rec go trial =
      if trial >= trials then Ok ()
      else begin
        let t1 = random_subset rng ~universe ~card:size in
        let t2 = random_subset rng ~universe ~card:size in
        let y = random_subset rng ~universe ~card:(Rng.int rng (universe + 1)) in
        let p1 = transition_prob r ~universe ~size t1 y in
        let p2 = transition_prob r ~universe ~size t2 y in
        if p1 > gamma *. p2 *. tolerance || p2 > gamma *. p1 *. tolerance then
          Error
            (Printf.sprintf
               "amplification bound violated at trial %d: gamma=%.6g but \
                p(%s -> %s)=%.6g vs p(%s -> %s)=%.6g"
               trial gamma (Itemset.to_string t1) (Itemset.to_string y) p1
               (Itemset.to_string t2) (Itemset.to_string y) p2)
        else go (trial + 1)
      end
    in
    go 0
  end

(* ------------------------------------------------- estimator unbiasedness *)

let estimator_bias_pvalue ?trials ~scheme ~db ~itemset rng =
  let trials =
    match trials with Some t -> max 3 t | None -> Property.scaled ~base:60
  in
  let truth = Db.support db itemset in
  let ests =
    Array.init trials (fun i ->
        let child = Rng.derive rng ~index:i in
        let data = Randomizer.apply_db_tagged scheme child db in
        (Estimator.estimate ~scheme ~data ~itemset).Estimator.support)
  in
  let mean = Stats.mean ests in
  let sd = Stats.std ests in
  if sd = 0. then if Float.abs (mean -. truth) < 1e-9 then 1. else 0.
  else z_pvalue ((mean -. truth) /. (sd /. sqrt (float_of_int trials)))

(* --------------------------------------------------- sampled counting *)

(* Standardized sampled-vs-exact errors of the counting layer: one z per
   plan seed, each normalized by the FPC sampling sigma at the exact
   support.  Exhaustive plans (tiny databases or a fraction rounding to
   everything) carry no sampling noise and are skipped. *)
let sampled_support_zs ~db ~itemset ~fraction ~seeds =
  if not (fraction > 0. && fraction < 1.) then
    invalid_arg "Stat.sampled_support_zs: fraction must be inside (0,1)";
  let vt = Ppdm_mining.Vertical.load db in
  let n = Db.length db in
  let word_count = Ppdm_mining.Vertical.word_count vt in
  let exact = Db.support_count db itemset in
  let s_exact = float_of_int exact /. float_of_int n in
  let zs = ref [] in
  for seed = 0 to seeds - 1 do
    let plan = Ppdm_mining.Sampled.plan ~n ~word_count ~fraction ~seed () in
    if not (Ppdm_mining.Sampled.is_exhaustive plan) then begin
      let sigma =
        Estimator.sampling_sigma ~support:s_exact
          ~n:plan.Ppdm_mining.Sampled.sample ~population:n
      in
      let c =
        match Ppdm_mining.Sampled.support_counts vt plan [ itemset ] with
        | [ (_, c) ] -> c
        | _ -> assert false
      in
      let s_hat = float_of_int c /. float_of_int n in
      if sigma > 0. then zs := ((s_hat -. s_exact) /. sigma) :: !zs
      else if Float.abs (s_hat -. s_exact) > 1e-9 then
        (* zero predicted noise but a wrong count: certain failure *)
        zs := Float.infinity :: !zs
    end
  done;
  List.rev !zs

let mean_z_pvalue = function
  | [] -> 1.
  | zs ->
      let k = List.length zs in
      z_pvalue (List.fold_left ( +. ) 0. zs /. sqrt (float_of_int k))

let sampled_counts_pvalue ?seeds ~db ~itemset ~fraction () =
  let seeds =
    match seeds with Some s -> max 3 s | None -> Property.scaled ~base:40
  in
  mean_z_pvalue (sampled_support_zs ~db ~itemset ~fraction ~seeds)

(* Binomial-tail allowance: with [k] independent trials each missing with
   probability [alpha], allow up to mean + 3.1 sd misses (one-sided
   p ~ 1e-3), never fewer than 2. *)
let allowed_misses ~k ~alpha =
  let mu = alpha *. float_of_int k in
  let sd = sqrt (mu *. (1. -. alpha)) in
  max 2 (int_of_float (Float.ceil (mu +. (3.1 *. sd))))

let coverage_of_zs ~what ~z zs =
  let k = List.length zs in
  if k = 0 then Ok ()
  else begin
    let misses = List.length (List.filter (fun x -> Float.abs x > z) zs) in
    let allowed = allowed_misses ~k ~alpha:(z_pvalue z) in
    if misses <= allowed then Ok ()
    else
      Error
        (Printf.sprintf
           "%s: %d of %d runs fell outside %.2f sigma (allowed %d)" what
           misses k z allowed)
  end

let sampled_sigma_coverage ?seeds ?(z = 1.959964) ~db ~itemset ~fraction () =
  let seeds =
    match seeds with Some s -> max 3 s | None -> Property.scaled ~base:40
  in
  coverage_of_zs ~what:"sampled sigma coverage" ~z
    (sampled_support_zs ~db ~itemset ~fraction ~seeds)

(* Deterministic seeded uniform row sample, the recover-side sampling
   design (kept in sync with the CLI's). *)
let sample_rows data ~fraction ~seed =
  let n = Array.length data in
  let m =
    max 1 (min n (int_of_float (Float.round (fraction *. float_of_int n))))
  in
  if m = n then data
  else begin
    let idx = Array.init n Fun.id in
    let rng = Rng.create ~seed () in
    for i = 0 to m - 1 do
      let j = i + Rng.int rng (n - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    let chosen = Array.sub idx 0 m in
    Array.sort Int.compare chosen;
    Array.map (fun i -> data.(i)) chosen
  end

(* End-to-end honest-sigma errors: per trial, randomize the database
   afresh, estimate from a row sample with the sampling variance folded
   in, and standardize against the full-data estimate — the difference's
   variance is the combined variance minus the shared randomization
   part, sigma_s^2 - sigma_f^2. *)
let combined_sigma_zs ~scheme ~db ~itemset ~fraction ~trials rng =
  if not (fraction > 0. && fraction < 1.) then
    invalid_arg "Stat.combined_sigma_zs: fraction must be inside (0,1)";
  let n = Db.length db in
  let zs = ref [] in
  for trial = 0 to trials - 1 do
    let child = Rng.derive rng ~index:trial in
    let data = Randomizer.apply_db_tagged scheme child db in
    let sampled = sample_rows data ~fraction ~seed:trial in
    if Array.length sampled < n then begin
      let e_f = Estimator.estimate ~scheme ~data ~itemset in
      let e_s =
        Estimator.estimate_sampled ~population:n ~scheme ~data:sampled ~itemset
      in
      let var_d =
        (e_s.Estimator.sigma *. e_s.Estimator.sigma)
        -. (e_f.Estimator.sigma *. e_f.Estimator.sigma)
      in
      if var_d > 0. then
        zs :=
          ((e_s.Estimator.support -. e_f.Estimator.support) /. sqrt var_d)
          :: !zs
    end
  done;
  List.rev !zs

let combined_sigma_pvalue ?trials ~scheme ~db ~itemset ~fraction rng =
  let trials =
    match trials with Some t -> max 3 t | None -> Property.scaled ~base:30
  in
  mean_z_pvalue (combined_sigma_zs ~scheme ~db ~itemset ~fraction ~trials rng)

let combined_sigma_coverage ?trials ?(z = 1.959964) ~scheme ~db ~itemset
    ~fraction rng =
  let trials =
    match trials with Some t -> max 3 t | None -> Property.scaled ~base:30
  in
  coverage_of_zs ~what:"combined sigma coverage" ~z
    (combined_sigma_zs ~scheme ~db ~itemset ~fraction ~trials rng)
