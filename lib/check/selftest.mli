(** The in-process verification suite behind [ppdm selftest].

    A curated pass over all three pillars of the harness — generators,
    differential/metamorphic oracles, statistical assertions — plus the
    fault-injection scenarios and the parser fuzz round-trips.  It runs
    against the installed code in the current process (no test runner,
    no build tree), so a production binary can smoke-check itself; the
    CLI maps a clean report to exit code 0.

    Runtime scales linearly with [count]; the default
    ({!Property.default_count}) finishes in a few seconds, [~count:25]
    is a sub-second smoke. *)

type outcome = { name : string; ok : bool; detail : string }
(** [detail] is empty for a pass and carries the failure report — seed,
    shrunk counterexample, reason — for a failure. *)

type report = { passed : int; failed : int; outcomes : outcome list }

val run : ?count:int -> ?seed:int -> ?log:(string -> unit) -> unit -> report
(** Run every check.  [count] is the per-property case count (default
    [$PPDM_CHECK_COUNT] or 100); statistical sample sizes scale with it.
    [seed] (default 42) makes the whole run deterministic.  [log] is
    called with one line per check as it completes (default: silent). *)

val ok : report -> bool
(** [failed = 0]. *)
