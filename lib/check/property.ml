open Ppdm_prng

exception Failed of string

type failure = {
  seed : int;
  case : int;
  size : int;
  shrink_steps : int;
  counterexample : string;
  message : string;
}

type result = { name : string; cases : int; failure : failure option }

(* A fixed default seed keeps plain `dune runtest` deterministic; CI's
   deep-fuzz job overrides it through the environment and echoes the
   value so any failure is replayable from the logs. *)
let default_seed = 0x00c4ec5eed

let env_int name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)

let env_count ~default = max 1 (env_int "PPDM_CHECK_COUNT" ~default)
let default_count () = env_count ~default:100
let scaled ~base = max base (base * default_count () / 100)

let run_one prop x =
  match prop x with
  | Ok () -> None
  | Error m -> Some m
  | exception e -> Some ("raised " ^ Printexc.to_string e)

let max_shrink_steps = 400

let rec shrink_loop g prop x msg steps =
  if steps >= max_shrink_steps then (x, msg, steps)
  else
    match
      Seq.find_map
        (fun c ->
          match run_one prop c with Some m -> Some (c, m) | None -> None)
        (Gen.shrink g x)
    with
    | Some (c, m) -> shrink_loop g prop c m (steps + 1)
    | None -> (x, msg, steps)

let check_result ?seed ?count ?(max_size = 30) ~name g prop =
  let seed =
    match seed with
    | Some s -> s
    | None -> env_int "PPDM_CHECK_SEED" ~default:default_seed
  in
  let count = match count with Some c -> max 1 c | None -> default_count () in
  let root = Rng.create ~seed () in
  let fail ~case ~size ~shrink_steps ~counterexample ~message =
    {
      name;
      cases = case + 1;
      failure =
        Some { seed; case; size; shrink_steps; counterexample; message };
    }
  in
  let rec loop i =
    if i >= count then { name; cases = count; failure = None }
    else
      let rng = Rng.derive root ~index:i in
      let size = 2 + (max_size - 2) * i / max 1 (count - 1) in
      match Gen.generate g rng ~size with
      | exception e ->
          fail ~case:i ~size ~shrink_steps:0 ~counterexample:"<none>"
            ~message:("generator raised " ^ Printexc.to_string e)
      | x -> (
          match run_one prop x with
          | None -> loop (i + 1)
          | Some msg ->
              let x, msg, steps = shrink_loop g prop x msg 0 in
              fail ~case:i ~size ~shrink_steps:steps
                ~counterexample:(Gen.print g x) ~message:msg)
  in
  loop 0

let check ?seed ?count ?max_size ~name g prop =
  check_result ?seed ?count ?max_size ~name g (fun x ->
      if prop x then Ok () else Error "property returned false")

let describe r =
  match r.failure with
  | None -> Printf.sprintf "property %S passed (%d cases)" r.name r.cases
  | Some f ->
      Printf.sprintf
        "property %S failed at case %d/%d (size %d, %d shrink steps)\n\
         counterexample: %s\n\
         reason: %s\n\
         replay: seed=%d (rerun with PPDM_CHECK_SEED=%d or ~seed:%d)"
        r.name f.case r.cases f.size f.shrink_steps f.counterexample
        f.message f.seed f.seed f.seed

let assert_ok r =
  match r.failure with None -> () | Some _ -> raise (Failed (describe r))
