(** Deterministic fault-injection scenarios.

    Each scenario arms a hook ({!Ppdm_runtime.Pool.inject_task_failure}
    or {!Ppdm_data.Io.inject_read_truncation}), drives the real code
    path, and asserts the documented failure contract: the error reaches
    the caller as the documented exception, sibling work still completes,
    nothing hangs, and no partial output escapes.  Every scenario disarms
    its hook in a [finally], so a failing scenario cannot poison later
    checks. *)

val pool_error_propagates :
  ?sched:Ppdm_runtime.Pool.sched -> jobs:int -> k:int -> n:int -> unit ->
  (unit, string) result
(** Run a batch of [n] tasks on a [jobs]-domain pool with the [k]-th
    armed to fail, under the given scheduler (default chunked).  Asserts:
    {!Ppdm_runtime.Pool.Injected_fault} reaches the caller; every other
    task ran to completion (no structural cancellation); and the pool
    still executes a clean follow-up batch (workers survive).  Requires
    [0 <= k < n]. *)

val stealing_fault_in_stolen_cell : jobs:int -> (unit, string) result
(** Force the armed task to execute as a {e stolen} cell under the
    stealing scheduler (the owner of its deque is parked until after the
    back-first steal order has taken it), and assert the same contract:
    the fault surfaces, the batch quiesces with every sibling completed,
    and the pool survives.  Requires [jobs >= 2]. *)

val map_reduce_fault_no_partial : jobs:int -> (unit, string) result
(** Arm a fault at a middle chunk of a [map_reduce] and assert the call
    raises rather than returning a partially reduced value. *)

val io_truncated_read_rejected : unit -> (unit, string) result
(** Write a database, arm a truncation mid-body, and assert
    {!Ppdm_data.Io.read_file} raises its documented [Failure] ("fewer
    transactions than declared") instead of returning a partial database
    — then that the same file reads back fully once disarmed. *)

val io_truncated_header_rejected : unit -> (unit, string) result
(** Truncation before the header must fail as "empty input". *)

val io_fimi_truncation_is_silent : unit -> (unit, string) result
(** The FIMI format declares no count, so truncation yields a shorter
    database with no error — asserted here to document the asymmetry the
    header format exists to close. *)

(** {1 Server scenarios}

    Each starts a real {!Ppdm_server.Serve} on an ephemeral loopback
    port, injects the fault as raw bytes on a client socket, and asserts
    the wire contract: the documented typed [Error] frame (or none, for
    a peer that vanishes), no lost valid reports, and — always — that a
    fresh session still gets a snapshot afterwards.  A misbehaving
    client takes down nothing but itself. *)

val server_oversized_frame_rejected : unit -> (unit, string) result
(** A frame header declaring more than the cap earns [Frame_too_large]
    and ends the session; the server keeps serving. *)

val server_malformed_length_rejected : unit -> (unit, string) result
(** A declared length of zero earns [Bad_frame]. *)

val server_truncated_frame_tolerated : unit -> (unit, string) result
(** A client that dies mid-frame is dropped silently (nothing to answer);
    the server keeps serving. *)

val server_mid_session_disconnect : unit -> (unit, string) result
(** Valid reports followed by an abrupt close: every report already on
    the wire is eventually folded, none double-counted. *)

val server_scheme_mismatch_rejected : unit -> (unit, string) result
(** A hello whose operator parameters differ from the server's earns
    [Scheme_mismatch] at handshake time. *)

val server_invalid_reports_rejected : unit -> (unit, string) result
(** An out-of-universe item and a size outside the handshake each earn
    their typed error while the session {e continues}; a subsequent
    valid report still lands, exactly once. *)

val client_oversized_send_rejected : unit -> (unit, string) result
(** A client configured with a small frame cap refuses to {e send} a
    message that encodes above it ([Invalid_argument], mirroring the
    read-side [Too_large]) — nothing reaches the wire, and the server
    keeps serving. *)

(** {1 Admin-plane scenarios}

    Each runs a server with the admin plane on (ephemeral port, 1ms
    sampler), replays a fixed deterministic report set, injects the
    fault over the admin socket or its timing, and asserts the one
    invariant that matters: the flushed estimates are {e bit-identical}
    to a sequential fold of the same reports.  The admin plane may
    degrade under abuse; the data plane may not move. *)

val admin_garbage_request_rejected : unit -> (unit, string) result
(** Raw non-HTTP bytes at the admin port earn a 400; the admin loop
    answers the next scrape and the estimates are unchanged. *)

val admin_oversized_request_rejected : unit -> (unit, string) result
(** A request whose headers never terminate within the size cap earns a
    413; the admin loop and the data plane survive. *)

val admin_scrape_racing_shutdown : unit -> (unit, string) result
(** A domain hammering [/metrics] races a server shutdown: every fetch
    returns (a response or a clean connection error, never a hang), at
    least one scrape succeeded, and the pre-shutdown estimates equal the
    sequential fold. *)

val admin_sampler_during_quiesce : unit -> (unit, string) result
(** With the sampler ticking every 1ms, repeated flushed snapshots
    (quiesce barriers) all equal the sequential fold — sampling reads
    never perturb the accumulators. *)
