open Ppdm_prng
open Ppdm_data
open Ppdm_runtime

let pool_error_propagates ~jobs ~k ~n =
  if k < 0 || k >= n then invalid_arg "Fault.pool_error_propagates: k outside [0, n)";
  Pool.with_pool ~jobs (fun pool ->
      let ran = Array.make n false in
      let first =
        Fun.protect ~finally:Pool.clear_fault_injection (fun () ->
            Pool.inject_task_failure ~k;
            match
              Pool.run pool (Array.init n (fun i -> fun () -> ran.(i) <- true))
            with
            | _ -> Error "injected fault did not surface"
            | exception Pool.Injected_fault _ ->
                let missing =
                  List.filter
                    (fun i -> i <> k && not ran.(i))
                    (List.init n Fun.id)
                in
                if missing <> [] then
                  Error
                    (Printf.sprintf "tasks lost after fault: %s"
                       (String.concat ","
                          (List.map string_of_int missing)))
                else if ran.(k) then
                  Error "the armed task ran its body anyway"
                else Ok ()
            | exception e ->
                Error ("unexpected exception: " ^ Printexc.to_string e))
      in
      match first with
      | Error _ as e -> e
      | Ok () -> (
          (* the pool must remain usable: workers never die *)
          match Pool.run pool (Array.init 4 (fun i -> fun () -> i * i)) with
          | [| 0; 1; 4; 9 |] -> Ok ()
          | _ -> Error "pool returned wrong results after a fault"
          | exception e ->
              Error ("pool unusable after a fault: " ^ Printexc.to_string e)))

let map_reduce_fault_no_partial ~jobs =
  Pool.with_pool ~jobs (fun pool ->
      Fun.protect ~finally:Pool.clear_fault_injection (fun () ->
          Pool.inject_task_failure ~k:1;
          let rng = Rng.create ~seed:7 () in
          match
            Pool.map_reduce pool ~rng ~n:5000 ~chunk:512
              ~map:(fun _ ~pos:_ ~len -> len)
              ~reduce:( + ) ()
          with
          | _ -> Error "fault did not surface through map_reduce"
          | exception Pool.Injected_fault _ -> Ok ()
          | exception e ->
              Error ("unexpected exception: " ^ Printexc.to_string e)))

let with_temp_db f =
  let db =
    Db.create ~universe:6
      (Array.map Itemset.of_list [| [ 0; 1 ]; [ 2 ]; [ 3; 4 ]; [ 5 ] |])
  in
  let path = Filename.temp_file "ppdm_fault" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file path db;
      Fun.protect ~finally:Io.clear_fault_injection (fun () -> f db path))

let io_truncated_read_rejected () =
  with_temp_db (fun db path ->
      (* header + 2 of the 4 declared transactions survive *)
      Io.inject_read_truncation ~lines:3;
      let truncated =
        match Io.read_file path with
        | partial ->
            Error
              (Printf.sprintf
                 "truncated read returned a partial database (%d transactions)"
                 (Db.length partial))
        | exception Failure _ -> Ok ()
        | exception e ->
            Error ("undocumented exception: " ^ Printexc.to_string e)
      in
      match truncated with
      | Error _ as e -> e
      | Ok () -> (
          Io.clear_fault_injection ();
          match Io.read_file path with
          | full when Db.length full = Db.length db -> Ok ()
          | full ->
              Error
                (Printf.sprintf "clean re-read lost transactions: %d of %d"
                   (Db.length full) (Db.length db))
          | exception e ->
              Error ("clean re-read failed: " ^ Printexc.to_string e)))

let io_truncated_header_rejected () =
  with_temp_db (fun _ path ->
      Io.inject_read_truncation ~lines:0;
      match Io.read_file path with
      | _ -> Error "header truncation returned a database"
      | exception Failure _ -> Ok ()
      | exception e ->
          Error ("undocumented exception: " ^ Printexc.to_string e))

let io_fimi_truncation_is_silent () =
  let db =
    Db.create ~universe:6
      (Array.map Itemset.of_list [| [ 0; 1 ]; [ 2 ]; [ 3; 4 ]; [ 5 ] |])
  in
  let path = Filename.temp_file "ppdm_fault" ".fimi" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_fimi path db;
      Fun.protect ~finally:Io.clear_fault_injection (fun () ->
          Io.inject_read_truncation ~lines:2;
          match Io.read_fimi path with
          | partial when Db.length partial = 2 -> Ok ()
          | partial ->
              Error
                (Printf.sprintf "expected 2 surviving transactions, got %d"
                   (Db.length partial))
          | exception e ->
              Error
                ("FIMI truncation should be silent, got "
                ^ Printexc.to_string e)))
