open Ppdm_prng
open Ppdm_data
open Ppdm_runtime

let pool_error_propagates ?sched ~jobs ~k ~n () =
  if k < 0 || k >= n then invalid_arg "Fault.pool_error_propagates: k outside [0, n)";
  Pool.with_pool ~jobs (fun pool ->
      let ran = Array.make n false in
      let first =
        Fun.protect ~finally:Pool.clear_fault_injection (fun () ->
            Pool.inject_task_failure ~k;
            match
              Pool.run ?sched pool
                (Array.init n (fun i -> fun () -> ran.(i) <- true))
            with
            | _ -> Error "injected fault did not surface"
            | exception Pool.Injected_fault _ ->
                let missing =
                  List.filter
                    (fun i -> i <> k && not ran.(i))
                    (List.init n Fun.id)
                in
                if missing <> [] then
                  Error
                    (Printf.sprintf "tasks lost after fault: %s"
                       (String.concat ","
                          (List.map string_of_int missing)))
                else if ran.(k) then
                  Error "the armed task ran its body anyway"
                else Ok ()
            | exception e ->
                Error ("unexpected exception: " ^ Printexc.to_string e))
      in
      match first with
      | Error _ as e -> e
      | Ok () -> (
          (* the pool must remain usable: workers never die *)
          match Pool.run ?sched pool (Array.init 4 (fun i -> fun () -> i * i)) with
          | [| 0; 1; 4; 9 |] -> Ok ()
          | _ -> Error "pool returned wrong results after a fault"
          | exception e ->
              Error ("pool unusable after a fault: " ^ Printexc.to_string e)))

(* The stealing scheduler gives each of the [jobs] workers a contiguous
   slice of 3 tasks; worker 0's slice is {0, 1, 2}.  Task 0 parks its
   owner until task 1 runs, thieves take a victim's tasks strictly
   back-to-front, and worker 0 can only reach task 2 after finishing
   tasks 0 and 1 — so in every interleaving the armed task 2 executes as
   a {e stolen} cell.  The assertions are the full failure contract: the
   fault surfaces as [Injected_fault], every sibling ran (quiescence —
   the batch drained even though a stolen cell failed), and the pool
   still executes a clean stealing batch afterwards. *)
let stealing_fault_in_stolen_cell ~jobs =
  if jobs < 2 then
    invalid_arg "Fault.stealing_fault_in_stolen_cell: jobs must be >= 2";
  Pool.with_pool ~jobs (fun pool ->
      let n = 3 * jobs in
      let unblock = Atomic.make false in
      let timed_out = Atomic.make false in
      let ran = Array.make n false in
      let task i () =
        if i = 0 then begin
          let deadline = Unix.gettimeofday () +. 5.0 in
          while (not (Atomic.get unblock)) && Unix.gettimeofday () < deadline do
            Domain.cpu_relax ()
          done;
          if not (Atomic.get unblock) then Atomic.set timed_out true
        end
        else if i = 1 then Atomic.set unblock true;
        ran.(i) <- true
      in
      let first =
        Fun.protect ~finally:Pool.clear_fault_injection (fun () ->
            Pool.inject_task_failure ~k:2;
            match Pool.run ~sched:Pool.Stealing pool (Array.init n task) with
            | _ -> Error "injected fault did not surface"
            | exception Pool.Injected_fault _ ->
                if Atomic.get timed_out then
                  Error "no steal occurred: the parked owner was never released"
                else if ran.(2) then Error "the armed task ran its body anyway"
                else begin
                  let missing =
                    List.filter
                      (fun i -> i <> 2 && not ran.(i))
                      (List.init n Fun.id)
                  in
                  if missing <> [] then
                    Error
                      (Printf.sprintf "tasks lost after a stolen-cell fault: %s"
                         (String.concat ","
                            (List.map string_of_int missing)))
                  else Ok ()
                end
            | exception e ->
                Error ("unexpected exception: " ^ Printexc.to_string e))
      in
      match first with
      | Error _ as e -> e
      | Ok () -> (
          match
            Pool.run ~sched:Pool.Stealing pool
              (Array.init 4 (fun i -> fun () -> i * i))
          with
          | [| 0; 1; 4; 9 |] -> Ok ()
          | _ -> Error "pool returned wrong results after a stolen-cell fault"
          | exception e ->
              Error
                ("pool unusable after a stolen-cell fault: "
                ^ Printexc.to_string e)))

let map_reduce_fault_no_partial ~jobs =
  Pool.with_pool ~jobs (fun pool ->
      Fun.protect ~finally:Pool.clear_fault_injection (fun () ->
          Pool.inject_task_failure ~k:1;
          let rng = Rng.create ~seed:7 () in
          match
            Pool.map_reduce pool ~rng ~n:5000 ~chunk:512
              ~map:(fun _ ~pos:_ ~len -> len)
              ~reduce:( + ) ()
          with
          | _ -> Error "fault did not surface through map_reduce"
          | exception Pool.Injected_fault _ -> Ok ()
          | exception e ->
              Error ("unexpected exception: " ^ Printexc.to_string e)))

let with_temp_db f =
  let db =
    Db.create ~universe:6
      (Array.map Itemset.of_list [| [ 0; 1 ]; [ 2 ]; [ 3; 4 ]; [ 5 ] |])
  in
  let path = Filename.temp_file "ppdm_fault" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file path db;
      Fun.protect ~finally:Io.clear_fault_injection (fun () -> f db path))

let io_truncated_read_rejected () =
  with_temp_db (fun db path ->
      (* header + 2 of the 4 declared transactions survive *)
      Io.inject_read_truncation ~lines:3;
      let truncated =
        match Io.read_file path with
        | partial ->
            Error
              (Printf.sprintf
                 "truncated read returned a partial database (%d transactions)"
                 (Db.length partial))
        | exception Failure _ -> Ok ()
        | exception e ->
            Error ("undocumented exception: " ^ Printexc.to_string e)
      in
      match truncated with
      | Error _ as e -> e
      | Ok () -> (
          Io.clear_fault_injection ();
          match Io.read_file path with
          | full when Db.length full = Db.length db -> Ok ()
          | full ->
              Error
                (Printf.sprintf "clean re-read lost transactions: %d of %d"
                   (Db.length full) (Db.length db))
          | exception e ->
              Error ("clean re-read failed: " ^ Printexc.to_string e)))

let io_truncated_header_rejected () =
  with_temp_db (fun _ path ->
      Io.inject_read_truncation ~lines:0;
      match Io.read_file path with
      | _ -> Error "header truncation returned a database"
      | exception Failure _ -> Ok ()
      | exception e ->
          Error ("undocumented exception: " ^ Printexc.to_string e))

(* ------------------------------------------------ server-layer scenarios *)

module Serve = Ppdm_server.Serve
module Sclient = Ppdm_server.Client
module Wire = Ppdm_server.Wire
module Framing = Ppdm_server.Framing

open Ppdm

(* Every scenario runs against a real server on an ephemeral loopback
   port; the fault is injected as raw bytes on the socket, and the
   recovery assertion is always the same — a fresh session still gets a
   snapshot, i.e. a misbehaving client took down nothing but itself. *)
let server_scheme = Randomizer.uniform ~universe:16 ~p_keep:0.7 ~p_add:0.05

let with_server f =
  let server =
    Serve.start
      {
        (Serve.default_config ~scheme:server_scheme
           ~itemsets:[ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 2 ] ])
        with
        jobs = 2;
        shards = 2;
        batch = 8;
      }
  in
  Fun.protect ~finally:(fun () -> ignore (Serve.stop server)) (fun () -> f server)

let with_client server f =
  let c = Sclient.connect ~port:(Serve.port server) () in
  Fun.protect ~finally:(fun () -> Sclient.close c) (fun () -> f c)

let still_serving server =
  with_client server (fun c ->
      ignore (Sclient.handshake c ~sizes:[] ());
      let json = Sclient.snapshot c ~flush:false in
      if String.length json > 0 && json.[0] = '{' then Ok ()
      else Error "snapshot after the fault is not a JSON object")

let header_declaring n =
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int n);
  header

let server_oversized_frame_rejected () =
  with_server (fun server ->
      let reply =
        with_client server (fun c ->
            ignore (Sclient.handshake c ~sizes:[] ());
            Sclient.send_raw c (header_declaring (Framing.default_max_frame + 1));
            Sclient.read c)
      in
      match reply with
      | Ok (Wire.Error { code = Wire.Frame_too_large; _ }) -> still_serving server
      | Ok m ->
          Error ("expected a frame-too-large error, got " ^ Wire.message_name m)
      | Error e -> Error ("expected a frame-too-large error, got " ^ e))

let server_malformed_length_rejected () =
  with_server (fun server ->
      let reply =
        with_client server (fun c ->
            ignore (Sclient.handshake c ~sizes:[] ());
            Sclient.send_raw c (header_declaring 0);
            Sclient.read c)
      in
      match reply with
      | Ok (Wire.Error { code = Wire.Bad_frame; _ }) -> still_serving server
      | Ok m -> Error ("expected a bad-frame error, got " ^ Wire.message_name m)
      | Error e -> Error ("expected a bad-frame error, got " ^ e))

let server_truncated_frame_tolerated () =
  with_server (fun server ->
      with_client server (fun c ->
          ignore (Sclient.handshake c ~sizes:[] ());
          (* declare 64 payload bytes, deliver 6, vanish *)
          let raw = Bytes.make 10 '\x00' in
          Bytes.blit (header_declaring 64) 0 raw 0 4;
          Sclient.send_raw c raw);
      still_serving server)

(* Poll until the shards have folded [expected] reports: a disconnect
   leaves the last reports still in the socket buffer and shard queues,
   so ingestion completes eventually rather than synchronously. *)
let rec eventually_folded server ~expected ~tries =
  match Serve.snapshot_estimates server ~flush:true with
  | (_, Some e) :: _ when e.Estimator.n_transactions = expected -> Ok ()
  | _ when tries = 0 ->
      Error
        (Printf.sprintf "reports lost after disconnect: expected %d folded"
           expected)
  | _ ->
      Unix.sleepf 0.02;
      eventually_folded server ~expected ~tries:(tries - 1)

let server_mid_session_disconnect () =
  with_server (fun server ->
      let sent = 5 in
      with_client server (fun c ->
          ignore (Sclient.handshake c ~scheme:server_scheme ~sizes:[ 3 ] ());
          for _ = 1 to sent do
            Sclient.report c ~size:3 (Itemset.of_list [ 0; 1; 2 ])
          done);
      (* the abrupt close must lose no report already on the wire, and
         must leave the server serving *)
      match eventually_folded server ~expected:sent ~tries:150 with
      | Error _ as e -> e
      | Ok () -> still_serving server)

let server_scheme_mismatch_rejected () =
  with_server (fun server ->
      let other = Randomizer.uniform ~universe:16 ~p_keep:0.3 ~p_add:0.2 in
      let verdict =
        with_client server (fun c ->
            match Sclient.handshake c ~scheme:other ~sizes:[ 3 ] () with
            | _ -> Error "a mismatched scheme was welcomed"
            | exception Sclient.Server_error (Wire.Scheme_mismatch, _) -> Ok ()
            | exception e ->
                Error ("expected a scheme-mismatch error, got " ^ Printexc.to_string e))
      in
      match verdict with Error _ as e -> e | Ok () -> still_serving server)

let server_invalid_reports_rejected () =
  with_server (fun server ->
      with_client server (fun c ->
          ignore (Sclient.handshake c ~scheme:server_scheme ~sizes:[ 2 ] ());
          (* item outside the universe: typed error, session continues *)
          Sclient.report c ~size:2 (Itemset.of_list [ 0; 99 ]);
          match Sclient.read c with
          | Ok (Wire.Error { code = Wire.Item_out_of_universe; _ }) -> (
              (* size outside the handshake: same deal *)
              Sclient.report c ~size:5 (Itemset.of_list [ 0; 1 ]);
              match Sclient.read c with
              | Ok (Wire.Error { code = Wire.Size_not_covered; _ }) -> (
                  (* and a valid report on the same session still lands *)
                  Sclient.report c ~size:2 (Itemset.of_list [ 0; 1 ]);
                  ignore (Sclient.snapshot c ~flush:true);
                  match Serve.snapshot_estimates server ~flush:true with
                  | (_, Some e) :: _ when e.Estimator.n_transactions = 1 ->
                      Ok ()
                  | (_, Some e) :: _ ->
                      Error
                        (Printf.sprintf
                           "expected exactly the 1 valid report folded, got %d"
                           e.Estimator.n_transactions)
                  | _ -> Error "no estimate after a valid report")
              | Ok m ->
                  Error
                    ("expected a size-not-covered error, got "
                    ^ Wire.message_name m)
              | Error e -> Error ("expected a size-not-covered error, got " ^ e))
          | Ok m ->
              Error
                ("expected an item-out-of-universe error, got "
                ^ Wire.message_name m)
          | Error e ->
              Error ("expected an item-out-of-universe error, got " ^ e)))

let client_oversized_send_rejected () =
  with_server (fun server ->
      let c = Sclient.connect ~port:(Serve.port server) ~max_frame:32 () in
      let verdict =
        Fun.protect
          ~finally:(fun () -> Sclient.close c)
          (fun () ->
            (* 24 items encode to well over the 32-byte cap; the client
               must refuse locally instead of emitting a frame the peer
               is guaranteed to reject. *)
            let big = Itemset.of_list (List.init 24 Fun.id) in
            match Sclient.report c ~size:24 big with
            | () -> Error "an oversized frame was written"
            | exception Invalid_argument _ -> Ok ()
            | exception e ->
                Error
                  ("expected Invalid_argument from the capped send, got "
                  ^ Printexc.to_string e))
      in
      (* nothing reached the wire, so the server is untouched *)
      match verdict with Error _ as e -> e | Ok () -> still_serving server)

(* ------------------------------------------------- admin-plane scenarios *)

module Admin = Ppdm_server.Admin

(* Admin scenarios run with the admin plane on (ephemeral port) and a
   deliberately fast sampler, inject the fault over the admin socket or
   its timing, and then assert the one invariant that matters: the data
   plane is {e bit-identical} to a sequential fold of the same reports —
   the admin plane may degrade, the estimates may not move. *)
let with_admin_server f =
  let server =
    Serve.start
      {
        (Serve.default_config ~scheme:server_scheme
           ~itemsets:[ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 2 ] ])
        with
        jobs = 2;
        shards = 2;
        batch = 8;
        admin_port = Some 0;
        sampler_period_ns = 1_000_000;
      }
  in
  Fun.protect
    ~finally:(fun () -> ignore (Serve.stop server))
    (fun () ->
      match Serve.admin_port server with
      | None -> Error "admin plane configured but no admin port bound"
      | Some admin_port -> f server admin_port)

(* The deterministic report set every admin scenario replays. *)
let admin_reports =
  Array.init 40 (fun i ->
      ((i mod 3) + 1, Itemset.of_list [ i mod 16; (i * 7) mod 16 ]))

let send_reports server =
  with_client server (fun c ->
      ignore (Sclient.handshake c ~scheme:server_scheme ~sizes:[ 1; 2; 3 ] ());
      Array.iter (fun (sz, y) -> Sclient.report c ~size:sz y) admin_reports;
      ignore (Sclient.snapshot c ~flush:false))

let data_plane_identical server =
  let served = Serve.snapshot_estimates server ~flush:true in
  let rec check = function
    | [] -> Ok ()
    | (itemset, est) :: rest -> (
        let acc = Stream.create ~scheme:server_scheme ~itemset in
        Array.iter (fun (sz, y) -> Stream.observe acc ~size:sz y) admin_reports;
        match est with
        | None -> Error (Itemset.to_string itemset ^ ": no estimate served")
        | Some e ->
            let e' = Stream.estimate acc in
            if
              e.Estimator.n_transactions = e'.Estimator.n_transactions
              && e.Estimator.support = e'.Estimator.support
              && e.Estimator.sigma = e'.Estimator.sigma
            then check rest
            else
              Error
                (Itemset.to_string itemset
                ^ ": estimates differ from the sequential fold"))
  in
  check served

(* Raw bytes to the admin port, response (or closed-connection) read
   back — Admin.fetch only speaks well-formed GET. *)
let admin_raw ~port bytes =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let b = Bytes.of_string bytes in
      let rec write off =
        if off < Bytes.length b then
          write (off + Unix.write fd b off (Bytes.length b - off))
      in
      write 0;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 512 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Buffer.contents buf)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let admin_garbage_request_rejected () =
  with_admin_server (fun server port ->
      send_reports server;
      let reply = admin_raw ~port "\x00\xffnot http at all\r\n\r\n" in
      if not (starts_with ~prefix:"HTTP/1.0 400" reply) then
        Error
          (Printf.sprintf "garbage request got %S, expected a 400"
             (String.sub reply 0 (min 32 (String.length reply))))
      else
        match Admin.fetch ~port "/metrics" with
        | Ok (200, _) -> data_plane_identical server
        | Ok (status, _) ->
            Error
              (Printf.sprintf "admin loop wedged after garbage: HTTP %d" status)
        | Error e -> Error ("admin loop wedged after garbage: " ^ e))

let admin_oversized_request_rejected () =
  with_admin_server (fun server port ->
      send_reports server;
      (* headers that never terminate, well past the 8 KiB request cap *)
      let reply =
        admin_raw ~port
          ("GET /metrics HTTP/1.0\r\n" ^ String.make 20_000 'x')
      in
      if not (starts_with ~prefix:"HTTP/1.0 413" reply) then
        Error
          (Printf.sprintf "oversized request got %S, expected a 413"
             (String.sub reply 0 (min 32 (String.length reply))))
      else
        match Admin.fetch ~port "/healthz" with
        | Ok (200, _) -> data_plane_identical server
        | Ok (status, _) ->
            Error
              (Printf.sprintf "admin loop wedged after oversize: HTTP %d"
                 status)
        | Error e -> Error ("admin loop wedged after oversize: " ^ e))

let admin_scrape_racing_shutdown () =
  with_admin_server (fun server port ->
      send_reports server;
      (* Capture the flushed estimates before anything stops, then race
         a scraping domain against the shutdown.  Every fetch must
         return (success or a clean connection error), never hang or
         corrupt anything. *)
      let before = data_plane_identical server in
      match before with
      | Error _ as e -> e
      | Ok () ->
          let scrapes = Atomic.make 0 in
          let scraper =
            Domain.spawn (fun () ->
                let rec go n =
                  match Admin.fetch ~port "/metrics" with
                  | Ok _ ->
                      Atomic.incr scrapes;
                      if n > 0 then go (n - 1)
                  | Error _ -> () (* listener gone: the race resolved *)
                in
                go 500)
          in
          Unix.sleepf 0.005;
          ignore (Serve.stop server);
          Domain.join scraper;
          if Atomic.get scrapes = 0 then
            Error "no scrape ever succeeded before shutdown"
          else Ok ())

let admin_sampler_during_quiesce () =
  with_admin_server (fun server _port ->
      send_reports server;
      (* The 1ms sampler is ticking throughout; repeated flushed
         snapshots (quiesce barriers) must all equal the sequential
         fold. *)
      let rec go n =
        if n = 0 then Ok ()
        else
          match data_plane_identical server with
          | Ok () ->
              Unix.sleepf 0.002;
              go (n - 1)
          | Error _ as e -> e
      in
      go 10)

let io_fimi_truncation_is_silent () =
  let db =
    Db.create ~universe:6
      (Array.map Itemset.of_list [| [ 0; 1 ]; [ 2 ]; [ 3; 4 ]; [ 5 ] |])
  in
  let path = Filename.temp_file "ppdm_fault" ".fimi" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_fimi path db;
      Fun.protect ~finally:Io.clear_fault_injection (fun () ->
          Io.inject_read_truncation ~lines:2;
          match Io.read_fimi path with
          | partial when Db.length partial = 2 -> Ok ()
          | partial ->
              Error
                (Printf.sprintf "expected 2 surviving transactions, got %d"
                   (Db.length partial))
          | exception e ->
              Error
                ("FIMI truncation should be silent, got "
                ^ Printexc.to_string e)))
