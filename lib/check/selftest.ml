open Ppdm_prng
open Ppdm_data
open Ppdm
open Ppdm_runtime

type outcome = { name : string; ok : bool; detail : string }
type report = { passed : int; failed : int; outcomes : outcome list }

let ok r = r.failed = 0

(* Adapt a Property result to the scenario shape. *)
let prop r =
  match r.Property.failure with
  | None -> Ok ()
  | Some _ -> Error (Property.describe r)

(* A database paired with a threshold: the input of every mining check. *)
let mining_case ~seed ~count =
  ignore seed;
  ignore count;
  Gen.pair (Gen.db ~max_universe:10 ~max_transactions:40 ()) Gen.min_support

let differential_check ~seed ~count pools =
  let miners =
    (("brute-force", fun db ~min_support ->
        Oracle.brute_force_frequent ~max_size:4 db ~min_support)
    :: Oracle.sequential_miners ~max_size:4 ())
    @ List.concat_map (Oracle.parallel_miners ~max_size:4) pools
  in
  prop
    (Property.check_result ~seed ~count ~name:"differential: all miners agree"
       (mining_case ~seed ~count)
       (fun (db, min_support) -> Oracle.agree ~miners db ~min_support))

let metamorphic_check ~seed ~count =
  let case =
    Gen.pair (mining_case ~seed ~count) (Gen.int_range 0 1_000_000)
  in
  let miners = Oracle.sequential_miners ~max_size:4 () in
  prop
    (Property.check_result ~seed ~count ~name:"metamorphic laws hold"
       case
       (fun ((db, min_support), key) ->
         let rng = Rng.create ~seed:key () in
         let u = Db.universe db in
         let perm =
           Gen.generate (Gen.permutation ~n:u) rng ~size:u
         in
         let pad = 1 + Rng.int rng 4 in
         let rec all = function
           | [] ->
               if Db.length db = 0 then Ok ()
               else
                 let index = Rng.int rng (Db.length db) in
                 let probes =
                   List.init 5 (fun i ->
                       Gen.generate (Gen.itemset ~universe:u)
                         (Rng.derive rng ~index:i) ~size:4)
                 in
                 Oracle.duplicate_scales db ~index ~probes
           | m :: rest -> (
               match Oracle.permutation_relabels m db ~min_support ~perm with
               | Error _ as e -> e
               | Ok () -> (
                   match Oracle.padding_noop m db ~min_support ~pad with
                   | Error _ as e -> e
                   | Ok () -> all rest))
         in
         all miners))

let estimator_reference_check ~seed ~count =
  let case =
    Gen.pair
      (Gen.fixed_size_db ~universe:8 ~card:4 ~max_transactions:30)
      (Gen.scheme ~universe:8)
  in
  let itemset = Itemset.of_list [ 0; 1 ] in
  prop
    (Property.check_result ~seed ~count:(max 10 (count / 2))
       ~name:"estimator matches the brute-force reference" case
       (fun (db, scheme) ->
         let rng = Rng.create ~seed:(Db.length db + seed) () in
         let data = Randomizer.apply_db_tagged scheme rng db in
         let reference =
           Oracle.brute_force_support_estimate ~scheme ~data ~itemset
         in
         let est = (Estimator.estimate ~scheme ~data ~itemset).Estimator.support in
         if Float.abs (est -. reference) <= 1e-6 *. Float.max 1. (Float.abs est)
         then Ok ()
         else
           Error
             (Printf.sprintf "estimate %.9f but brute-force reference %.9f" est
                reference)))

let p_floor = 0.001

let transition_check ~rng () =
  let schemes =
    [
      ("uniform(0.7,0.1)", Randomizer.uniform ~universe:12 ~p_keep:0.7 ~p_add:0.1);
      ("cut-and-paste(3,0.2)", Randomizer.cut_and_paste ~universe:12 ~cutoff:3 ~rho:0.2);
    ]
  in
  let rec go = function
    | [] -> Ok ()
    | (label, scheme) :: rest ->
        let rec levels l =
          if l > 2 then Ok ()
          else
            let p = Stat.transition_pvalue ~scheme ~size:4 ~k:2 ~l rng in
            if p < p_floor then
              Error
                (Printf.sprintf
                   "%s: empirical apply deviates from the transition matrix \
                    at l=%d (chi-square p=%.2g < %.3f)"
                   label l p p_floor)
            else levels (l + 1)
        in
        (match levels 0 with Error _ as e -> e | Ok () -> go rest)
  in
  go schemes

let amplification_check_ ~rng () =
  let scheme = Randomizer.uniform ~universe:9 ~p_keep:0.6 ~p_add:0.2 in
  Stat.amplification_check ~scheme ~size:3 rng

let estimator_bias_check ~rng () =
  let scheme = Randomizer.uniform ~universe:8 ~p_keep:0.8 ~p_add:0.1 in
  let db =
    Db.create ~universe:8
      (Array.init 50 (fun i ->
           if i mod 2 = 0 then Itemset.of_list [ 0; 1; 3 ]
           else Itemset.of_list [ 1; 2 ]))
  in
  let itemset = Itemset.of_list [ 0; 1 ] in
  let p = Stat.estimator_bias_pvalue ~scheme ~db ~itemset rng in
  if p < p_floor then
    Error
      (Printf.sprintf "estimator bias z-test rejected (p=%.2g < %.3f)" p p_floor)
  else Ok ()

(* A database for the sampled-counting hypotheses: iid random transactions
   (so word-window cluster sampling has the same variance as uniform row
   sampling, which is what the FPC sigma predicts) and exactly 200 bitmap
   words — 50 windows, enough for the seeded selection to fluctuate. *)
let sampled_counting_db =
  let rng = Rng.create ~seed:1234 () in
  Db.create ~universe:8
    (Array.init (200 * 62) (fun _ ->
         Itemset.of_list
           (List.filter (fun _ -> Rng.float rng < 0.3) (List.init 8 Fun.id))))

let sampled_counts_check () =
  let itemset = Itemset.of_list [ 0; 1 ] in
  let p =
    Stat.sampled_counts_pvalue ~db:sampled_counting_db ~itemset ~fraction:0.25
      ()
  in
  if p < p_floor then
    Error
      (Printf.sprintf "sampled-vs-exact z-test rejected (p=%.2g < %.3f)" p
         p_floor)
  else Ok ()

let sampled_sigma_check () =
  let itemset = Itemset.of_list [ 0; 1 ] in
  Stat.sampled_sigma_coverage ~db:sampled_counting_db ~itemset ~fraction:0.25
    ()

let combined_sigma_check ~seed () =
  let scheme = Randomizer.uniform ~universe:8 ~p_keep:0.85 ~p_add:0.05 in
  let rng = Rng.create ~seed:4321 () in
  let db =
    Db.create ~universe:8
      (Array.init 400 (fun _ ->
           Itemset.of_list
             (List.filter (fun _ -> Rng.float rng < 0.35) (List.init 8 Fun.id))))
  in
  let itemset = Itemset.of_list [ 0; 1 ] in
  match
    Stat.combined_sigma_coverage ~scheme ~db ~itemset ~fraction:0.3
      (Rng.create ~seed:(seed + 23) ())
  with
  | Error _ as e -> e
  | Ok () ->
      let p =
        Stat.combined_sigma_pvalue ~scheme ~db ~itemset ~fraction:0.3
          (Rng.create ~seed:(seed + 24) ())
      in
      if p < p_floor then
        Error
          (Printf.sprintf "combined-sigma z-test rejected (p=%.2g < %.3f)" p
             p_floor)
      else Ok ()

(* ---------------------------------------------- scheduler determinism *)

(* All 1- and 2-itemsets over the universe: a candidate batch wide enough
   to cut into several columns once [cand_chunk] is forced small. *)
let small_candidates u =
  let singles = List.init u Itemset.singleton in
  let pairs =
    List.concat_map
      (fun i ->
        List.init (u - i - 1) (fun j -> Itemset.of_list [ i; i + j + 1 ]))
      (List.init u Fun.id)
  in
  singles @ pairs

(* Randomized grid shapes: tiny word and candidate chunks cut a random
   database into many cells, and both schedulers at every job count must
   reproduce the sequential engine byte for byte. *)
let scheduler_identity_check ~seed ~count pools =
  let case =
    Gen.pair
      (Gen.db ~max_universe:10 ~max_transactions:40 ())
      (Gen.pair (Gen.int_range 1 4) (Gen.int_range 1 4))
  in
  prop
    (Property.check_result ~seed ~count
       ~name:"grid counts: stealing == chunked == sequential" case
       (fun (db, (word_chunk, cand_chunk)) ->
         let u = Db.universe db in
         if u = 0 then Ok ()
         else begin
           let candidates = small_candidates u in
           let vt = Ppdm_mining.Vertical.load db in
           let reference =
             Oracle.canonical
               (Ppdm_mining.Vertical.support_counts vt candidates)
           in
           let rec go = function
             | [] -> Ok ()
             | (label, counts) :: rest ->
                 let got = Oracle.canonical counts in
                 if String.equal got reference then go rest
                 else
                   Error
                     (Printf.sprintf "%s diverged\n  sequential: %s\n  %s: %s"
                        label reference label got)
           in
           go
             (List.concat_map
                (fun pool ->
                  let j = string_of_int (Pool.jobs pool) in
                  List.map
                    (fun (sname, sched) ->
                      ( sname ^ "/j" ^ j,
                        Parallel.support_counts_vertical pool ~chunk:word_chunk
                          ~cand_chunk ~sched vt candidates ))
                    [ ("chunked", Pool.Chunked); ("stealing", Pool.Stealing) ])
                pools)
         end))

(* Skewed cell costs: task i costs O(i^2), so the stealing workers'
   contiguous slices are heavily imbalanced and the tail of the batch
   gets raided — and the result array must still come back in task
   order, equal to a sequential evaluation. *)
let skewed_schedulers_check pools =
  let n = 48 in
  let work i =
    let acc = ref 0 in
    for j = 1 to 1 + (i * i * 40) do
      acc := (!acc + (j * j)) land 0xFFFFFF
    done;
    (i, !acc)
  in
  let expected = Array.init n work in
  let rec go = function
    | [] -> Ok ()
    | (label, got) :: rest ->
        if got = expected then go rest
        else Error (label ^ " returned different results on skewed tasks")
  in
  go
    (List.concat_map
       (fun pool ->
         let j = string_of_int (Pool.jobs pool) in
         List.map
           (fun (sname, sched) ->
             ( sname ^ "/j" ^ j,
               Pool.run ~sched pool (Array.init n (fun i -> fun () -> work i))
             ))
           [ ("chunked", Pool.Chunked); ("stealing", Pool.Stealing) ])
       pools)

(* ------------------------------------------------- kernel differential *)

(* Database widths hitting every dense-word boundary class: one short of
   a word, exactly a word, one past it, exactly two words, and a 4096-tid
   run spanning 67 words.  Items cover all-one words, all-zero words,
   alternating bits, window endpoints, a periodic pattern, and a
   genuinely sparse tail. *)
let kernel_widths = [ 61; 62; 63; 124; 4096 ]

let kernel_db n =
  Db.create ~universe:6
    (Array.init n (fun t ->
         Itemset.of_list
           (List.filter
              (fun item ->
                match item with
                | 0 -> true
                | 1 -> false
                | 2 -> t mod 2 = 0
                | 3 -> t = 0 || t = n - 1
                | 4 -> t mod 7 < 3
                | _ -> t mod 97 = 0)
              (List.init 6 Fun.id))))

(* Safe and unsafe kernels must agree with the trie reference — on the
   full window, and window-by-window with the partials summed across a
   word boundary and the candidate columns concatenated — for every
   representation mix (adaptive, forced dense, forced sparse). *)
let kernel_differential_check () =
  let module V = Ppdm_mining.Vertical in
  let cands =
    small_candidates 6
    @ [ Itemset.of_list [ 0; 2; 4 ]; Itemset.of_list [ 2; 3; 4 ] ]
  in
  let check_one ~n ~rep_label ~dense_cutoff ~compress ~unsafe =
    let db = kernel_db n in
    let reference = Oracle.canonical (Ppdm_mining.Count.support_counts db cands) in
    let vt = V.load ?dense_cutoff db in
    let vt = if compress then V.compress vt else vt in
    Fun.protect
      ~finally:(fun () -> V.set_unsafe_kernels false)
      (fun () ->
        V.set_unsafe_kernels unsafe;
        let label =
          Printf.sprintf "n=%d %s %s" n rep_label
            (if unsafe then "unsafe" else "safe")
        in
        let got = Oracle.canonical (V.support_counts vt cands) in
        if not (String.equal got reference) then
          Error
            (Printf.sprintf "%s: full count diverged from the trie\n  %s\n  %s"
               label reference got)
        else begin
          (* split on the first word boundary and mid-batch: windowed
             partials must sum and columns concatenate *)
          let prepared = V.prepare cands in
          let len = V.prepared_length prepared in
          let wc = V.word_count vt in
          let wsplit = min 1 wc and csplit = len / 2 in
          let piece ~word_lo ~word_hi ~cand_lo ~cand_hi =
            V.count_into vt ~word_lo ~word_hi ~cand_lo ~cand_hi prepared
          in
          let totals = Array.make len 0 in
          List.iter
            (fun (wlo, whi) ->
              List.iter
                (fun (clo, chi) ->
                  let part =
                    piece ~word_lo:wlo ~word_hi:whi ~cand_lo:clo ~cand_hi:chi
                  in
                  Array.iteri
                    (fun i v -> totals.(clo + i) <- totals.(clo + i) + v)
                    part)
                [ (0, csplit); (csplit, len) ])
            [ (0, wsplit); (wsplit, wc) ];
          let got_cells = Oracle.canonical (V.assemble prepared totals) in
          if String.equal got_cells reference then Ok ()
          else
            Error
              (Printf.sprintf "%s: 2-D cell sums diverged from the trie\n  %s\n  %s"
                 label reference got_cells)
        end)
  in
  let reps =
    [
      ("adaptive", None, false);
      ("all-dense", Some 0.0, false);
      ("all-sparse", Some 2.0, false);
      (* roaring-style containers counted without decompression; both
         plain starting representations so the container chooser sees
         dense words and sparse tid arrays *)
      ("compressed-of-dense", Some 0.0, true);
      ("compressed-of-sparse", Some 2.0, true);
    ]
  in
  let rec widths = function
    | [] -> Ok ()
    | n :: rest ->
        let rec by_rep = function
          | [] -> widths rest
          | (rep_label, dense_cutoff, compress) :: more ->
              let rec by_mode = function
                | [] -> by_rep more
                | unsafe :: modes -> (
                    match
                      check_one ~n ~rep_label ~dense_cutoff ~compress ~unsafe
                    with
                    | Error _ as e -> e
                    | Ok () -> by_mode modes)
              in
              by_mode [ false; true ]
        in
        by_rep reps
  in
  widths kernel_widths

let fuzz_roundtrip_checks ~seed ~count =
  let db_gen = Gen.db ~max_universe:12 ~max_transactions:20 () in
  let with_temp suffix content f =
    let path = Filename.temp_file "ppdm_selftest" suffix in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        content path;
        f path)
  in
  [
    ( "fuzz: Io write/read round-trip",
      fun () ->
        prop
          (Property.check_result ~seed ~count:(max 10 (count / 4))
             ~name:"Io round-trip" db_gen (fun db ->
               with_temp ".txt" (fun p -> Io.write_file p db) (fun p ->
                   let back = Io.read_file p in
                   if
                     Db.universe back = Db.universe db
                     && Array.for_all2 Itemset.equal (Db.transactions back)
                          (Db.transactions db)
                   then Ok ()
                   else Error "database changed across write/read"))) );
    ( "fuzz: FIMI write/read round-trip",
      fun () ->
        prop
          (Property.check_result ~seed ~count:(max 10 (count / 4))
             ~name:"FIMI round-trip" db_gen (fun db ->
               with_temp ".fimi" (fun p -> Io.write_fimi p db) (fun p ->
                   let back = Io.read_fimi ~universe:(Db.universe db) p in
                   if
                     Array.for_all2 Itemset.equal (Db.transactions back)
                       (Db.transactions db)
                   then Ok ()
                   else Error "transactions changed across FIMI write/read"))) );
    ( "fuzz: columnar convert/load round-trip",
      fun () ->
        prop
          (Property.check_result ~seed ~count:(max 10 (count / 4))
             ~name:"columnar round-trip" db_gen (fun db ->
               with_temp ".txt" (fun p -> Io.write_file p db) (fun src ->
                   with_temp ".ppdmc" (fun _ -> ()) (fun dst ->
                       ignore (Colfile.convert ~src ~dst ());
                       let cf = Colfile.open_file dst in
                       Fun.protect
                         ~finally:(fun () -> Colfile.close cf)
                         (fun () ->
                           let back =
                             Ppdm_mining.Vertical.to_db
                               (Ppdm_mining.Vertical.of_colfile cf)
                           in
                           if
                             Db.universe back = Db.universe db
                             && Array.for_all2 Itemset.equal
                                  (Db.transactions back) (Db.transactions db)
                           then Ok ()
                           else
                             Error
                               "database changed across convert/of_colfile")))))
    );
    ( "fuzz: columnar reader survives corruption",
      fun () ->
        (* deterministic single-byte corruption over a real PPDMC file:
           every position must surface as the typed Colfile.Error or decode
           to something structurally valid — never any other exception *)
        let db =
          Gen.generate db_gen (Rng.create ~seed:(seed + 7) ()) ~size:12
        in
        let read_all path =
          let cf = Colfile.open_file path in
          Fun.protect
            ~finally:(fun () -> Colfile.close cf)
            (fun () ->
              for item = 0 to Colfile.universe cf - 1 do
                ignore (Colfile.column cf item)
              done)
        in
        with_temp ".txt" (fun p -> Io.write_file p db) (fun src ->
            with_temp ".ppdmc" (fun _ -> ()) (fun dst ->
                ignore (Colfile.convert ~src ~dst ());
                let ic = open_in_bin dst in
                let good =
                  Fun.protect
                    ~finally:(fun () -> close_in ic)
                    (fun () ->
                      really_input_string ic (in_channel_length ic))
                in
                let len = String.length good in
                let rec go pos =
                  if pos >= len then Ok ()
                  else begin
                    let bad = Bytes.of_string good in
                    Bytes.set bad pos
                      (Char.chr (Char.code good.[pos] lxor 0x55));
                    with_temp ".ppdmc"
                      (fun p ->
                        let oc = open_out_bin p in
                        output_bytes oc bad;
                        close_out oc)
                      (fun p ->
                        match read_all p with
                        | () -> go (pos + 1)
                        | exception Colfile.Error _ -> go (pos + 1)
                        | exception e ->
                            Error
                              (Printf.sprintf
                                 "flipping byte %d of %d leaked %s" pos len
                                 (Printexc.to_string e)))
                  end
                in
                go 0)) );
    ( "fuzz: Scheme_io write/read round-trip",
      fun () ->
        prop
          (Property.check_result ~seed ~count:(max 10 (count / 4))
             ~name:"Scheme_io round-trip"
             (Gen.pair db_gen (Gen.int_range 0 1_000_000))
             (fun (db, key) ->
               let scheme =
                 (* serialization is per-universe; build over the db's *)
                 Gen.generate
                   (Gen.scheme ~universe:(Db.universe db))
                   (Rng.create ~seed:key ())
                   ~size:4
               in
               let sizes = Scheme_io.sizes_of_db db in
               if sizes = [] then Ok ()
               else
                 with_temp ".scheme"
                   (fun p -> Scheme_io.write_file p scheme ~sizes)
                   (fun p ->
                     let back = Scheme_io.read_file p in
                     if Randomizer.same_parameters scheme back ~sizes then
                       Ok ()
                     else Error "scheme parameters changed across write/read")))
    );
    ( "fuzz: parsers survive garbage",
      fun () ->
        let survives reader content =
          let path = Filename.temp_file "ppdm_selftest" ".fuzz" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              let oc = open_out path in
              output_string oc content;
              close_out oc;
              match reader path with
              | _ -> true
              | exception Failure _ -> true
              | exception Invalid_argument _ -> true
              | exception Colfile.Error _ -> true
              | exception _ -> false)
        in
        prop
          (Property.check_result ~seed ~count:(max 20 (count / 2))
             ~name:"parsers survive garbage" Gen.garbage_string (fun s ->
               if
                 survives Io.read_file s
                 && survives (fun p -> Io.read_fimi p) s
                 && survives Scheme_io.read_file s
                 && survives
                      (fun p ->
                        let cf = Colfile.open_file p in
                        Colfile.close cf)
                      s
               then Ok ()
               else Error "a parser leaked an undocumented exception")) );
  ]

let run ?count ?(seed = 42) ?(log = ignore) () =
  let count =
    match count with Some c -> max 1 c | None -> Property.default_count ()
  in
  let rng = Rng.create ~seed () in
  let pool1 = Pool.create ~jobs:1 in
  let pool2 = Pool.create ~jobs:2 in
  let pool4 = Pool.create ~jobs:4 in
  let pool8 = Pool.create ~jobs:8 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool1;
      Pool.shutdown pool2;
      Pool.shutdown pool4;
      Pool.shutdown pool8)
    (fun () ->
      let pools = [ pool1; pool2; pool4 ] in
      let sched_pools = pools @ [ pool8 ] in
      let checks =
        [
          ( "generators: randomizer closed over generated inputs",
            fun () ->
              prop
                (Property.check_result ~seed ~count
                   ~name:"generated schemes randomize generated databases"
                   (Gen.pair
                      (Gen.db ~max_universe:10 ~max_transactions:20 ())
                      (Gen.int_range 0 1_000_000))
                   (fun (db, key) ->
                     let u = Db.universe db in
                     let rng = Rng.create ~seed:key () in
                     let scheme =
                       Gen.generate (Gen.scheme ~universe:u) rng ~size:4
                     in
                     let out = Randomizer.apply_db scheme rng db in
                     if
                       Db.length out = Db.length db
                       && Db.fold
                            (fun acc tx ->
                              acc
                              && Itemset.fold
                                   (fun i acc -> acc && i >= 0 && i < u)
                                   tx true)
                            true out
                     then Ok ()
                     else Error "randomized output escaped the universe")) );
          ( "differential: apriori trie+vertical/eclat/fp-growth/parallel at \
             jobs 1/2/4",
            fun () -> differential_check ~seed ~count pools );
          ("metamorphic: duplicate/permute/pad laws", fun () ->
              metamorphic_check ~seed ~count);
          ( "differential: estimator vs brute-force reference",
            fun () -> estimator_reference_check ~seed ~count );
          ("statistical: apply matches transition matrix (chi-square)", fun () ->
              transition_check ~rng ());
          ("statistical: amplification bound on sampled pairs", fun () ->
              amplification_check_ ~rng ());
          ("statistical: estimator unbiasedness (z-test)", fun () ->
              estimator_bias_check ~rng ());
          ("statistical: sampled counts unbiased vs exact (z-test)", fun () ->
              sampled_counts_check ());
          ("statistical: sampled sigma covers |sampled - exact|", fun () ->
              sampled_sigma_check ());
          ("statistical: combined sigma honest on sampled recovery", fun () ->
              combined_sigma_check ~seed ());
          ( "scheduler: stealing == chunked == sequential on random grids \
             at jobs 1/2/4/8",
            fun () -> scheduler_identity_check ~seed ~count sched_pools );
          ("scheduler: skewed cell costs keep task-order reduction", fun () ->
              skewed_schedulers_check sched_pools);
          ("kernels: safe == unsafe == trie on every width class", fun () ->
              kernel_differential_check ());
          ("fault: pool task failure propagates, pool survives", fun () ->
              Fault.pool_error_propagates ~jobs:4 ~k:3 ~n:16 ());
          ("fault: sequential pool degrades identically", fun () ->
              Fault.pool_error_propagates ~jobs:1 ~k:0 ~n:4 ());
          ("fault: stealing pool degrades identically", fun () ->
              Fault.pool_error_propagates ~sched:Pool.Stealing ~jobs:4 ~k:5
                ~n:24 ());
          ("fault: failure inside a stolen cell propagates, batch quiesces",
            fun () -> Fault.stealing_fault_in_stolen_cell ~jobs:4);
          ("fault: map_reduce returns nothing partial", fun () ->
              Fault.map_reduce_fault_no_partial ~jobs:2);
          ("fault: truncated read rejected", fun () ->
              Fault.io_truncated_read_rejected ());
          ("fault: truncated header rejected", fun () ->
              Fault.io_truncated_header_rejected ());
          ("fault: FIMI truncation silent (documented asymmetry)", fun () ->
              Fault.io_fimi_truncation_is_silent ());
          ( "differential: loopback server equals sequential fold at jobs \
             1/2/4",
            fun () ->
              let rng = Rng.create ~seed:(seed + 17) () in
              let db =
                Db.create ~universe:12
                  (Array.init 150 (fun i ->
                       Itemset.of_list [ i mod 12; ((i * 7) + 3) mod 12 ]))
              in
              let scheme =
                Randomizer.uniform ~universe:12 ~p_keep:0.75 ~p_add:0.08
              in
              let data = Randomizer.apply_db_tagged scheme rng db in
              let itemsets = [ Itemset.of_list [ 0; 1 ]; Itemset.of_list [ 3 ] ] in
              let rec configs = function
                | [] -> Ok ()
                | (jobs, shards) :: rest -> (
                    match
                      Oracle.server_matches_sequential ~jobs ~shards ~clients:3
                        ~scheme ~itemsets ~data
                    with
                    | Error _ as e -> e
                    | Ok () -> configs rest)
              in
              configs [ (1, 1); (2, 2); (4, 3) ] );
          ("fault: server rejects oversized frame, keeps serving", fun () ->
              Fault.server_oversized_frame_rejected ());
          ("fault: server rejects malformed frame length", fun () ->
              Fault.server_malformed_length_rejected ());
          ("fault: server tolerates truncated frame", fun () ->
              Fault.server_truncated_frame_tolerated ());
          ("fault: server survives mid-session disconnect, loses nothing",
            fun () -> Fault.server_mid_session_disconnect ());
          ("fault: server rejects scheme mismatch at handshake", fun () ->
              Fault.server_scheme_mismatch_rejected ());
          ("fault: server rejects invalid reports, session continues",
            fun () -> Fault.server_invalid_reports_rejected ());
          ("fault: client refuses oversized send, server untouched",
            fun () -> Fault.client_oversized_send_rejected ());
          ("fault: admin plane rejects garbage request, data plane identical",
            fun () -> Fault.admin_garbage_request_rejected ());
          ("fault: admin plane rejects oversized request, data plane identical",
            fun () -> Fault.admin_oversized_request_rejected ());
          ("fault: metrics scrape races shutdown cleanly", fun () ->
              Fault.admin_scrape_racing_shutdown ());
          ("fault: sampler ticks during quiesce, estimates bit-identical",
            fun () -> Fault.admin_sampler_during_quiesce ());
        ]
        @ fuzz_roundtrip_checks ~seed ~count
      in
      let outcomes =
        List.map
          (fun (name, check) ->
            let ok, detail =
              match check () with
              | Ok () -> (true, "")
              | Error d -> (false, d)
              | exception e -> (false, "raised " ^ Printexc.to_string e)
            in
            log
              (if ok then Printf.sprintf "ok   %s" name
               else Printf.sprintf "FAIL %s\n     %s" name
                   (String.concat "\n     " (String.split_on_char '\n' detail)));
            { name; ok; detail })
          checks
      in
      let passed = List.length (List.filter (fun o -> o.ok) outcomes) in
      { passed; failed = List.length outcomes - passed; outcomes })
