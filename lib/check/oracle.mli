(** Differential and metamorphic oracles.

    Randomization-based miners fail {e silently}: a wrong transition
    matrix or a biased estimator still produces plausible itemsets.  The
    defenses here never trust a single implementation — they compare
    independent ones (differential), or compare a computation against a
    transformed version of itself whose answer is known to transform
    predictably (metamorphic). *)

open Ppdm_data
open Ppdm

type miner = string * (Db.t -> min_support:float -> (Itemset.t * int) list)
(** A named frequent-itemset miner under test. *)

val sequential_miners : ?max_size:int -> unit -> miner list
(** Apriori on both counting engines (the hash trie and the vertical
    bitmap engine), Eclat, and FP-growth. *)

val parallel_miners : ?max_size:int -> Ppdm_runtime.Pool.t -> miner list
(** The parallel Apriori (trie-sharded and 2-D-grid-sharded vertical)
    and Eclat drivers on the given pool, labelled with its job count —
    each under both the chunked and the work-stealing scheduler. *)

val canonical : (Itemset.t * int) list -> string
(** Sorted ({!Itemset.compare}) and printed: the byte-comparable form the
    differential checks compare ("byte-identical sorted output"). *)

val agree : miners:miner list -> Db.t -> min_support:float -> (unit, string) result
(** All miners produce the same {!canonical} string as the first one;
    [Error] names the disagreeing pair and shows both outputs. *)

val brute_force_frequent :
  ?max_size:int -> Db.t -> min_support:float -> (Itemset.t * int) list
(** Reference miner by exhaustive enumeration of every itemset over the
    universe (threshold rule shared through
    {!Ppdm_mining.Apriori.absolute_threshold}).
    @raise Invalid_argument if the universe exceeds 16 items. *)

(** {1 Metamorphic laws} *)

val duplicate_scales :
  Db.t -> index:int -> probes:Itemset.t list -> (unit, string) result
(** Appending a copy of transaction [index] raises the support count of
    exactly the probes contained in it, by exactly one. *)

val permutation_relabels :
  miner -> Db.t -> min_support:float -> perm:int array -> (unit, string) result
(** Relabelling every item through a bijection of the universe relabels
    the mined collection and nothing else (same counts).
    @raise Invalid_argument if [perm] is not a permutation of the
    universe. *)

val padding_noop :
  miner -> Db.t -> min_support:float -> pad:int -> (unit, string) result
(** Growing the universe by [pad] items that occur in no transaction
    leaves the mined collection untouched. *)

(** {1 Server vs sequential} *)

val server_matches_sequential :
  jobs:int ->
  shards:int ->
  clients:int ->
  scheme:Randomizer.t ->
  itemsets:Itemset.t list ->
  data:(int * Itemset.t) array ->
  (unit, string) result
(** Start a real {!Ppdm_server.Serve} on an ephemeral loopback port with
    [jobs] session workers and [shards] ingest shards, stream [data] over
    [clients] concurrent wire connections, and compare the server's
    flushed estimates against one sequential {!Ppdm.Stream} fold of the
    same reports — support, sigma, and observation count must be equal
    {e bit for bit}, at any job and shard count (the sufficient statistic
    is a sum of integer histograms, so sharding must commute). *)

(** {1 Estimator reference} *)

val brute_force_support_estimate :
  scheme:Randomizer.t -> data:(int * Itemset.t) array -> itemset:Itemset.t -> float
(** Independent re-derivation of the recovered support on a single
    transaction-size class: observed partial-support counts by a direct
    scan, the transition matrix from {!Ppdm.Transition}, and the solve by
    a self-contained Gaussian elimination (not
    {!Ppdm_linalg.Lu}) — so a bug in the production solve or the
    count aggregation cannot also hide in the oracle.
    @raise Invalid_argument on empty data, mixed transaction sizes, or a
    transaction size smaller than the itemset. *)
