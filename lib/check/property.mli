(** The property runner: run a predicate over generated inputs, shrink any
    counterexample to a minimal one, and report a replayable seed.

    Every case [i] of a run draws from [Rng.derive root ~index:i] where
    [root] is built from one 64-bit seed, so a failure report of the form
    [seed=S case=I] replays exactly — re-running the same check with
    [~seed:S] (or [PPDM_CHECK_SEED=S] in the environment) regenerates the
    identical input sequence, independent of how many properties ran
    before or after.

    Case counts default to [$PPDM_CHECK_COUNT] (or 100): CI runs fast,
    nightly deep-fuzz runs set it to 10000 and every statistical sample
    size in {!Stat} scales along via {!scaled}. *)

exception Failed of string
(** Raised by {!assert_ok}; the message carries the seed, the shrunk
    counterexample, and the replay instructions. *)

type failure = {
  seed : int;  (** root seed of the run *)
  case : int;  (** index of the first failing case *)
  size : int;  (** generator size at that case *)
  shrink_steps : int;
  counterexample : string;  (** printed, after shrinking *)
  message : string;  (** why it failed: [false] or the exception *)
}

type result = { name : string; cases : int; failure : failure option }

val env_count : default:int -> int
(** [$PPDM_CHECK_COUNT] parsed (clamped to at least 1), else [default]. *)

val default_count : unit -> int
(** [env_count ~default:100]. *)

val scaled : base:int -> int
(** [base * default_count () / 100], at least [base]: how statistical
    sample sizes follow the environment knob. *)

val check :
  ?seed:int ->
  ?count:int ->
  ?max_size:int ->
  name:string ->
  'a Gen.t ->
  ('a -> bool) ->
  result
(** Run the predicate on [count] generated inputs (size growing from 2 to
    [max_size], default 30).  A [false] result or any exception is a
    failure; the input is then shrunk greedily (first failing candidate,
    up to 400 steps) before reporting.  [seed] defaults to
    [$PPDM_CHECK_SEED] or a fixed constant. *)

val check_result :
  ?seed:int ->
  ?count:int ->
  ?max_size:int ->
  name:string ->
  'a Gen.t ->
  ('a -> (unit, string) Stdlib.result) ->
  result
(** Like {!check} for properties that explain their failures. *)

val assert_ok : result -> unit
(** Raise {!Failed} with a full report if the result carries a failure;
    the alcotest adapter ([Alcotest.test_case] around [assert_ok (check
    ...)]) and {!Selftest} both funnel through this. *)

val describe : result -> string
(** One line for a pass, the full failure report otherwise. *)
