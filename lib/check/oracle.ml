open Ppdm_data
open Ppdm_linalg
open Ppdm_mining
open Ppdm

type miner = string * (Db.t -> min_support:float -> (Itemset.t * int) list)

let sequential_miners ?max_size () =
  [
    ("apriori", fun db ~min_support -> Apriori.mine ?max_size db ~min_support);
    ( "apriori-vertical",
      fun db ~min_support ->
        Apriori.mine ?max_size ~counter:Apriori.Vertical db ~min_support );
    (* the compressed-container kernels, driven file-free: transpose,
       re-encode every tid-set as a roaring-style column, mine in place *)
    ( "apriori-columnar",
      fun db ~min_support ->
        Apriori.mine_vertical ?max_size
          (Vertical.compress (Vertical.of_db db))
          ~min_support );
    ("eclat", fun db ~min_support -> Eclat.mine ?max_size db ~min_support);
    ("fp-growth", fun db ~min_support -> Fptree.mine ?max_size db ~min_support);
    (* sampled at F = 1.0 is contractually byte-identical to the exact
       engines (the plan is exhaustive and scaling is the identity), so
       it can join the differential suite; F < 1 cannot — it gets its
       own statistical checks in Stat. *)
    ( "apriori-sampled-1.0",
      fun db ~min_support ->
        Apriori.mine ?max_size
          ~counter:(Apriori.Sampled { fraction = 1.0; seed = 0 })
          db ~min_support );
  ]

let parallel_miners ?max_size pool =
  let j = string_of_int (Ppdm_runtime.Pool.jobs pool) in
  [
    ( "parallel-apriori/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine pool ?max_size db ~min_support );
    ( "parallel-apriori-vertical/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine pool ?max_size
          ~counter:Apriori.Vertical db ~min_support );
    ( "parallel-apriori-columnar/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine_vertical pool ?max_size
          (Vertical.compress (Vertical.of_db db))
          ~min_support );
    ( "parallel-eclat/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.eclat_mine pool ?max_size db ~min_support );
    ( "parallel-apriori-sampled-1.0/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine pool ?max_size
          ~counter:(Apriori.Sampled { fraction = 1.0; seed = 0 })
          db ~min_support );
    (* the same engines under the work-stealing scheduler: execution
       order changes, the reduction order (and so the output) must not *)
    ( "parallel-apriori-stealing/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine pool ~sched:Ppdm_runtime.Pool.Stealing
          ?max_size db ~min_support );
    ( "parallel-apriori-vertical-stealing/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine pool ~sched:Ppdm_runtime.Pool.Stealing
          ?max_size ~counter:Apriori.Vertical db ~min_support );
    ( "parallel-apriori-columnar-stealing/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine_vertical pool
          ~sched:Ppdm_runtime.Pool.Stealing ?max_size
          (Vertical.compress (Vertical.of_db db))
          ~min_support );
    ( "parallel-eclat-stealing/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.eclat_mine pool ~sched:Ppdm_runtime.Pool.Stealing
          ?max_size db ~min_support );
    ( "parallel-apriori-sampled-1.0-stealing/j" ^ j,
      fun db ~min_support ->
        Ppdm_runtime.Parallel.apriori_mine pool ~sched:Ppdm_runtime.Pool.Stealing
          ?max_size
          ~counter:(Apriori.Sampled { fraction = 1.0; seed = 0 })
          db ~min_support );
  ]

let canonical l =
  let sorted = List.sort (fun (a, _) (b, _) -> Itemset.compare a b) l in
  String.concat ";"
    (List.map
       (fun (s, c) -> Printf.sprintf "%s:%d" (Itemset.to_string s) c)
       sorted)

let agree ~miners db ~min_support =
  match miners with
  | [] -> Ok ()
  | (ref_name, ref_miner) :: rest ->
      let reference = canonical (ref_miner db ~min_support) in
      let rec go = function
        | [] -> Ok ()
        | (name, m) :: tl ->
            let got = canonical (m db ~min_support) in
            if String.equal got reference then go tl
            else
              Error
                (Printf.sprintf "%s disagrees with %s\n  %s: %s\n  %s: %s"
                   name ref_name ref_name reference name got)
      in
      go rest

let brute_force_frequent ?(max_size = max_int) db ~min_support =
  let u = Db.universe db in
  if u > 16 then
    invalid_arg "Oracle.brute_force_frequent: universe too large (max 16)";
  let threshold =
    Apriori.absolute_threshold ~n:(Db.length db) ~min_support
  in
  let out = ref [] in
  for mask = 1 to (1 lsl u) - 1 do
    let items =
      List.filter (fun i -> (mask lsr i) land 1 = 1) (List.init u Fun.id)
    in
    if List.length items <= max_size then begin
      let s = Itemset.of_list items in
      let c = Db.support_count db s in
      if c >= threshold then out := (s, c) :: !out
    end
  done;
  List.sort (fun (a, _) (b, _) -> Itemset.compare a b) !out

(* ------------------------------------------------------------ metamorphic *)

let duplicate_scales db ~index ~probes =
  if index < 0 || index >= Db.length db then
    invalid_arg "Oracle.duplicate_scales: index out of range";
  let t = Db.get db index in
  let extended =
    Db.append db (Db.create ~universe:(Db.universe db) [| t |])
  in
  let rec go = function
    | [] -> Ok ()
    | probe :: rest ->
        let before = Db.support_count db probe in
        let after = Db.support_count extended probe in
        let expected = before + if Itemset.subset probe t then 1 else 0 in
        if after = expected then go rest
        else
          Error
            (Printf.sprintf
               "duplicating tx %d: support of %s went %d -> %d, expected %d"
               index (Itemset.to_string probe) before after expected)
  in
  go probes

let check_permutation ~universe perm =
  if Array.length perm <> universe then
    invalid_arg "Oracle.permutation_relabels: wrong permutation length";
  let seen = Array.make universe false in
  Array.iter
    (fun i ->
      if i < 0 || i >= universe || seen.(i) then
        invalid_arg "Oracle.permutation_relabels: not a permutation";
      seen.(i) <- true)
    perm

let apply_perm perm s =
  Itemset.of_list (List.map (fun i -> perm.(i)) (Itemset.to_list s))

let permutation_relabels (name, miner) db ~min_support ~perm =
  check_permutation ~universe:(Db.universe db) perm;
  let permuted = Db.map (apply_perm perm) db in
  let got = canonical (miner permuted ~min_support) in
  let expected =
    canonical
      (List.map (fun (s, c) -> (apply_perm perm s, c)) (miner db ~min_support))
  in
  if String.equal got expected then Ok ()
  else
    Error
      (Printf.sprintf "%s is not permutation-equivariant\n  got:      %s\n  expected: %s"
         name got expected)

let padding_noop (name, miner) db ~min_support ~pad =
  if pad < 0 then invalid_arg "Oracle.padding_noop: negative pad";
  let padded =
    Db.create ~universe:(Db.universe db + pad) (Db.transactions db)
  in
  let got = canonical (miner padded ~min_support) in
  let expected = canonical (miner db ~min_support) in
  if String.equal got expected then Ok ()
  else
    Error
      (Printf.sprintf
         "%s is not invariant under universe padding\n  padded:   %s\n  original: %s"
         name got expected)

(* ---------------------------------------------------- estimator reference *)

(* Plain Gaussian elimination with partial pivoting; [a] and [b] are
   consumed.  Deliberately independent of Ppdm_linalg.Lu: the point of the
   oracle is that the production solve and the reference cannot share a
   bug. *)
let solve_gaussian a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-300 then
      invalid_arg "Oracle: singular transition matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. a.(col).(col) in
      if factor <> 0. then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      end
    done
  done;
  let x = Array.make n 0. in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

let brute_force_support_estimate ~scheme ~data ~itemset =
  let n = Array.length data in
  if n = 0 then invalid_arg "Oracle.brute_force_support_estimate: empty data";
  let k = Itemset.cardinal itemset in
  let m = fst data.(0) in
  Array.iter
    (fun (size, _) ->
      if size <> m then
        invalid_arg
          "Oracle.brute_force_support_estimate: single transaction size only")
    data;
  if k > m then
    invalid_arg "Oracle.brute_force_support_estimate: itemset larger than size";
  let counts = Array.make (k + 1) 0 in
  Array.iter
    (fun (_, y) ->
      let l' = Itemset.inter_size y itemset in
      counts.(l') <- counts.(l') + 1)
    data;
  let frac = Array.map (fun c -> float_of_int c /. float_of_int n) counts in
  let p = Transition.of_scheme scheme ~size:m ~k in
  let a =
    Array.init (k + 1) (fun i -> Array.init (k + 1) (fun j -> Mat.get p i j))
  in
  let x = solve_gaussian a frac in
  x.(k)

(* ------------------------------------------------------- server oracle *)

let server_matches_sequential ~jobs ~shards ~clients ~scheme ~itemsets ~data =
  if clients < 1 then invalid_arg "Oracle.server_matches_sequential: clients < 1";
  let module Serve = Ppdm_server.Serve in
  let module Client = Ppdm_server.Client in
  let server =
    Serve.start
      { (Serve.default_config ~scheme ~itemsets) with jobs; shards; batch = 32 }
  in
  Fun.protect
    ~finally:(fun () -> ignore (Serve.stop server))
    (fun () ->
      let port = Serve.port server in
      let count = Array.length data in
      let sizes =
        List.sort_uniq compare (Array.to_list (Array.map fst data))
      in
      let slice i =
        let lo = i * count / clients and hi = (i + 1) * count / clients in
        Array.sub data lo (hi - lo)
      in
      let drive part () =
        let c = Client.connect ~port () in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            ignore (Client.handshake c ~scheme ~sizes ());
            Array.iter (fun (sz, y) -> Client.report c ~size:sz y) part;
            (* sync barrier: the snapshot reply proves every report above
               reached the shard queues *)
            ignore (Client.snapshot c ~flush:false))
      in
      Array.init clients (fun i -> Domain.spawn (drive (slice i)))
      |> Array.iter Domain.join;
      let served = Serve.snapshot_estimates server ~flush:true in
      let rec check = function
        | [] -> Ok ()
        | (itemset, est) :: rest -> (
            let acc = Stream.create ~scheme ~itemset in
            Array.iter (fun (sz, y) -> Stream.observe acc ~size:sz y) data;
            match est with
            | None when Stream.observed acc = 0 -> check rest
            | None -> Error (Itemset.to_string itemset ^ ": server served no estimate")
            | Some _ when Stream.observed acc = 0 ->
                Error (Itemset.to_string itemset ^ ": estimate out of nothing")
            | Some e ->
                let e' = Stream.estimate acc in
                if
                  e.Estimator.n_transactions = e'.Estimator.n_transactions
                  && e.Estimator.support = e'.Estimator.support
                  && e.Estimator.sigma = e'.Estimator.sigma
                then check rest
                else
                  Error
                    (Printf.sprintf
                       "%s: served %.17g+-%.17g over %d but sequential fold \
                        gives %.17g+-%.17g over %d (jobs %d, shards %d)"
                       (Itemset.to_string itemset) e.Estimator.support
                       e.Estimator.sigma e.Estimator.n_transactions
                       e'.Estimator.support e'.Estimator.sigma
                       e'.Estimator.n_transactions jobs shards))
      in
      check served)
