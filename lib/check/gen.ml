open Ppdm_prng
open Ppdm_data
open Ppdm

type 'a t = {
  gen : Rng.t -> size:int -> 'a;
  shrink : 'a -> 'a Seq.t;
  print : 'a -> string;
}

let no_shrink _ = Seq.empty

let make ?(shrink = no_shrink) ?(print = fun _ -> "<opaque>") gen =
  { gen; shrink; print }

let generate t rng ~size = t.gen rng ~size
let shrink t x = t.shrink x
let print t x = t.print x

(* ------------------------------------------------------ base combinators *)

let return ?print x = make ?print (fun _ ~size:_ -> x)

(* Shrink an int toward [lo]: the bound itself, the midpoint, one less. *)
let shrink_int ~lo x =
  List.to_seq
    (List.sort_uniq compare
       (List.filter
          (fun y -> y >= lo && y < x)
          [ lo; lo + ((x - lo) / 2); x - 1 ]))

let int_range lo hi =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  make ~shrink:(shrink_int ~lo) ~print:string_of_int (fun rng ~size:_ ->
      Rng.int_in_range rng ~lo ~hi)

let float_range lo hi =
  if lo > hi then invalid_arg "Gen.float_range: lo > hi";
  make ~print:string_of_float (fun rng ~size:_ ->
      lo +. ((hi -. lo) *. Rng.float rng))

let bool =
  make
    ~shrink:(fun b -> if b then Seq.return false else Seq.empty)
    ~print:string_of_bool
    (fun rng ~size:_ -> Rng.bool rng)

let pair a b =
  let gen rng ~size =
    let x = a.gen rng ~size in
    let y = b.gen rng ~size in
    (x, y)
  in
  let shrink (x, y) =
    Seq.append
      (Seq.map (fun x' -> (x', y)) (a.shrink x))
      (Seq.map (fun y' -> (x, y')) (b.shrink y))
  in
  let print (x, y) = Printf.sprintf "(%s, %s)" (a.print x) (b.print y) in
  make ~shrink ~print gen

let shrink_list shrink_elt l =
  let n = List.length l in
  if n = 0 then Seq.empty
  else
    let halves =
      if n >= 2 then
        List.to_seq
          [
            List.filteri (fun j _ -> j < n / 2) l;
            List.filteri (fun j _ -> j >= n / 2) l;
          ]
      else Seq.return []
    in
    let drops = Seq.init n (fun i -> List.filteri (fun j _ -> j <> i) l) in
    let elems =
      Seq.concat
        (Seq.init n (fun i ->
             let x = List.nth l i in
             Seq.map
               (fun x' -> List.mapi (fun j y -> if j = i then x' else y) l)
               (shrink_elt x)))
    in
    Seq.append halves (Seq.append drops elems)

let list ?(max_len = 100) elt =
  let gen rng ~size =
    let cap = max 0 (min max_len size) in
    let n = Rng.int rng (cap + 1) in
    List.init n (fun _ -> elt.gen rng ~size)
  in
  let print l = "[" ^ String.concat "; " (List.map elt.print l) ^ "]" in
  make ~shrink:(shrink_list elt.shrink) ~print gen

let map ?shrink ?print f t =
  make ?shrink ?print (fun rng ~size -> f (t.gen rng ~size))

(* ------------------------------------------------------ domain generators *)

let item ~universe =
  if universe <= 0 then invalid_arg "Gen.item: universe must be positive";
  int_range 0 (universe - 1)

let shrink_itemset s =
  Seq.map Itemset.of_list (shrink_list no_shrink (Itemset.to_list s))

let itemset ~universe =
  if universe <= 0 then invalid_arg "Gen.itemset: universe must be positive";
  let gen rng ~size =
    let card = Rng.int rng (min universe (max 1 size) + 1) in
    (* of_array dedups, so the realized cardinality may be smaller *)
    Itemset.of_array (Array.init card (fun _ -> Rng.int rng universe))
  in
  make ~shrink:shrink_itemset ~print:Itemset.to_string gen

let transaction = itemset

(* A uniformly random [card]-subset via a partial Fisher-Yates shuffle. *)
let random_subset rng ~universe ~card =
  let idx = Array.init universe Fun.id in
  for i = 0 to card - 1 do
    let j = Rng.int_in_range rng ~lo:i ~hi:(universe - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Itemset.of_array (Array.sub idx 0 card)

let fixed_size_transaction ~universe ~card =
  if card < 0 || card > universe then
    invalid_arg "Gen.fixed_size_transaction: card outside [0, universe]";
  make ~print:Itemset.to_string (fun rng ~size:_ ->
      random_subset rng ~universe ~card)

let db_to_string db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "universe %d transactions %d\n" (Db.universe db)
       (Db.length db));
  Db.iter
    (fun tx ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int (Itemset.to_list tx)));
      Buffer.add_char buf '\n')
    db;
  Buffer.contents buf

(* Shrink a database by shrinking its row list (drop transactions, then
   thin individual transactions); the universe is preserved. *)
let shrink_db db =
  let universe = Db.universe db in
  let rows = Array.to_list (Db.transactions db) in
  Seq.map
    (fun rows -> Db.create ~universe (Array.of_list rows))
    (shrink_list shrink_itemset rows)

let db ?(min_universe = 2) ~max_universe ~max_transactions () =
  if min_universe < 1 || max_universe < min_universe then
    invalid_arg "Gen.db: bad universe bounds";
  let gen rng ~size =
    let universe = Rng.int_in_range rng ~lo:min_universe ~hi:max_universe in
    let cap = max 1 (min max_transactions size) in
    let n = Rng.int rng (cap + 1) in
    let tx _ =
      let card = Rng.int rng (min universe (max 1 (size / 2)) + 1) in
      Itemset.of_array (Array.init card (fun _ -> Rng.int rng universe))
    in
    Db.create ~universe (Array.init n tx)
  in
  make ~shrink:shrink_db ~print:db_to_string gen

let fixed_size_db ~universe ~card ~max_transactions =
  if card < 0 || card > universe then
    invalid_arg "Gen.fixed_size_db: card outside [0, universe]";
  let gen rng ~size =
    let cap = max 1 (min max_transactions size) in
    let n = 1 + Rng.int rng cap in
    Db.create ~universe
      (Array.init n (fun _ -> random_subset rng ~universe ~card))
  in
  let shrink db =
    let rows = Array.to_list (Db.transactions db) in
    Seq.filter_map
      (fun rows ->
        if rows = [] then None
        else Some (Db.create ~universe (Array.of_list rows)))
      (shrink_list no_shrink rows)
  in
  make ~shrink ~print:db_to_string gen

let min_support =
  make
    ~shrink:(fun s -> if s = 0.5 then Seq.empty else Seq.return 0.5)
    ~print:string_of_float
    (fun rng ~size:_ -> 0.05 +. (0.9 *. Rng.float rng))

let scheme ~universe =
  make ~print:Randomizer.name (fun rng ~size:_ ->
      if Rng.bool rng then
        let p_keep = 0.3 +. (0.65 *. Rng.float rng) in
        let p_add = 0.01 +. (0.3 *. Rng.float rng) in
        Randomizer.uniform ~universe ~p_keep ~p_add
      else
        let cutoff = 1 + Rng.int rng 5 in
        let rho = 0.05 +. (0.4 *. Rng.float rng) in
        Randomizer.cut_and_paste ~universe ~cutoff ~rho)

let permutation ~n =
  if n < 0 then invalid_arg "Gen.permutation: negative n";
  let print p =
    "[|" ^ String.concat ";" (Array.to_list (Array.map string_of_int p)) ^ "|]"
  in
  make ~print (fun rng ~size:_ ->
      let p = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = p.(i) in
        p.(i) <- p.(j);
        p.(j) <- tmp
      done;
      p)

(* --------------------------------------------------------- fuzz (text) *)

let shrink_string s =
  let n = String.length s in
  if n = 0 then Seq.empty
  else if n = 1 then Seq.return ""
  else List.to_seq [ String.sub s 0 (n / 2); String.sub s (n / 2) (n - (n / 2)) ]

let garbage_string =
  make ~shrink:shrink_string ~print:String.escaped (fun rng ~size ->
      let n = Rng.int rng (max 1 (2 * size) + 1) in
      String.init n (fun _ -> Char.chr (Rng.int rng 256)))

let almost_db_text =
  make ~shrink:shrink_string ~print:String.escaped (fun rng ~size ->
      let u = Rng.int_in_range rng ~lo:(-2) ~hi:20 in
      let c = Rng.int_in_range rng ~lo:(-2) ~hi:10 in
      let n_rows = Rng.int rng (max 1 size + 1) in
      let row _ =
        let len = Rng.int rng 6 in
        String.concat " "
          (List.init len (fun _ ->
               string_of_int (Rng.int_in_range rng ~lo:(-3) ~hi:25)))
      in
      Printf.sprintf "universe %d transactions %d\n%s\n" u c
        (String.concat "\n" (List.init n_rows row)))

let corrupt_scheme_text =
  make ~shrink:shrink_string ~print:String.escaped (fun rng ~size:_ ->
      let m = Rng.int_in_range rng ~lo:(-1) ~hi:6 in
      let rho = -1. +. (3. *. Rng.float rng) in
      let n_probs = Rng.int rng 9 in
      let probs =
        List.init n_probs (fun _ ->
            string_of_float (-0.5 +. (2. *. Rng.float rng)))
      in
      Printf.sprintf "ppdm-scheme 1\nuniverse 10\nname fuzz\nsize %d rho %g keep %s\n"
        m rho (String.concat " " probs))
