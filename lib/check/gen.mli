(** Sized random generators with shrinking, seeded through {!Ppdm_prng.Rng}.

    Every generator draws exclusively from an explicit [Rng.t], so a
    property run is a pure function of one 64-bit seed: any failure the
    {!Property} runner reports replays bit-for-bit from the printed seed.
    A generator carries its own shrinker (candidates strictly "smaller"
    than the input, tried until the property stops failing) and printer,
    so counterexamples come back minimal and readable.

    The [~size] parameter bounds structural largeness (list lengths,
    transaction counts); the runner grows it over a run so early cases are
    tiny and later cases stress the code. *)

open Ppdm_prng
open Ppdm_data
open Ppdm

type 'a t
(** A generator of ['a]: random production, shrinking, printing. *)

val make :
  ?shrink:('a -> 'a Seq.t) ->
  ?print:('a -> string) ->
  (Rng.t -> size:int -> 'a) ->
  'a t
(** Build a generator.  [shrink] defaults to no candidates; [print] to
    ["<opaque>"]. *)

val generate : 'a t -> Rng.t -> size:int -> 'a
val shrink : 'a t -> 'a -> 'a Seq.t
val print : 'a t -> 'a -> string

(** {1 Base combinators} *)

val return : ?print:('a -> string) -> 'a -> 'a t

val int_range : int -> int -> int t
(** Uniform on the inclusive range; shrinks toward the lower bound. *)

val float_range : float -> float -> float t
(** Uniform on [lo, hi); no shrinking (float shrinks rarely clarify). *)

val bool : bool t
(** Fair coin; [true] shrinks to [false]. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Shrinks each component in turn. *)

val list : ?max_len:int -> 'a t -> 'a list t
(** Length uniform on [0, min max_len size]; shrinks by dropping halves,
    dropping single elements, then shrinking elements. *)

val map : ?shrink:('b -> 'b Seq.t) -> ?print:('b -> string) -> ('a -> 'b) -> 'a t -> 'b t
(** [map f g] generates [f x] for [x] from [g].  Shrinking cannot be
    transported through [f]; pass [?shrink] to restore it. *)

(** {1 Domain generators} *)

val item : universe:int -> int t
(** A uniform item id in [0, universe-1]; shrinks toward 0. *)

val itemset : universe:int -> Itemset.t t
(** A random itemset over the universe, cardinality bounded by [size];
    shrinks by removing items. *)

val transaction : universe:int -> Itemset.t t
(** Alias of {!itemset} (a transaction {e is} an itemset). *)

val fixed_size_transaction : universe:int -> card:int -> Itemset.t t
(** A uniformly random [card]-subset of the universe (no shrinking: the
    cardinality is part of the contract).  Requires [card <= universe]. *)

val db : ?min_universe:int -> max_universe:int -> max_transactions:int -> unit -> Db.t t
(** A database with a random universe in [min_universe (default 2),
    max_universe] and at most [min max_transactions size] transactions.
    Shrinks by dropping transactions, then thinning transactions; the
    universe is preserved (most consumers key on it).  Prints in the
    {!Ppdm_data.Io} text format, so a counterexample pastes straight into
    a file. *)

val fixed_size_db :
  universe:int -> card:int -> max_transactions:int -> Db.t t
(** A database whose every transaction has exactly [card] items — the
    single-size-class shape the square estimator path requires.  Shrinks
    by dropping transactions only. *)

val min_support : float t
(** A support threshold in (0, 1]; shrinks to 0.5 once (a simpler,
    usually still-failing value). *)

val scheme : universe:int -> Randomizer.t t
(** A randomization scheme over the universe: a uniform (Warner-style)
    operator with [p_keep] in [0.3, 0.95] and [p_add] in [0.01, 0.31], or
    cut-and-paste with [K] in [1, 5] and [rho] in [0.05, 0.45].  Prints
    the scheme name. *)

val permutation : n:int -> int array t
(** A uniform permutation of [0..n-1] (Fisher-Yates); no shrinking. *)

(** {1 Fuzz (text) generators}

    Migrated from the ad-hoc generators of [test/test_fuzz.ml]: inputs
    for parser-survival properties.  All shrink by halving the string. *)

val garbage_string : string t
(** Arbitrary bytes (0-255), length up to [2 * size]. *)

val almost_db_text : string t
(** Structured-ish garbage for {!Ppdm_data.Io.read_channel}: a header
    with possibly-wrong numbers followed by a partial body with items
    possibly negative or outside the universe. *)

val corrupt_scheme_text : string t
(** Structured-ish garbage for {!Ppdm.Scheme_io.read_channel}: a
    syntactically plausible scheme file with out-of-range sizes, rhos,
    and keep distributions. *)
