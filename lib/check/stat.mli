(** Statistical assertions: empirical validation of the randomization
    operators against their analytical descriptions.

    The quantitative guarantees of the system — the transition matrices
    support recovery inverts, the amplification bound the privacy
    certificate quotes, the unbiasedness of the estimator — are exactly
    the things example-based tests cannot see break.  The helpers here
    test them as statistical hypotheses: sample the real implementation,
    compare against the closed form, and fail only below a p-value of
    [0.001] (a 1-in-1000 false alarm per check, replayable by seed).

    Sample counts follow [$PPDM_CHECK_COUNT] through
    {!Property.scaled}, so nightly runs test the same hypotheses with
    100x the power. *)

open Ppdm_prng
open Ppdm_data
open Ppdm

val erfc : float -> float
(** Complementary error function (rational approximation, absolute error
    below 1.3e-7 — ample for p-value thresholds of 1e-3). *)

val chi_square_pvalue : dof:int -> float -> float
(** Upper-tail p-value of a chi-square statistic (regularized incomplete
    gamma).  @raise Invalid_argument if [dof <= 0]. *)

val chi_square_fit : observed:int array -> expected:float array -> float
(** Goodness-of-fit p-value of observed bucket counts against expected
    ones.  Buckets with expected mass below 5 are pooled with their right
    neighbours (the standard validity rule); a sample landing in a bucket
    of expected mass zero returns 0 outright.  Returns 1 when fewer than
    two poolable buckets remain (no test possible). *)

val z_pvalue : float -> float
(** Two-sided normal p-value of a z statistic. *)

val transition_pvalue :
  ?samples:int ->
  scheme:Randomizer.t ->
  size:int ->
  k:int ->
  l:int ->
  Rng.t ->
  float
(** Empirically validate one column of the transition matrix: fix a
    transaction [t] of [size] items and a [k]-itemset [A] with
    [|t cap A| = l], sample [Randomizer.apply] ([samples] times, default
    {!Property.scaled} [~base:20000]), histogram [|R(t) cap A|], and
    return the chi-square p-value against column [l] of
    [Transition.of_scheme].
    @raise Invalid_argument if [l > min k size], [k > size], or the
    scheme's universe cannot embed [t] and [A]. *)

val amplification_check :
  ?trials:int -> scheme:Randomizer.t -> size:int -> Rng.t -> (unit, string) result
(** Check the amplification bound on sampled triples: for random
    same-size transactions [t1, t2] and a random output [y], the exact
    transition probabilities (closed form of the select-a-size operator)
    must satisfy [p(t1 -> y) <= gamma p(t2 -> y)] and symmetrically,
    where [gamma] is {!Ppdm.Amplification.gamma}.  Trivially [Ok] when
    gamma is infinite (no bound is claimed).  Default trials:
    {!Property.scaled} [~base:300]. *)

val estimator_bias_pvalue :
  ?trials:int ->
  scheme:Randomizer.t ->
  db:Db.t ->
  itemset:Itemset.t ->
  Rng.t ->
  float
(** Run [trials] (default {!Property.scaled} [~base:60]) independent
    randomize-then-estimate rounds over [db] and z-test the mean
    recovered support against the true support — the estimator's
    unbiasedness claim as a hypothesis test. *)

(** {2 Sampled counting}

    The sampled counter ({!Ppdm_mining.Sampled}) claims its scaled counts
    are unbiased for the exact counts with the finite-population-corrected
    sigma [Estimator.sampling_sigma], and the estimator claims the
    combined sigma of a sampled recovery is honest.  Both claims are
    tested as hypotheses over independent plan seeds. *)

val sampled_counts_pvalue :
  ?seeds:int -> db:Db.t -> itemset:Itemset.t -> fraction:float -> unit -> float
(** Count [itemset] on [seeds] (default {!Property.scaled} [~base:40])
    independently seeded sampling plans at [fraction], standardize each
    scaled count against the exact count by the predicted sampling sigma,
    and z-test the mean standardized error against zero — the sampled
    counter's unbiasedness claim.  Seeds whose plan degenerates to
    exhaustive are skipped ([1.] if all do).
    @raise Invalid_argument unless [fraction] is inside (0,1). *)

val sampled_sigma_coverage :
  ?seeds:int ->
  ?z:float ->
  db:Db.t ->
  itemset:Itemset.t ->
  fraction:float ->
  unit ->
  (unit, string) result
(** Coverage form of the same hypothesis: across plan seeds, the observed
    |sampled - exact| must fall within [z] (default 1.96) predicted
    sigmas except for a binomial-tail allowance of misses.  The
    acceptance check behind `ppdm selftest`'s sampled-sigma gate. *)

val combined_sigma_pvalue :
  ?trials:int ->
  scheme:Randomizer.t ->
  db:Db.t ->
  itemset:Itemset.t ->
  fraction:float ->
  Rng.t ->
  float
(** End-to-end honest-sigma test: per trial, randomize [db] afresh,
    estimate from a [fraction] row sample with
    [Estimator.estimate_sampled], and standardize the sampled-vs-full
    estimate difference by [sqrt (sigma_sampled^2 - sigma_full^2)] (the
    predicted sampling-only part of the combined variance); z-test the
    mean.  Default trials: {!Property.scaled} [~base:30].
    @raise Invalid_argument unless [fraction] is inside (0,1). *)

val combined_sigma_coverage :
  ?trials:int ->
  ?z:float ->
  scheme:Randomizer.t ->
  db:Db.t ->
  itemset:Itemset.t ->
  fraction:float ->
  Rng.t ->
  (unit, string) result
(** Coverage form of {!combined_sigma_pvalue}: per-trial standardized
    differences must fall within [z] (default 1.96) except for a
    binomial-tail allowance. *)
