(** Binary message codec of the ingest protocol.

    A message is one frame payload (see {!Framing} for the length prefix):
    a one-byte tag followed by a fixed, big-endian binary layout per
    message kind.  The codec is strict in both directions — {!decode}
    rejects unknown tags, short payloads, trailing bytes after a
    fixed-size message, and item lists that are not strictly increasing —
    so a garbled frame surfaces as a typed error, never as a silently
    misparsed report.

    Protocol summary (client to server unless noted):

    {v
    tag  message           payload after the tag
    0x01 Hello             u16 version, u16 n, n*u16 sizes, scheme text
    0x02 Welcome (server)  u32 universe, u16 n, n*(u16 k, k*u32 items)
    0x03 Report            u16 original size, u16 k, k*u32 items
    0x04 Snapshot_request  u8 flush (0|1)
    0x05 Snapshot (server) JSON text
    0x06 Shutdown          (empty)
    0x07 Bye (server)      (empty)
    0x08 Error (server)    u8 code, detail text
    v}

    The [Hello] scheme text is the {!Ppdm.Scheme_io} serialization of the
    client's operator parameters at the sizes it will report (empty for a
    control-only session that sends no reports); the server accepts the
    session only if {!Ppdm.Randomizer.same_parameters} holds against its
    own scheme at those sizes. *)

open Ppdm_data

val protocol_version : int

(** Typed error codes the server can answer with.  [Frame_too_large],
    [Bad_frame] and [Protocol_violation] are fatal (the server closes the
    session after sending them); [Scheme_mismatch] rejects the handshake;
    [Item_out_of_universe] and [Size_not_covered] reject one report and
    leave the session open. *)
type error_code =
  | Frame_too_large
  | Bad_frame
  | Protocol_violation
  | Scheme_mismatch
  | Item_out_of_universe
  | Size_not_covered

val error_code_name : error_code -> string

type message =
  | Hello of { version : int; sizes : int list; scheme : string }
  | Welcome of { universe : int; itemsets : Itemset.t list }
  | Report of { size : int; items : Itemset.t }
  | Snapshot_request of { flush : bool }
  | Snapshot of { json : string }
  | Shutdown
  | Bye
  | Error of { code : error_code; detail : string }

val encode : message -> Bytes.t
(** Serialize to a frame payload.
    @raise Invalid_argument if a field exceeds its encoding range (a size
    or cardinality beyond 65535, an item id beyond [2^31 - 1], more than
    65535 sizes or itemsets). *)

val decode : Bytes.t -> (message, string) result
(** Parse one frame payload.  Total: every byte sequence yields [Ok] or
    [Error], never an exception. *)

val message_name : message -> string
(** Tag name for logs and metrics ("hello", "report", ...). *)
