type read_error =
  | Closed
  | Truncated of { expected : int; got : int }
  | Bad_length of int
  | Too_large of { declared : int; limit : int }

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated { expected; got } ->
      Printf.sprintf "truncated frame: %d of %d byte(s)" got expected
  | Bad_length n -> Printf.sprintf "bad frame length %d" n
  | Too_large { declared; limit } ->
      Printf.sprintf "frame length %d exceeds cap %d" declared limit

let default_max_frame = 1 lsl 20

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let write ?(max_frame = default_max_frame) fd payload =
  let len = Bytes.length payload in
  if len = 0 then invalid_arg "Framing.write: empty payload";
  (* Mirror the read-side cap: a frame above the peer's [max_frame] is
     guaranteed to be rejected there, so refusing to emit it turns a
     remote protocol error into a local, diagnosable one. *)
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Framing.write: payload length %d exceeds cap %d" len
         max_frame);
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  write_all fd header 0 4;
  write_all fd payload 0 len

(* Read exactly [len] bytes; [Ok ()] or how many actually arrived before
   EOF.  [Unix.read] returning 0 is the EOF signal on sockets. *)
let read_exact fd b len =
  let rec go pos =
    if pos = len then Ok ()
    else
      match Unix.read fd b pos (len - pos) with
      | 0 -> Error pos
      | n -> go (pos + n)
  in
  go 0

let read ?(max_frame = default_max_frame) fd =
  let header = Bytes.create 4 in
  match read_exact fd header 4 with
  | Error 0 -> Error Closed
  | Error got -> Error (Truncated { expected = 4; got })
  | Ok () ->
      let declared = Int32.to_int (Bytes.get_int32_be header 0) in
      if declared <= 0 then Error (Bad_length declared)
      else if declared > max_frame then
        Error (Too_large { declared; limit = max_frame })
      else begin
        let payload = Bytes.create declared in
        match read_exact fd payload declared with
        | Ok () -> Ok payload
        | Error got -> Error (Truncated { expected = declared; got })
      end
