(** The admin plane: minimal HTTP/1.0 on a second loopback listener.

    Three GET endpoints: [/metrics] (OpenMetrics text, rendered on
    demand), [/healthz] (liveness), [/readyz] (readiness — the server is
    accepting and its queues are below high-water).  One request per
    connection, [Connection: close], a hard request-size cap, and a 1s
    read timeout, so a slow or hostile scraper can stall only this loop
    — the data plane shares nothing with it but the stop flag and
    read-only probe closures. *)

type handlers = {
  metrics : unit -> string;
      (** the exposition body; an exception answers 500 *)
  healthy : unit -> bool;  (** liveness: 200 / 503 *)
  ready : unit -> bool * string;  (** readiness verdict + reason body *)
}

val handle_request : handlers -> string -> int * string * string
(** Pure request → (status, content-type, body) mapping over the raw
    request text (request line + headers), exposed for unit tests.
    Non-GET methods answer 405, unknown paths 404, malformed request
    lines 400. *)

val serve_loop : Unix.file_descr -> stop:bool Atomic.t -> handlers -> unit
(** Accept and answer requests one at a time until [stop] is set
    (checked every 50ms while idle); closes the listener on exit.  Run
    as one pool task next to the data-plane stages. *)

val fetch : port:int -> string -> (int * string, string) result
(** Minimal client: one HTTP/1.0 GET to 127.0.0.1:[port], read to EOF.
    [Ok (status, body)], or [Error message] on connect/read failure —
    used by [ppdm top], [ppdm stat], tests, and fault scenarios. *)

val openmetrics_content_type : string
