open Ppdm_data
open Ppdm
open Ppdm_runtime

type config = {
  port : int;
  jobs : int;
  shards : int;
  batch : int;
  linger_ns : int;
  queue_capacity : int;
  max_frame : int;
  sched : Pool.sched;
  scheme : Randomizer.t;
  itemsets : Itemset.t list;
}

let default_config ~scheme ~itemsets =
  {
    port = 0;
    jobs = 2;
    shards = 2;
    batch = 256;
    linger_ns = 0;
    queue_capacity = 4096;
    max_frame = Framing.default_max_frame;
    sched = Pool.Chunked;
    scheme;
    itemsets;
  }

type stats = { reports : int; sessions : int }

(* State shared between the server domains and the controlling one. *)
type shared = {
  config : config;
  shards : Shard.t array;
  (* A scheme is a lazily-populated per-size cache (a plain Hashtbl), so
     every resolving operation — the handshake's [same_parameters], the
     snapshot's merge + estimate — serializes through this lock.  Folding
     ([Stream.observe]) never resolves and runs lock-free. *)
  scheme_lock : Mutex.t;
  stop : bool Atomic.t;
  sessions : int Atomic.t;
}

let validate config =
  if config.jobs < 1 then invalid_arg "Serve: jobs < 1";
  if config.shards < 1 then invalid_arg "Serve: shards < 1";
  if config.batch < 1 then invalid_arg "Serve: batch < 1";
  if config.linger_ns < 0 then invalid_arg "Serve: negative linger";
  if config.queue_capacity < 1 then invalid_arg "Serve: queue capacity < 1";
  if config.max_frame < 16 then invalid_arg "Serve: max_frame < 16";
  if config.itemsets = [] then invalid_arg "Serve: no tracked itemsets"

let make_shared config =
  {
    config;
    shards =
      Array.init config.shards (fun _ ->
          Shard.create ~scheme:config.scheme ~itemsets:config.itemsets
            ~capacity:config.queue_capacity);
    scheme_lock = Mutex.create ();
    stop = Atomic.make false;
    sessions = Atomic.make 0;
  }

(* ------------------------------------------------------------ snapshots *)

let shared_estimates sh ~flush =
  if flush then Array.iter Shard.quiesce sh.shards;
  Mutex.lock sh.scheme_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.scheme_lock)
    (fun () ->
      (* Per-shard copies are atomic w.r.t. batch folds; merging the
         copies sums integer histograms, so the result equals a
         sequential fold of the same reports regardless of how sessions
         and shards interleaved. *)
      let copies = Array.map Shard.snapshot sh.shards in
      List.mapi
        (fun i itemset ->
          let per_shard =
            Array.to_list (Array.map (fun streams -> List.nth streams i) copies)
          in
          let merged = Stream.merge per_shard in
          if Stream.observed merged = 0 then (itemset, None)
          else (itemset, Some (Stream.estimate merged)))
        sh.config.itemsets)

let shared_folded sh =
  Array.fold_left (fun acc shard -> acc + Shard.folded shard) 0 sh.shards

let float_or_null f =
  if Float.is_finite f then Ppdm_obs.Json.Float f else Ppdm_obs.Json.Null

let shared_snapshot_json sh ~flush =
  let estimates = shared_estimates sh ~flush in
  let itemset_json (itemset, est) =
    let items =
      Ppdm_obs.Json.List
        (List.map (fun i -> Ppdm_obs.Json.Int i) (Itemset.to_list itemset))
    in
    let fields =
      match est with
      | None -> [ ("items", items); ("observed", Ppdm_obs.Json.Int 0) ]
      | Some e ->
          [
            ("items", items);
            ("observed", Ppdm_obs.Json.Int e.Estimator.n_transactions);
            ("support", float_or_null e.Estimator.support);
            ("sigma", float_or_null e.Estimator.sigma);
          ]
    in
    Ppdm_obs.Json.Obj fields
  in
  Ppdm_obs.Json.to_string
    (Ppdm_obs.Json.Obj
       [
         ("universe", Ppdm_obs.Json.Int (Randomizer.universe sh.config.scheme));
         ("reports", Ppdm_obs.Json.Int (shared_folded sh));
         ("itemsets", Ppdm_obs.Json.List (List.map itemset_json estimates));
       ])

(* ------------------------------------------------------------- sockets *)

let bind_listener config =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt listener Unix.SO_REUSEADDR true;
    Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
    Unix.listen listener 64;
    Unix.getsockname listener
  with
  | Unix.ADDR_INET (_, port) -> (listener, port)
  | Unix.ADDR_UNIX _ ->
      Unix.close listener;
      invalid_arg "Serve: unexpected socket family"
  | exception e ->
      Unix.close listener;
      raise e

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------ the server *)

let serve_on listener sh =
  let config = sh.config in
  let pending = Ingest.create ~capacity:64 in
  let verify_scheme client ~sizes =
    Mutex.lock sh.scheme_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sh.scheme_lock)
      (fun () -> Randomizer.same_parameters config.scheme client ~sizes)
  in
  let session_config =
    {
      Session.scheme = config.scheme;
      universe = Randomizer.universe config.scheme;
      itemsets = config.itemsets;
      max_frame = config.max_frame;
      verify_scheme;
      snapshot = (fun ~flush -> shared_snapshot_json sh ~flush);
      request_shutdown = (fun () -> Atomic.set sh.stop true);
    }
  in
  let acceptor () =
    let rec go () =
      if Atomic.get sh.stop then ()
      else
        match Unix.select [ listener ] [] [] 0.05 with
        | [], _, _ -> go ()
        | _ -> (
            match Unix.accept listener with
            | fd, _ ->
                Ppdm_obs.Metrics.incr "server.accepted";
                Ppdm_obs.Trace.instant ~name:"server.accept" ~cat:"server";
                if not (Ingest.push pending fd) then close_quietly fd;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ();
    close_quietly listener;
    Ingest.close pending
  in
  let workers_left = Atomic.make config.jobs in
  let worker () =
    let rec go () =
      match Ingest.pop pending with
      | None -> ()
      | Some fd ->
          Fun.protect
            ~finally:(fun () -> close_quietly fd)
            (fun () -> Session.run session_config ~shards:sh.shards fd);
          ignore (Atomic.fetch_and_add sh.sessions 1);
          Ingest.done_with pending;
          go ()
    in
    go ();
    (* The last worker out closes the shards: no session can submit any
       more, so the folders drain what is queued and exit. *)
    if Atomic.fetch_and_add workers_left (-1) = 1 then
      Array.iter Shard.close sh.shards
  in
  let folder shard () =
    Shard.fold_loop shard ~batch:config.batch ~linger_ns:config.linger_ns
  in
  let tasks =
    Array.concat
      [
        [| acceptor |];
        Array.init config.jobs (fun _ -> worker);
        Array.map folder sh.shards;
      ]
  in
  (* Every stage is a long-lived task, so the pool is sized to run them
     all at once: 1 acceptor + jobs workers + shards folders. *)
  Pool.with_pool ~jobs:(Array.length tasks) (fun pool ->
      ignore (Pool.run ~sched:config.sched pool tasks));
  { reports = shared_folded sh; sessions = Atomic.get sh.sessions }

(* ------------------------------------------------------------- handles *)

type t = {
  bound_port : int;
  sh : shared;
  domain : stats Domain.t;
  mutable final : stats option;
}

let start config =
  validate config;
  let listener, bound_port = bind_listener config in
  let sh = make_shared config in
  let domain = Domain.spawn (fun () -> serve_on listener sh) in
  { bound_port; sh; domain; final = None }

let port t = t.bound_port

let wait t =
  match t.final with
  | Some s -> s
  | None ->
      let s = Domain.join t.domain in
      t.final <- Some s;
      s

let stop t =
  Atomic.set t.sh.stop true;
  wait t

let snapshot_estimates t ~flush = shared_estimates t.sh ~flush
let snapshot_json t ~flush = shared_snapshot_json t.sh ~flush

let run ?(ready = ignore) config =
  validate config;
  let listener, bound_port = bind_listener config in
  let sh = make_shared config in
  ready bound_port;
  serve_on listener sh
