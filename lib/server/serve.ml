open Ppdm_data
open Ppdm
open Ppdm_runtime

type config = {
  port : int;
  jobs : int;
  shards : int;
  batch : int;
  linger_ns : int;
  queue_capacity : int;
  max_frame : int;
  sched : Pool.sched;
  scheme : Randomizer.t;
  itemsets : Itemset.t list;
  admin_port : int option;
  sampler_period_ns : int;
}

let default_config ~scheme ~itemsets =
  {
    port = 0;
    jobs = 2;
    shards = 2;
    batch = 256;
    linger_ns = 0;
    queue_capacity = 4096;
    max_frame = Framing.default_max_frame;
    sched = Pool.Chunked;
    scheme;
    itemsets;
    admin_port = None;
    sampler_period_ns = 1_000_000_000;
  }

type stats = { reports : int; sessions : int }

(* State shared between the server domains and the controlling one. *)
type shared = {
  config : config;
  shards : Shard.t array;
  (* A scheme is a lazily-populated per-size cache (a plain Hashtbl), so
     every resolving operation — the handshake's [same_parameters], the
     snapshot's merge + estimate — serializes through this lock.  Folding
     ([Stream.observe]) never resolves and runs lock-free. *)
  scheme_lock : Mutex.t;
  stop : bool Atomic.t;
  sessions : int Atomic.t; (* sessions started (counted at handshake accept) *)
  accepting : bool Atomic.t; (* acceptor loop is live (feeds /readyz) *)
}

let validate config =
  if config.jobs < 1 then invalid_arg "Serve: jobs < 1";
  if config.shards < 1 then invalid_arg "Serve: shards < 1";
  if config.batch < 1 then invalid_arg "Serve: batch < 1";
  if config.linger_ns < 0 then invalid_arg "Serve: negative linger";
  if config.queue_capacity < 1 then invalid_arg "Serve: queue capacity < 1";
  if config.max_frame < 16 then invalid_arg "Serve: max_frame < 16";
  if config.sampler_period_ns < 1_000_000 then
    invalid_arg "Serve: sampler period < 1ms";
  if config.itemsets = [] then invalid_arg "Serve: no tracked itemsets"

let make_shared config =
  {
    config;
    shards =
      Array.init config.shards (fun _ ->
          Shard.create ~scheme:config.scheme ~itemsets:config.itemsets
            ~capacity:config.queue_capacity);
    scheme_lock = Mutex.create ();
    stop = Atomic.make false;
    sessions = Atomic.make 0;
    accepting = Atomic.make false;
  }

(* ------------------------------------------------------------ snapshots *)

let shared_estimates sh ~flush =
  if flush then Array.iter Shard.quiesce sh.shards;
  Mutex.lock sh.scheme_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.scheme_lock)
    (fun () ->
      (* Per-shard copies are atomic w.r.t. batch folds; merging the
         copies sums integer histograms, so the result equals a
         sequential fold of the same reports regardless of how sessions
         and shards interleaved. *)
      let copies = Array.map Shard.snapshot sh.shards in
      List.mapi
        (fun i itemset ->
          let per_shard =
            Array.to_list (Array.map (fun streams -> List.nth streams i) copies)
          in
          let merged = Stream.merge per_shard in
          if Stream.observed merged = 0 then (itemset, None)
          else (itemset, Some (Stream.estimate merged)))
        sh.config.itemsets)

let shared_folded sh =
  Array.fold_left (fun acc shard -> acc + Shard.folded shard) 0 sh.shards

let float_or_null f =
  if Float.is_finite f then Ppdm_obs.Json.Float f else Ppdm_obs.Json.Null

let shared_queued sh =
  Array.fold_left (fun acc shard -> acc + Shard.depth shard) 0 sh.shards

(* Server-side operational counters, computed from the deterministic
   shared state (never from the Metrics registry) and always present, so
   [ppdm load] stdout is byte-identical whether or not the admin plane
   or --stats is on.  With [flush], sessions/folded/queued are exact:
   sessions are counted at handshake time (before the Welcome that the
   client's connect waits on), and the flush barrier empties the
   queues. *)
let shared_metrics_json sh =
  Ppdm_obs.Json.Obj
    [
      ("sessions", Ppdm_obs.Json.Int (Atomic.get sh.sessions));
      ("folded", Ppdm_obs.Json.Int (shared_folded sh));
      ("queued", Ppdm_obs.Json.Int (shared_queued sh));
      ("shards", Ppdm_obs.Json.Int (Array.length sh.shards));
    ]

let shared_snapshot_json sh ~flush =
  let estimates = shared_estimates sh ~flush in
  let itemset_json (itemset, est) =
    let items =
      Ppdm_obs.Json.List
        (List.map (fun i -> Ppdm_obs.Json.Int i) (Itemset.to_list itemset))
    in
    let fields =
      match est with
      | None -> [ ("items", items); ("observed", Ppdm_obs.Json.Int 0) ]
      | Some e ->
          [
            ("items", items);
            ("observed", Ppdm_obs.Json.Int e.Estimator.n_transactions);
            ("support", float_or_null e.Estimator.support);
            ("sigma", float_or_null e.Estimator.sigma);
          ]
    in
    Ppdm_obs.Json.Obj fields
  in
  Ppdm_obs.Json.to_string
    (Ppdm_obs.Json.Obj
       [
         ("universe", Ppdm_obs.Json.Int (Randomizer.universe sh.config.scheme));
         ("reports", Ppdm_obs.Json.Int (shared_folded sh));
         ("itemsets", Ppdm_obs.Json.List (List.map itemset_json estimates));
         ("metrics", shared_metrics_json sh);
       ])

(* ------------------------------------------------------------- sockets *)

let bind_listener port =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt listener Unix.SO_REUSEADDR true;
    Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen listener 64;
    Unix.getsockname listener
  with
  | Unix.ADDR_INET (_, port) -> (listener, port)
  | Unix.ADDR_UNIX _ ->
      Unix.close listener;
      invalid_arg "Serve: unexpected socket family"
  | exception e ->
      Unix.close listener;
      raise e

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------ the server *)

(* ---------------------------------------------------------- admin plane *)

let admin_handlers sh =
  {
    Admin.metrics = (fun () -> Ppdm_obs.Exposition.render ());
    healthy = (fun () -> true);
    ready =
      (fun () ->
        if Atomic.get sh.stop then (false, "stopping")
        else if not (Atomic.get sh.accepting) then (false, "not accepting")
        else begin
          (* High-water: any shard queue at >= 90% of capacity means a
             new client would mostly block on backpressure. *)
          let cap = sh.config.queue_capacity in
          if Array.exists (fun s -> Shard.depth s * 10 >= cap * 9) sh.shards
          then (false, "queues above high-water")
          else (true, "ok")
        end);
  }

(* The periodic sampler: every [sampler_period_ns] it gauges per-shard
   queue depth and backlog and the session count.  It reads the same
   shared state the snapshot does — depth is one atomic-ish queue
   counter, folded takes the shard lock a folder holds only per batch —
   so its cost is a few loads per period, far below the <1% ingest
   budget (see bench B11). *)
let sampler sh () =
  let period = float_of_int sh.config.sampler_period_ns /. 1e9 in
  let rec go last =
    if Atomic.get sh.stop then ()
    else begin
      Unix.sleepf (Float.min 0.05 period);
      let now = Ppdm_obs.Metrics.now_ns () in
      if float_of_int (now - last) /. 1e9 >= period then begin
        Ppdm_obs.Metrics.incr "server.sampler.ticks";
        Ppdm_obs.Metrics.gauge "server.sessions.started"
          (float_of_int (Atomic.get sh.sessions));
        Array.iteri
          (fun i shard ->
            let s = string_of_int i in
            Ppdm_obs.Metrics.gauge
              ("server.queue.depth.s" ^ s)
              (float_of_int (Shard.depth shard));
            Ppdm_obs.Metrics.gauge
              ("server.folded.s" ^ s)
              (float_of_int (Shard.folded shard)))
          sh.shards;
        go now
      end
      else go last
    end
  in
  go (Ppdm_obs.Metrics.now_ns ())

let serve_on listener ?admin sh =
  let config = sh.config in
  let pending = Ingest.create ~capacity:64 in
  let verify_scheme client ~sizes =
    Mutex.lock sh.scheme_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sh.scheme_lock)
      (fun () -> Randomizer.same_parameters config.scheme client ~sizes)
  in
  let session_config =
    {
      Session.scheme = config.scheme;
      universe = Randomizer.universe config.scheme;
      itemsets = config.itemsets;
      max_frame = config.max_frame;
      verify_scheme;
      snapshot = (fun ~flush -> shared_snapshot_json sh ~flush);
      request_shutdown = (fun () -> Atomic.set sh.stop true);
    }
  in
  let acceptor () =
    let rec go () =
      if Atomic.get sh.stop then ()
      else
        match Unix.select [ listener ] [] [] 0.05 with
        | [], _, _ -> go ()
        | _ -> (
            match Unix.accept listener with
            | fd, _ ->
                Ppdm_obs.Metrics.incr "server.accepted";
                Ppdm_obs.Trace.instant ~name:"server.accept" ~cat:"server";
                if not (Ingest.push pending fd) then close_quietly fd;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    Atomic.set sh.accepting true;
    go ();
    Atomic.set sh.accepting false;
    close_quietly listener;
    Ingest.close pending
  in
  let workers_left = Atomic.make config.jobs in
  let worker () =
    let rec go () =
      match Ingest.pop pending with
      | None -> ()
      | Some fd ->
          (* Counted when the session {e starts}: the increment then
             happens-before the Welcome reply, so any client that has
             completed its handshake is already in the count read by a
             later snapshot — making the session count in a flushed
             control snapshot deterministic. *)
          ignore (Atomic.fetch_and_add sh.sessions 1);
          Fun.protect
            ~finally:(fun () -> close_quietly fd)
            (fun () -> Session.run session_config ~shards:sh.shards fd);
          Ingest.done_with pending;
          go ()
    in
    go ();
    (* The last worker out closes the shards: no session can submit any
       more, so the folders drain what is queued and exit. *)
    if Atomic.fetch_and_add workers_left (-1) = 1 then
      Array.iter Shard.close sh.shards
  in
  let folder shard () =
    Shard.fold_loop shard ~batch:config.batch ~linger_ns:config.linger_ns
  in
  (* The admin plane rides on metrics; turn them on for its lifetime
     (restored at exit) so the registry has content to expose.  This
     cannot change data-plane results or stdout — the determinism
     contract instrumentation has obeyed since PR 2. *)
  let restore_metrics =
    match admin with
    | None -> fun () -> ()
    | Some _ ->
        let was = Ppdm_obs.Metrics.enabled () in
        Ppdm_obs.Metrics.set_enabled true;
        Ppdm_obs.Window.define_meter "server.ingest";
        Ppdm_obs.Window.define_histogram "server.fold.latency_ns";
        Ppdm_obs.Exposition.note_start ();
        fun () -> Ppdm_obs.Metrics.set_enabled was
  in
  let admin_tasks =
    match admin with
    | None -> [||]
    | Some admin_listener ->
        [|
          (fun () ->
            Admin.serve_loop admin_listener ~stop:sh.stop (admin_handlers sh));
          sampler sh;
        |]
  in
  let tasks =
    Array.concat
      [
        [| acceptor |];
        Array.init config.jobs (fun _ -> worker);
        Array.map folder sh.shards;
        admin_tasks;
      ]
  in
  (* Every stage is a long-lived task, so the pool is sized to run them
     all at once: 1 acceptor + jobs workers + shards folders (+ admin
     loop and sampler when the admin plane is on). *)
  Fun.protect ~finally:restore_metrics (fun () ->
      Pool.with_pool ~jobs:(Array.length tasks) (fun pool ->
          ignore (Pool.run ~sched:config.sched pool tasks)));
  { reports = shared_folded sh; sessions = Atomic.get sh.sessions }

(* ------------------------------------------------------------- handles *)

type t = {
  bound_port : int;
  admin_bound_port : int option;
  sh : shared;
  domain : stats Domain.t;
  mutable final : stats option;
}

(* Bind the admin listener (when configured) after the data listener;
   on failure close the data listener so neither leaks. *)
let bind_admin config listener =
  match config.admin_port with
  | None -> None
  | Some p -> (
      match bind_listener p with
      | admin -> Some admin
      | exception e ->
          close_quietly listener;
          raise e)

let start config =
  validate config;
  let listener, bound_port = bind_listener config.port in
  let admin = bind_admin config listener in
  let sh = make_shared config in
  let domain =
    Domain.spawn (fun () -> serve_on listener ?admin:(Option.map fst admin) sh)
  in
  { bound_port; admin_bound_port = Option.map snd admin; sh; domain;
    final = None }

let port t = t.bound_port
let admin_port t = t.admin_bound_port

let wait t =
  match t.final with
  | Some s -> s
  | None ->
      let s = Domain.join t.domain in
      t.final <- Some s;
      s

let stop t =
  Atomic.set t.sh.stop true;
  wait t

let snapshot_estimates t ~flush = shared_estimates t.sh ~flush
let snapshot_json t ~flush = shared_snapshot_json t.sh ~flush

let run ?(ready = ignore) ?(admin_ready = ignore) config =
  validate config;
  let listener, bound_port = bind_listener config.port in
  let admin = bind_admin config listener in
  let sh = make_shared config in
  ready bound_port;
  Option.iter (fun (_, p) -> admin_ready p) admin;
  serve_on listener ?admin:(Option.map fst admin) sh
