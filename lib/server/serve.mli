(** The ingest service: a loopback TCP server that turns randomized
    transaction reports into live support estimates.

    Execution runs entirely on one {!Ppdm_runtime.Pool} of domains:

    {v
              accept loop (1 domain)
                   | bounded pending-connection queue
         session workers (jobs domains)  -- framing, handshake, validation
                   | bounded per-shard report queues (backpressure)
            shard folders (shards domains) -- batch folds into Stream
    v}

    Every queue is bounded, so a slow stage pushes back on its producers
    (ultimately on the clients' TCP windows) instead of growing memory.
    Estimates update incrementally per batch; a snapshot merges the
    per-shard accumulators with {!Ppdm.Stream.merge} and inverts
    [ŝ = P⁻¹ŝ'] — the statistic is a sum of integer histograms, so the
    result is bit-identical to a sequential fold of the same reports at
    any job and shard count. *)

open Ppdm_data
open Ppdm

type config = {
  port : int;  (** TCP port on 127.0.0.1; 0 picks an ephemeral one *)
  jobs : int;  (** session-worker domains *)
  shards : int;  (** ingest shards, one folder domain each *)
  batch : int;  (** max reports folded per batch *)
  linger_ns : int;  (** how long a folder waits to fill a batch (0: none) *)
  queue_capacity : int;  (** per-shard queue bound (the backpressure knob) *)
  max_frame : int;  (** frame payload cap on every session *)
  sched : Ppdm_runtime.Pool.sched;
      (** pool scheduler for the server stages.  Every stage is a
          long-lived task and the pool is sized to run them all at once,
          so the choice cannot affect behaviour — it is exposed so the
          stealing scheduler's dispatch path gets exercised end to end. *)
  scheme : Randomizer.t;  (** the operator clients must match *)
  itemsets : Itemset.t list;  (** tracked itemsets (estimates served) *)
  admin_port : int option;
      (** when set, a second loopback listener serves the {!Admin} plane
          ([/metrics], [/healthz], [/readyz]) on this port (0: ephemeral)
          and the periodic sampler runs; metrics recording is enabled for
          the server's lifetime (restored at exit).  The data plane's
          wire protocol and every snapshot byte are unaffected. *)
  sampler_period_ns : int;  (** admin sampler period (min 1ms) *)
}

val default_config : scheme:Randomizer.t -> itemsets:Itemset.t list -> config
(** port 0, jobs 2, shards 2, batch 256, no linger, queue capacity 4096,
    {!Framing.default_max_frame}, chunked scheduling, no admin plane,
    1s sampler period. *)

type stats = { reports : int; sessions : int }
(** Totals over the server's lifetime (reports = folded into shards). *)

type t
(** A running server (on its own domains). *)

val start : config -> t
(** Bind and start serving; returns once the socket is listening.
    @raise Invalid_argument on a non-positive jobs/shards/batch/capacity.
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The actual listening port (useful with [port = 0]). *)

val admin_port : t -> int option
(** The admin plane's listening port, when configured. *)

val stop : t -> stats
(** Ask the server to stop (as a client [Shutdown] frame would), wait for
    it to wind down, and return its totals.  Idempotent. *)

val wait : t -> stats
(** Wait for the server to stop on its own (a client [Shutdown]). *)

val snapshot_estimates : t -> flush:bool -> (Itemset.t * Estimator.t option) list
(** The live estimates, one per tracked itemset in configuration order
    ([None] until an itemset has observations).  With [flush], waits for
    every queued report to be folded first.  This is the same computation
    the wire snapshot serves, exposed for in-process verification. *)

val snapshot_json : t -> flush:bool -> string
(** The wire snapshot: what a [Snapshot_request] returns. *)

val run : ?ready:(int -> unit) -> ?admin_ready:(int -> unit) -> config -> stats
(** Blocking variant for the CLI: serve until a client sends [Shutdown].
    [ready] is called with the bound data port once listening;
    [admin_ready] with the bound admin port when the admin plane is
    configured. *)
