open Ppdm_data

let protocol_version = 1

type error_code =
  | Frame_too_large
  | Bad_frame
  | Protocol_violation
  | Scheme_mismatch
  | Item_out_of_universe
  | Size_not_covered

let error_code_name = function
  | Frame_too_large -> "frame-too-large"
  | Bad_frame -> "bad-frame"
  | Protocol_violation -> "protocol-violation"
  | Scheme_mismatch -> "scheme-mismatch"
  | Item_out_of_universe -> "item-out-of-universe"
  | Size_not_covered -> "size-not-covered"

let error_code_tag = function
  | Frame_too_large -> 1
  | Bad_frame -> 2
  | Protocol_violation -> 3
  | Scheme_mismatch -> 4
  | Item_out_of_universe -> 5
  | Size_not_covered -> 6

let error_code_of_tag = function
  | 1 -> Some Frame_too_large
  | 2 -> Some Bad_frame
  | 3 -> Some Protocol_violation
  | 4 -> Some Scheme_mismatch
  | 5 -> Some Item_out_of_universe
  | 6 -> Some Size_not_covered
  | _ -> None

type message =
  | Hello of { version : int; sizes : int list; scheme : string }
  | Welcome of { universe : int; itemsets : Itemset.t list }
  | Report of { size : int; items : Itemset.t }
  | Snapshot_request of { flush : bool }
  | Snapshot of { json : string }
  | Shutdown
  | Bye
  | Error of { code : error_code; detail : string }

let message_name = function
  | Hello _ -> "hello"
  | Welcome _ -> "welcome"
  | Report _ -> "report"
  | Snapshot_request _ -> "snapshot-request"
  | Snapshot _ -> "snapshot"
  | Shutdown -> "shutdown"
  | Bye -> "bye"
  | Error _ -> "error"

(* ------------------------------------------------------------- encoding *)

let check_u16 what v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d outside u16" what v)

let check_u31 what v =
  if v < 0 || v > 0x7FFFFFFF then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d outside u31" what v)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))
let add_u16 buf v = Buffer.add_uint16_be buf v
let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)

let add_itemset buf s =
  let k = Itemset.cardinal s in
  check_u16 "itemset cardinality" k;
  add_u16 buf k;
  Itemset.iter
    (fun i ->
      check_u31 "item" i;
      add_u32 buf i)
    s

let encode msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Hello { version; sizes; scheme } ->
      add_u8 buf 0x01;
      check_u16 "version" version;
      add_u16 buf version;
      check_u16 "size count" (List.length sizes);
      add_u16 buf (List.length sizes);
      List.iter
        (fun m ->
          check_u16 "transaction size" m;
          add_u16 buf m)
        sizes;
      Buffer.add_string buf scheme
  | Welcome { universe; itemsets } ->
      add_u8 buf 0x02;
      check_u31 "universe" universe;
      add_u32 buf universe;
      check_u16 "itemset count" (List.length itemsets);
      add_u16 buf (List.length itemsets);
      List.iter (add_itemset buf) itemsets
  | Report { size; items } ->
      add_u8 buf 0x03;
      check_u16 "transaction size" size;
      add_u16 buf size;
      add_itemset buf items
  | Snapshot_request { flush } ->
      add_u8 buf 0x04;
      add_u8 buf (if flush then 1 else 0)
  | Snapshot { json } ->
      add_u8 buf 0x05;
      Buffer.add_string buf json
  | Shutdown -> add_u8 buf 0x06
  | Bye -> add_u8 buf 0x07
  | Error { code; detail } ->
      add_u8 buf 0x08;
      add_u8 buf (error_code_tag code);
      Buffer.add_string buf detail);
  Buffer.to_bytes buf

(* ------------------------------------------------------------- decoding *)

exception Reject of string

let decode payload =
  let len = Bytes.length payload in
  let pos = ref 0 in
  let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt in
  let need n what =
    if !pos + n > len then
      reject "truncated payload: %s needs %d byte(s), %d left" what n (len - !pos)
  in
  let u8 what =
    need 1 what;
    let v = Char.code (Bytes.get payload !pos) in
    incr pos;
    v
  in
  let u16 what =
    need 2 what;
    let v = Bytes.get_uint16_be payload !pos in
    pos := !pos + 2;
    v
  in
  let u32 what =
    need 4 what;
    let v = Int32.to_int (Bytes.get_int32_be payload !pos) in
    pos := !pos + 4;
    if v < 0 then reject "%s outside u31" what;
    v
  in
  let rest () =
    let s = Bytes.sub_string payload !pos (len - !pos) in
    pos := len;
    s
  in
  (* [List.init]/[Array.init] apply their function in unspecified order;
     the parser is stateful, so every repeated field reads explicitly. *)
  let read_list n f =
    let rec go acc i = if i = n then List.rev acc else go (f () :: acc) (i + 1) in
    go [] 0
  in
  let itemset () =
    let k = u16 "itemset cardinality" in
    let items = Array.make k 0 in
    for i = 0 to k - 1 do
      items.(i) <- u32 "item"
    done;
    for i = 1 to k - 1 do
      if items.(i) <= items.(i - 1) then
        reject "itemset items not strictly increasing"
    done;
    Itemset.of_sorted_array_unchecked items
  in
  let finished what =
    if !pos <> len then reject "%d trailing byte(s) after %s" (len - !pos) what
  in
  try
    let tag = u8 "tag" in
    let msg =
      match tag with
      | 0x01 ->
          let version = u16 "version" in
          let n = u16 "size count" in
          let sizes = read_list n (fun () -> u16 "transaction size") in
          let scheme = rest () in
          Hello { version; sizes; scheme }
      | 0x02 ->
          let universe = u32 "universe" in
          let n = u16 "itemset count" in
          let itemsets = read_list n (fun () -> itemset ()) in
          finished "welcome";
          Welcome { universe; itemsets }
      | 0x03 ->
          let size = u16 "transaction size" in
          let items = itemset () in
          finished "report";
          Report { size; items }
      | 0x04 ->
          let flush =
            match u8 "flush flag" with
            | 0 -> false
            | 1 -> true
            | v -> reject "flush flag %d is not 0|1" v
          in
          finished "snapshot-request";
          Snapshot_request { flush }
      | 0x05 -> Snapshot { json = rest () }
      | 0x06 ->
          finished "shutdown";
          Shutdown
      | 0x07 ->
          finished "bye";
          Bye
      | 0x08 ->
          let code =
            let t = u8 "error code" in
            match error_code_of_tag t with
            | Some c -> c
            | None -> reject "unknown error code %d" t
          in
          Error { code; detail = rest () }
      | t -> reject "unknown message tag 0x%02x" t
    in
    Ok msg
  with Reject msg -> Result.Error msg
