(** One ingest shard: a bounded report queue plus its own
    {!Ppdm.Stream} accumulator per tracked itemset.

    Sessions {!submit} validated reports; the shard's folder domain runs
    {!fold_loop}, draining batches and folding each report into every
    accumulator — support estimates update per batch, never by re-mining.
    The sufficient statistic is a per-size histogram of integer counts, so
    folding order and shard assignment cannot change it: merging all
    shards' accumulators ({!snapshot}) is bit-identical to a sequential
    fold of the same reports, whatever the interleaving was. *)

open Ppdm_data
open Ppdm

type t

val create :
  scheme:Randomizer.t -> itemsets:Itemset.t list -> capacity:int -> t
(** @raise Invalid_argument if [itemsets] is empty or [capacity < 1]. *)

val submit : t -> int * Itemset.t * int -> bool
(** Queue one [(original_size, randomized_itemset, submitted_ns)]
    report, blocking when the shard is [capacity] reports behind
    (backpressure on the pushing session).  [submitted_ns] feeds the
    report→fold latency window histogram; pass 0 when metrics are off
    (the folder then skips the latency observation).  [false] iff the
    shard is closed. *)

val fold_loop : t -> batch:int -> linger_ns:int -> unit
(** Drain batches (at most [batch] reports each, lingering up to
    [linger_ns] for a fuller batch) and fold them into the accumulators
    until the shard is closed and empty.  Run on exactly one domain. *)

val close : t -> unit
(** Stop accepting reports; {!fold_loop} returns once the queue drains. *)

val quiesce : t -> unit
(** Block until every report submitted so far has been folded.  Callers
    quiet the producers first when they need a global barrier. *)

val snapshot : t -> Stream.t list
(** Fresh copies of the accumulators (same order as [itemsets]), taken
    atomically with respect to batch folds: a fold is entirely in or
    entirely out of the copy, so cross-itemset counts are consistent. *)

val folded : t -> int
(** Reports folded so far. *)

val depth : t -> int
(** Reports queued but not yet folded (a gauge). *)
