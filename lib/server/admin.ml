(* The admin plane: a second loopback listener speaking just enough
   HTTP/1.0 for a metrics scraper and a health prober — GET /metrics,
   /healthz, /readyz, one request per connection, Connection: close.

   It shares nothing with the data plane but the [stop] flag and the
   read-only probe closures, so a slow or hostile admin client can stall
   only the admin loop, never ingest. *)

type handlers = {
  metrics : unit -> string;
      (* rendered on demand; an exception answers 500, never kills the loop *)
  healthy : unit -> bool;
  ready : unit -> bool * string; (* verdict + reason (the response body) *)
}

let max_request = 8192

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let openmetrics_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

(* Pure request -> response mapping, unit-testable without sockets.
   [request] is everything up to (not including) the header terminator. *)
let handle_request handlers request =
  let first_line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> (
        match String.index_opt request '\n' with
        | Some i -> String.sub request 0 i
        | None -> request)
  in
  match String.split_on_char ' ' first_line with
  | [ meth; path; version ]
    when version = "HTTP/1.0" || version = "HTTP/1.1" -> (
      if meth <> "GET" then (405, "text/plain", "only GET is served\n")
      else
        match path with
        | "/metrics" -> (
            match handlers.metrics () with
            | body -> (200, openmetrics_content_type, body)
            | exception _ -> (500, "text/plain", "metrics render failed\n"))
        | "/healthz" ->
            if handlers.healthy () then (200, "text/plain", "ok\n")
            else (503, "text/plain", "unhealthy\n")
        | "/readyz" ->
            let ready, reason = handlers.ready () in
            if ready then (200, "text/plain", reason ^ "\n")
            else (503, "text/plain", reason ^ "\n")
        | _ -> (404, "text/plain", "unknown path\n"))
  | _ -> (400, "text/plain", "malformed request line\n")

let response_bytes (status, content_type, body) =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (status_text status) content_type (String.length body) body

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

(* Read until the blank line ending the headers, a hard size cap, or a
   1s socket timeout.  [Error status] short-circuits to an error reply. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let terminated s =
    let has sub =
      let ls = String.length sub and l = String.length s in
      let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
      go (max 0 (l - 512 - String.length sub))
    in
    has "\r\n\r\n" || has "\n\n"
  in
  let rec go () =
    if Buffer.length buf > max_request then Error 413
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf = 0 then Error 400 else Ok (Buffer.contents buf)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          if terminated (Buffer.contents buf) then Ok (Buffer.contents buf)
          else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error 400 (* timed out mid-request *)
  in
  go ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let handle_connection handlers fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let response =
    match read_request fd with
    | Ok request -> handle_request handlers request
    | Error status -> (status, "text/plain", status_text status ^ "\n")
  in
  Ppdm_obs.Metrics.incr "server.admin.requests";
  match write_all fd (response_bytes response) with
  | () -> ()
  | exception Unix.Unix_error _ -> () (* scraper went away; fine *)

let serve_loop listener ~stop handlers =
  let rec go () =
    if Atomic.get stop then ()
    else
      match Unix.select [ listener ] [] [] 0.05 with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.accept listener with
          | fd, _ ->
              Fun.protect
                ~finally:(fun () -> close_quietly fd)
                (fun () -> handle_connection handlers fd);
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  Fun.protect ~finally:(fun () -> close_quietly listener) go

(* ------------------------------------------------------------- client *)

(* Minimal HTTP/1.0 GET, for [ppdm top]/[ppdm stat], tests, and fault
   scenarios: one request, read to EOF, split status and body. *)
let fetch ~port path =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
        write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | raw -> (
      let body_of raw =
        let rec find i =
          if i + 1 >= String.length raw then String.length raw
          else if raw.[i] = '\n' && raw.[i + 1] = '\n' then i + 2
          else if
            i + 3 < String.length raw
            && String.sub raw i 4 = "\r\n\r\n"
          then i + 4
          else find (i + 1)
        in
        let b = find 0 in
        String.sub raw b (String.length raw - b)
      in
      match String.split_on_char ' ' raw with
      | _http :: code :: _ when String.length code = 3 -> (
          match int_of_string_opt code with
          | Some status -> Ok (status, body_of raw)
          | None -> Error "malformed status line")
      | _ -> Error "malformed status line")
