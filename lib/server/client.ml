open Ppdm

type t = { sock : Unix.file_descr; max_frame : int; mutable closed : bool }

exception Server_error of Wire.error_code * string

let connect ?(retries = 100) ?(max_frame = Framing.default_max_frame) ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let rec attempt left =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect sock addr with
    | () -> { sock; max_frame; closed = false }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EINTR), _, _)
      when left > 1 ->
        Unix.close sock;
        Unix.sleepf 0.01;
        attempt (left - 1)
    | exception e ->
        Unix.close sock;
        raise e
  in
  attempt (max 1 retries)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

let fd t = t.sock

(* The cap applies on both directions: emitting a frame the peer's
   reader is guaranteed to reject would only surface as an opaque
   remote [Frame_too_large]. *)
let send t msg = Framing.write ~max_frame:t.max_frame t.sock (Wire.encode msg)

let send_raw t raw =
  let rec go pos =
    if pos < Bytes.length raw then
      go (pos + Unix.write t.sock raw pos (Bytes.length raw - pos))
  in
  go 0

let read t =
  match Framing.read ~max_frame:t.max_frame t.sock with
  | Error e -> Error (Framing.read_error_to_string e)
  | Ok payload -> Wire.decode payload

let read_exn t =
  match read t with
  | Ok (Wire.Error { code; detail }) -> raise (Server_error (code, detail))
  | Ok msg -> msg
  | Error msg -> failwith ("ppdm client: " ^ msg)

let handshake t ?scheme ~sizes () =
  let scheme_text =
    match (scheme, sizes) with
    | Some s, _ -> Scheme_io.to_string s ~sizes
    | None, [] -> ""
    | None, _ :: _ ->
        invalid_arg "Client.handshake: sizes declared without a scheme"
  in
  send t
    (Wire.Hello
       { version = Wire.protocol_version; sizes; scheme = scheme_text });
  match read_exn t with
  | Wire.Welcome { universe; itemsets } -> (universe, itemsets)
  | msg ->
      failwith
        ("ppdm client: expected welcome, got " ^ Wire.message_name msg)

let report t ~size items = send t (Wire.Report { size; items })

let snapshot t ~flush =
  send t (Wire.Snapshot_request { flush });
  match read_exn t with
  | Wire.Snapshot { json } -> json
  | msg ->
      failwith
        ("ppdm client: expected snapshot, got " ^ Wire.message_name msg)

let shutdown t =
  match
    send t Wire.Shutdown;
    read t
  with
  | Ok Wire.Bye | Error _ -> ()
  | Ok (Wire.Error { code; detail }) -> raise (Server_error (code, detail))
  | Ok msg ->
      failwith ("ppdm client: expected bye, got " ^ Wire.message_name msg)
  | exception Unix.Unix_error _ -> ()
