(** Client side of the wire protocol: connect, handshake, stream reports,
    pull snapshots.

    This is the support library for [ppdm load], the examples, and the
    loopback tests.  High-level calls raise {!Server_error} when the
    server answers a typed [Error] frame and [Failure] on transport
    trouble (peer gone, truncated frame, undecodable payload); the
    low-level [send_raw]/[read] pair is exposed so fault-injection tests
    can speak malformed bytes and observe the exact reply. *)

open Ppdm_data
open Ppdm

type t
(** A connected session. *)

exception Server_error of Wire.error_code * string
(** The server answered [Error { code; detail }]. *)

val connect : ?retries:int -> ?max_frame:int -> port:int -> unit -> t
(** Connect to 127.0.0.1:[port].  [retries] (default 100) connection
    attempts 10 ms apart cover the race against a server still binding.
    [max_frame] (default {!Framing.default_max_frame}) caps frames in
    {e both} directions: reads reject larger frames, and {!send} raises
    [Invalid_argument] rather than emit one the peer would reject.
    @raise Unix.Unix_error when every attempt fails. *)

val close : t -> unit
(** Close the socket (idempotent). *)

val handshake :
  t -> ?scheme:Randomizer.t -> sizes:int list -> unit -> int * Itemset.t list
(** Send [Hello] and await [Welcome]; returns the server's universe and
    tracked itemsets.  [scheme] must be given when [sizes] is non-empty
    (its {!Ppdm.Scheme_io} text rides in the hello); omit both for a
    control-only session. *)

val report : t -> size:int -> Itemset.t -> unit
(** Stream one randomized transaction (as its intersection pattern with
    the universe), without awaiting a reply — errors for invalid reports
    arrive asynchronously and surface at the next read. *)

val snapshot : t -> flush:bool -> string
(** Request a snapshot and return its JSON. *)

val shutdown : t -> unit
(** Ask the server to stop; waits for [Bye] (tolerating an already-closed
    peer). *)

(** {2 Low-level access (fault injection, tests)} *)

val send : t -> Wire.message -> unit
(** Encode, frame, write. *)

val send_raw : t -> bytes -> unit
(** Write bytes verbatim — no framing, no validation. *)

val read : t -> (Wire.message, string) result
(** Read and decode one frame.  [Error] describes transport or decode
    trouble (["closed"], ["truncated ..."], ...) — a successfully decoded
    [Wire.Error] frame is [Ok (Error _)], not [Error _]. *)

val fd : t -> Unix.file_descr
(** The underlying socket, for surgical fault injection ([shutdown] of
    one direction, abrupt close mid-frame). *)
