open Ppdm_data
open Ppdm

type config = {
  scheme : Randomizer.t;
  universe : int;
  itemsets : Itemset.t list;
  max_frame : int;
  verify_scheme : Randomizer.t -> sizes:int list -> bool;
  snapshot : flush:bool -> string;
  request_shutdown : unit -> unit;
}

(* Sending can hit a peer that already went away (EPIPE / reset); a
   best-effort answer must not kill the session loop's own cleanup.  The
   session's configured frame cap applies symmetrically: what we refuse
   to read we also refuse to emit. *)
let send ~max_frame fd msg =
  match Framing.write ~max_frame fd (Wire.encode msg) with
  | () -> true
  | exception Unix.Unix_error _ -> false

let count_error code =
  Ppdm_obs.Metrics.incr ("server.errors." ^ Wire.error_code_name code)

let send_error ~max_frame fd code detail =
  count_error code;
  ignore (send ~max_frame fd (Wire.Error { code; detail }))

(* What a received report may use, fixed at handshake time. *)
type handshake = { allowed_sizes : (int, unit) Hashtbl.t }

let run config ~shards fd =
  let send fd msg = send ~max_frame:config.max_frame fd msg in
  let send_error fd code detail =
    send_error ~max_frame:config.max_frame fd code detail
  in
  let n_shards = Array.length shards in
  let next_shard = ref 0 in
  let handshaken : handshake option ref = ref None in
  Ppdm_obs.Metrics.incr "server.sessions";
  let handle_hello ~version ~sizes ~scheme_text =
    if !handshaken <> None then begin
      send_error fd Wire.Protocol_violation "duplicate hello";
      `Stop
    end
    else if version <> Wire.protocol_version then begin
      send_error fd Wire.Protocol_violation
        (Printf.sprintf "protocol version %d, server speaks %d" version
           Wire.protocol_version);
      `Stop
    end
    else if List.exists (fun m -> m < 0) sizes then begin
      send_error fd Wire.Protocol_violation "negative transaction size";
      `Stop
    end
    else begin
      (* A control-only session (snapshot / shutdown) declares no sizes
         and may omit the scheme; a reporting session must prove its
         operator parameters match ours at every size it will use. *)
      let verdict =
        if sizes = [] then `Ok
        else
          match Scheme_io.of_string scheme_text with
          | exception Failure msg -> `Bad_scheme msg
          | client_scheme ->
              if config.verify_scheme client_scheme ~sizes then `Ok
              else `Mismatch
      in
      match verdict with
      | `Bad_scheme msg ->
          send_error fd Wire.Protocol_violation ("unparseable scheme: " ^ msg);
          `Stop
      | `Mismatch ->
          send_error fd Wire.Scheme_mismatch
            "client operator parameters differ from the server scheme";
          `Stop
      | `Ok ->
          let allowed_sizes = Hashtbl.create 8 in
          List.iter (fun m -> Hashtbl.replace allowed_sizes m ()) sizes;
          handshaken := Some { allowed_sizes };
          if
            send fd
              (Wire.Welcome
                 { universe = config.universe; itemsets = config.itemsets })
          then `Continue
          else `Stop
    end
  in
  let handle_report hs ~size ~items =
    (* Reject, with a typed answer, anything the estimator could not
       absorb soundly: items outside the handshaked universe, or a size
       the handshake did not cover (its operator was never agreed). *)
    let max_item = if Itemset.is_empty items then -1 else Itemset.nth items (Itemset.cardinal items - 1) in
    if max_item >= config.universe then begin
      send_error fd Wire.Item_out_of_universe
        (Printf.sprintf "item %d outside universe %d" max_item config.universe);
      `Continue
    end
    else if not (Hashtbl.mem hs.allowed_sizes size) then begin
      send_error fd Wire.Size_not_covered
        (Printf.sprintf "size %d was not part of the handshake" size);
      `Continue
    end
    else begin
      let shard = shards.(!next_shard) in
      next_shard := (!next_shard + 1) mod n_shards;
      let ts =
        if Ppdm_obs.Metrics.enabled () then Ppdm_obs.Metrics.now_ns () else 0
      in
      ignore (Shard.submit shard (size, items, ts));
      Ppdm_obs.Metrics.incr "server.reports";
      `Continue
    end
  in
  let handle_message = function
    | Wire.Hello { version; sizes; scheme } ->
        handle_hello ~version ~sizes ~scheme_text:scheme
    | Wire.Report { size; items } -> (
        match !handshaken with
        | None ->
            send_error fd Wire.Protocol_violation "report before hello";
            `Stop
        | Some hs -> handle_report hs ~size ~items)
    | Wire.Snapshot_request { flush } ->
        if !handshaken = None then begin
          send_error fd Wire.Protocol_violation "snapshot-request before hello";
          `Stop
        end
        else begin
          Ppdm_obs.Metrics.incr "server.snapshots";
          let json =
            Ppdm_obs.Trace.with_ ~name:"server.snapshot" ~cat:"server"
              (fun () -> config.snapshot ~flush)
          in
          if send fd (Wire.Snapshot { json }) then `Continue else `Stop
        end
    | Wire.Shutdown ->
        config.request_shutdown ();
        ignore (send fd Wire.Bye);
        `Stop
    | Wire.Welcome _ | Wire.Snapshot _ | Wire.Bye | Wire.Error _ ->
        send_error fd Wire.Protocol_violation
          "server-to-client message on the client-to-server direction";
        `Stop
  in
  let rec loop () =
    match Framing.read ~max_frame:config.max_frame fd with
    | Error Framing.Closed -> ()
    | Error (Framing.Truncated _) ->
        (* The peer vanished mid-frame: nothing to answer, just count. *)
        Ppdm_obs.Metrics.incr "server.frames.truncated"
    | Error (Framing.Bad_length n) ->
        send_error fd Wire.Bad_frame
          (Printf.sprintf "declared frame length %d" n)
    | Error (Framing.Too_large { declared; limit }) ->
        send_error fd Wire.Frame_too_large
          (Printf.sprintf "declared frame length %d exceeds cap %d" declared
             limit)
    | Ok payload -> (
        Ppdm_obs.Metrics.incr "server.frames";
        match Wire.decode payload with
        | Error msg -> send_error fd Wire.Bad_frame msg
        | Ok msg -> (
            match handle_message msg with
            | `Continue -> loop ()
            | `Stop -> ()))
  in
  match
    Ppdm_obs.Trace.with_ ~name:"server.session" ~cat:"server" loop
  with
  | () -> ()
  | exception Unix.Unix_error _ ->
      (* A reset/aborted socket ends the session, never the server. *)
      Ppdm_obs.Metrics.incr "server.sessions.aborted"
