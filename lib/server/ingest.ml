type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  idle : Condition.t;
  mutable in_flight : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ingest.create: capacity < 1";
  {
    capacity;
    q = Queue.create ();
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    idle = Condition.create ();
    in_flight = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  locked t (fun () ->
      while Queue.length t.q >= t.capacity && not t.closed do
        Condition.wait t.not_full t.lock
      done;
      if t.closed then false
      else begin
        Queue.add x t.q;
        Condition.signal t.not_empty;
        true
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      match Queue.take_opt t.q with
      | Some x ->
          t.in_flight <- t.in_flight + 1;
          Condition.signal t.not_full;
          Some x
      | None -> None)

let pop_batch t ~max ~linger_ns =
  if max < 1 then invalid_arg "Ingest.pop_batch: max < 1";
  if linger_ns < 0 then invalid_arg "Ingest.pop_batch: negative linger";
  let acc = ref [] and count = ref 0 in
  let take_upto () =
    while !count < max && not (Queue.is_empty t.q) do
      acc := Queue.take t.q :: !acc;
      incr count
    done
  in
  locked t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      take_upto ();
      if !count > 0 then begin
        t.in_flight <- t.in_flight + 1;
        Condition.broadcast t.not_full
      end);
  (* Linger outside the lock: short sleeps, re-draining under the lock
     each wake, until the batch fills or the deadline passes.  Pure
     polling — the stdlib has no timed condition wait — but bounded and
     off by default (linger_ns = 0). *)
  if !count > 0 && !count < max && linger_ns > 0 then begin
    let deadline = Ppdm_obs.Metrics.now_ns () + linger_ns in
    let stop = ref false in
    while (not !stop) && !count < max && Ppdm_obs.Metrics.now_ns () < deadline do
      Unix.sleepf 0.0005;
      locked t (fun () ->
          let before = !count in
          take_upto ();
          (* Only wake producers when this poll actually freed queue
             space; a blanket broadcast every 0.5 ms stampedes blocked
             pushers just to have them re-check a still-full queue. *)
          if !count > before && Queue.length t.q < t.capacity then
            Condition.broadcast t.not_full;
          if t.closed && Queue.is_empty t.q then stop := true)
    done
  end;
  if !count = 0 then [||] else Array.of_list (List.rev !acc)

let done_with t =
  locked t (fun () ->
      if t.in_flight > 0 then t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 && Queue.is_empty t.q then Condition.broadcast t.idle)

let wait_idle t =
  locked t (fun () ->
      while not (Queue.is_empty t.q && t.in_flight = 0) do
        Condition.wait t.idle t.lock
      done)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)

let depth t = locked t (fun () -> Queue.length t.q)
