(** Bounded producer/consumer queues with batch draining — the buffer
    between client sessions and shard folders.

    The capacity bound is the backpressure mechanism: {!push} blocks while
    the queue is full, which stalls the pushing session, which stops
    reading its socket, which fills the client's TCP window — a slow
    consumer pushes back on its producers instead of growing memory.

    {!pop_batch} drains greedily: it blocks until at least one element is
    queued, takes everything up to [max], and only then (optionally)
    lingers for stragglers — batches grow with load and cost no latency
    when the queue runs dry.  An element count of in-flight batches backs
    {!wait_idle}, the quiescence barrier consistent snapshots need. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Enqueue, blocking while the queue is at capacity.  [false] iff the
    queue was closed (the element was not enqueued). *)

val pop : 'a t -> 'a option
(** Dequeue one element, blocking while the queue is empty.  [None] iff
    the queue is closed {e and} drained.  The element counts as in-flight
    until {!done_with} is called. *)

val pop_batch : 'a t -> max:int -> linger_ns:int -> 'a array
(** Dequeue up to [max] elements: block for the first, drain what is
    queued, then — if the batch is not yet full and [linger_ns > 0] —
    poll for up to [linger_ns] nanoseconds for more.  [[||]] iff the
    queue is closed and drained.  The whole batch counts as in-flight
    until {!done_with}.
    @raise Invalid_argument if [max < 1] or [linger_ns < 0]. *)

val done_with : 'a t -> unit
(** The consumer finished processing its last {!pop}/{!pop_batch} result;
    releases the in-flight count toward {!wait_idle}. *)

val wait_idle : 'a t -> unit
(** Block until the queue is empty and no batch is in flight — the point
    at which every element pushed so far has been fully processed
    (provided producers are quiet, which the caller arranges). *)

val close : 'a t -> unit
(** No further elements are accepted; consumers drain what remains and
    then see [None]/[[||]].  Idempotent. *)

val depth : 'a t -> int
(** Current queued element count (a gauge; racy by nature). *)
