(** Server side of one client connection: the protocol state machine.

    A session must open with [Hello]; the server checks the protocol
    version and — when the client declares report sizes — that the
    client's operator parameters match its own scheme at exactly those
    sizes ({!Ppdm.Randomizer.same_parameters} over the in-band
    {!Ppdm.Scheme_io} text), replying [Welcome] with the universe and the
    tracked itemsets.  Reports are then validated (items inside the
    handshaked universe, size among the handshaked sizes) and routed
    round-robin into the shards; a bad report earns a typed [Error]
    response and the session continues — a malformed frame, oversized
    length, or protocol violation earns a typed [Error] and the session
    ends.  [Snapshot_request] answers with the server's live estimate
    JSON; [Shutdown] asks the server to stop and answers [Bye]. *)

open Ppdm_data
open Ppdm

type config = {
  scheme : Randomizer.t;
  universe : int;
  itemsets : Itemset.t list;
  max_frame : int;
  verify_scheme : Randomizer.t -> sizes:int list -> bool;
      (** [same_parameters] against the server scheme, serialized by the
          server's scheme lock (scheme resolution mutates a cache). *)
  snapshot : flush:bool -> string;  (** live estimate JSON *)
  request_shutdown : unit -> unit;
}

val run : config -> shards:Shard.t array -> Unix.file_descr -> unit
(** Serve the connection until the peer disconnects, a fatal protocol
    error occurs, or the client sends [Shutdown].  Never raises on
    protocol or socket trouble (the error is answered when the socket
    still works, and always counted in metrics); the descriptor is NOT
    closed (the caller owns it). *)
