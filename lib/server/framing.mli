(** Length-prefixed binary framing over a file descriptor.

    A frame is a 4-byte big-endian payload length followed by that many
    payload bytes (the payload being one {!Wire} message).  The reader is
    strict: a declared length of zero, a negative length (a garbage
    prefix with the high bit set), or a length beyond the configured cap
    is a typed error — never an attempt to allocate or read the declared
    amount — and end-of-stream inside a frame is distinguished from a
    clean close at a frame boundary, so a truncated frame can be rejected
    rather than silently dropped. *)

type read_error =
  | Closed  (** clean EOF at a frame boundary *)
  | Truncated of { expected : int; got : int }
      (** the peer closed mid-frame: [got] of [expected] bytes arrived *)
  | Bad_length of int  (** declared payload length is zero or negative *)
  | Too_large of { declared : int; limit : int }
      (** declared payload length exceeds the cap; nothing was read past
          the header, so the stream is unusable afterwards *)

val read_error_to_string : read_error -> string

val default_max_frame : int
(** Default payload cap: 1 MiB.  Big enough for any handshake or
    snapshot; small enough that a malicious length cannot balloon
    memory. *)

val write : ?max_frame:int -> Unix.file_descr -> Bytes.t -> unit
(** Write one frame (header + payload), looping over partial writes.
    [max_frame] (default {!default_max_frame}) mirrors the read-side
    cap: a frame above the peer's limit is guaranteed to be rejected
    there, so emitting one is refused locally instead.
    @raise Invalid_argument if the payload is empty or longer than
    [max_frame] bytes.
    @raise Unix.Unix_error as the descriptor does (e.g. [EPIPE]). *)

val read : ?max_frame:int -> Unix.file_descr -> (Bytes.t, read_error) result
(** Read one frame payload, looping over partial reads.
    @raise Unix.Unix_error on descriptor errors other than EOF. *)
