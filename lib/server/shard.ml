open Ppdm_data
open Ppdm

type t = {
  (* (original_size, randomized_itemset, submitted_ns); the timestamp is
     0 when metrics are off, so the disabled path never reads a clock. *)
  queue : (int * Itemset.t * int) Ingest.t;
  accs : Stream.t list;
  acc_lock : Mutex.t;
  mutable folded : int; (* under acc_lock *)
}

let create ~scheme ~itemsets ~capacity =
  if itemsets = [] then invalid_arg "Shard.create: no tracked itemsets";
  {
    queue = Ingest.create ~capacity;
    accs = List.map (fun itemset -> Stream.create ~scheme ~itemset) itemsets;
    acc_lock = Mutex.create ();
    folded = 0;
  }

let submit t report = Ingest.push t.queue report

let fold_batch t batch =
  Mutex.lock t.acc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.acc_lock)
    (fun () ->
      Array.iter
        (fun (size, y, _) ->
          List.iter (fun acc -> Stream.observe acc ~size y) t.accs)
        batch;
      t.folded <- t.folded + Array.length batch)

let fold_loop t ~batch ~linger_ns =
  let instrument = Ppdm_obs.Metrics.any_enabled () in
  let rec go () =
    match Ingest.pop_batch t.queue ~max:batch ~linger_ns with
    | [||] -> ()
    | b ->
        if instrument then begin
          Ppdm_obs.Metrics.observe "server.batch.size" (Array.length b);
          Ppdm_obs.Metrics.gauge "server.queue.depth"
            (float_of_int (Ingest.depth t.queue));
          let now = Ppdm_obs.Metrics.now_ns () in
          Ppdm_obs.Window.mark ~now "server.ingest" (Array.length b);
          Array.iter
            (fun (_, _, ts) ->
              if ts > 0 then
                Ppdm_obs.Window.observe ~now "server.fold.latency_ns"
                  (now - ts))
            b;
          Ppdm_obs.Trace.with_ ~name:"server.fold" ~cat:"server" (fun () ->
              fold_batch t b)
        end
        else fold_batch t b;
        Ingest.done_with t.queue;
        go ()
  in
  go ()

let close t = Ingest.close t.queue
let quiesce t = Ingest.wait_idle t.queue

let snapshot t =
  Mutex.lock t.acc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.acc_lock)
    (* [Stream.merge] of a single accumulator is a deep copy: a fresh
       accumulator holding the same summed statistic. *)
    (fun () -> List.map (fun acc -> Stream.merge [ acc ]) t.accs)

let folded t =
  Mutex.lock t.acc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.acc_lock)
    (fun () -> t.folded)

let depth t = Ingest.depth t.queue
