(** Machine-readable benchmark measurements and regression diffing.

    The bench harness emits one [BENCH_<section>.json] file per section —
    a JSON array of {!measurement} objects — through {!write_file}, and
    [ppdm bench-diff] reads two such files back with {!read_file} and
    gates on {!diff}: a measurement regresses when its current [ns_per_op]
    exceeds the baseline's by more than the tolerance fraction.  Built on
    the in-repo {!Json} codec, so the CI gate needs no external tooling.

    Measurements are keyed by (section, name, jobs); entries present on
    only one side are reported as missing/added, never as regressions —
    renaming or adding a benchmark must not trip the gate. *)

type measurement = {
  section : string;  (** harness section id: "b1", "b4", ... *)
  name : string;  (** measurement name within the section *)
  jobs : int;  (** domain count the measurement ran at *)
  ns_per_op : float;  (** nanoseconds per operation (lower is better) *)
  throughput : float;  (** operations per second *)
}

val key : measurement -> string
(** Identity within a file: ["<section>/<name>/j<jobs>"]. *)

val to_json : measurement list -> Json.t
val of_json : Json.t -> (measurement list, string) result

val write_file : string -> measurement list -> unit

val read_file : string -> (measurement list, string) result
(** [Error] on unreadable JSON or on any element missing a field. *)

type regression = {
  baseline : measurement;
  current : measurement;
  ratio : float;  (** current ns_per_op / baseline ns_per_op, > 1 is slower *)
}

type diff = {
  regressions : regression list;  (** in baseline order *)
  compared : int;  (** measurements present on both sides *)
  missing : measurement list;  (** in baseline, absent from current *)
  added : measurement list;  (** in current, absent from baseline *)
}

val diff :
  tolerance:float ->
  baseline:measurement list ->
  current:measurement list ->
  diff
(** [diff ~tolerance ~baseline ~current] flags every shared measurement
    whose ratio exceeds [1. +. tolerance] ([tolerance 0.25] = "more than
    25% slower fails").  Baseline entries with [ns_per_op <= 0] are
    compared but can never regress (a broken baseline must not wedge the
    gate).  Raises [Invalid_argument] on a negative tolerance. *)
