type node = {
  n_name : string;
  mutable n_total : int;
  mutable n_calls : int;
  n_children : (string, node) Hashtbl.t;
}

type t = { name : string; total_ns : int; calls : int; children : t list }

let make_node name =
  { n_name = name; n_total = 0; n_calls = 0; n_children = Hashtbl.create 4 }

(* Per-domain state: a synthetic root plus the stack of open spans.  The
   stack is never empty — the root is its bottom. *)
type domain_state = { root : node; mutable stack : node list }

let registry_lock = Mutex.create ()
let registry : domain_state list ref = ref []

let state_key =
  Domain.DLS.new_key (fun () ->
      let root = make_node "" in
      let st = { root; stack = [ root ] } in
      Mutex.lock registry_lock;
      registry := st :: !registry;
      Mutex.unlock registry_lock;
      st)

(* One [Metrics.any_enabled] load guards the whole disabled path; only
   past it do we learn which of the two layers (aggregating span tree,
   event timeline) is actually on. *)
let with_ ~name f =
  if not (Metrics.any_enabled ()) then f ()
  else begin
    let record = Metrics.enabled () and traced = Trace.enabled () in
    if traced then Trace.begin_ ~name ~cat:"span";
    if not record then
      Fun.protect ~finally:(fun () -> if traced then Trace.end_ ~name ~cat:"span") f
    else begin
      let st = Domain.DLS.get state_key in
      let parent = List.hd st.stack in
      let child =
        match Hashtbl.find_opt parent.n_children name with
        | Some c -> c
        | None ->
            let c = make_node name in
            Hashtbl.replace parent.n_children name c;
            c
      in
      child.n_calls <- child.n_calls + 1;
      st.stack <- child :: st.stack;
      let t0 = Metrics.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          (* clamp: the wall clock can step backwards (Metrics.now_ns) *)
          child.n_total <- child.n_total + max 0 (Metrics.now_ns () - t0);
          st.stack <- List.tl st.stack;
          if traced then Trace.end_ ~name ~cat:"span")
        f
    end
  end

(* Merge a list of same-name nodes into one snapshot; children are merged
   by name recursively and sorted, so the result does not depend on the
   order domains registered in. *)
let rec merge_nodes name nodes =
  let total = List.fold_left (fun acc n -> acc + n.n_total) 0 nodes in
  let calls = List.fold_left (fun acc n -> acc + n.n_calls) 0 nodes in
  { name; total_ns = total; calls; children = merge_children nodes }

and merge_children nodes =
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.iter
        (fun name child ->
          Hashtbl.replace by_name name
            (child :: Option.value ~default:[] (Hashtbl.find_opt by_name name)))
        n.n_children)
    nodes;
  Hashtbl.fold (fun name group acc -> merge_nodes name group :: acc) by_name []
  |> List.sort (fun a b -> compare a.name b.name)

let tree () =
  Mutex.lock registry_lock;
  let states = !registry in
  Mutex.unlock registry_lock;
  merge_children (List.map (fun st -> st.root) states)

let reset () =
  Mutex.lock registry_lock;
  let states = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun st ->
      Hashtbl.reset st.root.n_children;
      st.root.n_total <- 0;
      st.root.n_calls <- 0)
    states

let total_ns roots = List.fold_left (fun acc t -> acc + t.total_ns) 0 roots
