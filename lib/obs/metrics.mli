(** Metrics: counters, gauges, and log-bucketed histograms behind a
    process-wide registry of per-domain sharded sinks.

    Design constraints (they shape the whole module):

    + {b Disabled is free.}  Every recording entry point checks one atomic
      flag and returns; no name lookup, no allocation, no clock read.
      Instrumentation can therefore live inside per-transaction hot loops.
    + {b No contention, no nondeterminism.}  Each domain records into its
      own sink (domain-local storage); sinks touch no shared state after
      the one-time registration.  Instrumented code produces bit-identical
      {e results} with metrics on or off, at any job count — only the
      metric values themselves (timings, per-domain splits) vary with
      scheduling.
    + {b Deterministic merge.}  {!snapshot} folds the shards with
      commutative, associative merges (counters and histograms sum, gauges
      take the max) and sorts by name, so the report does not depend on
      domain registration order — the same discipline as
      [Stream.merge]/[Count.merge_into].

    Take {!snapshot} (or {!reset}) only at a quiescent point — when no
    other domain is recording, e.g. after the pool has drained a batch.
    The CLI and bench harness do exactly that. *)

val set_enabled : bool -> unit
(** Turn recording on or off (off initially).  Already-recorded values are
    kept; use {!reset} to clear them. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clear every sink (counters, gauges, histograms) in the registry. *)

val add : string -> int -> unit
(** [add name n] increments counter [name] by [n].  No-op when disabled. *)

val incr : string -> unit
(** [incr name] is [add name 1]. *)

val gauge : string -> float -> unit
(** [gauge name v] records gauge [name]; shards merge by [Float.max].
    No-op when disabled. *)

val observe : string -> int -> unit
(** [observe name v] adds the non-negative value [v] to histogram [name]
    (negative values clamp to 0).  Buckets are powers of two: bucket 0 is
    the value 0, bucket [i >= 1] covers [2{^i-1} .. 2{^i}-1].  No-op when
    disabled. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (arbitrary epoch).  Always live, so callers can
    take a timestamp before checking {!enabled}.

    This is [Unix.gettimeofday], a {e wall} clock, because the stdlib
    offers no monotonic clock without an external package.  NTP may step
    it backwards between two reads, so a difference of two [now_ns]
    values can be negative: every duration derived from it is clamped at
    0 ({!observe} clamps, and so do [Span.with_] and the trace begin/end
    pairing).  A clamped duration under-reports; it never corrupts
    histograms or timelines. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and observes its wall-clock duration in
    nanoseconds into histogram [name].  When disabled, [time name f] is
    [f ()] after a single flag check. *)

(** {2 Snapshots} *)

type histogram = {
  count : int;  (** number of observations *)
  sum : int;  (** sum of observed values *)
  min : int;  (** exact smallest observation; 0 when empty *)
  max : int;  (** exact largest observation; 0 when empty *)
  buckets : (int * int) list;
      (** [(lower_bound, count)] for each non-empty bucket, ascending *)
}

val quantile : histogram -> float -> int
(** [quantile h q] is an upper bound on the [q]-quantile ([0 <= q <= 1]):
    the (exclusive) upper edge of the bucket holding that rank.  0 for an
    empty histogram. *)

(** {2 Bucket geometry}

    Shared by the sliding-window histograms ([Window]) and the
    OpenMetrics renderer ([Exposition]) so every histogram in the
    process uses the same log2 buckets. *)

val n_buckets : int

val bucket_of : int -> int
(** Bucket index of a value: 0 for 0, [i >= 1] for [2{^i-1} .. 2{^i}-1];
    the last bucket absorbs everything larger. *)

val bucket_lower_bound : int -> int
(** Inclusive lower bound of bucket [i]. *)

val bucket_upper_edge : int -> int
(** Exclusive upper edge of bucket [i]. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}
(** All three lists sorted by name. *)

val snapshot : unit -> snapshot
(** Merge every registered sink (see the module preamble for when this is
    safe).  Returns empty lists when nothing was recorded. *)

(** {2 Flag plumbing for the trace layer}

    The enabled word is shared with [Trace] so code serving both layers
    can test "anything on?" with one atomic load.  Call these through
    [Trace.set_enabled]/[Trace.enabled]; they live here only because the
    word does. *)

val set_trace_enabled : bool -> unit
val trace_enabled : unit -> bool

val any_enabled : unit -> bool
(** True iff metrics or tracing (or both) are enabled — one atomic load. *)

(** {2 Explicit sinks}

    The sharded-sink mechanism itself, exposed for tests (merge
    order-independence) and for callers that want an isolated registry.
    Sink operations record unconditionally — the {!enabled} flag guards
    only the global entry points above. *)

module Sink : sig
  type t

  val create : unit -> t
  val add : t -> string -> int -> unit
  val gauge : t -> string -> float -> unit
  val observe : t -> string -> int -> unit

  val merge : t list -> snapshot
  (** Commutative fold of the given sinks: the result is independent of
      list order.  The sinks are not modified. *)
end
