(** Event-timeline tracing: per-domain ring buffers of begin/end/instant
    events, exportable as Chrome trace-event JSON (chrome://tracing,
    Perfetto, catapult) or as folded stacks for flamegraph tools.

    Where {!Metrics} and {!Span} aggregate (totals, call counts, bucket
    histograms), a trace keeps {e when}: every event carries a wall-clock
    timestamp and its domain id, so worker idle gaps at batch barriers,
    serial cache warming, or a stalling Apriori level are visible on a
    timeline instead of being averaged away.

    The discipline matches {!Metrics}:

    + {b Disabled is free.}  Every recording entry point checks one
      atomic flag and returns — no allocation, no clock read.  The flag
      shares the atomic word with the metrics flag, so code serving both
      layers ([Span.with_], the pool) tests both with a single load.
    + {b No contention.}  Each domain records into its own ring; rings
      touch no shared state after the one-time registration.  Recording
      changes no computed result at any job count.
    + {b Bounded memory.}  Rings have fixed capacity.  On overflow the
      oldest event is overwritten and the drop counted ({!dropped}, plus
      the ["trace.dropped"] metrics counter when metrics are on) — a long
      run keeps the {e newest} window of events rather than growing
      without bound or silently losing the information that it dropped.

    Timestamps come from {!Metrics.now_ns}, a wall clock that can step
    backwards under NTP; consumers of event pairs clamp negative
    durations to 0 (see {!to_folded}).  Take {!events}, {!reset}, or
    {!write_file} only at a quiescent point, like {!Metrics.snapshot}. *)

type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  cat : string;  (** coarse grouping: "span", "pool", "trace", ... *)
  ts_ns : int;  (** {!Metrics.now_ns} at record time *)
  domain : int;  (** recording domain's id — the timeline lane *)
  seq : int;  (** per-domain record order; ties and pairing use it *)
}

val set_enabled : bool -> unit
(** Turn tracing on or off (off initially; independent of
    [Metrics.set_enabled]).  Already-recorded events are kept. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Per-domain ring capacity (default 65536 events).  Existing rings
    adopt a new capacity at the next {!reset}; rings created afterwards
    use it immediately.  Raises [Invalid_argument] when non-positive. *)

val reset : unit -> unit
(** Drop every recorded event and drop count, in every ring. *)

val begin_ : name:string -> cat:string -> unit
(** Open a slice on the current domain's timeline.  No-op when off. *)

val end_ : name:string -> cat:string -> unit
(** Close the most recent open slice of this [name].  No-op when off. *)

val instant : name:string -> cat:string -> unit
(** A zero-duration mark.  No-op when off. *)

val with_ : name:string -> cat:string -> (unit -> 'a) -> 'a
(** [with_ ~name ~cat f] brackets [f] in a begin/end pair.  The end event
    is emitted even when [f] raises, so timelines stay paired across
    exceptions.  When off, this is [f ()] after one flag check. *)

val dropped : unit -> int
(** Total events dropped to overflow across all rings since the last
    {!reset}. *)

val events : unit -> event list
(** The merged timeline of every ring, sorted by timestamp with
    (domain, seq) breaking ties.  Quiescent points only. *)

val to_chrome_json : ?dropped:int -> event list -> Json.t
(** Render events as a Chrome trace-event array: one object per event
    with [ph] ("B"/"E"/"i"), [ts] (microseconds), [pid] (always 1),
    [tid] (domain id), [name], and [cat] fields.  When [dropped > 0] a
    final counter event named ["trace.dropped"] records the loss in the
    trace itself. *)

val to_folded : event list -> string
(** Render events as folded-stack lines (["a;b;c self_ns\n"], the input
    of [flamegraph.pl] and speedscope): per domain, begin/end pairs are
    matched in record order, durations clamp at 0 (wall clock), self
    time is duration minus children.  Unpaired events — expected after
    ring overflow — are tolerated: an orphan End is skipped, a
    still-open Begin closes at its domain's last timestamp. *)

val write_file : string -> unit
(** Write the current timeline to a file: folded stacks when the path
    ends in [.folded], Chrome trace JSON otherwise. *)
