(** Render a {!Metrics.snapshot} and {!Span.tree} for humans (aligned
    table) or machines (JSON lines, one object per metric/span).

    JSON-lines schema, one object per line:
    - [{"type":"counter","name":n,"value":v}]
    - [{"type":"gauge","name":n,"value":v}]
    - [{"type":"histogram","name":n,"count":c,"sum":s,"mean":m,
        "min":_,"max":_,"p50":_,"p90":_,"p99":_,"buckets":[[lo,count],...]}]
    - [{"type":"span","path":"a/b/c","calls":c,"total_ns":t,"mean_ns":m}]

    Every line parses with {!Json.parse} (the CI smoke test relies on
    that). *)

type format = Human | Json

val format_of_string : string -> format option
(** ["human"] / ["json"] (case-insensitive). *)

val human_of : Metrics.snapshot -> Span.t list -> string
val json_lines_of : Metrics.snapshot -> Span.t list -> string

val to_string : format -> string
(** Render the current global state ({!Metrics.snapshot} +
    {!Span.tree}). *)
