(* Rolling-window instruments: EWMA rate meters and ring-of-epochs
   sliding-window histograms.  Same sharding discipline as [Metrics]:
   each domain records into its own sink, snapshots merge commutatively,
   and recording is gated on [Metrics.enabled].

   Determinism contract: every recording call takes the observation time
   as an argument (defaulted to the wall clock), and both instruments are
   linear in their observations at a fixed clock — an EWMA seeded at 0
   distributes over any partition of the observation stream across
   domains, and epoch slots merge by summation.  Tests drive an injected
   clock and get bit-identical snapshots at jobs 1/2/4. *)

type meter_config = { tick_ns : int; tau_ns : int }
type hist_config = { epochs : int; epoch_ns : int }

let default_meter = { tick_ns = 1_000_000_000; tau_ns = 10_000_000_000 }
let default_hist = { epochs = 6; epoch_ns = 10_000_000_000 }

(* Per-name configuration, set once at startup (before recording) and
   read under the lock on the first use of a name in each sink.  All
   sinks must agree on a name's parameters for the merge to be
   meaningful, which the single table guarantees. *)
let config_lock = Mutex.create ()
let meter_configs : (string, meter_config) Hashtbl.t = Hashtbl.create 8
let hist_configs : (string, hist_config) Hashtbl.t = Hashtbl.create 8

let define_meter ?(tick_ns = default_meter.tick_ns)
    ?(tau_ns = default_meter.tau_ns) name =
  let tick_ns = max 1 tick_ns and tau_ns = max 1 tau_ns in
  Mutex.lock config_lock;
  Hashtbl.replace meter_configs name { tick_ns; tau_ns };
  Mutex.unlock config_lock

let define_histogram ?(epochs = default_hist.epochs)
    ?(epoch_ns = default_hist.epoch_ns) name =
  let epochs = max 1 epochs and epoch_ns = max 1 epoch_ns in
  Mutex.lock config_lock;
  Hashtbl.replace hist_configs name { epochs; epoch_ns };
  Mutex.unlock config_lock

let meter_config_of name =
  Mutex.lock config_lock;
  let c =
    match Hashtbl.find_opt meter_configs name with
    | Some c -> c
    | None -> default_meter
  in
  Mutex.unlock config_lock;
  c

let hist_config_of name =
  Mutex.lock config_lock;
  let c =
    match Hashtbl.find_opt hist_configs name with
    | Some c -> c
    | None -> default_hist
  in
  Mutex.unlock config_lock;
  c

(* ----------------------------------------------------------- EWMA meter *)

(* One-sided exponentially weighted moving average over fixed ticks
   (Coda-Hale style, minus the first-tick seeding): the rate starts at 0
   and each completed tick folds its arrival rate in with weight
   [alpha = 1 - exp (-tick / tau)].  Ticks are aligned to absolute time
   ([tick i] covers [i*tick_ns .. (i+1)*tick_ns)), so independently
   advancing meters agree on tick boundaries and their rates sum. *)
type meter = {
  mc : meter_config;
  alpha : float;
  mutable m_total : int;
  mutable m_pending : int; (* arrivals in the tick being accumulated *)
  mutable m_tick : int; (* index of the tick being accumulated *)
  mutable m_rate : float; (* events/sec as of the end of tick m_tick-1 *)
}

let tick_of (mc : meter_config) now = now / mc.tick_ns

(* Rate and pending as they would stand after advancing to [now],
   without mutating: one weighted update for the pending tick (empty or
   not), then closed-form decay for the remaining empty ticks. *)
let meter_advanced m now =
  let t = tick_of m.mc now in
  if t <= m.m_tick then (m.m_rate, m.m_pending, m.m_tick)
  else begin
    let per_sec =
      float_of_int m.m_pending *. 1e9 /. float_of_int m.mc.tick_ns
    in
    let rate = m.m_rate +. (m.alpha *. (per_sec -. m.m_rate)) in
    let rate =
      if t - m.m_tick = 1 then rate
      else rate *. ((1. -. m.alpha) ** float_of_int (t - m.m_tick - 1))
    in
    (rate, 0, t)
  end

let meter_mark m now n =
  let rate, pending, tick = meter_advanced m now in
  m.m_rate <- rate;
  m.m_pending <- pending + n;
  m.m_tick <- tick;
  m.m_total <- m.m_total + n

(* ------------------------------------------------- ring-of-epochs hist *)

type slot = {
  mutable s_epoch : int; (* -1 = never used *)
  mutable s_count : int;
  mutable s_sum : int;
  mutable s_min : int;
  mutable s_max : int;
  s_buckets : int array;
}

type whist = { hc : hist_config; slots : slot array }

let slot_reset s epoch =
  s.s_epoch <- epoch;
  s.s_count <- 0;
  s.s_sum <- 0;
  s.s_min <- max_int;
  s.s_max <- 0;
  Array.fill s.s_buckets 0 (Array.length s.s_buckets) 0

let whist_observe w now v =
  let v = max 0 v in
  let e = now / w.hc.epoch_ns in
  let s = w.slots.(e mod w.hc.epochs) in
  if s.s_epoch <> e then slot_reset s e;
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum + v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  let b = Metrics.bucket_of v in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1

(* ------------------------------------------------------- sharded sinks *)

type sink = {
  meters : (string, meter) Hashtbl.t;
  whists : (string, whist) Hashtbl.t;
}

let registry_lock = Mutex.create ()
let registry : sink list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { meters = Hashtbl.create 8; whists = Hashtbl.create 8 } in
      Mutex.lock registry_lock;
      registry := s :: !registry;
      Mutex.unlock registry_lock;
      s)

let shard () = Domain.DLS.get shard_key

let meter_of sink name =
  match Hashtbl.find_opt sink.meters name with
  | Some m -> m
  | None ->
      let mc = meter_config_of name in
      let alpha =
        1. -. exp (-.float_of_int mc.tick_ns /. float_of_int mc.tau_ns)
      in
      let m =
        { mc; alpha; m_total = 0; m_pending = 0; m_tick = -1; m_rate = 0. }
      in
      Hashtbl.replace sink.meters name m;
      m

let whist_of sink name =
  match Hashtbl.find_opt sink.whists name with
  | Some w -> w
  | None ->
      let hc = hist_config_of name in
      let w =
        {
          hc;
          slots =
            Array.init hc.epochs (fun _ ->
                {
                  s_epoch = -1;
                  s_count = 0;
                  s_sum = 0;
                  s_min = max_int;
                  s_max = 0;
                  s_buckets = Array.make Metrics.n_buckets 0;
                });
        }
      in
      Hashtbl.replace sink.whists name w;
      w

let mark ?now name n =
  if Metrics.enabled () then begin
    let now = match now with Some t -> t | None -> Metrics.now_ns () in
    meter_mark (meter_of (shard ()) name) now n
  end

let observe ?now name v =
  if Metrics.enabled () then begin
    let now = match now with Some t -> t | None -> Metrics.now_ns () in
    whist_observe (whist_of (shard ()) name) now v
  end

let reset () =
  Mutex.lock registry_lock;
  let sinks = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun s ->
      Hashtbl.reset s.meters;
      Hashtbl.reset s.whists)
    sinks

(* ------------------------------------------------------------ snapshot *)

type meter_snapshot = { total : int; rate : float }

type snapshot = {
  meters : (string * meter_snapshot) list;
  histograms : (string * Metrics.histogram) list;
}

(* Read-only merge: meters are advanced to [now] functionally (rates of
   aligned meters sum; see the preamble), window slots are summed per
   epoch over the live range (e_now - epochs, e_now].  Like
   [Metrics.snapshot], call at a quiescent point for exact numbers;
   concurrent calls are memory-safe but approximate. *)
let snapshot ?now () =
  let now = match now with Some t -> t | None -> Metrics.now_ns () in
  Mutex.lock registry_lock;
  let sinks = !registry in
  Mutex.unlock registry_lock;
  let meters : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let hists : (string, hist_config * slot) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (sink : sink) ->
      Hashtbl.iter
        (fun name m ->
          let rate, _, _ = meter_advanced m now in
          match Hashtbl.find_opt meters name with
          | Some (total, r) ->
              total := !total + m.m_total;
              r := !r +. rate
          | None -> Hashtbl.replace meters name (ref m.m_total, ref rate))
        sink.meters;
      Hashtbl.iter
        (fun name w ->
          let e_now = now / w.hc.epoch_ns in
          let acc =
            match Hashtbl.find_opt hists name with
            | Some (_, acc) -> acc
            | None ->
                let acc =
                  {
                    s_epoch = 0;
                    s_count = 0;
                    s_sum = 0;
                    s_min = max_int;
                    s_max = 0;
                    s_buckets = Array.make Metrics.n_buckets 0;
                  }
                in
                Hashtbl.replace hists name (w.hc, acc);
                acc
          in
          Array.iter
            (fun s ->
              if
                s.s_count > 0 && s.s_epoch <= e_now
                && s.s_epoch > e_now - w.hc.epochs
              then begin
                acc.s_count <- acc.s_count + s.s_count;
                acc.s_sum <- acc.s_sum + s.s_sum;
                if s.s_min < acc.s_min then acc.s_min <- s.s_min;
                if s.s_max > acc.s_max then acc.s_max <- s.s_max;
                Array.iteri
                  (fun i c -> acc.s_buckets.(i) <- acc.s_buckets.(i) + c)
                  s.s_buckets
              end)
            w.slots)
        sink.whists)
    sinks;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let meters =
    sorted
      (Hashtbl.fold
         (fun name (total, rate) acc ->
           (name, { total = !total; rate = !rate }) :: acc)
         meters [])
  in
  let histograms =
    sorted
      (Hashtbl.fold
         (fun name (_, s) acc ->
           let buckets = ref [] in
           for i = Metrics.n_buckets - 1 downto 0 do
             if s.s_buckets.(i) > 0 then
               buckets :=
                 (Metrics.bucket_lower_bound i, s.s_buckets.(i)) :: !buckets
           done;
           ( name,
             {
               Metrics.count = s.s_count;
               sum = s.s_sum;
               min = (if s.s_count = 0 then 0 else s.s_min);
               max = s.s_max;
               buckets = !buckets;
             } )
           :: acc)
         hists [])
  in
  { meters; histograms }
