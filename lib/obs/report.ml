type format = Human | Json

let format_of_string s =
  match String.lowercase_ascii s with
  | "human" -> Some Human
  | "json" -> Some Json
  | _ -> None

(* --------------------------------------------------------------- human *)

let pretty_ns ns =
  let f = float_of_int ns in
  if f >= 1e9 then Printf.sprintf "%.3f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.3f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.3f us" (f /. 1e3)
  else Printf.sprintf "%d ns" ns

(* Histogram names ending in _ns hold durations; print them as times. *)
let is_duration name =
  let suffix = "_ns" in
  let ln = String.length name and ls = String.length suffix in
  ln >= ls && String.sub name (ln - ls) ls = suffix

let human_of (snap : Metrics.snapshot) spans =
  let buf = Buffer.create 1024 in
  let section title = Buffer.add_string buf (Printf.sprintf "-- %s --\n" title) in
  if snap.Metrics.counters <> [] then begin
    section "counters";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-44s %12d\n" name v))
      snap.Metrics.counters
  end;
  if snap.Metrics.gauges <> [] then begin
    section "gauges";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-44s %12g\n" name v))
      snap.Metrics.gauges
  end;
  if snap.Metrics.histograms <> [] then begin
    section "histograms (p50/p90/p99 are bucket upper bounds)";
    List.iter
      (fun (name, h) ->
        let mean =
          if h.Metrics.count = 0 then 0.
          else float_of_int h.Metrics.sum /. float_of_int h.Metrics.count
        in
        let q p = Metrics.quantile h p in
        let show v =
          if is_duration name then pretty_ns v else string_of_int v
        in
        let show_mean () =
          if is_duration name then pretty_ns (int_of_float mean)
          else Printf.sprintf "%.1f" mean
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  %-44s count %-9d mean %-12s min %-12s p50 %-12s p90 %-12s p99 %-12s max %s\n"
             name h.Metrics.count (show_mean ()) (show h.Metrics.min)
             (show (q 0.5)) (show (q 0.9)) (show (q 0.99))
             (show h.Metrics.max)))
      snap.Metrics.histograms
  end;
  if spans <> [] then begin
    section "spans";
    let rec walk indent (s : Span.t) =
      Buffer.add_string buf
        (Printf.sprintf "  %-44s %8d call%s %12s\n"
           (String.make indent ' ' ^ s.Span.name)
           s.Span.calls
           (if s.Span.calls = 1 then " " else "s")
           (pretty_ns s.Span.total_ns));
      List.iter (walk (indent + 2)) s.Span.children
    in
    List.iter (walk 0) spans
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf

(* ---------------------------------------------------------- json lines *)

let json_lines_of (snap : Metrics.snapshot) spans =
  let buf = Buffer.create 1024 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (name, v) ->
      line
        (Json.Obj
           [ ("type", Json.String "counter"); ("name", Json.String name);
             ("value", Json.Int v) ]))
    snap.Metrics.counters;
  List.iter
    (fun (name, v) ->
      line
        (Json.Obj
           [ ("type", Json.String "gauge"); ("name", Json.String name);
             ("value", Json.Float v) ]))
    snap.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let mean =
        if h.Metrics.count = 0 then 0.
        else float_of_int h.Metrics.sum /. float_of_int h.Metrics.count
      in
      line
        (Json.Obj
           [ ("type", Json.String "histogram"); ("name", Json.String name);
             ("count", Json.Int h.Metrics.count);
             ("sum", Json.Int h.Metrics.sum); ("mean", Json.Float mean);
             ("min", Json.Int h.Metrics.min);
             ("max", Json.Int h.Metrics.max);
             ("p50", Json.Int (Metrics.quantile h 0.5));
             ("p90", Json.Int (Metrics.quantile h 0.9));
             ("p99", Json.Int (Metrics.quantile h 0.99));
             ("buckets",
              Json.List
                (List.map
                   (fun (lo, c) -> Json.List [ Json.Int lo; Json.Int c ])
                   h.Metrics.buckets)) ]))
    snap.Metrics.histograms;
  let rec walk path (s : Span.t) =
    let path = if path = "" then s.Span.name else path ^ "/" ^ s.Span.name in
    line
      (Json.Obj
         [ ("type", Json.String "span"); ("path", Json.String path);
           ("calls", Json.Int s.Span.calls);
           ("total_ns", Json.Int s.Span.total_ns);
           ("mean_ns",
            Json.Int
              (if s.Span.calls = 0 then 0 else s.Span.total_ns / s.Span.calls)) ]);
    List.iter (walk path) s.Span.children
  in
  List.iter (walk "") spans;
  Buffer.contents buf

let to_string fmt =
  let snap = Metrics.snapshot () and spans = Span.tree () in
  match fmt with
  | Human -> human_of snap spans
  | Json -> json_lines_of snap spans
