(** Hierarchical wall-clock timers.

    [with_ ~name f] times [f] and files the duration under the span tree
    of the current domain, nested beneath whatever span is currently open
    on that domain.  Repeated spans with the same name at the same
    position aggregate (total time + call count) rather than appending,
    so the tree stays bounded no matter how hot the loop.

    Sharding and merging follow {!Metrics}: each domain owns its tree,
    {!tree} merges them by name with commutative sums and sorts children
    by name, so the report is independent of domain scheduling.  When
    both metrics and tracing are disabled, [with_] is the bare call
    [f ()] after one flag check ({!Metrics.any_enabled} — the two flags
    share an atomic word).

    Spans also feed the event timeline: when {!Trace.enabled}, every
    [with_] emits a begin/end event pair (category ["span"]), paired even
    across exceptions.  Durations clamp at 0 — {!Metrics.now_ns} is a
    wall clock and can step backwards under NTP. *)

type t = {
  name : string;
  total_ns : int;  (** summed wall-clock time of all calls *)
  calls : int;
  children : t list;  (** sorted by name *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** Time [f] under [name].  Exceptions propagate; the partial duration is
    still recorded. *)

val tree : unit -> t list
(** The merged span forest of every domain, roots sorted by name.  Take it
    only at a quiescent point (no domain inside [with_]). *)

val reset : unit -> unit
(** Drop every recorded span. *)

val total_ns : t list -> int
(** Sum of [total_ns] over the given roots. *)
