(* Values above 2^62 ns (~146 years) or 2^62 counts do not occur; plain
   int arithmetic throughout. *)

let n_buckets = 63

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int; (* exact observed extrema (after the 0 clamp) *)
  mutable h_max : int;
  h_buckets : int array; (* n_buckets log2 buckets *)
}

module Sink_impl = struct
  type t = {
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, float ref) Hashtbl.t;
    hists : (string, hist) Hashtbl.t;
  }

  let create () =
    {
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8;
      hists = Hashtbl.create 8;
    }

  let clear t =
    Hashtbl.reset t.counters;
    Hashtbl.reset t.gauges;
    Hashtbl.reset t.hists

  let add t name n =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.counters name (ref n)

  let gauge t name v =
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace t.gauges name (ref v)

  (* Bucket 0 holds the value 0; bucket i >= 1 covers 2^(i-1) .. 2^i - 1. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let i = ref 0 and v = ref v in
      while !v > 0 do
        incr i;
        v := !v lsr 1
      done;
      min !i (n_buckets - 1)
    end

  let bucket_lower_bound i = if i = 0 then 0 else 1 lsl (i - 1)
  let bucket_upper_edge i = if i = 0 then 1 else 1 lsl i

  let observe t name v =
    let v = max 0 v in
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h =
            {
              h_count = 0;
              h_sum = 0;
              h_min = max_int;
              h_max = 0;
              h_buckets = Array.make n_buckets 0;
            }
          in
          Hashtbl.replace t.hists name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1

  type histogram_snapshot = {
    count : int;
    sum : int;
    min : int;
    max : int;
    buckets : (int * int) list;
  }

  (* Every merge below is commutative and associative (integer sums,
     float max), so [merge] is independent of the sink list order; the
     final sort by name fixes the output order. *)
  let merge sinks =
    let counters = Hashtbl.create 32 in
    let gauges = Hashtbl.create 8 in
    let hists = Hashtbl.create 8 in
    List.iter
      (fun s ->
        Hashtbl.iter
          (fun name r ->
            match Hashtbl.find_opt counters name with
            | Some acc -> acc := !acc + !r
            | None -> Hashtbl.replace counters name (ref !r))
          s.counters;
        Hashtbl.iter
          (fun name r ->
            match Hashtbl.find_opt gauges name with
            | Some acc -> acc := Float.max !acc !r
            | None -> Hashtbl.replace gauges name (ref !r))
          s.gauges;
        Hashtbl.iter
          (fun name h ->
            match Hashtbl.find_opt hists name with
            | Some acc ->
                acc.h_count <- acc.h_count + h.h_count;
                acc.h_sum <- acc.h_sum + h.h_sum;
                if h.h_min < acc.h_min then acc.h_min <- h.h_min;
                if h.h_max > acc.h_max then acc.h_max <- h.h_max;
                Array.iteri
                  (fun i c -> acc.h_buckets.(i) <- acc.h_buckets.(i) + c)
                  h.h_buckets
            | None ->
                Hashtbl.replace hists name
                  {
                    h_count = h.h_count;
                    h_sum = h.h_sum;
                    h_min = h.h_min;
                    h_max = h.h_max;
                    h_buckets = Array.copy h.h_buckets;
                  })
          s.hists)
      sinks;
    let sorted fold = List.sort (fun (a, _) (b, _) -> compare a b) fold in
    ( sorted (Hashtbl.fold (fun n r acc -> (n, !r) :: acc) counters []),
      sorted (Hashtbl.fold (fun n r acc -> (n, !r) :: acc) gauges []),
      sorted
        (Hashtbl.fold
           (fun n h acc ->
             let buckets = ref [] in
             for i = n_buckets - 1 downto 0 do
               if h.h_buckets.(i) > 0 then
                 buckets := (bucket_lower_bound i, h.h_buckets.(i)) :: !buckets
             done;
             ( n,
               {
                 count = h.h_count;
                 sum = h.h_sum;
                 min = (if h.h_count = 0 then 0 else h.h_min);
                 max = h.h_max;
                 buckets = !buckets;
               } )
             :: acc)
           hists []) )
end

type histogram = Sink_impl.histogram_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let n_buckets = n_buckets
let bucket_of = Sink_impl.bucket_of
let bucket_lower_bound = Sink_impl.bucket_lower_bound
let bucket_upper_edge = Sink_impl.bucket_upper_edge

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

let quantile h q =
  if h.count = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let rec walk seen = function
      | [] -> 0
      | [ (lo, _) ] -> Sink_impl.bucket_upper_edge (Sink_impl.bucket_of lo)
      | (lo, c) :: rest ->
          if seen + c >= rank then Sink_impl.bucket_upper_edge (Sink_impl.bucket_of lo)
          else walk (seen + c) rest
    in
    walk 0 h.buckets
  end

(* ----------------------------------------------------- global registry *)

(* One atomic word carries the metrics bit and the trace bit (owned by
   [Trace], plumbed through here so the word stays single).  Instrumented
   code that serves both layers — [Span.with_], the pool's batch wrapper —
   can then keep its disabled fast path at exactly one atomic load via
   [any_enabled]. *)
let metrics_bit = 1
let trace_bit = 2
let flags = Atomic.make 0

let rec set_bit bit b =
  let cur = Atomic.get flags in
  let next = if b then cur lor bit else cur land lnot bit in
  if not (Atomic.compare_and_set flags cur next) then set_bit bit b

let set_enabled b = set_bit metrics_bit b
let enabled () = Atomic.get flags land metrics_bit <> 0
let set_trace_enabled b = set_bit trace_bit b
let trace_enabled () = Atomic.get flags land trace_bit <> 0
let any_enabled () = Atomic.get flags <> 0

(* Shards register once per domain; the list order depends on scheduling,
   which is why Sink_impl.merge must be (and is) order-independent. *)
let registry_lock = Mutex.create ()
let registry : Sink_impl.t list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = Sink_impl.create () in
      Mutex.lock registry_lock;
      registry := s :: !registry;
      Mutex.unlock registry_lock;
      s)

let shard () = Domain.DLS.get shard_key

let reset () =
  Mutex.lock registry_lock;
  let sinks = !registry in
  Mutex.unlock registry_lock;
  List.iter Sink_impl.clear sinks

let add name n = if enabled () then Sink_impl.add (shard ()) name n
let incr name = if enabled () then Sink_impl.add (shard ()) name 1
let gauge name v = if enabled () then Sink_impl.gauge (shard ()) name v
let observe name v = if enabled () then Sink_impl.observe (shard ()) name v

(* Wall clock, not a monotonic one: the stdlib exposes nothing monotonic
   without an external package.  NTP can therefore step it backwards
   between two reads; every duration computed from [now_ns] pairs must
   clamp at 0 ([observe] already does, [Span.with_] and the trace pairing
   do so explicitly). *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () -> Sink_impl.observe (shard ()) name (now_ns () - t0))
      f
  end

let snapshot () =
  Mutex.lock registry_lock;
  let sinks = !registry in
  Mutex.unlock registry_lock;
  let counters, gauges, histograms = Sink_impl.merge sinks in
  { counters; gauges; histograms }

(* Re-export the explicit-sink API with the snapshot type of this module. *)
module Sink = struct
  type t = Sink_impl.t

  let create = Sink_impl.create
  let add = Sink_impl.add
  let gauge = Sink_impl.gauge
  let observe = Sink_impl.observe

  let merge sinks =
    let counters, gauges, histograms = Sink_impl.merge sinks in
    { counters; gauges; histograms }
end
