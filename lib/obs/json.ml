type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------- emitter *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* %.17g round-trips every float; JSON has no inf/nan *)
    Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* -------------------------------------------------------------- parser *)

exception Bad of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = input.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub input !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
                pos := !pos + 4;
                (* Encode the code point as UTF-8 (surrogates kept as-is:
                   good enough for a validator). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end)
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match float_of_string_opt s with
    | None -> fail "bad number"
    | Some f ->
        if
          Float.is_integer f
          && Float.abs f <= 4503599627370496. (* 2^52: exactly representable *)
          && not (String.contains s '.')
          && not (String.contains s 'e')
          && not (String.contains s 'E')
        then Int (int_of_float f)
        else Float f
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
