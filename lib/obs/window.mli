(** Rolling-window instruments on top of the [Metrics] sharding
    discipline: EWMA rate meters ("how fast right now?") and
    ring-of-epochs sliding-window histograms ("latency over the last
    minute"), for long-lived processes whose all-time counters cannot
    answer operational questions.

    Both instruments take the observation time explicitly ([?now],
    defaulting to {!Metrics.now_ns}) and are {e linear} in their
    observations at a fixed clock:

    + a meter is an EWMA over absolute, globally-aligned ticks, seeded
      at 0, so the sum of per-domain meters equals the meter of the
      combined stream no matter how the observations were partitioned
      across domains — totals exactly, rates up to floating-point
      summation order (the per-tick weights are floats);
    + a window histogram sums {e integer} per-epoch slots, and epochs
      are derived from the observation time alone, so its snapshots
      under an injected clock are bit-identical at any job count — the
      same determinism contract as the rest of the repo.
    Recording is gated on [Metrics.enabled] (one flag check when off)
    and writes only domain-local state.

    The instruments assume a (mostly) monotonic clock: an observation
    older than the current window simply lands in (or resets) a stale
    slot, skewing values but never breaking memory safety. *)

val define_meter : ?tick_ns:int -> ?tau_ns:int -> string -> unit
(** Configure meter [name]: [tick_ns] is the accumulation interval
    (default 1s), [tau_ns] the decay time constant (default 10s; the
    smoothing factor is [alpha = 1 - exp (-tick/tau)]).  Call before the
    first recording of [name]; later calls only affect sinks that have
    not yet used the name. *)

val define_histogram : ?epochs:int -> ?epoch_ns:int -> string -> unit
(** Configure window histogram [name]: a ring of [epochs] slots (default
    6) each covering [epoch_ns] (default 10s), i.e. a 60s window by
    default.  Same timing caveat as {!define_meter}. *)

val mark : ?now:int -> string -> int -> unit
(** [mark name n] records [n] events on meter [name] at time [now].
    No-op when metrics are disabled. *)

val observe : ?now:int -> string -> int -> unit
(** [observe name v] records the non-negative value [v] (negatives clamp
    to 0) into window histogram [name] at time [now].  No-op when
    metrics are disabled. *)

val reset : unit -> unit
(** Clear every sink in the registry (configurations are kept). *)

(** {2 Snapshots} *)

type meter_snapshot = {
  total : int;  (** all-time event count *)
  rate : float;
      (** EWMA events/sec as of the last completed tick before [now];
          0 until the first tick completes *)
}

type snapshot = {
  meters : (string * meter_snapshot) list;
  histograms : (string * Metrics.histogram) list;
      (** each histogram merged over the epochs still inside the window
          at [now] *)
}
(** Both lists sorted by name. *)

val snapshot : ?now:int -> unit -> snapshot
(** Read-only commutative merge of every sink, advanced to [now].  Exact
    at a quiescent point; memory-safe but approximate when other domains
    are recording concurrently. *)
