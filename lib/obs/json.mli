(** A minimal JSON value type with an emitter and a parser.

    Just enough machinery for the observability layer: {!Report} emits
    metric lines through {!to_string}, and the CI smoke check re-parses
    them through {!parse} without any external tooling (no jq, no opam
    JSON package).  Not a general-purpose JSON library: numbers parse to
    [Float], no streaming, whole-value input only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace).  Strings are escaped per RFC 8259;
    non-finite floats render as [null] (JSON has no representation for
    them). *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  Numbers
    come back as [Int] when integral and exactly representable, [Float]
    otherwise. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] on absent key or
    non-object. *)
