(** OpenMetrics text exposition of the whole observability registry —
    what the admin plane's [/metrics] endpoint serves and what
    [ppdm top] consumes.

    {!render} walks [Metrics.snapshot] (counters, gauges, histograms
    with derived min/max/p50/p90/p99 gauge families), [Window.snapshot]
    (meter totals + EWMA rates, sliding-window histograms),
    [Gc.quick_stat] gauges, and per-worker pool busy-fractions.  Dotted
    internal names become [ppdm_]-prefixed sanitized families; a
    trailing [.s<i>]/[.w<i>] name component becomes a
    [shard="i"]/[worker="i"] label.

    Rendering merges sinks the same way snapshots do: exact at a
    quiescent point, memory-safe but approximate while other domains
    record. *)

val render : ?now:int -> unit -> string
(** The full registry in OpenMetrics text format, terminated by
    [# EOF].  [now] (default {!Metrics.now_ns}) fixes the window
    positions and the busy-fraction denominator.  A name recorded both
    as an all-time and as a window instrument renders once, from the
    all-time registry — one family, one TYPE line; use distinct names to
    expose both views. *)

val note_start : ?now:int -> unit -> unit
(** Pin the observation origin used for [ppdm_pool_busy_fraction]
    (busy_ns / elapsed).  Until called, the family is omitted. *)

val sanitize_name : string -> string
(** [ppdm_] + the name with every character outside
    [[A-Za-z0-9_:]] replaced by [_]. *)

val escape_label : string -> string
(** Escape a label value: backslash, double quote, and newline. *)

(** {2 Parsing and validation}

    A small consumer-side parser, enough for [ppdm top] and the CI
    format checker — not a general OpenMetrics implementation. *)

type sample = {
  name : string;  (** full sample name, e.g. [ppdm_server_reports_total] *)
  labels : (string * string) list;
  value : float;
}

val parse : string -> (sample list, string) result
(** Extract every sample line, unescaping label values; comment lines
    are skipped without structural checks. *)

val validate : string -> (sample list, string) result
(** {!parse} plus structural OpenMetrics checks: terminal [# EOF],
    unique [# TYPE] per family, every sample attributable to a declared
    family with the sample-name shape its type requires ([_total] for
    counters; [_bucket]/[_count]/[_sum] for histograms), non-negative
    counters, and cumulative histogram buckets ending in a [+Inf]
    bucket that agrees with [_count]. *)
