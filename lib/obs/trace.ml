type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  cat : string;
  ts_ns : int;
  domain : int;
  seq : int;
}

(* A fixed-capacity ring per domain: [start] indexes the oldest event,
   [len] how many are live.  Overwriting the oldest slot on overflow keeps
   recording O(1) and allocation-bounded no matter how long tracing stays
   on; the drop is counted, never silent. *)
type ring = {
  r_domain : int;
  mutable buf : event array;
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
  mutable seq : int;
}

let dummy_event =
  { phase = Instant; name = ""; cat = ""; ts_ns = 0; domain = 0; seq = 0 }

let default_capacity = 1 lsl 16
let capacity = Atomic.make default_capacity

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Atomic.set capacity n

let set_enabled = Metrics.set_trace_enabled
let enabled = Metrics.trace_enabled

let registry_lock = Mutex.create ()
let registry : ring list ref = ref []

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_domain = (Domain.self () :> int);
          buf = Array.make (Atomic.get capacity) dummy_event;
          start = 0;
          len = 0;
          dropped = 0;
          seq = 0;
        }
      in
      Mutex.lock registry_lock;
      registry := r :: !registry;
      Mutex.unlock registry_lock;
      r)

let rings () =
  Mutex.lock registry_lock;
  let rs = !registry in
  Mutex.unlock registry_lock;
  rs

let reset () =
  (* Also re-reads the capacity, so [set_capacity] between runs takes
     effect on rings that already exist. *)
  let cap = Atomic.get capacity in
  List.iter
    (fun r ->
      if Array.length r.buf <> cap then r.buf <- Array.make cap dummy_event
      else Array.fill r.buf 0 cap dummy_event;
      r.start <- 0;
      r.len <- 0;
      r.dropped <- 0;
      r.seq <- 0)
    (rings ())

let dropped () = List.fold_left (fun acc r -> acc + r.dropped) 0 (rings ())

let record phase ~name ~cat =
  if enabled () then begin
    let r = Domain.DLS.get ring_key in
    let ev =
      { phase; name; cat; ts_ns = Metrics.now_ns (); domain = r.r_domain;
        seq = r.seq }
    in
    r.seq <- r.seq + 1;
    let cap = Array.length r.buf in
    if r.len < cap then begin
      r.buf.((r.start + r.len) mod cap) <- ev;
      r.len <- r.len + 1
    end
    else begin
      (* Full: the new event replaces the oldest.  Metrics carries the
         drop too (when it is on), so a --stats report flags a truncated
         timeline even if nobody inspects the trace file. *)
      r.buf.(r.start) <- ev;
      r.start <- (r.start + 1) mod cap;
      r.dropped <- r.dropped + 1;
      Metrics.incr "trace.dropped"
    end
  end

let begin_ ~name ~cat = record Begin ~name ~cat
let end_ ~name ~cat = record End ~name ~cat
let instant ~name ~cat = record Instant ~name ~cat

let with_ ~name ~cat f =
  if not (enabled ()) then f ()
  else begin
    begin_ ~name ~cat;
    Fun.protect ~finally:(fun () -> end_ ~name ~cat) f
  end

(* Merged, time-sorted timeline.  Ties (same clamped wall-clock tick)
   break on (domain, seq) so the order is total and stable under the
   coarse clock; within a domain seq order always agrees with record
   order, which is what the begin/end pairing below relies on. *)
let events () =
  let of_ring r =
    let cap = Array.length r.buf in
    List.init r.len (fun i -> r.buf.((r.start + i) mod cap))
  in
  List.concat_map of_ring (rings ())
  |> List.sort (fun a b ->
         match compare a.ts_ns b.ts_ns with
         | 0 -> (
             match compare a.domain b.domain with
             | 0 -> compare a.seq b.seq
             | c -> c)
         | c -> c)

(* ------------------------------------------------- Chrome trace export *)

(* The trace-event format: a JSON array of {ph, ts, pid, tid, name, cat}
   objects, ts in microseconds.  Loadable by chrome://tracing, Perfetto,
   and catapult tooling.  One synthetic counter event reports drops. *)
let to_chrome_json ?(dropped = 0) evs =
  let us_of_ns ns = float_of_int ns /. 1e3 in
  let base =
    List.map
      (fun ev ->
        let ph =
          match ev.phase with Begin -> "B" | End -> "E" | Instant -> "i"
        in
        let fields =
          [
            ("name", Json.String ev.name);
            ("cat", Json.String ev.cat);
            ("ph", Json.String ph);
            ("ts", Json.Float (us_of_ns ev.ts_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int ev.domain);
          ]
        in
        (* Instants carry thread scope so viewers draw them as marks. *)
        let fields =
          if ev.phase = Instant then fields @ [ ("s", Json.String "t") ]
          else fields
        in
        Json.Obj fields)
      evs
  in
  let tail =
    if dropped = 0 then []
    else
      [
        Json.Obj
          [
            ("name", Json.String "trace.dropped");
            ("cat", Json.String "trace");
            ("ph", Json.String "C");
            ("ts",
             Json.Float
               (match List.rev evs with
               | last :: _ -> us_of_ns last.ts_ns
               | [] -> 0.));
            ("pid", Json.Int 1);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("dropped", Json.Int dropped) ]);
          ];
      ]
  in
  Json.List (base @ tail)

(* ------------------------------------------------- folded-stack export *)

(* One frame of the reconstruction: name, begin timestamp, and the time
   already attributed to children (subtracted to get self time). *)
type frame = { f_name : string; f_ts : int; mutable f_child_ns : int }

(* Fold each domain's events (in record order) into "a;b;c self_ns"
   lines, flamegraph.pl-compatible.  Durations clamp at 0 — the wall
   clock can step backwards (see Metrics.now_ns).  Unpaired events are
   tolerated, they are expected after ring overflow: an End with no
   matching open frame is skipped; a Begin still open when the events run
   out closes at the last timestamp seen on its domain. *)
let to_folded evs =
  let totals : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let add_total path ns =
    Hashtbl.replace totals path
      (ns + Option.value ~default:0 (Hashtbl.find_opt totals path))
  in
  let by_domain : (int, event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match Hashtbl.find_opt by_domain ev.domain with
      | Some l -> l := ev :: !l
      | None -> Hashtbl.replace by_domain ev.domain (ref [ ev ]))
    evs;
  let close stack ts =
    match stack with
    | [] -> []
    | frame :: rest ->
        let dur = max 0 (ts - frame.f_ts) in
        let self = max 0 (dur - frame.f_child_ns) in
        let path =
          String.concat ";"
            (List.rev_map (fun f -> f.f_name) (frame :: rest))
        in
        add_total path self;
        (match rest with
        | parent :: _ -> parent.f_child_ns <- parent.f_child_ns + dur
        | [] -> ());
        rest
  in
  let domains =
    Hashtbl.fold (fun d l acc -> (d, List.rev !l) :: acc) by_domain []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((_, evs) : int * event list) ->
      let evs = List.sort (fun (a : event) b -> compare a.seq b.seq) evs in
      let last_ts =
        List.fold_left (fun acc ev -> max acc ev.ts_ns) 0 evs
      in
      let stack =
        List.fold_left
          (fun stack ev ->
            match ev.phase with
            | Begin -> { f_name = ev.name; f_ts = ev.ts_ns; f_child_ns = 0 } :: stack
            | End -> (
                match stack with
                | top :: _ when top.f_name = ev.name -> close stack ev.ts_ns
                | _ -> stack (* orphan End: its Begin was dropped *))
            | Instant -> stack)
          [] evs
      in
      (* close frames left open (their End dropped, or tracing stopped
         mid-span) at the domain's last timestamp *)
      let rec drain stack =
        match stack with [] -> () | _ -> drain (close stack last_ts)
      in
      drain stack)
    domains;
  let lines =
    Hashtbl.fold (fun path ns acc -> (path, ns) :: acc) totals []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  String.concat ""
    (List.map (fun (path, ns) -> Printf.sprintf "%s %d\n" path ns) lines)

let write_file path =
  let evs = events () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if Filename.check_suffix path ".folded" then
        output_string oc (to_folded evs)
      else begin
        output_string oc
          (Json.to_string (to_chrome_json ~dropped:(dropped ()) evs));
        output_char oc '\n'
      end)
